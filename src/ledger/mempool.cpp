#include "ledger/mempool.hpp"

#include <algorithm>

#include "harness/profiler.hpp"

namespace ratcon::ledger {

bool Mempool::submit(Transaction tx, SimTime arrival) {
  if (known_.count(tx.id) > 0) return false;  // duplicate or remembered
  if (limits_.max_pending > 0 && queue_.size() >= limits_.max_pending) {
    if (!limits_.evict_oldest) {
      ++rejected_;
      harness::prof_count(harness::kL3MempoolRejections);
      return false;
    }
    drop_oldest_pending();
  }
  known_.emplace(tx.id, TxState{arrival, false});
  queue_.push_back(Entry{std::move(tx), arrival});
  return true;
}

void Mempool::drop_oldest_pending() {
  while (!queue_.empty()) {
    const Entry& oldest = queue_.front();
    const auto it = known_.find(oldest.tx.id);
    // Entries whose id is now included were already erased from the queue
    // by mark_included, so the front is always live — but stay defensive.
    const bool live = it != known_.end() && !it->second.included;
    if (live) {
      known_.erase(it);
      queue_.pop_front();
      ++evicted_;
      harness::prof_count(harness::kL3MempoolEvictions);
      return;
    }
    queue_.pop_front();
  }
}

std::vector<Transaction> Mempool::select(
    std::size_t max_txs,
    const std::function<bool(const Transaction&)>& censor) const {
  return select(max_txs, 0, censor);
}

std::vector<Transaction> Mempool::select(
    std::size_t max_txs, std::size_t max_bytes,
    const std::function<bool(const Transaction&)>& censor) const {
  harness::ProfTimer timer(harness::kL1WorkloadNs,
                           harness::kL2WorkloadSelectNs);
  std::vector<Transaction> out;
  std::size_t bytes = 0;
  for (const Entry& e : queue_) {
    if (out.size() >= max_txs) break;
    if (censor && censor(e.tx)) continue;
    if (max_bytes > 0) {
      const std::size_t size = e.tx.wire_size();
      // An oversized head still ships alone: skipping it forever would
      // starve the proposal stream on a single fat transaction.
      if (!out.empty() && bytes + size > max_bytes) break;
      bytes += size;
    }
    out.push_back(e.tx);
  }
  return out;
}

void Mempool::mark_included(const std::vector<Transaction>& txs) {
  bool any_new = false;
  for (const Transaction& tx : txs) {
    const auto [it, fresh] = known_.try_emplace(tx.id, TxState{});
    if (!fresh && it->second.included) continue;  // already remembered
    it->second.included = true;
    remember_included(tx.id);
    any_new = true;
  }
  if (!any_new) return;
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const Entry& e) {
                                const auto it = known_.find(e.tx.id);
                                return it == known_.end() ||
                                       it->second.included;
                              }),
               queue_.end());
}

void Mempool::remember_included(std::uint64_t id) {
  included_fifo_.push_back(id);
  while (limits_.included_history > 0 &&
         included_fifo_.size() > limits_.included_history) {
    const std::uint64_t old = included_fifo_.front();
    included_fifo_.pop_front();
    const auto it = known_.find(old);
    // Only retire ids still in the included state — a restore may have
    // moved the id back to pending, in which case this history slot is
    // stale and the live entry must survive.
    if (it != known_.end() && it->second.included) known_.erase(it);
  }
}

void Mempool::restore(const std::vector<Transaction>& txs) {
  // Reverse order + push_front keeps the block's internal ordering, and
  // the whole block lands ahead of everything younger — rolled-back
  // transactions are the oldest in the pool by construction.
  for (auto rit = txs.rbegin(); rit != txs.rend(); ++rit) {
    const auto it = known_.find(rit->id);
    if (it == known_.end() || !it->second.included) continue;
    it->second.included = false;
    queue_.push_front(Entry{*rit, it->second.arrival});
  }
}

SimTime Mempool::arrival_of(std::uint64_t id) const {
  const auto it = known_.find(id);
  if (it == known_.end() || it->second.included) return kSimTimeNever;
  return it->second.arrival;
}

}  // namespace ratcon::ledger
