#include "ledger/mempool.hpp"

#include <algorithm>

namespace ratcon::ledger {

void Mempool::submit(Transaction tx, SimTime arrival) {
  if (known_.count(tx.id)) return;
  known_.insert(tx.id);
  queue_.push_back(Entry{std::move(tx), arrival});
}

std::vector<Transaction> Mempool::select(
    std::size_t max_txs,
    const std::function<bool(const Transaction&)>& censor) const {
  std::vector<Transaction> out;
  for (const Entry& e : queue_) {
    if (out.size() >= max_txs) break;
    if (included_.count(e.tx.id)) continue;
    if (censor && censor(e.tx)) continue;
    out.push_back(e.tx);
  }
  return out;
}

void Mempool::mark_included(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    included_.insert(tx.id);
  }
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const Entry& e) {
                                return included_.count(e.tx.id) > 0;
                              }),
               queue_.end());
}

void Mempool::restore(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    if (!included_.count(tx.id)) continue;
    included_.erase(tx.id);
    // Put back at the front so re-proposal keeps roughly original order.
    queue_.push_front(Entry{tx, 0});
  }
}

SimTime Mempool::arrival_of(std::uint64_t id) const {
  for (const Entry& e : queue_) {
    if (e.tx.id == id) return e.arrival;
  }
  return kSimTimeNever;
}

}  // namespace ratcon::ledger
