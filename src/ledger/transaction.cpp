#include "ledger/transaction.hpp"

#include <sstream>

namespace ratcon::ledger {

void Transaction::encode(Writer& w) const {
  w.u64(id);
  w.u32(sender);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(burn_target);
  w.bytes(payload);
}

Transaction Transaction::decode(Reader& r) {
  Transaction tx;
  tx.id = r.u64();
  tx.sender = r.u32();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(Kind::kBurn)) {
    throw CodecError("Transaction: bad kind");
  }
  tx.kind = static_cast<Kind>(kind);
  tx.burn_target = r.u32();
  tx.payload = r.bytes(1u << 20);
  return tx;
}

crypto::Hash256 Transaction::hash() const {
  Writer w;
  encode(w);
  return crypto::sha256(ByteSpan(w.data().data(), w.data().size()));
}

std::string Transaction::summary() const {
  std::ostringstream os;
  os << "tx#" << id << (kind == Kind::kBurn ? " burn(" : " transfer(")
     << (kind == Kind::kBurn ? static_cast<int>(burn_target)
                             : static_cast<int>(sender))
     << ")";
  return os.str();
}

Transaction make_transfer(std::uint64_t id, NodeId sender,
                          std::size_t payload_size) {
  Transaction tx;
  tx.id = id;
  tx.sender = sender;
  tx.kind = Transaction::Kind::kTransfer;
  tx.payload.assign(payload_size, static_cast<std::uint8_t>(id & 0xff));
  return tx;
}

Transaction make_burn(std::uint64_t id, NodeId submitter, NodeId target) {
  Transaction tx;
  tx.id = id;
  tx.sender = submitter;
  tx.kind = Transaction::Kind::kBurn;
  tx.burn_target = target;
  return tx;
}

}  // namespace ratcon::ledger
