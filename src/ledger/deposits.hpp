#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"

namespace ratcon::ledger {

/// One penalty event: a verified Proof-of-Fraud burned `amount` of
/// `player`'s remaining deposit during consensus round `round` (0 when the
/// caller had no round context). Amount 0 records a conviction that found
/// nothing left to burn (already slashed, withdrawn, or zero collateral).
struct BurnEvent {
  NodeId player = kNoNode;
  std::int64_t amount = 0;
  Round round = 0;
};

/// Collateral accounting (paper §4.1.2 Penalty and §5.3.1): every player
/// deposits L before participating; a verified Proof-of-Fraud burns
/// ("stashes") the deviating player's deposit. Honest players must never be
/// burned — tests enforce that invariant.
class DepositLedger {
 public:
  explicit DepositLedger(std::int64_t collateral_per_player = 100)
      : collateral_(collateral_per_player) {}

  /// Registers `n` players each depositing the collateral L.
  void register_players(std::uint32_t n);

  /// Burns the remaining deposit of `player` (idempotent: a player already
  /// slashed yields no second event). Returns the amount burned by this
  /// call. `round` tags the resulting BurnEvent with the consensus round
  /// whose Proof-of-Fraud triggered it.
  std::int64_t burn(NodeId player, Round round = 0);

  /// Returns the player's remaining balance and zeroes it without marking
  /// the player slashed (exit from the protocol; a later conviction then
  /// finds nothing to burn).
  std::int64_t withdraw(NodeId player);

  [[nodiscard]] std::int64_t balance(NodeId player) const;
  [[nodiscard]] bool slashed(NodeId player) const;
  [[nodiscard]] std::int64_t total_burned() const { return total_burned_; }
  [[nodiscard]] std::int64_t collateral() const { return collateral_; }

  /// End-state balance minus the collateral deposited: 0 for an untouched
  /// player, −L after a slash or withdraw (never registered players: 0).
  [[nodiscard]] std::int64_t delta(NodeId player) const;

  /// All players whose deposit has been burned.
  [[nodiscard]] std::vector<NodeId> slashed_players() const;

  /// Every penalty applied, in application order.
  [[nodiscard]] const std::vector<BurnEvent>& events() const {
    return events_;
  }

 private:
  std::int64_t collateral_;
  std::map<NodeId, std::int64_t> balances_;
  std::map<NodeId, bool> slashed_;
  std::vector<BurnEvent> events_;
  std::int64_t total_burned_ = 0;
};

}  // namespace ratcon::ledger
