#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"

namespace ratcon::ledger {

/// Collateral accounting (paper §4.1.2 Penalty and §5.3.1): every player
/// deposits L before participating; a verified Proof-of-Fraud burns
/// ("stashes") the deviating player's deposit. Honest players must never be
/// burned — tests enforce that invariant.
class DepositLedger {
 public:
  explicit DepositLedger(std::int64_t collateral_per_player = 100)
      : collateral_(collateral_per_player) {}

  /// Registers `n` players each depositing the collateral L.
  void register_players(std::uint32_t n);

  /// Burns the remaining deposit of `player` (idempotent). Returns the
  /// amount burned by this call.
  std::int64_t burn(NodeId player);

  [[nodiscard]] std::int64_t balance(NodeId player) const;
  [[nodiscard]] bool slashed(NodeId player) const;
  [[nodiscard]] std::int64_t total_burned() const { return total_burned_; }
  [[nodiscard]] std::int64_t collateral() const { return collateral_; }

  /// All players whose deposit has been burned.
  [[nodiscard]] std::vector<NodeId> slashed_players() const;

 private:
  std::int64_t collateral_;
  std::map<NodeId, std::int64_t> balances_;
  std::map<NodeId, bool> slashed_;
  std::int64_t total_burned_ = 0;
};

}  // namespace ratcon::ledger
