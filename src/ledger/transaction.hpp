#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serialize.hpp"
#include "crypto/sha256.hpp"

namespace ratcon::ledger {

/// A state change proposed for inclusion in a block. Besides ordinary
/// transfers, a `kBurn` transaction consumes a Proof-of-Fraud and stashes
/// the guilty player's collateral (paper §5.3.1: "this PoF can be used as an
/// input to the transaction to burn the collateral L of the player Pi").
struct Transaction {
  enum class Kind : std::uint8_t { kTransfer = 0, kBurn = 1 };

  std::uint64_t id = 0;       ///< Client-assigned unique id.
  NodeId sender = kNoNode;    ///< Submitting client/player.
  Kind kind = Kind::kTransfer;
  NodeId burn_target = kNoNode;  ///< For kBurn: whose collateral is stashed.
  Bytes payload;              ///< Opaque application bytes.

  void encode(Writer& w) const;
  static Transaction decode(Reader& r);

  /// Digest used as a Merkle leaf.
  [[nodiscard]] crypto::Hash256 hash() const;

  /// Encoded size in bytes (block byte-budget accounting). Kept in sync
  /// with encode(): fixed header + length-prefixed payload.
  [[nodiscard]] std::size_t wire_size() const { return 21 + payload.size(); }

  [[nodiscard]] std::string summary() const;

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

/// Convenience factory for a transfer carrying `payload_size` filler bytes.
Transaction make_transfer(std::uint64_t id, NodeId sender,
                          std::size_t payload_size = 32);

/// Burn transaction consuming a PoF against `target`.
Transaction make_burn(std::uint64_t id, NodeId submitter, NodeId target);

}  // namespace ratcon::ledger
