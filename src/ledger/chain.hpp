#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ledger/block.hpp"

namespace ratcon::ledger {

/// A player's local ledger C_i: a chain of agreed blocks with a
/// tentative suffix. Following the paper (§3.1, §5.3.2):
///
///  * blocks reaching tentative consensus (commit-quorum) are appended as
///    *tentative* and "might be rolled back once the network synchronizes";
///  * a block reaching final consensus is *finalized*, and finalizing a
///    block finalizes every tentative ancestor below it;
///  * the common-prefix property C^{⌊z} is checked over finalized prefixes.
class Chain {
 public:
  Chain();

  /// Appends a tentatively-agreed block. The block's parent must be the
  /// current tip hash; returns false (and ignores the block) otherwise.
  bool append_tentative(Block block);

  /// Marks the block at `height` (and all below) final. Returns false if
  /// `height` is beyond the tip.
  bool finalize_up_to(std::uint64_t height);

  /// Finds the height of a tentative block by hash and finalizes up to it.
  bool finalize_block(const crypto::Hash256& block_hash);

  /// Rolls back all tentative blocks above the finalized prefix (paper:
  /// tentative blocks are "subject to rollbacks in case of adversarial
  /// behaviour"). Returns the number of blocks dropped.
  std::size_t rollback_tentative();

  /// Catch-up splice (src/sync): adopts a hash-linked run of *finalized*
  /// blocks occupying heights `first_height ..`. Validates that the run
  /// starts directly above the finalized tip and chains from it, rolls
  /// back any conflicting tentative suffix (a genuine lock is restored
  /// byte-identical by the re-append, since a corroborated finalized chain
  /// extends it), appends and finalizes. Returns false — with the chain
  /// unchanged except for a possible rollback — when the run does not
  /// connect. `rolled_back`, when non-null, receives the number of
  /// tentative blocks dropped.
  bool adopt_finalized_run(const std::vector<Block>& blocks,
                           std::uint64_t first_height,
                           std::size_t* rolled_back = nullptr);

  // -- Accessors ------------------------------------------------------------

  /// Height of the chain including tentative blocks (genesis = 0).
  [[nodiscard]] std::uint64_t height() const { return blocks_.size() - 1; }

  /// Height of the last finalized block.
  [[nodiscard]] std::uint64_t finalized_height() const { return finalized_; }

  /// Hash of the tip (including tentative blocks) — next block's parent.
  [[nodiscard]] const crypto::Hash256& tip_hash() const { return tip_hash_; }

  /// Block at `height` (genesis at 0). Requires height <= height().
  [[nodiscard]] const Block& at(std::uint64_t height) const {
    return blocks_[height];
  }

  /// Hash of the block at `height`, computed once at append time. Callers
  /// holding a Chain should prefer this over `at(h).hash()`: Block::hash()
  /// rebuilds the transaction Merkle root on every call, which under
  /// production-scale workloads (hundreds of heights x large committees)
  /// dominated whole-run profiles.
  [[nodiscard]] const crypto::Hash256& hash_at(std::uint64_t height) const {
    return hashes_[height];
  }

  [[nodiscard]] bool is_final(std::uint64_t height) const {
    return height <= finalized_;
  }

  /// Whether a finalized block contains transaction `tx_id`.
  [[nodiscard]] bool finalized_contains_tx(std::uint64_t tx_id) const;

  /// Whether any block (tentative included) contains `tx_id`.
  [[nodiscard]] bool contains_tx(std::uint64_t tx_id) const;

  /// All finalized block hashes, genesis first.
  [[nodiscard]] std::vector<crypto::Hash256> finalized_hashes() const;

  /// The paper's C^{⌊c}: hashes after removing the last `c` blocks
  /// (over the finalized prefix).
  [[nodiscard]] std::vector<crypto::Hash256> prefix_hashes(
      std::uint64_t drop_last) const;

  /// Observer fired once per newly finalized height, ascending, with the
  /// block at that height — every protocol's finality (direct, bulk, and
  /// sync adoption) funnels through finalize_up_to, so this is the single
  /// hook the workload engine needs for exact per-transaction finalization
  /// timestamps. Fired after `finalized_height()` already covers the
  /// height. At most one observer; installing replaces the previous one.
  using FinalizeObserver =
      std::function<void(std::uint64_t height, const Block&)>;
  void set_finalize_observer(FinalizeObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  std::vector<Block> blocks_;  // blocks_[0] = genesis
  /// hashes_[h] == blocks_[h].hash(), maintained by append/rollback so the
  /// hot paths (announces, anchors, finalize-by-hash) never re-Merkle.
  std::vector<crypto::Hash256> hashes_;
  std::uint64_t finalized_ = 0;
  crypto::Hash256 tip_hash_;
  FinalizeObserver observer_;
};

/// Checks (t,k)-agreement's ordering condition between two ledgers: with
/// |C1| <= |C2|, C1^{⌊c} must be a prefix of C2 (Definition 1,
/// c-strict ordering). Returns true when the property holds.
bool c_strict_ordering_holds(const Chain& a, const Chain& b,
                             std::uint64_t c = 0);

/// Detects disagreement (σ_Fork): two ledgers with different finalized
/// blocks at the same height.
bool chains_conflict(const Chain& a, const Chain& b);

}  // namespace ratcon::ledger
