#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "common/time.hpp"
#include "ledger/transaction.hpp"

namespace ratcon::ledger {

/// Pending-transaction pool with arrival-time tracking, which the censorship
/// experiments (Theorem 2, (t,k)-censorship resistance) use to measure how
/// long an input transaction stays excluded from finalized blocks.
class Mempool {
 public:
  /// Adds a transaction observed at `arrival`. Duplicate ids are ignored.
  void submit(Transaction tx, SimTime arrival);

  /// Selects up to `max_txs` pending transactions in arrival order,
  /// skipping any for which `censor` returns true (the θ=2 strategy π_pc
  /// plugs in here). `censor` may be null.
  [[nodiscard]] std::vector<Transaction> select(
      std::size_t max_txs,
      const std::function<bool(const Transaction&)>& censor = nullptr) const;

  /// Removes transactions included in an agreed block.
  void mark_included(const std::vector<Transaction>& txs);

  /// Re-queues transactions from a rolled-back block (keeps original
  /// arrival order).
  void restore(const std::vector<Transaction>& txs);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] bool has_tx(std::uint64_t id) const {
    return known_.count(id) > 0 && !included_.count(id);
  }

  /// Arrival time of a pending/known tx, or kSimTimeNever.
  [[nodiscard]] SimTime arrival_of(std::uint64_t id) const;

 private:
  struct Entry {
    Transaction tx;
    SimTime arrival;
  };
  std::deque<Entry> queue_;
  std::set<std::uint64_t> known_;
  std::set<std::uint64_t> included_;
};

}  // namespace ratcon::ledger
