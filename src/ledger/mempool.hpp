#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "ledger/transaction.hpp"

namespace ratcon::ledger {

/// Size/retention policy for a Mempool. The defaults are unbounded, which
/// preserves the historical behaviour; production-scale workload runs cap
/// the pool so sustained overload degrades by shedding transactions (a
/// counted, observable event) instead of growing without limit.
struct MempoolLimits {
  /// Maximum pending transactions. 0 = unbounded.
  std::size_t max_pending = 0;
  /// Overflow policy when full: true drops the oldest pending transaction
  /// to make room (freshness wins), false rejects the newcomer.
  bool evict_oldest = true;
  /// How many included transaction ids to remember for duplicate
  /// suppression. Without a bound this set grows with chain length;
  /// dropping the oldest ids after tens of thousands of heights only
  /// risks re-admitting a transaction whose inclusion is ancient history.
  std::size_t included_history = 1u << 16;

  friend bool operator==(const MempoolLimits&, const MempoolLimits&) = default;
};

/// Pending-transaction pool with arrival-time tracking, which the censorship
/// experiments (Theorem 2, (t,k)-censorship resistance) use to measure how
/// long an input transaction stays excluded from finalized blocks, and
/// which the workload engine pressures with open-loop arrival streams.
///
/// Every id-keyed operation is O(1) (one hash-map lookup); select walks the
/// arrival-ordered queue. Rollback interleavings are safe by construction:
/// `restore` re-queues a rolled-back transaction at the front with its
/// original arrival time, so select order and censorship-latency
/// measurements survive include -> rollback -> re-include cycles.
class Mempool {
 public:
  Mempool() = default;
  explicit Mempool(MempoolLimits limits) : limits_(limits) {}

  void set_limits(MempoolLimits limits) { limits_ = limits; }
  [[nodiscard]] const MempoolLimits& limits() const { return limits_; }

  /// Adds a transaction observed at `arrival`. Duplicate ids (pending or
  /// remembered-included) are ignored. Returns true iff the newcomer was
  /// admitted — under the evict-oldest policy a full pool still admits it
  /// (dropping the oldest, counted in evicted()); under the reject policy
  /// the newcomer is turned away (false, counted in rejected()).
  bool submit(Transaction tx, SimTime arrival);

  /// Selects up to `max_txs` pending transactions in arrival order,
  /// skipping any for which `censor` returns true (the θ=2 strategy π_pc
  /// plugs in here). `censor` may be null.
  [[nodiscard]] std::vector<Transaction> select(
      std::size_t max_txs,
      const std::function<bool(const Transaction&)>& censor = nullptr) const;

  /// As above with a byte budget: stops before a transaction whose encoded
  /// size would push the batch past `max_bytes` (0 = unbounded). A single
  /// oversized transaction is still returned alone rather than starving
  /// forever.
  [[nodiscard]] std::vector<Transaction> select(
      std::size_t max_txs, std::size_t max_bytes,
      const std::function<bool(const Transaction&)>& censor) const;

  /// Removes transactions included in an agreed block (and remembers the
  /// ids, bounded by MempoolLimits::included_history, so gossip duplicates
  /// do not re-enter).
  void mark_included(const std::vector<Transaction>& txs);

  /// Re-queues transactions from a rolled-back block at the front of the
  /// pool, restoring each one's original arrival time.
  void restore(const std::vector<Transaction>& txs);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] bool has_tx(std::uint64_t id) const {
    const auto it = known_.find(id);
    return it != known_.end() && !it->second.included;
  }

  /// Arrival time of a pending tx, or kSimTimeNever.
  [[nodiscard]] SimTime arrival_of(std::uint64_t id) const;

  /// Overflow counters: transactions dropped to make room / turned away.
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  struct Entry {
    Transaction tx;
    SimTime arrival;
  };
  struct TxState {
    SimTime arrival = kSimTimeNever;
    bool included = false;
  };

  void remember_included(std::uint64_t id);
  void drop_oldest_pending();

  MempoolLimits limits_;
  std::deque<Entry> queue_;  ///< pending, arrival order
  /// Everything the pool has heard of: pending entries plus the bounded
  /// included history (replaces the old unbounded known_/included_ sets).
  std::unordered_map<std::uint64_t, TxState> known_;
  std::deque<std::uint64_t> included_fifo_;  ///< history retirement order
  std::uint64_t evicted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ratcon::ledger
