#include "ledger/deposits.hpp"

#include "harness/trace.hpp"

namespace ratcon::ledger {

void DepositLedger::register_players(std::uint32_t n) {
  for (NodeId id = 0; id < n; ++id) {
    if (!balances_.count(id)) {
      balances_[id] = collateral_;
      slashed_[id] = false;
    }
  }
}

std::int64_t DepositLedger::burn(NodeId player, Round round) {
  // Idempotent: a second conviction of the same player is a no-op (no
  // double-charge, no duplicate event).
  const auto slashed_it = slashed_.find(player);
  if (slashed_it != slashed_.end() && slashed_it->second) return 0;

  auto it = balances_.find(player);
  const std::int64_t burned =
      (it == balances_.end()) ? 0 : it->second;
  if (it != balances_.end()) it->second = 0;
  slashed_[player] = true;
  total_burned_ += burned;
  events_.push_back({player, burned, round});
  // a = amount burned, aux = post-burn balance; the deposit monitor flags
  // any slash that would leave a negative balance.
  harness::trace_state(harness::TraceKind::kSlash, player, round, 0,
                       static_cast<std::uint64_t>(burned), 0,
                       it == balances_.end() ? 0 : it->second);
  return burned;
}

std::int64_t DepositLedger::withdraw(NodeId player) {
  auto it = balances_.find(player);
  if (it == balances_.end()) return 0;
  const std::int64_t out = it->second;
  it->second = 0;
  return out;
}

std::int64_t DepositLedger::balance(NodeId player) const {
  const auto it = balances_.find(player);
  return it == balances_.end() ? 0 : it->second;
}

std::int64_t DepositLedger::delta(NodeId player) const {
  const auto it = balances_.find(player);
  if (it == balances_.end()) return 0;
  return it->second - collateral_;
}

bool DepositLedger::slashed(NodeId player) const {
  const auto it = slashed_.find(player);
  return it != slashed_.end() && it->second;
}

std::vector<NodeId> DepositLedger::slashed_players() const {
  std::vector<NodeId> out;
  for (const auto& [id, s] : slashed_) {
    if (s) out.push_back(id);
  }
  return out;
}

}  // namespace ratcon::ledger
