#include "ledger/deposits.hpp"

namespace ratcon::ledger {

void DepositLedger::register_players(std::uint32_t n) {
  for (NodeId id = 0; id < n; ++id) {
    if (!balances_.count(id)) {
      balances_[id] = collateral_;
      slashed_[id] = false;
    }
  }
}

std::int64_t DepositLedger::burn(NodeId player) {
  auto it = balances_.find(player);
  if (it == balances_.end() || it->second == 0) {
    slashed_[player] = true;
    return 0;
  }
  const std::int64_t burned = it->second;
  it->second = 0;
  slashed_[player] = true;
  total_burned_ += burned;
  return burned;
}

std::int64_t DepositLedger::balance(NodeId player) const {
  const auto it = balances_.find(player);
  return it == balances_.end() ? 0 : it->second;
}

bool DepositLedger::slashed(NodeId player) const {
  const auto it = slashed_.find(player);
  return it != slashed_.end() && it->second;
}

std::vector<NodeId> DepositLedger::slashed_players() const {
  std::vector<NodeId> out;
  for (const auto& [id, s] : slashed_) {
    if (s) out.push_back(id);
  }
  return out;
}

}  // namespace ratcon::ledger
