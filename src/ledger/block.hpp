#pragma once

#include <vector>

#include "ledger/transaction.hpp"

namespace ratcon::ledger {

/// A block: a set of transactions plus a pointer to the parent block — "the
/// block agreed upon immediately before it" (paper §3.1). The block hash
/// commits to the parent, the round, the proposer and the transaction
/// Merkle root, so signed messages from one round cannot be replayed in
/// another (paper §5.1, footnote 11).
struct Block {
  crypto::Hash256 parent = crypto::kZeroHash;
  Round round = 0;
  NodeId proposer = kNoNode;
  std::vector<Transaction> txs;

  void encode(Writer& w) const;
  static Block decode(Reader& r);

  /// Merkle root over transaction hashes.
  [[nodiscard]] crypto::Hash256 tx_root() const;

  /// H(Block || round): the `h_l` value signed and voted on.
  [[nodiscard]] crypto::Hash256 hash() const;

  /// True if the block contains a transaction with `tx_id`.
  [[nodiscard]] bool contains_tx(std::uint64_t tx_id) const;

  [[nodiscard]] std::size_t wire_size() const;
};

/// The canonical genesis block (round 0 placeholder parent for round 1).
Block genesis();

}  // namespace ratcon::ledger
