#include "ledger/block.hpp"

#include "crypto/merkle.hpp"

namespace ratcon::ledger {

void Block::encode(Writer& w) const {
  w.raw(ByteSpan(parent.data(), parent.size()));
  w.u64(round);
  w.u32(proposer);
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const Transaction& tx : txs) tx.encode(w);
}

Block Block::decode(Reader& r) {
  Block b;
  r.raw_into(b.parent.data(), b.parent.size());
  b.round = r.u64();
  b.proposer = r.u32();
  const std::uint32_t count = r.count(1u << 16);
  b.txs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    b.txs.push_back(Transaction::decode(r));
  }
  return b;
}

crypto::Hash256 Block::tx_root() const {
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(txs.size());
  for (const Transaction& tx : txs) leaves.push_back(tx.hash());
  return crypto::MerkleTree::compute_root(leaves);
}

crypto::Hash256 Block::hash() const {
  Writer w;
  w.raw(ByteSpan(parent.data(), parent.size()));
  w.u64(round);
  w.u32(proposer);
  const crypto::Hash256 root = tx_root();
  w.raw(ByteSpan(root.data(), root.size()));
  return crypto::sha256(ByteSpan(w.data().data(), w.data().size()));
}

bool Block::contains_tx(std::uint64_t tx_id) const {
  for (const Transaction& tx : txs) {
    if (tx.id == tx_id) return true;
  }
  return false;
}

std::size_t Block::wire_size() const {
  Writer w;
  encode(w);
  return w.size();
}

Block genesis() {
  Block b;
  b.parent = crypto::kZeroHash;
  b.round = 0;
  b.proposer = kNoNode;
  return b;
}

}  // namespace ratcon::ledger
