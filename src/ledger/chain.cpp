#include "ledger/chain.hpp"

#include <algorithm>

namespace ratcon::ledger {

Chain::Chain() {
  blocks_.push_back(genesis());
  hashes_.push_back(blocks_.front().hash());
  tip_hash_ = hashes_.front();
}

bool Chain::append_tentative(Block block) {
  if (block.parent != tip_hash_) return false;
  tip_hash_ = block.hash();
  blocks_.push_back(std::move(block));
  hashes_.push_back(tip_hash_);
  return true;
}

bool Chain::finalize_up_to(std::uint64_t height) {
  if (height > this->height()) return false;
  if (height > finalized_) {
    const std::uint64_t from = finalized_ + 1;
    finalized_ = height;  // before the observer, so it sees a settled chain
    if (observer_) {
      for (std::uint64_t h = from; h <= height; ++h) {
        observer_(h, blocks_[h]);
      }
    }
  }
  return true;
}

bool Chain::finalize_block(const crypto::Hash256& block_hash) {
  for (std::uint64_t h = blocks_.size(); h-- > 0;) {
    if (hashes_[h] == block_hash) {
      return finalize_up_to(h);
    }
  }
  return false;
}

std::size_t Chain::rollback_tentative() {
  const std::size_t dropped = blocks_.size() - 1 - finalized_;
  blocks_.resize(finalized_ + 1);
  hashes_.resize(finalized_ + 1);
  tip_hash_ = hashes_.back();
  return dropped;
}

bool Chain::adopt_finalized_run(const std::vector<Block>& blocks,
                                std::uint64_t first_height,
                                std::size_t* rolled_back) {
  if (rolled_back != nullptr) *rolled_back = 0;
  if (blocks.empty() || first_height != finalized_ + 1) return false;
  if (blocks.front().parent != hashes_[finalized_]) return false;
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i].parent != blocks[i - 1].hash()) return false;
  }
  if (height() > finalized_) {
    const std::size_t dropped = rollback_tentative();
    if (rolled_back != nullptr) *rolled_back = dropped;
  }
  for (const Block& b : blocks) {
    if (!append_tentative(b)) return false;  // unreachable: linkage checked
  }
  return finalize_up_to(height());
}

bool Chain::finalized_contains_tx(std::uint64_t tx_id) const {
  for (std::uint64_t h = 0; h <= finalized_; ++h) {
    if (blocks_[h].contains_tx(tx_id)) return true;
  }
  return false;
}

bool Chain::contains_tx(std::uint64_t tx_id) const {
  for (const Block& b : blocks_) {
    if (b.contains_tx(tx_id)) return true;
  }
  return false;
}

std::vector<crypto::Hash256> Chain::finalized_hashes() const {
  return {hashes_.begin(),
          hashes_.begin() + static_cast<std::ptrdiff_t>(finalized_ + 1)};
}

std::vector<crypto::Hash256> Chain::prefix_hashes(
    std::uint64_t drop_last) const {
  std::vector<crypto::Hash256> out = finalized_hashes();
  const std::size_t drop =
      std::min<std::size_t>(out.size(), static_cast<std::size_t>(drop_last));
  out.resize(out.size() - drop);
  return out;
}

bool c_strict_ordering_holds(const Chain& a, const Chain& b, std::uint64_t c) {
  const Chain& shorter =
      a.finalized_height() <= b.finalized_height() ? a : b;
  const Chain& longer =
      a.finalized_height() <= b.finalized_height() ? b : a;
  const auto prefix = shorter.prefix_hashes(c);
  const auto full = longer.finalized_hashes();
  if (prefix.size() > full.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), full.begin());
}

bool chains_conflict(const Chain& a, const Chain& b) {
  const std::uint64_t upto =
      std::min(a.finalized_height(), b.finalized_height());
  for (std::uint64_t h = 0; h <= upto; ++h) {
    if (a.hash_at(h) != b.hash_at(h)) return true;
  }
  return false;
}

}  // namespace ratcon::ledger
