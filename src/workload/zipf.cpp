#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace ratcon::workload {

ZipfSampler::ZipfSampler(std::uint64_t population, double exponent)
    : population_(std::max<std::uint64_t>(1, population)),
      exponent_(std::max(0.0, exponent)) {
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(population_) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

// H(x) = integral of x^-s: (x^(1-s) - 1) / (1 - s), log(x) at s = 1.
double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  // expm1/log1p keep precision near s = 1 (the helper form from the
  // reference implementation).
  const double t = (1.0 - exponent_) * log_x;
  if (std::abs(t) > 1e-8) {
    return std::expm1(t) / (1.0 - exponent_);
  }
  // t -> 0: expm1(t)/ (1-s) ~ log_x * (1 + t/2)
  return log_x * (1.0 + t * 0.5);
}

double ZipfSampler::h(double x) const {
  return std::exp(-exponent_ * std::log(x));
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - exponent_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  if (std::abs(t) > 1e-8) {
    return std::exp(std::log1p(t) / (1.0 - exponent_));
  }
  return std::exp(x * (1.0 - t * 0.5));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (population_ == 1) return 0;
  if (exponent_ == 0.0) {
    return rng.uniform(0, population_ - 1);  // exact uniform fast path
  }
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform01() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(
        std::clamp(x, 1.0, static_cast<double>(population_)) + 0.5);
    k = std::clamp<std::uint64_t>(k, 1, population_);
    if (static_cast<double>(k) - x <= s_) {
      return k - 1;
    }
    if (u >= h_integral(static_cast<double>(k) + 0.5) -
                 h(static_cast<double>(k))) {
      return k - 1;
    }
  }
}

}  // namespace ratcon::workload
