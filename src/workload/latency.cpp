#include "workload/latency.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace ratcon::workload {

std::size_t LatencyHistogram::bucket_of(std::uint64_t value) {
  // Values below 2^kSubBits land in the linear prefix (one bucket per
  // value); above it, the top kSubBits+1 bits pick (octave, sub-bucket).
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int top = std::bit_width(value) - 1;  // >= kSubBits
  const int shift = top - kSubBits;
  const std::size_t sub =
      static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
  const std::size_t octave = static_cast<std::size_t>(top - kSubBits + 1);
  return octave * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t bucket) {
  if (bucket < kSubBuckets) return bucket;
  const std::size_t octave = bucket / kSubBuckets;
  const std::size_t sub = bucket % kSubBuckets;
  const int shift = static_cast<int>(octave) - 1;
  // Highest value whose (octave, sub) decomposition is this bucket.
  const std::uint64_t base =
      (std::uint64_t{1} << (shift + kSubBits)) +
      (static_cast<std::uint64_t>(sub) << shift);
  return base + ((std::uint64_t{1} << shift) - 1);
}

void LatencyHistogram::record(SimTime latency_us) {
  const std::uint64_t v =
      latency_us < 0 ? 0 : static_cast<std::uint64_t>(latency_us);
  counts_[bucket_of(v)] += 1;
  total_ += 1;
  sum_ += v;
  min_ = std::min(min_, latency_us < 0 ? 0 : latency_us);
  max_ = std::max(max_, latency_us < 0 ? 0 : latency_us);
}

LatencyHistogram& LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  if (other.total_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  return *this;
}

double LatencyHistogram::mean() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(total_);
}

SimTime LatencyHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; ceil without floating error for
  // the q = 1.0 edge.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             q * static_cast<double>(total_) + 0.9999999999));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const std::uint64_t upper = bucket_upper(i);
      return std::min<SimTime>(static_cast<SimTime>(upper), max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (empty()) {
    os << "no samples";
    return os.str();
  }
  os << "p50=" << static_cast<double>(p50()) / 1000.0 << "ms"
     << " p99=" << static_cast<double>(p99()) / 1000.0 << "ms"
     << " max=" << static_cast<double>(max()) / 1000.0 << "ms"
     << " (n=" << total_ << ")";
  return os.str();
}

double WorkloadStats::tx_per_sec() const {
  if (finalized == 0 || first_submit == kSimTimeNever ||
      last_finalize <= first_submit) {
    return 0.0;
  }
  const double span_sec =
      static_cast<double>(last_finalize - first_submit) / 1e6;
  return static_cast<double>(finalized) / span_sec;
}

WorkloadStats& WorkloadStats::merge(const WorkloadStats& other) {
  submitted += other.submitted;
  finalized += other.finalized;
  evicted += other.evicted;
  rejected += other.rejected;
  // Senders are per-run populations; the merged view keeps the maxima
  // (cells are independent universes, summing would double-count ranks).
  distinct_senders = std::max(distinct_senders, other.distinct_senders);
  top_sender_txs = std::max(top_sender_txs, other.top_sender_txs);
  first_submit = std::min(first_submit, other.first_submit);
  last_finalize = std::max(last_finalize, other.last_finalize);
  latency.merge(other.latency);
  return *this;
}

}  // namespace ratcon::workload
