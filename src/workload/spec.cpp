#include "workload/spec.hpp"

namespace ratcon::workload {

const char* to_string(Arrival mode) {
  switch (mode) {
    case Arrival::kFixed:
      return "fixed";
    case Arrival::kOpenLoop:
      return "open-loop";
    case Arrival::kClosedLoop:
      return "closed-loop";
  }
  return "unknown-arrival";
}

WorkloadSpec WorkloadSpec::fixed(std::uint64_t txs, SimTime start,
                                 SimTime interval) {
  WorkloadSpec spec;
  spec.mode = Arrival::kFixed;
  spec.txs = txs;
  spec.start = start;
  spec.interval = interval;
  return spec;
}

WorkloadSpec WorkloadSpec::open_loop(double rate, std::uint64_t txs,
                                     SimTime start) {
  WorkloadSpec spec;
  spec.mode = Arrival::kOpenLoop;
  spec.rate = rate;
  spec.txs = txs;
  spec.start = start;
  return spec;
}

WorkloadSpec WorkloadSpec::closed_loop(std::uint32_t clients,
                                       std::uint64_t txs, SimTime think,
                                       SimTime start) {
  WorkloadSpec spec;
  spec.mode = Arrival::kClosedLoop;
  spec.clients = clients;
  spec.txs = txs;
  spec.think = think;
  spec.start = start;
  return spec;
}

WorkloadSpec& WorkloadSpec::with_zipf(double exponent,
                                      std::uint64_t population) {
  zipf = exponent;
  senders = population;
  return *this;
}

WorkloadSpec& WorkloadSpec::with_payload(std::size_t bytes) {
  payload_bytes = bytes;
  return *this;
}

WorkloadSpec& WorkloadSpec::with_phases(std::vector<PhaseSpec> envelope) {
  phases = std::move(envelope);
  return *this;
}

}  // namespace ratcon::workload
