#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace ratcon::workload {

/// Zipf(s) sampler over ranks 0..population-1 (rank 0 hottest) using
/// rejection-inversion (Hörmann & Derflinger / Jöckel, the algorithm
/// behind Apache Commons' RejectionInversionZipfSampler): O(1) expected
/// time and O(1) memory per sample, no CDF table — a sender population of
/// millions costs the same as one of ten. Exponent 0 degenerates to
/// uniform. All randomness is drawn sequentially from the caller-supplied
/// Rng, so a forked labeled substream makes the sequence depend only on
/// (seed, label) — byte-identical between serial and parallel sweeps.
class ZipfSampler {
 public:
  /// `population` >= 1; `exponent` >= 0 (0 = uniform).
  ZipfSampler(std::uint64_t population, double exponent);

  /// Next rank in [0, population).
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t population() const { return population_; }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t population_ = 1;
  double exponent_ = 0.0;
  double h_integral_x1_ = 0.0;
  double h_integral_n_ = 0.0;
  double s_ = 0.0;
};

}  // namespace ratcon::workload
