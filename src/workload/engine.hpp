#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "consensus/replica.hpp"
#include "net/cluster.hpp"
#include "workload/latency.hpp"
#include "workload/spec.hpp"
#include "workload/zipf.hpp"

namespace ratcon::workload {

/// Client-traffic engine for one Simulation run: realizes a WorkloadSpec
/// against a deployed cluster. It generates arrivals (fixed / open-loop /
/// closed-loop, zipf-skewed senders), gossips each transaction into every
/// replica's mempool, and measures the other side — per-transaction
/// submit -> first-honest-finalization latency via observers installed on
/// every replica's chain (all four protocols finalize through
/// Chain::finalize_up_to, so the hook is protocol-agnostic and exact to
/// the event timestamp, not drive-loop granularity).
///
/// Determinism contract: every random draw comes from labeled
/// `Rng::fork` substreams of the scenario seed ("workload/arrival",
/// "workload/sender", "workload/client/<k>"), consumed in event-loop
/// order on the cell's single thread — so a cell's histogram is a pure
/// function of its ScenarioSpec and serial vs parallel sweeps are
/// byte-identical.
class WorkloadEngine {
 public:
  WorkloadEngine(WorkloadSpec spec, std::uint64_t seed,
                 std::uint32_t committee_n);

  /// Installs chain observers and schedules the generator's first
  /// arrivals. Call once, after every replica is registered with the
  /// cluster and before the run starts.
  void attach(net::Cluster& cluster,
              const std::vector<consensus::IReplica*>& replicas);

  /// Whether run_to_completion should wait for this workload to drain
  /// (open-/closed-loop with a finite tx count).
  [[nodiscard]] bool gates_completion() const {
    return spec_.gates_completion();
  }

  /// True once every transaction was generated AND finalized by every
  /// replica for which `counts` returns true (live honest replicas —
  /// crashed or adversarial ones may legitimately never catch up).
  [[nodiscard]] bool drained(
      const std::function<bool(NodeId)>& counts) const;

  /// Snapshot of the run's throughput/latency measurement. Mempool
  /// overflow counters are per-replica state and are summed in by the
  /// caller (Simulation::report).
  [[nodiscard]] WorkloadStats stats() const;

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }

 private:
  /// Generates + gossips one transaction at `at`; `client` is the owning
  /// closed-loop client (or the no-client sentinel for fixed/open modes).
  void submit_next(std::uint32_t client, SimTime at);
  void on_finalized(NodeId replica, const ledger::Block& block);
  [[nodiscard]] NodeId pick_sender(std::uint64_t index);
  [[nodiscard]] SimTime think_delay(std::uint32_t client);
  [[nodiscard]] bool is_workload_tx(std::uint64_t id) const {
    return id >= spec_.first_id && id - spec_.first_id < generated_;
  }

  WorkloadSpec spec_;
  std::uint32_t n_ = 0;
  net::Cluster* cluster_ = nullptr;
  std::vector<consensus::IReplica*> replicas_;
  std::vector<bool> honest_;

  Rng arrival_rng_;  ///< open-loop inter-arrival gaps
  Rng sender_rng_;
  ZipfSampler zipf_;
  std::vector<Rng> client_rngs_;  ///< closed-loop think-time substreams

  std::uint64_t generated_ = 0;  ///< transactions submitted so far
  std::uint64_t scheduled_ = 0;  ///< closed-loop submissions reserved
  /// Pending measurement: tx id -> submit time (erased on first honest
  /// finalization, so memory tracks in-flight txs, not history).
  std::unordered_map<std::uint64_t, SimTime> pending_;
  /// Closed-loop: tx id -> client index, for think-time chaining.
  std::unordered_map<std::uint64_t, std::uint32_t> tx_client_;
  /// Per-replica count of workload txs seen in finalized blocks.
  std::vector<std::uint64_t> finalized_per_replica_;
  /// Per-sender submission counts (the skew axis measurement).
  std::unordered_map<NodeId, std::uint64_t> sender_txs_;

  LatencyHistogram latency_;
  std::uint64_t finalized_ = 0;
  SimTime first_submit_ = kSimTimeNever;
  SimTime last_finalize_ = 0;
};

}  // namespace ratcon::workload
