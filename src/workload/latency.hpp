#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace ratcon::workload {

/// Fixed-bucket latency histogram (HdrHistogram-style log-linear layout:
/// 8 sub-buckets per power of two). Every field is an integer, merge is
/// element-wise addition, and comparison is defaulted — so "serial and
/// parallel sweeps produce byte-identical histograms" is checkable with
/// operator== and the determinism regression needs no tolerance. Covers
/// the full SimTime range (microseconds up to ~2^62) in 512 buckets with
/// a worst-case quantile error of one sub-bucket (~12.5%).
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;               ///< 2^3 sub-buckets/octave
  static constexpr std::size_t kSubBuckets = 1u << kSubBits;
  static constexpr std::size_t kBuckets = 64 * kSubBuckets;

  /// Records one latency sample (negative values clamp to 0).
  void record(SimTime latency_us);

  /// Element-wise addition of another histogram (counts commute, so any
  /// merge order — per-cell, per-worker — yields identical bytes).
  LatencyHistogram& merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] SimTime min() const { return empty() ? 0 : min_; }
  [[nodiscard]] SimTime max() const { return max_; }
  /// Exact arithmetic mean of the recorded samples (sum is exact).
  [[nodiscard]] double mean() const;

  /// Value at quantile `q` in [0, 1]: the upper bound of the first bucket
  /// whose cumulative count reaches q * total (conservative — reported
  /// percentiles never understate), clamped to the observed max. 0 when
  /// empty.
  [[nodiscard]] SimTime quantile(double q) const;
  [[nodiscard]] SimTime p50() const { return quantile(0.50); }
  [[nodiscard]] SimTime p99() const { return quantile(0.99); }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const {
    return counts_[bucket];
  }

  /// "p50=12.3ms p99=45.6ms max=50.1ms (n=10000)" — for summaries.
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

  /// Bucket index for a value — exposed for the layout tests.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value);
  /// Inclusive upper bound of a bucket's value range.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t bucket);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  SimTime min_ = kSimTimeNever;
  SimTime max_ = 0;
};

/// Throughput + latency measurement of one run's workload — the piece that
/// rides RunReport into MatrixReport summaries and BENCH_workload.json.
/// All counts are integers; merging across cells is deterministic.
struct WorkloadStats {
  std::uint64_t submitted = 0;  ///< transactions handed to the mempools
  std::uint64_t finalized = 0;  ///< first-honest-replica finalizations
  std::uint64_t evicted = 0;    ///< mempool overflow evictions (all replicas)
  std::uint64_t rejected = 0;   ///< mempool overflow rejections (all replicas)
  std::uint64_t distinct_senders = 0;  ///< senders that submitted >= 1 tx
  std::uint64_t top_sender_txs = 0;    ///< tx count of the hottest sender
  SimTime first_submit = kSimTimeNever;
  SimTime last_finalize = 0;
  /// Submit -> first honest finalization, per transaction.
  LatencyHistogram latency;

  /// Sustained throughput: finalized transactions per second of virtual
  /// time between the first submission and the last finalization.
  [[nodiscard]] double tx_per_sec() const;

  [[nodiscard]] bool empty() const { return submitted == 0; }

  /// Merges another run's stats (sweep aggregation).
  WorkloadStats& merge(const WorkloadStats& other);

  friend bool operator==(const WorkloadStats&, const WorkloadStats&) = default;
};

}  // namespace ratcon::workload
