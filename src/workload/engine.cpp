#include "workload/engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "harness/profiler.hpp"
#include "ledger/transaction.hpp"

namespace ratcon::workload {

using harness::ProfTimer;
using harness::prof_count;

namespace {

/// Client slot for arrivals that no closed-loop client owns.
constexpr std::uint32_t kNoClient = UINT32_MAX;

/// Open-loop phase envelope lookup: rate multiplier at `offset` past the
/// workload start, plus the offset where the current segment ends (so a
/// zero-rate segment can be skipped in one hop). Past the last segment the
/// base rate resumes forever.
struct EnvelopeAt {
  double mult = 1.0;
  SimTime segment_end = kSimTimeNever;
};

EnvelopeAt envelope_at(const std::vector<PhaseSpec>& phases, SimTime offset) {
  SimTime begin = 0;
  for (const PhaseSpec& p : phases) {
    const SimTime end = begin + std::max<SimTime>(0, p.duration);
    if (offset < end) return {p.rate_mult, end};
    begin = end;
  }
  return {1.0, kSimTimeNever};
}

}  // namespace

WorkloadEngine::WorkloadEngine(WorkloadSpec spec, std::uint64_t seed,
                               std::uint32_t committee_n)
    : spec_(std::move(spec)),
      n_(std::max<std::uint32_t>(1, committee_n)),
      arrival_rng_(Rng(seed).fork("workload/arrival")),
      sender_rng_(Rng(seed).fork("workload/sender")),
      zipf_(spec_.senders > 0 ? spec_.senders : n_, spec_.zipf) {
  const Rng base(seed);
  client_rngs_.reserve(spec_.clients);
  for (std::uint32_t k = 0; k < spec_.clients; ++k) {
    client_rngs_.push_back(base.fork("workload/client/" + std::to_string(k)));
  }
}

void WorkloadEngine::attach(net::Cluster& cluster,
                            const std::vector<consensus::IReplica*>& replicas) {
  cluster_ = &cluster;
  replicas_ = replicas;
  honest_.clear();
  honest_.reserve(replicas.size());
  for (consensus::IReplica* r : replicas_) honest_.push_back(r->is_honest());
  finalized_per_replica_.assign(replicas.size(), 0);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    replicas_[i]->chain_mut().set_finalize_observer(
        [this, id](std::uint64_t /*height*/, const ledger::Block& block) {
          on_finalized(id, block);
        });
  }
  if (spec_.empty()) return;

  ProfTimer timer(harness::kL1WorkloadNs, harness::kL2WorkloadGenerateNs);
  switch (spec_.mode) {
    case Arrival::kFixed: {
      // Identical schedule to the legacy inject_workload: txs arrivals
      // spaced `interval` apart, queued in id order from the constructor
      // (so a tx racing a same-tick fault event still lands first).
      for (std::uint64_t i = 0; i < spec_.txs; ++i) {
        const SimTime at =
            spec_.start + static_cast<SimTime>(i) * spec_.interval;
        cluster_->schedule(at - cluster_->now(),
                           [this, at]() { submit_next(kNoClient, at); });
      }
      break;
    }
    case Arrival::kOpenLoop: {
      // Pre-generate the whole arrival process in one pass over the
      // labeled substream: exponential gaps at the phase-modulated rate.
      // Consuming the stream here, in a single deterministic order, keeps
      // the schedule a pure function of (seed, spec) no matter how the
      // run itself interleaves.
      const double base_rate = std::max(spec_.rate, 1e-9);
      SimTime at = spec_.start;
      for (std::uint64_t i = 0; i < spec_.txs; ++i) {
        EnvelopeAt env = envelope_at(spec_.phases, at - spec_.start);
        while (env.mult <= 0.0 && env.segment_end != kSimTimeNever) {
          at = spec_.start + env.segment_end;  // hop over a zero-rate lull
          env = envelope_at(spec_.phases, at - spec_.start);
        }
        const double rate = base_rate * std::max(env.mult, 1e-9);
        const double gap_us = arrival_rng_.exponential(1e6 / rate);
        at += std::max<SimTime>(1, std::llround(gap_us));
        cluster_->schedule(at - cluster_->now(),
                           [this, at]() { submit_next(kNoClient, at); });
      }
      break;
    }
    case Arrival::kClosedLoop: {
      // Each client draws an initial think-time so the population does not
      // arrive as one burst; afterwards its next submission chains off the
      // first honest finalization of its previous transaction.
      const std::uint32_t clients =
          std::max<std::uint32_t>(1, spec_.clients);
      for (std::uint32_t k = 0; k < clients && scheduled_ < spec_.txs; ++k) {
        ++scheduled_;
        const SimTime at = spec_.start + think_delay(k);
        cluster_->schedule(at - cluster_->now(),
                           [this, k, at]() { submit_next(k, at); });
      }
      break;
    }
  }
}

SimTime WorkloadEngine::think_delay(std::uint32_t client) {
  const double mean_us =
      std::max(1.0, static_cast<double>(std::max<SimTime>(1, spec_.think)));
  const double d = client_rngs_[client].exponential(mean_us);
  return std::max<SimTime>(1, std::llround(d));
}

NodeId WorkloadEngine::pick_sender(std::uint64_t index) {
  if (spec_.mode == Arrival::kFixed && spec_.zipf <= 0.0 &&
      spec_.senders == 0) {
    return static_cast<NodeId>(index % n_);  // legacy round-robin
  }
  if (spec_.zipf > 0.0) {
    return static_cast<NodeId>(zipf_.sample(sender_rng_));
  }
  return static_cast<NodeId>(
      sender_rng_.uniform(0, zipf_.population() - 1));
}

void WorkloadEngine::submit_next(std::uint32_t client, SimTime at) {
  ledger::Transaction tx;
  {
    ProfTimer gen(harness::kL1WorkloadNs, harness::kL2WorkloadGenerateNs);
    const std::uint64_t index = generated_;
    const std::uint64_t id = spec_.first_id + index;
    tx = ledger::make_transfer(id, pick_sender(index), spec_.payload_bytes);
    ++generated_;
    pending_.emplace(id, at);
    if (client != kNoClient) tx_client_.emplace(id, client);
    ++sender_txs_[tx.sender];
    first_submit_ = std::min(first_submit_, at);
  }
  ProfTimer sub(harness::kL1WorkloadNs, harness::kL2WorkloadSubmitNs);
  prof_count(harness::kL3WorkloadTxsSubmitted);
  for (consensus::IReplica* r : replicas_) {
    r->mempool().submit(tx, at);
  }
}

void WorkloadEngine::on_finalized(NodeId replica, const ledger::Block& block) {
  ProfTimer track(harness::kL1WorkloadNs, harness::kL2WorkloadTrackNs);
  const SimTime now = cluster_ != nullptr ? cluster_->now() : 0;
  for (const ledger::Transaction& tx : block.txs) {
    if (!is_workload_tx(tx.id)) continue;
    ++finalized_per_replica_[replica];
    if (!honest_[replica]) continue;
    const auto it = pending_.find(tx.id);
    if (it == pending_.end()) continue;  // already first-finalized elsewhere
    latency_.record(now - it->second);
    pending_.erase(it);
    ++finalized_;
    last_finalize_ = std::max(last_finalize_, now);
    prof_count(harness::kL3WorkloadTxsFinalized);

    // Closed-loop chaining: this client may now think, then submit again.
    const auto client_it = tx_client_.find(tx.id);
    if (client_it == tx_client_.end()) continue;
    const std::uint32_t k = client_it->second;
    tx_client_.erase(client_it);
    if (scheduled_ < spec_.txs) {
      ++scheduled_;
      const SimTime at = now + think_delay(k);
      cluster_->schedule(at - now, [this, k, at]() { submit_next(k, at); });
    }
  }
}

bool WorkloadEngine::drained(
    const std::function<bool(NodeId)>& counts) const {
  if (!gates_completion()) return true;
  if (generated_ < spec_.txs || finalized_ < spec_.txs) return false;
  for (std::size_t i = 0; i < finalized_per_replica_.size(); ++i) {
    if (counts && !counts(static_cast<NodeId>(i))) continue;
    if (finalized_per_replica_[i] < spec_.txs) return false;
  }
  return true;
}

WorkloadStats WorkloadEngine::stats() const {
  WorkloadStats s;
  s.submitted = generated_;
  s.finalized = finalized_;
  s.distinct_senders = sender_txs_.size();
  for (const auto& [sender, count] : sender_txs_) {
    (void)sender;
    s.top_sender_txs = std::max(s.top_sender_txs, count);
  }
  s.first_submit = first_submit_;
  s.last_finalize = last_finalize_;
  s.latency = latency_;
  return s;
}

}  // namespace ratcon::workload
