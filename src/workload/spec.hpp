#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace ratcon::workload {

/// How client transactions arrive at the committee.
enum class Arrival : std::uint8_t {
  /// Legacy fixed-interval injection (the old WorkloadPlan): `txs`
  /// transfers spaced `interval` apart from `start`, senders round-robin
  /// over the committee. Zero randomness — byte-identical to the pre-engine
  /// harness, so every existing scenario reproduces unchanged.
  kFixed = 0,
  /// Open-loop: arrivals are a Poisson-ish process at `rate` tx/sec of
  /// virtual time (inter-arrival gaps drawn from a deterministic
  /// `Rng::fork("workload/...")` substream keyed only by the scenario
  /// seed, so serial and parallel sweeps stay byte-identical). Clients do
  /// not wait for finalization: backlog builds when the committee cannot
  /// keep up — the configuration that measures capacity.
  kOpenLoop = 1,
  /// Closed-loop: `clients` concurrent clients, each submitting its next
  /// transaction only after its previous one first finalizes on an honest
  /// replica, plus an exponential think-time with mean `think`. In-flight
  /// transactions are bounded by the client count — the configuration that
  /// measures latency floor.
  kClosedLoop = 2,
};

[[nodiscard]] const char* to_string(Arrival mode);

/// One segment of an open-loop rate envelope: for `duration` of virtual
/// time the base rate is multiplied by `rate_mult` (burst > 1, lull < 1,
/// ramp = a staircase of segments). Segments apply sequentially from
/// `start`; after the last one the base rate resumes.
struct PhaseSpec {
  SimTime duration = 0;
  double rate_mult = 1.0;

  friend bool operator==(const PhaseSpec&, const PhaseSpec&) = default;
};

/// Client-traffic description for one scenario run (ScenarioSpec::workload).
/// Replaces the fixed-interval WorkloadPlan; the legacy fields (`txs`,
/// `start`, `interval`, `first_id`) keep their names and defaults so
/// existing call sites read identically in kFixed mode.
struct WorkloadSpec {
  Arrival mode = Arrival::kFixed;

  /// Total transactions the run generates (all modes). 0 = no workload.
  std::uint64_t txs = 0;
  /// First arrival time.
  SimTime start = msec(1);
  /// kFixed: spacing between arrivals.
  SimTime interval = msec(2);
  /// First transaction id; ids are consecutive from here.
  std::uint64_t first_id = 1;

  /// kOpenLoop: base arrival rate in tx/sec of virtual time.
  double rate = 0.0;
  /// kOpenLoop: optional burst/ramp envelope (see PhaseSpec).
  std::vector<PhaseSpec> phases;

  /// kClosedLoop: concurrent clients.
  std::uint32_t clients = 0;
  /// kClosedLoop: mean think-time between a client's finalization and its
  /// next submission (exponential, per-client substream).
  SimTime think = msec(5);

  /// Sender population size for zipf-skewed sender selection. 0 = the
  /// committee size (legacy round-robin ids in kFixed mode). Senders are
  /// client ids, not committee members; a population in the millions
  /// costs O(1) per sample (rejection-inversion, no CDF table).
  std::uint64_t senders = 0;
  /// Zipf exponent for sender selection: 0 = uniform (kFixed keeps the
  /// legacy round-robin), ~0.99 = web-like skew. Rank 0 is the hottest
  /// sender, so censor-set strategies get a realistic head to target.
  double zipf = 0.0;

  /// Filler payload bytes per transfer.
  std::size_t payload_bytes = 32;

  [[nodiscard]] bool empty() const { return txs == 0; }

  /// Whether run_to_completion should keep driving until every live
  /// honest replica finalized all generated transactions. Open- and
  /// closed-loop runs gate on drain; kFixed keeps the legacy
  /// target-blocks-only exit so existing scenarios (censorship probes
  /// included) stop exactly where they used to.
  [[nodiscard]] bool gates_completion() const {
    return !empty() && mode != Arrival::kFixed;
  }

  // Fluent factories for the three generator shapes.
  [[nodiscard]] static WorkloadSpec fixed(std::uint64_t txs,
                                          SimTime start = msec(1),
                                          SimTime interval = msec(2));
  [[nodiscard]] static WorkloadSpec open_loop(double rate, std::uint64_t txs,
                                              SimTime start = msec(1));
  [[nodiscard]] static WorkloadSpec closed_loop(std::uint32_t clients,
                                                std::uint64_t txs,
                                                SimTime think = msec(5),
                                                SimTime start = msec(1));

  WorkloadSpec& with_zipf(double exponent, std::uint64_t population);
  WorkloadSpec& with_payload(std::size_t bytes);
  WorkloadSpec& with_phases(std::vector<PhaseSpec> envelope);

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

}  // namespace ratcon::workload
