#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace ratcon::game {

/// System states σ from paper §4.1.1. One of these is assigned to every
/// simulated round by outcome classification.
enum class SystemState : std::uint8_t {
  kNoProgress = 0,  ///< σ_NP: no new block agreed.
  kCensorship = 1,  ///< σ_CP: progress, but censored txs excluded.
  kFork = 2,        ///< σ_Fork: two honest players finalize conflicting blocks.
  kHonest = 3,      ///< σ_0: honest execution, correctness + liveness hold.
};

const char* to_string(SystemState s);

/// Rational player type θ ∈ {0,1,2,3} (paper §4.1.1): θ=3 profits from
/// liveness, censorship or fork attacks; θ=2 from censorship or fork;
/// θ=1 only from fork; θ=0 only from honest execution.
using Theta = int;

/// Strategies available to rational players (paper §4.1.2) plus the
/// baiting strategy from §3.4 used by TRAP's analysis and the free-riding
/// variants the empirical deviation engine (src/rational) explores.
enum class Strategy : std::uint8_t {
  kHonest = 0,         ///< π_0: follow the protocol.
  kAbstain = 1,        ///< π_abs: send no messages in a phase/round.
  kDoubleSign = 2,     ///< π_ds / π_fork: sign two conflicting messages.
  kPartialCensor = 3,  ///< π_pc (Thm 2): abstain under honest leader,
                       ///<   censor when leading.
  kBait = 4,           ///< π_bait (TRAP): expose the collusion's PoF.
  kFreeRide = 5,       ///< π_free: never participate; grow the ledger
                       ///<   purely through catch-up (src/sync).
  kLazyVote = 6,       ///< π_lazy: vote in the cheap early phases, skip the
                       ///<   commit-tier phases others will certify anyway.
};

const char* to_string(Strategy s);

/// Parameters of the paper's utility structure.
struct UtilityParams {
  double alpha = 1.0;  ///< Payoff magnitude in Table 2.
  double L = 10.0;     ///< Collateral / penalty per player.
  double delta = 0.9;  ///< Per-round discount factor (Eq. 1), in [0,1).
};

/// Table 2: payoff f(σ, θ) ∈ {−α, 0, α}.
double payoff_f(SystemState sigma, Theta theta, double alpha);

/// Expected single-round utility u_i(π, θ, r) = E[f(σ,θ)] − L·D(π,σ)
/// computed over a set of observed (state, penalized) outcomes.
struct RoundOutcome {
  SystemState state = SystemState::kHonest;
  bool penalized = false;  ///< D(π, σ) = 1: player's collateral was burned.
};

double round_utility(const std::vector<RoundOutcome>& samples, Theta theta,
                     const UtilityParams& params);

/// Discounted utility across rounds (Eq. 1): U_i = Σ_r δ^r · u_r. The
/// penalty is a one-shot collateral loss, charged in the round it occurs.
double discounted_utility(const std::vector<RoundOutcome>& per_round,
                          Theta theta, const UtilityParams& params);

/// Closed form of Σ_{r=0}^{∞} δ^r · u for a stationary per-round utility —
/// used by the impossibility benches to extrapolate the infinite game.
double stationary_discounted(double per_round_utility, double delta);

/// The preferred-states column of Table 2 for a given θ.
std::string preferred_states(Theta theta);

}  // namespace ratcon::game
