#include "game/normal_form.hpp"

#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ratcon::game {

NormalFormGame::NormalFormGame(std::vector<int> strategy_counts)
    : counts_(std::move(strategy_counts)) {
  if (counts_.empty()) {
    throw std::invalid_argument("NormalFormGame: need at least one player");
  }
  std::size_t total = 1;
  for (int c : counts_) {
    if (c <= 0) throw std::invalid_argument("NormalFormGame: empty strategy set");
    total *= static_cast<std::size_t>(c);
  }
  payoffs_.assign(total, std::vector<double>(counts_.size(), 0.0));
  player_names_.resize(counts_.size());
  strategy_names_.resize(counts_.size());
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    player_names_[p] = "P" + std::to_string(p + 1);
    strategy_names_[p].resize(static_cast<std::size_t>(counts_[p]));
    for (int s = 0; s < counts_[p]; ++s) {
      strategy_names_[p][static_cast<std::size_t>(s)] = "s" + std::to_string(s);
    }
  }
}

void NormalFormGame::check_player(int player) const {
  if (player < 0 || player >= num_players()) {
    throw std::out_of_range("NormalFormGame: player " +
                            std::to_string(player) + " of " +
                            std::to_string(num_players()));
  }
}

void NormalFormGame::check_strategy(int player, int strategy) const {
  check_player(player);
  if (strategy < 0 || strategy >= counts_[static_cast<std::size_t>(player)]) {
    throw std::out_of_range(
        "NormalFormGame: strategy " + std::to_string(strategy) +
        " of player " + std::to_string(player) + " (has " +
        std::to_string(counts_[static_cast<std::size_t>(player)]) + ")");
  }
}

void NormalFormGame::set_player_name(int player, std::string name) {
  check_player(player);
  player_names_[static_cast<std::size_t>(player)] = std::move(name);
}

void NormalFormGame::set_strategy_name(int player, int strategy,
                                       std::string name) {
  check_strategy(player, strategy);
  strategy_names_[static_cast<std::size_t>(player)]
                 [static_cast<std::size_t>(strategy)] = std::move(name);
}

const std::string& NormalFormGame::player_name(int player) const {
  check_player(player);
  return player_names_[static_cast<std::size_t>(player)];
}

const std::string& NormalFormGame::strategy_name(int player,
                                                 int strategy) const {
  check_strategy(player, strategy);
  return strategy_names_[static_cast<std::size_t>(player)]
                        [static_cast<std::size_t>(strategy)];
}

std::size_t NormalFormGame::index_of(const Profile& profile) const {
  if (profile.size() != counts_.size()) {
    throw std::out_of_range("NormalFormGame: profile of " +
                            std::to_string(profile.size()) +
                            " strategies for " +
                            std::to_string(counts_.size()) + " players");
  }
  std::size_t idx = 0;
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    check_strategy(static_cast<int>(p), profile[p]);
    idx = idx * static_cast<std::size_t>(counts_[p]) +
          static_cast<std::size_t>(profile[p]);
  }
  return idx;
}

void NormalFormGame::set_payoffs(const Profile& profile,
                                 const std::vector<double>& payoffs) {
  assert(payoffs.size() == counts_.size());
  payoffs_[index_of(profile)] = payoffs;
}

void NormalFormGame::set_payoff(const Profile& profile, int player,
                                double payoff) {
  payoffs_[index_of(profile)][static_cast<std::size_t>(player)] = payoff;
}

double NormalFormGame::payoff(const Profile& profile, int player) const {
  return payoffs_[index_of(profile)][static_cast<std::size_t>(player)];
}

std::vector<int> NormalFormGame::support(const MixedStrategy& mix) {
  std::vector<int> out;
  for (std::size_t s = 0; s < mix.size(); ++s) {
    if (mix[s] > 0.0) out.push_back(static_cast<int>(s));
  }
  return out;
}

double NormalFormGame::expected_payoff(const MixedProfile& profile,
                                       int player) const {
  check_player(player);
  if (profile.size() != counts_.size()) {
    throw std::out_of_range("NormalFormGame: mixed profile of " +
                            std::to_string(profile.size()) +
                            " mixtures for " + std::to_string(counts_.size()) +
                            " players");
  }
  std::vector<std::vector<int>> supports(counts_.size());
  std::vector<double> totals(counts_.size(), 0.0);
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    const MixedStrategy& mix = profile[p];
    if (mix.size() != static_cast<std::size_t>(counts_[p])) {
      throw std::out_of_range(
          "NormalFormGame: mixture of " + std::to_string(mix.size()) +
          " weights for player " + std::to_string(p) + " (has " +
          std::to_string(counts_[p]) + " strategies)");
    }
    for (const double w : mix) {
      if (w < 0.0) {
        throw std::invalid_argument("NormalFormGame: negative mixture weight");
      }
      totals[p] += w;
    }
    if (totals[p] <= 0.0) {
      throw std::invalid_argument("NormalFormGame: all-zero mixture");
    }
    supports[p] = support(mix);
  }

  // Odometer over the support cross-product only; each cell contributes
  // payoff × Π normalized weights.
  double expected = 0.0;
  std::vector<std::size_t> at(counts_.size(), 0);
  Profile pure(counts_.size(), 0);
  while (true) {
    double prob = 1.0;
    for (std::size_t p = 0; p < counts_.size(); ++p) {
      pure[p] = supports[p][at[p]];
      prob *= profile[p][static_cast<std::size_t>(pure[p])] / totals[p];
    }
    expected += prob * payoff(pure, player);
    std::size_t p = counts_.size();
    while (p > 0) {
      --p;
      if (++at[p] < supports[p].size()) break;
      at[p] = 0;
      if (p == 0) return expected;
    }
  }
}

bool NormalFormGame::is_mixed_nash(const MixedProfile& profile,
                                   double tolerance) const {
  for (int p = 0; p < num_players(); ++p) {
    const double current = expected_payoff(profile, p);
    MixedProfile deviated = profile;
    for (int s = 0; s < counts_[static_cast<std::size_t>(p)]; ++s) {
      MixedStrategy pure(static_cast<std::size_t>(
                             counts_[static_cast<std::size_t>(p)]),
                         0.0);
      pure[static_cast<std::size_t>(s)] = 1.0;
      deviated[static_cast<std::size_t>(p)] = std::move(pure);
      if (expected_payoff(deviated, p) > current + tolerance) return false;
    }
    deviated[static_cast<std::size_t>(p)] = profile[static_cast<std::size_t>(p)];
  }
  return true;
}

MixedProfile NormalFormGame::degenerate(const Profile& profile) const {
  (void)index_of(profile);  // validate shape and ranges
  MixedProfile out(counts_.size());
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    out[p].assign(static_cast<std::size_t>(counts_[p]), 0.0);
    out[p][static_cast<std::size_t>(profile[p])] = 1.0;
  }
  return out;
}

std::vector<Profile> NormalFormGame::best_response_path(
    const Profile& start, int max_steps, double tolerance) const {
  (void)index_of(start);  // validate shape and ranges
  std::vector<Profile> path{start};
  Profile current = start;
  for (int step = 0; step < max_steps; ++step) {
    bool moved = false;
    for (int p = 0; p < num_players() && !moved; ++p) {
      const double here = payoff(current, p);
      Profile candidate = current;
      int best_s = current[static_cast<std::size_t>(p)];
      double best_u = here;
      for (int s = 0; s < counts_[static_cast<std::size_t>(p)]; ++s) {
        candidate[static_cast<std::size_t>(p)] = s;
        const double u = payoff(candidate, p);
        if (u > best_u + tolerance) {
          best_u = u;
          best_s = s;
        }
      }
      if (best_s != current[static_cast<std::size_t>(p)]) {
        current[static_cast<std::size_t>(p)] = best_s;
        path.push_back(current);
        moved = true;
      }
    }
    if (!moved) break;  // pure Nash reached
  }
  return path;
}

bool NormalFormGame::is_nash(const Profile& profile, double tolerance) const {
  for (int p = 0; p < num_players(); ++p) {
    const double current = payoff(profile, p);
    Profile deviated = profile;
    for (int s = 0; s < counts_[static_cast<std::size_t>(p)]; ++s) {
      if (s == profile[static_cast<std::size_t>(p)]) continue;
      deviated[static_cast<std::size_t>(p)] = s;
      if (payoff(deviated, p) > current + tolerance) return false;
    }
    deviated[static_cast<std::size_t>(p)] = profile[static_cast<std::size_t>(p)];
  }
  return true;
}

std::vector<Profile> NormalFormGame::pure_nash(double tolerance) const {
  std::vector<Profile> out;
  for (const Profile& profile : all_profiles()) {
    if (is_nash(profile, tolerance)) out.push_back(profile);
  }
  return out;
}

bool NormalFormGame::is_dominant(int player, int strategy,
                                 double tolerance) const {
  // For every opponent profile, `strategy` must be at least as good as every
  // alternative strategy of `player`.
  for (const Profile& profile : all_profiles()) {
    if (profile[static_cast<std::size_t>(player)] != strategy) continue;
    const double with_strategy = payoff(profile, player);
    Profile alt = profile;
    for (int s = 0; s < counts_[static_cast<std::size_t>(player)]; ++s) {
      if (s == strategy) continue;
      alt[static_cast<std::size_t>(player)] = s;
      if (payoff(alt, player) > with_strategy + tolerance) return false;
    }
  }
  return true;
}

bool NormalFormGame::pareto_dominates(const Profile& a, const Profile& b,
                                      double tolerance) const {
  bool strictly_better_somewhere = false;
  for (int p = 0; p < num_players(); ++p) {
    const double pa = payoff(a, p);
    const double pb = payoff(b, p);
    if (pa < pb - tolerance) return false;
    if (pa > pb + tolerance) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

std::vector<Profile> NormalFormGame::pareto_frontier(
    const std::vector<Profile>& candidates, double tolerance) const {
  std::vector<Profile> out;
  for (const Profile& a : candidates) {
    bool dominated = false;
    for (const Profile& b : candidates) {
      if (&a == &b) continue;
      if (pareto_dominates(b, a, tolerance)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(a);
  }
  return out;
}

std::vector<Profile> NormalFormGame::all_profiles() const {
  std::vector<Profile> out;
  Profile current(counts_.size(), 0);
  while (true) {
    out.push_back(current);
    // Increment like an odometer.
    int p = num_players() - 1;
    while (p >= 0) {
      if (++current[static_cast<std::size_t>(p)] <
          counts_[static_cast<std::size_t>(p)]) {
        break;
      }
      current[static_cast<std::size_t>(p)] = 0;
      --p;
    }
    if (p < 0) break;
  }
  return out;
}

std::string NormalFormGame::describe(const Profile& profile) const {
  (void)index_of(profile);  // validate shape and ranges
  std::ostringstream os;
  os << "(";
  for (std::size_t p = 0; p < profile.size(); ++p) {
    if (p) os << ", ";
    os << strategy_names_[p][static_cast<std::size_t>(profile[p])];
  }
  os << ")";
  return os.str();
}

}  // namespace ratcon::game
