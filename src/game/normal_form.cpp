#include "game/normal_form.hpp"

#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ratcon::game {

NormalFormGame::NormalFormGame(std::vector<int> strategy_counts)
    : counts_(std::move(strategy_counts)) {
  if (counts_.empty()) {
    throw std::invalid_argument("NormalFormGame: need at least one player");
  }
  std::size_t total = 1;
  for (int c : counts_) {
    if (c <= 0) throw std::invalid_argument("NormalFormGame: empty strategy set");
    total *= static_cast<std::size_t>(c);
  }
  payoffs_.assign(total, std::vector<double>(counts_.size(), 0.0));
  player_names_.resize(counts_.size());
  strategy_names_.resize(counts_.size());
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    player_names_[p] = "P" + std::to_string(p + 1);
    strategy_names_[p].resize(static_cast<std::size_t>(counts_[p]));
    for (int s = 0; s < counts_[p]; ++s) {
      strategy_names_[p][static_cast<std::size_t>(s)] = "s" + std::to_string(s);
    }
  }
}

void NormalFormGame::check_player(int player) const {
  if (player < 0 || player >= num_players()) {
    throw std::out_of_range("NormalFormGame: player " +
                            std::to_string(player) + " of " +
                            std::to_string(num_players()));
  }
}

void NormalFormGame::check_strategy(int player, int strategy) const {
  check_player(player);
  if (strategy < 0 || strategy >= counts_[static_cast<std::size_t>(player)]) {
    throw std::out_of_range(
        "NormalFormGame: strategy " + std::to_string(strategy) +
        " of player " + std::to_string(player) + " (has " +
        std::to_string(counts_[static_cast<std::size_t>(player)]) + ")");
  }
}

void NormalFormGame::set_player_name(int player, std::string name) {
  check_player(player);
  player_names_[static_cast<std::size_t>(player)] = std::move(name);
}

void NormalFormGame::set_strategy_name(int player, int strategy,
                                       std::string name) {
  check_strategy(player, strategy);
  strategy_names_[static_cast<std::size_t>(player)]
                 [static_cast<std::size_t>(strategy)] = std::move(name);
}

const std::string& NormalFormGame::player_name(int player) const {
  check_player(player);
  return player_names_[static_cast<std::size_t>(player)];
}

const std::string& NormalFormGame::strategy_name(int player,
                                                 int strategy) const {
  check_strategy(player, strategy);
  return strategy_names_[static_cast<std::size_t>(player)]
                        [static_cast<std::size_t>(strategy)];
}

std::size_t NormalFormGame::index_of(const Profile& profile) const {
  if (profile.size() != counts_.size()) {
    throw std::out_of_range("NormalFormGame: profile of " +
                            std::to_string(profile.size()) +
                            " strategies for " +
                            std::to_string(counts_.size()) + " players");
  }
  std::size_t idx = 0;
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    check_strategy(static_cast<int>(p), profile[p]);
    idx = idx * static_cast<std::size_t>(counts_[p]) +
          static_cast<std::size_t>(profile[p]);
  }
  return idx;
}

void NormalFormGame::set_payoffs(const Profile& profile,
                                 const std::vector<double>& payoffs) {
  assert(payoffs.size() == counts_.size());
  payoffs_[index_of(profile)] = payoffs;
}

void NormalFormGame::set_payoff(const Profile& profile, int player,
                                double payoff) {
  payoffs_[index_of(profile)][static_cast<std::size_t>(player)] = payoff;
}

double NormalFormGame::payoff(const Profile& profile, int player) const {
  return payoffs_[index_of(profile)][static_cast<std::size_t>(player)];
}

bool NormalFormGame::is_nash(const Profile& profile, double tolerance) const {
  for (int p = 0; p < num_players(); ++p) {
    const double current = payoff(profile, p);
    Profile deviated = profile;
    for (int s = 0; s < counts_[static_cast<std::size_t>(p)]; ++s) {
      if (s == profile[static_cast<std::size_t>(p)]) continue;
      deviated[static_cast<std::size_t>(p)] = s;
      if (payoff(deviated, p) > current + tolerance) return false;
    }
    deviated[static_cast<std::size_t>(p)] = profile[static_cast<std::size_t>(p)];
  }
  return true;
}

std::vector<Profile> NormalFormGame::pure_nash(double tolerance) const {
  std::vector<Profile> out;
  for (const Profile& profile : all_profiles()) {
    if (is_nash(profile, tolerance)) out.push_back(profile);
  }
  return out;
}

bool NormalFormGame::is_dominant(int player, int strategy,
                                 double tolerance) const {
  // For every opponent profile, `strategy` must be at least as good as every
  // alternative strategy of `player`.
  for (const Profile& profile : all_profiles()) {
    if (profile[static_cast<std::size_t>(player)] != strategy) continue;
    const double with_strategy = payoff(profile, player);
    Profile alt = profile;
    for (int s = 0; s < counts_[static_cast<std::size_t>(player)]; ++s) {
      if (s == strategy) continue;
      alt[static_cast<std::size_t>(player)] = s;
      if (payoff(alt, player) > with_strategy + tolerance) return false;
    }
  }
  return true;
}

bool NormalFormGame::pareto_dominates(const Profile& a, const Profile& b,
                                      double tolerance) const {
  bool strictly_better_somewhere = false;
  for (int p = 0; p < num_players(); ++p) {
    const double pa = payoff(a, p);
    const double pb = payoff(b, p);
    if (pa < pb - tolerance) return false;
    if (pa > pb + tolerance) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

std::vector<Profile> NormalFormGame::pareto_frontier(
    const std::vector<Profile>& candidates, double tolerance) const {
  std::vector<Profile> out;
  for (const Profile& a : candidates) {
    bool dominated = false;
    for (const Profile& b : candidates) {
      if (&a == &b) continue;
      if (pareto_dominates(b, a, tolerance)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(a);
  }
  return out;
}

std::vector<Profile> NormalFormGame::all_profiles() const {
  std::vector<Profile> out;
  Profile current(counts_.size(), 0);
  while (true) {
    out.push_back(current);
    // Increment like an odometer.
    int p = num_players() - 1;
    while (p >= 0) {
      if (++current[static_cast<std::size_t>(p)] <
          counts_[static_cast<std::size_t>(p)]) {
        break;
      }
      current[static_cast<std::size_t>(p)] = 0;
      --p;
    }
    if (p < 0) break;
  }
  return out;
}

std::string NormalFormGame::describe(const Profile& profile) const {
  (void)index_of(profile);  // validate shape and ranges
  std::ostringstream os;
  os << "(";
  for (std::size_t p = 0; p < profile.size(); ++p) {
    if (p) os << ", ";
    os << strategy_names_[p][static_cast<std::size_t>(profile[p])];
  }
  os << ")";
  return os.str();
}

}  // namespace ratcon::game
