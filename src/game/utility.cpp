#include "game/utility.hpp"

#include <cmath>
#include <stdexcept>

namespace ratcon::game {

const char* to_string(SystemState s) {
  switch (s) {
    case SystemState::kNoProgress: return "sigma_NP";
    case SystemState::kCensorship: return "sigma_CP";
    case SystemState::kFork: return "sigma_Fork";
    case SystemState::kHonest: return "sigma_0";
  }
  return "?";
}

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kHonest: return "pi_0";
    case Strategy::kAbstain: return "pi_abs";
    case Strategy::kDoubleSign: return "pi_ds";
    case Strategy::kPartialCensor: return "pi_pc";
    case Strategy::kBait: return "pi_bait";
    case Strategy::kFreeRide: return "pi_free";
    case Strategy::kLazyVote: return "pi_lazy";
  }
  return "?";
}

double payoff_f(SystemState sigma, Theta theta, double alpha) {
  if (theta < 0 || theta > 3) {
    throw std::invalid_argument("payoff_f: theta must be in {0,1,2,3}");
  }
  // Table 2. σ_0 pays 0 for every type; a non-honest state pays +α when the
  // type is incentivized towards it and −α otherwise.
  switch (sigma) {
    case SystemState::kHonest:
      return 0.0;
    case SystemState::kNoProgress:
      return theta >= 3 ? alpha : -alpha;
    case SystemState::kCensorship:
      return theta >= 2 ? alpha : -alpha;
    case SystemState::kFork:
      return theta >= 1 ? alpha : -alpha;
  }
  return 0.0;
}

double round_utility(const std::vector<RoundOutcome>& samples, Theta theta,
                     const UtilityParams& params) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const RoundOutcome& s : samples) {
    sum += payoff_f(s.state, theta, params.alpha);
    if (s.penalized) sum -= params.L;
  }
  return sum / static_cast<double>(samples.size());
}

double discounted_utility(const std::vector<RoundOutcome>& per_round,
                          Theta theta, const UtilityParams& params) {
  double total = 0.0;
  double discount = 1.0;
  for (const RoundOutcome& r : per_round) {
    double u = payoff_f(r.state, theta, params.alpha);
    if (r.penalized) u -= params.L;
    total += discount * u;
    discount *= params.delta;
  }
  return total;
}

double stationary_discounted(double per_round_utility, double delta) {
  if (delta < 0.0 || delta >= 1.0) {
    throw std::invalid_argument("stationary_discounted: delta must be in [0,1)");
  }
  return per_round_utility / (1.0 - delta);
}

std::string preferred_states(Theta theta) {
  switch (theta) {
    case 3: return "No Progress, Censorship, Fork";
    case 2: return "Censorship, Fork";
    case 1: return "Fork";
    case 0: return "Honest Execution";
    default: return "?";
  }
}

}  // namespace ratcon::game
