#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ratcon::game {

/// A pure strategy profile: one strategy index per player.
using Profile = std::vector<int>;

/// A mixed strategy for one player: probability weight per strategy index.
/// Weights must be non-negative with a positive sum; accessors normalize
/// internally, so un-normalized weights (e.g. counts) are fine. A
/// degenerate mixture — all weight on one index — is that pure strategy.
using MixedStrategy = std::vector<double>;

/// One mixed strategy per player.
using MixedProfile = std::vector<MixedStrategy>;

/// Finite normal-form game with pure-strategy solution concepts. Used to
/// reproduce the paper's equilibrium analysis: Table 3's example game, the
/// TRAP baiting game (Theorem 3) and the empirical deviation games built
/// from simulation outcomes (Lemma 4).
class NormalFormGame {
 public:
  /// `strategy_counts[i]` = number of strategies for player i.
  explicit NormalFormGame(std::vector<int> strategy_counts);

  [[nodiscard]] int num_players() const {
    return static_cast<int>(counts_.size());
  }
  [[nodiscard]] int num_strategies(int player) const {
    return counts_[player];
  }

  /// Optional labels for pretty-printing. All name/payoff accessors are
  /// bounds-checked and throw std::out_of_range on an unknown player,
  /// strategy, or mis-shaped profile (empirically-assembled games have
  /// historically indexed these with unvalidated profile vectors).
  void set_player_name(int player, std::string name);
  void set_strategy_name(int player, int strategy, std::string name);
  [[nodiscard]] const std::string& player_name(int player) const;
  [[nodiscard]] const std::string& strategy_name(int player,
                                                 int strategy) const;

  /// Sets all players' payoffs at `profile`.
  void set_payoffs(const Profile& profile, const std::vector<double>& payoffs);

  /// Sets one player's payoff at `profile`.
  void set_payoff(const Profile& profile, int player, double payoff);

  [[nodiscard]] double payoff(const Profile& profile, int player) const;

  // -- Mixed profiles -------------------------------------------------------

  /// Support of a mixture: the strategy indices with weight > 0.
  [[nodiscard]] static std::vector<int> support(const MixedStrategy& mix);

  /// Expected payoff of `player` under a mixed profile: the pure payoff
  /// table averaged over the product distribution, enumerating only the
  /// support cross-product (zero-weight strategies contribute nothing).
  /// Throws std::out_of_range on a mis-shaped profile (wrong player count
  /// or a mixture whose length differs from that player's strategy count)
  /// and std::invalid_argument on negative weights or an all-zero mixture.
  [[nodiscard]] double expected_payoff(const MixedProfile& profile,
                                       int player) const;

  /// True when no player gains more than `tolerance` by deviating to any
  /// *pure* strategy (sufficient: a profitable mixed deviation implies a
  /// profitable pure one in its support).
  [[nodiscard]] bool is_mixed_nash(const MixedProfile& profile,
                                   double tolerance = 1e-9) const;

  /// The MixedProfile equivalent of a pure profile (degenerate mixtures).
  [[nodiscard]] MixedProfile degenerate(const Profile& profile) const;

  // -- Solution concepts ----------------------------------------------------

  /// True when no player gains by unilateral deviation (Definition 4's
  /// inequality, checked exactly on the payoff table). `tolerance` absorbs
  /// Monte-Carlo noise in empirically-built games.
  [[nodiscard]] bool is_nash(const Profile& profile,
                             double tolerance = 1e-9) const;

  /// All pure-strategy Nash equilibria.
  [[nodiscard]] std::vector<Profile> pure_nash(double tolerance = 1e-9) const;

  /// True when `strategy` weakly dominates every alternative for `player`
  /// against *all* opponent profiles (Definition 5, DSIC when it holds for
  /// the honest strategy of every rational player).
  [[nodiscard]] bool is_dominant(int player, int strategy,
                                 double tolerance = 1e-9) const;

  /// True when profile `a` Pareto-dominates `b`: every player weakly
  /// prefers `a` and someone strictly does. The paper's focal-point
  /// argument (§4.3): among multiple NEs, a Pareto-dominant one is focal.
  [[nodiscard]] bool pareto_dominates(const Profile& a, const Profile& b,
                                      double tolerance = 1e-9) const;

  /// Among `candidates` (typically pure_nash()), returns those not
  /// Pareto-dominated by any other candidate — the focal equilibria.
  [[nodiscard]] std::vector<Profile> pareto_frontier(
      const std::vector<Profile>& candidates, double tolerance = 1e-9) const;

  /// Iterated best-response path from `start` — the search dynamic §4.3's
  /// focal-point argument relies on, run on the payoff table: at each step
  /// the lowest-indexed player with a deviation more profitable than
  /// `tolerance` moves to its best response (ties broken towards the
  /// lowest strategy index, so the path is deterministic). Stops at a pure
  /// Nash equilibrium or after `max_steps` moves. Returns the visited
  /// profiles, `start` first; the dynamic converged iff
  /// `is_nash(path.back(), tolerance)`.
  [[nodiscard]] std::vector<Profile> best_response_path(
      const Profile& start, int max_steps = 64,
      double tolerance = 1e-9) const;

  /// Enumerates all profiles (row-major over strategy indices).
  [[nodiscard]] std::vector<Profile> all_profiles() const;

  /// Human-readable profile, e.g. "(A, a, α)".
  [[nodiscard]] std::string describe(const Profile& profile) const;

 private:
  [[nodiscard]] std::size_t index_of(const Profile& profile) const;
  void check_player(int player) const;
  void check_strategy(int player, int strategy) const;

  std::vector<int> counts_;
  std::vector<std::vector<double>> payoffs_;  // [profile_index][player]
  std::vector<std::string> player_names_;
  std::vector<std::vector<std::string>> strategy_names_;
};

}  // namespace ratcon::game
