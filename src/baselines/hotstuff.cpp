#include "baselines/hotstuff.hpp"

#include <algorithm>

#include "harness/profiler.hpp"
#include "harness/metrics.hpp"
#include "harness/trace.hpp"

namespace ratcon::baselines {

using consensus::Certificate;
using consensus::Envelope;
using consensus::PhaseSig;
using consensus::PhaseTag;
using consensus::WireView;

namespace {
constexpr consensus::ProtoId kProto = consensus::ProtoId::kHotstuff;
constexpr std::uint8_t kTraceProto = static_cast<std::uint8_t>(kProto);

// Per-type body caps, enforced before the body is hashed for signature
// verification (fixed-layout exact; QC broadcasts from the certificate
// codec's count cap; the block-carrying proposal keeps the codec default).
constexpr std::size_t kPhaseSigWire = 4 + 32;  // signer u32 + sig 32B
constexpr std::size_t kCertWireMax =
    1 + 8 + 32 + 4 + kPhaseSigWire * (std::size_t{1} << 16);

std::size_t max_body(HotstuffNode::MsgType t) {
  switch (t) {
    case HotstuffNode::MsgType::kPrepareVote:
    case HotstuffNode::MsgType::kPreCommitVote:
    case HotstuffNode::MsgType::kCommitVote:
      return 32 + kPhaseSigWire;  // h + vote signature
    case HotstuffNode::MsgType::kPreCommit:
    case HotstuffNode::MsgType::kCommit:
    case HotstuffNode::MsgType::kDecide:
      return 32 + kCertWireMax;  // h + QC
    case HotstuffNode::MsgType::kNewView:
      return kPhaseSigWire;  // timeout signature
    case HotstuffNode::MsgType::kPrepare:  // carries the block
    default:
      return Reader::kDefaultMaxLen;
  }
}

}  // namespace

HotstuffNode::HotstuffNode(Deps deps)
    : cfg_(deps.cfg),
      registry_(deps.registry),
      keys_(deps.keys),
      behavior_(std::move(deps.behavior)) {}

void HotstuffNode::on_start(net::Context& ctx) {
  self_ = ctx.self();
  start_round(ctx);
}

void HotstuffNode::start_round(net::Context& ctx) {
  if (stopped_) return;
  if (target_blocks_ != 0 && chain_.finalized_height() >= target_blocks_) {
    stopped_ = true;
    ctx.cancel_timer(kPhaseTimer);
    return;
  }
  harness::trace_state(harness::TraceKind::kRoundEnter, self_, round_,
                       kTraceProto);
  harness::metrics_round_enter(self_, round_);
  if (cfg_.leader(round_) == self_ &&
      participates(round_, PhaseTag::kPropose)) {
    // A locked leader must re-propose its locked block byte-identical (the
    // other lockers refuse anything else at that height). If the body is
    // missing, skip this view; rotation reaches a locker that has it.
    const bool locked_here = lock_ && lock_->parent == chain_.tip_hash();
    bool propose = true;
    ledger::Block block;
    if (locked_here) {
      const auto it = block_store_.find(lock_->h);
      if (it != block_store_.end()) {
        block = it->second;
      } else {
        propose = false;
      }
    } else {
      std::function<bool(const ledger::Transaction&)> censor;
      if (behavior_ != nullptr) {
        censor = [this](const ledger::Transaction& tx) {
          return behavior_->censor_tx(tx);
        };
      }
      block.parent = chain_.tip_hash();
      block.round = round_;
      block.proposer = self_;
      block.txs = mempool_.select(cfg_.max_block_txs, cfg_.max_block_bytes, censor);
    }
    if (propose) {
      Writer w;
      block.encode(w);
      consensus::sign_phase(kProto, PhaseTag::kPropose, round_, block.hash(),
                            self_, keys_.sk)
          .encode(w);
      ctx.broadcast(consensus::make_envelope(
                        kProto, static_cast<std::uint8_t>(MsgType::kPrepare),
                        round_, self_, w.take(), keys_.sk)
                        .encode());
    }
  }
  const std::uint64_t backoff =
      1ull << std::min<std::uint64_t>(consecutive_failures_, 6);
  ctx.set_timer(kPhaseTimer, cfg_.base_timeout * static_cast<SimTime>(backoff));
}

void HotstuffNode::drain_future(net::Context& ctx) {
  // Buffered wires were verified on arrival; re-parse the fixed-offset
  // header and dispatch directly, re-gating the round in case a handler
  // advanced it again mid-drain.
  auto it = future_.find(round_);
  if (it != future_.end()) {
    auto pending = std::move(it->second);
    future_.erase(it);
    for (Bytes& wire : pending) {
      harness::prof_count(harness::kL3FutureRoundReplayed);
      WireView view;
      try {
        view = WireView::parse(ByteSpan(wire.data(), wire.size()));
      } catch (const CodecError&) {
        continue;  // unreachable: buffered wires parsed cleanly on arrival
      }
      if (view.round > round_) {
        future_[view.round].push_back(std::move(wire));
      } else {
        dispatch(ctx, view);
      }
    }
  }
}

void HotstuffNode::advance_round(net::Context& ctx, Round r, bool failed) {
  if (r != round_) return;
  round_ = r + 1;
  consecutive_failures_ = failed ? consecutive_failures_ + 1 : 0;
  ctx.cancel_timer(kPhaseTimer);
  start_round(ctx);
  drain_future(ctx);
}

void HotstuffNode::enter_round(net::Context& ctx, Round r) {
  // Pacemaker jump into a higher round (round synchronization); unlike
  // advance_round this skips the abandoned views in between.
  if (r <= round_) return;
  round_ = r;
  ctx.cancel_timer(kPhaseTimer);
  start_round(ctx);
  drain_future(ctx);
}

void HotstuffNode::on_timer(net::Context& ctx, std::uint64_t timer_id) {
  if (timer_id != kPhaseTimer || stopped_) return;
  // Pacemaker: give up on the view, broadcast the timeout, rotate. The
  // broadcast (rather than a whisper to the next leader) is what lets
  // drifted-apart cohorts re-synchronize: t0 + 1 distinct timeouts for a
  // higher round pull every replica into it (see new_views_).
  RoundState& rs = rounds_[round_];
  if (rs.decided) return;
  if (participates(round_, PhaseTag::kViewChange)) {
    Writer w;
    consensus::sign_phase(kProto, PhaseTag::kViewChange, round_,
                          crypto::kZeroHash, self_, keys_.sk)
        .encode(w);
    ctx.broadcast(consensus::make_envelope(
                      kProto, static_cast<std::uint8_t>(MsgType::kNewView),
                      round_, self_, w.take(), keys_.sk)
                      .encode());
  }
  advance_round(ctx, round_, /*failed=*/true);
}

bool HotstuffNode::verify_qc(const Certificate& cert, PhaseTag phase, Round r,
                             const crypto::Hash256& h) {
  if (cert.phase != phase || cert.round != r || cert.value != h) return false;
  return cert.verify(kProto, cfg_.quorum(), *registry_);
}

Bytes HotstuffNode::make_qc_broadcast(MsgType type, Round r,
                                      const crypto::Hash256& h,
                                      const RoundState& rs, PhaseTag phase) {
  Certificate cert;
  cert.phase = phase;
  cert.round = r;
  cert.value = h;
  const auto it = rs.votes.find(static_cast<std::uint8_t>(phase));
  if (it != rs.votes.end()) {
    for (const auto& [signer, sig] : it->second) {
      cert.sigs.push_back(sig);
      if (cert.sigs.size() >= cfg_.quorum()) break;
    }
  }
  Writer w;
  w.raw(ByteSpan(h.data(), h.size()));
  cert.encode(w);
  return consensus::make_envelope(kProto, static_cast<std::uint8_t>(type), r,
                                  self_, w.take(), keys_.sk)
      .encode();
}

void HotstuffNode::leader_collect(net::Context& ctx, Round r, RoundState& rs,
                                  PhaseTag phase, MsgType next_broadcast) {
  const auto it = rs.votes.find(static_cast<std::uint8_t>(phase));
  if (it == rs.votes.end() || it->second.size() < cfg_.quorum()) return;
  bool* sent = nullptr;
  switch (next_broadcast) {
    case MsgType::kPreCommit: sent = &rs.sent_precommit; break;
    case MsgType::kCommit: sent = &rs.sent_commit; break;
    case MsgType::kDecide: sent = &rs.sent_decide; break;
    default: return;
  }
  const PhaseTag gate = next_broadcast == MsgType::kPreCommit
                            ? PhaseTag::kPreCommit
                            : next_broadcast == MsgType::kCommit
                                  ? PhaseTag::kCommit
                                  : PhaseTag::kDecide;
  if (!participates(r, gate)) return;
  if (*sent) return;
  *sent = true;
  ctx.broadcast(make_qc_broadcast(next_broadcast, r, rs.h, rs, phase));
  if (next_broadcast == MsgType::kDecide) {
    finalize(ctx, r, rs, static_cast<std::int64_t>(it->second.size()));
  }
}

void HotstuffNode::finalize(net::Context& ctx, Round r, RoundState& rs,
                            std::int64_t cert) {
  if (rs.decided) return;
  rs.decided = true;
  const auto it = block_store_.find(rs.h);
  if (it != block_store_.end() && it->second.parent == chain_.tip_hash()) {
    // Release a lock once its height is decided (by this block — ours or a
    // competing one that won); the next height is a fresh instance.
    if (lock_ && lock_->parent == it->second.parent) {
      lock_.reset();
      harness::trace_state(harness::TraceKind::kLockRelease, self_, r,
                           kTraceProto);
    }
    chain_.append_tentative(it->second);
    chain_.finalize_up_to(chain_.height());
    mempool_.mark_included(it->second.txs);
    harness::trace_state(harness::TraceKind::kFinalize, self_, r, kTraceProto,
                         chain_.finalized_height(),
                         crypto::hash_prefix64(rs.h), cert);
  }
  if (r == round_) advance_round(ctx, r, /*failed=*/false);
}

bool HotstuffNode::on_sync_adopt(net::Context& ctx,
                                 const std::vector<ledger::Block>& blocks,
                                 std::uint64_t first_height) {
  if (!chain_.adopt_finalized_run(blocks, first_height)) return false;
  harness::trace_state(harness::TraceKind::kSyncAdopt, self_, round_,
                       kTraceProto, first_height, 0,
                       static_cast<std::int64_t>(blocks.size()));
  Round top = 0;
  for (const ledger::Block& b : blocks) {
    block_store_[b.hash()] = b;
    mempool_.mark_included(b.txs);
    top = std::max(top, b.round);
    rounds_[b.round].decided = true;
  }
  // A lock protecting a height the transfer just decided is spent.
  if (lock_) {
    for (const ledger::Block& b : blocks) {
      if (b.parent == lock_->parent) {
        lock_.reset();
        harness::trace_state(harness::TraceKind::kLockRelease, self_, round_,
                             kTraceProto);
        break;
      }
    }
  }
  // Views up to the adopted frontier are settled (block.round stamps are a
  // lower bound for re-proposed locked blocks; never move backwards).
  if (top >= round_) {
    round_ = top;
    advance_round(ctx, top, /*failed=*/false);
  }
  return true;
}

void HotstuffNode::on_message(net::Context& ctx, NodeId from,
                              const Bytes& data) {
  (void)from;
  WireView view;
  try {
    view = WireView::parse(ByteSpan(data.data(), data.size()));
  } catch (const CodecError&) {
    return;
  }
  if (view.proto != kProto || view.from >= cfg_.n) return;
  const auto type = static_cast<MsgType>(view.type);
  // Oversized for its type: reject before the body is hashed or decoded.
  if (view.body().size() > max_body(type)) return;
  if (!consensus::verify_wire(view, *registry_)) return;
  if (view.round > round_ && type != MsgType::kNewView) {
    // Not in that round yet; buffer the verified wire bytes and replay
    // once we advance. NewView bypasses the gate: timeouts for higher
    // rounds are exactly how we learn the rest of the committee moved on
    // without us.
    harness::prof_count(harness::kL3FutureRoundBuffered);
    future_[view.round].push_back(data);
    return;
  }
  dispatch(ctx, view);
}

void HotstuffNode::dispatch(net::Context& ctx, const WireView& env) {
  harness::trace_deliver(self_, env.from, env.round, kTraceProto, env.type,
                         env.wire().data(), env.wire().size());
  const Round r = env.round;
  RoundState& rs = rounds_[r];
  const NodeId leader = cfg_.leader(r);

  try {
    Reader r_(env.body());
    switch (static_cast<MsgType>(env.type)) {
      case MsgType::kPrepare: {
        if (env.from != leader) return;
        const ledger::Block block = ledger::Block::decode(r_);
        const PhaseSig pro = PhaseSig::decode(r_);
        const crypto::Hash256 h = block.hash();
        // block.round < r is a byte-identical re-proposal of a locked block.
        if (block.round > r || pro.signer != leader) return;
        if (!consensus::verify_phase(kProto, PhaseTag::kPropose, r, h, pro,
                                     *registry_)) {
          return;
        }
        block_store_[h] = block;
        // Votes are cast only in the current view (round monotonicity) —
        // the block body above is still learned from old proposals.
        if (r != round_) return;
        if (block.parent != chain_.tip_hash() || rs.voted_prepare) return;
        // Locked-QC rule: while locked at this height, only the locked
        // block may earn our prepare vote.
        if (lock_ && lock_->parent == block.parent && lock_->h != h) return;
        rs.proposal = block;
        rs.h = h;
        if (!participates(r, PhaseTag::kPrepare)) break;  // observe only
        rs.voted_prepare = true;
        harness::trace_state(
            harness::TraceKind::kVoteCast, self_, r, kTraceProto, 0, 0, 0,
            static_cast<std::uint8_t>(MsgType::kPrepareVote));
        if (self_ == leader) {
          // Leader votes for itself without a network hop.
          rs.votes[static_cast<std::uint8_t>(PhaseTag::kPrepare)][self_] =
              consensus::sign_phase(kProto, PhaseTag::kPrepare, r, h, self_,
                                    keys_.sk);
          leader_collect(ctx, r, rs, PhaseTag::kPrepare, MsgType::kPreCommit);
        } else {
          Writer w;
          w.raw(ByteSpan(h.data(), h.size()));
          consensus::sign_phase(kProto, PhaseTag::kPrepare, r, h, self_,
                                keys_.sk)
              .encode(w);
          ctx.send(leader,
                   consensus::make_envelope(
                       kProto,
                       static_cast<std::uint8_t>(MsgType::kPrepareVote), r,
                       self_, w.take(), keys_.sk)
                       .encode());
        }
        break;
      }
      case MsgType::kPrepareVote:
      case MsgType::kPreCommitVote:
      case MsgType::kCommitVote: {
        if (self_ != leader) return;
        crypto::Hash256 h;
        r_.raw_into(h.data(), h.size());
        const PhaseSig sig = PhaseSig::decode(r_);
        const PhaseTag phase =
            env.type == static_cast<std::uint8_t>(MsgType::kPrepareVote)
                ? PhaseTag::kPrepare
                : env.type ==
                          static_cast<std::uint8_t>(MsgType::kPreCommitVote)
                      ? PhaseTag::kPreCommit
                      : PhaseTag::kCommit;
        if (h != rs.h) return;
        if (!consensus::verify_phase(kProto, phase, r, h, sig, *registry_)) {
          return;
        }
        rs.votes[static_cast<std::uint8_t>(phase)][sig.signer] = sig;
        const MsgType next =
            phase == PhaseTag::kPrepare
                ? MsgType::kPreCommit
                : phase == PhaseTag::kPreCommit ? MsgType::kCommit
                                                : MsgType::kDecide;
        leader_collect(ctx, r, rs, phase, next);
        break;
      }
      case MsgType::kPreCommit:
      case MsgType::kCommit: {
        if (env.from != leader) return;
        crypto::Hash256 h;
        r_.raw_into(h.data(), h.size());
        const Certificate cert = Certificate::decode(r_);
        const bool is_precommit =
            env.type == static_cast<std::uint8_t>(MsgType::kPreCommit);
        const PhaseTag cert_phase =
            is_precommit ? PhaseTag::kPrepare : PhaseTag::kPreCommit;
        // Round monotonicity: no votes for views we have moved past. Check
        // before the QC signature verification — under adversarial delay
        // most QC broadcasts arrive stale, and quorum-many signature checks
        // for a message we drop anyway is wasted work.
        if (r != round_) return;
        // Vote only for blocks whose body we hold — commit-voting records a
        // lock, and a lock needs the block's parent to identify its height.
        const auto body = block_store_.find(h);
        if (body == block_store_.end()) return;
        if (!verify_qc(cert, cert_phase, r, h)) return;
        bool& voted = is_precommit ? rs.voted_precommit : rs.voted_commit;
        if (voted) return;
        voted = true;
        if (!is_precommit) {
          lock_ = Lock{r, h, body->second.parent};
          harness::trace_state(harness::TraceKind::kLockAcquire, self_, r,
                               kTraceProto, chain_.height() + 1,
                               crypto::hash_prefix64(h),
                               static_cast<std::int64_t>(cert.sigs.size()));
        }
        const PhaseTag vote_phase =
            is_precommit ? PhaseTag::kPreCommit : PhaseTag::kCommit;
        if (!participates(r, vote_phase)) break;  // lock kept, vote withheld
        harness::trace_state(
            harness::TraceKind::kVoteCast, self_, r, kTraceProto, 0, 0, 0,
            static_cast<std::uint8_t>(is_precommit ? MsgType::kPreCommitVote
                                                   : MsgType::kCommitVote));
        Writer w;
        w.raw(ByteSpan(h.data(), h.size()));
        consensus::sign_phase(kProto, vote_phase, r, h, self_, keys_.sk)
            .encode(w);
        const MsgType vote_type =
            is_precommit ? MsgType::kPreCommitVote : MsgType::kCommitVote;
        const Bytes wire =
            consensus::make_envelope(kProto,
                                     static_cast<std::uint8_t>(vote_type), r,
                                     self_, w.take(), keys_.sk)
                .encode();
        if (self_ == leader) {
          rs.votes[static_cast<std::uint8_t>(vote_phase)][self_] =
              consensus::sign_phase(kProto, vote_phase, r, h, self_,
                                    keys_.sk);
          leader_collect(ctx, r, rs, vote_phase,
                         is_precommit ? MsgType::kCommit : MsgType::kDecide);
        } else {
          ctx.send(leader, wire);
        }
        break;
      }
      case MsgType::kDecide: {
        if (env.from != leader) return;
        crypto::Hash256 h;
        r_.raw_into(h.data(), h.size());
        const Certificate cert = Certificate::decode(r_);
        if (!verify_qc(cert, PhaseTag::kCommit, r, h)) return;
        if (rs.h != h) rs.h = h;
        finalize(ctx, r, rs, static_cast<std::int64_t>(cert.sigs.size()));
        break;
      }
      case MsgType::kNewView: {
        const PhaseSig vc = PhaseSig::decode(r_);
        if (vc.signer != env.from) return;
        if (!consensus::verify_phase(kProto, PhaseTag::kViewChange, r,
                                     crypto::kZeroHash, vc, *registry_)) {
          return;
        }
        new_views_[r].insert(vc.signer);
        if (r > round_ && new_views_[r].size() > cfg_.t0) {
          enter_round(ctx, r);
        }
        break;
      }
    }
  } catch (const CodecError&) {
  }
}

}  // namespace ratcon::baselines
