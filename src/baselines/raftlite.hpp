#pragma once

#include <map>
#include <memory>
#include <optional>

#include "consensus/behavior.hpp"
#include "consensus/envelope.hpp"
#include "consensus/replica.hpp"
#include "consensus/types.hpp"

namespace ratcon::baselines {

/// Crash-fault-tolerant log replication in the Paxos/Raft family — the
/// CFT(c) column of Table 1. Majority quorum ⌊n/2⌋ + 1; leaders rotate
/// deterministically per term (no elections: the point of the Table 1
/// experiment is the 2c < n availability bound, not leader election).
///
/// Each height is a single-decree Paxos instance with the term as ballot:
/// a term change doubles as the phase-1 promise (it carries the sender's
/// accepted value and finalized height), acks are phase-2 accepts gated on
/// that promise, and a new leader re-proposes the highest-ballot accepted
/// value reported by the term-change majority. That keeps the log safe
/// under arbitrary message delay (partial synchrony / asynchrony), as a
/// crash-tolerant protocol must be.
///
/// Tolerates crash faults only: a crashed node is silent forever. With
/// c < n/2 crashes the remaining majority keeps committing; with c >= n/2
/// no quorum can form and the system stalls — both outcomes are measured
/// by bench_table1_bounds. No Byzantine defenses: a single equivocator
/// trivially forks it (also demonstrated in the bench).
class RaftLiteNode : public consensus::IReplica {
 public:
  enum class MsgType : std::uint8_t {
    kAppend = 0,     // leader → all: block for this term
    kAck = 1,        // follower → leader
    kCommit = 2,     // leader → all: commit notice (carries the block)
    kTermChange = 3, // follower → all: leader timed out
  };

  struct Deps {
    consensus::Config cfg;  ///< t0 unused; quorum is ⌊n/2⌋ + 1
    crypto::KeyRegistry* registry = nullptr;
    crypto::KeyPair keys;
    /// Rational-strategy hooks (π_abs, π_pc, π_lazy, …): consulted before
    /// every send and when building blocks. null = honest. A CFT protocol
    /// has no defenses against them — which is the point of measuring it.
    std::shared_ptr<consensus::Behavior> behavior;
  };

  explicit RaftLiteNode(Deps deps);

  [[nodiscard]] const ledger::Chain& chain() const override { return chain_; }
  ledger::Mempool& mempool() override { return mempool_; }
  [[nodiscard]] bool is_honest() const override {
    return behavior_ == nullptr || behavior_->is_honest();
  }

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, const Bytes& data) override;
  void on_timer(net::Context& ctx, std::uint64_t timer_id) override;

  [[nodiscard]] Round current_term() const { return term_; }
  /// Terms are Raft's rounds — the uniform progress gauge.
  [[nodiscard]] Round current_round() const override { return term_; }
  void set_target_blocks(std::uint64_t target) { target_blocks_ = target; }

  /// Catch-up hook (src/sync): splice a verified finalized run; the
  /// adopted heights' Paxos instances are decided, so accept/adopt state
  /// resets and the term jumps past the transferred ballots.
  bool on_sync_adopt(net::Context& ctx,
                     const std::vector<ledger::Block>& blocks,
                     std::uint64_t first_height) override;

 private:
  /// Phase-2 accept for the current height: ballot (term) + value.
  struct Accepted {
    Round ballot = 0;
    ledger::Block block;
  };

  /// One node's term-change report: its finalized height plus its accepted
  /// value, if any — the phase-1 promise payload.
  struct ChangeReport {
    std::uint64_t finalized_height = 0;
    std::optional<Accepted> accepted;
  };

  struct TermState {
    std::optional<ledger::Block> proposal;
    crypto::Hash256 h{};
    std::map<NodeId, bool> acks;
    std::map<NodeId, ChangeReport> term_changes;
    bool committed = false;
    bool change_sent = false;
  };

  static constexpr std::uint64_t kTimer = 1;

  [[nodiscard]] std::uint32_t majority() const { return cfg_.n / 2 + 1; }
  [[nodiscard]] bool participates(Round t, consensus::PhaseTag phase) const {
    return behavior_ == nullptr ||
           behavior_->participate(t, cfg_.leader(t), phase);
  }
  void start_term(net::Context& ctx);
  void advance_term(net::Context& ctx, Round t, bool failed);
  /// Post-verification message handling over a borrowed zero-copy view;
  /// replay enters here directly, skipping the signature check already
  /// performed on arrival.
  void dispatch(net::Context& ctx, const consensus::WireView& env);
  /// `cert` is the ack count justifying the commit on the leader; followers
  /// commit on the leader's say-so and pass -1 ("delegated"), which the
  /// quorum-threshold monitor treats as exempt (kCommit carries no
  /// certificate in this CFT baseline).
  void commit_block(net::Context& ctx, Round t, const ledger::Block& block,
                    std::int64_t cert);
  void broadcast_term_change(net::Context& ctx, Round t);

  consensus::Config cfg_;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  std::shared_ptr<consensus::Behavior> behavior_;

  NodeId self_ = kNoNode;
  Round term_ = 1;
  Round promised_ = 0;               ///< highest ballot promised (phase 1)
  std::optional<Accepted> accepted_; ///< phase-2 accept for current height
  std::optional<Accepted> adopt_;    ///< value the next leader must re-propose
  bool defer_ = false;               ///< a majority peer is ahead; don't propose
  std::map<Round, TermState> terms_;
  // Future-term buffer: raw wire bytes that already passed signature
  // verification on arrival; replay re-parses the fixed-offset header and
  // dispatches directly instead of re-verifying.
  std::map<Round, std::vector<Bytes>> future_;
  ledger::Chain chain_;
  ledger::Mempool mempool_;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t target_blocks_ = 0;
  bool stopped_ = false;
};

}  // namespace ratcon::baselines
