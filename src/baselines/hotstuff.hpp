#pragma once

#include <map>
#include <optional>
#include <set>

#include "consensus/behavior.hpp"
#include "consensus/envelope.hpp"
#include "consensus/phase_sig.hpp"
#include "consensus/replica.hpp"
#include "consensus/types.hpp"

namespace ratcon::baselines {

/// Basic (non-chained) HotStuff: the linear-communication BFT baseline in
/// the paper's Figure 3 comparison. Four leader-driven phases per view —
/// Prepare → PreCommit → Commit → Decide — with replicas voting *to the
/// leader* and the leader broadcasting quorum certificates (n − t0 = 2f+1
/// signatures, t0 = ⌈n/3⌉ − 1):
///
///   messages/view:  4 leader broadcasts (n each) + 3n replica votes = O(n)
///   bytes/view:     QCs of O(κ·n) broadcast to n replicas = O(κ·n²)
///
/// contrasting with the O(n²)/O(κ·n³) all-to-all pattern of pBFT-class
/// protocols measured by the same bench. Honest-path implementation (the
/// rational-attack experiments run against pRFT and the quorum baseline),
/// but safe under arbitrary message delay: replicas vote only in their
/// current view, lock on the block they commit-vote for, refuse conflicting
/// proposals at the locked height, and leaders re-propose their locked
/// block — so a commit QC at a height excludes any conflicting quorum there.
class HotstuffNode : public consensus::IReplica {
 public:
  enum class MsgType : std::uint8_t {
    kPrepare = 0,      // leader → all: block proposal
    kPrepareVote = 1,  // replica → leader
    kPreCommit = 2,    // leader → all: prepare QC
    kPreCommitVote = 3,
    kCommit = 4,       // leader → all: precommit QC
    kCommitVote = 5,
    kDecide = 6,       // leader → all: commit QC
    kNewView = 7,      // broadcast on timeout (pacemaker)
  };

  struct Deps {
    consensus::Config cfg;
    crypto::KeyRegistry* registry = nullptr;
    crypto::KeyPair keys;
    /// Rational-strategy hooks (π_abs, π_pc, π_lazy, …): consulted before
    /// every phase send and when building blocks. null = honest.
    std::shared_ptr<consensus::Behavior> behavior;
  };

  explicit HotstuffNode(Deps deps);

  [[nodiscard]] const ledger::Chain& chain() const override { return chain_; }
  ledger::Mempool& mempool() override { return mempool_; }
  [[nodiscard]] bool is_honest() const override {
    return behavior_ == nullptr || behavior_->is_honest();
  }

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, const Bytes& data) override;
  void on_timer(net::Context& ctx, std::uint64_t timer_id) override;

  [[nodiscard]] Round current_round() const override { return round_; }
  void set_target_blocks(std::uint64_t target) { target_blocks_ = target; }

  /// Catch-up hook (src/sync): splice a verified finalized run, release
  /// locks the transfer decided, and jump past the adopted views.
  bool on_sync_adopt(net::Context& ctx,
                     const std::vector<ledger::Block>& blocks,
                     std::uint64_t first_height) override;

 private:
  struct RoundState {
    std::optional<ledger::Block> proposal;
    crypto::Hash256 h{};
    // Leader-side vote collection per phase.
    std::map<std::uint8_t, std::map<NodeId, consensus::PhaseSig>> votes;
    bool sent_precommit = false;
    bool sent_commit = false;
    bool sent_decide = false;
    bool decided = false;
    bool voted_prepare = false;
    bool voted_precommit = false;
    bool voted_commit = false;
  };

  /// Lock taken when commit-voting: the replica will not prepare-vote a
  /// conflicting block at the same height (same parent) until that height
  /// finalizes. `parent` identifies the height the lock protects.
  struct Lock {
    Round round = 0;
    crypto::Hash256 h{};
    crypto::Hash256 parent{};
  };

  static constexpr std::uint64_t kPhaseTimer = 1;

  [[nodiscard]] bool participates(Round r, consensus::PhaseTag phase) const {
    return behavior_ == nullptr ||
           behavior_->participate(r, cfg_.leader(r), phase);
  }

  void start_round(net::Context& ctx);
  void advance_round(net::Context& ctx, Round r, bool failed);
  void enter_round(net::Context& ctx, Round r);
  void drain_future(net::Context& ctx);
  /// Post-verification message handling over a borrowed zero-copy view
  /// (the "On Recv." switch); replay enters here directly, skipping the
  /// signature check already performed on arrival.
  void dispatch(net::Context& ctx, const consensus::WireView& env);
  void leader_collect(net::Context& ctx, Round r, RoundState& rs,
                      consensus::PhaseTag phase, MsgType next_broadcast);
  [[nodiscard]] Bytes make_qc_broadcast(MsgType type, Round r,
                                        const crypto::Hash256& h,
                                        const RoundState& rs,
                                        consensus::PhaseTag phase);
  [[nodiscard]] bool verify_qc(const consensus::Certificate& cert,
                               consensus::PhaseTag phase, Round r,
                               const crypto::Hash256& h);
  /// `cert` is the size of the decide-justifying QC, recorded with the
  /// finalize trace event.
  void finalize(net::Context& ctx, Round r, RoundState& rs,
                std::int64_t cert);

  consensus::Config cfg_;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  std::shared_ptr<consensus::Behavior> behavior_;

  NodeId self_ = kNoNode;
  Round round_ = 1;
  std::optional<Lock> lock_;
  std::map<Round, RoundState> rounds_;
  // Future-round buffer: raw wire bytes that already passed signature
  // verification on arrival; drain_future re-parses the fixed-offset
  // header and dispatches directly instead of re-verifying.
  std::map<Round, std::vector<Bytes>> future_;
  /// Pacemaker: distinct NewView (timeout) senders per round. Views can
  /// drift apart under adversarial delay and, with votes counted only in
  /// the current view, two stable cohorts can orbit forever without either
  /// reaching quorum; >= t0 + 1 distinct timeouts for a higher round pull
  /// this replica into that round (at least one is honest).
  std::map<Round, std::set<NodeId>> new_views_;
  std::map<crypto::Hash256, ledger::Block> block_store_;
  ledger::Chain chain_;
  ledger::Mempool mempool_;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t target_blocks_ = 0;
  bool stopped_ = false;
};

}  // namespace ratcon::baselines
