#include "baselines/raftlite.hpp"

#include <algorithm>

#include "harness/profiler.hpp"
#include "harness/metrics.hpp"
#include "harness/trace.hpp"

namespace ratcon::baselines {

using consensus::Envelope;
using consensus::WireView;

namespace {
constexpr consensus::ProtoId kProto = consensus::ProtoId::kRaftLite;
constexpr std::uint8_t kTraceProto = static_cast<std::uint8_t>(kProto);

// Per-type body caps, enforced before the body is hashed for signature
// verification. Only the ack has a fixed layout; the other three carry a
// block and keep the codec default.
std::size_t max_body(RaftLiteNode::MsgType t) {
  switch (t) {
    case RaftLiteNode::MsgType::kAck:
      return 32;  // block hash
    case RaftLiteNode::MsgType::kAppend:
    case RaftLiteNode::MsgType::kCommit:
    case RaftLiteNode::MsgType::kTermChange:
    default:
      return Reader::kDefaultMaxLen;
  }
}

}  // namespace

RaftLiteNode::RaftLiteNode(Deps deps)
    : cfg_(deps.cfg),
      registry_(deps.registry),
      keys_(deps.keys),
      behavior_(std::move(deps.behavior)) {}

void RaftLiteNode::on_start(net::Context& ctx) {
  self_ = ctx.self();
  start_term(ctx);
}

void RaftLiteNode::start_term(net::Context& ctx) {
  if (stopped_) return;
  if (target_blocks_ != 0 && chain_.finalized_height() >= target_blocks_) {
    stopped_ = true;
    ctx.cancel_timer(kTimer);
    return;
  }
  harness::trace_state(harness::TraceKind::kRoundEnter, self_, term_,
                       kTraceProto);
  harness::metrics_round_enter(self_, term_);
  if (cfg_.leader(term_) == self_ && !defer_ &&
      participates(term_, consensus::PhaseTag::kPropose)) {
    // Phase-1 obligation: if the term-change majority reported an accepted
    // value for this height, re-propose it unchanged (its hash included) —
    // a fresh block here could conflict with an already-chosen value.
    ledger::Block block;
    if (adopt_ && adopt_->block.parent == chain_.tip_hash()) {
      block = adopt_->block;
    } else {
      std::function<bool(const ledger::Transaction&)> censor;
      if (behavior_ != nullptr) {
        censor = [this](const ledger::Transaction& tx) {
          return behavior_->censor_tx(tx);
        };
      }
      block.parent = chain_.tip_hash();
      block.round = term_;
      block.proposer = self_;
      block.txs = mempool_.select(cfg_.max_block_txs, cfg_.max_block_bytes, censor);
    }
    Writer w;
    block.encode(w);
    ctx.broadcast(consensus::make_envelope(
                      kProto, static_cast<std::uint8_t>(MsgType::kAppend),
                      term_, self_, w.take(), keys_.sk)
                      .encode());
  }
  defer_ = false;
  const std::uint64_t backoff =
      1ull << std::min<std::uint64_t>(consecutive_failures_, 6);
  ctx.set_timer(kTimer, cfg_.base_timeout * static_cast<SimTime>(backoff));
}

void RaftLiteNode::advance_term(net::Context& ctx, Round t, bool failed) {
  if (t != term_) return;
  term_ = t + 1;
  consecutive_failures_ = failed ? consecutive_failures_ + 1 : 0;
  ctx.cancel_timer(kTimer);
  start_term(ctx);
  // Buffered wires were verified on arrival; re-parse the fixed-offset
  // header and dispatch directly, re-gating the term in case a handler
  // advanced it again mid-replay.
  auto it = future_.find(term_);
  if (it != future_.end()) {
    auto pending = std::move(it->second);
    future_.erase(it);
    for (Bytes& wire : pending) {
      harness::prof_count(harness::kL3FutureRoundReplayed);
      WireView view;
      try {
        view = WireView::parse(ByteSpan(wire.data(), wire.size()));
      } catch (const CodecError&) {
        continue;  // unreachable: buffered wires parsed cleanly on arrival
      }
      if (view.round > term_) {
        future_[view.round].push_back(std::move(wire));
      } else {
        dispatch(ctx, view);
      }
    }
  }
}

void RaftLiteNode::broadcast_term_change(net::Context& ctx, Round t) {
  // Sending a term change is the phase-1 promise for ballot t + 1: from now
  // on this node refuses accepts for ballots <= t, and the report below
  // carries everything a new leader needs to respect prior accepts.
  promised_ = std::max(promised_, t + 1);
  if (!participates(t, consensus::PhaseTag::kViewChange)) return;
  Writer w;
  w.u64(chain_.finalized_height());
  w.boolean(accepted_.has_value());
  if (accepted_) {
    w.u64(accepted_->ballot);
    accepted_->block.encode(w);
  }
  ctx.broadcast(consensus::make_envelope(
                    kProto, static_cast<std::uint8_t>(MsgType::kTermChange), t,
                    self_, w.take(), keys_.sk)
                    .encode());
}

void RaftLiteNode::on_timer(net::Context& ctx, std::uint64_t timer_id) {
  if (timer_id != kTimer || stopped_) return;
  TermState& ts = terms_[term_];
  if (ts.committed) return;
  if (!ts.change_sent) {
    ts.change_sent = true;
    broadcast_term_change(ctx, term_);
  }
}

void RaftLiteNode::commit_block(net::Context& ctx, Round t,
                                const ledger::Block& block,
                                std::int64_t cert) {
  TermState& ts = terms_[t];
  if (ts.committed) return;
  ts.committed = true;
  if (block.parent == chain_.tip_hash()) {
    chain_.append_tentative(block);
    chain_.finalize_up_to(chain_.height());
    mempool_.mark_included(block.txs);
    if (harness::trace_on(harness::TraceKind::kFinalize)) {
      harness::trace_state(harness::TraceKind::kFinalize, self_, t,
                           kTraceProto, chain_.finalized_height(),
                           crypto::hash_prefix64(block.hash()), cert);
    }
    // This height's Paxos instance is decided; accept state belongs to it.
    if (accepted_) {
      harness::trace_state(harness::TraceKind::kLockRelease, self_,
                           accepted_->ballot, kTraceProto,
                           chain_.finalized_height());
    }
    accepted_.reset();
    adopt_.reset();
  }
  if (t == term_) advance_term(ctx, t, /*failed=*/false);
}

bool RaftLiteNode::on_sync_adopt(net::Context& ctx,
                                 const std::vector<ledger::Block>& blocks,
                                 std::uint64_t first_height) {
  if (!chain_.adopt_finalized_run(blocks, first_height)) return false;
  harness::trace_state(harness::TraceKind::kSyncAdopt, self_, term_,
                       kTraceProto, first_height, 0,
                       static_cast<std::int64_t>(blocks.size()));
  Round top = 0;
  for (const ledger::Block& b : blocks) {
    mempool_.mark_included(b.txs);
    top = std::max(top, b.round);
    terms_[b.round].committed = true;
  }
  // Those heights' single-decree instances are decided; accepted/adopt
  // state belonged to them.
  if (accepted_) {
    harness::trace_state(harness::TraceKind::kLockRelease, self_,
                         accepted_->ballot, kTraceProto,
                         chain_.finalized_height());
  }
  accepted_.reset();
  adopt_.reset();
  defer_ = false;
  if (top >= term_) {
    term_ = top;
    advance_term(ctx, top, /*failed=*/false);
  }
  return true;
}

void RaftLiteNode::on_message(net::Context& ctx, NodeId from,
                              const Bytes& data) {
  (void)from;
  WireView view;
  try {
    view = WireView::parse(ByteSpan(data.data(), data.size()));
  } catch (const CodecError&) {
    return;
  }
  if (view.proto != kProto || view.from >= cfg_.n) return;
  const auto type = static_cast<MsgType>(view.type);
  // Oversized for its type: reject before the body is hashed or decoded.
  if (view.body().size() > max_body(type)) return;
  if (!consensus::verify_wire(view, *registry_)) return;
  if (view.round > term_ && type != MsgType::kCommit) {
    harness::prof_count(harness::kL3FutureRoundBuffered);
    future_[view.round].push_back(data);
    return;
  }
  dispatch(ctx, view);
}

void RaftLiteNode::dispatch(net::Context& ctx, const WireView& env) {
  harness::trace_deliver(self_, env.from, env.round, kTraceProto, env.type,
                         env.wire().data(), env.wire().size());
  const Round t = env.round;
  TermState& ts = terms_[t];
  const NodeId leader = cfg_.leader(t);

  try {
    Reader r_(env.body());
    switch (static_cast<MsgType>(env.type)) {
      case MsgType::kAppend: {
        if (env.from != leader) return;
        const ledger::Block block = ledger::Block::decode(r_);
        // Re-proposals of an adopted value keep their original term stamp so
        // the block hash (and thus the chosen value) is preserved.
        if (block.round > t) return;
        // Phase-2 accept: only for the current term, never for a ballot we
        // have promised away, and only extending our finalized tip.
        if (t != term_ || t < promised_) return;
        if (block.parent != chain_.tip_hash()) return;
        if (!participates(t, consensus::PhaseTag::kVote)) return;
        ts.proposal = block;
        ts.h = block.hash();
        accepted_ = Accepted{t, block};
        // The Paxos accept is this protocol's lock: the accepted (ballot,
        // value) pair for the height currently being decided.
        harness::trace_state(harness::TraceKind::kLockAcquire, self_, t,
                             kTraceProto, chain_.height() + 1,
                             crypto::hash_prefix64(ts.h), 0);
        harness::trace_state(harness::TraceKind::kVoteCast, self_, t,
                             kTraceProto, 0, 0, 0,
                             static_cast<std::uint8_t>(MsgType::kAck));
        if (self_ == leader) {
          ts.acks[self_] = true;
        } else {
          Writer w;
          w.raw(ByteSpan(ts.h.data(), ts.h.size()));
          ctx.send(leader, consensus::make_envelope(
                               kProto,
                               static_cast<std::uint8_t>(MsgType::kAck), t,
                               self_, w.take(), keys_.sk)
                               .encode());
        }
        break;
      }
      case MsgType::kAck: {
        if (self_ != leader || !ts.proposal.has_value()) return;
        crypto::Hash256 h;
        r_.raw_into(h.data(), h.size());
        if (h != ts.h) return;
        ts.acks[env.from] = true;
        if (ts.acks.size() >= majority() && !ts.committed &&
            participates(t, consensus::PhaseTag::kCommit)) {
          Writer w;
          ts.proposal->encode(w);
          ctx.broadcast(consensus::make_envelope(
                            kProto,
                            static_cast<std::uint8_t>(MsgType::kCommit), t,
                            self_, w.take(), keys_.sk)
                            .encode());
          commit_block(ctx, t, *ts.proposal,
                       static_cast<std::int64_t>(ts.acks.size()));
        }
        break;
      }
      case MsgType::kCommit: {
        if (env.from != leader) return;
        const ledger::Block block = ledger::Block::decode(r_);
        // Adopted re-proposals keep their original term stamp (see kAppend).
        if (block.round > t) return;
        if (t > term_) term_ = t;  // catch up
        commit_block(ctx, t, block, /*cert=*/-1);  // delegated: no certificate
        break;
      }
      case MsgType::kTermChange: {
        ChangeReport report;
        report.finalized_height = r_.u64();
        if (r_.boolean()) {
          Accepted acc;
          acc.ballot = r_.u64();
          acc.block = ledger::Block::decode(r_);
          report.accepted = std::move(acc);
        }
        ts.term_changes[env.from] = std::move(report);
        // A single suspicion advances the term after a majority echoes it;
        // crashed leaders cannot ack so live nodes converge on t+1. Echo
        // only for the live current term — late suspicions of decided or
        // abandoned terms would just broadcast noise.
        if (!ts.change_sent && t == term_ && !ts.committed) {
          ts.change_sent = true;
          broadcast_term_change(ctx, t);
        }
        if (ts.term_changes.size() >= majority() && !ts.committed &&
            t == term_) {
          // Phase 1 for term t+1: the majority's reports decide what the
          // next leader may propose. If anyone finalized beyond us we are
          // behind a decided height, so the next leader must not propose a
          // fresh (potentially conflicting) block there. Otherwise adopt
          // the highest-ballot accepted value for our height, if any.
          defer_ = false;
          adopt_.reset();
          for (const auto& [id, rep] : ts.term_changes) {
            if (rep.finalized_height > chain_.finalized_height()) {
              defer_ = true;
            }
            if (rep.accepted &&
                rep.accepted->block.parent == chain_.tip_hash() &&
                (!adopt_ || rep.accepted->ballot > adopt_->ballot)) {
              adopt_ = rep.accepted;
            }
          }
          if (accepted_ && accepted_->block.parent == chain_.tip_hash() &&
              (!adopt_ || accepted_->ballot > adopt_->ballot)) {
            adopt_ = accepted_;
          }
          advance_term(ctx, t, /*failed=*/true);
        }
        break;
      }
    }
  } catch (const CodecError&) {
  }
}

}  // namespace ratcon::baselines
