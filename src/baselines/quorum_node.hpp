#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "consensus/behavior.hpp"
#include "consensus/envelope.hpp"
#include "consensus/fraud.hpp"
#include "consensus/replica.hpp"
#include "consensus/types.hpp"
#include "ledger/deposits.hpp"

namespace ratcon::baselines {

/// Coordination state for a fork coalition attacking a quorum protocol —
/// the same equivocate-per-side playbook as adversary::ForkPlan, but
/// against the two-phase baseline. With τ = n − (⌈n/3⌉ − 1) and a coalition
/// of size ≥ n/3, *both* sides can assemble quorums: this is how pBFT-class
/// protocols fork once t + k crosses n/3 (Table 1's RFT row), and what
/// Polygraph-mode nodes then hold the coalition accountable for.
struct QuorumForkPlan {
  std::uint32_t n = 0;
  std::set<NodeId> coalition;
  std::set<NodeId> side_a;
  std::set<NodeId> side_b;

  /// Coalition members that defect to the baiting strategy π_bait (TRAP,
  /// §3.4): they run the honest protocol and expose the coalition's PoF.
  std::set<NodeId> baiters;

  struct RoundValues {
    crypto::Hash256 h_a{};
    crypto::Hash256 h_b{};
  };
  std::map<Round, RoundValues> values;

  /// Equivocation timing window (see adversary::ForkPlan): attacks only
  /// inside [attack_from, attack_until).
  Round attack_from = 0;
  Round attack_until = kRoundNever;

  [[nodiscard]] bool attacks(Round r) const {
    const NodeId leader = static_cast<NodeId>(r % n);
    return r >= attack_from && r < attack_until &&
           coalition.count(leader) > 0 && baiters.count(leader) == 0;
  }
  [[nodiscard]] std::set<NodeId> targets_a() const;
  [[nodiscard]] std::set<NodeId> targets_b() const;
};

/// A configurable leader-based two-phase quorum protocol on the shared
/// substrate. One class covers several of the paper's comparators:
///
///  * τ = n − t0 with t0 = ⌈n/3⌉ − 1, plain       → pBFT-style BFT
///  * the same with `accountable = true`           → Polygraph-lite
///    (commits carry prepare certificates; decides carry commit
///    certificates; honest players extract ≥ t0 + 1 guilty after forks)
///  * accountable + QuorumForkPlan + baiters       → TRAP-lite substrate
///  * arbitrary τ                                  → Claim 1's threshold
///    experiments (τ > n − t0 ⇒ abstain kills liveness; τ ≤ ⌊(n+t0)/2⌋ ⇒
///    partition forks)
///
/// Phases per round: PrePrepare (leader) → Prepare (all-to-all, quorum τ)
/// → Commit (all-to-all, quorum τ) → Decide broadcast. A prepare quorum
/// acts as a lock (the block is appended tentatively and survives view
/// changes); a commit quorum finalizes. Decide messages carry the block so
/// cut-out players can catch up.
class QuorumNode : public consensus::IReplica {
 public:
  /// Message types (second wire byte).
  enum class MsgType : std::uint8_t {
    kPrePrepare = 0,
    kPrepare = 1,
    kCommit = 2,
    kDecide = 3,
    kViewChange = 4,
    kExpose = 5,
  };

  struct Deps {
    consensus::Config cfg;
    std::uint32_t tau = 0;  ///< agreement threshold; 0 = cfg.quorum()
    consensus::ProtoId proto = consensus::ProtoId::kPbft;
    bool accountable = false;  ///< Polygraph mode
    crypto::KeyRegistry* registry = nullptr;
    crypto::KeyPair keys;
    ledger::DepositLedger* deposits = nullptr;
    std::shared_ptr<QuorumForkPlan> fork_plan;  ///< null = honest node
    bool abstain = false;  ///< π_abs: full silence (crash-indistinguishable)
    /// Rational-strategy hooks (π_abs, π_pc, π_lazy, …): consulted before
    /// every phase send and when building blocks. null = honest.
    std::shared_ptr<consensus::Behavior> behavior;
  };

  explicit QuorumNode(Deps deps);

  // -- IReplica ---------------------------------------------------------------
  [[nodiscard]] const ledger::Chain& chain() const override { return chain_; }
  ledger::Mempool& mempool() override { return mempool_; }
  [[nodiscard]] bool is_honest() const override {
    return !abstain_ && (behavior_ == nullptr || behavior_->is_honest()) &&
           (fork_plan_ == nullptr || !fork_plan_->coalition.count(self_) ||
            fork_plan_->baiters.count(self_) > 0);
  }

  // -- INode -------------------------------------------------------------------
  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, const Bytes& data) override;
  void on_timer(net::Context& ctx, std::uint64_t timer_id) override;

  [[nodiscard]] Round current_round() const override { return round_; }
  [[nodiscard]] std::uint64_t view_changes() const { return view_changes_; }
  [[nodiscard]] std::uint64_t exposes_sent() const { return exposes_sent_; }
  void set_target_blocks(std::uint64_t target) { target_blocks_ = target; }

  /// Catch-up hook (src/sync): splice a verified finalized run, drop a
  /// spent prepare-lock and jump past the adopted rounds.
  bool on_sync_adopt(net::Context& ctx,
                     const std::vector<ledger::Block>& blocks,
                     std::uint64_t first_height) override;

  /// Whether this node currently holds a prepare-lock (tests).
  [[nodiscard]] bool holds_prepare_lock() const { return lock_.has_value(); }

  /// Guilty players this node has personally convicted via valid PoF
  /// (accountable mode) — the output of Definition 6's V(·).
  [[nodiscard]] const std::set<NodeId>& convicted() const { return convicted_; }

 private:
  struct RoundState {
    std::optional<ledger::Block> proposal;
    crypto::Hash256 h_l{};
    consensus::PhaseSig leader_sig;
    std::map<crypto::Hash256, std::pair<ledger::Block, consensus::PhaseSig>>
        stale_proposals;
    bool prepared = false;   // sent prepare
    bool committed = false;  // sent commit
    bool decided = false;
    bool tentative_appended = false;
    bool vc_sent = false;
    bool expose_sent = false;
    std::map<crypto::Hash256, std::map<NodeId, consensus::PhaseSig>> prepares;
    std::map<crypto::Hash256, std::map<NodeId, consensus::PhaseSig>> commits;
    std::map<NodeId, consensus::PhaseSig> vc_sigs;
    consensus::FraudTracker fraud;
  };

  /// Prepare-lock: a τ-prepare quorum observed for `block` in `round`,
  /// appended tentatively at `height`. Carried inside ViewChange messages
  /// so peers without the quorum adopt the lock across view changes —
  /// pBFT's new-view rule, and what keeps the protocol live (and safe)
  /// under partial synchrony: a commit is only ever sent by a lock holder,
  /// so two conflicting values can never both assemble commit quorums, and
  /// competing locks resolve toward the higher round.
  struct PrepareLock {
    Round round = 0;
    crypto::Hash256 h{};
    crypto::Hash256 parent{};
    std::uint64_t height = 0;
    ledger::Block block;
    consensus::Certificate cert;  ///< τ prepare signatures on h
  };

  static constexpr std::uint64_t kPhaseTimer = 1;

  [[nodiscard]] bool attacking(Round r) const {
    return fork_plan_ != nullptr && fork_plan_->coalition.count(self_) > 0 &&
           fork_plan_->baiters.count(self_) == 0 && fork_plan_->attacks(r);
  }
  [[nodiscard]] bool participates() const { return !abstain_; }
  /// Phase-granular participation: the π_abs flag plus the behavior hook
  /// (π_pc abstains under honest leaders, π_lazy skips commit-tier phases).
  [[nodiscard]] bool participates(Round r, consensus::PhaseTag phase) const {
    return !abstain_ && (behavior_ == nullptr ||
                         behavior_->participate(r, cfg_.leader(r), phase));
  }

  void start_round(net::Context& ctx);
  void advance_round(net::Context& ctx, Round r, bool failed);
  // Handlers receive a borrowed zero-copy view over the wire buffer
  // (signature already verified); nothing retains the view past the call.
  void dispatch(net::Context& ctx, const consensus::WireView& env);
  void handle_preprepare(net::Context& ctx, const consensus::WireView& env);
  void handle_prepare(net::Context& ctx, const consensus::WireView& env);
  void handle_commit(net::Context& ctx, const consensus::WireView& env);
  void handle_decide(net::Context& ctx, const consensus::WireView& env);
  void handle_view_change(net::Context& ctx, const consensus::WireView& env);
  void handle_expose(net::Context& ctx, const consensus::WireView& env);
  void check_prepare_quorum(net::Context& ctx, Round r, RoundState& rs);
  void check_commit_quorum(net::Context& ctx, Round r, RoundState& rs);
  /// `cert` is the size of the commit quorum justifying the decision — it
  /// rides the kFinalize trace event so the quorum-threshold monitor can
  /// audit every finalize against τ.
  void decide(net::Context& ctx, Round r, RoundState& rs,
              const crypto::Hash256& h, std::int64_t cert);
  void trigger_view_change(net::Context& ctx, Round r);
  void adopt_prepare_lock(net::Context& ctx, const ledger::Block& block,
                          const consensus::Certificate& cert);
  void retry_stale_proposal(net::Context& ctx);
  void release_spent_lock();
  void maybe_expose(net::Context& ctx, Round r, RoundState& rs);
  void note_conflict(const std::optional<consensus::ConflictPair>& cp);
  void pump_attack(net::Context& ctx);
  void pump_attack_side(net::Context& ctx, Round r, RoundState& rs,
                        const crypto::Hash256& h,
                        const std::set<NodeId>& targets, bool& prep_sent,
                        bool& commit_sent, bool& decide_sent);

  [[nodiscard]] consensus::PhaseSig phase_sig(
      consensus::PhaseTag phase, Round r, const crypto::Hash256& value) const;
  [[nodiscard]] Bytes encode_env(MsgType type, Round r, Bytes body) const;
  [[nodiscard]] Bytes make_preprepare(Round r, const ledger::Block& block);
  [[nodiscard]] Bytes make_prepare(Round r, const crypto::Hash256& h);
  [[nodiscard]] Bytes make_commit(Round r, const crypto::Hash256& h,
                                  const RoundState& rs);
  [[nodiscard]] Bytes make_decide(Round r, const crypto::Hash256& h,
                                  const RoundState& rs);
  void send_to(net::Context& ctx, const std::set<NodeId>& targets,
               const Bytes& wire);
  bool verify_sig(consensus::PhaseTag phase, Round r,
                  const crypto::Hash256& value,
                  const consensus::PhaseSig& ps);

  consensus::Config cfg_;
  std::uint32_t tau_;
  consensus::ProtoId proto_;
  bool accountable_;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  ledger::DepositLedger* deposits_;
  std::shared_ptr<QuorumForkPlan> fork_plan_;
  bool abstain_;
  std::shared_ptr<consensus::Behavior> behavior_;

  NodeId self_ = kNoNode;
  Round round_ = 1;
  std::optional<PrepareLock> lock_;
  std::map<Round, RoundState> rounds_;
  std::map<crypto::Hash256, ledger::Block> block_store_;
  // Future-round buffer: raw wire bytes that already passed signature
  // verification; replay re-parses the fixed-offset header (cheap) and
  // dispatches directly, skipping the signature check.
  std::map<Round, std::vector<Bytes>> future_;

  struct AttackProgress {
    bool voted = false;
    bool prep_a = false, prep_b = false;
    bool commit_a = false, commit_b = false;
    bool decide_a = false, decide_b = false;
  };
  std::map<Round, AttackProgress> attack_;

  ledger::Chain chain_;
  ledger::Mempool mempool_;
  std::set<NodeId> convicted_;

  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t view_changes_ = 0;
  std::uint64_t exposes_sent_ = 0;
  std::uint64_t target_blocks_ = 0;
  bool stopped_ = false;
};

}  // namespace ratcon::baselines
