#include "baselines/quorum_node.hpp"

#include "common/serialize.hpp"
#include "harness/profiler.hpp"
#include "harness/metrics.hpp"
#include "harness/trace.hpp"

namespace ratcon::baselines {

using consensus::Certificate;
using consensus::Envelope;
using consensus::PhaseSig;
using consensus::PhaseTag;
using consensus::WireView;

namespace {

constexpr std::uint64_t kForkMarkerBase = 0xFAFAFAFA00000000ull;

// Per-type body caps, enforced before the body is hashed for signature
// verification (fixed-layout exact; certificate-bearing from the codec's
// count cap; block-carrying kept at the codec default).
constexpr std::size_t kPhaseSigWire = 4 + 32;  // signer u32 + sig 32B
constexpr std::size_t kCertWireMax =
    1 + 8 + 32 + 4 + kPhaseSigWire * (std::size_t{1} << 16);

std::size_t max_body(QuorumNode::MsgType t) {
  switch (t) {
    case QuorumNode::MsgType::kPrepare:
      return 32 + kPhaseSigWire;  // h + prepare signature
    case QuorumNode::MsgType::kCommit:
      return 32 + kPhaseSigWire + 1 + kCertWireMax;
    case QuorumNode::MsgType::kPrePrepare:   // block
    case QuorumNode::MsgType::kDecide:       // block + cert
    case QuorumNode::MsgType::kViewChange:   // optional lock block + cert
    case QuorumNode::MsgType::kExpose:       // fraud set
    default:
      return Reader::kDefaultMaxLen;
  }
}

crypto::Hash256 vc_value(consensus::ProtoId proto, Round r) {
  Writer w;
  w.str("quorum-vc");
  w.u8(static_cast<std::uint8_t>(proto));
  w.u64(r);
  return crypto::sha256(ByteSpan(w.data().data(), w.data().size()));
}

}  // namespace

std::set<NodeId> QuorumForkPlan::targets_a() const {
  std::set<NodeId> out = side_a;
  // Non-baiting colluders see both values; baiters run the honest protocol
  // and vote for whichever proposal they receive, so the adversary steers
  // them: alternate baiters are shown only one side's value each. This is
  // the attack's optimal use of defectors-it-cannot-trust.
  std::size_t idx = 0;
  for (NodeId id : coalition) {
    if (baiters.count(id) == 0) {
      out.insert(id);
    } else if (idx++ % 2 == 0) {
      out.insert(id);
    }
  }
  return out;
}

std::set<NodeId> QuorumForkPlan::targets_b() const {
  std::set<NodeId> out = side_b;
  std::size_t idx = 0;
  for (NodeId id : coalition) {
    if (baiters.count(id) == 0) {
      out.insert(id);
    } else if (idx++ % 2 == 1) {
      out.insert(id);
    }
  }
  return out;
}

QuorumNode::QuorumNode(Deps deps)
    : cfg_(deps.cfg),
      tau_(deps.tau == 0 ? deps.cfg.quorum() : deps.tau),
      proto_(deps.proto),
      accountable_(deps.accountable),
      registry_(deps.registry),
      keys_(deps.keys),
      deposits_(deps.deposits),
      fork_plan_(std::move(deps.fork_plan)),
      abstain_(deps.abstain),
      behavior_(std::move(deps.behavior)) {}

// ---------------------------------------------------------------------------
// Plumbing

void QuorumNode::on_start(net::Context& ctx) {
  self_ = ctx.self();
  start_round(ctx);
}

void QuorumNode::on_message(net::Context& ctx, NodeId from,
                            const Bytes& data) {
  (void)from;
  WireView view;
  try {
    view = WireView::parse(ByteSpan(data.data(), data.size()));
  } catch (const CodecError&) {
    return;
  }
  if (view.proto != proto_ || view.from >= cfg_.n) return;
  const auto type = static_cast<MsgType>(view.type);
  // Oversized for its type: reject before the body is hashed or decoded.
  if (view.body().size() > max_body(type)) return;
  if (!consensus::verify_wire(view, *registry_)) return;

  // Decide messages double as catch-up and are processed for any round.
  if (view.round > round_ && type != MsgType::kDecide) {
    harness::prof_count(harness::kL3FutureRoundBuffered);
    future_[view.round].push_back(data);
    return;
  }
  dispatch(ctx, view);
}

void QuorumNode::dispatch(net::Context& ctx, const WireView& env) {
  harness::trace_deliver(self_, env.from, env.round,
                         static_cast<std::uint8_t>(proto_), env.type,
                         env.wire().data(), env.wire().size());
  try {
    switch (static_cast<MsgType>(env.type)) {
      case MsgType::kPrePrepare: handle_preprepare(ctx, env); break;
      case MsgType::kPrepare: handle_prepare(ctx, env); break;
      case MsgType::kCommit: handle_commit(ctx, env); break;
      case MsgType::kDecide: handle_decide(ctx, env); break;
      case MsgType::kViewChange: handle_view_change(ctx, env); break;
      case MsgType::kExpose: handle_expose(ctx, env); break;
      default: break;
    }
  } catch (const CodecError&) {
  }
  if (fork_plan_ != nullptr) pump_attack(ctx);
}

void QuorumNode::on_timer(net::Context& ctx, std::uint64_t timer_id) {
  if (timer_id != kPhaseTimer || stopped_) return;
  RoundState& rs = rounds_[round_];
  if (rs.decided) return;
  trigger_view_change(ctx, round_);
}

void QuorumNode::start_round(net::Context& ctx) {
  if (stopped_) return;
  if (target_blocks_ != 0 && chain_.finalized_height() >= target_blocks_) {
    stopped_ = true;
    ctx.cancel_timer(kPhaseTimer);
    return;
  }
  RoundState& rs = rounds_[round_];
  (void)rs;
  harness::trace_state(harness::TraceKind::kRoundEnter, self_, round_,
                       static_cast<std::uint8_t>(proto_));
  harness::metrics_round_enter(self_, round_);
  if (cfg_.leader(round_) == self_ &&
      participates(round_, PhaseTag::kPropose)) {
    if (attacking(round_)) {
      // Equivocate two blocks, one per side (pBFT-class protocols with
      // τ = n − ⌈n/3⌉ + 1 fork here once k + t ≥ n/3).
      ledger::Block block_a;
      block_a.parent = chain_.tip_hash();
      block_a.round = round_;
      block_a.proposer = self_;
      block_a.txs = mempool_.select(cfg_.max_block_txs, cfg_.max_block_bytes, nullptr);
      ledger::Block block_b = block_a;
      block_b.txs.push_back(
          ledger::make_transfer(kForkMarkerBase | round_, self_));
      fork_plan_->values[round_] =
          QuorumForkPlan::RoundValues{block_a.hash(), block_b.hash()};
      send_to(ctx, fork_plan_->targets_a(), make_preprepare(round_, block_a));
      send_to(ctx, fork_plan_->targets_b(), make_preprepare(round_, block_b));
    } else {
      std::function<bool(const ledger::Transaction&)> censor;
      if (behavior_ != nullptr) {
        censor = [this](const ledger::Transaction& tx) {
          return behavior_->censor_tx(tx);
        };
      }
      ledger::Block block;
      block.parent = chain_.tip_hash();
      block.round = round_;
      block.proposer = self_;
      block.txs = mempool_.select(cfg_.max_block_txs, cfg_.max_block_bytes, censor);
      ctx.broadcast(make_preprepare(round_, block));
    }
  }
  const std::uint64_t backoff =
      1ull << std::min<std::uint64_t>(consecutive_failures_, 6);
  ctx.set_timer(kPhaseTimer, cfg_.base_timeout * static_cast<SimTime>(backoff));
}

void QuorumNode::advance_round(net::Context& ctx, Round r, bool failed) {
  if (r != round_) return;
  round_ = r + 1;
  consecutive_failures_ = failed ? consecutive_failures_ + 1 : 0;
  ctx.cancel_timer(kPhaseTimer);
  start_round(ctx);
  // Buffered wires were verified on arrival; re-parse the header and
  // dispatch directly, re-gating the round in case a handler advanced it
  // again mid-replay.
  auto it = future_.find(round_);
  if (it != future_.end()) {
    auto pending = std::move(it->second);
    future_.erase(it);
    for (Bytes& wire : pending) {
      harness::prof_count(harness::kL3FutureRoundReplayed);
      WireView view;
      try {
        view = WireView::parse(ByteSpan(wire.data(), wire.size()));
      } catch (const CodecError&) {
        continue;  // unreachable: buffered wires parsed cleanly on arrival
      }
      if (view.round > round_) {
        future_[view.round].push_back(std::move(wire));
      } else {
        dispatch(ctx, view);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Codec helpers

PhaseSig QuorumNode::phase_sig(PhaseTag phase, Round r,
                               const crypto::Hash256& value) const {
  return consensus::sign_phase(proto_, phase, r, value, self_, keys_.sk);
}

bool QuorumNode::verify_sig(PhaseTag phase, Round r,
                            const crypto::Hash256& value, const PhaseSig& ps) {
  if (ps.signer >= cfg_.n) return false;
  return consensus::verify_phase(proto_, phase, r, value, ps, *registry_);
}

Bytes QuorumNode::encode_env(MsgType type, Round r, Bytes body) const {
  return consensus::make_envelope(proto_, static_cast<std::uint8_t>(type), r,
                                  self_, std::move(body), keys_.sk)
      .encode();
}

Bytes QuorumNode::make_preprepare(Round r, const ledger::Block& block) {
  Writer w;
  block.encode(w);
  phase_sig(PhaseTag::kPropose, r, block.hash()).encode(w);
  return encode_env(MsgType::kPrePrepare, r, w.take());
}

Bytes QuorumNode::make_prepare(Round r, const crypto::Hash256& h) {
  Writer w;
  w.raw(ByteSpan(h.data(), h.size()));
  phase_sig(PhaseTag::kPrepare, r, h).encode(w);
  return encode_env(MsgType::kPrepare, r, w.take());
}

Bytes QuorumNode::make_commit(Round r, const crypto::Hash256& h,
                              const RoundState& rs) {
  Writer w;
  w.raw(ByteSpan(h.data(), h.size()));
  phase_sig(PhaseTag::kCommit, r, h).encode(w);
  // Polygraph mode: commits carry the prepare certificate, which is what
  // lets honest players cross-examine conflicting quorums after the fact.
  w.boolean(accountable_);
  if (accountable_) {
    Certificate cert;
    cert.phase = PhaseTag::kPrepare;
    cert.round = r;
    cert.value = h;
    const auto it = rs.prepares.find(h);
    if (it != rs.prepares.end()) {
      for (const auto& [signer, sig] : it->second) {
        cert.sigs.push_back(sig);
        if (cert.sigs.size() >= tau_) break;
      }
    }
    cert.encode(w);
  }
  return encode_env(MsgType::kCommit, r, w.take());
}

Bytes QuorumNode::make_decide(Round r, const crypto::Hash256& h,
                              const RoundState& rs) {
  Writer w;
  w.raw(ByteSpan(h.data(), h.size()));
  const auto block_it = block_store_.find(h);
  w.boolean(block_it != block_store_.end());
  if (block_it != block_store_.end()) block_it->second.encode(w);
  Certificate cert;
  cert.phase = PhaseTag::kCommit;
  cert.round = r;
  cert.value = h;
  const auto it = rs.commits.find(h);
  if (it != rs.commits.end()) {
    for (const auto& [signer, sig] : it->second) {
      cert.sigs.push_back(sig);
      if (cert.sigs.size() >= tau_) break;
    }
  }
  cert.encode(w);
  return encode_env(MsgType::kDecide, r, w.take());
}

void QuorumNode::send_to(net::Context& ctx, const std::set<NodeId>& targets,
                         const Bytes& wire) {
  for (NodeId to : targets) {
    if (to == self_) continue;
    ctx.send(to, wire);
  }
  if (targets.count(self_)) on_message(ctx, self_, wire);
}

// ---------------------------------------------------------------------------
// Handlers

void QuorumNode::handle_preprepare(net::Context& ctx, const WireView& env) {
  Reader r_(env.body());
  const ledger::Block block = ledger::Block::decode(r_);
  const PhaseSig pro_sig = PhaseSig::decode(r_);
  const Round r = env.round;
  const NodeId leader = cfg_.leader(r);
  if (env.from != leader || pro_sig.signer != leader) return;
  const crypto::Hash256 h = block.hash();
  if (block.round != r) return;
  if (!verify_sig(PhaseTag::kPropose, r, h, pro_sig)) return;

  block_store_[h] = block;
  RoundState& rs = rounds_[r];
  note_conflict(rs.fraud.observe(
      consensus::SignedValue{PhaseTag::kPropose, r, h, pro_sig}));

  if (rs.proposal.has_value()) return;
  if (block.parent != chain_.tip_hash()) {
    rs.stale_proposals[h] = {block, pro_sig};
    return;
  }
  rs.proposal = block;
  rs.h_l = h;
  rs.leader_sig = pro_sig;

  if (!rs.prepared && participates(r, PhaseTag::kPrepare) && !attacking(r)) {
    rs.prepared = true;
    harness::trace_state(harness::TraceKind::kVoteCast, self_, r,
                         static_cast<std::uint8_t>(proto_), 0, 0, 0,
                         static_cast<std::uint8_t>(MsgType::kPrepare));
    ctx.broadcast(make_prepare(r, h));
  }
  check_prepare_quorum(ctx, r, rs);
}

void QuorumNode::handle_prepare(net::Context& ctx, const WireView& env) {
  Reader r_(env.body());
  crypto::Hash256 h;
  r_.raw_into(h.data(), h.size());
  const PhaseSig sig = PhaseSig::decode(r_);
  const Round r = env.round;
  if (!verify_sig(PhaseTag::kPrepare, r, h, sig)) return;

  RoundState& rs = rounds_[r];
  note_conflict(
      rs.fraud.observe(consensus::SignedValue{PhaseTag::kPrepare, r, h, sig}));
  rs.prepares[h][sig.signer] = sig;
  maybe_expose(ctx, r, rs);
  check_prepare_quorum(ctx, r, rs);
}

void QuorumNode::check_prepare_quorum(net::Context& ctx, Round r,
                                      RoundState& rs) {
  if (rs.committed || rs.decided) return;
  for (const auto& [h, sigs] : rs.prepares) {
    if (sigs.size() < tau_) continue;
    // Prepared: lock the value (tentative append). A commit is only ever
    // sent by a lock holder — committing a value whose block we cannot
    // place at our tip would let two conflicting values assemble commit
    // quorums under delayed delivery (prepare quorums for different
    // blocks can form in different views; appended locks cannot).
    const auto block_it = block_store_.find(h);
    if (block_it == block_store_.end()) continue;  // need the body to lock
    const ledger::Block& block = block_it->second;
    bool locked = chain_.tip_hash() == h;
    if (!locked && block.parent == chain_.tip_hash() &&
        chain_.append_tentative(block)) {
      rs.tentative_appended = true;
      locked = true;
      PrepareLock lk;
      lk.round = r;
      lk.h = h;
      lk.parent = block.parent;
      lk.height = chain_.height();
      lk.block = block;
      lk.cert.phase = PhaseTag::kPrepare;
      lk.cert.round = r;
      lk.cert.value = h;
      for (const auto& [signer, sig] : sigs) {
        lk.cert.sigs.push_back(sig);
        if (lk.cert.sigs.size() >= tau_) break;
      }
      lock_ = std::move(lk);
      harness::trace_state(harness::TraceKind::kLockAcquire, self_, r,
                           static_cast<std::uint8_t>(proto_), lock_->height,
                           crypto::hash_prefix64(h),
                           static_cast<std::int64_t>(lock_->cert.sigs.size()));
    }
    if (!locked) continue;  // prepares kept; the lock travels via ViewChange
    rs.committed = true;
    if (participates(r, PhaseTag::kCommit) && !attacking(r)) {
      harness::trace_state(harness::TraceKind::kVoteCast, self_, r,
                           static_cast<std::uint8_t>(proto_), 0, 0, 0,
                           static_cast<std::uint8_t>(MsgType::kCommit));
      ctx.broadcast(make_commit(r, h, rs));
    }
    check_commit_quorum(ctx, r, rs);
    return;
  }
}

void QuorumNode::handle_commit(net::Context& ctx, const WireView& env) {
  Reader r_(env.body());
  crypto::Hash256 h;
  r_.raw_into(h.data(), h.size());
  const PhaseSig sig = PhaseSig::decode(r_);
  const bool has_cert = r_.boolean();
  const Round r = env.round;
  if (!verify_sig(PhaseTag::kCommit, r, h, sig)) return;

  RoundState& rs = rounds_[r];
  note_conflict(
      rs.fraud.observe(consensus::SignedValue{PhaseTag::kCommit, r, h, sig}));
  if (has_cert) {
    const Certificate cert = Certificate::decode(r_);
    if (cert.phase == PhaseTag::kPrepare && cert.round == r &&
        cert.value == h) {
      for (const PhaseSig& ps : cert.sigs) {
        if (!verify_sig(PhaseTag::kPrepare, r, h, ps)) continue;
        note_conflict(rs.fraud.observe(
            consensus::SignedValue{PhaseTag::kPrepare, r, h, ps}));
        rs.prepares[h][ps.signer] = ps;
      }
    }
  }
  rs.commits[h][sig.signer] = sig;
  maybe_expose(ctx, r, rs);
  check_prepare_quorum(ctx, r, rs);
  check_commit_quorum(ctx, r, rs);
}

void QuorumNode::check_commit_quorum(net::Context& ctx, Round r,
                                     RoundState& rs) {
  if (rs.decided) return;
  for (const auto& [h, sigs] : rs.commits) {
    if (sigs.size() < tau_) continue;
    if (participates(r, PhaseTag::kDecide) && !attacking(r)) {
      ctx.broadcast(make_decide(r, h, rs));
    }
    decide(ctx, r, rs, h, static_cast<std::int64_t>(sigs.size()));
    return;
  }
}

void QuorumNode::decide(net::Context& ctx, Round r, RoundState& rs,
                        const crypto::Hash256& h, std::int64_t cert) {
  if (rs.decided) return;
  rs.decided = true;

  const std::uint64_t finalized_before = chain_.finalized_height();
  const auto block_it = block_store_.find(h);
  if (block_it != block_store_.end()) {
    const ledger::Block& block = block_it->second;
    if (chain_.tip_hash() == h) {
      chain_.finalize_up_to(chain_.height());
    } else if (chain_.tip_hash() == block.parent) {
      chain_.append_tentative(block);
      chain_.finalize_up_to(chain_.height());
    } else if (chain_.height() > chain_.finalized_height()) {
      chain_.rollback_tentative();
      if (chain_.tip_hash() == block.parent) {
        chain_.append_tentative(block);
        chain_.finalize_up_to(chain_.height());
      }
    }
    mempool_.mark_included(block.txs);
  }
  if (chain_.finalized_height() > finalized_before) {
    harness::trace_state(harness::TraceKind::kFinalize, self_, r,
                         static_cast<std::uint8_t>(proto_),
                         chain_.finalized_height(), crypto::hash_prefix64(h),
                         cert);
  }
  release_spent_lock();
  if (r == round_) advance_round(ctx, r, /*failed=*/false);
}

void QuorumNode::release_spent_lock() {
  if (lock_ && chain_.finalized_height() >= lock_->height) {
    harness::trace_state(harness::TraceKind::kLockRelease, self_,
                         lock_->round, static_cast<std::uint8_t>(proto_),
                         lock_->height);
    lock_.reset();
  }
}

void QuorumNode::retry_stale_proposal(net::Context& ctx) {
  RoundState& rs = rounds_[round_];
  if (rs.proposal.has_value() || rs.decided) return;
  for (const auto& [h, entry] : rs.stale_proposals) {
    const auto& [block, pro_sig] = entry;
    if (block.parent != chain_.tip_hash()) continue;
    rs.proposal = block;
    rs.h_l = h;
    rs.leader_sig = pro_sig;
    if (!rs.prepared && participates(round_, PhaseTag::kPrepare) &&
        !attacking(round_)) {
      rs.prepared = true;
      harness::trace_state(harness::TraceKind::kVoteCast, self_, round_,
                           static_cast<std::uint8_t>(proto_), 0, 0, 0,
                           static_cast<std::uint8_t>(MsgType::kPrepare));
      ctx.broadcast(make_prepare(round_, h));
    }
    check_prepare_quorum(ctx, round_, rs);
    return;
  }
}

bool QuorumNode::on_sync_adopt(net::Context& ctx,
                               const std::vector<ledger::Block>& blocks,
                               std::uint64_t first_height) {
  if (!chain_.adopt_finalized_run(blocks, first_height)) return false;
  harness::trace_state(harness::TraceKind::kSyncAdopt, self_, round_,
                       static_cast<std::uint8_t>(proto_), first_height, 0,
                       static_cast<std::int64_t>(blocks.size()));
  Round top = 0;
  for (const ledger::Block& b : blocks) {
    block_store_[b.hash()] = b;
    mempool_.mark_included(b.txs);
    top = std::max(top, b.round);
    rounds_[b.round].decided = true;
  }
  // Reconcile the prepare-lock with the transferred chain: spent if its
  // height is now final, re-anchored if it still extends the new tip
  // (the rollback above removed it), superseded otherwise.
  if (lock_) {
    harness::trace_state(harness::TraceKind::kLockRelease, self_,
                         lock_->round, static_cast<std::uint8_t>(proto_),
                         lock_->height);
    if (chain_.finalized_height() >= lock_->height) {
      lock_.reset();
    } else if (lock_->block.parent == chain_.tip_hash() &&
               chain_.append_tentative(lock_->block)) {
      lock_->height = chain_.height();
      harness::trace_state(
          harness::TraceKind::kLockAcquire, self_, lock_->round,
          static_cast<std::uint8_t>(proto_), lock_->height,
          crypto::hash_prefix64(lock_->h),
          static_cast<std::int64_t>(lock_->cert.sigs.size()));
    } else {
      lock_.reset();
    }
  }
  if (top >= round_) {
    round_ = top;
    advance_round(ctx, top, /*failed=*/false);
  } else {
    retry_stale_proposal(ctx);
  }
  return true;
}

void QuorumNode::handle_decide(net::Context& ctx, const WireView& env) {
  Reader r_(env.body());
  crypto::Hash256 h;
  r_.raw_into(h.data(), h.size());
  const bool has_block = r_.boolean();
  std::optional<ledger::Block> block;
  if (has_block) block = ledger::Block::decode(r_);
  const Certificate cert = Certificate::decode(r_);
  const Round r = env.round;

  if (cert.phase != PhaseTag::kCommit || cert.round != r || cert.value != h) {
    return;
  }
  std::set<NodeId> signers;
  for (const PhaseSig& ps : cert.sigs) {
    if (!verify_sig(PhaseTag::kCommit, r, h, ps)) return;
    if (!signers.insert(ps.signer).second) return;
  }
  if (signers.size() < tau_) return;

  if (block.has_value() && block->hash() == h) {
    block_store_[h] = *block;
  }
  RoundState& rs = rounds_[r];
  if (accountable_) {
    for (const PhaseSig& ps : cert.sigs) {
      note_conflict(rs.fraud.observe(
          consensus::SignedValue{PhaseTag::kCommit, r, h, ps}));
    }
    maybe_expose(ctx, r, rs);
  }
  if (r > round_) {
    // Catch-up decide from the future: adopt if it connects.
    round_ = r;
  }
  decide(ctx, r, rs, h, static_cast<std::int64_t>(signers.size()));
}

void QuorumNode::trigger_view_change(net::Context& ctx, Round r) {
  RoundState& rs = rounds_[r];
  if (rs.vc_sent || rs.decided) return;
  rs.vc_sent = true;
  view_changes_ += 1;
  if (participates(r, PhaseTag::kViewChange)) {
    Writer w;
    phase_sig(PhaseTag::kViewChange, r, vc_value(proto_, r)).encode(w);
    // Prepare-lock adoption across view changes (pBFT new-view): carry our
    // live lock (block + τ-prepare certificate) so peers that missed the
    // quorum can append it and the next leader proposes on top of it.
    const bool has_lock =
        lock_.has_value() && chain_.finalized_height() < lock_->height;
    w.boolean(has_lock);
    if (has_lock) {
      lock_->block.encode(w);
      lock_->cert.encode(w);
    }
    harness::trace_state(harness::TraceKind::kVoteCast, self_, r,
                         static_cast<std::uint8_t>(proto_), 0, 0, 0,
                         static_cast<std::uint8_t>(MsgType::kViewChange));
    ctx.broadcast(encode_env(MsgType::kViewChange, r, w.take()));
  }
  if (r == round_) {
    const std::uint64_t backoff =
        1ull << std::min<std::uint64_t>(consecutive_failures_, 6);
    ctx.set_timer(kPhaseTimer,
                  cfg_.base_timeout * static_cast<SimTime>(backoff));
  }
}

void QuorumNode::handle_view_change(net::Context& ctx, const WireView& env) {
  Reader r_(env.body());
  const PhaseSig sig = PhaseSig::decode(r_);
  const Round r = env.round;
  if (!verify_sig(PhaseTag::kViewChange, r, vc_value(proto_, r), sig)) return;

  if (r_.boolean()) {
    const ledger::Block lock_block = ledger::Block::decode(r_);
    const Certificate lock_cert = Certificate::decode(r_);
    adopt_prepare_lock(ctx, lock_block, lock_cert);
  }

  RoundState& rs = rounds_[r];
  rs.vc_sigs[sig.signer] = sig;
  if (rs.vc_sigs.size() >= tau_ && !rs.decided) {
    if (!rs.vc_sent) trigger_view_change(ctx, r);
    if (r == round_) advance_round(ctx, r, /*failed=*/true);
  }
}

void QuorumNode::adopt_prepare_lock(net::Context& ctx,
                                    const ledger::Block& block,
                                    const Certificate& cert) {
  const crypto::Hash256 h = block.hash();
  if (cert.phase != PhaseTag::kPrepare || cert.value != h ||
      cert.round != block.round) {
    return;
  }
  if (!cert.verify(proto_, tau_, *registry_)) return;
  block_store_[h] = block;
  if (lock_ && lock_->h == h) return;
  if (chain_.tip_hash() == h) return;  // already our (tentative) tip

  auto take_lock = [&] {
    PrepareLock lk;
    lk.round = cert.round;
    lk.h = h;
    lk.parent = block.parent;
    lk.height = chain_.height();
    lk.block = block;
    lk.cert = cert;
    lock_ = std::move(lk);
    harness::trace_state(harness::TraceKind::kLockAcquire, self_,
                         lock_->round, static_cast<std::uint8_t>(proto_),
                         lock_->height, crypto::hash_prefix64(h),
                         static_cast<std::int64_t>(lock_->cert.sigs.size()));
  };
  if (block.parent == chain_.tip_hash()) {
    if (chain_.append_tentative(block)) take_lock();
  } else if (lock_ && block.parent == lock_->parent &&
             cert.round > lock_->round &&
             lock_->height == chain_.finalized_height() + 1 &&
             chain_.height() == lock_->height) {
    // Competing lock at our locked height from a later view wins (a value
    // that assembled a commit quorum can never be displaced this way: its
    // τ lock holders refuse conflicting prepares, so no later-round
    // prepare certificate for a sibling can exist). Only when the locked
    // block is the entire tentative suffix: rollback_tentative drops the
    // whole suffix, and stripping τ-prepared ancestors beneath the lock
    // would un-lock values this node already vouched for.
    harness::trace_state(harness::TraceKind::kLockRelease, self_,
                         lock_->round, static_cast<std::uint8_t>(proto_),
                         lock_->height);
    chain_.rollback_tentative();
    if (chain_.tip_hash() == block.parent && chain_.append_tentative(block)) {
      take_lock();
    } else {
      lock_.reset();  // never keep a lock whose block is off-chain
    }
  } else {
    return;
  }
  // The new tip can unblock the current round.
  retry_stale_proposal(ctx);
  check_prepare_quorum(ctx, round_, rounds_[round_]);
}

void QuorumNode::maybe_expose(net::Context& ctx, Round r, RoundState& rs) {
  if (!accountable_ || rs.expose_sent) return;
  if (rs.fraud.guilty_count() <= cfg_.t0) return;
  if (attacking(r) ||
      (fork_plan_ != nullptr && fork_plan_->coalition.count(self_) &&
       fork_plan_->baiters.count(self_) == 0) ||
      (behavior_ != nullptr && !behavior_->expose_fraud())) {
    return;  // colluders never expose their own
  }
  rs.expose_sent = true;
  exposes_sent_ += 1;
  Writer w;
  consensus::encode_fraud_set(w, rs.fraud.fraud_set());
  if (participates()) {
    ctx.broadcast(encode_env(MsgType::kExpose, r, w.take()));
  }
  for (const auto& [node, cp] : rs.fraud.proofs()) {
    if (cp.verify(proto_, *registry_)) {
      convicted_.insert(node);
      if (deposits_ != nullptr) deposits_->burn(node, cp.round);
    }
  }
}

void QuorumNode::handle_expose(net::Context& ctx, const WireView& env) {
  (void)ctx;
  if (!accountable_) return;
  Reader r_(env.body());
  const consensus::FraudSet proofs = consensus::decode_fraud_set(r_);
  for (const consensus::ConflictPair& cp : proofs) {
    if (cp.verify(proto_, *registry_)) {
      convicted_.insert(cp.guilty());
      if (deposits_ != nullptr && is_honest()) {
        deposits_->burn(cp.guilty(), cp.round);
      }
    }
  }
}

void QuorumNode::note_conflict(
    const std::optional<consensus::ConflictPair>& cp) {
  if (!accountable_ || !cp.has_value()) return;
  if (!is_honest()) return;
  if (cp->verify(proto_, *registry_)) {
    convicted_.insert(cp->guilty());
    if (deposits_ != nullptr) deposits_->burn(cp->guilty(), cp->round);
  }
}

// ---------------------------------------------------------------------------
// Fork coalition pump (π_ds against the two-phase protocol)

void QuorumNode::pump_attack(net::Context& ctx) {
  if (fork_plan_ == nullptr || !fork_plan_->coalition.count(self_) ||
      fork_plan_->baiters.count(self_)) {
    return;
  }
  for (auto& [r, values] : fork_plan_->values) {
    RoundState& rs = rounds_[r];
    AttackProgress& prog = attack_[r];
    if (!prog.voted) {
      prog.voted = true;
      send_to(ctx, fork_plan_->targets_a(), make_prepare(r, values.h_a));
      send_to(ctx, fork_plan_->targets_b(), make_prepare(r, values.h_b));
    }
    pump_attack_side(ctx, r, rs, values.h_a, fork_plan_->targets_a(),
                     prog.prep_a, prog.commit_a, prog.decide_a);
    pump_attack_side(ctx, r, rs, values.h_b, fork_plan_->targets_b(),
                     prog.prep_b, prog.commit_b, prog.decide_b);
  }
}

void QuorumNode::pump_attack_side(net::Context& ctx, Round r, RoundState& rs,
                                  const crypto::Hash256& h,
                                  const std::set<NodeId>& targets,
                                  bool& prep_sent, bool& commit_sent,
                                  bool& decide_sent) {
  (void)prep_sent;
  if (!commit_sent) {
    const auto it = rs.prepares.find(h);
    if (it != rs.prepares.end() && it->second.size() >= tau_) {
      commit_sent = true;
      send_to(ctx, targets, make_commit(r, h, rs));
    }
  }
  if (!decide_sent) {
    const auto it = rs.commits.find(h);
    if (it != rs.commits.end() && it->second.size() >= tau_) {
      decide_sent = true;
      send_to(ctx, targets, make_decide(r, h, rs));
    }
  }
}

}  // namespace ratcon::baselines
