#include "rational/catalog.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "adversary/behaviors.hpp"
#include "adversary/fork_agent.hpp"
#include "baselines/quorum_node.hpp"
#include "harness/protocols.hpp"

namespace ratcon::rational {

using game::Strategy;
using harness::Protocol;

std::set<NodeId> ProfileSpec::effective_coalition() const {
  if (!coalition.empty()) return coalition;
  std::set<NodeId> out;
  for (const auto& [id, s] : strategies) {
    if (s == Strategy::kPartialCensor || s == Strategy::kDoubleSign) {
      out.insert(id);
    }
  }
  return out;
}

std::string ProfileSpec::label() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [id, s] : strategies) {
    if (s == Strategy::kHonest) continue;
    if (!first) os << " ";
    first = false;
    os << "P" << id << ":" << game::to_string(s);
  }
  return first ? "all-honest" : os.str();
}

Strategy strategy_from_name(std::string_view name) {
  if (name == "pi_0" || name == "honest") return Strategy::kHonest;
  if (name == "pi_abs" || name == "abstain") return Strategy::kAbstain;
  if (name == "pi_ds" || name == "pi_fork" || name == "double-sign") {
    return Strategy::kDoubleSign;
  }
  if (name == "pi_pc" || name == "partial-censor") {
    return Strategy::kPartialCensor;
  }
  if (name == "pi_bait" || name == "bait") return Strategy::kBait;
  if (name == "pi_free" || name == "free-ride" ||
      name == "free-ride-on-catchup") {
    return Strategy::kFreeRide;
  }
  if (name == "pi_lazy" || name == "lazy-vote") return Strategy::kLazyVote;
  throw std::invalid_argument("strategy_from_name: unknown strategy '" +
                              std::string(name) + "'");
}

bool strategy_supported(Protocol proto, Strategy s) {
  switch (s) {
    case Strategy::kHonest:
    case Strategy::kAbstain:
    case Strategy::kPartialCensor:
    case Strategy::kFreeRide:
    case Strategy::kLazyVote:
      return true;  // behavior hooks exist on every registered protocol
    case Strategy::kDoubleSign:
      return proto == Protocol::kPrft || proto == Protocol::kQuorum ||
             proto == Protocol::kUnanimous;
    case Strategy::kBait:
      // Baiting is "run the honest protocol and expose the coalition" —
      // it needs an accountability mechanism to report into.
      return proto == Protocol::kPrft;
  }
  return false;
}

std::shared_ptr<consensus::Behavior> make_behavior(
    Strategy s, NodeId id, const ProfileSpec& profile) {
  switch (s) {
    case Strategy::kHonest:
    case Strategy::kBait:
      return nullptr;  // the honest machine exposes by default
    case Strategy::kAbstain:
      return std::make_shared<adversary::AbstainBehavior>();
    case Strategy::kPartialCensor: {
      std::set<NodeId> coalition = profile.effective_coalition();
      coalition.insert(id);
      return std::make_shared<adversary::PartialCensorBehavior>(
          std::move(coalition), profile.censored_txs);
    }
    case Strategy::kFreeRide:
      return std::make_shared<adversary::FreeRideBehavior>();
    case Strategy::kLazyVote:
      return std::make_shared<adversary::LazyVoteBehavior>();
    case Strategy::kDoubleSign:
      throw std::invalid_argument(
          "make_behavior: pi_ds needs a node subclass, not a behavior hook");
  }
  return nullptr;
}

void fork_sides(std::uint32_t n, const std::set<NodeId>& coalition,
                std::set<NodeId>& side_a, std::set<NodeId>& side_b) {
  std::vector<NodeId> rest;
  for (NodeId id = 0; id < n; ++id) {
    if (!coalition.count(id)) rest.push_back(id);
  }
  const std::size_t half = (rest.size() + 1) / 2;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    (i < half ? side_a : side_b).insert(rest[i]);
  }
}

void apply_profile(harness::ScenarioSpec& spec, const ProfileSpec& profile) {
  const Protocol proto = spec.protocol;
  std::set<NodeId> ds_players;
  for (const auto& [id, s] : profile.strategies) {
    if (id >= spec.committee.n) {
      throw std::invalid_argument("apply_profile: player " +
                                  std::to_string(id) +
                                  " outside committee of " +
                                  std::to_string(spec.committee.n));
    }
    if (!strategy_supported(proto, s)) {
      throw std::invalid_argument(
          std::string("apply_profile: ") + game::to_string(s) +
          " is not executable under " + to_string(proto));
    }
    if (s == Strategy::kDoubleSign) {
      ds_players.insert(id);
    } else if (s != Strategy::kHonest && s != Strategy::kBait) {
      spec.adversary.behaviors[id] = make_behavior(s, id, profile);
    }
  }
  if (ds_players.empty()) return;

  // π_ds: wire the coalition's fork plan through a node factory.
  std::set<NodeId> coalition = profile.effective_coalition();
  coalition.insert(ds_players.begin(), ds_players.end());

  if (proto == Protocol::kPrft) {
    auto plan = std::make_shared<adversary::ForkPlan>();
    plan->n = spec.committee.n;
    plan->coalition = coalition;
    fork_sides(spec.committee.n, coalition, plan->side_a, plan->side_b);
    spec.adversary.node_factory =
        [plan, ds_players](NodeId id, const harness::NodeEnv& env)
        -> std::unique_ptr<consensus::IReplica> {
      if (!ds_players.count(id)) return nullptr;
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    };
    return;
  }

  // Quorum family (pBFT-style and the unanimous strong-quorum variant).
  auto plan = std::make_shared<baselines::QuorumForkPlan>();
  plan->n = spec.committee.n;
  plan->coalition = coalition;
  fork_sides(spec.committee.n, coalition, plan->side_a, plan->side_b);
  const bool unanimous = proto == Protocol::kUnanimous;
  spec.adversary.node_factory =
      [plan, ds_players, unanimous](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (!ds_players.count(id)) return nullptr;
    baselines::QuorumNode::Deps deps = harness::make_quorum_deps(id, env);
    if (unanimous) {
      deps.proto = consensus::ProtoId::kQuorumDemo;
      deps.tau = env.cfg.n;
    }
    deps.fork_plan = plan;
    return std::make_unique<baselines::QuorumNode>(std::move(deps));
  };
}

}  // namespace ratcon::rational
