#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "game/utility.hpp"
#include "harness/scenario.hpp"

namespace ratcon::rational {

/// How a run's observables turn into per-player utilities.
struct PayoffParams {
  game::UtilityParams util;  ///< α, L, δ of the paper's Table 2 / Eq. 1

  /// Per-wire-message cost charged against each player's own sends. The
  /// paper's utility model has no message costs (default 0); a positive
  /// value makes free-riding strategies (π_free, π_lazy) measurably
  /// attractive in protocols that cannot punish them.
  double msg_cost = 0.0;

  /// Per-wire-byte cost, charged against each player's measured sent bytes
  /// (TrafficStats per-sender totals — the same counters Figure 3's size
  /// column is measured from). Where msg_cost prices a send, byte_cost
  /// prices its size, so strategies that send fewer-but-fatter messages
  /// (certificate-heavy reveals, sync batches) pay what the wire actually
  /// carried rather than a flat per-message rate. Default 0 preserves the
  /// paper's cost-free model.
  double byte_cost = 0.0;

  /// Per-transaction inclusion reward (fee) credited to the proposer of
  /// each finalized block, discounted by δ^(height−1) like every other
  /// Eq. 1 term. The paper's model has no fees (default 0); a positive
  /// value gives block proposers a workload-dependent revenue axis, making
  /// censorship (foregone fees) and laziness (empty blocks) economically
  /// visible under the workload engine's traffic.
  double inclusion_reward = 0.0;

  /// Number of heights scored as game rounds; 0 = the scenario's
  /// RunBudget::target_blocks.
  std::uint64_t window = 0;

  /// Censorship probe: the tx_h every honest player submitted (Theorem 2).
  /// When set and the run ends with progress but tx_h outside every honest
  /// finalized ledger, progressed heights classify σ_CP.
  std::optional<std::uint64_t> watched_tx;

  /// Player types θ; players not listed get `default_theta`.
  std::map<NodeId, game::Theta> thetas;
  game::Theta default_theta = 0;
};

/// One player's empirical outcome stream and utility.
struct PlayerPayoff {
  NodeId player = kNoNode;
  game::Theta theta = 0;
  /// One outcome per scored height: the height's system state σ plus
  /// whether this player's collateral burn is charged in that round.
  std::vector<game::RoundOutcome> rounds;
  double utility = 0.0;      ///< Eq. 1 over `rounds`, minus message costs,
                             ///<   plus discounted inclusion fees
  std::uint64_t messages = 0;    ///< wire messages this player sent
  std::uint64_t bytes_sent = 0;  ///< wire bytes those messages carried
  /// Transactions in finalized blocks this player proposed (fee basis),
  /// counted over the canonical honest ledger.
  std::uint64_t txs_included = 0;
  std::int64_t deposit_delta = 0;
  bool slashed = false;
};

/// The full accounting of one run.
struct PayoffReport {
  /// σ per scored height (heights 1..window, index 0 = height 1).
  std::vector<game::SystemState> height_states;
  game::SystemState end_state = game::SystemState::kHonest;
  std::vector<PlayerPayoff> players;  ///< index = NodeId

  [[nodiscard]] const PlayerPayoff& of(NodeId id) const {
    return players.at(id);
  }
};

/// PayoffAccountant: derives per-player `game::RoundOutcome` streams and
/// discounted utilities (Eq. 1) directly from a finished Simulation run —
/// classifying each height's SystemState from the honest ledgers, reading
/// deposit burns from ledger::DepositLedger's penalty events, and charging
/// per-message costs from the cluster's per-sender traffic stats. This is
/// the bridge between "what the protocol did" and "what the rational
/// player earned": Tables 2/3 and Lemma 4 are reproduced through it rather
/// than from hand-fed payoff matrices.
class PayoffAccountant {
 public:
  explicit PayoffAccountant(PayoffParams params) : params_(std::move(params)) {}

  /// Classifies heights 1..window: σ_Fork from the first conflicting
  /// height on (disagreement is permanent), σ_NP beyond the honest
  /// frontier, σ_CP on progressed heights when the watched tx was censored
  /// through the end of the run, σ_0 otherwise.
  [[nodiscard]] std::vector<game::SystemState> classify_heights(
      const harness::Simulation& sim) const;

  /// Full per-player accounting of a finished run.
  [[nodiscard]] PayoffReport account(harness::Simulation& sim) const;

  [[nodiscard]] const PayoffParams& params() const { return params_; }

 private:
  PayoffParams params_;
};

}  // namespace ratcon::rational
