#include "rational/payoff.hpp"

#include <algorithm>

#include "consensus/outcome.hpp"
#include "harness/profiler.hpp"
#include "ledger/chain.hpp"

namespace ratcon::rational {

std::vector<game::SystemState> PayoffAccountant::classify_heights(
    const harness::Simulation& sim) const {
  // L2 only: account() already times the surrounding L1 payoff phase, and
  // classify_heights runs nested inside it.
  harness::ProfTimer timer(harness::kL2PayoffClassifyNs);
  const std::uint64_t window =
      params_.window > 0 ? params_.window
                         : sim.spec().budget.target_blocks;
  std::vector<game::SystemState> out(window, game::SystemState::kHonest);
  const std::vector<const ledger::Chain*> chains = sim.honest_chains();

  // First height at which two honest ledgers finalized different blocks —
  // the minimum over *all* pairs (an early pair can diverge later than
  // another). Disagreement is permanent: every height from there on
  // scores σ_Fork (the state θ ≥ 1 players are paid for).
  std::uint64_t fork_height = 0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    for (std::size_t j = i + 1; j < chains.size(); ++j) {
      const std::uint64_t shared = std::min(chains[i]->finalized_height(),
                                            chains[j]->finalized_height());
      const std::uint64_t limit =
          fork_height == 0 ? shared : std::min(shared, fork_height - 1);
      for (std::uint64_t h = 1; h <= limit; ++h) {
        if (chains[i]->at(h).hash() != chains[j]->at(h).hash()) {
          fork_height = h;
          break;
        }
      }
    }
  }

  const std::uint64_t progressed =
      consensus::max_finalized_height(chains);

  // End-of-run censorship verdict (Theorem 2's σ_CP): progress happened
  // but the watched tx is outside every honest finalized ledger.
  bool censored = false;
  if (params_.watched_tx.has_value() && progressed > 0) {
    censored = true;
    for (const ledger::Chain* c : chains) {
      if (c->finalized_contains_tx(*params_.watched_tx)) {
        censored = false;
        break;
      }
    }
  }

  for (std::uint64_t h = 1; h <= window; ++h) {
    game::SystemState s;
    if (fork_height != 0 && h >= fork_height) {
      s = game::SystemState::kFork;
    } else if (h > progressed) {
      s = game::SystemState::kNoProgress;
    } else if (censored) {
      s = game::SystemState::kCensorship;
    } else {
      s = game::SystemState::kHonest;
    }
    out[h - 1] = s;
  }
  return out;
}

PayoffReport PayoffAccountant::account(harness::Simulation& sim) const {
  harness::ProfTimer timer(harness::kL1PayoffNs, harness::kL2PayoffAccountNs);
  PayoffReport report;
  report.height_states = classify_heights(sim);
  report.end_state = sim.classify(0, params_.watched_tx);

  const std::uint32_t n = sim.spec().committee.n;
  const std::uint64_t window = report.height_states.size();

  // First burn event per player, for penalty placement.
  std::map<NodeId, ledger::BurnEvent> first_burn;
  for (const ledger::BurnEvent& ev : sim.deposits().events()) {
    first_burn.emplace(ev.player, ev);
  }
  // The round a penalty is charged in: the PoF's consensus round when it
  // lies inside the scored window (clamped to the last scored round
  // otherwise), else the first non-honest round — matching the paper's
  // one-shot collateral loss "in the round it occurs" (Eq. 1).
  const auto charge_index = [&](const ledger::BurnEvent& ev) -> std::size_t {
    if (window == 0) return 0;
    if (ev.round >= 1) {
      return static_cast<std::size_t>(
          std::min<std::uint64_t>(ev.round, window) - 1);
    }
    for (std::size_t i = 0; i < window; ++i) {
      if (report.height_states[i] != game::SystemState::kHonest) return i;
    }
    return 0;
  };

  // Inclusion fees are read off the canonical honest ledger: the deepest
  // finalized honest chain (under agreement all honest prefixes concur;
  // under a fork fee accounting is moot — the σ_Fork payoffs dominate).
  const ledger::Chain* canon = nullptr;
  for (const ledger::Chain* c : sim.honest_chains()) {
    if (canon == nullptr ||
        c->finalized_height() > canon->finalized_height()) {
      canon = c;
    }
  }
  std::vector<std::uint64_t> fee_txs(n, 0);
  std::vector<double> fee_value(n, 0.0);
  if (canon != nullptr && params_.inclusion_reward != 0.0) {
    double discount = 1.0;
    for (std::uint64_t h = 1; h <= canon->finalized_height(); ++h) {
      const ledger::Block& b = canon->at(h);
      if (b.proposer < n && !b.txs.empty()) {
        fee_txs[b.proposer] += b.txs.size();
        fee_value[b.proposer] += params_.inclusion_reward * discount *
                                 static_cast<double>(b.txs.size());
      }
      discount *= params_.util.delta;
    }
  }

  report.players.resize(n);
  for (NodeId id = 0; id < n; ++id) {
    PlayerPayoff& p = report.players[id];
    p.player = id;
    const auto theta_it = params_.thetas.find(id);
    p.theta = theta_it != params_.thetas.end() ? theta_it->second
                                               : params_.default_theta;
    p.rounds.reserve(window);
    for (game::SystemState s : report.height_states) {
      p.rounds.push_back({s, false});
    }
    p.slashed = sim.deposits().slashed(id);
    p.deposit_delta = sim.deposits().delta(id);
    const auto burn_it = first_burn.find(id);
    if (burn_it != first_burn.end() && window > 0) {
      p.rounds[charge_index(burn_it->second)].penalized = true;
    }
    const net::MsgCounter sent = sim.net().stats().for_sender(id);
    p.messages = sent.count;
    p.bytes_sent = sent.bytes;
    p.txs_included = fee_txs[id];
    p.utility = game::discounted_utility(p.rounds, p.theta, params_.util) -
                params_.msg_cost * static_cast<double>(p.messages) -
                params_.byte_cost * static_cast<double>(p.bytes_sent) +
                fee_value[id];
  }
  return report;
}

}  // namespace ratcon::rational
