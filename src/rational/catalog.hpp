#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "consensus/behavior.hpp"
#include "game/utility.hpp"
#include "harness/scenario.hpp"

namespace ratcon::rational {

/// StrategyCatalog: the executable side of the paper's strategy space
/// (§4.1.2). Every `game::Strategy` maps to concrete replica behavior for
/// every protocol in the harness registry, so any player slot of a
/// ScenarioSpec can be assigned a strategy by name and the resulting runs
/// feed the empirical payoff engine (payoff.hpp) and deviation explorer
/// (explorer.hpp).
///
/// Strategy → mechanism, per protocol:
///  * π_0 (honest)          every protocol   registry default replica
///  * π_abs, π_pc, π_free,  every protocol   consensus::Behavior hooks
///    π_lazy                                 (phase gates + censor filter)
///  * π_ds (double-sign)    pRFT             adversary::ForkAgentNode
///                          quorum family    QuorumForkPlan coalition
///                          hotstuff/raft    unsupported (no equivocation
///                                           machinery on the honest-path
///                                           baselines)
///  * π_bait                pRFT             honest + expose (the default
///                                           honest player already baits)
///                          others           unsupported (needs the
///                                           accountable TRAP substrate)

/// One executable strategy assignment over a committee: who plays what,
/// plus the context shared by the deviating strategies.
struct ProfileSpec {
  /// Player → strategy; absent players run π_0.
  std::map<NodeId, game::Strategy> strategies;

  /// π_pc's watched transaction set ("tx_h ∉ tx").
  std::set<std::uint64_t> censored_txs;

  /// Coalition backing π_pc / π_ds players. Empty = derived: every player
  /// assigned π_pc or π_ds forms the coalition (a lone deviator gets the
  /// unilateral coalition {self}).
  std::set<NodeId> coalition;

  [[nodiscard]] game::Strategy of(NodeId id) const {
    const auto it = strategies.find(id);
    return it == strategies.end() ? game::Strategy::kHonest : it->second;
  }

  /// The effective coalition (see `coalition`).
  [[nodiscard]] std::set<NodeId> effective_coalition() const;

  /// "P3:pi_abs P5:pi_pc" (honest players elided) — for labels.
  [[nodiscard]] std::string label() const;
};

/// Parses "pi_0", "pi_abs", "pi_ds", "pi_pc", "pi_bait", "pi_free",
/// "pi_lazy" (also accepts the bare names "honest", "abstain",
/// "double-sign", "partial-censor", "bait", "free-ride-on-catchup" /
/// "free-ride", "lazy-vote"). Throws std::invalid_argument otherwise.
[[nodiscard]] game::Strategy strategy_from_name(std::string_view name);

/// Whether the catalog can execute `s` under `proto` (see table above).
[[nodiscard]] bool strategy_supported(harness::Protocol proto,
                                      game::Strategy s);

/// Builds the consensus::Behavior implementing a behavior-expressible
/// strategy for player `id` (nullptr for π_0 / π_bait — the honest machine
/// is the implementation). Throws for π_ds, which needs a node subclass.
[[nodiscard]] std::shared_ptr<consensus::Behavior> make_behavior(
    game::Strategy s, NodeId id, const ProfileSpec& profile);

/// Applies `profile` onto `spec.adversary`: behavior hooks for the
/// behavior-expressible strategies and a node factory for π_ds coalitions.
/// Requires `spec.protocol` and `spec.committee.n` to be final. Throws
/// std::invalid_argument when a strategy is unsupported for the protocol.
void apply_profile(harness::ScenarioSpec& spec, const ProfileSpec& profile);

/// The partition geometry of a π_ds coalition (§4.1.2's disagreement
/// attack): splits the non-coalition players into the two sides the
/// conflicting values are shown to. Exposed as a catalog extension point
/// for src/search, which builds fork plans with equivocation-timing
/// windows on top of the same geometry.
void fork_sides(std::uint32_t n, const std::set<NodeId>& coalition,
                std::set<NodeId>& side_a, std::set<NodeId>& side_b);

}  // namespace ratcon::rational
