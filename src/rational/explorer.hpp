#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "game/normal_form.hpp"
#include "harness/matrix.hpp"
#include "rational/catalog.hpp"
#include "rational/payoff.hpp"

namespace ratcon::rational {

/// DeviationExplorer: sweeps unilateral (and small-coalition) deviations
/// from a base profile across matrix cells (protocol × committee size ×
/// network preset × seeds), assembles an empirical NormalFormGame per cell
/// from PayoffAccountant utilities, and emits an ε-best-response
/// certificate: is the base profile an ε-equilibrium for the modeled
/// players, and which deviations are strictly profitable? This is what
/// turns the paper's equilibrium claims (Lemma 4, Theorems 1–3) from
/// closed-form assertions into measurements of the actual protocols.
struct ExplorerSpec {
  // -- Cell axes (crossed, like MatrixSpec) --------------------------------
  std::vector<harness::Protocol> protocols{harness::Protocol::kPrft};
  std::vector<std::uint32_t> committee_sizes{8};
  std::vector<harness::NetKind> nets{harness::NetKind::kSynchronous};
  /// Utilities are averaged over these seeds (Monte-Carlo smoothing); the
  /// per-seed runs are deterministic, so so is the whole sweep.
  std::vector<std::uint64_t> seeds{1, 2, 3};

  // -- The game ------------------------------------------------------------
  /// Player slots modeled as rational deciders. One slot = unilateral
  /// deviations; k slots = a coalition game with |strategy_space|^k
  /// simulated profiles per cell.
  std::vector<NodeId> players{0};
  /// Strategies each modeled player chooses among. Must contain π_0.
  std::vector<game::Strategy> strategy_space{game::Strategy::kHonest,
                                             game::Strategy::kAbstain};
  /// The modeled players' type θ (Table 2).
  game::Theta theta = 3;
  /// Fixed environment: strategies of non-modeled players (the threat
  /// model's Byzantine backdrop), censored-tx set, coalition override.
  ProfileSpec base;
  /// Utility accounting (α, L, δ, message costs, censorship probe).
  PayoffParams payoff;
  /// Monte-Carlo tolerance of the certificate: a deviation must beat the
  /// base profile by more than ε to count as profitable.
  double epsilon = 1e-6;

  // -- Scenario knobs per cell ---------------------------------------------
  std::uint64_t target_blocks = 3;
  std::uint64_t workload_txs = 6;
  SimTime delta = msec(10);
  SimTime gst = msec(200);
  double hold_probability = 0.9;
  SimTime horizon = sec(120);
  bool sync_enabled = true;

  /// Worker threads for the sweep (harness::parallel_cells); every run is
  /// an isolated seeded Simulation, so results are identical serial or
  /// parallel. 0 = hardware concurrency, 1 = serial.
  std::uint32_t workers = 0;

  /// The ScenarioSpec one (cell, profile, seed) run executes.
  [[nodiscard]] harness::ScenarioSpec to_scenario(
      harness::Protocol proto, std::uint32_t n, harness::NetKind net,
      std::uint64_t seed, const ProfileSpec& profile) const;
};

/// A unilateral deviation that beat the base profile in one cell.
struct Deviation {
  NodeId player = kNoNode;
  game::Strategy strategy = game::Strategy::kHonest;
  double gain = 0.0;  ///< mean utility minus the base profile's
};

/// One cell's empirical game and certificate.
struct CellVerdict {
  harness::Protocol protocol{};
  std::uint32_t n = 0;
  harness::NetKind net{};

  /// The empirical game: player p's strategies are `strategy_space`
  /// indices; payoffs are seed-averaged PayoffAccountant utilities.
  game::NormalFormGame game;
  game::Profile base_profile;  ///< the base strategies' indices

  /// ε-best-response certificate for the base profile (Definition 4's
  /// inequality on the empirical table).
  bool base_is_eps_equilibrium = false;
  /// Unilateral deviations with gain > ε, most profitable first.
  std::vector<Deviation> profitable;

  [[nodiscard]] const Deviation* best_deviation() const {
    return profitable.empty() ? nullptr : &profitable.front();
  }
  [[nodiscard]] std::string label() const;
};

/// The full sweep's verdicts plus a printable summary.
struct ExplorerReport {
  std::vector<CellVerdict> cells;

  [[nodiscard]] bool all_eps_equilibria() const;
  [[nodiscard]] std::string summary() const;
};

/// Runs the sweep: |cells| × |strategy_space|^|players| × |seeds|
/// simulations, parallel across runs.
[[nodiscard]] ExplorerReport explore(const ExplorerSpec& spec);

}  // namespace ratcon::rational
