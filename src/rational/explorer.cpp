#include "rational/explorer.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "harness/protocols.hpp"
#include "harness/table.hpp"

namespace ratcon::rational {

using game::Strategy;
using harness::NetKind;
using harness::Protocol;
using harness::ScenarioSpec;
using harness::Simulation;

harness::ScenarioSpec ExplorerSpec::to_scenario(
    Protocol proto, std::uint32_t n, NetKind net, std::uint64_t seed,
    const ProfileSpec& profile) const {
  ScenarioSpec scenario;
  scenario.protocol = proto;
  scenario.seed = seed;
  scenario.committee.n = n;
  scenario.net.kind = net;
  scenario.net.delta = delta;
  scenario.net.gst = gst;
  scenario.net.hold_probability = hold_probability;
  scenario.workload.txs = workload_txs;
  scenario.workload.start = msec(1);
  scenario.workload.interval = msec(2);
  scenario.budget.target_blocks = target_blocks;
  scenario.budget.horizon = horizon;
  scenario.sync_plan.enabled = sync_enabled;
  apply_profile(scenario, profile);
  return scenario;
}

namespace {

struct CellKey {
  Protocol proto;
  std::uint32_t n;
  NetKind net;
};

/// All |strategy_space|^|players| assignments, odometer order (profile 0 =
/// every player on strategy_space[0]).
std::vector<std::vector<int>> enumerate_profiles(std::size_t players,
                                                 std::size_t strategies) {
  std::vector<std::vector<int>> out;
  std::vector<int> current(players, 0);
  while (true) {
    out.push_back(current);
    std::size_t p = players;
    while (p > 0) {
      --p;
      if (++current[p] < static_cast<int>(strategies)) break;
      current[p] = 0;
      if (p == 0) return out;
    }
  }
}

}  // namespace

std::string CellVerdict::label() const {
  std::ostringstream os;
  os << to_string(protocol) << "/n=" << n << "/" << to_string(net);
  return os.str();
}

bool ExplorerReport::all_eps_equilibria() const {
  for (const CellVerdict& cell : cells) {
    if (!cell.base_is_eps_equilibrium) return false;
  }
  return true;
}

std::string ExplorerReport::summary() const {
  harness::Table t({"cell", "base U", "eps-BR?", "best deviation", "gain"});
  for (const CellVerdict& cell : cells) {
    const Deviation* best = cell.best_deviation();
    std::ostringstream dev;
    if (best != nullptr) {
      dev << "P" << best->player << " -> " << game::to_string(best->strategy);
    } else {
      dev << "-";
    }
    t.add_row({cell.label(),
               harness::fmt(cell.game.payoff(cell.base_profile, 0), 3),
               cell.base_is_eps_equilibrium ? "yes" : "NO",
               dev.str(),
               best != nullptr ? harness::fmt(best->gain, 3) : "-"});
  }
  return t.render();
}

ExplorerReport explore(const ExplorerSpec& spec) {
  if (spec.players.empty()) {
    throw std::invalid_argument("explore: need at least one modeled player");
  }
  const auto honest_it =
      std::find(spec.strategy_space.begin(), spec.strategy_space.end(),
                Strategy::kHonest);
  if (honest_it == spec.strategy_space.end()) {
    throw std::invalid_argument("explore: strategy_space must contain pi_0");
  }
  const int honest_index =
      static_cast<int>(honest_it - spec.strategy_space.begin());
  // Every axis must be non-empty: an empty seed list would average 0/0
  // into NaN payoffs (which is_nash silently certifies), and empty cell
  // axes would make all_eps_equilibria() vacuously true.
  if (spec.seeds.empty() || spec.protocols.empty() ||
      spec.committee_sizes.empty() || spec.nets.empty()) {
    throw std::invalid_argument(
        "explore: protocols/committee_sizes/nets/seeds must be non-empty");
  }

  // Validate the whole sweep up front: every strategy any profile can
  // assign must be executable under every swept protocol (cheaper and
  // clearer than a mid-sweep throw from a worker thread).
  for (Protocol proto : spec.protocols) {
    for (Strategy s : spec.strategy_space) {
      if (!strategy_supported(proto, s)) {
        throw std::invalid_argument(std::string("explore: ") +
                                    game::to_string(s) +
                                    " is not executable under " +
                                    to_string(proto));
      }
    }
    for (const auto& [id, s] : spec.base.strategies) {
      if (!strategy_supported(proto, s)) {
        throw std::invalid_argument(std::string("explore: base profile ") +
                                    game::to_string(s) +
                                    " is not executable under " +
                                    to_string(proto));
      }
    }
  }

  std::vector<CellKey> cells;
  for (Protocol proto : spec.protocols) {
    for (std::uint32_t n : spec.committee_sizes) {
      for (NetKind net : spec.nets) {
        cells.push_back({proto, n, net});
      }
    }
  }
  const std::vector<std::vector<int>> profiles = enumerate_profiles(
      spec.players.size(), spec.strategy_space.size());

  // Flat run list: cell-major, then profile, then seed — so slot addresses
  // are stable and a parallel sweep fills exactly what a serial one does.
  const std::size_t runs_per_cell = profiles.size() * spec.seeds.size();
  const std::size_t total_runs = cells.size() * runs_per_cell;
  // utilities[run][modeled player]
  std::vector<std::vector<double>> utilities(
      total_runs, std::vector<double>(spec.players.size(), 0.0));

  // Warm the registry before fanning out (thread-safe magic static).
  for (Protocol proto : spec.protocols) {
    (void)harness::protocol_traits(proto);
  }

  PayoffParams payoff = spec.payoff;
  for (NodeId player : spec.players) payoff.thetas[player] = spec.theta;
  if (payoff.window == 0) payoff.window = spec.target_blocks;
  const PayoffAccountant accountant(payoff);

  harness::parallel_cells(total_runs, spec.workers, [&](std::size_t run) {
    const std::size_t cell_idx = run / runs_per_cell;
    const std::size_t in_cell = run % runs_per_cell;
    const std::size_t profile_idx = in_cell / spec.seeds.size();
    const std::size_t seed_idx = in_cell % spec.seeds.size();
    const CellKey& cell = cells[cell_idx];

    ProfileSpec profile = spec.base;
    for (std::size_t p = 0; p < spec.players.size(); ++p) {
      profile.strategies[spec.players[p]] =
          spec.strategy_space[static_cast<std::size_t>(
              profiles[profile_idx][p])];
    }
    Simulation sim(spec.to_scenario(cell.proto, cell.n, cell.net,
                                    spec.seeds[seed_idx], profile));
    (void)sim.run_to_completion();
    const PayoffReport report = accountant.account(sim);
    for (std::size_t p = 0; p < spec.players.size(); ++p) {
      utilities[run][p] = report.of(spec.players[p]).utility;
    }
  });

  ExplorerReport report;
  report.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    CellVerdict verdict{
        cells[c].proto,
        cells[c].n,
        cells[c].net,
        game::NormalFormGame(std::vector<int>(
            spec.players.size(), static_cast<int>(spec.strategy_space.size()))),
        game::Profile(spec.players.size(), honest_index),
        /*base_is_eps_equilibrium=*/false,
        /*profitable=*/{}};
    for (std::size_t p = 0; p < spec.players.size(); ++p) {
      verdict.game.set_player_name(static_cast<int>(p),
                                   "P" + std::to_string(spec.players[p]));
      for (std::size_t s = 0; s < spec.strategy_space.size(); ++s) {
        verdict.game.set_strategy_name(
            static_cast<int>(p), static_cast<int>(s),
            game::to_string(spec.strategy_space[s]));
      }
    }
    for (std::size_t profile_idx = 0; profile_idx < profiles.size();
         ++profile_idx) {
      for (std::size_t p = 0; p < spec.players.size(); ++p) {
        double mean = 0.0;
        for (std::size_t seed_idx = 0; seed_idx < spec.seeds.size();
             ++seed_idx) {
          const std::size_t run = c * runs_per_cell +
                                  profile_idx * spec.seeds.size() + seed_idx;
          mean += utilities[run][p];
        }
        mean /= static_cast<double>(spec.seeds.size());
        verdict.game.set_payoff(profiles[profile_idx], static_cast<int>(p),
                                mean);
      }
    }

    verdict.base_is_eps_equilibrium =
        verdict.game.is_nash(verdict.base_profile, spec.epsilon);
    for (std::size_t p = 0; p < spec.players.size(); ++p) {
      const double base_u =
          verdict.game.payoff(verdict.base_profile, static_cast<int>(p));
      game::Profile deviated = verdict.base_profile;
      for (std::size_t s = 0; s < spec.strategy_space.size(); ++s) {
        if (static_cast<int>(s) == honest_index) continue;
        deviated[p] = static_cast<int>(s);
        const double gain =
            verdict.game.payoff(deviated, static_cast<int>(p)) - base_u;
        if (gain > spec.epsilon) {
          verdict.profitable.push_back(
              {spec.players[p], spec.strategy_space[s], gain});
        }
      }
    }
    std::stable_sort(verdict.profitable.begin(), verdict.profitable.end(),
                     [](const Deviation& a, const Deviation& b) {
                       return a.gain > b.gain;
                     });
    report.cells.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace ratcon::rational
