#include "core/prft_node.hpp"

#include <algorithm>
#include <tuple>

#include "common/log.hpp"
#include "harness/profiler.hpp"
#include "harness/metrics.hpp"
#include "harness/trace.hpp"

namespace ratcon::prft {

namespace {

constexpr ProtoId kProto = ProtoId::kPrft;
constexpr std::uint8_t kTraceProto = static_cast<std::uint8_t>(kProto);

std::uint64_t sig_prefix64(const crypto::Signature& sig) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(sig.bytes[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

// Upper bound on the body size per message type, enforced before the body
// is hashed for signature verification. Fixed-layout bodies get their
// exact wire size; certificate-bearing bodies the size implied by the
// codec's signature-count cap; block- and evidence-carrying bodies keep
// the codec default. A cap can therefore only reject bodies the codec
// would reject anyway — just earlier, while the length is still an
// integer.
constexpr std::size_t kPhaseSigWire = 4 + 32;  // signer u32 + sig 32B
constexpr std::size_t kCertWireMax =           // phase+round+value+count+sigs
    1 + 8 + 32 + 4 + kPhaseSigWire * (std::size_t{1} << 16);

std::size_t max_body(MsgType t) {
  switch (t) {
    case MsgType::kVote:
    case MsgType::kFinal:
      return 32 + 2 * kPhaseSigWire;  // h + two phase signatures
    case MsgType::kViewChange:
      return 1 + kPhaseSigWire;  // stalled phase + vc signature
    case MsgType::kCommit:
      return 32 + 2 * kPhaseSigWire + kCertWireMax;
    case MsgType::kCommitView:
      return kPhaseSigWire + kCertWireMax;
    case MsgType::kPropose:  // carries a block (bounded by the tx codec)
    case MsgType::kReveal:   // O(n) commit evidences, each with a cert
    case MsgType::kExpose:   // fraud set
    case MsgType::kSync:     // chain suffix
    default:
      return Reader::kDefaultMaxLen;
  }
}

}  // namespace

PrftNode::PrftNode(Deps deps)
    : cfg_(deps.cfg),
      registry_(deps.registry),
      keys_(deps.keys),
      deposits_(deps.deposits),
      behavior_(std::move(deps.behavior)) {}

// ---------------------------------------------------------------------------
// INode plumbing

void PrftNode::on_start(net::Context& ctx) {
  self_ = ctx.self();
  self_known_ = true;
  start_round(ctx);
}

void PrftNode::on_message(net::Context& ctx, NodeId from, const Bytes& data) {
  consensus::WireView view;
  try {
    view = consensus::WireView::parse(ByteSpan(data.data(), data.size()));
  } catch (const CodecError&) {
    return;  // malformed — Byzantine garbage is dropped silently
  }
  if (view.proto != kProto) return;
  if (view.from >= cfg_.n) return;
  const auto type = static_cast<MsgType>(view.type);
  // Oversized for its type: reject before the body is hashed or decoded.
  if (view.body().size() > max_body(type)) return;
  if (!consensus::verify_wire(view, *registry_)) return;
  (void)from;  // authenticity comes from the signature, not the channel

  if (view.round > round_ && type != MsgType::kSync) {
    // Not in that round yet; buffer the verified wire bytes and replay once
    // we advance (the network already delivered it, so no re-count in
    // stats). Sync bypasses the gate: it is precisely for nodes that lag
    // behind the sender's round. Replay re-parses the fixed-offset header
    // and skips the signature verification done here.
    harness::prof_count(harness::kL3FutureRoundBuffered);
    future_[view.round].push_back(data);
    return;
  }
  dispatch(ctx, view);
}

void PrftNode::dispatch(net::Context& ctx, const WireView& env) {
  harness::trace_deliver(self_, env.from, env.round, kTraceProto, env.type,
                         env.wire().data(), env.wire().size());
  try {
    switch (static_cast<MsgType>(env.type)) {
      case MsgType::kPropose: handle_propose(ctx, env); break;
      case MsgType::kVote: handle_vote(ctx, env); break;
      case MsgType::kCommit: handle_commit(ctx, env); break;
      case MsgType::kReveal: handle_reveal(ctx, env); break;
      case MsgType::kExpose: handle_expose(ctx, env); break;
      case MsgType::kFinal: handle_final(ctx, env); break;
      case MsgType::kViewChange: handle_view_change(ctx, env); break;
      case MsgType::kCommitView: handle_commit_view(ctx, env); break;
      case MsgType::kSync: handle_sync(ctx, env); break;
      default: break;
    }
  } catch (const CodecError&) {
    // Malformed body under a valid envelope: sender is faulty; ignore.
  }
}

void PrftNode::on_timer(net::Context& ctx, std::uint64_t timer_id) {
  if (timer_id != kPhaseTimer || stopped_) return;
  RoundState& rs = rounds_[round_];
  if (rs.finalized || rs.phase == Phase::kDone) return;
  // §5.2 trigger (a): timeout in waiting time Δ.
  const PhaseTag stalled = rs.phase == Phase::kPropose ? PhaseTag::kPropose
                           : rs.phase == Phase::kVote  ? PhaseTag::kVote
                           : rs.phase == Phase::kCommit
                               ? PhaseTag::kCommit
                               : PhaseTag::kReveal;
  trigger_view_change(ctx, round_, stalled);
}

// ---------------------------------------------------------------------------
// Round lifecycle

void PrftNode::start_round(net::Context& ctx) {
  if (stopped_) return;
  if (target_blocks_ != 0 && chain_.finalized_height() >= target_blocks_) {
    stopped_ = true;
    ctx.cancel_timer(kPhaseTimer);
    return;
  }
  RoundState& rs = rounds_[round_];
  rs.started = true;
  harness::trace_state(harness::TraceKind::kRoundEnter, self_, round_,
                       kTraceProto);
  harness::metrics_round_enter(self_, round_);
  if (cfg_.leader(round_) == self_) {
    do_propose(ctx, round_, rs);
  }
  ctx.set_timer(kPhaseTimer, phase_timeout());
  retry_stale_proposals(ctx);
}

void PrftNode::advance_round(net::Context& ctx, Round r, bool failed) {
  if (r != round_) return;
  round_ = r + 1;
  consecutive_failures_ = failed ? consecutive_failures_ + 1 : 0;
  ctx.cancel_timer(kPhaseTimer);
  start_round(ctx);
  // Replay buffered messages for the new round. Their signatures were
  // verified on arrival, so this re-parses the fixed-offset header and
  // dispatches directly; re-gate the round in case a handler advanced it
  // again mid-replay.
  auto it = future_.find(round_);
  if (it != future_.end()) {
    auto pending = std::move(it->second);
    future_.erase(it);
    for (Bytes& wire : pending) {
      harness::prof_count(harness::kL3FutureRoundReplayed);
      consensus::WireView view;
      try {
        view = consensus::WireView::parse(ByteSpan(wire.data(), wire.size()));
      } catch (const CodecError&) {
        continue;  // unreachable: buffered wires parsed cleanly on arrival
      }
      if (view.round > round_) {
        future_[view.round].push_back(std::move(wire));
      } else {
        dispatch(ctx, view);
      }
    }
  }
}

SimTime PrftNode::phase_timeout() const {
  const std::uint64_t backoff =
      1ull << std::min<std::uint64_t>(consecutive_failures_, 6);
  return cfg_.base_timeout * static_cast<SimTime>(backoff);
}

bool PrftNode::participating(Round r, PhaseTag phase) const {
  if (behavior_ == nullptr) return true;
  return behavior_->participate(r, cfg_.leader(r), phase);
}

// ---------------------------------------------------------------------------
// Honest send paths (Figure 1)

ledger::Block PrftNode::build_block(net::Context& ctx) const {
  (void)ctx;
  std::function<bool(const ledger::Transaction&)> censor;
  if (behavior_ != nullptr) {
    censor = [this](const ledger::Transaction& tx) {
      return behavior_->censor_tx(tx);
    };
  }
  ledger::Block block;
  block.parent = chain_.tip_hash();
  block.round = round_;
  block.proposer = self_;
  block.txs = mempool_.select(cfg_.max_block_txs, cfg_.max_block_bytes, censor);
  return block;
}

PhaseSig PrftNode::phase_sig(PhaseTag phase, Round r,
                             const crypto::Hash256& value) const {
  return consensus::sign_phase(kProto, phase, r, value, self_, keys_.sk);
}

Bytes PrftNode::encode_env(MsgType type, Round r, Bytes body) const {
  return consensus::make_envelope(kProto, static_cast<std::uint8_t>(type), r,
                                  self_, std::move(body), keys_.sk)
      .encode();
}

void PrftNode::broadcast_env(net::Context& ctx, MsgType type, Round r,
                             Bytes body) {
  ctx.broadcast(encode_env(type, r, std::move(body)));
}

Bytes PrftNode::make_propose(Round r, const ledger::Block& block) {
  ProposeBody body;
  body.block = block;
  body.pro_sig = phase_sig(PhaseTag::kPropose, r, block.hash());
  Writer w;
  body.encode(w);
  return encode_env(MsgType::kPropose, r, w.take());
}

Bytes PrftNode::make_vote(Round r, const crypto::Hash256& h,
                          const PhaseSig& pro_sig) {
  VoteBody body;
  body.h = h;
  body.leader_pro_sig = pro_sig;
  body.vote_sig = phase_sig(PhaseTag::kVote, r, h);
  Writer w;
  body.encode(w);
  return encode_env(MsgType::kVote, r, w.take());
}

Bytes PrftNode::make_commit(Round r, const crypto::Hash256& h,
                            const RoundState& rs) {
  CommitBody body;
  body.h = h;
  body.leader_pro_sig = rs.leader_pro_sig;
  body.vote_cert.phase = PhaseTag::kVote;
  body.vote_cert.round = r;
  body.vote_cert.value = h;
  const auto it = rs.votes.find(h);
  if (it != rs.votes.end()) {
    for (const auto& [signer, sig] : it->second) {
      body.vote_cert.sigs.push_back(sig);
      if (body.vote_cert.sigs.size() >= cfg_.quorum()) break;
    }
  }
  body.commit_sig = phase_sig(PhaseTag::kCommit, r, h);
  Writer w;
  body.encode(w);
  return encode_env(MsgType::kCommit, r, w.take());
}

Bytes PrftNode::make_reveal(Round r, const crypto::Hash256& h,
                            const RoundState& rs) {
  RevealBody body;
  body.h_tc = h;
  body.h_l = rs.h_l;
  const auto it = rs.commits.find(h);
  if (it != rs.commits.end()) {
    for (const auto& [signer, evidence] : it->second) {
      body.commits.push_back(evidence);
      if (body.commits.size() >= cfg_.quorum()) break;
    }
  }
  body.reveal_sig = phase_sig(PhaseTag::kReveal, r, h);
  Writer w;
  body.encode(w);
  return encode_env(MsgType::kReveal, r, w.take());
}

void PrftNode::send_to(net::Context& ctx, const std::set<NodeId>& targets,
                       const Bytes& wire) {
  for (NodeId to : targets) {
    if (to == self_) continue;
    ctx.send(to, wire);
  }
  if (targets.count(self_)) {
    // Loop back through the normal receive path (uncounted, like broadcast
    // self-delivery).
    on_message(ctx, self_, wire);
  }
}

void PrftNode::do_propose(net::Context& ctx, Round r, RoundState& rs) {
  (void)rs;
  if (!participating(r, PhaseTag::kPropose)) return;
  const ledger::Block block = build_block(ctx);
  ctx.broadcast(make_propose(r, block));
}

void PrftNode::do_vote(net::Context& ctx, Round r, RoundState& rs) {
  if (rs.voted) return;
  rs.voted = true;
  if (!participating(r, PhaseTag::kVote)) return;
  harness::trace_state(harness::TraceKind::kVoteCast, self_, r, kTraceProto, 0,
                       0, 0, static_cast<std::uint8_t>(MsgType::kVote));
  ctx.broadcast(make_vote(r, rs.h_l, rs.leader_pro_sig));
}

void PrftNode::do_commit(net::Context& ctx, Round r, RoundState& rs,
                         const crypto::Hash256& h) {
  if (rs.committed) return;
  rs.committed = true;
  if (!participating(r, PhaseTag::kCommit)) return;
  harness::trace_state(harness::TraceKind::kVoteCast, self_, r, kTraceProto, 0,
                       0, 0, static_cast<std::uint8_t>(MsgType::kCommit));
  ctx.broadcast(make_commit(r, h, rs));
}

void PrftNode::do_reveal(net::Context& ctx, Round r, RoundState& rs,
                         const crypto::Hash256& h) {
  if (rs.revealed) return;
  rs.revealed = true;
  if (!participating(r, PhaseTag::kReveal)) return;
  harness::trace_state(harness::TraceKind::kVoteCast, self_, r, kTraceProto, 0,
                       0, 0, static_cast<std::uint8_t>(MsgType::kReveal));
  ctx.broadcast(make_reveal(r, h, rs));
}

// ---------------------------------------------------------------------------
// Verification helpers

bool PrftNode::verify_cached(PhaseTag phase, Round r,
                             const crypto::Hash256& value,
                             const PhaseSig& ps) {
  const auto key =
      std::make_tuple(ps.signer, static_cast<std::uint8_t>(phase), r,
                      crypto::hash_prefix64(value), sig_prefix64(ps.sig));
  if (verified_.count(key)) return true;
  if (!consensus::verify_phase(kProto, phase, r, value, ps, *registry_)) {
    return false;
  }
  verified_.insert(key);
  return true;
}

bool PrftNode::verify_cert_cached(const Certificate& cert, PhaseTag phase,
                                  Round r, const crypto::Hash256& value,
                                  std::uint32_t min_sigs) {
  if (cert.phase != phase || cert.round != r || cert.value != value) {
    return false;
  }
  std::set<NodeId> signers;
  for (const PhaseSig& ps : cert.sigs) {
    if (ps.signer >= cfg_.n) return false;
    if (!signers.insert(ps.signer).second) return false;
    if (!verify_cached(phase, r, value, ps)) return false;
  }
  return signers.size() >= min_sigs;
}

// ---------------------------------------------------------------------------
// Handlers (the "On Recv." arms of Figure 1)

void PrftNode::handle_propose(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const ProposeBody body = ProposeBody::decode(reader);
  const Round r = env.round;
  const NodeId leader = cfg_.leader(r);
  if (env.from != leader || body.pro_sig.signer != leader) return;

  const crypto::Hash256 h = body.block.hash();
  if (body.block.round != r) return;
  if (!verify_cached(PhaseTag::kPropose, r, h, body.pro_sig)) return;

  block_store_[h] = body.block;
  RoundState& rs = rounds_[r];

  // Leader equivocation: two valid propose signatures on different blocks
  // (§5.2 trigger (b)) — also a PoF against the leader.
  if (const auto cp = rs.fraud.observe(
          consensus::SignedValue{PhaseTag::kPropose, r, h, body.pro_sig})) {
    on_conflict(cp);
    trigger_view_change(ctx, r, PhaseTag::kPropose);
    maybe_expose(ctx, r, rs);
    return;
  }

  if (rs.proposal.has_value()) return;  // already accepted one

  if (body.block.parent != chain_.tip_hash()) {
    // We lag; keep it and retry once our chain catches up.
    rs.stale_proposals[h] = {body.block, body.pro_sig};
    return;
  }

  rs.proposal = body.block;
  rs.h_l = h;
  rs.leader_pro_sig = body.pro_sig;
  if (rs.phase == Phase::kPropose) {
    rs.phase = Phase::kVote;
    do_vote(ctx, r, rs);
    if (r == round_) ctx.set_timer(kPhaseTimer, phase_timeout());
  }
  check_vote_quorum(ctx, r, rs);
}

void PrftNode::handle_vote(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const VoteBody body = VoteBody::decode(reader);
  const Round r = env.round;
  if (body.vote_sig.signer >= cfg_.n) return;
  if (!verify_cached(PhaseTag::kVote, r, body.h, body.vote_sig)) return;

  RoundState& rs = rounds_[r];
  if (const auto cp = rs.fraud.observe(consensus::SignedValue{
          PhaseTag::kVote, r, body.h, body.vote_sig})) {
    // §5.2 trigger (c) builds up; Expose fires at > t0 guilty.
    on_conflict(cp);
    maybe_expose(ctx, r, rs);
    if (rs.fraud.guilty_count() > cfg_.t0) {
      trigger_view_change(ctx, r, PhaseTag::kVote);
    }
  }
  rs.votes[body.h][body.vote_sig.signer] = body.vote_sig;
  check_vote_quorum(ctx, r, rs);
}

void PrftNode::check_vote_quorum(net::Context& ctx, Round r, RoundState& rs) {
  if (rs.committed || !rs.proposal.has_value()) return;
  if (rs.phase != Phase::kVote) return;
  const auto it = rs.votes.find(rs.h_l);
  if (it == rs.votes.end() || it->second.size() < cfg_.quorum()) return;
  rs.phase = Phase::kCommit;
  do_commit(ctx, r, rs, rs.h_l);
  if (r == round_) ctx.set_timer(kPhaseTimer, phase_timeout());
  check_commit_quorum(ctx, r, rs);
}

void PrftNode::handle_commit(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const CommitBody body = CommitBody::decode(reader);
  const Round r = env.round;
  if (body.commit_sig.signer >= cfg_.n) return;
  if (!verify_cached(PhaseTag::kCommit, r, body.h, body.commit_sig)) return;
  if (!verify_cert_cached(body.vote_cert, PhaseTag::kVote, r, body.h,
                          cfg_.quorum())) {
    return;
  }

  RoundState& rs = rounds_[r];
  if (const auto cp = rs.fraud.observe(consensus::SignedValue{
          PhaseTag::kCommit, r, body.h, body.commit_sig})) {
    on_conflict(cp);
    maybe_expose(ctx, r, rs);
    if (rs.fraud.guilty_count() > cfg_.t0) {
      trigger_view_change(ctx, r, PhaseTag::kCommit);
    }
  }
  for (const PhaseSig& vote : body.vote_cert.sigs) {
    on_conflict(rs.fraud.observe(
        consensus::SignedValue{PhaseTag::kVote, r, body.h, vote}));
    rs.votes[body.h][vote.signer] = vote;
  }
  rs.commits[body.h][body.commit_sig.signer] =
      CommitEvidence{body.commit_sig, body.vote_cert};
  check_vote_quorum(ctx, r, rs);
  check_commit_quorum(ctx, r, rs);
}

void PrftNode::check_commit_quorum(net::Context& ctx, Round r,
                                   RoundState& rs) {
  if (rs.revealed || rs.finalized) return;
  if (rs.phase != Phase::kVote && rs.phase != Phase::kCommit &&
      rs.phase != Phase::kPropose) {
    return;
  }
  for (const auto& [h, evidence] : rs.commits) {
    if (evidence.size() < cfg_.quorum()) continue;
    // Tentative consensus (paper §5.3.2).
    rs.tentative = h;
    harness::trace_state(harness::TraceKind::kLockAcquire, self_, r,
                         kTraceProto, r, crypto::hash_prefix64(h),
                         static_cast<std::int64_t>(evidence.size()));
    const auto block_it = block_store_.find(h);
    if (!rs.tentative_appended && block_it != block_store_.end() &&
        block_it->second.parent == chain_.tip_hash()) {
      if (chain_.append_tentative(block_it->second)) {
        rs.tentative_appended = true;
      }
    }
    rs.phase = Phase::kReveal;
    do_reveal(ctx, r, rs, h);
    if (r == round_) ctx.set_timer(kPhaseTimer, phase_timeout());
    check_reveal_progress(ctx, r, rs);
    return;
  }
}

void PrftNode::handle_reveal(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const RevealBody body = RevealBody::decode(reader);
  const Round r = env.round;
  if (body.reveal_sig.signer >= cfg_.n) return;
  if (!verify_cached(PhaseTag::kReveal, r, body.h_tc, body.reveal_sig)) {
    return;
  }

  RoundState& rs = rounds_[r];
  // Scan the Proof-of-Commitment W_j for double signatures (Figure 1
  // line 26: D_i := ConstructPoF(M_i)). Both the commit signatures and the
  // vote certificates inside are evidence.
  for (const CommitEvidence& ev : body.commits) {
    if (ev.commit_sig.signer >= cfg_.n) continue;
    if (!verify_cached(PhaseTag::kCommit, r, body.h_tc, ev.commit_sig)) {
      continue;
    }
    on_conflict(rs.fraud.observe(consensus::SignedValue{
        PhaseTag::kCommit, r, body.h_tc, ev.commit_sig}));
    rs.commits[body.h_tc][ev.commit_sig.signer] = ev;
    if (ev.vote_cert.value == body.h_tc && ev.vote_cert.round == r &&
        ev.vote_cert.phase == PhaseTag::kVote) {
      for (const PhaseSig& vote : ev.vote_cert.sigs) {
        if (vote.signer >= cfg_.n) continue;
        if (!verify_cached(PhaseTag::kVote, r, body.h_tc, vote)) continue;
        on_conflict(rs.fraud.observe(
            consensus::SignedValue{PhaseTag::kVote, r, body.h_tc, vote}));
      }
    }
  }
  rs.reveals[body.h_tc].insert(body.reveal_sig.signer);

  maybe_expose(ctx, r, rs);
  check_commit_quorum(ctx, r, rs);
  check_reveal_progress(ctx, r, rs);
}

void PrftNode::maybe_expose(net::Context& ctx, Round r, RoundState& rs) {
  if (rs.expose_sent || rs.fraud.guilty_count() <= cfg_.t0) return;
  if (behavior_ != nullptr && !behavior_->expose_fraud()) return;
  rs.expose_sent = true;
  exposes_sent_ += 1;
  const consensus::FraudSet proofs = rs.fraud.fraud_set();
  burn_guilty(proofs);
  if (participating(r, PhaseTag::kReveal)) {
    ExposeBody body;
    body.proofs = proofs;
    Writer w;
    body.encode(w);
    broadcast_env(ctx, MsgType::kExpose, r, w.take());
  }
  abort_round(ctx, r, rs);
}

void PrftNode::check_reveal_progress(net::Context& ctx, Round r,
                                     RoundState& rs) {
  if (rs.finalized || rs.final_sent) return;
  if (rs.fraud.guilty_count() > cfg_.t0) return;  // Expose path owns this
  for (const auto& [h, senders] : rs.reveals) {
    if (senders.size() < cfg_.quorum()) continue;
    // Final consensus (Figure 1 line 33-34).
    rs.final_sent = true;
    if (participating(r, PhaseTag::kFinal)) {
      harness::trace_state(harness::TraceKind::kVoteCast, self_, r,
                           kTraceProto, 0, 0, 0,
                           static_cast<std::uint8_t>(MsgType::kFinal));
      FinalBody body;
      body.h = h;
      body.leader_pro_sig = rs.leader_pro_sig;
      body.final_sig = phase_sig(PhaseTag::kFinal, r, h);
      Writer w;
      body.encode(w);
      broadcast_env(ctx, MsgType::kFinal, r, w.take());
    }
    finalize_round(ctx, r, rs, h,
                   static_cast<std::int64_t>(senders.size()));
    return;
  }
}

void PrftNode::handle_final(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const FinalBody body = FinalBody::decode(reader);
  const Round r = env.round;
  if (body.final_sig.signer >= cfg_.n) return;
  if (!verify_cached(PhaseTag::kFinal, r, body.h, body.final_sig)) return;

  RoundState& rs = rounds_[r];
  rs.finals[body.h][body.final_sig.signer] = body.final_sig;
  check_final_quorum(ctx, r, rs);
}

void PrftNode::check_final_quorum(net::Context& ctx, Round r,
                                  RoundState& rs) {
  if (rs.finalized) return;
  for (const auto& [h, senders] : rs.finals) {
    if (senders.size() <= cfg_.n / 2) continue;
    // > n/2 Final messages: at least one honest player finalized (k + t <
    // n/2), so it is safe to finalize too (Figure 1 line 35).
    if (!rs.final_sent && participating(r, PhaseTag::kFinal)) {
      rs.final_sent = true;
      harness::trace_state(harness::TraceKind::kVoteCast, self_, r,
                           kTraceProto, 0, 0, 0,
                           static_cast<std::uint8_t>(MsgType::kFinal));
      FinalBody body;
      body.h = h;
      body.leader_pro_sig = rs.leader_pro_sig;
      body.final_sig = phase_sig(PhaseTag::kFinal, r, h);
      Writer w;
      body.encode(w);
      broadcast_env(ctx, MsgType::kFinal, r, w.take());
    }
    finalize_round(ctx, r, rs, h,
                   static_cast<std::int64_t>(senders.size()));
    return;
  }
}

void PrftNode::finalize_round(net::Context& ctx, Round r, RoundState& rs,
                              const crypto::Hash256& h, std::int64_t cert) {
  if (rs.finalized) return;
  rs.finalized = true;
  rs.phase = Phase::kDone;
  rs.tentative = h;
  // One finalized value per round is exactly pRFT's agreement invariant,
  // so the flight recorder keys the finalize on the round (a slot maps to
  // at most one chain height).
  harness::trace_state(harness::TraceKind::kLockRelease, self_, r,
                       kTraceProto);
  harness::trace_state(harness::TraceKind::kFinalize, self_, r, kTraceProto, r,
                       crypto::hash_prefix64(h), cert);
  if (!latest_final_.has_value() || latest_final_->first < r) {
    latest_final_ = {r, h};
  }

  if (!adopt_block(h)) {
    pending_adopt_[r] = h;
  } else {
    const auto it = block_store_.find(h);
    if (it != block_store_.end()) {
      mempool_.mark_included(it->second.txs);
    }
  }

  if (r == round_) {
    advance_round(ctx, r, /*failed=*/false);
  }
  try_adopt_pending(ctx);
}

bool PrftNode::adopt_block(const crypto::Hash256& h) {
  // Already the (tentative) tip?
  if (chain_.tip_hash() == h) {
    chain_.finalize_up_to(chain_.height());
    return true;
  }
  const auto it = block_store_.find(h);
  if (it == block_store_.end()) return false;
  const ledger::Block& block = it->second;

  if (chain_.tip_hash() == block.parent) {
    chain_.append_tentative(block);
    chain_.finalize_up_to(chain_.height());
    return true;
  }
  // A conflicting tentative suffix blocks adoption: roll it back (paper
  // §3.1: tentative blocks are "subject to rollbacks").
  if (chain_.height() > chain_.finalized_height()) {
    rollbacks_ += chain_.rollback_tentative();
    if (chain_.tip_hash() == h) {
      chain_.finalize_up_to(chain_.height());
      return true;
    }
    if (chain_.tip_hash() == block.parent) {
      chain_.append_tentative(block);
      chain_.finalize_up_to(chain_.height());
      return true;
    }
  }
  return false;
}

void PrftNode::try_adopt_pending(net::Context& ctx) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = pending_adopt_.begin(); it != pending_adopt_.end();) {
      if (adopt_block(it->second)) {
        const auto bit = block_store_.find(it->second);
        if (bit != block_store_.end()) {
          mempool_.mark_included(bit->second.txs);
        }
        it = pending_adopt_.erase(it);
        progressed = true;
      } else {
        ++it;
      }
    }
  }
  retry_stale_proposals(ctx);
}

void PrftNode::retry_stale_proposals(net::Context& ctx) {
  RoundState& rs = rounds_[round_];
  if (rs.proposal.has_value() || rs.phase != Phase::kPropose) return;
  for (const auto& [h, entry] : rs.stale_proposals) {
    const auto& [block, pro_sig] = entry;
    if (block.parent != chain_.tip_hash()) continue;
    rs.proposal = block;
    rs.h_l = h;
    rs.leader_pro_sig = pro_sig;
    rs.phase = Phase::kVote;
    do_vote(ctx, round_, rs);
    ctx.set_timer(kPhaseTimer, phase_timeout());
    check_vote_quorum(ctx, round_, rs);
    return;
  }
}

void PrftNode::handle_expose(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const ExposeBody body = ExposeBody::decode(reader);
  const Round r = env.round;

  // V(π): validate every ConflictPair; burn all convicted players.
  const std::set<NodeId> guilty =
      consensus::verify_fraud_proofs(kProto, body.proofs, *registry_);
  consensus::FraudSet valid;
  for (const consensus::ConflictPair& cp : body.proofs) {
    if (guilty.count(cp.guilty()) && cp.verify(kProto, *registry_)) {
      valid.push_back(cp);
    }
  }
  burn_guilty(valid);

  if (guilty.size() > cfg_.t0) {
    RoundState& rs = rounds_[r];
    if (!rs.finalized && rs.phase != Phase::kDone) {
      abort_round(ctx, r, rs);
    }
  }
}

void PrftNode::abort_round(net::Context& ctx, Round r, RoundState& rs) {
  if (rs.finalized) return;
  // NOTE: a tentative block appended in this round is NOT rolled back here.
  // Tentative consensus (a commit quorum) acts as a lock: at most one value
  // per round can assemble n − t0 commits (two would need k + t + 2t0 >= n,
  // impossible in the threat model), and at least n − t0 − (k+t) > t0
  // honest players hold the lock. Keeping the tentative tip means later
  // rounds extend it, so a block that finalized at *some* honest player can
  // never be displaced by a competing sibling proposed after the abort.
  rs.phase = Phase::kDone;
  if (r == round_) {
    advance_round(ctx, r, /*failed=*/true);
  }
}

void PrftNode::burn_guilty(const consensus::FraudSet& proofs) {
  if (deposits_ == nullptr) return;
  for (const consensus::ConflictPair& cp : proofs) {
    if (cp.verify(kProto, *registry_)) {
      deposits_->burn(cp.guilty(), cp.round);
    }
  }
}

void PrftNode::on_conflict(const std::optional<consensus::ConflictPair>& cp) {
  // §5.3.1: any valid PoF can be spent in a burn transaction against the
  // deviating player; we model the burn as taking effect when an honest
  // (exposing) player first holds the proof. Colluders never burn their own.
  if (!cp.has_value() || deposits_ == nullptr) return;
  if (behavior_ != nullptr && !behavior_->expose_fraud()) return;
  deposits_->burn(cp->guilty(), cp->round);
}

// ---------------------------------------------------------------------------
// View change (§5.2)

void PrftNode::trigger_view_change(net::Context& ctx, Round r,
                                   PhaseTag stalled_phase) {
  RoundState& rs = rounds_[r];
  if (rs.vc_sent || rs.finalized || rs.phase == Phase::kDone) return;
  rs.vc_sent = true;
  view_changes_ += 1;
  if (rs.phase != Phase::kViewChange) rs.phase = Phase::kViewChange;

  if (participating(r, PhaseTag::kViewChange)) {
    ViewChangeBody body;
    body.stalled_phase = stalled_phase;
    body.vc_sig = phase_sig(PhaseTag::kViewChange, r, vc_value(r));
    Writer w;
    body.encode(w);
    broadcast_env(ctx, MsgType::kViewChange, r, w.take());
  }
  if (r == round_) ctx.set_timer(kPhaseTimer, phase_timeout());
}

void PrftNode::handle_view_change(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const ViewChangeBody body = ViewChangeBody::decode(reader);
  const Round r = env.round;
  if (body.vc_sig.signer >= cfg_.n) return;
  if (!verify_cached(PhaseTag::kViewChange, r, vc_value(r), body.vc_sig)) {
    return;
  }

  RoundState& rs = rounds_[r];
  rs.vc_sigs[body.vc_sig.signer] = body.vc_sig;

  // §5.2 step 2(2): if this round already progressed past the stalled
  // phase, help the view-changer catch up instead (send it our most recent
  // message for the round).
  const NodeId peer = body.vc_sig.signer;
  if (peer != self_ && participating(r, PhaseTag::kViewChange)) {
    if (rs.final_sent && rs.tentative.has_value()) {
      FinalBody fin;
      fin.h = *rs.tentative;
      fin.leader_pro_sig = rs.leader_pro_sig;
      fin.final_sig = phase_sig(PhaseTag::kFinal, r, *rs.tentative);
      Writer w;
      fin.encode(w);
      ctx.send(peer, encode_env(MsgType::kFinal, r, w.take()));
    } else if (rs.revealed && rs.tentative.has_value()) {
      ctx.send(peer, make_reveal(r, *rs.tentative, rs));
    } else if (rs.committed && rs.proposal.has_value()) {
      ctx.send(peer, make_commit(r, rs.h_l, rs));
    }
    // A view-changing peer may have been cut out of finalized rounds
    // entirely (targeted-message adversary); ship it our certified chain.
    maybe_send_sync(ctx, peer);
  }

  check_vc_quorum(ctx, r, rs);
}

void PrftNode::check_vc_quorum(net::Context& ctx, Round r, RoundState& rs) {
  if (rs.cv_sent || rs.finalized) return;
  if (rs.vc_sigs.size() < cfg_.quorum()) return;

  // Join the view change if we had not timed out ourselves (the quorum
  // includes "their own" message per §5.2 step 3).
  if (!rs.vc_sent) {
    rs.vc_sent = true;
    if (rs.phase != Phase::kDone) rs.phase = Phase::kViewChange;
    if (participating(r, PhaseTag::kViewChange)) {
      ViewChangeBody body;
      body.stalled_phase = PhaseTag::kViewChange;
      body.vc_sig = phase_sig(PhaseTag::kViewChange, r, vc_value(r));
      Writer w;
      body.encode(w);
      broadcast_env(ctx, MsgType::kViewChange, r, w.take());
    }
  }

  rs.cv_sent = true;
  Certificate cert;
  cert.phase = PhaseTag::kViewChange;
  cert.round = r;
  cert.value = vc_value(r);
  for (const auto& [signer, sig] : rs.vc_sigs) {
    cert.sigs.push_back(sig);
    if (cert.sigs.size() >= cfg_.quorum()) break;
  }
  rs.vc_cert = cert;

  if (participating(r, PhaseTag::kCommitView)) {
    CommitViewBody body;
    body.vc_cert = cert;
    body.cv_sig = phase_sig(PhaseTag::kCommitView, r, vc_value(r));
    Writer w;
    body.encode(w);
    broadcast_env(ctx, MsgType::kCommitView, r, w.take());
  }
}

void PrftNode::handle_commit_view(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const CommitViewBody body = CommitViewBody::decode(reader);
  const Round r = env.round;
  if (body.cv_sig.signer >= cfg_.n) return;
  if (!verify_cached(PhaseTag::kCommitView, r, vc_value(r), body.cv_sig)) {
    return;
  }
  if (!verify_cert_cached(body.vc_cert, PhaseTag::kViewChange, r, vc_value(r),
                          cfg_.quorum())) {
    return;
  }

  RoundState& rs = rounds_[r];
  rs.cv_senders.insert(body.cv_sig.signer);

  // §5.2 step 4: a valid commit-view commits us to the view change too.
  if (!rs.cv_sent && !rs.finalized) {
    rs.cv_sent = true;
    rs.vc_cert = body.vc_cert;
    if (rs.phase != Phase::kDone) rs.phase = Phase::kViewChange;
    if (participating(r, PhaseTag::kCommitView)) {
      CommitViewBody echo;
      echo.vc_cert = body.vc_cert;
      echo.cv_sig = phase_sig(PhaseTag::kCommitView, r, vc_value(r));
      Writer w;
      echo.encode(w);
      broadcast_env(ctx, MsgType::kCommitView, r, w.take());
    }
  }

  // §5.2 step 5 (threshold relaxed to ≥ n − t0; see class comment).
  if (rs.cv_senders.size() >= cfg_.quorum() && !rs.finalized &&
      rs.phase != Phase::kDone) {
    abort_round(ctx, r, rs);
  }
}

// ---------------------------------------------------------------------------
// State transfer

bool PrftNode::on_sync_adopt(net::Context& ctx,
                             const std::vector<ledger::Block>& blocks,
                             std::uint64_t first_height) {
  std::size_t rolled_back = 0;
  if (!chain_.adopt_finalized_run(blocks, first_height, &rolled_back)) {
    return false;
  }
  rollbacks_ += rolled_back;
  harness::trace_state(harness::TraceKind::kSyncAdopt, self_, round_,
                       kTraceProto, first_height, 0,
                       static_cast<std::int64_t>(blocks.size()));
  Round top = 0;
  for (const ledger::Block& b : blocks) {
    block_store_[b.hash()] = b;
    mempool_.mark_included(b.txs);
    top = std::max(top, b.round);
    RoundState& rs = rounds_[b.round];
    if (!rs.finalized) {
      rs.finalized = true;
      rs.phase = Phase::kDone;
      rs.tentative = b.hash();
    }
  }
  // latest_final_ deliberately stays at the last round whose > n/2 Final
  // certificate this node actually holds: maybe_send_sync can only serve
  // rounds it can certify, and adopted blocks arrive certificate-free.
  if (top >= round_) {
    round_ = top;
    advance_round(ctx, top, /*failed=*/false);
  } else {
    try_adopt_pending(ctx);
  }
  return true;
}

void PrftNode::maybe_send_sync(net::Context& ctx, NodeId peer) {
  if (!latest_final_.has_value()) return;
  const auto [final_round, final_hash] = *latest_final_;
  if (sync_sent_.count({peer, final_round})) return;

  // Assemble a > n/2 Final certificate for the tip; without one the peer
  // could not distinguish this from a fabricated chain.
  const RoundState& rs = rounds_[final_round];
  const auto finals_it = rs.finals.find(final_hash);
  const std::uint32_t needed = cfg_.n / 2 + 1;
  if (finals_it == rs.finals.end() || finals_it->second.size() < needed) {
    return;  // certificate not assembled yet; a later VC will retry
  }

  SyncBody body;
  body.final_round = final_round;
  body.final_cert.phase = PhaseTag::kFinal;
  body.final_cert.round = final_round;
  body.final_cert.value = final_hash;
  for (const auto& [signer, sig] : finals_it->second) {
    body.final_cert.sigs.push_back(sig);
    if (body.final_cert.sigs.size() >= needed) break;
  }
  // Ship the entire finalized suffix above genesis. Simulated chains are
  // short; a production implementation would range-request from the peer's
  // reported height.
  for (std::uint64_t h = 1; h <= chain_.finalized_height(); ++h) {
    body.blocks.push_back(chain_.at(h));
  }
  if (body.blocks.empty() || body.blocks.back().hash() != final_hash) {
    return;  // our ledger lags our final bookkeeping; skip
  }

  sync_sent_.insert({peer, final_round});
  Writer w;
  body.encode(w);
  ctx.send(peer, encode_env(MsgType::kSync, final_round, w.take()));
}

void PrftNode::handle_sync(net::Context& ctx, const WireView& env) {
  Reader reader(env.body());
  const SyncBody body = SyncBody::decode(reader);
  if (body.blocks.empty()) return;
  const crypto::Hash256 tip = body.blocks.back().hash();
  const std::uint32_t needed = cfg_.n / 2 + 1;
  if (!verify_cert_cached(body.final_cert, PhaseTag::kFinal,
                          body.final_round, tip, needed)) {
    return;
  }
  // The blocks must form a chain ending in the certified tip.
  for (std::size_t i = 1; i < body.blocks.size(); ++i) {
    if (body.blocks[i].parent != body.blocks[i - 1].hash()) return;
  }

  for (const ledger::Block& b : body.blocks) {
    block_store_[b.hash()] = b;
  }

  // Splice the certified chain on top of the longest common prefix. The
  // local tentative suffix is preserved when the certified chain extends
  // it; only a genuinely divergent (and therefore honest-lock-free)
  // tentative suffix gets rolled back before retrying.
  bool adopted = false;
  for (int attempt = 0; attempt < 2; ++attempt) {
    for (const ledger::Block& b : body.blocks) {
      if (b.parent != chain_.tip_hash()) continue;  // dup or disconnected
      bool already = false;
      const crypto::Hash256 bh = b.hash();
      for (std::uint64_t h = 0; h <= chain_.height() && !already; ++h) {
        if (chain_.hash_at(h) == bh) already = true;
      }
      if (already) continue;
      if (!chain_.append_tentative(b)) break;
      mempool_.mark_included(b.txs);
      adopted = true;
    }
    if (chain_.tip_hash() == tip) break;
    if (attempt == 0 && chain_.height() > chain_.finalized_height()) {
      rollbacks_ += chain_.rollback_tentative();
      continue;
    }
    return;  // could not connect to the certified tip
  }
  if (chain_.tip_hash() != tip) return;
  chain_.finalize_up_to(chain_.height());
  if (adopted) {
    harness::trace_state(harness::TraceKind::kSyncAdopt, self_, round_,
                         kTraceProto, chain_.finalized_height(), 0,
                         static_cast<std::int64_t>(body.blocks.size()));
  }

  if (!latest_final_.has_value() || latest_final_->first < body.final_round) {
    latest_final_ = {body.final_round, tip};
  }
  if (adopted) {
    // Mark the synced rounds closed and move on if we were stuck behind.
    RoundState& rs = rounds_[body.final_round];
    if (!rs.finalized) {
      rs.finalized = true;
      rs.phase = Phase::kDone;
      rs.tentative = tip;
    }
    if (body.final_round >= round_) {
      const Round stuck = round_;
      round_ = body.final_round;
      (void)stuck;
      advance_round(ctx, round_, /*failed=*/false);
    } else {
      try_adopt_pending(ctx);
    }
  }
}

}  // namespace ratcon::prft
