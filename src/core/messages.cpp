#include "core/messages.hpp"

namespace ratcon::prft {

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kPropose: return "propose";
    case MsgType::kVote: return "vote";
    case MsgType::kCommit: return "commit";
    case MsgType::kReveal: return "reveal";
    case MsgType::kExpose: return "expose";
    case MsgType::kFinal: return "final";
    case MsgType::kViewChange: return "view-change";
    case MsgType::kCommitView: return "commit-view";
    case MsgType::kSync: return "sync";
  }
  return "?";
}

void ProposeBody::encode(Writer& w) const {
  block.encode(w);
  pro_sig.encode(w);
}

ProposeBody ProposeBody::decode(Reader& r) {
  ProposeBody b;
  b.block = ledger::Block::decode(r);
  b.pro_sig = PhaseSig::decode(r);
  return b;
}

void VoteBody::encode(Writer& w) const {
  w.raw(ByteSpan(h.data(), h.size()));
  leader_pro_sig.encode(w);
  vote_sig.encode(w);
}

VoteBody VoteBody::decode(Reader& r) {
  VoteBody b;
  r.raw_into(b.h.data(), b.h.size());
  b.leader_pro_sig = PhaseSig::decode(r);
  b.vote_sig = PhaseSig::decode(r);
  return b;
}

void CommitBody::encode(Writer& w) const {
  w.raw(ByteSpan(h.data(), h.size()));
  leader_pro_sig.encode(w);
  vote_cert.encode(w);
  commit_sig.encode(w);
}

CommitBody CommitBody::decode(Reader& r) {
  CommitBody b;
  r.raw_into(b.h.data(), b.h.size());
  b.leader_pro_sig = PhaseSig::decode(r);
  b.vote_cert = Certificate::decode(r);
  b.commit_sig = PhaseSig::decode(r);
  return b;
}

void CommitEvidence::encode(Writer& w) const {
  commit_sig.encode(w);
  vote_cert.encode(w);
}

CommitEvidence CommitEvidence::decode(Reader& r) {
  CommitEvidence e;
  e.commit_sig = PhaseSig::decode(r);
  e.vote_cert = Certificate::decode(r);
  return e;
}

void RevealBody::encode(Writer& w) const {
  w.raw(ByteSpan(h_tc.data(), h_tc.size()));
  w.raw(ByteSpan(h_l.data(), h_l.size()));
  w.u32(static_cast<std::uint32_t>(commits.size()));
  for (const CommitEvidence& e : commits) e.encode(w);
  reveal_sig.encode(w);
}

RevealBody RevealBody::decode(Reader& r) {
  RevealBody b;
  r.raw_into(b.h_tc.data(), b.h_tc.size());
  r.raw_into(b.h_l.data(), b.h_l.size());
  const std::uint32_t count = r.count(1u << 14);
  b.commits.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    b.commits.push_back(CommitEvidence::decode(r));
  }
  b.reveal_sig = PhaseSig::decode(r);
  return b;
}

void ExposeBody::encode(Writer& w) const {
  consensus::encode_fraud_set(w, proofs);
}

ExposeBody ExposeBody::decode(Reader& r) {
  ExposeBody b;
  b.proofs = consensus::decode_fraud_set(r);
  return b;
}

void FinalBody::encode(Writer& w) const {
  w.raw(ByteSpan(h.data(), h.size()));
  leader_pro_sig.encode(w);
  final_sig.encode(w);
}

FinalBody FinalBody::decode(Reader& r) {
  FinalBody b;
  r.raw_into(b.h.data(), b.h.size());
  b.leader_pro_sig = PhaseSig::decode(r);
  b.final_sig = PhaseSig::decode(r);
  return b;
}

void ViewChangeBody::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(stalled_phase));
  vc_sig.encode(w);
}

ViewChangeBody ViewChangeBody::decode(Reader& r) {
  ViewChangeBody b;
  b.stalled_phase = static_cast<PhaseTag>(r.u8());
  b.vc_sig = PhaseSig::decode(r);
  return b;
}

void CommitViewBody::encode(Writer& w) const {
  vc_cert.encode(w);
  cv_sig.encode(w);
}

CommitViewBody CommitViewBody::decode(Reader& r) {
  CommitViewBody b;
  b.vc_cert = Certificate::decode(r);
  b.cv_sig = PhaseSig::decode(r);
  return b;
}

void SyncBody::encode(Writer& w) const {
  w.u64(final_round);
  w.u32(static_cast<std::uint32_t>(blocks.size()));
  for (const ledger::Block& b : blocks) b.encode(w);
  final_cert.encode(w);
}

SyncBody SyncBody::decode(Reader& r) {
  SyncBody b;
  b.final_round = r.u64();
  const std::uint32_t count = r.count(1u << 16);
  b.blocks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    b.blocks.push_back(ledger::Block::decode(r));
  }
  b.final_cert = Certificate::decode(r);
  return b;
}

crypto::Hash256 vc_value(Round r) {
  Writer w;
  w.str("prft-view-change");
  w.u64(r);
  return crypto::sha256(ByteSpan(w.data().data(), w.data().size()));
}

}  // namespace ratcon::prft
