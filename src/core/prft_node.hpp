#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "consensus/behavior.hpp"
#include "consensus/envelope.hpp"
#include "consensus/replica.hpp"
#include "consensus/types.hpp"
#include "core/messages.hpp"
#include "ledger/deposits.hpp"

namespace ratcon::prft {

using consensus::Config;
using consensus::Envelope;
using consensus::FraudTracker;
using consensus::WireView;

/// The protocol-agnostic strategy hooks live in consensus::Behavior so the
/// same rational strategies (π_abs, π_pc, lazy-vote, free-ride) drive every
/// registered protocol; the historical prft::Behavior name is an alias.
using Behavior = consensus::Behavior;

/// pRFT replica (paper Figure 1 + §5.2 view change). One instance per
/// player; honest players use the default Behavior.
///
/// Implementation notes, mapped to the paper:
///  * Phases Propose → Vote → Commit → Reveal per round, with the leader
///    rotating round-robin. Quorum τ = n − t0 throughout, t0 = ⌈n/4⌉ − 1
///    in the pRFT threat model.
///  * Tentative consensus at commit-quorum; final consensus after a clean
///    Reveal phase (≥ n − t0 reveals and ≤ t0 double-signers), or on
///    > n/2 Final messages (at least one honest player finalized).
///  * The Reveal phase runs ConstructProof over accumulated commit
///    evidence; > t0 conflicting signers triggers Expose, which burns the
///    deposits of every player a valid ConflictPair convicts and advances
///    the round without finalizing (the tentative block rolls back).
///  * View change (§5.2): triggered by phase timeout, leader equivocation,
///    or > t0 conflicting signers. We count view-change messages per round
///    rather than per phase (honest players can time out in different
///    phases; counting per phase can deadlock — the certificate, which is
///    what Claim 2's consistency argument uses, is unchanged), and advance
///    on ≥ n − t0 commit-views rather than the paper's strict > n − t0
///    (with t = t0 silent Byzantine players only n − t0 players ever
///    speak, so a strict threshold cannot be met).
///  * Vote-phase timeouts go through view change rather than committing to
///    ⊥; §5.2 subsumes the ⊥ path and keeps one recovery mechanism.
class PrftNode : public consensus::IReplica {
 public:
  struct Deps {
    Config cfg;
    crypto::KeyRegistry* registry = nullptr;       ///< trusted setup (§3.3)
    crypto::KeyPair keys;                          ///< this player's keys
    ledger::DepositLedger* deposits = nullptr;     ///< shared collateral pool
    std::shared_ptr<Behavior> behavior;            ///< null = honest
  };

  explicit PrftNode(Deps deps);

  // -- IReplica --------------------------------------------------------------
  [[nodiscard]] const ledger::Chain& chain() const override { return chain_; }
  ledger::Mempool& mempool() override { return mempool_; }
  [[nodiscard]] bool is_honest() const override {
    return behavior_ == nullptr || behavior_->is_honest();
  }

  // -- INode -----------------------------------------------------------------
  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, const Bytes& data) override;
  void on_timer(net::Context& ctx, std::uint64_t timer_id) override;

  // -- Introspection (tests / benches) ---------------------------------------
  [[nodiscard]] Round current_round() const override { return round_; }
  [[nodiscard]] std::uint64_t view_changes() const { return view_changes_; }
  [[nodiscard]] std::uint64_t exposes_sent() const { return exposes_sent_; }
  [[nodiscard]] const FraudTracker& fraud() const { return fraud_; }
  [[nodiscard]] std::uint64_t rollbacks() const { return rollbacks_; }
  [[nodiscard]] NodeId id() const { return self_; }

  /// Stops initiating new work once this many blocks are final (the
  /// harness's run length). 0 = unlimited.
  void set_target_blocks(std::uint64_t target) { target_blocks_ = target; }

  /// Catch-up hook (src/sync): splice a verified finalized run onto the
  /// chain, close the adopted rounds and jump to the frontier.
  bool on_sync_adopt(net::Context& ctx,
                     const std::vector<ledger::Block>& blocks,
                     std::uint64_t first_height) override;

 protected:
  /// Per-round protocol phase (Figure 1's four phases plus terminal states).
  enum class Phase : std::uint8_t {
    kPropose,
    kVote,
    kCommit,
    kReveal,
    kViewChange,
    kDone,
  };

  struct RoundState {
    Phase phase = Phase::kPropose;
    bool started = false;

    std::optional<ledger::Block> proposal;
    crypto::Hash256 h_l{};
    PhaseSig leader_pro_sig;

    /// Valid proposals whose parent we did not know yet (pre-GST lag);
    /// retried after the chain catches up.
    std::map<crypto::Hash256, std::pair<ledger::Block, PhaseSig>>
        stale_proposals;

    /// Per-round double-sign detector: the D_i of Figure 1 line 26 is
    /// rebuilt from this round's observed statements only.
    FraudTracker fraud;

    bool voted = false;
    bool committed = false;
    bool revealed = false;
    bool final_sent = false;
    bool expose_sent = false;

    // votes[h][signer], commits[h][signer]
    std::map<crypto::Hash256, std::map<NodeId, PhaseSig>> votes;
    std::map<crypto::Hash256, std::map<NodeId, CommitEvidence>> commits;

    // M_i: distinct reveal senders per value (their evidence already fed to
    // the fraud tracker on receipt).
    std::map<crypto::Hash256, std::set<NodeId>> reveals;

    // F_i: Final signatures per value (kept whole so a > n/2 certificate
    // can be assembled for state transfer).
    std::map<crypto::Hash256, std::map<NodeId, PhaseSig>> finals;

    std::optional<crypto::Hash256> tentative;  ///< h_tc if tentative reached
    bool tentative_appended = false;
    bool finalized = false;

    // View change bookkeeping.
    bool vc_sent = false;
    bool cv_sent = false;
    std::map<NodeId, PhaseSig> vc_sigs;
    std::set<NodeId> cv_senders;
    std::optional<Certificate> vc_cert;
  };

  // Extension points for Byzantine/rational subclasses (src/adversary).
  virtual void do_propose(net::Context& ctx, Round r, RoundState& rs);
  virtual void do_vote(net::Context& ctx, Round r, RoundState& rs);
  virtual void do_commit(net::Context& ctx, Round r, RoundState& rs,
                         const crypto::Hash256& h);
  virtual void do_reveal(net::Context& ctx, Round r, RoundState& rs,
                         const crypto::Hash256& h);

  // Honest building blocks available to subclasses.
  [[nodiscard]] ledger::Block build_block(net::Context& ctx) const;
  [[nodiscard]] Bytes make_propose(Round r, const ledger::Block& block);
  [[nodiscard]] Bytes make_vote(Round r, const crypto::Hash256& h,
                                const PhaseSig& pro_sig);
  [[nodiscard]] Bytes make_commit(Round r, const crypto::Hash256& h,
                                  const RoundState& rs);
  [[nodiscard]] Bytes make_reveal(Round r, const crypto::Hash256& h,
                                  const RoundState& rs);
  void send_to(net::Context& ctx, const std::set<NodeId>& targets,
               const Bytes& wire);

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const crypto::KeyPair& keys() const { return keys_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return *registry_; }
  [[nodiscard]] RoundState& round_state(Round r) { return rounds_[r]; }
  [[nodiscard]] bool participating(Round r, PhaseTag phase) const;
  [[nodiscard]] Bytes encode_env(MsgType type, Round r, Bytes body) const;

  /// Signs (proto, phase, round, value) with this node's key.
  [[nodiscard]] PhaseSig phase_sig(PhaseTag phase, Round r,
                                   const crypto::Hash256& value) const;

 private:
  static constexpr std::uint64_t kPhaseTimer = 1;

  // Message handlers (post envelope verification). They receive a borrowed
  // zero-copy view over the wire buffer; anything a handler keeps beyond
  // the call decodes into owning body structs, never the view itself.
  void handle_propose(net::Context& ctx, const WireView& env);
  void handle_vote(net::Context& ctx, const WireView& env);
  void handle_commit(net::Context& ctx, const WireView& env);
  void handle_reveal(net::Context& ctx, const WireView& env);
  void handle_expose(net::Context& ctx, const WireView& env);
  void handle_final(net::Context& ctx, const WireView& env);
  void handle_view_change(net::Context& ctx, const WireView& env);
  void handle_commit_view(net::Context& ctx, const WireView& env);

  void start_round(net::Context& ctx);
  void enter_phase(net::Context& ctx, RoundState& rs, Phase phase);
  void check_vote_quorum(net::Context& ctx, Round r, RoundState& rs);
  void check_commit_quorum(net::Context& ctx, Round r, RoundState& rs);
  void check_reveal_progress(net::Context& ctx, Round r, RoundState& rs);
  void check_final_quorum(net::Context& ctx, Round r, RoundState& rs);
  void maybe_expose(net::Context& ctx, Round r, RoundState& rs);
  /// `cert` is the size of the justifying quorum (reveal or Final
  /// certificate), recorded with the finalize trace event.
  void finalize_round(net::Context& ctx, Round r, RoundState& rs,
                      const crypto::Hash256& h, std::int64_t cert);
  void trigger_view_change(net::Context& ctx, Round r, PhaseTag phase);
  void check_vc_quorum(net::Context& ctx, Round r, RoundState& rs);
  void advance_round(net::Context& ctx, Round r, bool failed);
  void burn_guilty(const consensus::FraudSet& proofs);
  void on_conflict(const std::optional<consensus::ConflictPair>& cp);
  void try_adopt_pending(net::Context& ctx);
  bool adopt_block(const crypto::Hash256& h);
  void retry_stale_proposals(net::Context& ctx);
  void abort_round(net::Context& ctx, Round r, RoundState& rs);
  bool verify_cert_cached(const Certificate& cert, PhaseTag phase, Round r,
                          const crypto::Hash256& value,
                          std::uint32_t min_sigs);
  void dispatch(net::Context& ctx, const WireView& env);
  void maybe_send_sync(net::Context& ctx, NodeId peer);
  void handle_sync(net::Context& ctx, const WireView& env);

  /// Signature verification with memoization (certificates repeat the same
  /// signatures across many messages).
  bool verify_cached(PhaseTag phase, Round r, const crypto::Hash256& value,
                     const PhaseSig& ps);

  [[nodiscard]] SimTime phase_timeout() const;
  void broadcast_env(net::Context& ctx, MsgType type, Round r, Bytes body);

  Config cfg_;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  ledger::DepositLedger* deposits_;
  std::shared_ptr<Behavior> behavior_;

  NodeId self_ = kNoNode;
  bool self_known_ = false;

  Round round_ = 1;  ///< genesis occupies round 0
  std::map<Round, RoundState> rounds_;
  std::map<crypto::Hash256, ledger::Block> block_store_;
  // Messages for rounds we have not entered yet, replayed on entry. Stored
  // as raw wire bytes that already passed signature verification on
  // arrival — the replay re-parses the fixed-offset header (cheap) and
  // dispatches directly, skipping the signature check (the bytes are
  // immutable while buffered, so the verification still stands).
  std::map<Round, std::vector<Bytes>> future_;
  // Rounds whose block reached final consensus but could not be adopted yet
  // (missing parent / stale local state): value = block hash.
  std::map<Round, crypto::Hash256> pending_adopt_;

  ledger::Chain chain_;
  ledger::Mempool mempool_;
  FraudTracker fraud_;

  /// Latest round whose block this node finalized (for state transfer).
  std::optional<std::pair<Round, crypto::Hash256>> latest_final_;
  /// Sync replies already sent, rate-limited per (peer, final round).
  std::set<std::pair<NodeId, Round>> sync_sent_;

  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t view_changes_ = 0;
  std::uint64_t exposes_sent_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t target_blocks_ = 0;
  bool stopped_ = false;

  // Verified-signature memo: (signer, phase, round, value-prefix, sig-prefix).
  std::set<std::tuple<NodeId, std::uint8_t, Round, std::uint64_t,
                      std::uint64_t>>
      verified_;
};

}  // namespace ratcon::prft
