#pragma once

#include <vector>

#include "consensus/fraud.hpp"
#include "consensus/phase_sig.hpp"
#include "ledger/block.hpp"

namespace ratcon::prft {

using consensus::Certificate;
using consensus::FraudSet;
using consensus::PhaseSig;
using consensus::PhaseTag;
using consensus::ProtoId;

/// The 8 pRFT message types (paper Figure 2b) plus Sync, a state-transfer
/// message sent alongside view-change catch-up replies (see SyncBody).
enum class MsgType : std::uint8_t {
  kPropose = 0,
  kVote = 1,
  kCommit = 2,
  kReveal = 3,
  kExpose = 4,
  kFinal = 5,
  kViewChange = 6,
  kCommitView = 7,
  kSync = 8,
};

const char* to_string(MsgType t);

/// ⟨Propose, B_l, h_l, r⟩, s_pro_l — the leader's block proposal. The
/// detachable propose phase-signature s_pro_l travels inside subsequent
/// messages (votes, commits) as the paper specifies.
struct ProposeBody {
  ledger::Block block;
  PhaseSig pro_sig;  ///< leader's signature over (Propose, r, h_l)

  void encode(Writer& w) const;
  static ProposeBody decode(Reader& r);
};

/// ⟨Vote, h, s_pro_l, r⟩, s_vote_i.
struct VoteBody {
  crypto::Hash256 h{};
  PhaseSig leader_pro_sig;
  PhaseSig vote_sig;  ///< sender's signature over (Vote, r, h)

  void encode(Writer& w) const;
  static VoteBody decode(Reader& r);
};

/// ⟨Commit, h*, s_pro_l, V_i, r⟩, s_com_i where V_i is the >= n − t0 vote
/// certificate on h*.
struct CommitBody {
  crypto::Hash256 h{};
  PhaseSig leader_pro_sig;
  Certificate vote_cert;  ///< V_i: quorum of vote signatures on h
  PhaseSig commit_sig;    ///< sender's signature over (Commit, r, h)

  void encode(Writer& w) const;
  static CommitBody decode(Reader& r);
};

/// One commit message's evidence as carried inside a Reveal: the commit
/// signature plus the vote certificate that backed it. Carrying the full
/// vote certificate is what makes Reveal messages O(κ·n) · n = O(κ·n²) and
/// the round's total bits O(κ·n⁴) — the size column of Figure 3.
struct CommitEvidence {
  PhaseSig commit_sig;
  Certificate vote_cert;

  void encode(Writer& w) const;
  static CommitEvidence decode(Reader& r);
};

/// ⟨Reveal, h_tc, h_l, W_i, r⟩, s_rev_i where W_i is the set of >= n − t0
/// commit messages (Proof-of-Commitment) on the tentatively agreed h_tc.
struct RevealBody {
  crypto::Hash256 h_tc{};
  crypto::Hash256 h_l{};
  std::vector<CommitEvidence> commits;  ///< W_i
  PhaseSig reveal_sig;                  ///< sender's sig over (Reveal, r, h_tc)

  void encode(Writer& w) const;
  static RevealBody decode(Reader& r);
};

/// ⟨Expose, D_i, r⟩, s_exp_i — a Proof-of-Fraud set with > t0 distinct
/// guilty players (Figure 1 line 31).
struct ExposeBody {
  FraudSet proofs;

  void encode(Writer& w) const;
  static ExposeBody decode(Reader& r);
};

/// ⟨Final, h_l, s_pro_l⟩, s_fin_i.
struct FinalBody {
  crypto::Hash256 h{};
  PhaseSig leader_pro_sig;
  PhaseSig final_sig;  ///< sender's sig over (Final, r, h)

  void encode(Writer& w) const;
  static FinalBody decode(Reader& r);
};

/// ⟨ViewChange, Phase, r⟩, s_vc_i.
struct ViewChangeBody {
  PhaseTag stalled_phase = PhaseTag::kPropose;
  PhaseSig vc_sig;  ///< sender's sig over (ViewChange, r, vc_value(r))

  void encode(Writer& w) const;
  static ViewChangeBody decode(Reader& r);
};

/// ⟨CommitView, V_i, r⟩, s_cv_i where V_i is the >= n − t0 view-change
/// certificate for round r.
struct CommitViewBody {
  Certificate vc_cert;
  PhaseSig cv_sig;  ///< sender's sig over (CommitView, r, vc_value(r))

  void encode(Writer& w) const;
  static CommitViewBody decode(Reader& r);
};

/// State transfer: the sender's finalized chain suffix plus a Final
/// certificate (> n/2 final signatures, so at least one honest finalizer)
/// for its tip. Sent in reply to ViewChange messages from players that
/// lag — the paper's >n/2-Final catch-up rule cannot reach a player that a
/// targeted-message adversary cut out of a round entirely, so protocol
/// state transfer (as in pBFT checkpoints) restores (t,k)-eventual
/// liveness. Receivers verify the certificate before adopting anything.
struct SyncBody {
  Round final_round = 0;                ///< round of the certified tip
  std::vector<ledger::Block> blocks;    ///< chain suffix, oldest first
  Certificate final_cert;               ///< > n/2 Final sigs on blocks.back()

  void encode(Writer& w) const;
  static SyncBody decode(Reader& r);
};

/// Canonical value signed in view-change / commit-view messages for round
/// `r` (domain-separated so it can never collide with a block hash).
crypto::Hash256 vc_value(Round r);

}  // namespace ratcon::prft
