#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "consensus/behavior.hpp"
#include "rational/catalog.hpp"

namespace ratcon::search {

/// StrategySpace: the parameterized generalization of the StrategyCatalog
/// the adaptive equilibrium search (driver.hpp) operates over. Where the
/// catalog maps the paper's *named* pure strategies to behavior, the space
/// additionally spans
///   * mixed strategies — per-round randomized choice over pure behaviors,
///     sampled from a deterministic per-player RNG substream
///     (Rng::fork(label)) so serial and parallel sweeps are byte-identical
///     — and
///   * parametric adversary strategies — the src/adversary knob surface
///     (equivocation timing on fork plans, targeted-delay schedules,
///     censor-set selection) exposed as searchable coordinates.
/// The space is growable: the best-response loop starts from {π₀} and adds
/// every profitable deviation it discovers.

/// Searchable coordinates over the adversary knob surface. Open-ended
/// windows use ratcon::kRoundNever (common/ids.hpp).
struct AdversaryKnobs {
  /// Equivocation timing (π_ds fork plans): when `equivocate` is set, the
  /// player joins a double-signing coalition whose fork plan attacks only
  /// coalition-led rounds inside [equivocate_from, equivocate_until).
  bool equivocate = false;
  Round equivocate_from = 0;
  Round equivocate_until = kRoundNever;

  /// Targeted-delay schedule: withhold own phase messages during rounds
  /// [delay_from, delay_until) whose leader is in `delay_targets` (empty
  /// set = every leader). Withholding is the strongest delay an
  /// in-protocol deviator can apply to its own traffic, and — like π_abs —
  /// it is crash-indistinguishable, hence unpenalizable.
  std::set<NodeId> delay_targets;
  Round delay_from = 0;
  Round delay_until = 0;

  /// Censor-set selection: tx ids filtered out of own proposals when
  /// leading (the censorship half of π_pc, without the abstention half).
  std::set<std::uint64_t> censor_txs;

  /// Whether any knob departs from honest play.
  [[nodiscard]] bool deviates() const;

  /// "ds[0,inf) delay[2,6)@{1,3} censor{7}" — empty knobs label "honest".
  [[nodiscard]] std::string label() const;
};

/// One searchable strategy: a pure catalog strategy, a mixed strategy, or
/// a parametric adversary strategy.
struct StrategyVariant {
  enum class Kind : std::uint8_t { kPure = 0, kMixed = 1, kParam = 2 };

  Kind kind = Kind::kPure;
  game::Strategy pure = game::Strategy::kHonest;
  /// kMixed: (pure strategy, weight) support. Weights must be
  /// non-negative with a positive sum; π_ds cannot appear (it needs a
  /// node subclass, not a per-round behavior choice).
  std::vector<std::pair<game::Strategy, double>> mixture;
  /// kParam coordinates.
  AdversaryKnobs knobs;

  [[nodiscard]] static StrategyVariant honest();
  [[nodiscard]] static StrategyVariant of(game::Strategy s);
  [[nodiscard]] static StrategyVariant mixed(
      std::vector<std::pair<game::Strategy, double>> parts);
  [[nodiscard]] static StrategyVariant param(AdversaryKnobs knobs);

  /// Pure π₀ (and π_bait, whose implementation is the honest machine) or
  /// knob-free parametric variants count as honest.
  [[nodiscard]] bool is_honest() const;

  /// Structural equality on the executable coordinates (exact weights and
  /// knob fields — labels round for display and may alias).
  [[nodiscard]] bool same_as(const StrategyVariant& other) const;

  /// Whether the catalog/adversary machinery can execute this variant
  /// under `proto` (mirrors rational::strategy_supported; equivocating
  /// variants need the fork-plan substrate).
  [[nodiscard]] bool supported(harness::Protocol proto) const;

  /// "pi_abs", "mix(pi_0:0.50,pi_abs:0.50)", "knobs(delay[2,6)@any)".
  [[nodiscard]] std::string label() const;
};

/// The growable, label-deduplicated strategy pool. Index 0 is always π₀.
class StrategySpace {
 public:
  StrategySpace();

  /// Appends `v` (or finds a structurally identical existing variant —
  /// labels round weights for display, so dedup compares the executable
  /// coordinates, not the label); returns its index.
  int add(StrategyVariant v);

  /// Index of the first variant labeled `label`, or -1.
  [[nodiscard]] int find(const std::string& label) const;

  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] const StrategyVariant& at(int index) const;

  [[nodiscard]] int size() const {
    return static_cast<int>(variants_.size());
  }
  [[nodiscard]] const std::vector<StrategyVariant>& variants() const {
    return variants_;
  }

 private:
  std::vector<StrategyVariant> variants_;
};

/// MixedBehavior: per-round randomized choice over pure behaviors. The
/// choice for round r is a pure function of (stream, r) — computed from a
/// labeled RNG substream, never from call order — so a mixed player's
/// whole trajectory is reproducible from the scenario seed alone,
/// identical under serial and parallel sweeps.
class MixedBehavior final : public consensus::Behavior {
 public:
  struct Component {
    game::Strategy strategy = game::Strategy::kHonest;
    double weight = 0.0;
    /// nullptr = the honest machine (π₀ / π_bait).
    std::shared_ptr<consensus::Behavior> behavior;
  };

  /// `stream` is the player's substream, conventionally
  /// `Rng(seed).fork("mixed/P<id>")`. Throws std::invalid_argument on an
  /// empty support, negative weights or an all-zero total.
  MixedBehavior(std::vector<Component> parts, Rng stream);

  [[nodiscard]] bool is_honest() const override;
  bool participate(Round r, NodeId leader,
                   consensus::PhaseTag phase) override;
  bool censor_tx(const ledger::Transaction& tx) override;
  [[nodiscard]] bool expose_fraud() const override;

  /// Index of the component sampled for round `r`.
  [[nodiscard]] std::size_t choice(Round r) const;

 private:
  std::vector<Component> parts_;
  double total_weight_ = 0.0;
  Rng stream_;
  /// Round the next censor_tx query applies to (leaders consult
  /// participate before building the block).
  Round current_round_ = 0;
};

/// ParamBehavior: the behavior-expressible half of AdversaryKnobs — the
/// targeted-delay schedule and the censor set. (Equivocation timing rides
/// the fork-plan node factories instead; see apply_assignment.)
class ParamBehavior final : public consensus::Behavior {
 public:
  explicit ParamBehavior(AdversaryKnobs knobs) : knobs_(std::move(knobs)) {}

  [[nodiscard]] bool is_honest() const override {
    return !knobs_.deviates();
  }
  bool participate(Round r, NodeId leader, consensus::PhaseTag) override {
    if (r < knobs_.delay_from || r >= knobs_.delay_until) return true;
    return !knobs_.delay_targets.empty() &&
           knobs_.delay_targets.count(leader) == 0;
  }
  bool censor_tx(const ledger::Transaction& tx) override {
    return knobs_.censor_txs.count(tx.id) > 0;
  }
  [[nodiscard]] bool expose_fraud() const override {
    return !knobs_.deviates();
  }

 private:
  AdversaryKnobs knobs_;
};

/// Builds the Behavior executing `v` for player `id` (nullptr for honest
/// variants — the honest machine is the implementation). `base` supplies
/// the shared context pure components need (censored txs, coalition
/// override); `seed` is the scenario seed the mixed-strategy substream is
/// forked from. Throws std::invalid_argument for variants that need a
/// node subclass (pure π_ds, equivocating knobs) — those are wired by
/// apply_assignment's fork-plan factories.
[[nodiscard]] std::shared_ptr<consensus::Behavior> make_variant_behavior(
    const StrategyVariant& v, NodeId id, const rational::ProfileSpec& base,
    std::uint64_t seed);

/// Applies a (player → variant index) assignment onto `spec` — the
/// StrategySpace generalization of rational::apply_profile: behavior
/// hooks for pure/mixed/parametric variants, one shared fork plan (with
/// the knobs' equivocation-timing window) for double-signing players.
/// Requires `spec.protocol`, `spec.committee.n` and `spec.seed` final.
/// Throws std::invalid_argument on out-of-committee players, unsupported
/// variants, or equivocating players with conflicting timing windows.
void apply_assignment(harness::ScenarioSpec& spec, const StrategySpace& space,
                      const std::map<NodeId, int>& assignment,
                      const rational::ProfileSpec& base);

}  // namespace ratcon::search
