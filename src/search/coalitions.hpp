#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace ratcon::search {

/// CoalitionEnumerator: bounded enumeration of the coalitions the
/// best-response search quantifies over, with symmetry reduction.
///
/// Theorems 1–3 are statements about coalitions, not single deviators —
/// the impossibility band is ⌈n/3⌉ ≤ k+t ≤ ⌈n/2⌉−1 (theorem_band), while
/// pRFT's robustness claims live below it. The full C(n,k) cross-product
/// explodes fast; two observations shrink it:
///
///  * Leadership rotates r % n and the network models are node-symmetric,
///    so rotating a coalition relabels rounds without changing the attack
///    geometry. Enumerating one representative per rotation class (the
///    lexicographically minimal rotation) covers every distinct geometry
///    at ~1/n of the cost — exact for seed-averaged symmetric utilities,
///    a standard EGTA-style reduction otherwise.
///  * The search needs coalitions only up to k = ⌈n/4⌉ (one past pRFT's
///    design bound t₀ = ⌈n/4⌉−1): smaller coalitions are covered on the
///    way, larger ones are already inside the impossibility band.
struct CoalitionSpec {
  std::uint32_t n = 8;
  std::uint32_t k_min = 1;
  /// 0 = ⌈n/4⌉.
  std::uint32_t k_max = 0;
  bool symmetry_reduce = true;
  /// 0 = unlimited; otherwise only the first `limit` coalitions in
  /// enumeration order are returned (a deterministic truncation for
  /// budgeted sweeps — callers should log when it bites).
  std::size_t limit = 0;

  [[nodiscard]] std::uint32_t effective_k_max() const;
};

/// A coalition: sorted member ids.
using Coalition = std::vector<NodeId>;

/// True when `c` (sorted, members < n) is the lexicographically minimal
/// rotation of its class — the canonical representative kept by the
/// symmetry reduction.
[[nodiscard]] bool rotation_canonical(const Coalition& c, std::uint32_t n);

/// All coalitions of size k_min..k_max, smallest size first and
/// lexicographic within a size; symmetry-reduced and truncated per the
/// spec. Throws std::invalid_argument on n = 0 or k_min = 0.
[[nodiscard]] std::vector<Coalition> enumerate_coalitions(
    const CoalitionSpec& spec);

/// The Theorems 1–2 impossibility band on the coalition size k+t:
/// [⌈n/3⌉, ⌈n/2⌉−1] (empty when hi < lo, i.e. tiny committees).
struct CoalitionBand {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  [[nodiscard]] bool contains(std::uint32_t k) const {
    return k >= lo && k <= hi;
  }
};
[[nodiscard]] CoalitionBand theorem_band(std::uint32_t n);

/// C(n, k), saturating at UINT64_MAX — used to report how many cells the
/// symmetry reduction saved.
[[nodiscard]] std::uint64_t choose(std::uint64_t n, std::uint64_t k);

}  // namespace ratcon::search
