#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "game/normal_form.hpp"
#include "rational/payoff.hpp"
#include "search/coalitions.hpp"
#include "search/strategy_space.hpp"

namespace ratcon::search {

/// BestResponseDriver: the adaptive equilibrium-search loop on top of the
/// empirical game engine (src/rational). Where the DeviationExplorer
/// evaluates a *fixed* strategy catalog, the driver runs iterated
/// coalition best-response / double-oracle dynamics over a *growing*
/// StrategySpace:
///
///   1. start from the all-π₀ profile over a space containing only π₀;
///   2. for every canonical coalition (CoalitionEnumerator) × candidate
///      variant (pure, mixed and parametric adversary strategies),
///      evaluate the joint deviation empirically — real Simulation runs,
///      PayoffAccountant utilities, seed/net-averaged, in parallel via
///      harness::parallel_cells;
///   3. adopt the most profitable deviation (gain > ε) into the space and
///      move the current profile there, then iterate best responses from
///      the *deviated* profile;
///   4. stop with an ε-equilibrium certificate for the final profile (no
///      coalition deviation in the pool gains > ε) or when the evaluation
///      budget runs out.
///
/// This is the layer that *finds* π_abs / π_pc / π_fork without being
/// told about them: Theorems 1–3 fall out as search outcomes (the loop
/// discovers the liveness/censorship coalitions against fragile quorum
/// regimes) while pRFT's Lemma 4 shows up as a certificate (honest play
/// survives the same search).

/// Hard evaluation budget: one evaluation = one seeded Simulation run.
struct SearchBudget {
  std::size_t max_evaluations = 4096;
  std::uint32_t max_iterations = 8;
};

struct SearchSpec {
  harness::Protocol protocol = harness::Protocol::kPrft;
  std::uint32_t n = 8;
  std::vector<harness::NetKind> nets{harness::NetKind::kSynchronous};
  /// Utilities are averaged over these seeds; every run is deterministic,
  /// so the whole search is a pure function of the spec.
  std::vector<std::uint64_t> seeds{1, 2, 3};

  /// Every player's type θ (the search is symmetric: any player may join
  /// a coalition, so all of them are modeled at the same type).
  game::Theta theta = 3;
  /// Utility accounting (α, L, δ, message costs, censorship probe).
  rational::PayoffParams payoff;
  /// Fixed environment context: censored-tx set and coalition override
  /// shared by deviating strategies (rational::ProfileSpec semantics).
  rational::ProfileSpec base;
  /// A deviation must beat the current profile by more than ε.
  double epsilon = 0.05;

  /// Coalition enumeration (spec.n is copied in when the field is 0).
  CoalitionSpec coalitions;
  /// Candidate deviations the oracle draws from; empty = the default pool
  /// for the protocol (default_candidate_pool). π₀ — "return to honesty" —
  /// is always considered in addition.
  std::vector<StrategyVariant> candidate_pool;
  SearchBudget budget;

  // Scenario knobs per run (ExplorerSpec's surface).
  std::uint64_t target_blocks = 3;
  std::uint64_t workload_txs = 6;
  SimTime delta = msec(10);
  SimTime gst = msec(200);
  double hold_probability = 0.9;
  SimTime horizon = sec(60);
  bool sync_enabled = true;

  /// Worker threads (harness::parallel_cells); results are identical
  /// serial or parallel. 0 = hardware concurrency, 1 = serial.
  std::uint32_t workers = 0;

  /// The ScenarioSpec one (net, seed, assignment) run executes.
  [[nodiscard]] harness::ScenarioSpec to_scenario(
      harness::NetKind net, std::uint64_t seed, const StrategySpace& space,
      const std::map<NodeId, int>& assignment) const;
};

/// The default candidate oracle for a protocol: the catalog's executable
/// pure strategies, a 50/50 honest mixture of the abstention and
/// censorship families, and parametric variants spanning the adversary
/// knobs (a targeted-delay window, a censor-only knob over `censored`,
/// and — where the fork substrate exists — a timed equivocation window).
[[nodiscard]] std::vector<StrategyVariant> default_candidate_pool(
    harness::Protocol proto, const std::set<std::uint64_t>& censored);

/// One profitable coalition deviation the loop discovered and adopted.
struct DiscoveredDeviation {
  std::uint32_t iteration = 0;
  Coalition coalition;
  int variant = -1;    ///< index into SearchResult::space
  std::string label;   ///< the variant's label
  double gain = 0.0;   ///< mean per-member gain vs the profile deviated from
};

/// Result of one adaptive search.
struct SearchResult {
  harness::Protocol protocol{};
  std::uint32_t n = 0;
  game::Theta theta = 0;

  /// π₀ plus every adopted deviation, in adoption order.
  StrategySpace space;
  /// Non-honest slots of the profile the search converged to.
  std::map<NodeId, int> final_profile;
  std::vector<DiscoveredDeviation> discovered;

  /// ε-equilibrium certificate: the final profile survived one full
  /// coalition × candidate sweep with no deviation gaining > ε.
  bool equilibrium_certified = false;
  /// The evaluation budget ran out before the sweep finished — the
  /// certificate (if any) is void and the summary says so.
  bool budget_exhausted = false;

  /// The empirical game grown by the search: one modeled coalition player
  /// (`game_coalition`, acting jointly) whose strategies are the final
  /// space's variants; payoffs are net/seed-averaged mean member
  /// utilities against an otherwise-honest committee. Strategy 0 is the
  /// honest baseline row.
  game::NormalFormGame game{std::vector<int>{1}};
  Coalition game_coalition;

  /// Profiler totals merged over every simulation run the search spent
  /// (snapshot taken after each run's payoff accounting). Event counts are
  /// deterministic for a fixed spec; timer sums vary with the host.
  harness::ProfReport profile;

  std::size_t coalitions_examined = 0;
  std::uint64_t unreduced_coalitions = 0;
  std::size_t candidate_count = 0;
  std::size_t evaluations = 0;   ///< simulation runs spent
  std::uint32_t iterations = 0;
  double wall_ms = 0.0;
  SearchBudget budget;

  /// Per-iteration table plus the budget line
  /// ("evaluations 124/4096, 3 iterations, certified").
  [[nodiscard]] std::string summary() const;
};

/// Runs the search. Throws std::invalid_argument on empty nets/seeds, an
/// unsupported candidate pool, or a base profile the protocol cannot
/// execute.
[[nodiscard]] SearchResult search(const SearchSpec& spec);

}  // namespace ratcon::search
