#include "search/driver.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "harness/matrix.hpp"
#include "harness/protocols.hpp"
#include "harness/table.hpp"

namespace ratcon::search {

using game::Strategy;
using harness::NetKind;
using harness::Protocol;
using harness::ScenarioSpec;
using harness::Simulation;

harness::ScenarioSpec SearchSpec::to_scenario(
    NetKind net, std::uint64_t seed, const StrategySpace& space,
    const std::map<NodeId, int>& assignment) const {
  ScenarioSpec scenario;
  scenario.protocol = protocol;
  scenario.seed = seed;
  scenario.committee.n = n;
  scenario.net.kind = net;
  scenario.net.delta = delta;
  scenario.net.gst = gst;
  scenario.net.hold_probability = hold_probability;
  scenario.workload.txs = workload_txs;
  scenario.workload.start = msec(1);
  scenario.workload.interval = msec(2);
  scenario.budget.target_blocks = target_blocks;
  scenario.budget.horizon = horizon;
  scenario.sync_plan.enabled = sync_enabled;
  rational::apply_profile(scenario, base);
  apply_assignment(scenario, space, assignment, base);
  return scenario;
}

std::vector<StrategyVariant> default_candidate_pool(
    Protocol proto, const std::set<std::uint64_t>& censored) {
  std::vector<StrategyVariant> pool;
  // The catalog's executable pure strategies (π₀ is implicit).
  for (const Strategy s : {Strategy::kAbstain, Strategy::kPartialCensor,
                           Strategy::kLazyVote, Strategy::kFreeRide,
                           Strategy::kDoubleSign}) {
    if (rational::strategy_supported(proto, s)) {
      pool.push_back(StrategyVariant::of(s));
    }
  }
  // Mixed strategies: half-honest mixtures of the abstention and
  // censorship families — the randomized deviations a fixed catalog
  // never covers.
  pool.push_back(StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kAbstain, 0.5}}));
  pool.push_back(StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kPartialCensor, 0.5}}));
  // Parametric adversary knobs: a targeted-delay window …
  {
    AdversaryKnobs delay;
    delay.delay_from = 2;
    delay.delay_until = 6;
    pool.push_back(StrategyVariant::param(delay));
  }
  // … censor-set selection without the abstention half of π_pc …
  if (!censored.empty()) {
    AdversaryKnobs censor;
    censor.censor_txs = censored;
    pool.push_back(StrategyVariant::param(censor));
  }
  // … and a timed equivocation window where the fork substrate exists.
  if (rational::strategy_supported(proto, Strategy::kDoubleSign)) {
    AdversaryKnobs equiv;
    equiv.equivocate = true;
    equiv.equivocate_from = 1;
    equiv.equivocate_until = 5;
    pool.push_back(StrategyVariant::param(equiv));
  }
  return pool;
}

namespace {

/// Mean per-player utilities for a batch of assignments: one seeded
/// Simulation per (assignment, net, seed), in parallel, reduced to
/// per-assignment seed/net means. Slot addresses are position-stable, so
/// a parallel sweep fills exactly what a serial one does.
std::vector<std::vector<double>> evaluate_assignments(
    const SearchSpec& spec, const StrategySpace& space,
    const std::vector<std::map<NodeId, int>>& assignments,
    const rational::PayoffAccountant& accountant,
    harness::ProfReport* profile_out) {
  const std::size_t runs_per = spec.nets.size() * spec.seeds.size();
  const std::size_t total = assignments.size() * runs_per;
  std::vector<std::vector<double>> per_run(
      total, std::vector<double>(spec.n, 0.0));
  std::mutex profile_mu;
  harness::parallel_cells(total, spec.workers, [&](std::size_t run) {
    const std::size_t a = run / runs_per;
    const std::size_t in_a = run % runs_per;
    const NetKind net = spec.nets[in_a / spec.seeds.size()];
    const std::uint64_t seed = spec.seeds[in_a % spec.seeds.size()];
    Simulation sim(spec.to_scenario(net, seed, space, assignments[a]));
    (void)sim.run_to_completion();
    const rational::PayoffReport report = accountant.account(sim);
    for (NodeId id = 0; id < spec.n; ++id) {
      per_run[run][id] = report.of(id).utility;
    }
    if (profile_out != nullptr) {
      // Snapshot after the payoff accounting so the run's whole profile is
      // captured; counts merge exactly regardless of worker interleaving.
      const harness::ProfReport snap = harness::Profiler::Get().snapshot();
      const std::lock_guard<std::mutex> lock(profile_mu);
      profile_out->merge(snap);
    }
  });
  std::vector<std::vector<double>> means(
      assignments.size(), std::vector<double>(spec.n, 0.0));
  for (std::size_t a = 0; a < assignments.size(); ++a) {
    for (std::size_t r = 0; r < runs_per; ++r) {
      for (NodeId id = 0; id < spec.n; ++id) {
        means[a][id] += per_run[a * runs_per + r][id];
      }
    }
    for (NodeId id = 0; id < spec.n; ++id) {
      means[a][id] /= static_cast<double>(runs_per);
    }
  }
  return means;
}

std::string profile_label(const StrategySpace& space,
                          const std::map<NodeId, int>& assignment) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [id, index] : assignment) {
    if (space.at(index).is_honest()) continue;
    if (!first) os << " ";
    first = false;
    os << "P" << id << ":" << space.at(index).label();
  }
  return first ? "all-honest" : os.str();
}

std::string coalition_label(const Coalition& c) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << ",";
    os << c[i];
  }
  os << "}";
  return os.str();
}

}  // namespace

std::string SearchResult::summary() const {
  std::ostringstream os;
  os << "search: " << to_string(protocol) << " n=" << n
     << " theta=" << theta << "\n";
  harness::Table t({"iter", "coalition", "adopted deviation", "gain"});
  for (const DiscoveredDeviation& d : discovered) {
    t.add_row({std::to_string(d.iteration), coalition_label(d.coalition),
               d.label, harness::fmt(d.gain, 3)});
  }
  if (discovered.empty()) {
    t.add_row({"-", "-", "none (no deviation gained > eps)", "-"});
  }
  os << t.render() << "\n";
  os << "  coalitions: " << coalitions_examined << " canonical (of "
     << unreduced_coalitions << " unreduced), candidates: "
     << candidate_count << ", strategy space grew to " << space.size()
     << "\n";
  os << "  budget: " << evaluations << "/" << budget.max_evaluations
     << " evaluations, " << iterations << "/" << budget.max_iterations
     << " iterations, " << harness::fmt(wall_ms, 1) << " ms\n";
  os << "\n" << profile.format() << "\n";
  if (budget_exhausted) {
    os << "  verdict: BUDGET EXHAUSTED before a full sweep — no "
          "certificate\n";
  } else if (equilibrium_certified) {
    os << "  verdict: eps-equilibrium CERTIFIED for profile ["
       << profile_label(space, final_profile) << "]\n";
  } else {
    os << "  verdict: stopped at max_iterations while deviations were "
          "still profitable\n";
  }
  return os.str();
}

SearchResult search(const SearchSpec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (spec.nets.empty() || spec.seeds.empty()) {
    throw std::invalid_argument("search: nets/seeds must be non-empty");
  }
  if (spec.n == 0) {
    throw std::invalid_argument("search: empty committee");
  }

  CoalitionSpec cspec = spec.coalitions;
  cspec.n = spec.n;
  const std::vector<Coalition> coalitions = enumerate_coalitions(cspec);
  if (coalitions.empty()) {
    throw std::invalid_argument("search: coalition enumeration is empty");
  }

  std::vector<StrategyVariant> pool =
      spec.candidate_pool.empty()
          ? default_candidate_pool(spec.protocol, spec.base.censored_txs)
          : spec.candidate_pool;
  // π₀ is handled as the standing "return to honesty" candidate; honest
  // pool entries would duplicate it.
  pool.erase(std::remove_if(pool.begin(), pool.end(),
                            [](const StrategyVariant& v) {
                              return v.is_honest();
                            }),
             pool.end());
  for (const StrategyVariant& v : pool) {
    if (!v.supported(spec.protocol)) {
      throw std::invalid_argument("search: candidate " + v.label() +
                                  " is not executable under " +
                                  to_string(spec.protocol));
    }
  }
  if (pool.empty()) {
    throw std::invalid_argument("search: empty candidate pool");
  }

  // Warm the registry before fanning out (thread-safe magic static).
  (void)harness::protocol_traits(spec.protocol);

  rational::PayoffParams payoff = spec.payoff;
  payoff.default_theta = spec.theta;
  payoff.thetas.clear();
  if (payoff.window == 0) payoff.window = spec.target_blocks;
  const rational::PayoffAccountant accountant(payoff);

  SearchResult result;
  result.protocol = spec.protocol;
  result.n = spec.n;
  result.theta = spec.theta;
  result.budget = spec.budget;
  result.coalitions_examined = coalitions.size();
  for (std::uint32_t k = cspec.k_min; k <= cspec.effective_k_max(); ++k) {
    const std::uint64_t unreduced = choose(spec.n, k);
    result.unreduced_coalitions =
        result.unreduced_coalitions > UINT64_MAX - unreduced
            ? UINT64_MAX
            : result.unreduced_coalitions + unreduced;
  }
  result.candidate_count = pool.size();

  // Candidate variants live in a scratch space so labels resolve during
  // evaluation; only *adopted* ones enter the result's growing space.
  StrategySpace scratch;
  std::vector<int> pool_index(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool_index[i] = scratch.add(pool[i]);
  }

  const std::size_t runs_per = spec.nets.size() * spec.seeds.size();
  std::map<NodeId, int> current;  // scratch indices; absent = honest
  // The current profile's mean per-player utilities. Empty on the first
  // iteration; afterwards carried forward from the adopted candidate's
  // slot — the runs are deterministic, so re-simulating the baseline
  // would reproduce exactly these numbers at nets×seeds extra cost.
  std::vector<double> baseline;
  // The all-honest utilities (the first iteration's baseline), reused as
  // the empirical game's π₀ row.
  std::vector<double> honest_baseline;

  struct Candidate {
    std::size_t coalition = 0;
    int variant = 0;  ///< scratch index; 0 = π₀ (return to honesty)
  };

  for (std::uint32_t iter = 1; iter <= spec.budget.max_iterations; ++iter) {
    // Assemble this iteration's deviation candidates: every canonical
    // coalition × (π₀ + pool), skipping no-ops against the current
    // profile.
    std::vector<Candidate> candidates;
    for (std::size_t c = 0; c < coalitions.size(); ++c) {
      for (int vi : pool_index) {
        bool noop = true;
        for (const NodeId member : coalitions[c]) {
          const auto it = current.find(member);
          if ((it == current.end() ? 0 : it->second) != vi) {
            noop = false;
            break;
          }
        }
        if (!noop) candidates.push_back({c, vi});
      }
      bool honest_noop = true;
      for (const NodeId member : coalitions[c]) {
        if (current.count(member)) {
          honest_noop = false;
          break;
        }
      }
      if (!honest_noop) candidates.push_back({c, 0});
    }

    // Budget the batch (baseline — first iteration only — plus the
    // candidates); truncation is deterministic: candidates are dropped
    // from the tail.
    const std::size_t baseline_slots = baseline.empty() ? 1 : 0;
    const std::size_t affordable =
        spec.budget.max_evaluations > result.evaluations
            ? (spec.budget.max_evaluations - result.evaluations) / runs_per
            : 0;
    if (affordable < baseline_slots + 1) {
      result.budget_exhausted = true;
      break;
    }
    bool truncated = false;
    if (candidates.size() + baseline_slots > affordable) {
      candidates.resize(affordable - baseline_slots);
      truncated = true;
    }

    std::vector<std::map<NodeId, int>> batch;
    batch.reserve(candidates.size() + baseline_slots);
    if (baseline_slots != 0) batch.push_back(current);
    for (const Candidate& cand : candidates) {
      std::map<NodeId, int> assignment = current;
      for (const NodeId member : coalitions[cand.coalition]) {
        if (cand.variant == 0) {
          assignment.erase(member);
        } else {
          assignment[member] = cand.variant;
        }
      }
      batch.push_back(std::move(assignment));
    }

    const std::vector<std::vector<double>> utilities =
        evaluate_assignments(spec, scratch, batch, accountant,
                             &result.profile);
    result.evaluations += batch.size() * runs_per;
    result.iterations = iter;
    if (baseline_slots != 0) {
      baseline = utilities[0];
      if (honest_baseline.empty() && current.empty()) {
        honest_baseline = baseline;
      }
    }

    // Mean per-member gain of each candidate vs the baseline profile.
    std::size_t best = candidates.size();
    double best_gain = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Coalition& members = coalitions[candidates[i].coalition];
      double gain = 0.0;
      for (const NodeId member : members) {
        gain += utilities[i + baseline_slots][member] - baseline[member];
      }
      gain /= static_cast<double>(members.size());
      if (gain > best_gain) {  // strict: ties keep the earliest candidate
        best_gain = gain;
        best = i;
      }
    }

    if (best == candidates.size() || best_gain <= spec.epsilon) {
      // No profitable deviation. The certificate only stands when the
      // sweep was complete.
      result.equilibrium_certified = !truncated;
      result.budget_exhausted = truncated;
      break;
    }

    const Candidate& adopted = candidates[best];
    const int result_index = result.space.add(scratch.at(adopted.variant));
    for (const NodeId member : coalitions[adopted.coalition]) {
      if (adopted.variant == 0) {
        current.erase(member);
      } else {
        current[member] = adopted.variant;
      }
    }
    // The adopted candidate's measured utilities ARE the next baseline.
    baseline = utilities[best + baseline_slots];
    result.discovered.push_back({iter, coalitions[adopted.coalition],
                                 result_index,
                                 scratch.at(adopted.variant).label(),
                                 best_gain});
    // A truncated sweep that still found a profitable deviation keeps the
    // search going; only a final sweep decides the certificate.
  }

  // Translate the final profile into result-space indices.
  for (const auto& [id, vi] : current) {
    result.final_profile[id] = result.space.add(scratch.at(vi));
  }

  // Grow the empirical game: the witness coalition (the last adopter, or
  // the first canonical coalition when honest survived) playing each
  // variant of the final space against an otherwise-honest committee.
  result.game_coalition = result.discovered.empty()
                              ? coalitions.front()
                              : result.discovered.back().coalition;
  // The π₀ row equals the first iteration's all-honest baseline, so it is
  // reused rather than re-simulated (deterministic runs: same numbers).
  const int first_row = honest_baseline.empty() ? 0 : 1;
  const std::size_t game_runs =
      static_cast<std::size_t>(result.space.size() - first_row) * runs_per;
  if (result.evaluations + game_runs <= spec.budget.max_evaluations) {
    std::vector<std::map<NodeId, int>> batch;
    StrategySpace& space = result.space;
    for (int vi = first_row; vi < space.size(); ++vi) {
      std::map<NodeId, int> assignment;
      if (vi != 0) {
        for (const NodeId member : result.game_coalition) {
          assignment[member] = vi;
        }
      }
      batch.push_back(std::move(assignment));
    }
    const std::vector<std::vector<double>> utilities =
        evaluate_assignments(spec, space, batch, accountant, &result.profile);
    result.evaluations += game_runs;
    result.game = game::NormalFormGame({space.size()});
    result.game.set_player_name(0,
                                "K" + coalition_label(result.game_coalition));
    for (int vi = 0; vi < space.size(); ++vi) {
      result.game.set_strategy_name(0, vi, space.at(vi).label());
      const std::vector<double>& row =
          vi < first_row ? honest_baseline
                         : utilities[static_cast<std::size_t>(vi - first_row)];
      double mean = 0.0;
      for (const NodeId member : result.game_coalition) {
        mean += row[member];
      }
      mean /= static_cast<double>(result.game_coalition.size());
      result.game.set_payoff({vi}, 0, mean);
    }
  }
  // When the remaining budget cannot fund the game pass, the game keeps
  // its default single row — visible as num_strategies < space.size() —
  // but a certificate earned by a *complete* sweep stays valid: only the
  // sweep itself sets budget_exhausted.

  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

}  // namespace ratcon::search
