#include "search/coalitions.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ratcon::search {

std::uint32_t CoalitionSpec::effective_k_max() const {
  const std::uint32_t k = k_max != 0 ? k_max : (n + 3) / 4;  // ⌈n/4⌉
  return std::min(k, n);
}

bool rotation_canonical(const Coalition& c, std::uint32_t n) {
  if (c.empty()) return true;
  Coalition rotated(c.size());
  for (std::uint32_t shift = 1; shift < n; ++shift) {
    for (std::size_t i = 0; i < c.size(); ++i) {
      rotated[i] = static_cast<NodeId>((c[i] + shift) % n);
    }
    std::sort(rotated.begin(), rotated.end());
    if (std::lexicographical_compare(rotated.begin(), rotated.end(),
                                     c.begin(), c.end())) {
      return false;
    }
  }
  return true;
}

std::vector<Coalition> enumerate_coalitions(const CoalitionSpec& spec) {
  if (spec.n == 0) {
    throw std::invalid_argument("enumerate_coalitions: empty committee");
  }
  if (spec.k_min == 0) {
    throw std::invalid_argument("enumerate_coalitions: k_min must be >= 1");
  }
  const std::uint32_t k_max = spec.effective_k_max();
  std::vector<Coalition> out;
  for (std::uint32_t k = spec.k_min; k <= k_max; ++k) {
    // k-subsets of [0, n) in lexicographic order.
    Coalition c(k);
    for (std::uint32_t i = 0; i < k; ++i) c[i] = i;
    while (true) {
      if (!spec.symmetry_reduce || rotation_canonical(c, spec.n)) {
        out.push_back(c);
        if (spec.limit != 0 && out.size() >= spec.limit) return out;
      }
      // Advance: find the rightmost member that can still move right.
      std::int64_t i = static_cast<std::int64_t>(k) - 1;
      while (i >= 0 &&
             c[static_cast<std::size_t>(i)] ==
                 spec.n - k + static_cast<std::uint32_t>(i)) {
        --i;
      }
      if (i < 0) break;
      ++c[static_cast<std::size_t>(i)];
      for (std::size_t j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
        c[j] = c[j - 1] + 1;
      }
    }
  }
  return out;
}

CoalitionBand theorem_band(std::uint32_t n) {
  CoalitionBand band;
  band.lo = (n + 2) / 3;                  // ⌈n/3⌉
  const std::uint32_t half = (n + 1) / 2;  // ⌈n/2⌉
  band.hi = half > 0 ? half - 1 : 0;
  return band;
}

std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    const std::uint64_t numer = n - k + i;
    // result * numer / i, watching for overflow (saturate).
    if (result > std::numeric_limits<std::uint64_t>::max() / numer) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * numer / i;
  }
  return result;
}

}  // namespace ratcon::search
