#include "search/strategy_space.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "adversary/fork_agent.hpp"
#include "baselines/quorum_node.hpp"
#include "harness/protocols.hpp"

namespace ratcon::search {

using game::Strategy;
using harness::Protocol;

namespace {

std::string round_window(Round from, Round until) {
  std::ostringstream os;
  os << "[" << from << ",";
  if (until == kRoundNever) {
    os << "inf";
  } else {
    os << until;
  }
  os << ")";
  return os.str();
}

/// Strategies expressible as per-round Behavior hooks — the only legal
/// mixture components (π_ds needs a node subclass; mixing it per round
/// would need node surgery mid-run).
bool behavior_expressible(Strategy s) {
  return s != Strategy::kDoubleSign;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdversaryKnobs

bool AdversaryKnobs::deviates() const {
  return equivocate || delay_until > delay_from || !censor_txs.empty();
}

std::string AdversaryKnobs::label() const {
  if (!deviates()) return "honest";
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << " ";
    first = false;
  };
  if (equivocate) {
    sep();
    os << "ds" << round_window(equivocate_from, equivocate_until);
  }
  if (delay_until > delay_from) {
    sep();
    os << "delay" << round_window(delay_from, delay_until) << "@";
    if (delay_targets.empty()) {
      os << "any";
    } else {
      os << "{";
      bool inner = true;
      for (const NodeId id : delay_targets) {
        if (!inner) os << ",";
        inner = false;
        os << id;
      }
      os << "}";
    }
  }
  if (!censor_txs.empty()) {
    sep();
    os << "censor{";
    bool inner = true;
    for (const std::uint64_t tx : censor_txs) {
      if (!inner) os << ",";
      inner = false;
      os << tx;
    }
    os << "}";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// StrategyVariant

StrategyVariant StrategyVariant::honest() { return StrategyVariant{}; }

StrategyVariant StrategyVariant::of(Strategy s) {
  StrategyVariant v;
  v.kind = Kind::kPure;
  v.pure = s;
  return v;
}

StrategyVariant StrategyVariant::mixed(
    std::vector<std::pair<Strategy, double>> parts) {
  StrategyVariant v;
  v.kind = Kind::kMixed;
  v.mixture = std::move(parts);
  return v;
}

StrategyVariant StrategyVariant::param(AdversaryKnobs knobs) {
  StrategyVariant v;
  v.kind = Kind::kParam;
  v.knobs = std::move(knobs);
  return v;
}

bool StrategyVariant::is_honest() const {
  switch (kind) {
    case Kind::kPure:
      return pure == Strategy::kHonest || pure == Strategy::kBait;
    case Kind::kMixed:
      for (const auto& [s, w] : mixture) {
        if (w > 0.0 && s != Strategy::kHonest && s != Strategy::kBait) {
          return false;
        }
      }
      return true;
    case Kind::kParam:
      return !knobs.deviates();
  }
  return false;
}

bool StrategyVariant::supported(Protocol proto) const {
  switch (kind) {
    case Kind::kPure:
      return rational::strategy_supported(proto, pure);
    case Kind::kMixed:
      for (const auto& [s, w] : mixture) {
        if (!behavior_expressible(s) ||
            !rational::strategy_supported(proto, s)) {
          return false;
        }
      }
      return !mixture.empty();
    case Kind::kParam:
      // The fork-plan substrate only exists for pRFT and the quorum
      // family; the delay/censor knobs run everywhere.
      return !knobs.equivocate ||
             rational::strategy_supported(proto, Strategy::kDoubleSign);
  }
  return false;
}

std::string StrategyVariant::label() const {
  switch (kind) {
    case Kind::kPure:
      return game::to_string(pure);
    case Kind::kMixed: {
      double total = 0.0;
      for (const auto& [s, w] : mixture) total += w;
      std::ostringstream os;
      os << "mix(";
      bool first = true;
      char buf[32];
      for (const auto& [s, w] : mixture) {
        if (!first) os << ",";
        first = false;
        std::snprintf(buf, sizeof buf, "%.2f",
                      total > 0.0 ? w / total : 0.0);
        os << game::to_string(s) << ":" << buf;
      }
      os << ")";
      return os.str();
    }
    case Kind::kParam:
      return "knobs(" + knobs.label() + ")";
  }
  return "?";
}

bool StrategyVariant::same_as(const StrategyVariant& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kPure:
      return pure == other.pure;
    case Kind::kMixed:
      return mixture == other.mixture;
    case Kind::kParam:
      return knobs.equivocate == other.knobs.equivocate &&
             knobs.equivocate_from == other.knobs.equivocate_from &&
             knobs.equivocate_until == other.knobs.equivocate_until &&
             knobs.delay_targets == other.knobs.delay_targets &&
             knobs.delay_from == other.knobs.delay_from &&
             knobs.delay_until == other.knobs.delay_until &&
             knobs.censor_txs == other.knobs.censor_txs;
  }
  return false;
}

// ---------------------------------------------------------------------------
// StrategySpace

StrategySpace::StrategySpace() { variants_.push_back(StrategyVariant::honest()); }

int StrategySpace::add(StrategyVariant v) {
  for (std::size_t i = 0; i < variants_.size(); ++i) {
    if (variants_[i].same_as(v)) return static_cast<int>(i);
  }
  variants_.push_back(std::move(v));
  return static_cast<int>(variants_.size()) - 1;
}

int StrategySpace::find(const std::string& label) const {
  for (std::size_t i = 0; i < variants_.size(); ++i) {
    if (variants_[i].label() == label) return static_cast<int>(i);
  }
  return -1;
}

const StrategyVariant& StrategySpace::at(int index) const {
  if (index < 0 || index >= size()) {
    throw std::out_of_range("StrategySpace: variant " +
                            std::to_string(index) + " of " +
                            std::to_string(size()));
  }
  return variants_[static_cast<std::size_t>(index)];
}

// ---------------------------------------------------------------------------
// MixedBehavior

MixedBehavior::MixedBehavior(std::vector<Component> parts, Rng stream)
    : parts_(std::move(parts)), stream_(stream) {
  if (parts_.empty()) {
    throw std::invalid_argument("MixedBehavior: empty support");
  }
  for (const Component& c : parts_) {
    if (c.weight < 0.0) {
      throw std::invalid_argument("MixedBehavior: negative weight");
    }
    total_weight_ += c.weight;
  }
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument("MixedBehavior: all-zero weights");
  }
}

std::size_t MixedBehavior::choice(Round r) const {
  // A per-round substream keyed by the round number: the draw depends
  // only on (stream, r), never on how many times or in which order the
  // behavior was consulted.
  Rng row = stream_.fork("round/" + std::to_string(r));
  const double u = row.uniform01() * total_weight_;
  double cum = 0.0;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    cum += parts_[i].weight;
    if (u < cum) return i;
  }
  return parts_.size() - 1;
}

bool MixedBehavior::is_honest() const {
  for (const Component& c : parts_) {
    if (c.weight <= 0.0) continue;
    if (c.behavior != nullptr && !c.behavior->is_honest()) return false;
  }
  return true;
}

bool MixedBehavior::participate(Round r, NodeId leader,
                                consensus::PhaseTag phase) {
  current_round_ = r;
  Component& c = parts_[choice(r)];
  return c.behavior == nullptr || c.behavior->participate(r, leader, phase);
}

bool MixedBehavior::censor_tx(const ledger::Transaction& tx) {
  Component& c = parts_[choice(current_round_)];
  return c.behavior != nullptr && c.behavior->censor_tx(tx);
}

bool MixedBehavior::expose_fraud() const {
  // A mixture that ever plays a colluding component never incriminates:
  // exposing in honest rounds would out its own coalition later.
  for (const Component& c : parts_) {
    if (c.weight <= 0.0) continue;
    if (c.behavior != nullptr && !c.behavior->expose_fraud()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Assignment application

std::shared_ptr<consensus::Behavior> make_variant_behavior(
    const StrategyVariant& v, NodeId id, const rational::ProfileSpec& base,
    std::uint64_t seed) {
  switch (v.kind) {
    case StrategyVariant::Kind::kPure:
      return rational::make_behavior(v.pure, id, base);  // throws on π_ds
    case StrategyVariant::Kind::kMixed: {
      std::vector<MixedBehavior::Component> parts;
      parts.reserve(v.mixture.size());
      for (const auto& [s, w] : v.mixture) {
        if (!behavior_expressible(s)) {
          throw std::invalid_argument(
              "make_variant_behavior: pi_ds cannot be a mixture component");
        }
        parts.push_back({s, w, rational::make_behavior(s, id, base)});
      }
      return std::make_shared<MixedBehavior>(
          std::move(parts),
          Rng(seed).fork("mixed/P" + std::to_string(id)));
    }
    case StrategyVariant::Kind::kParam:
      if (v.knobs.equivocate) {
        throw std::invalid_argument(
            "make_variant_behavior: equivocating knobs need a fork-plan "
            "node factory (apply_assignment)");
      }
      if (!v.knobs.deviates()) return nullptr;
      return std::make_shared<ParamBehavior>(v.knobs);
  }
  return nullptr;
}

void apply_assignment(harness::ScenarioSpec& spec, const StrategySpace& space,
                      const std::map<NodeId, int>& assignment,
                      const rational::ProfileSpec& base) {
  const Protocol proto = spec.protocol;
  std::set<NodeId> equivocators;
  Round attack_from = 0;
  Round attack_until = kRoundNever;
  bool window_set = false;

  // Shared context for pure components: every assigned deviator joins the
  // effective coalition π_pc/π_ds components coordinate through.
  rational::ProfileSpec ctx = base;
  for (const auto& [id, index] : assignment) {
    const StrategyVariant& v = space.at(index);
    if (v.is_honest()) continue;
    ctx.coalition.insert(id);
    if (v.kind == StrategyVariant::Kind::kParam) {
      ctx.censored_txs.insert(v.knobs.censor_txs.begin(),
                              v.knobs.censor_txs.end());
    }
  }

  for (const auto& [id, index] : assignment) {
    if (id >= spec.committee.n) {
      throw std::invalid_argument("apply_assignment: player " +
                                  std::to_string(id) +
                                  " outside committee of " +
                                  std::to_string(spec.committee.n));
    }
    const StrategyVariant& v = space.at(index);
    if (!v.supported(proto)) {
      throw std::invalid_argument("apply_assignment: " + v.label() +
                                  " is not executable under " +
                                  to_string(proto));
    }
    const bool equivocates =
        (v.kind == StrategyVariant::Kind::kPure &&
         v.pure == Strategy::kDoubleSign) ||
        (v.kind == StrategyVariant::Kind::kParam && v.knobs.equivocate);
    if (equivocates) {
      equivocators.insert(id);
      // All equivocators share one fork plan, hence one timing window —
      // pure π_ds means "attack every coalition-led round", i.e. the
      // window [0, inf); conflicting windows (including pure π_ds next
      // to a narrowed kParam window) are rejected rather than silently
      // rewriting an already-assigned player's strategy.
      const Round from = v.kind == StrategyVariant::Kind::kParam
                             ? v.knobs.equivocate_from
                             : 0;
      const Round until = v.kind == StrategyVariant::Kind::kParam
                              ? v.knobs.equivocate_until
                              : kRoundNever;
      if (window_set && (attack_from != from || attack_until != until)) {
        throw std::invalid_argument(
            "apply_assignment: equivocating players must share one "
            "timing window");
      }
      attack_from = from;
      attack_until = until;
      window_set = true;
      if (v.kind == StrategyVariant::Kind::kParam &&
          (v.knobs.delay_until > v.knobs.delay_from ||
           !v.knobs.censor_txs.empty())) {
        // A fork agent manages its own sends; a delay/censor behavior on
        // top would be silently ignored, so reject the combination.
        throw std::invalid_argument(
            "apply_assignment: equivocation cannot be combined with "
            "delay/censor knobs in one variant");
      }
      continue;
    }
    if (v.is_honest()) continue;
    spec.adversary.behaviors[id] =
        make_variant_behavior(v, id, ctx, spec.seed);
  }
  if (equivocators.empty()) return;

  // One shared fork plan for the double-signing coalition, with the
  // knobs' timing window (mirrors rational::apply_profile's geometry).
  std::set<NodeId> coalition = ctx.effective_coalition();
  coalition.insert(equivocators.begin(), equivocators.end());

  if (proto == Protocol::kPrft) {
    auto plan = std::make_shared<adversary::ForkPlan>();
    plan->n = spec.committee.n;
    plan->coalition = coalition;
    plan->attack_from = attack_from;
    plan->attack_until = attack_until;
    rational::fork_sides(spec.committee.n, coalition, plan->side_a,
                         plan->side_b);
    spec.adversary.node_factory =
        [plan, equivocators](NodeId id, const harness::NodeEnv& env)
        -> std::unique_ptr<consensus::IReplica> {
      if (!equivocators.count(id)) return nullptr;
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    };
    return;
  }
  if (proto != Protocol::kQuorum && proto != Protocol::kUnanimous) {
    throw std::invalid_argument(
        "apply_assignment: equivocation is not executable under " +
        std::string(to_string(proto)));
  }
  auto plan = std::make_shared<baselines::QuorumForkPlan>();
  plan->n = spec.committee.n;
  plan->coalition = coalition;
  plan->attack_from = attack_from;
  plan->attack_until = attack_until;
  rational::fork_sides(spec.committee.n, coalition, plan->side_a,
                       plan->side_b);
  const bool unanimous = proto == Protocol::kUnanimous;
  spec.adversary.node_factory =
      [plan, equivocators, unanimous](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (!equivocators.count(id)) return nullptr;
    baselines::QuorumNode::Deps deps = harness::make_quorum_deps(id, env);
    if (unanimous) {
      deps.proto = consensus::ProtoId::kQuorumDemo;
      deps.tau = env.cfg.n;
    }
    deps.fork_plan = plan;
    return std::make_unique<baselines::QuorumNode>(std::move(deps));
  };
}

}  // namespace ratcon::search
