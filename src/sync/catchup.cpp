#include "sync/catchup.hpp"

#include <algorithm>

#include "crypto/merkle.hpp"
#include "harness/profiler.hpp"
#include "harness/trace.hpp"

namespace ratcon::sync {

namespace {

constexpr consensus::ProtoId kProto = consensus::ProtoId::kSync;

// Per-type body caps, enforced before the body is hashed for signature
// verification. Announce and request have fixed layouts; responses carry
// a block batch and keep the codec default.
std::size_t max_body(MsgType t) {
  switch (t) {
    case MsgType::kAnnounce:
      return 8 + 32;  // height + tip hash
    case MsgType::kRequest:
      return 8 + 8;  // from/to heights
    case MsgType::kResponse:
    default:
      return Reader::kDefaultMaxLen;
  }
}

}  // namespace

/// Context decorator handed to the inner replica in piggyback mode: every
/// outgoing protocol message to a peer still owed the latest announce is
/// wrapped in a container frame `[marker][u32 len][inner][announce]` —
/// one physical send carrying both. Sync traffic and already-covered peers
/// pass through untouched.
class PiggybackContext final : public net::Context {
 public:
  PiggybackContext(const net::Context& base, CatchupDriver& driver)
      : net::Context(base), driver_(driver) {}

  void send(NodeId to, Bytes data) override {
    if (!driver_.unannounced_.count(to) || data.empty() ||
        data[0] == static_cast<std::uint8_t>(kProto) ||
        data[0] == net::kPiggybackMarker) {
      net::Context::send(to, std::move(data));
      return;
    }
    const Bytes announce = driver_.make_announce();
    Bytes frame;
    frame.reserve(net::kPiggybackHeader + data.size() + announce.size());
    frame.push_back(net::kPiggybackMarker);
    const std::uint32_t len = static_cast<std::uint32_t>(data.size());
    frame.push_back(static_cast<std::uint8_t>(len & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
    frame.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
    frame.insert(frame.end(), data.begin(), data.end());
    frame.insert(frame.end(), announce.begin(), announce.end());
    driver_.unannounced_.erase(to);
    driver_.piggybacked_ += 1;
    net::Context::send(to, std::move(frame));
  }

  void broadcast(Bytes data) override {
    const std::size_t n = cluster_size();
    for (NodeId to = 0; to < n; ++to) {
      if (to == self()) continue;
      this->send(to, data);
    }
    self_deliver(std::move(data));
  }

 private:
  CatchupDriver& driver_;
};

// ---------------------------------------------------------------------------
// Wire bodies

void AnnounceBody::encode(Writer& w) const {
  w.u64(height);
  w.raw(ByteSpan(tip.data(), tip.size()));
}

AnnounceBody AnnounceBody::decode(Reader& r) {
  AnnounceBody body;
  body.height = r.u64();
  r.raw_into(body.tip.data(), body.tip.size());
  return body;
}

void RequestBody::encode(Writer& w) const {
  w.u64(from_height);
  w.u64(to_height);
}

RequestBody RequestBody::decode(Reader& r) {
  RequestBody body;
  body.from_height = r.u64();
  body.to_height = r.u64();
  return body;
}

void ResponseBody::encode(Writer& w) const {
  w.u64(first_height);
  w.u32(static_cast<std::uint32_t>(blocks.size()));
  for (const ledger::Block& b : blocks) b.encode(w);
  w.raw(ByteSpan(anchor_root.data(), anchor_root.size()));
}

ResponseBody ResponseBody::decode(Reader& r) {
  ResponseBody body;
  body.first_height = r.u64();
  const std::uint32_t count = r.count(kMaxBlocks);
  body.blocks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    body.blocks.push_back(ledger::Block::decode(r));
  }
  r.raw_into(body.anchor_root.data(), body.anchor_root.size());
  return body;
}

// ---------------------------------------------------------------------------
// CatchupDriver

CatchupDriver::CatchupDriver(std::unique_ptr<consensus::IReplica> inner,
                             Deps deps)
    : inner_(std::move(inner)),
      cfg_(deps.cfg),
      registry_(deps.registry),
      keys_(deps.keys),
      period_(deps.plan.period > 0 ? deps.plan.period
                                   : std::max<SimTime>(cfg_.base_timeout, 1)),
      batch_(std::max<std::uint32_t>(deps.plan.batch, 1)),
      witnesses_(deps.plan.witnesses > 0 ? deps.plan.witnesses : cfg_.t0 + 1),
      lag_threshold_(std::max<std::uint64_t>(deps.plan.lag_threshold, 1)),
      piggyback_(deps.plan.piggyback) {}

bool CatchupDriver::reached_target() const {
  return target_blocks_ != 0 &&
         inner_->chain().finalized_height() >= target_blocks_;
}

Bytes CatchupDriver::encode_env(MsgType type, std::uint64_t round,
                                Bytes body) const {
  return consensus::make_envelope(kProto, static_cast<std::uint8_t>(type),
                                  round, self_, std::move(body), keys_.sk)
      .encode();
}

void CatchupDriver::on_start(net::Context& ctx) {
  self_ = ctx.self();
  PiggybackContext pctx(ctx, *this);
  inner_->on_start(piggyback_ ? static_cast<net::Context&>(pctx) : ctx);
  announced_height_ = inner_->chain().finalized_height();
  if (announced_height_ > 0) announce(ctx);
  if (!reached_target()) ctx.set_timer(kSyncTimer, period_);
}

void CatchupDriver::on_message(net::Context& ctx, NodeId from,
                               const Bytes& data) {
  if (data.empty()) return;
  // Piggyback container: catch-up metadata riding a protocol message.
  if (data[0] == net::kPiggybackMarker) {
    handle_container(ctx, from, data);
    return;
  }
  // The first wire byte is the protocol id; only kSync traffic is ours.
  if (data[0] != static_cast<std::uint8_t>(kProto)) {
    PiggybackContext pctx(ctx, *this);
    inner_->on_message(piggyback_ ? static_cast<net::Context&>(pctx) : ctx,
                       from, data);
    after_step(ctx);
    return;
  }
  consensus::WireView view;
  try {
    view = consensus::WireView::parse(ByteSpan(data.data(), data.size()));
  } catch (const CodecError&) {
    return;
  }
  if (view.proto != kProto || view.from >= cfg_.n || view.from == self_) {
    return;
  }
  // Oversized for its type: reject before the body is hashed or decoded.
  if (view.body().size() > max_body(static_cast<MsgType>(view.type))) return;
  if (!consensus::verify_wire(view, *registry_)) return;
  handle_sync(ctx, view);
  after_step(ctx);
}

void CatchupDriver::handle_container(net::Context& ctx, NodeId from,
                                     const Bytes& data) {
  if (data.size() < net::kPiggybackHeader + 2) return;
  const std::size_t inner_len = static_cast<std::size_t>(data[1]) |
                                (static_cast<std::size_t>(data[2]) << 8) |
                                (static_cast<std::size_t>(data[3]) << 16) |
                                (static_cast<std::size_t>(data[4]) << 24);
  const std::size_t tail_at = net::kPiggybackHeader + inner_len;
  if (inner_len < 2 || tail_at >= data.size()) return;
  // Apply the riding announce first (it may unblock gap detection), then
  // hand the protocol message to the inner replica unchanged. The tail is
  // parsed in place — a zero-copy view into the container frame.
  const ByteSpan tail(data.data() + tail_at, data.size() - tail_at);
  consensus::WireView view;
  bool tail_ok = true;
  try {
    view = consensus::WireView::parse(tail);
  } catch (const CodecError&) {
    tail_ok = false;
  }
  if (tail_ok && view.proto == kProto && view.from < cfg_.n &&
      view.from != self_ &&
      view.body().size() <= max_body(static_cast<MsgType>(view.type)) &&
      consensus::verify_wire(view, *registry_)) {
    handle_sync(ctx, view);
  }
  const Bytes inner(data.begin() + net::kPiggybackHeader,
                    data.begin() + static_cast<std::ptrdiff_t>(tail_at));
  if (inner[0] != static_cast<std::uint8_t>(kProto) &&
      inner[0] != net::kPiggybackMarker) {
    PiggybackContext pctx(ctx, *this);
    inner_->on_message(piggyback_ ? static_cast<net::Context&>(pctx) : ctx,
                       from, inner);
  }
  after_step(ctx);
}

void CatchupDriver::on_timer(net::Context& ctx, std::uint64_t timer_id) {
  if (timer_id != kSyncTimer) {
    PiggybackContext pctx(ctx, *this);
    inner_->on_timer(piggyback_ ? static_cast<net::Context&>(pctx) : ctx,
                     timer_id);
    after_step(ctx);
    return;
  }
  // Retry tick: a lagging replica re-requests (rotating over candidate
  // responders, so a crashed best peer cannot wedge recovery), and peers
  // that no protocol message covered get their announce now.
  flush_announces(ctx);
  request_pending_ = false;
  maybe_request(ctx);
  if (!reached_target()) ctx.set_timer(kSyncTimer, period_);
}

void CatchupDriver::handle_sync(net::Context& ctx,
                                const consensus::WireView& env) {
  try {
    switch (static_cast<MsgType>(env.type)) {
      case MsgType::kAnnounce: handle_announce(ctx, env); break;
      case MsgType::kRequest: handle_request(ctx, env); break;
      case MsgType::kResponse: handle_response(ctx, env); break;
      default: break;
    }
  } catch (const CodecError&) {
    // Malformed body under a valid envelope: faulty sender; drop.
  }
}

Bytes CatchupDriver::make_announce() {
  harness::ProfTimer timer(harness::kL1SyncNs, harness::kL2SyncAnnounceNs);
  const auto& chain = inner_->chain();
  const std::uint64_t height = chain.finalized_height();
  // In piggyback mode this runs once per peer still owed the announce —
  // n-1 times per height — so the signed wire is cached per height.
  // Signing is deterministic, so the cached bytes are identical to a
  // rebuild and the traffic is unchanged.
  if (announce_wire_.empty() || announce_wire_height_ != height) {
    AnnounceBody body;
    body.height = height;
    body.tip = chain.hash_at(height);
    Writer w;
    body.encode(w);
    announce_wire_ = encode_env(MsgType::kAnnounce, height, w.take());
    announce_wire_height_ = height;
  }
  return announce_wire_;
}

void CatchupDriver::announce(net::Context& ctx) {
  ctx.broadcast(make_announce());
  announces_ += 1;
}

void CatchupDriver::pend_announce() {
  const std::size_t n = cfg_.n;
  for (NodeId id = 0; id < n; ++id) {
    if (id != self_) unannounced_.insert(id);
  }
}

void CatchupDriver::flush_announces(net::Context& ctx) {
  if (unannounced_.empty()) return;
  const Bytes wire = make_announce();
  for (NodeId peer : unannounced_) ctx.send(peer, wire);
  unannounced_.clear();
  announces_ += 1;
}

void CatchupDriver::after_step(net::Context& ctx) {
  const std::uint64_t fin = inner_->chain().finalized_height();
  if (fin > announced_height_) {
    announced_height_ = fin;
    if (piggyback_) {
      // The new announce rides the next protocol sends; stragglers are
      // flushed on the sync tick — or right away once the run's target is
      // reached and no further protocol traffic can carry it.
      pend_announce();
      if (reached_target()) flush_announces(ctx);
    } else {
      announce(ctx);
    }
    // Height moved: the outstanding request (if any) is answered; chase
    // the next batch immediately instead of waiting for the retry tick.
    request_pending_ = false;
    maybe_request(ctx);
  }
}

void CatchupDriver::handle_announce(net::Context& ctx,
                                    const consensus::WireView& env) {
  harness::ProfTimer timer(harness::kL1SyncNs, harness::kL2SyncHandleNs);
  Reader r(env.body());
  const AnnounceBody body = AnnounceBody::decode(r);
  r.expect_done();
  witness_[body.height][body.tip].insert(env.from);
  auto& best = peer_height_[env.from];
  best = std::max(best, body.height);
  maybe_request(ctx);
}

void CatchupDriver::maybe_request(net::Context& ctx) {
  if (request_pending_ || reached_target()) return;
  const std::uint64_t fin = inner_->chain().finalized_height();
  // Candidates: peers whose announced finalized height clears the gap
  // threshold. Deterministic rotation across retries.
  std::vector<std::pair<NodeId, std::uint64_t>> candidates;
  for (const auto& [peer, height] : peer_height_) {
    if (height >= fin + lag_threshold_) candidates.emplace_back(peer, height);
  }
  if (candidates.empty()) return;
  const auto& [peer, height] =
      candidates[request_rotation_ % candidates.size()];
  request_rotation_ += 1;

  RequestBody body;
  body.from_height = fin + 1;
  body.to_height = std::min<std::uint64_t>(height, fin + batch_);
  Writer w;
  body.encode(w);
  ctx.send(peer, encode_env(MsgType::kRequest, body.from_height, w.take()));
  requests_ += 1;
  request_pending_ = true;
}

void CatchupDriver::handle_request(net::Context& ctx,
                                   const consensus::WireView& env) {
  harness::ProfTimer timer(harness::kL1SyncNs, harness::kL2SyncServeNs);
  Reader r(env.body());
  const RequestBody body = RequestBody::decode(r);
  r.expect_done();
  const auto& chain = inner_->chain();
  const std::uint64_t fin = chain.finalized_height();
  if (body.from_height == 0 || body.from_height > fin ||
      body.to_height < body.from_height) {
    return;
  }
  const std::uint64_t to = std::min(
      {body.to_height, fin, body.from_height + batch_ - 1});

  ResponseBody resp;
  resp.first_height = body.from_height;
  for (std::uint64_t h = body.from_height; h <= to; ++h) {
    resp.blocks.push_back(chain.at(h));
  }
  // Merkle anchor over the finalized chain through the batch tip.
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(to + 1);
  for (std::uint64_t h = 0; h <= to; ++h) leaves.push_back(chain.hash_at(h));
  resp.anchor_root = crypto::MerkleTree::compute_root(leaves);

  Writer w;
  resp.encode(w);
  ctx.send(env.from, encode_env(MsgType::kResponse, resp.first_height,
                                w.take()));
  responses_ += 1;
}

void CatchupDriver::handle_response(net::Context& ctx,
                                    const consensus::WireView& env) {
  harness::ProfTimer timer(harness::kL1SyncNs, harness::kL2SyncAdoptNs);
  Reader r(env.body());
  const ResponseBody body = ResponseBody::decode(r);
  r.expect_done();

  const auto& chain = inner_->chain();
  const std::uint64_t fin = chain.finalized_height();
  // Stale (including replays of once-valid responses) or out-of-order
  // batches are no-ops: adoption is only ever attempted directly above the
  // local finalized tip, so a replayed envelope cannot rewind state — and
  // sync traffic never feeds fraud trackers, so it cannot slash anyone.
  if (body.blocks.empty() || body.first_height != fin + 1) {
    rejected_ += 1;
    return;
  }
  // Hash-chain linkage from our finalized tip through the batch.
  if (body.blocks.front().parent != chain.hash_at(fin)) {
    rejected_ += 1;
    return;
  }
  for (std::size_t i = 1; i < body.blocks.size(); ++i) {
    if (body.blocks[i].parent != body.blocks[i - 1].hash()) {
      rejected_ += 1;
      return;
    }
  }
  // Merkle anchor: the batch must extend *our* finalized chain exactly.
  std::vector<crypto::Hash256> leaves;
  leaves.reserve(fin + 1 + body.blocks.size());
  for (std::uint64_t h = 0; h <= fin; ++h) leaves.push_back(chain.hash_at(h));
  for (const ledger::Block& b : body.blocks) leaves.push_back(b.hash());
  if (crypto::MerkleTree::compute_root(leaves) != body.anchor_root) {
    rejected_ += 1;
    return;
  }

  // The responder vouches for its batch tip.
  const std::uint64_t top = body.first_height + body.blocks.size() - 1;
  witness_[top][body.blocks.back().hash()].insert(env.from);
  auto& best = peer_height_[env.from];
  best = std::max(best, top);

  // Adopt only up to the highest height corroborated by >= witnesses_
  // distinct peers — a forged chain would need that many colluding
  // vouchers, which exceeds the protocol's design bound.
  std::uint64_t adopt_to = 0;
  for (std::uint64_t h = top; h >= body.first_height; --h) {
    const auto hit = witness_.find(h);
    if (hit != witness_.end()) {
      const auto wit = hit->second.find(leaves[h]);
      if (wit != hit->second.end() && wit->second.size() >= witnesses_) {
        adopt_to = h;
        break;
      }
    }
    if (h == body.first_height) break;
  }
  if (adopt_to < body.first_height) {
    rejected_ += 1;
    return;
  }

  std::vector<ledger::Block> run(
      body.blocks.begin(),
      body.blocks.begin() +
          static_cast<std::ptrdiff_t>(adopt_to - body.first_height + 1));
  if (inner_->on_sync_adopt(ctx, run, body.first_height)) {
    // The driver's own adoption record, distinct from the inner replica's
    // (proto = kSync): which heights arrived via state transfer.
    harness::trace_state(
        harness::TraceKind::kSyncAdopt, ctx.self(), 0,
        static_cast<std::uint8_t>(consensus::ProtoId::kSync),
        body.first_height, 0, static_cast<std::int64_t>(run.size()));
    adopted_ += run.size();
    request_pending_ = false;  // answered; after_step chases the next batch
  } else {
    rejected_ += 1;
  }
}

}  // namespace ratcon::sync
