#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/envelope.hpp"
#include "consensus/replica.hpp"
#include "consensus/types.hpp"
#include "crypto/sig.hpp"
#include "ledger/block.hpp"

namespace ratcon::sync {

/// Protocol-agnostic catch-up / state-transfer subsystem.
///
/// Under adversarial delay (pre-GST holds, partitions, targeted-message
/// attacks) a replica can miss the commit/decide of a height entirely and
/// stay behind forever: every subsequent proposal extends a parent it does
/// not hold. The paper's liveness claims (Theorem 1) are *eventual* —
/// after GST every honest player converges — and rational-agent protocols
/// assume exactly this kind of recovery when arguing equilibria survive
/// transient partitions (cf. Rational Fair Consensus in the GOSSIP model).
///
/// This module supplies that recovery for every protocol in the registry:
///
///  * `CatchupDriver` decorates any `consensus::IReplica`. It announces
///    finalized-height advances, detects falling behind (gap between the
///    local finalized height and the highest height observed in any valid
///    announce), and fetches the missing finalized blocks from peers in
///    batches.
///  * `SyncRequest` / `SyncResponse` are height-ranged: a response carries
///    the blocks for `[first_height, first_height + blocks - 1]` plus a
///    Merkle anchor — the root over the sender's finalized block hashes
///    from genesis through the batch tip — which the receiver recomputes
///    over its own finalized prefix + the received blocks, so a response
///    that does not extend the receiver's exact chain is rejected.
///  * Trust is protocol-parametric: a batch is adopted only up to the
///    highest height corroborated by >= `witnesses` distinct peers
///    (default t0 + 1 — at least one honest voucher within the protocol's
///    design bound; 1 for CFT protocols). Forged or stale responses are
///    rejected without side effects, and sync messages never feed fraud
///    trackers, so replays can never slash an honest player.
///
/// Adoption is delegated to `IReplica::on_sync_adopt`, where each protocol
/// reconciles its private state (pRFT round bookkeeping, HotStuff locks,
/// Raft-lite ballots, quorum prepare-locks) against the transferred chain.

/// Wire messages (ProtoId::kSync; second header byte).
enum class MsgType : std::uint8_t {
  kAnnounce = 0,  ///< broadcast: my finalized height advanced
  kRequest = 1,   ///< to one peer: send me heights [from, to]
  kResponse = 2,  ///< reply: blocks + Merkle anchor
};

/// ⟨Announce, height, hash(block at height)⟩ — broadcast whenever the
/// sender's finalized height advances (and once at start when non-zero).
struct AnnounceBody {
  std::uint64_t height = 0;
  crypto::Hash256 tip{};

  void encode(Writer& w) const;
  static AnnounceBody decode(Reader& r);
};

/// ⟨Request, from_height, to_height⟩ — ask one peer for a finalized range.
struct RequestBody {
  std::uint64_t from_height = 0;
  std::uint64_t to_height = 0;

  void encode(Writer& w) const;
  static RequestBody decode(Reader& r);
};

/// ⟨Response, first_height, blocks, anchor_root⟩ — the requested batch.
/// `anchor_root` is the Merkle root over the sender's finalized block
/// hashes for heights [0, first_height + blocks.size() - 1]; the receiver
/// recomputes it over its own finalized prefix plus `blocks`.
struct ResponseBody {
  std::uint64_t first_height = 0;
  std::vector<ledger::Block> blocks;
  crypto::Hash256 anchor_root{};

  void encode(Writer& w) const;
  static ResponseBody decode(Reader& r);

  static constexpr std::uint32_t kMaxBlocks = 4096;
};

/// Catch-up configuration carried by ScenarioSpec (`sync_plan`).
struct SyncPlan {
  /// Off reproduces the pre-catch-up behaviour: a replica that misses a
  /// decide under adversarial delay stays behind forever.
  bool enabled = true;
  /// Re-request cadence for a lagging replica. 0 = derive from the
  /// committee's base timeout (one retry per timeout).
  SimTime period = 0;
  /// Max blocks per SyncResponse; longer gaps fetch in multiple batches.
  std::uint32_t batch = 8;
  /// Distinct peers that must corroborate a height before adoption.
  /// 0 = derive t0 + 1 from the committee config.
  std::uint32_t witnesses = 0;
  /// Minimum observed gap (best announced height - local finalized height)
  /// before the driver starts fetching.
  std::uint64_t lag_threshold = 1;
  /// Piggyback announces on outgoing protocol traffic: when the inner
  /// replica sends a peer a protocol message while an announce is pending,
  /// the announce rides along in a container frame instead of being a
  /// send of its own; peers not covered by protocol traffic get a targeted
  /// announce at the next sync tick. Cuts the per-height announce
  /// broadcast to near zero on chatty protocols.
  bool piggyback = true;
};

/// Decorator node: wraps a protocol replica, passes all protocol traffic
/// and timers through, and runs the catch-up state machine on the side.
/// The harness keeps introspecting the *inner* replica (chains, typed
/// accessors); the driver only ever touches it through the IReplica
/// surface (`chain()`, `on_sync_adopt`).
class CatchupDriver final : public consensus::IReplica {
 public:
  struct Deps {
    consensus::Config cfg;
    crypto::KeyRegistry* registry = nullptr;
    crypto::KeyPair keys;
    SyncPlan plan;
  };

  CatchupDriver(std::unique_ptr<consensus::IReplica> inner, Deps deps);

  // -- IReplica (forwarded) --------------------------------------------------
  [[nodiscard]] const ledger::Chain& chain() const override {
    return inner_->chain();
  }
  ledger::Mempool& mempool() override { return inner_->mempool(); }
  [[nodiscard]] bool is_honest() const override { return inner_->is_honest(); }
  [[nodiscard]] Round current_round() const override {
    return inner_->current_round();
  }
  void set_target_blocks(std::uint64_t target) override {
    target_blocks_ = target;
    inner_->set_target_blocks(target);
  }
  bool on_sync_adopt(net::Context& ctx,
                     const std::vector<ledger::Block>& blocks,
                     std::uint64_t first_height) override {
    return inner_->on_sync_adopt(ctx, blocks, first_height);
  }

  // -- INode -----------------------------------------------------------------
  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, NodeId from, const Bytes& data) override;
  void on_timer(net::Context& ctx, std::uint64_t timer_id) override;

  // -- Introspection (tests / harness) ---------------------------------------
  [[nodiscard]] consensus::IReplica& inner() { return *inner_; }
  [[nodiscard]] const consensus::IReplica& inner() const { return *inner_; }
  [[nodiscard]] std::uint64_t announces_sent() const { return announces_; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }
  [[nodiscard]] std::uint64_t responses_sent() const { return responses_; }
  [[nodiscard]] std::uint64_t responses_rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t blocks_adopted() const { return adopted_; }
  /// Announces that rode outgoing protocol messages (saved sends).
  [[nodiscard]] std::uint64_t announces_piggybacked() const {
    return piggybacked_;
  }
  /// Effective (resolved) knobs, for tests.
  [[nodiscard]] std::uint32_t witness_threshold() const { return witnesses_; }
  [[nodiscard]] std::uint32_t batch_size() const { return batch_; }

  /// Sync backlog: best finalized height any peer has announced minus the
  /// local finalized height (0 when caught up) — the metrics timelines'
  /// catch-up pressure gauge.
  [[nodiscard]] std::uint64_t backlog() const {
    std::uint64_t best = 0;
    for (const auto& [peer, height] : peer_height_) {
      best = std::max(best, height);
    }
    const std::uint64_t local = inner_->chain().finalized_height();
    return best > local ? best - local : 0;
  }

 private:
  friend class PiggybackContext;

  static constexpr std::uint64_t kSyncTimer = 0x53594e43;  // 'SYNC'

  // Sync handlers receive a borrowed zero-copy view over the wire buffer
  // (or, in piggyback mode, over the container's tail — no tail copy).
  void handle_sync(net::Context& ctx, const consensus::WireView& env);
  void handle_announce(net::Context& ctx, const consensus::WireView& env);
  void handle_request(net::Context& ctx, const consensus::WireView& env);
  void handle_response(net::Context& ctx, const consensus::WireView& env);
  void handle_container(net::Context& ctx, NodeId from, const Bytes& data);

  /// Post-step bookkeeping: announce when the inner chain's finalized
  /// height advanced (immediately, or pending on outgoing protocol traffic
  /// in piggyback mode), and chase the next batch when lagging.
  void after_step(net::Context& ctx);
  void announce(net::Context& ctx);
  /// Piggyback mode: mark every peer as owed the new announce.
  void pend_announce();
  /// Sends targeted announces to peers the protocol traffic did not cover.
  void flush_announces(net::Context& ctx);
  /// One announce envelope for the current finalized tip.
  [[nodiscard]] Bytes make_announce();
  void maybe_request(net::Context& ctx);
  [[nodiscard]] bool reached_target() const;
  [[nodiscard]] Bytes encode_env(MsgType type, std::uint64_t round,
                                 Bytes body) const;

  std::unique_ptr<consensus::IReplica> inner_;
  consensus::Config cfg_;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  SimTime period_;
  std::uint32_t batch_;
  std::uint32_t witnesses_;
  std::uint64_t lag_threshold_;
  bool piggyback_;

  NodeId self_ = kNoNode;
  std::uint64_t target_blocks_ = 0;
  std::uint64_t announced_height_ = 0;
  bool request_pending_ = false;
  std::uint64_t request_rotation_ = 0;
  /// Peers still owed the latest announce (piggyback mode).
  std::set<NodeId> unannounced_;
  /// Signed announce wire for `announce_wire_height_`: rebuilt once per
  /// height, reused for every peer it is sent or piggybacked to.
  Bytes announce_wire_;
  std::uint64_t announce_wire_height_ = 0;

  /// Latest announced finalized height per peer (gap detection).
  std::map<NodeId, std::uint64_t> peer_height_;
  /// Corroboration: distinct peers that vouched hash h at height H.
  std::map<std::uint64_t, std::map<crypto::Hash256, std::set<NodeId>>>
      witness_;

  std::uint64_t announces_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t adopted_ = 0;
  std::uint64_t piggybacked_ = 0;
};

}  // namespace ratcon::sync
