#pragma once

#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "net/event_queue.hpp"
#include "net/netmodel.hpp"
#include "net/stats.hpp"

namespace ratcon::net {

class Cluster;

/// Piggyback container marker (src/sync): a wire message whose first byte
/// is this value is `[marker][u32 LE inner_len][inner message][overhead]`
/// — a normal protocol message with catch-up metadata riding along. The
/// cluster's traffic stats attribute the inner message to its own class
/// and the tail to the overhead's class (bytes only, no message count),
/// so piggybacking never distorts per-protocol complexity measurements.
/// ProtoId values are small; 0xFF can never collide with a real header.
inline constexpr std::uint8_t kPiggybackMarker = 0xFF;
inline constexpr std::size_t kPiggybackHeader = 5;  ///< marker + u32 length

/// Handle protocol nodes use to talk to the simulated world. A fresh
/// context is passed into every callback; nodes never hold onto it.
/// `send`/`broadcast` are virtual so decorators (sync::CatchupDriver's
/// piggyback path) can wrap a node's outbound traffic without the node
/// knowing.
class Context {
 public:
  Context(Cluster& cluster, NodeId self) : cluster_(cluster), self_(self) {}
  virtual ~Context() = default;

  [[nodiscard]] SimTime now() const;
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] std::size_t cluster_size() const;

  /// Sends `data` to `to` through the network model (counted in stats).
  virtual void send(NodeId to, Bytes data);

  /// Sends to every node. Self-delivery is immediate and not counted as
  /// network traffic; the paper's "Broadcast" includes the sender's own
  /// message (e.g. view-change counts "including their own").
  virtual void broadcast(Bytes data);

  /// (Re)arms timer `timer_id`; a previous pending timer with the same id is
  /// superseded.
  void set_timer(std::uint64_t timer_id, SimTime delay);

  /// Cancels timer `timer_id` if pending.
  void cancel_timer(std::uint64_t timer_id);

  /// Per-node deterministic RNG stream.
  [[nodiscard]] Rng& rng();

 protected:
  /// Immediate, stats-free self-delivery (what broadcast does for the
  /// sender's own copy) — for decorating subclasses.
  void self_deliver(Bytes data);

 private:
  Cluster& cluster_;
  NodeId self_;
};

/// A protocol participant. Implementations are single-threaded state
/// machines driven by the cluster's event loop.
class INode {
 public:
  virtual ~INode() = default;

  /// Called once when the simulation starts.
  virtual void on_start(Context& ctx) { (void)ctx; }

  /// Called for every delivered message.
  virtual void on_message(Context& ctx, NodeId from, const Bytes& data) = 0;

  /// Called when a timer armed via Context::set_timer fires.
  virtual void on_timer(Context& ctx, std::uint64_t timer_id) {
    (void)ctx;
    (void)timer_id;
  }
};

/// The simulated deployment: n nodes + a network model + partitions +
/// crash faults, driven deterministically from one seed.
class Cluster {
 public:
  Cluster(std::unique_ptr<NetworkModel> net, std::uint64_t seed);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Registers a node; returns its id (assigned 0, 1, 2, ... in order).
  NodeId add_node(std::unique_ptr<INode> node);

  /// Calls on_start for every node (in id order).
  void start();

  // -- Execution -----------------------------------------------------------

  /// Runs a single event. Returns false when no events remain.
  bool step();

  /// Runs until virtual time passes `t` or the queue drains.
  void run_until(SimTime t);

  /// Runs for `d` more virtual time.
  void run_for(SimTime d) { run_until(now() + d); }

  /// Runs until the queue drains or `max_events` have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  [[nodiscard]] SimTime now() const { return queue_.now(); }
  /// Stable pointer to the virtual clock, for the flight recorder.
  [[nodiscard]] const SimTime* now_ptr() const { return queue_.now_ptr(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.pending(); }

  /// Timestamp of the next pending event (kSimTimeNever when the queue is
  /// empty). run_until does not advance the clock past the last processed
  /// event, so drive loops use this to distinguish "drained" from "the
  /// next event is far away".
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  // -- Faults & partitions --------------------------------------------------

  /// Crash-stops a node: it receives no further messages or timers.
  void crash(NodeId node);
  [[nodiscard]] bool crashed(NodeId node) const;

  /// Splits nodes into groups; messages between different groups are held
  /// until `heal_time` (then delivered within Δ). Nodes absent from every
  /// group communicate freely with everyone — the paper's partition attacks
  /// place the adversary in that position (reachable from both sides).
  void set_partition(const std::vector<std::vector<NodeId>>& groups,
                     SimTime heal_time);
  void clear_partition();

  // -- Introspection --------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] INode& node(NodeId id) { return *nodes_[id].impl; }
  [[nodiscard]] const INode& node(NodeId id) const { return *nodes_[id].impl; }
  [[nodiscard]] TrafficStats& stats() { return stats_; }
  [[nodiscard]] NetworkModel& net() { return *net_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedules an external event (workload injection, fault scripts).
  void schedule(SimTime delay, std::function<void()> fn) {
    queue_.schedule_in(delay, std::move(fn));
  }

  /// Observer invoked for every network send (time, from, to, proto, type,
  /// bytes) — used by the protocol-trace bench to reconstruct Figure 2a's
  /// message schedule.
  using SendTrace = std::function<void(SimTime, NodeId, NodeId, std::uint8_t,
                                       std::uint8_t, std::size_t)>;
  void set_send_trace(SendTrace trace) { trace_ = std::move(trace); }

 private:
  friend class Context;

  struct NodeSlot {
    std::unique_ptr<INode> impl;
    Rng rng{0};
    bool crashed = false;
    // Timer supersession: each (node, timer_id) keeps a generation; stale
    // timer events check the generation and no-op.
    std::map<std::uint64_t, std::uint64_t> timer_gen;
  };

  void deliver(NodeId from, NodeId to, Bytes data, bool count_stats);
  void arm_timer(NodeId node, std::uint64_t timer_id, SimTime delay);
  void disarm_timer(NodeId node, std::uint64_t timer_id);
  [[nodiscard]] SimTime delivery_time_for(NodeId from, NodeId to);
  [[nodiscard]] bool crosses_partition(NodeId a, NodeId b) const;

  EventQueue queue_;
  std::unique_ptr<NetworkModel> net_;
  Rng rng_;
  std::vector<NodeSlot> nodes_;
  TrafficStats stats_;
  SendTrace trace_;

  // Partition state: group index per node (-1 = ungrouped / adversary).
  std::vector<int> partition_group_;
  SimTime partition_heal_ = 0;
  bool partitioned_ = false;
};

}  // namespace ratcon::net
