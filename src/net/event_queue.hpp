#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace ratcon::net {

/// Deterministic discrete-event queue. Events fire in (time, insertion
/// sequence) order, so two runs with the same seed interleave identically.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (clamped to now).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` from now.
  void schedule_in(SimTime delay, Action action) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(action));
  }

  /// Pops and runs the next event. Returns false when the queue is empty.
  bool step();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Time of the next event, or kSimTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace ratcon::net
