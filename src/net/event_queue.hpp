#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"

namespace ratcon::net {

/// Deterministic discrete-event queue. Events fire in (time, insertion
/// sequence) order, so two runs with the same seed interleave identically.
///
/// The heap is an owned std::vector driven by std::push_heap/std::pop_heap —
/// the same algorithms std::priority_queue uses, so the ordering is
/// byte-identical to the previous implementation, but popping can legally
/// move the Event (priority_queue::top() only exposes a const&).
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (clamped to now; a past time
  /// counts kL3PastTimeClamps — deterministic scenarios must never hit it).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` from now (a negative delay clamps to 0 and
  /// counts kL3NegativeDelayClamps — same contract as schedule_at).
  void schedule_in(SimTime delay, Action action);

  /// Pops and runs the next event. Returns false when the queue is empty.
  bool step();

  [[nodiscard]] SimTime now() const { return now_; }
  /// Stable pointer to the virtual clock — the flight recorder stamps
  /// events through it without a per-emission queue call.
  [[nodiscard]] const SimTime* now_ptr() const { return &now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Time of the next event, or kSimTimeNever when empty.
  [[nodiscard]] SimTime next_time() const;

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void push(SimTime at, Action action);

  std::vector<Event> heap_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace ratcon::net
