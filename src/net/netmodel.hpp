#pragma once

#include <memory>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace ratcon::net {

/// Network delay model. Channels are reliable (paper §3.3): messages are
/// never lost or tampered with, only delayed. A model maps a send at `now`
/// to an absolute delivery time >= now.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// Absolute delivery time for a message from -> to sent at `now`.
  virtual SimTime delivery_time(NodeId from, NodeId to, SimTime now,
                                Rng& rng) = 0;

  /// Known synchrony bound Δ once the network is synchronous, used by
  /// protocols to parameterize timeouts. For asynchronous models this is a
  /// nominal value (protocols cannot rely on it, and the impossibility
  /// experiments exploit exactly that).
  [[nodiscard]] virtual SimTime delta() const = 0;

  /// Global Stabilization Time: 0 for synchronous networks,
  /// kSimTimeNever for asynchronous ones.
  [[nodiscard]] virtual SimTime gst() const = 0;
};

/// Synchronous network: every message arrives within a known bound Δ.
/// Delays are uniform in [Δ/5, Δ].
class SynchronousNet final : public NetworkModel {
 public:
  explicit SynchronousNet(SimTime delta);

  SimTime delivery_time(NodeId from, NodeId to, SimTime now, Rng& rng) override;
  [[nodiscard]] SimTime delta() const override { return delta_; }
  [[nodiscard]] SimTime gst() const override { return 0; }

 private:
  SimTime delta_;
};

/// Partially synchronous network (Dwork-Lynch-Stockmeyer): before GST the
/// adversary controls delays (modelled as holding messages until after GST
/// with probability `hold_probability`, else heavy random delay); after GST
/// every message arrives within Δ.
class PartialSynchronyNet final : public NetworkModel {
 public:
  PartialSynchronyNet(SimTime gst, SimTime delta,
                      double hold_probability = 1.0);

  SimTime delivery_time(NodeId from, NodeId to, SimTime now, Rng& rng) override;
  [[nodiscard]] SimTime delta() const override { return delta_; }
  [[nodiscard]] SimTime gst() const override { return gst_; }

 private:
  SimTime gst_;
  SimTime delta_;
  double hold_probability_;
};

/// Asynchronous network: no bound the protocol may rely on, but every delay
/// is finite (eventual delivery). Delays are exponential with the given
/// mean, capped at `max_delay`.
class AsynchronousNet final : public NetworkModel {
 public:
  AsynchronousNet(SimTime mean_delay, SimTime max_delay);

  SimTime delivery_time(NodeId from, NodeId to, SimTime now, Rng& rng) override;
  [[nodiscard]] SimTime delta() const override { return mean_delay_; }
  [[nodiscard]] SimTime gst() const override { return kSimTimeNever; }

 private:
  SimTime mean_delay_;
  SimTime max_delay_;
};

/// Convenience factories.
std::unique_ptr<NetworkModel> make_synchronous(SimTime delta);
std::unique_ptr<NetworkModel> make_partial_synchrony(SimTime gst,
                                                     SimTime delta,
                                                     double hold_probability);
std::unique_ptr<NetworkModel> make_asynchronous(SimTime mean_delay,
                                                SimTime max_delay);

}  // namespace ratcon::net
