#include "net/event_queue.hpp"

namespace ratcon::net {

void EventQueue::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;
  heap_.push(Event{at, seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the small fields and move the action through a temporary pop.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.at;
  ev.action();
  return true;
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kSimTimeNever : heap_.top().at;
}

}  // namespace ratcon::net
