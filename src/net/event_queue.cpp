#include "net/event_queue.hpp"

#include <algorithm>

#include "harness/profiler.hpp"

namespace ratcon::net {

using harness::ProfTimer;
using harness::prof_count;

void EventQueue::push(SimTime at, Action action) {
  ProfTimer timer(harness::kL1EventQueueNs, harness::kL2ScheduleNs);
  heap_.push_back(Event{at, seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  prof_count(harness::kL3EventsScheduled);
}

void EventQueue::schedule_at(SimTime at, Action action) {
  if (at < now_) {
    prof_count(harness::kL3PastTimeClamps);
    at = now_;
  }
  push(at, std::move(action));
}

void EventQueue::schedule_in(SimTime delay, Action action) {
  if (delay < 0) {
    prof_count(harness::kL3NegativeDelayClamps);
    delay = 0;
  }
  push(now_ + delay, std::move(action));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Event ev = [&] {
    ProfTimer timer(harness::kL1EventQueueNs, harness::kL2DispatchNs);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event popped = std::move(heap_.back());
    heap_.pop_back();
    return popped;
  }();
  now_ = ev.at;
  prof_count(harness::kL3EventsDispatched);
  ev.action();
  return true;
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kSimTimeNever : heap_.front().at;
}

}  // namespace ratcon::net
