#include "net/netmodel.hpp"

#include <algorithm>

namespace ratcon::net {

namespace {

/// Uniform delay in [delta/5, delta]: inside the synchrony bound with some
/// spread so message orderings vary across seeds.
SimTime sync_sample(SimTime delta, Rng& rng) {
  const SimTime lo = std::max<SimTime>(1, delta / 5);
  return static_cast<SimTime>(
      rng.uniform(static_cast<std::uint64_t>(lo),
                  static_cast<std::uint64_t>(std::max<SimTime>(lo, delta))));
}

}  // namespace

SynchronousNet::SynchronousNet(SimTime delta) : delta_(delta) {}

SimTime SynchronousNet::delivery_time(NodeId, NodeId, SimTime now, Rng& rng) {
  return now + sync_sample(delta_, rng);
}

PartialSynchronyNet::PartialSynchronyNet(SimTime gst, SimTime delta,
                                         double hold_probability)
    : gst_(gst), delta_(delta), hold_probability_(hold_probability) {}

SimTime PartialSynchronyNet::delivery_time(NodeId, NodeId, SimTime now,
                                           Rng& rng) {
  if (now >= gst_) {
    return now + sync_sample(delta_, rng);
  }
  if (rng.chance(hold_probability_)) {
    // Adversary holds the message until after GST; it then arrives within Δ.
    return gst_ + sync_sample(delta_, rng);
  }
  // Otherwise a heavy but pre-GST delay (still finite).
  const SimTime spread = std::max<SimTime>(delta_, (gst_ - now) / 2);
  return now + sync_sample(spread, rng);
}

AsynchronousNet::AsynchronousNet(SimTime mean_delay, SimTime max_delay)
    : mean_delay_(mean_delay), max_delay_(max_delay) {}

SimTime AsynchronousNet::delivery_time(NodeId, NodeId, SimTime now, Rng& rng) {
  const double d = rng.exponential(static_cast<double>(mean_delay_));
  const SimTime delay =
      std::clamp<SimTime>(static_cast<SimTime>(d), 1, max_delay_);
  return now + delay;
}

std::unique_ptr<NetworkModel> make_synchronous(SimTime delta) {
  return std::make_unique<SynchronousNet>(delta);
}

std::unique_ptr<NetworkModel> make_partial_synchrony(SimTime gst,
                                                     SimTime delta,
                                                     double hold_probability) {
  return std::make_unique<PartialSynchronyNet>(gst, delta, hold_probability);
}

std::unique_ptr<NetworkModel> make_asynchronous(SimTime mean_delay,
                                                SimTime max_delay) {
  return std::make_unique<AsynchronousNet>(mean_delay, max_delay);
}

}  // namespace ratcon::net
