#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace ratcon::net {

/// Count/byte totals for one message class.
struct MsgCounter {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Per-run network traffic accounting. Every wire message starts with a
/// [protocol id, message type] header, so the cluster can tally traffic per
/// message class without parsing payloads. Used to *measure* Figure 3's
/// message complexity and size columns rather than asserting formulas.
class TrafficStats {
 public:
  void record(std::uint8_t proto, std::uint8_t type, std::size_t bytes) {
    auto& c = per_type_[{proto, type}];
    c.count += 1;
    c.bytes += bytes;
    total_.count += 1;
    total_.bytes += bytes;
  }

  [[nodiscard]] const MsgCounter& total() const { return total_; }

  [[nodiscard]] MsgCounter for_type(std::uint8_t proto,
                                    std::uint8_t type) const {
    const auto it = per_type_.find({proto, type});
    return it == per_type_.end() ? MsgCounter{} : it->second;
  }

  /// Totals across every message type of one protocol class — e.g. a
  /// consensus protocol's own traffic, or the catch-up substrate's
  /// (ProtoId::kSync), without the other's.
  [[nodiscard]] MsgCounter for_proto(std::uint8_t proto) const {
    MsgCounter out;
    for (const auto& [key, counter] : per_type_) {
      if (key.first != proto) continue;
      out.count += counter.count;
      out.bytes += counter.bytes;
    }
    return out;
  }

  [[nodiscard]] const std::map<std::pair<std::uint8_t, std::uint8_t>,
                               MsgCounter>&
  per_type() const {
    return per_type_;
  }

  void reset() {
    per_type_.clear();
    total_ = MsgCounter{};
  }

 private:
  std::map<std::pair<std::uint8_t, std::uint8_t>, MsgCounter> per_type_;
  MsgCounter total_;
};

}  // namespace ratcon::net
