#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/ids.hpp"

namespace ratcon::net {

/// Count/byte totals for one message class.
struct MsgCounter {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Per-run network traffic accounting. Every wire message starts with a
/// [protocol id, message type] header, so the cluster can tally traffic per
/// message class without parsing payloads. Used to *measure* Figure 3's
/// message complexity and size columns rather than asserting formulas, and
/// — per sender — to charge the rational players' per-message costs in the
/// empirical payoff engine (src/rational).
class TrafficStats {
 public:
  void record(NodeId from, std::uint8_t proto, std::uint8_t type,
              std::size_t bytes) {
    record(proto, type, bytes);
    auto& s = per_sender_[from];
    s.count += 1;
    s.bytes += bytes;
    auto& sp = per_sender_proto_[{from, proto}];
    sp.count += 1;
    sp.bytes += bytes;
  }

  /// Sender-less form for direct/unit use; per-sender tallies unaffected.
  void record(std::uint8_t proto, std::uint8_t type, std::size_t bytes) {
    auto& c = per_type_[{proto, type}];
    c.count += 1;
    c.bytes += bytes;
    total_.count += 1;
    total_.bytes += bytes;
  }

  /// Overhead bytes that rode an existing message instead of being a send
  /// of their own (piggybacked catch-up announces): bytes are charged to
  /// the class, the message count is not.
  void record_overhead(NodeId from, std::uint8_t proto, std::uint8_t type,
                       std::size_t bytes) {
    per_type_[{proto, type}].bytes += bytes;
    total_.bytes += bytes;
    per_sender_[from].bytes += bytes;
    per_sender_proto_[{from, proto}].bytes += bytes;
  }

  [[nodiscard]] const MsgCounter& total() const { return total_; }

  [[nodiscard]] MsgCounter for_type(std::uint8_t proto,
                                    std::uint8_t type) const {
    const auto it = per_type_.find({proto, type});
    return it == per_type_.end() ? MsgCounter{} : it->second;
  }

  /// Totals across every message type of one protocol class — e.g. a
  /// consensus protocol's own traffic, or the catch-up substrate's
  /// (ProtoId::kSync), without the other's.
  [[nodiscard]] MsgCounter for_proto(std::uint8_t proto) const {
    MsgCounter out;
    for (const auto& [key, counter] : per_type_) {
      if (key.first != proto) continue;
      out.count += counter.count;
      out.bytes += counter.bytes;
    }
    return out;
  }

  /// Everything node `from` put on the wire (self-deliveries excluded, as
  /// they are not network traffic).
  [[nodiscard]] MsgCounter for_sender(NodeId from) const {
    const auto it = per_sender_.find(from);
    return it == per_sender_.end() ? MsgCounter{} : it->second;
  }

  /// Node `from`'s traffic in one protocol class.
  [[nodiscard]] MsgCounter for_sender_proto(NodeId from,
                                            std::uint8_t proto) const {
    const auto it = per_sender_proto_.find({from, proto});
    return it == per_sender_proto_.end() ? MsgCounter{} : it->second;
  }

  [[nodiscard]] const std::map<std::pair<std::uint8_t, std::uint8_t>,
                               MsgCounter>&
  per_type() const {
    return per_type_;
  }

  void reset() {
    per_type_.clear();
    per_sender_.clear();
    per_sender_proto_.clear();
    total_ = MsgCounter{};
  }

 private:
  std::map<std::pair<std::uint8_t, std::uint8_t>, MsgCounter> per_type_;
  std::map<NodeId, MsgCounter> per_sender_;
  std::map<std::pair<NodeId, std::uint8_t>, MsgCounter> per_sender_proto_;
  MsgCounter total_;
};

}  // namespace ratcon::net
