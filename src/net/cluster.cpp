#include "net/cluster.hpp"

#include <algorithm>
#include <cassert>

#include "harness/metrics.hpp"
#include "harness/trace.hpp"

namespace ratcon::net {

#if RATCON_TRACE_ENABLED
namespace {

/// Flight-recorder attribution for one wire buffer: piggyback containers
/// (src/sync) report their inner message's class, mirroring the traffic
/// stats, and the round rides at a fixed offset in the envelope header.
void emit_wire_trace(harness::TraceKind kind, NodeId node, NodeId peer,
                     const Bytes& data, std::uint64_t corr) {
  const std::uint8_t* hdr = data.data();
  std::size_t len = data.size();
  if (len >= kPiggybackHeader && hdr[0] == kPiggybackMarker) {
    const std::size_t inner_len = static_cast<std::size_t>(hdr[1]) |
                                  (static_cast<std::size_t>(hdr[2]) << 8) |
                                  (static_cast<std::size_t>(hdr[3]) << 16) |
                                  (static_cast<std::size_t>(hdr[4]) << 24);
    if (inner_len >= 2 && kPiggybackHeader + inner_len <= len) {
      hdr = data.data() + kPiggybackHeader;
      len = inner_len;
    }
  }
  if (len < 2) return;
  std::uint64_t round = 0;
  if (len >= 10) {
    for (int i = 0; i < 8; ++i) {
      round |= static_cast<std::uint64_t>(hdr[2 + i]) << (8 * i);
    }
  }
  harness::trace_wire(kind, node, peer, round, hdr[0], hdr[1], corr);
}

}  // namespace
#endif  // RATCON_TRACE_ENABLED

// ---------------------------------------------------------------------------
// Context

SimTime Context::now() const { return cluster_.now(); }

std::size_t Context::cluster_size() const { return cluster_.size(); }

void Context::send(NodeId to, Bytes data) {
  cluster_.deliver(self_, to, std::move(data), /*count_stats=*/true);
}

void Context::broadcast(Bytes data) {
  const std::size_t n = cluster_.size();
  for (NodeId to = 0; to < n; ++to) {
    if (to == self_) continue;
    cluster_.deliver(self_, to, data, /*count_stats=*/true);
  }
  // Self-delivery: immediate, not network traffic.
  cluster_.deliver(self_, self_, std::move(data), /*count_stats=*/false);
}

void Context::self_deliver(Bytes data) {
  cluster_.deliver(self_, self_, std::move(data), /*count_stats=*/false);
}

void Context::set_timer(std::uint64_t timer_id, SimTime delay) {
  cluster_.arm_timer(self_, timer_id, delay);
}

void Context::cancel_timer(std::uint64_t timer_id) {
  cluster_.disarm_timer(self_, timer_id);
}

Rng& Context::rng() { return cluster_.nodes_[self_].rng; }

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(std::unique_ptr<NetworkModel> net, std::uint64_t seed)
    : net_(std::move(net)), rng_(seed) {
  assert(net_ != nullptr);
}

Cluster::~Cluster() = default;

NodeId Cluster::add_node(std::unique_ptr<INode> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodeSlot slot;
  slot.impl = std::move(node);
  slot.rng = rng_.fork();
  nodes_.push_back(std::move(slot));
  partition_group_.push_back(-1);
  return id;
}

void Cluster::start() {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].crashed) continue;
    Context ctx(*this, id);
    nodes_[id].impl->on_start(ctx);
  }
}

bool Cluster::step() { return queue_.step(); }

void Cluster::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    queue_.step();
  }
}

std::size_t Cluster::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && queue_.step()) {
    ++executed;
  }
  return executed;
}

void Cluster::crash(NodeId node) { nodes_[node].crashed = true; }

bool Cluster::crashed(NodeId node) const { return nodes_[node].crashed; }

void Cluster::set_partition(const std::vector<std::vector<NodeId>>& groups,
                            SimTime heal_time) {
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) {
      partition_group_[id] = static_cast<int>(g);
    }
  }
  partition_heal_ = heal_time;
  partitioned_ = true;
}

void Cluster::clear_partition() {
  partitioned_ = false;
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
}

bool Cluster::crosses_partition(NodeId a, NodeId b) const {
  if (!partitioned_) return false;
  const int ga = partition_group_[a];
  const int gb = partition_group_[b];
  // Ungrouped nodes (the adversary's position in the paper's partition
  // arguments) reach and are reached by everyone.
  if (ga < 0 || gb < 0) return false;
  return ga != gb;
}

SimTime Cluster::delivery_time_for(NodeId from, NodeId to) {
  SimTime at = net_->delivery_time(from, to, now(), rng_);
  if (crosses_partition(from, to) && now() < partition_heal_) {
    // Held until the partition heals, then delivered within Δ.
    const SimTime post = net_->delivery_time(from, to, partition_heal_, rng_);
    at = std::max(at, post);
  }
  return at;
}

void Cluster::deliver(NodeId from, NodeId to, Bytes data, bool count_stats) {
  if (count_stats && data.size() >= 2) {
    // Piggyback containers: attribute the inner message to its own class
    // and the riding overhead to the overhead's class (bytes, no count).
    bool recorded = false;
    if (data[0] == kPiggybackMarker && data.size() >= kPiggybackHeader) {
      const std::size_t inner_len =
          static_cast<std::size_t>(data[1]) |
          (static_cast<std::size_t>(data[2]) << 8) |
          (static_cast<std::size_t>(data[3]) << 16) |
          (static_cast<std::size_t>(data[4]) << 24);
      const std::size_t tail_at = kPiggybackHeader + inner_len;
      if (inner_len >= 2 && tail_at + 2 <= data.size()) {
        const std::uint8_t* inner = data.data() + kPiggybackHeader;
        const std::uint8_t* tail = data.data() + tail_at;
        stats_.record(from, inner[0], inner[1], inner_len);
        stats_.record_overhead(from, tail[0], tail[1],
                               data.size() - inner_len);
        if (trace_) trace_(now(), from, to, inner[0], inner[1], inner_len);
        recorded = true;
      }
    }
    if (!recorded) {
      stats_.record(from, data[0], data[1], data.size());
      if (trace_) trace_(now(), from, to, data[0], data[1], data.size());
    }
  }
  // Flight recorder: the correlation id is the hash of the wire bytes, so
  // the send edge here and the receive edge in the delivery lambda agree
  // on it without any wire change (broadcasts share one id per payload).
  std::uint64_t corr = 0;
#if RATCON_TRACE_ENABLED
  if (count_stats && data.size() >= 2 &&
      harness::trace_on(harness::TraceKind::kSend)) {
    corr = harness::trace_corr(data.data(), data.size());
    emit_wire_trace(harness::TraceKind::kSend, from, to, data, corr);
  }
#endif
  // Metrics in-flight gauge: bytes go up at the send edge and come back
  // down when the message lands — or when it is dropped on a crashed
  // receiver (either way it left the wire). Self-deliveries are stats-free
  // and never count, mirroring the traffic stats.
  const bool metered = count_stats && harness::metrics_on();
  if (metered) harness::metrics_wire_sent(data.size());
  const SimTime at =
      (from == to) ? now() : delivery_time_for(from, to);
  queue_.schedule_at(at, [this, from, to, corr, metered,
                          msg = std::move(data)]() {
    if (metered) harness::metrics_wire_delivered(msg.size());
    if (nodes_[to].crashed) return;
#if RATCON_TRACE_ENABLED
    if (corr != 0 && harness::trace_on(harness::TraceKind::kRecv)) {
      emit_wire_trace(harness::TraceKind::kRecv, to, from, msg, corr);
    }
#else
    (void)corr;
#endif
    Context ctx(*this, to);
    nodes_[to].impl->on_message(ctx, from, msg);
  });
}

void Cluster::arm_timer(NodeId node, std::uint64_t timer_id, SimTime delay) {
  const std::uint64_t gen = ++nodes_[node].timer_gen[timer_id];
  queue_.schedule_in(delay, [this, node, timer_id, gen]() {
    NodeSlot& slot = nodes_[node];
    if (slot.crashed) return;
    const auto it = slot.timer_gen.find(timer_id);
    if (it == slot.timer_gen.end() || it->second != gen) return;  // superseded
    Context ctx(*this, node);
    slot.impl->on_timer(ctx, timer_id);
  });
}

void Cluster::disarm_timer(NodeId node, std::uint64_t timer_id) {
  ++nodes_[node].timer_gen[timer_id];
}

}  // namespace ratcon::net
