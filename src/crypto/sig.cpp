#include "crypto/sig.hpp"

#include "common/serialize.hpp"
#include "crypto/hmac.hpp"
#include "harness/profiler.hpp"

namespace ratcon::crypto {

namespace {

// Untimed core shared by sign() and verify() so a verification (which
// recomputes the HMAC) charges the crypto phase exactly once.
Signature sign_raw(const SecretKey& sk, ByteSpan message) {
  const Hash256 mac =
      hmac_sha256(ByteSpan(sk.bytes.data(), sk.bytes.size()), message);
  Signature sig;
  sig.bytes = mac;
  return sig;
}

}  // namespace

Signature sign(const SecretKey& sk, ByteSpan message) {
  harness::ProfTimer timer(harness::kL1CryptoNs, harness::kL2SignNs);
  return sign_raw(sk, message);
}

KeyPair KeyRegistry::generate(NodeId node, std::uint64_t seed) {
  Writer w;
  w.str("ratcon-keygen");
  w.u32(node);
  w.u64(seed);
  SecretKey sk;
  sk.bytes = sha256(ByteSpan(w.data().data(), w.data().size()));

  Writer wp;
  wp.str("ratcon-pubkey");
  wp.raw(ByteSpan(sk.bytes.data(), sk.bytes.size()));
  PublicKey pk;
  pk.bytes = sha256(ByteSpan(wp.data().data(), wp.data().size()));

  by_pk_[pk] = sk;
  by_node_[node] = pk;
  return KeyPair{pk, sk};
}

bool KeyRegistry::verify(const PublicKey& pk, ByteSpan message,
                         const Signature& sig) const {
  harness::ProfTimer timer(harness::kL1CryptoNs, harness::kL2VerifyNs);
  const auto it = by_pk_.find(pk);
  if (it == by_pk_.end()) return false;
  const Signature expected = sign_raw(it->second, message);
  return equal_bytes(ByteSpan(expected.bytes.data(), expected.bytes.size()),
                     ByteSpan(sig.bytes.data(), sig.bytes.size()));
}

PublicKey KeyRegistry::public_key(NodeId node) const {
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return PublicKey{};
  return it->second;
}

}  // namespace ratcon::crypto
