#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace ratcon::crypto {

/// 32-byte digest used for block hashes, message digests and signatures.
using Hash256 = std::array<std::uint8_t, 32>;

/// Streaming SHA-256 (FIPS 180-4), implemented from scratch — the simulator
/// has no external crypto dependency. Verified against NIST test vectors in
/// tests/crypto_test.cpp.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input. May be called any number of times.
  void update(ByteSpan data);

  /// Finalizes and returns the digest. The object must not be reused after.
  Hash256 finish();

  /// One-shot convenience.
  static Hash256 digest(ByteSpan data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot digest of a byte span.
Hash256 sha256(ByteSpan data);

/// One-shot digest of a string.
Hash256 sha256(std::string_view data);

/// Hex encoding of a digest.
std::string hash_hex(const Hash256& h);

/// All-zero hash, used as the genesis parent pointer and the paper's
/// ⊥ (bottom) value in the Vote phase.
inline constexpr Hash256 kZeroHash{};

/// Combines two hashes (Merkle interior nodes, chained digests).
Hash256 hash_pair(const Hash256& a, const Hash256& b);

/// Cheap well-distributed 64-bit key for unordered containers.
std::uint64_t hash_prefix64(const Hash256& h);

}  // namespace ratcon::crypto
