#pragma once

#include "crypto/sha256.hpp"

namespace ratcon::crypto {

/// HMAC-SHA256 (RFC 2104), verified against RFC 4231 vectors. Used by the
/// simulation signature scheme: sig = HMAC(sk, message).
Hash256 hmac_sha256(ByteSpan key, ByteSpan message);

}  // namespace ratcon::crypto
