#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/sha256.hpp"

namespace ratcon::crypto {

/// Public verification key (32 bytes). Distributed through the trusted
/// broadcast setup (paper §3.3) before the protocol starts.
struct PublicKey {
  std::array<std::uint8_t, 32> bytes{};
  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// Secret signing key. Held only by its owner node; the verification API
/// never exposes it, so signatures are unforgeable *by construction* inside
/// the simulation (see DESIGN.md §1 for the substitution rationale).
struct SecretKey {
  std::array<std::uint8_t, 32> bytes{};
};

/// Signature: HMAC-SHA256(sk, message). 32 bytes = the security parameter κ
/// in the paper's message-size accounting (Figure 3).
struct Signature {
  std::array<std::uint8_t, 32> bytes{};
  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Size in bytes of one signature — the κ used when measuring message sizes.
inline constexpr std::size_t kSignatureSize = sizeof(Signature::bytes);

struct KeyPair {
  PublicKey pk;
  SecretKey sk;
};

/// Signs `message` with `sk`. Deterministic.
Signature sign(const SecretKey& sk, ByteSpan message);

/// Trusted PKI setup (paper §3.3): every player's public key is registered
/// before the protocol starts and any signed message is verified against it.
///
/// Verification recomputes the HMAC under the registered key, but the
/// registry only answers verify() queries — adversary code cannot extract
/// another player's secret key through this interface, which models
/// existential unforgeability exactly.
class KeyRegistry {
 public:
  /// Deterministically generates and registers a key pair for `node` from
  /// `seed`. Returns the pair; the caller (the node) keeps the secret key.
  KeyPair generate(NodeId node, std::uint64_t seed);

  /// Verifies `sig` over `message` under `pk`. Unknown keys verify false.
  [[nodiscard]] bool verify(const PublicKey& pk, ByteSpan message,
                            const Signature& sig) const;

  /// Public key registered for `node`, or a zero key if none.
  [[nodiscard]] PublicKey public_key(NodeId node) const;

  /// Number of registered keys.
  [[nodiscard]] std::size_t size() const { return by_pk_.size(); }

 private:
  struct PkHasher {
    std::size_t operator()(const PublicKey& pk) const {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(pk.bytes[i]) << (8 * i);
      }
      return static_cast<std::size_t>(v);
    }
  };

  std::unordered_map<PublicKey, SecretKey, PkHasher> by_pk_;
  std::unordered_map<NodeId, PublicKey> by_node_;
};

}  // namespace ratcon::crypto
