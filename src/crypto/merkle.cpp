#include "crypto/merkle.hpp"

#include <stdexcept>

#include "harness/profiler.hpp"

namespace ratcon::crypto {

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : leaves_(std::move(leaves)) {
  harness::ProfTimer timer(harness::kL1MerkleNs, harness::kL2MerkleBuildNs);
  harness::prof_count(harness::kL3MerkleLeaves,
                      static_cast<double>(leaves_.size()));
  if (leaves_.empty()) {
    root_ = kZeroHash;
    return;
  }
  levels_.push_back(leaves_);
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Hash256> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      const Hash256& left = below[i];
      const Hash256& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      above.push_back(hash_pair(left, right));
    }
    levels_.push_back(std::move(above));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::uint64_t index) const {
  harness::ProfTimer timer(harness::kL1MerkleNs, harness::kL2MerkleProveNs);
  if (index >= leaves_.size()) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  std::size_t pos = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    const std::size_t sibling =
        (pos % 2 == 0) ? std::min(pos + 1, nodes.size() - 1) : pos - 1;
    proof.path.push_back(MerkleStep{nodes[sibling], pos % 2 == 1});
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, const MerkleProof& proof,
                        const Hash256& root) {
  harness::ProfTimer timer(harness::kL1MerkleNs, harness::kL2MerkleVerifyNs);
  Hash256 running = leaf;
  for (const MerkleStep& step : proof.path) {
    running = step.sibling_is_left ? hash_pair(step.sibling, running)
                                   : hash_pair(running, step.sibling);
  }
  return running == root;
}

Hash256 MerkleTree::compute_root(const std::vector<Hash256>& leaves) {
  harness::ProfTimer timer(harness::kL1MerkleNs, harness::kL2MerkleBuildNs);
  harness::prof_count(harness::kL3MerkleLeaves,
                      static_cast<double>(leaves.size()));
  if (leaves.empty()) return kZeroHash;
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) {
    std::vector<Hash256> above;
    above.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      const Hash256& left = level[i];
      const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      above.push_back(hash_pair(left, right));
    }
    level = std::move(above);
  }
  return level.front();
}

}  // namespace ratcon::crypto
