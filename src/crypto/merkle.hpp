#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.hpp"

namespace ratcon::crypto {

/// One step of a Merkle inclusion proof: the sibling hash and whether the
/// sibling sits on the left of the running hash.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

/// Merkle inclusion proof for one leaf.
struct MerkleProof {
  std::uint64_t leaf_index = 0;
  std::vector<MerkleStep> path;
};

/// Binary Merkle tree over pre-hashed leaves. Odd nodes are paired with
/// themselves (Bitcoin-style duplication). Blocks commit to their
/// transaction set through the root.
class MerkleTree {
 public:
  /// Builds the tree. An empty leaf set yields the all-zero root.
  explicit MerkleTree(std::vector<Hash256> leaves);

  [[nodiscard]] const Hash256& root() const { return root_; }
  [[nodiscard]] std::size_t leaf_count() const { return leaves_.size(); }

  /// Inclusion proof for leaf `index`. Requires index < leaf_count().
  [[nodiscard]] MerkleProof prove(std::uint64_t index) const;

  /// Verifies `leaf` against `root` using `proof`.
  static bool verify(const Hash256& leaf, const MerkleProof& proof,
                     const Hash256& root);

  /// Computes only the root without keeping the interior levels.
  static Hash256 compute_root(const std::vector<Hash256>& leaves);

 private:
  std::vector<Hash256> leaves_;
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaves
  Hash256 root_ = kZeroHash;
};

}  // namespace ratcon::crypto
