#include "crypto/hmac.hpp"

#include <cstring>

#include "harness/profiler.hpp"

namespace ratcon::crypto {

Hash256 hmac_sha256(ByteSpan key, ByteSpan message) {
  harness::prof_count(harness::kL3HmacCalls);
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock] = {};

  if (key.size() > kBlock) {
    const Hash256 kh = sha256(key);
    std::memcpy(key_block, kh.data(), kh.size());
  } else {
    if (!key.empty()) std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock];
  std::uint8_t opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ByteSpan(ipad, kBlock));
  inner.update(message);
  const Hash256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteSpan(opad, kBlock));
  outer.update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace ratcon::crypto
