#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "consensus/types.hpp"
#include "crypto/sig.hpp"

namespace ratcon::consensus {

/// Protocol phase a signature binds to. Signing domain-separates on
/// (protocol, phase, round, value), so a signature from one phase or round
/// can never be replayed in another (paper §5.1 footnote 11).
enum class PhaseTag : std::uint8_t {
  kPropose = 0,
  kVote = 1,
  kCommit = 2,
  kReveal = 3,
  kFinal = 4,
  kViewChange = 5,
  kCommitView = 6,
  // Baseline-protocol phases reuse the same fraud machinery.
  kPrepare = 7,
  kPreCommit = 8,
  kDecide = 9,
};

const char* to_string(PhaseTag tag);

/// A player's signature within a phase. The pair (signer, sig) is the unit
/// certificates and Proofs-of-Fraud are made of.
struct PhaseSig {
  NodeId signer = kNoNode;
  crypto::Signature sig;

  void encode(Writer& w) const;
  static PhaseSig decode(Reader& r);

  friend bool operator==(const PhaseSig&, const PhaseSig&) = default;
};

/// Canonical bytes signed for (proto, phase, round, value).
Bytes phase_sign_payload(ProtoId proto, PhaseTag phase, Round round,
                         const crypto::Hash256& value);

/// Signs a phase/value binding.
PhaseSig sign_phase(ProtoId proto, PhaseTag phase, Round round,
                    const crypto::Hash256& value, NodeId signer,
                    const crypto::SecretKey& sk);

/// Verifies a phase/value binding against the trusted-setup registry.
bool verify_phase(ProtoId proto, PhaseTag phase, Round round,
                  const crypto::Hash256& value, const PhaseSig& ps,
                  const crypto::KeyRegistry& registry);

/// A fully-specified signed statement "signer endorsed `value` in
/// (proto, phase, round)" — self-contained, so it can travel inside
/// certificates and fraud proofs.
struct SignedValue {
  PhaseTag phase = PhaseTag::kVote;
  Round round = 0;
  crypto::Hash256 value{};
  PhaseSig ps;

  void encode(Writer& w) const;
  static SignedValue decode(Reader& r);

  [[nodiscard]] bool verify(ProtoId proto,
                            const crypto::KeyRegistry& registry) const {
    return verify_phase(proto, phase, round, value, ps, registry);
  }

  friend bool operator==(const SignedValue&, const SignedValue&) = default;
};

/// A quorum certificate: >= quorum distinct-signer signatures on the same
/// (phase, round, value). This is the `V_i` / `W_i` set in pRFT's Commit and
/// Reveal messages.
struct Certificate {
  PhaseTag phase = PhaseTag::kVote;
  Round round = 0;
  crypto::Hash256 value{};
  std::vector<PhaseSig> sigs;

  void encode(Writer& w) const;
  static Certificate decode(Reader& r);

  /// Checks distinct signers, a count >= `quorum`, and every signature.
  [[nodiscard]] bool verify(ProtoId proto, std::uint32_t quorum,
                            const crypto::KeyRegistry& registry) const;

  /// The statements contained in this certificate (for fraud scanning).
  [[nodiscard]] std::vector<SignedValue> statements() const;
};

}  // namespace ratcon::consensus
