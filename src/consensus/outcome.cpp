#include "consensus/outcome.hpp"

#include <algorithm>

namespace ratcon::consensus {

bool any_fork(const std::vector<const ledger::Chain*>& honest_chains) {
  for (std::size_t i = 0; i < honest_chains.size(); ++i) {
    for (std::size_t j = i + 1; j < honest_chains.size(); ++j) {
      if (ledger::chains_conflict(*honest_chains[i], *honest_chains[j])) {
        return true;
      }
    }
  }
  return false;
}

std::uint64_t max_finalized_height(
    const std::vector<const ledger::Chain*>& honest_chains) {
  std::uint64_t best = 0;
  for (const ledger::Chain* c : honest_chains) {
    best = std::max(best, c->finalized_height());
  }
  return best;
}

std::uint64_t min_finalized_height(
    const std::vector<const ledger::Chain*>& honest_chains) {
  if (honest_chains.empty()) return 0;
  std::uint64_t worst = honest_chains.front()->finalized_height();
  for (const ledger::Chain* c : honest_chains) {
    worst = std::min(worst, c->finalized_height());
  }
  return worst;
}

game::SystemState classify_outcome(const OutcomeQuery& query) {
  if (any_fork(query.honest_chains)) {
    return game::SystemState::kFork;
  }
  const std::uint64_t progressed_to =
      max_finalized_height(query.honest_chains);
  if (progressed_to <= query.baseline_height) {
    return game::SystemState::kNoProgress;
  }
  if (query.watched_tx.has_value()) {
    bool included = false;
    for (const ledger::Chain* c : query.honest_chains) {
      if (c->finalized_contains_tx(*query.watched_tx)) {
        included = true;
        break;
      }
    }
    if (!included) return game::SystemState::kCensorship;
  }
  return game::SystemState::kHonest;
}

}  // namespace ratcon::consensus
