#pragma once

#include <vector>

#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "net/cluster.hpp"

namespace ratcon::consensus {

/// Common interface every protocol replica implements on top of the
/// simulated network node, so the experiment harness can submit workload
/// and classify outcomes uniformly across pRFT and all baselines.
class IReplica : public net::INode {
 public:
  /// The replica's local ledger C_i.
  [[nodiscard]] virtual const ledger::Chain& chain() const = 0;

  /// Mutable access to the same ledger, for harness instrumentation (the
  /// workload engine installs a finalize observer). The default forwards
  /// to chain(), which is correct for every replica that owns its chain —
  /// decorators that delegate chain() inherit the right behaviour too.
  [[nodiscard]] virtual ledger::Chain& chain_mut() {
    return const_cast<ledger::Chain&>(chain());
  }

  /// Pending-transaction pool (harness injects workload here).
  virtual ledger::Mempool& mempool() = 0;

  /// Whether this replica runs the honest protocol π_0 (outcome
  /// classification only inspects honest replicas' ledgers).
  [[nodiscard]] virtual bool is_honest() const = 0;

  /// The round/term/view the replica currently participates in — the
  /// uniform progress gauge the metrics timelines sample. 0 when the
  /// protocol has no such counter (the default).
  [[nodiscard]] virtual Round current_round() const { return 0; }

  /// Stops initiating new work once this many blocks are final (the
  /// harness's run budget). 0 = unlimited. The Simulation applies this
  /// uniformly to every replica, however it was built.
  virtual void set_target_blocks(std::uint64_t target) = 0;

  /// Catch-up integration hook (src/sync): adopt a verified run of
  /// *finalized* blocks `blocks[0..]` occupying heights
  /// `first_height .. first_height + blocks.size() - 1`. The caller
  /// (CatchupDriver) has already checked hash-chain linkage against this
  /// replica's finalized tip, the batch's Merkle anchor, and witness
  /// corroboration; the replica splices the blocks into its ledger and
  /// reconciles protocol state (locks, ballots, round/term counters) so it
  /// resumes participation at the new frontier. Returns true when the
  /// blocks were adopted. The default declines (protocols opt in).
  virtual bool on_sync_adopt(net::Context& ctx,
                             const std::vector<ledger::Block>& blocks,
                             std::uint64_t first_height) {
    (void)ctx;
    (void)blocks;
    (void)first_height;
    return false;
  }
};

}  // namespace ratcon::consensus
