#pragma once

#include "ledger/chain.hpp"
#include "ledger/mempool.hpp"
#include "net/cluster.hpp"

namespace ratcon::consensus {

/// Common interface every protocol replica implements on top of the
/// simulated network node, so the experiment harness can submit workload
/// and classify outcomes uniformly across pRFT and all baselines.
class IReplica : public net::INode {
 public:
  /// The replica's local ledger C_i.
  [[nodiscard]] virtual const ledger::Chain& chain() const = 0;

  /// Pending-transaction pool (harness injects workload here).
  virtual ledger::Mempool& mempool() = 0;

  /// Whether this replica runs the honest protocol π_0 (outcome
  /// classification only inspects honest replicas' ledgers).
  [[nodiscard]] virtual bool is_honest() const = 0;

  /// Stops initiating new work once this many blocks are final (the
  /// harness's run budget). 0 = unlimited. The Simulation applies this
  /// uniformly to every replica, however it was built.
  virtual void set_target_blocks(std::uint64_t target) = 0;
};

}  // namespace ratcon::consensus
