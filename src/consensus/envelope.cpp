#include "consensus/envelope.hpp"

#include "crypto/sha256.hpp"
#include "harness/profiler.hpp"

namespace ratcon::consensus {

using harness::ProfTimer;
using harness::prof_count;

const crypto::Hash256& Envelope::body_digest() const {
  if (digest_valid_) {
    prof_count(harness::kL3DigestCacheHits);
    return digest_;
  }
  prof_count(harness::kL3DigestCacheMisses);
  digest_ = crypto::sha256(ByteSpan(body_.data(), body_.size()));
  digest_valid_ = true;
  return digest_;
}

Bytes Envelope::encode() const {
  ProfTimer timer(harness::kL1SerializeNs, harness::kL2EncodeNs);
  Writer w;
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(type);
  w.u64(round);
  w.u32(from);
  w.bytes(body_);
  w.raw(ByteSpan(sig.bytes.data(), sig.bytes.size()));
  Bytes out = w.take();
  prof_count(harness::kL3BytesEncoded, static_cast<double>(out.size()));
  return out;
}

Envelope Envelope::decode(ByteSpan wire) {
  ProfTimer timer(harness::kL1SerializeNs, harness::kL2DecodeNs);
  Reader r(wire);
  Envelope env;
  env.proto = static_cast<ProtoId>(r.u8());
  env.type = r.u8();
  env.round = r.u64();
  env.from = r.u32();
  env.body_ = r.bytes();
  r.raw_into(env.sig.bytes.data(), env.sig.bytes.size());
  r.expect_done();
  prof_count(harness::kL3BytesDecoded, static_cast<double>(wire.size()));
  return env;
}

Bytes Envelope::signing_payload() const {
  Writer w;
  w.str("ratcon-envelope");
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(type);
  w.u64(round);
  w.u32(from);
  const crypto::Hash256& body_hash = body_digest();
  w.raw(ByteSpan(body_hash.data(), body_hash.size()));
  return w.take();
}

Envelope make_envelope(ProtoId proto, std::uint8_t type, Round round,
                       NodeId from, Bytes body, const crypto::SecretKey& sk) {
  Envelope env;
  env.proto = proto;
  env.type = type;
  env.round = round;
  env.from = from;
  env.set_body(std::move(body));
  const Bytes payload = env.signing_payload();
  env.sig = crypto::sign(sk, ByteSpan(payload.data(), payload.size()));
  prof_count(harness::kL3EnvelopesSigned);
  return env;
}

bool verify_envelope(const Envelope& env,
                     const crypto::KeyRegistry& registry) {
  const Bytes payload = env.signing_payload();
  const crypto::PublicKey pk = registry.public_key(env.from);
  prof_count(harness::kL3EnvelopesVerified);
  return registry.verify(pk, ByteSpan(payload.data(), payload.size()),
                         env.sig);
}

}  // namespace ratcon::consensus
