#include "consensus/envelope.hpp"

#include "common/pool.hpp"
#include "crypto/sha256.hpp"
#include "harness/profiler.hpp"

namespace ratcon::consensus {

using harness::ProfTimer;
using harness::prof_count;

namespace {

// Little-endian loads at fixed offsets (the wire is byte-addressed; no
// alignment assumption).
std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// Canonical signing bytes for an envelope header + body digest. Appended
// by hand so pooled buffers can be reused; the layout must stay
// byte-identical to the historical Writer-built payload
// (str "ratcon-envelope", u8 proto, u8 type, u64 round, u32 from, digest).
void append_signing_payload(Bytes& out, ProtoId proto, std::uint8_t type,
                            Round round, NodeId from,
                            const crypto::Hash256& digest) {
  static constexpr char kDomain[] = "ratcon-envelope";
  static constexpr std::uint32_t kDomainLen = sizeof(kDomain) - 1;
  out.reserve(out.size() + 4 + kDomainLen + 1 + 1 + 8 + 4 + digest.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(kDomainLen >> (8 * i)));
  }
  out.insert(out.end(), kDomain, kDomain + kDomainLen);
  out.push_back(static_cast<std::uint8_t>(proto));
  out.push_back(type);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(round >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(from >> (8 * i)));
  }
  out.insert(out.end(), digest.begin(), digest.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// WireView — the zero-copy decode path

WireView WireView::parse(ByteSpan wire, std::size_t max_body) {
  ProfTimer timer(harness::kL1SerializeNs, harness::kL2DecodeNs);
  if (wire.size() < kWireMinSize) {
    throw CodecError("WireView: wire shorter than fixed envelope layout");
  }
  const std::size_t body_len = load_u32(wire.data() + 14);
  if (body_len > max_body) {
    throw CodecError("WireView: body length exceeds per-call cap");
  }
  // The body length must account for the buffer exactly: anything shorter
  // is truncation, anything longer is trailing garbage. This is the
  // fixed-layout equivalent of Reader::expect_done().
  if (body_len != wire.size() - kWireMinSize) {
    throw CodecError("WireView: body length disagrees with wire size");
  }
  WireView v;
  v.proto = static_cast<ProtoId>(wire[0]);
  v.type = wire[1];
  v.round = load_u64(wire.data() + 2);
  v.from = load_u32(wire.data() + 10);
  v.wire_ = wire;
  v.body_ = wire.subspan(kWireHeaderSize, body_len);
  prof_count(harness::kL3BytesDecoded, static_cast<double>(wire.size()));
  prof_count(harness::kL3ZeroCopyDecodes);
  return v;
}

crypto::Signature WireView::signature() const {
  crypto::Signature sig;
  const std::uint8_t* tail = wire_.data() + wire_.size() - sig.bytes.size();
  std::copy(tail, tail + sig.bytes.size(), sig.bytes.begin());
  return sig;
}

crypto::Hash256 WireView::body_digest() const {
  return crypto::sha256(body_);
}

void WireView::signing_payload_into(Bytes& out) const {
  out.clear();
  append_signing_payload(out, proto, type, round, from, body_digest());
}

Envelope WireView::to_envelope() const {
  Envelope env;
  env.proto = proto;
  env.type = type;
  env.round = round;
  env.from = from;
  env.sig = signature();
  env.body_.assign(body_.begin(), body_.end());
  prof_count(harness::kL3OwningDecodes);
  prof_count(harness::kL3BodyBytesCopied, static_cast<double>(body_.size()));
  return env;
}

// ---------------------------------------------------------------------------
// Envelope — the owning encode/sign side

const crypto::Hash256& Envelope::body_digest() const {
  if (digest_valid_) {
    prof_count(harness::kL3DigestCacheHits);
    return digest_;
  }
  prof_count(harness::kL3DigestCacheMisses);
  digest_ = crypto::sha256(ByteSpan(body_.data(), body_.size()));
  digest_valid_ = true;
  return digest_;
}

Bytes Envelope::encode() const {
  ProfTimer timer(harness::kL1SerializeNs, harness::kL2EncodeNs);
  Writer w;
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(type);
  w.u64(round);
  w.u32(from);
  w.bytes(body_);
  w.raw(ByteSpan(sig.bytes.data(), sig.bytes.size()));
  Bytes out = w.take();
  prof_count(harness::kL3BytesEncoded, static_cast<double>(out.size()));
  return out;
}

Envelope Envelope::decode(ByteSpan wire, std::size_t max_body) {
  // Structural validation is shared with the zero-copy path; the body copy
  // happens only after every length check has passed.
  return WireView::parse(wire, max_body).to_envelope();
}

Bytes Envelope::signing_payload() const {
  Bytes out;
  append_signing_payload(out, proto, type, round, from, body_digest());
  return out;
}

Envelope make_envelope(ProtoId proto, std::uint8_t type, Round round,
                       NodeId from, Bytes body, const crypto::SecretKey& sk) {
  Envelope env;
  env.proto = proto;
  env.type = type;
  env.round = round;
  env.from = from;
  env.set_body(std::move(body));
  auto scratch = BytePool::local().lease();
  prof_count(scratch.reused() ? harness::kL3ScratchReuses
                              : harness::kL3ScratchMisses);
  Bytes& payload = scratch.get();
  append_signing_payload(payload, proto, type, round, from,
                         env.body_digest());
  env.sig = crypto::sign(sk, ByteSpan(payload.data(), payload.size()));
  prof_count(harness::kL3EnvelopesSigned);
  return env;
}

bool verify_envelope(const Envelope& env,
                     const crypto::KeyRegistry& registry) {
  auto scratch = BytePool::local().lease();
  prof_count(scratch.reused() ? harness::kL3ScratchReuses
                              : harness::kL3ScratchMisses);
  Bytes& payload = scratch.get();
  append_signing_payload(payload, env.proto, env.type, env.round, env.from,
                         env.body_digest());
  const crypto::PublicKey pk = registry.public_key(env.from);
  prof_count(harness::kL3EnvelopesVerified);
  return registry.verify(pk, ByteSpan(payload.data(), payload.size()),
                         env.sig);
}

bool verify_wire(const WireView& view, const crypto::KeyRegistry& registry) {
  auto scratch = BytePool::local().lease();
  prof_count(scratch.reused() ? harness::kL3ScratchReuses
                              : harness::kL3ScratchMisses);
  Bytes& payload = scratch.get();
  append_signing_payload(payload, view.proto, view.type, view.round,
                         view.from, view.body_digest());
  const crypto::PublicKey pk = registry.public_key(view.from);
  prof_count(harness::kL3EnvelopesVerified);
  return registry.verify(pk, ByteSpan(payload.data(), payload.size()),
                         view.signature());
}

}  // namespace ratcon::consensus
