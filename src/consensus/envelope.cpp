#include "consensus/envelope.hpp"

#include "crypto/sha256.hpp"

namespace ratcon::consensus {

Bytes Envelope::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(type);
  w.u64(round);
  w.u32(from);
  w.bytes(body);
  w.raw(ByteSpan(sig.bytes.data(), sig.bytes.size()));
  return w.take();
}

Envelope Envelope::decode(ByteSpan wire) {
  Reader r(wire);
  Envelope env;
  env.proto = static_cast<ProtoId>(r.u8());
  env.type = r.u8();
  env.round = r.u64();
  env.from = r.u32();
  env.body = r.bytes();
  r.raw_into(env.sig.bytes.data(), env.sig.bytes.size());
  r.expect_done();
  return env;
}

Bytes Envelope::signing_payload() const {
  Writer w;
  w.str("ratcon-envelope");
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(type);
  w.u64(round);
  w.u32(from);
  const crypto::Hash256 body_hash =
      crypto::sha256(ByteSpan(body.data(), body.size()));
  w.raw(ByteSpan(body_hash.data(), body_hash.size()));
  return w.take();
}

Envelope make_envelope(ProtoId proto, std::uint8_t type, Round round,
                       NodeId from, Bytes body, const crypto::SecretKey& sk) {
  Envelope env;
  env.proto = proto;
  env.type = type;
  env.round = round;
  env.from = from;
  env.body = std::move(body);
  const Bytes payload = env.signing_payload();
  env.sig = crypto::sign(sk, ByteSpan(payload.data(), payload.size()));
  return env;
}

bool verify_envelope(const Envelope& env,
                     const crypto::KeyRegistry& registry) {
  const Bytes payload = env.signing_payload();
  const crypto::PublicKey pk = registry.public_key(env.from);
  return registry.verify(pk, ByteSpan(payload.data(), payload.size()),
                         env.sig);
}

}  // namespace ratcon::consensus
