#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "game/utility.hpp"
#include "ledger/chain.hpp"

namespace ratcon::consensus {

/// Inputs to system-state classification for one observation window.
struct OutcomeQuery {
  /// Honest players' ledgers (only these matter per Definition 1).
  std::vector<const ledger::Chain*> honest_chains;

  /// Finalized height at the start of the window; progress means some
  /// honest player got beyond it.
  std::uint64_t baseline_height = 0;

  /// A watched transaction that every honest player had as input (the
  /// censorship probe tx_h from Theorem 2's proof); nullopt disables the
  /// σ_CP check.
  std::optional<std::uint64_t> watched_tx;
};

/// Classifies the window into the paper's system state σ (§4.1.1):
///  - σ_Fork  if two honest ledgers finalize different blocks at a height;
///  - σ_NP    if no honest ledger made progress;
///  - σ_CP    if progress happened but the watched tx is still excluded
///            from every honest finalized ledger;
///  - σ_0     otherwise.
/// Fork dominates the other classifications (it is the worst state and the
/// one θ=1 players are paid for).
game::SystemState classify_outcome(const OutcomeQuery& query);

/// True when any two honest chains finalize conflicting blocks.
bool any_fork(const std::vector<const ledger::Chain*>& honest_chains);

/// Largest finalized height among honest chains (0 when empty).
std::uint64_t max_finalized_height(
    const std::vector<const ledger::Chain*>& honest_chains);

/// Smallest finalized height among honest chains (0 when empty).
std::uint64_t min_finalized_height(
    const std::vector<const ledger::Chain*>& honest_chains);

}  // namespace ratcon::consensus
