#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "consensus/phase_sig.hpp"

namespace ratcon::consensus {

/// Proof-of-Fraud for one player: two valid signatures by the same signer
/// on *different* values in the same (protocol, phase, round) — exactly the
/// "conflicting signatures" of paper §3.4 / Appendix G. Self-contained and
/// verifiable by anyone holding the trusted-setup key registry.
struct ConflictPair {
  PhaseTag phase = PhaseTag::kCommit;
  Round round = 0;
  crypto::Hash256 value_a{};
  crypto::Hash256 value_b{};
  PhaseSig sig_a;  ///< signer's signature over value_a
  PhaseSig sig_b;  ///< same signer's signature over value_b

  [[nodiscard]] NodeId guilty() const { return sig_a.signer; }

  /// Verifies the pair: same signer, distinct values, both signatures
  /// valid for (proto, phase, round, value).
  [[nodiscard]] bool verify(ProtoId proto,
                            const crypto::KeyRegistry& registry) const;

  void encode(Writer& w) const;
  static ConflictPair decode(Reader& r);
};

/// The PoF set D_i a player accumulates in pRFT's Reveal phase.
using FraudSet = std::vector<ConflictPair>;

void encode_fraud_set(Writer& w, const FraudSet& set);
FraudSet decode_fraud_set(Reader& r);

/// Definition 6's verification algorithm V(π): filters `proofs` to the
/// valid ones and returns the set of distinct guilty players. A protocol
/// provides accountability when |V(π)| >= t0 + 1 after disagreement.
std::set<NodeId> verify_fraud_proofs(ProtoId proto, const FraudSet& proofs,
                                     const crypto::KeyRegistry& registry);

/// Incremental double-sign detector. Players feed every signed statement
/// they observe (their own Recv path verifies signatures first); the
/// tracker indexes by (phase, round, signer) and yields a ConflictPair the
/// moment a second distinct value shows up.
///
/// `construct_proof` below is the batch form matching Figure 4's
/// ConstructProof(M, t0) pseudocode; protocols use the incremental tracker
/// for efficiency and the tests cross-check the two against each other.
class FraudTracker {
 public:
  /// Records `sv`; returns a fresh proof if this observation creates one
  /// (first conflict only, per guilty player).
  std::optional<ConflictPair> observe(const SignedValue& sv);

  /// Records every statement in a certificate.
  void observe_all(const std::vector<SignedValue>& svs);

  /// One proof per guilty player discovered so far.
  [[nodiscard]] const std::map<NodeId, ConflictPair>& proofs() const {
    return proofs_;
  }

  [[nodiscard]] std::size_t guilty_count() const { return proofs_.size(); }

  /// The D_i set (Figure 1, line 26): all accumulated proofs.
  [[nodiscard]] FraudSet fraud_set() const;

 private:
  struct Key {
    std::uint8_t phase;
    Round round;
    NodeId signer;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, std::map<crypto::Hash256, PhaseSig>> seen_;
  std::map<NodeId, ConflictPair> proofs_;
};

/// Figure 4 (Appendix G), batch form: scans the accumulated message sets M
/// and returns the conflicting-signature set D (one proof per guilty
/// player). Mirrors the pseudocode's pairwise scan semantics.
FraudSet construct_proof(std::span<const SignedValue> statements);

}  // namespace ratcon::consensus
