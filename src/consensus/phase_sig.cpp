#include "consensus/phase_sig.hpp"

#include <set>

namespace ratcon::consensus {

const char* to_string(PhaseTag tag) {
  switch (tag) {
    case PhaseTag::kPropose: return "Propose";
    case PhaseTag::kVote: return "Vote";
    case PhaseTag::kCommit: return "Commit";
    case PhaseTag::kReveal: return "Reveal";
    case PhaseTag::kFinal: return "Final";
    case PhaseTag::kViewChange: return "ViewChange";
    case PhaseTag::kCommitView: return "CommitView";
    case PhaseTag::kPrepare: return "Prepare";
    case PhaseTag::kPreCommit: return "PreCommit";
    case PhaseTag::kDecide: return "Decide";
  }
  return "?";
}

void PhaseSig::encode(Writer& w) const {
  w.u32(signer);
  w.raw(ByteSpan(sig.bytes.data(), sig.bytes.size()));
}

PhaseSig PhaseSig::decode(Reader& r) {
  PhaseSig ps;
  ps.signer = r.u32();
  r.raw_into(ps.sig.bytes.data(), ps.sig.bytes.size());
  return ps;
}

Bytes phase_sign_payload(ProtoId proto, PhaseTag phase, Round round,
                         const crypto::Hash256& value) {
  Writer w;
  w.str("ratcon-phase");
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(round);
  w.raw(ByteSpan(value.data(), value.size()));
  return w.take();
}

PhaseSig sign_phase(ProtoId proto, PhaseTag phase, Round round,
                    const crypto::Hash256& value, NodeId signer,
                    const crypto::SecretKey& sk) {
  const Bytes payload = phase_sign_payload(proto, phase, round, value);
  PhaseSig ps;
  ps.signer = signer;
  ps.sig = crypto::sign(sk, ByteSpan(payload.data(), payload.size()));
  return ps;
}

bool verify_phase(ProtoId proto, PhaseTag phase, Round round,
                  const crypto::Hash256& value, const PhaseSig& ps,
                  const crypto::KeyRegistry& registry) {
  const Bytes payload = phase_sign_payload(proto, phase, round, value);
  const crypto::PublicKey pk = registry.public_key(ps.signer);
  return registry.verify(pk, ByteSpan(payload.data(), payload.size()), ps.sig);
}

void SignedValue::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(round);
  w.raw(ByteSpan(value.data(), value.size()));
  ps.encode(w);
}

SignedValue SignedValue::decode(Reader& r) {
  SignedValue sv;
  sv.phase = static_cast<PhaseTag>(r.u8());
  sv.round = r.u64();
  r.raw_into(sv.value.data(), sv.value.size());
  sv.ps = PhaseSig::decode(r);
  return sv;
}

void Certificate::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(round);
  w.raw(ByteSpan(value.data(), value.size()));
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const PhaseSig& ps : sigs) ps.encode(w);
}

Certificate Certificate::decode(Reader& r) {
  Certificate cert;
  cert.phase = static_cast<PhaseTag>(r.u8());
  cert.round = r.u64();
  r.raw_into(cert.value.data(), cert.value.size());
  const std::uint32_t count = r.count(1u << 16);
  cert.sigs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cert.sigs.push_back(PhaseSig::decode(r));
  }
  return cert;
}

bool Certificate::verify(ProtoId proto, std::uint32_t quorum,
                         const crypto::KeyRegistry& registry) const {
  if (sigs.size() < quorum) return false;
  std::set<NodeId> signers;
  const Bytes payload = phase_sign_payload(proto, phase, round, value);
  for (const PhaseSig& ps : sigs) {
    if (!signers.insert(ps.signer).second) return false;  // duplicate signer
    const crypto::PublicKey pk = registry.public_key(ps.signer);
    if (!registry.verify(pk, ByteSpan(payload.data(), payload.size()),
                         ps.sig)) {
      return false;
    }
  }
  return true;
}

std::vector<SignedValue> Certificate::statements() const {
  std::vector<SignedValue> out;
  out.reserve(sigs.size());
  for (const PhaseSig& ps : sigs) {
    out.push_back(SignedValue{phase, round, value, ps});
  }
  return out;
}

}  // namespace ratcon::consensus
