#include "consensus/fraud.hpp"

namespace ratcon::consensus {

bool ConflictPair::verify(ProtoId proto,
                          const crypto::KeyRegistry& registry) const {
  if (sig_a.signer != sig_b.signer) return false;
  if (value_a == value_b) return false;
  return verify_phase(proto, phase, round, value_a, sig_a, registry) &&
         verify_phase(proto, phase, round, value_b, sig_b, registry);
}

void ConflictPair::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(phase));
  w.u64(round);
  w.raw(ByteSpan(value_a.data(), value_a.size()));
  w.raw(ByteSpan(value_b.data(), value_b.size()));
  sig_a.encode(w);
  sig_b.encode(w);
}

ConflictPair ConflictPair::decode(Reader& r) {
  ConflictPair cp;
  cp.phase = static_cast<PhaseTag>(r.u8());
  cp.round = r.u64();
  r.raw_into(cp.value_a.data(), cp.value_a.size());
  r.raw_into(cp.value_b.data(), cp.value_b.size());
  cp.sig_a = PhaseSig::decode(r);
  cp.sig_b = PhaseSig::decode(r);
  return cp;
}

void encode_fraud_set(Writer& w, const FraudSet& set) {
  w.u32(static_cast<std::uint32_t>(set.size()));
  for (const ConflictPair& cp : set) cp.encode(w);
}

FraudSet decode_fraud_set(Reader& r) {
  const std::uint32_t count = r.count(1u << 12);
  FraudSet out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(ConflictPair::decode(r));
  }
  return out;
}

std::set<NodeId> verify_fraud_proofs(ProtoId proto, const FraudSet& proofs,
                                     const crypto::KeyRegistry& registry) {
  std::set<NodeId> guilty;
  for (const ConflictPair& cp : proofs) {
    if (cp.verify(proto, registry)) {
      guilty.insert(cp.guilty());
    }
  }
  return guilty;
}

std::optional<ConflictPair> FraudTracker::observe(const SignedValue& sv) {
  const Key key{static_cast<std::uint8_t>(sv.phase), sv.round, sv.ps.signer};
  auto& values = seen_[key];
  const auto [it, inserted] = values.emplace(sv.value, sv.ps);
  if (inserted && values.size() >= 2 && !proofs_.count(sv.ps.signer)) {
    // Pair the new value with any previously-seen distinct value.
    for (const auto& [other_value, other_sig] : values) {
      if (other_value == sv.value) continue;
      ConflictPair cp;
      cp.phase = sv.phase;
      cp.round = sv.round;
      cp.value_a = other_value;
      cp.value_b = sv.value;
      cp.sig_a = other_sig;
      cp.sig_b = sv.ps;
      proofs_.emplace(sv.ps.signer, cp);
      return cp;
    }
  }
  return std::nullopt;
}

void FraudTracker::observe_all(const std::vector<SignedValue>& svs) {
  for (const SignedValue& sv : svs) observe(sv);
}

FraudSet FraudTracker::fraud_set() const {
  FraudSet out;
  out.reserve(proofs_.size());
  for (const auto& [node, cp] : proofs_) out.push_back(cp);
  return out;
}

FraudSet construct_proof(std::span<const SignedValue> statements) {
  FraudTracker tracker;
  for (const SignedValue& sv : statements) tracker.observe(sv);
  return tracker.fraud_set();
}

}  // namespace ratcon::consensus
