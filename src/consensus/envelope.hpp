#pragma once

#include "consensus/types.hpp"
#include "common/serialize.hpp"
#include "crypto/sig.hpp"

namespace ratcon::consensus {

/// Wire envelope carried by every consensus message:
///
///   [proto u8][type u8][round u64][from u32][body bytes][sig 32B]
///
/// The first two bytes double as the traffic-stats header. The signature
/// covers (proto, type, round, from, H(body)), so envelopes cannot be
/// replayed across rounds or attributed to other senders; the Recv
/// procedures of all protocols verify it before acting (paper Figure 1:
/// "any message coming through it will contain only valid signatures").
///
/// H(body) is cached per object: signing and verifying the same envelope
/// hash the body once, not once per signing_payload() call. The body is
/// therefore private — set_body() is the only mutation path and it
/// invalidates the cache. The digest never travels on the wire: a receiver
/// recomputes it from the bytes it actually decoded, so a sender cannot
/// smuggle a digest that disagrees with the body.
class Envelope {
 public:
  ProtoId proto = ProtoId::kPrft;
  std::uint8_t type = 0;
  Round round = 0;
  NodeId from = kNoNode;
  crypto::Signature sig;

  [[nodiscard]] const Bytes& body() const { return body_; }
  void set_body(Bytes body) {
    body_ = std::move(body);
    digest_valid_ = false;
  }

  /// H(body), computed on first use and cached until set_body().
  [[nodiscard]] const crypto::Hash256& body_digest() const;

  [[nodiscard]] Bytes encode() const;
  static Envelope decode(ByteSpan wire);

  [[nodiscard]] Bytes signing_payload() const;

 private:
  Bytes body_;
  mutable crypto::Hash256 digest_{};
  mutable bool digest_valid_ = false;
};

/// Builds and signs an envelope.
Envelope make_envelope(ProtoId proto, std::uint8_t type, Round round,
                       NodeId from, Bytes body, const crypto::SecretKey& sk);

/// Verifies the envelope signature against the trusted-setup registry.
bool verify_envelope(const Envelope& env, const crypto::KeyRegistry& registry);

}  // namespace ratcon::consensus
