#pragma once

#include "consensus/types.hpp"
#include "common/serialize.hpp"
#include "crypto/sig.hpp"

namespace ratcon::consensus {

/// Wire envelope carried by every consensus message:
///
///   [proto u8][type u8][round u64][from u32][body-len u32][body][sig 32B]
///
/// Every field before the body sits at a fixed offset, the body length is
/// explicit, and the signature is the fixed-size tail — so a decoder can
/// validate the whole structure from three integers before touching a
/// single payload byte. The first two bytes double as the traffic-stats
/// header. The signature covers (proto, type, round, from, H(body)), so
/// envelopes cannot be replayed across rounds or attributed to other
/// senders; the Recv procedures of all protocols verify it before acting
/// (paper Figure 1: "any message coming through it will contain only valid
/// signatures").
///
/// Two decode paths exist over this one layout (the wire bytes are
/// identical either way):
///
///  * `WireView::parse` — the zero-copy hot path. Fixed-offset reads, body
///    exposed as a span into the caller's buffer, nothing allocated. Valid
///    only while that buffer lives; protocol handlers consume it within
///    one delivery and never retain it.
///  * `Envelope::decode` — the owning path. Copies the body out so the
///    result is self-contained (buffering, tests, tools). Both paths
///    validate length-before-allocation and reject trailing garbage.
inline constexpr std::size_t kWireHeaderSize = 18;  // proto..body-len
inline constexpr std::size_t kWireMinSize =
    kWireHeaderSize + crypto::kSignatureSize;

class Envelope;

/// Zero-copy view over one encoded envelope. Header fields are parsed into
/// plain members (they are a handful of integers); the body stays a span
/// into the wire buffer. A WireView is a *borrow*: it must not outlive the
/// buffer handed to parse(), and handlers that need the message beyond the
/// current delivery materialize it with to_envelope().
class WireView {
 public:
  ProtoId proto = ProtoId::kPrft;
  std::uint8_t type = 0;
  Round round = 0;
  NodeId from = kNoNode;

  WireView() = default;

  /// Parses `wire` in place. Throws CodecError when the buffer is shorter
  /// than the fixed layout, when the body length disagrees with the buffer
  /// size (truncation or trailing garbage), or when the body exceeds
  /// `max_body` — all before any allocation, so a hostile length field is
  /// rejected while it is still just an integer.
  static WireView parse(ByteSpan wire,
                        std::size_t max_body = Reader::kDefaultMaxLen);

  [[nodiscard]] ByteSpan body() const { return body_; }
  [[nodiscard]] ByteSpan wire() const { return wire_; }

  /// The signature tail (fixed 32 bytes), copied into its value type.
  [[nodiscard]] crypto::Signature signature() const;

  /// H(body), computed over the viewed bytes — never read from the wire.
  [[nodiscard]] crypto::Hash256 body_digest() const;

  /// Canonical signing bytes, appended into `out` (cleared first). Shared
  /// with Envelope so both paths sign and verify identical payloads.
  void signing_payload_into(Bytes& out) const;

  /// Owning copy (the only body copy on the hot path, taken exactly when a
  /// message must outlive its delivery — e.g. future-round buffering).
  [[nodiscard]] Envelope to_envelope() const;

 private:
  ByteSpan wire_{};
  ByteSpan body_{};
};

/// Owning envelope: the encode/sign side, and the self-contained decode
/// used where lifetime outlasts the wire buffer.
///
/// H(body) is cached per object: signing and verifying the same envelope
/// hash the body once, not once per signing_payload() call. The body is
/// therefore private — set_body() is the only mutation path and it
/// invalidates the cache. The digest never travels on the wire: a receiver
/// recomputes it from the bytes it actually decoded, so a sender cannot
/// smuggle a digest that disagrees with the body.
class Envelope {
 public:
  ProtoId proto = ProtoId::kPrft;
  std::uint8_t type = 0;
  Round round = 0;
  NodeId from = kNoNode;
  crypto::Signature sig;

  [[nodiscard]] const Bytes& body() const { return body_; }
  void set_body(Bytes body) {
    body_ = std::move(body);
    digest_valid_ = false;
  }

  /// H(body), computed on first use and cached until set_body().
  [[nodiscard]] const crypto::Hash256& body_digest() const;

  [[nodiscard]] Bytes encode() const;

  /// Owning decode. `max_body` rejects oversized bodies before the copy is
  /// allocated (and before any signature check could be reached).
  static Envelope decode(ByteSpan wire,
                         std::size_t max_body = Reader::kDefaultMaxLen);

  [[nodiscard]] Bytes signing_payload() const;

 private:
  friend class WireView;

  Bytes body_;
  mutable crypto::Hash256 digest_{};
  mutable bool digest_valid_ = false;
};

/// Builds and signs an envelope.
Envelope make_envelope(ProtoId proto, std::uint8_t type, Round round,
                       NodeId from, Bytes body, const crypto::SecretKey& sk);

/// Verifies the envelope signature against the trusted-setup registry.
bool verify_envelope(const Envelope& env, const crypto::KeyRegistry& registry);

/// Zero-copy verification: same signature check as verify_envelope, with
/// the digest taken over the viewed body span and the signing payload built
/// in pooled scratch — no per-message allocation after warm-up.
bool verify_wire(const WireView& view, const crypto::KeyRegistry& registry);

}  // namespace ratcon::consensus
