#pragma once

#include "consensus/types.hpp"
#include "common/serialize.hpp"
#include "crypto/sig.hpp"

namespace ratcon::consensus {

/// Wire envelope carried by every consensus message:
///
///   [proto u8][type u8][round u64][from u32][body bytes][sig 32B]
///
/// The first two bytes double as the traffic-stats header. The signature
/// covers (proto, type, round, from, H(body)), so envelopes cannot be
/// replayed across rounds or attributed to other senders; the Recv
/// procedures of all protocols verify it before acting (paper Figure 1:
/// "any message coming through it will contain only valid signatures").
struct Envelope {
  ProtoId proto = ProtoId::kPrft;
  std::uint8_t type = 0;
  Round round = 0;
  NodeId from = kNoNode;
  Bytes body;
  crypto::Signature sig;

  [[nodiscard]] Bytes encode() const;
  static Envelope decode(ByteSpan wire);

  [[nodiscard]] Bytes signing_payload() const;
};

/// Builds and signs an envelope.
Envelope make_envelope(ProtoId proto, std::uint8_t type, Round round,
                       NodeId from, Bytes body, const crypto::SecretKey& sk);

/// Verifies the envelope signature against the trusted-setup registry.
bool verify_envelope(const Envelope& env, const crypto::KeyRegistry& registry);

}  // namespace ratcon::consensus
