#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace ratcon::consensus {

/// Wire-level protocol identifier; the first byte of every message, so the
/// cluster's traffic stats can attribute traffic per protocol.
enum class ProtoId : std::uint8_t {
  kPrft = 1,
  kPbft = 2,
  kHotstuff = 3,
  kPolygraph = 4,
  kTrap = 5,
  kRaftLite = 6,
  kQuorumDemo = 7,
  kSync = 8,  ///< protocol-agnostic catch-up / state transfer (src/sync)
};

/// Shared consensus configuration. `t0` is the protocol's Byzantine design
/// bound (paper §4.2): the quorum threshold is τ = n − t0, which Claim 1
/// requires to lie in [⌊(n+t0)/2⌋ + 1, n − t0].
struct Config {
  std::uint32_t n = 4;       ///< Committee size.
  std::uint32_t t0 = 0;      ///< Tolerated Byzantine bound.
  SimTime delta = 0;         ///< Known synchrony bound Δ (for timeouts).
  SimTime base_timeout = 0;  ///< Per-phase timeout before backoff.
  std::uint64_t target_rounds = 10;  ///< Blocks to agree before stopping.
  std::uint32_t max_block_txs = 64;  ///< Leader's per-block tx budget.
  /// Leader's per-block byte budget over encoded transactions (0 =
  /// unbounded). Whichever of the two budgets binds first caps the block.
  std::size_t max_block_bytes = 0;

  /// Agreement threshold τ = n − t0.
  [[nodiscard]] std::uint32_t quorum() const { return n - t0; }

  /// Round-robin leader (paper: l = 1 + (r mod n), 1-indexed; we are
  /// 0-indexed so l = r mod n — the identical rotation).
  [[nodiscard]] NodeId leader(Round r) const {
    return static_cast<NodeId>(r % n);
  }

  /// Claim 1's admissible threshold interval for this (n, t0).
  [[nodiscard]] std::uint32_t tau_min() const { return (n + t0) / 2 + 1; }
  [[nodiscard]] std::uint32_t tau_max() const { return n - t0; }
};

/// pRFT's design bound t0 = ⌈n/4⌉ − 1 (threat model M in §6).
inline std::uint32_t prft_t0(std::uint32_t n) {
  const std::uint32_t ceil_quarter = (n + 3) / 4;
  return ceil_quarter == 0 ? 0 : ceil_quarter - 1;
}

/// Classic BFT bound t0 = ⌈n/3⌉ − 1 (pBFT, Polygraph, TRAP).
inline std::uint32_t bft_t0(std::uint32_t n) {
  const std::uint32_t ceil_third = (n + 2) / 3;
  return ceil_third == 0 ? 0 : ceil_third - 1;
}

}  // namespace ratcon::consensus
