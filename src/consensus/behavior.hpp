#pragma once

#include "consensus/phase_sig.hpp"
#include "ledger/transaction.hpp"

namespace ratcon::consensus {

/// Rational-strategy hooks that stay within a protocol's message shape —
/// the paper's strategy space §4.1.2 (π_abs, π_pc) plus the free-riding
/// variants the empirical game engine explores. One Behavior drives any
/// registered protocol: each node consults `participate` before sending in
/// a phase, `censor_tx` when building a block as leader, and
/// `expose_fraud` before broadcasting accusations. Arbitrary Byzantine
/// deviations — double-signing, equivocation — are implemented as node
/// subclasses / fork plans instead (src/adversary, QuorumForkPlan).
class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Whether this player counts as honest for outcome classification.
  [[nodiscard]] virtual bool is_honest() const { return true; }

  /// Return false to suppress sending in `phase` of round `r` whose leader
  /// is `leader` (π_abs: "does not send messages in the particular phase or
  /// round"; abstention is indistinguishable from a crash/network delay so
  /// it can never be penalized — Theorem 1's lever).
  virtual bool participate(Round r, NodeId leader, PhaseTag phase) {
    (void)r;
    (void)leader;
    (void)phase;
    return true;
  }

  /// Leader-side transaction filter (π_pc's censorship half: "propose Block
  /// with transaction set tx such that tx_h ∉ tx" — Theorem 2's lever).
  virtual bool censor_tx(const ledger::Transaction& tx) {
    (void)tx;
    return false;
  }

  /// Whether this player broadcasts Expose messages on detecting > t0
  /// double-signers. Honest players always do; colluding players never
  /// incriminate their own coalition.
  [[nodiscard]] virtual bool expose_fraud() const { return true; }
};

}  // namespace ratcon::consensus
