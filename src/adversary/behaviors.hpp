#pragma once

#include <set>

#include "core/prft_node.hpp"

namespace ratcon::adversary {

/// π_abs (paper §4.1.2): the player sends nothing, ever. Indistinguishable
/// from a crash fault, so no accountable protocol can penalize it — the
/// lever behind Theorem 1 (θ=3's liveness attack).
class AbstainBehavior final : public prft::Behavior {
 public:
  [[nodiscard]] bool is_honest() const override { return false; }

  bool participate(Round, NodeId, consensus::PhaseTag) override {
    return false;
  }

  [[nodiscard]] bool expose_fraud() const override { return false; }
};

/// π_pc (Theorem 2's strategy, θ=2): the coalition K ∪ T
///  (1) abstains whenever the round leader is outside the coalition, and
///  (2) participates — but censors the watched transactions — whenever the
///      leader is a coalition member.
/// No message is ever double-signed and nobody crashes forever, so π_pc is
/// indistinguishable from π_0 to any accountability mechanism, yet the
/// watched transaction never enters the ledger.
class PartialCensorBehavior final : public prft::Behavior {
 public:
  PartialCensorBehavior(std::set<NodeId> coalition,
                        std::set<std::uint64_t> censored_txs)
      : coalition_(std::move(coalition)),
        censored_txs_(std::move(censored_txs)) {}

  [[nodiscard]] bool is_honest() const override { return false; }

  bool participate(Round, NodeId leader, consensus::PhaseTag phase) override {
    // View changes always complete — Theorem 2's strategy preserves
    // (t,k)-eventual liveness so leadership rotates to the coalition
    // ("if leader ... ∈ K∪T then propose Block with tx_h ∉ tx").
    if (phase == consensus::PhaseTag::kViewChange ||
        phase == consensus::PhaseTag::kCommitView) {
      return true;
    }
    return coalition_.count(leader) > 0;
  }

  bool censor_tx(const ledger::Transaction& tx) override {
    return censored_txs_.count(tx.id) > 0;
  }

  [[nodiscard]] bool expose_fraud() const override { return false; }

 private:
  std::set<NodeId> coalition_;
  std::set<std::uint64_t> censored_txs_;
};

/// A "selfish but conforming" rational player: follows π_0 in every phase
/// but never exposes the coalition (used as the K-side of collusion sets
/// that rely on Byzantine partners for the actual double-signing).
class SilentObserverBehavior final : public prft::Behavior {
 public:
  [[nodiscard]] bool is_honest() const override { return false; }
  [[nodiscard]] bool expose_fraud() const override { return false; }
};

/// π_free (free-ride-on-catchup): never participate in consensus at all and
/// let the catch-up subsystem (src/sync) transfer the finalized chain. On
/// the wire this is π_abs — crash-indistinguishable, unpenalizable — but
/// the player still ends up with the full ledger while paying zero
/// consensus messages; the saved per-message costs are what the empirical
/// payoff engine (src/rational) charges against it.
class FreeRideBehavior final : public prft::Behavior {
 public:
  [[nodiscard]] bool is_honest() const override { return false; }

  bool participate(Round, NodeId, consensus::PhaseTag) override {
    return false;
  }

  [[nodiscard]] bool expose_fraud() const override { return false; }
};

/// π_lazy (lazy-vote): participate in the cheap early phases (proposals,
/// first-phase votes, view changes — the messages that keep the player
/// looking alive) but skip the commit-tier phases whose quorums the other
/// n − 1 players will assemble anyway. A free-riding strategy milder than
/// π_abs: it saves the expensive certificate traffic without ever stalling
/// a quorum as long as n − 1 ≥ τ.
class LazyVoteBehavior final : public prft::Behavior {
 public:
  [[nodiscard]] bool is_honest() const override { return false; }

  bool participate(Round, NodeId, consensus::PhaseTag phase) override {
    switch (phase) {
      case consensus::PhaseTag::kCommit:
      case consensus::PhaseTag::kReveal:
      case consensus::PhaseTag::kFinal:
      case consensus::PhaseTag::kPreCommit:
      case consensus::PhaseTag::kDecide:
        return false;
      default:
        return true;
    }
  }

  [[nodiscard]] bool expose_fraud() const override { return false; }
};

}  // namespace ratcon::adversary
