#pragma once

#include <set>

#include "core/prft_node.hpp"

namespace ratcon::adversary {

/// π_abs (paper §4.1.2): the player sends nothing, ever. Indistinguishable
/// from a crash fault, so no accountable protocol can penalize it — the
/// lever behind Theorem 1 (θ=3's liveness attack).
class AbstainBehavior final : public prft::Behavior {
 public:
  [[nodiscard]] bool is_honest() const override { return false; }

  bool participate(Round, NodeId, consensus::PhaseTag) override {
    return false;
  }

  [[nodiscard]] bool expose_fraud() const override { return false; }
};

/// π_pc (Theorem 2's strategy, θ=2): the coalition K ∪ T
///  (1) abstains whenever the round leader is outside the coalition, and
///  (2) participates — but censors the watched transactions — whenever the
///      leader is a coalition member.
/// No message is ever double-signed and nobody crashes forever, so π_pc is
/// indistinguishable from π_0 to any accountability mechanism, yet the
/// watched transaction never enters the ledger.
class PartialCensorBehavior final : public prft::Behavior {
 public:
  PartialCensorBehavior(std::set<NodeId> coalition,
                        std::set<std::uint64_t> censored_txs)
      : coalition_(std::move(coalition)),
        censored_txs_(std::move(censored_txs)) {}

  [[nodiscard]] bool is_honest() const override { return false; }

  bool participate(Round, NodeId leader, consensus::PhaseTag phase) override {
    // View changes always complete — Theorem 2's strategy preserves
    // (t,k)-eventual liveness so leadership rotates to the coalition
    // ("if leader ... ∈ K∪T then propose Block with tx_h ∉ tx").
    if (phase == consensus::PhaseTag::kViewChange ||
        phase == consensus::PhaseTag::kCommitView) {
      return true;
    }
    return coalition_.count(leader) > 0;
  }

  bool censor_tx(const ledger::Transaction& tx) override {
    return censored_txs_.count(tx.id) > 0;
  }

  [[nodiscard]] bool expose_fraud() const override { return false; }

 private:
  std::set<NodeId> coalition_;
  std::set<std::uint64_t> censored_txs_;
};

/// A "selfish but conforming" rational player: follows π_0 in every phase
/// but never exposes the coalition (used as the K-side of collusion sets
/// that rely on Byzantine partners for the actual double-signing).
class SilentObserverBehavior final : public prft::Behavior {
 public:
  [[nodiscard]] bool is_honest() const override { return false; }
  [[nodiscard]] bool expose_fraud() const override { return false; }
};

}  // namespace ratcon::adversary
