#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/prft_node.hpp"

namespace ratcon::adversary {

/// Shared coordination state for a double-signing coalition K ∪ T executing
/// π_fork / π_ds (paper §4.1.2): in rounds led by a coalition member, the
/// leader equivocates two blocks and every member signs both, showing value
/// A only to honest partition side A and value B only to side B. This is
/// the canonical disagreement attack the impossibility proofs and Lemma 4
/// quantify over.
struct ForkPlan {
  std::uint32_t n = 0;
  std::set<NodeId> coalition;  ///< K ∪ T — the double-signers
  std::set<NodeId> side_a;     ///< honest players shown value A
  std::set<NodeId> side_b;     ///< honest players shown value B

  /// Equivocation values per attacked round, filled in by the attacking
  /// leader when it proposes.
  struct RoundValues {
    crypto::Hash256 h_a{};
    crypto::Hash256 h_b{};
  };
  std::map<Round, RoundValues> values;

  /// Equivocation timing window: the coalition only attacks rounds in
  /// [attack_from, attack_until). Defaults cover every round; the
  /// adaptive search (src/search) exposes these as coordinates.
  Round attack_from = 0;
  Round attack_until = kRoundNever;

  /// The coalition attacks every round one of its members leads, inside
  /// the timing window.
  [[nodiscard]] bool attacks(Round r) const {
    return r >= attack_from && r < attack_until &&
           coalition.count(static_cast<NodeId>(r % n)) > 0;
  }

  /// Recipients of the A-side (resp. B-side) messages. Coalition members
  /// see both values (they coordinate); side A and side B each see one.
  [[nodiscard]] std::set<NodeId> targets_a() const;
  [[nodiscard]] std::set<NodeId> targets_b() const;
};

/// A coalition member. Outside attacked rounds it runs the honest pRFT
/// machine (so the system keeps making progress and the repeated-game
/// utilities are comparable); inside attacked rounds it double-signs per
/// the plan and never exposes its own coalition.
class ForkAgentNode final : public prft::PrftNode {
 public:
  ForkAgentNode(Deps deps, std::shared_ptr<ForkPlan> plan);

  void on_message(net::Context& ctx, NodeId from, const Bytes& data) override;

 protected:
  void do_propose(net::Context& ctx, Round r, RoundState& rs) override;
  void do_vote(net::Context& ctx, Round r, RoundState& rs) override;
  void do_commit(net::Context& ctx, Round r, RoundState& rs,
                 const crypto::Hash256& h) override;
  void do_reveal(net::Context& ctx, Round r, RoundState& rs,
                 const crypto::Hash256& h) override;

 private:
  struct Progress {
    bool voted = false;
    bool commit_a = false, commit_b = false;
    bool reveal_a = false, reveal_b = false;
    bool final_a = false, final_b = false;
  };

  /// Drives the attack forward from whatever signatures have accumulated:
  /// targeted commits once a side has a vote quorum, targeted reveals once
  /// it has a commit quorum, targeted finals once it has a reveal quorum.
  void pump_attack(net::Context& ctx);
  void pump_side(net::Context& ctx, Round r, RoundState& rs,
                 const crypto::Hash256& h, const std::set<NodeId>& targets,
                 bool& commit_sent, bool& reveal_sent, bool& final_sent);

  std::shared_ptr<ForkPlan> plan_;
  std::map<Round, Progress> progress_;
};

/// Behaviour shared by coalition members: not honest, never exposes, and
/// suppresses the base machine's Final broadcast in attacked rounds (the
/// attack pump sends targeted finals instead).
class ForkBehavior final : public prft::Behavior {
 public:
  explicit ForkBehavior(std::shared_ptr<ForkPlan> plan)
      : plan_(std::move(plan)) {}

  [[nodiscard]] bool is_honest() const override { return false; }
  [[nodiscard]] bool expose_fraud() const override { return false; }

  bool participate(Round r, NodeId, consensus::PhaseTag phase) override {
    if (plan_->attacks(r) && phase == consensus::PhaseTag::kFinal) {
      return false;
    }
    return true;
  }

 private:
  std::shared_ptr<ForkPlan> plan_;
};

}  // namespace ratcon::adversary
