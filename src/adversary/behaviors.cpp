// Behaviours are header-only strategy objects; this translation unit exists
// so the library has a stable archive even if all behaviours stay inline.
#include "adversary/behaviors.hpp"
