#include "adversary/fork_agent.hpp"

namespace ratcon::adversary {

namespace {

/// Marker-transaction id space for the equivocated B-side blocks; far above
/// any workload id so the blocks always differ.
constexpr std::uint64_t kForkMarkerBase = 0xF0F0F0F000000000ull;

}  // namespace

std::set<NodeId> ForkPlan::targets_a() const {
  std::set<NodeId> out = side_a;
  out.insert(coalition.begin(), coalition.end());
  return out;
}

std::set<NodeId> ForkPlan::targets_b() const {
  std::set<NodeId> out = side_b;
  out.insert(coalition.begin(), coalition.end());
  return out;
}

ForkAgentNode::ForkAgentNode(Deps deps, std::shared_ptr<ForkPlan> plan)
    : PrftNode([&deps, &plan] {
        deps.behavior = std::make_shared<ForkBehavior>(plan);
        return std::move(deps);
      }()),
      plan_(std::move(plan)) {}

void ForkAgentNode::on_message(net::Context& ctx, NodeId from,
                               const Bytes& data) {
  PrftNode::on_message(ctx, from, data);
  pump_attack(ctx);
}

void ForkAgentNode::do_propose(net::Context& ctx, Round r, RoundState& rs) {
  if (!plan_->attacks(r)) {
    PrftNode::do_propose(ctx, r, rs);
    return;
  }
  // Equivocate: block A is the honest-looking proposal; block B differs by
  // a marker transaction. Same parent, same round — only the value forks.
  ledger::Block block_a = build_block(ctx);
  ledger::Block block_b = block_a;
  block_b.txs.push_back(
      ledger::make_transfer(kForkMarkerBase | r, ctx.self()));

  plan_->values[r] =
      ForkPlan::RoundValues{block_a.hash(), block_b.hash()};

  const Bytes wire_a = make_propose(r, block_a);
  const Bytes wire_b = make_propose(r, block_b);
  send_to(ctx, plan_->targets_a(), wire_a);
  // Coalition members already saw A; B goes to side B plus the coalition so
  // every member can certify both values.
  send_to(ctx, plan_->targets_b(), wire_b);
}

void ForkAgentNode::do_vote(net::Context& ctx, Round r, RoundState& rs) {
  if (!plan_->attacks(r)) {
    PrftNode::do_vote(ctx, r, rs);
    return;
  }
  const auto it = plan_->values.find(r);
  if (it == plan_->values.end()) return;  // attack values not set yet
  Progress& prog = progress_[r];
  if (prog.voted) return;
  prog.voted = true;
  rs.voted = true;

  // π_ds: sign both conflicting values, each shown only to its side.
  send_to(ctx, plan_->targets_a(),
          make_vote(r, it->second.h_a, rs.leader_pro_sig));
  send_to(ctx, plan_->targets_b(),
          make_vote(r, it->second.h_b, rs.leader_pro_sig));
}

void ForkAgentNode::do_commit(net::Context& ctx, Round r, RoundState& rs,
                              const crypto::Hash256& h) {
  if (!plan_->attacks(r)) {
    PrftNode::do_commit(ctx, r, rs, h);
    return;
  }
  // Attacked rounds: the pump sends targeted commits for both sides.
  rs.committed = true;
  pump_attack(ctx);
}

void ForkAgentNode::do_reveal(net::Context& ctx, Round r, RoundState& rs,
                              const crypto::Hash256& h) {
  if (!plan_->attacks(r)) {
    PrftNode::do_reveal(ctx, r, rs, h);
    return;
  }
  rs.revealed = true;
  pump_attack(ctx);
}

void ForkAgentNode::pump_attack(net::Context& ctx) {
  for (auto& [r, values] : plan_->values) {
    RoundState& rs = round_state(r);
    Progress& prog = progress_[r];
    pump_side(ctx, r, rs, values.h_a, plan_->targets_a(), prog.commit_a,
              prog.reveal_a, prog.final_a);
    pump_side(ctx, r, rs, values.h_b, plan_->targets_b(), prog.commit_b,
              prog.reveal_b, prog.final_b);
  }
}

void ForkAgentNode::pump_side(net::Context& ctx, Round r, RoundState& rs,
                              const crypto::Hash256& h,
                              const std::set<NodeId>& targets,
                              bool& commit_sent, bool& reveal_sent,
                              bool& final_sent) {
  const std::uint32_t quorum = config().quorum();

  if (!commit_sent) {
    const auto votes = rs.votes.find(h);
    if (votes != rs.votes.end() && votes->second.size() >= quorum) {
      commit_sent = true;
      send_to(ctx, targets, make_commit(r, h, rs));
    }
  }
  if (!reveal_sent) {
    const auto commits = rs.commits.find(h);
    if (commits != rs.commits.end() && commits->second.size() >= quorum) {
      reveal_sent = true;
      send_to(ctx, targets, make_reveal(r, h, rs));
    }
  }
  if (!final_sent) {
    const auto reveals = rs.reveals.find(h);
    if (reveals != rs.reveals.end() && reveals->second.size() >= quorum) {
      final_sent = true;
      prft::FinalBody body;
      body.h = h;
      body.leader_pro_sig = rs.leader_pro_sig;
      body.final_sig = phase_sig(consensus::PhaseTag::kFinal, r, h);
      Writer w;
      body.encode(w);
      send_to(ctx, targets, encode_env(prft::MsgType::kFinal, r, w.take()));
    }
  }
}

}  // namespace ratcon::adversary
