#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ratcon::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(int indent) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << pad;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  os << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(int indent) const {
  std::fputs(render(indent).c_str(), stdout);
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_ratio(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", digits, value);
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_bytes(std::uint64_t value) {
  char buf[64];
  if (value >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(value) / (1ull << 20));
  } else if (value >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(value) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(value));
  }
  return buf;
}

}  // namespace ratcon::harness
