#include "harness/profiler.hpp"

#include <sstream>

#include "harness/jsonio.hpp"
#include "harness/table.hpp"

namespace ratcon::harness {

int tier_of(ProfItem item) {
  if (item <= kL1WorkloadNs) return 1;
  if (item <= kL2WorkloadTrackNs) return 2;
  return 3;
}

const char* to_string(ProfItem item) {
  switch (item) {
    case kL1SerializeNs: return "serialize";
    case kL1CryptoNs: return "crypto";
    case kL1MerkleNs: return "merkle";
    case kL1EventQueueNs: return "event_queue";
    case kL1SyncNs: return "sync";
    case kL1PayoffNs: return "payoff";
    case kL1WorkloadNs: return "workload";
    case kL2EncodeNs: return "encode";
    case kL2DecodeNs: return "decode";
    case kL2SignNs: return "sign";
    case kL2VerifyNs: return "verify";
    case kL2MerkleBuildNs: return "merkle_build";
    case kL2MerkleProveNs: return "merkle_prove";
    case kL2MerkleVerifyNs: return "merkle_verify";
    case kL2ScheduleNs: return "schedule";
    case kL2DispatchNs: return "dispatch";
    case kL2SyncAnnounceNs: return "sync_announce";
    case kL2SyncHandleNs: return "sync_handle";
    case kL2SyncServeNs: return "sync_serve";
    case kL2SyncAdoptNs: return "sync_adopt";
    case kL2PayoffClassifyNs: return "payoff_classify";
    case kL2PayoffAccountNs: return "payoff_account";
    case kL2WorkloadGenerateNs: return "workload_generate";
    case kL2WorkloadSubmitNs: return "workload_submit";
    case kL2WorkloadSelectNs: return "workload_select";
    case kL2WorkloadTrackNs: return "workload_track";
    case kL3ShaCalls: return "sha_calls";
    case kL3ShaBytes: return "sha_bytes";
    case kL3HmacCalls: return "hmac_calls";
    case kL3DigestCacheHits: return "digest_cache_hits";
    case kL3DigestCacheMisses: return "digest_cache_misses";
    case kL3EnvelopesSigned: return "envelopes_signed";
    case kL3EnvelopesVerified: return "envelopes_verified";
    case kL3BytesEncoded: return "bytes_encoded";
    case kL3BytesDecoded: return "bytes_decoded";
    case kL3ZeroCopyDecodes: return "zero_copy_decodes";
    case kL3OwningDecodes: return "owning_decodes";
    case kL3BodyBytesCopied: return "body_bytes_copied";
    case kL3ScratchReuses: return "scratch_reuses";
    case kL3ScratchMisses: return "scratch_misses";
    case kL3MerkleLeaves: return "merkle_leaves";
    case kL3EventsScheduled: return "events_scheduled";
    case kL3EventsDispatched: return "events_dispatched";
    case kL3FutureRoundBuffered: return "future_round_buffered";
    case kL3FutureRoundReplayed: return "future_round_replayed";
    case kL3NegativeDelayClamps: return "negative_delay_clamps";
    case kL3PastTimeClamps: return "past_time_clamps";
    case kL3WorkloadTxsSubmitted: return "workload_txs_submitted";
    case kL3WorkloadTxsFinalized: return "workload_txs_finalized";
    case kL3MempoolEvictions: return "mempool_evictions";
    case kL3MempoolRejections: return "mempool_rejections";
    case kNumProfItems: break;
  }
  return "unknown";
}

ProfReport& ProfReport::merge(const ProfReport& other) {
  if (other.level > level) level = other.level;
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].sum += other.items[i].sum;
    items[i].count += other.items[i].count;
  }
  return *this;
}

std::string ProfReport::format() const {
  std::ostringstream os;
  os << "profile (level " << level << ")\n";

  Table phases({"phase", "ms", "entries"});
  for (ProfItem item : kProfPhases) {
    phases.add_row({to_string(item), fmt(ms(item), 3), fmt_count(count(item))});
  }
  os << phases.render();

  bool any_l2 = false;
  Table subs({"sub-phase", "ms", "entries"});
  for (std::uint16_t i = kL2EncodeNs; i <= kL2WorkloadTrackNs; ++i) {
    const auto item = static_cast<ProfItem>(i);
    if (count(item) == 0) continue;
    any_l2 = true;
    subs.add_row({to_string(item), fmt(ms(item), 3), fmt_count(count(item))});
  }
  if (any_l2) os << "\n" << subs.render();

  bool any_l3 = false;
  std::ostringstream counters;
  for (std::uint16_t i = kL3ShaCalls; i < kNumProfItems; ++i) {
    const auto item = static_cast<ProfItem>(i);
    if (count(item) == 0) continue;
    counters << (any_l3 ? "  " : "") << to_string(item) << "="
             << fmt_count(static_cast<std::uint64_t>(sum(item)));
    any_l3 = true;
  }
  if (any_l3) os << "\n  counters: " << counters.str();
  return os.str();
}

void write_profile_json(JsonWriter& json, const ProfReport& report) {
  json.begin_object();
  json.key("level").value(static_cast<std::int64_t>(report.level));
  json.key("phases").begin_object();
  for (ProfItem item : kProfPhases) {
    json.key(to_string(item)).begin_object();
    json.key("ns").value(report.sum(item));
    json.key("count").value(report.count(item));
    json.end_object();
  }
  json.end_object();
  json.key("items").begin_object();
  for (std::uint16_t i = 0; i < kNumProfItems; ++i) {
    const auto item = static_cast<ProfItem>(i);
    if (report.count(item) == 0) continue;
    json.key(to_string(item)).begin_object();
    json.key("sum").value(report.sum(item));
    json.key("count").value(report.count(item));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

std::atomic<int> Profiler::default_level_{3};

Profiler& Profiler::Get() {
  thread_local Profiler instance;
  return instance;
}

void Profiler::Reset() { items_.fill(ProfSlot{}); }

ProfReport Profiler::snapshot() const {
  ProfReport report;
  report.level = level_;
  report.items = items_;
  return report;
}

}  // namespace ratcon::harness
