#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/trace.hpp"

namespace ratcon::harness {

/// Live invariant monitors over the flight recorder's event stream.
///
/// Each monitor watches one safety property the paper's arguments lean on
/// and latches its *first* violation with the evidence event. The
/// MonitorSet feeds them synchronously from TraceSink (it is the sink's
/// observer), so a violation is caught at the exact virtual-time step it
/// happens — not reconstructed after the run — and the ring buffers still
/// hold the events that led to it. That moment is snapshotted into a
/// ForensicsBundle: the merged causally-ordered slice around the
/// violation, as human-readable text and as Chrome-tracing JSON.

/// Outcome of one monitor over one run.
struct MonitorVerdict {
  std::string monitor;
  std::uint64_t checked = 0;  ///< events this monitor inspected
  bool violated = false;
  std::string detail;          ///< first violation, human-readable
  TraceEvent evidence{};       ///< the event that tripped it
  std::vector<TraceEvent> related;  ///< e.g. the earlier conflicting finalize

  [[nodiscard]] std::string summary() const;
};

class IMonitor {
 public:
  virtual ~IMonitor() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void on_event(const TraceEvent& ev) = 0;
  [[nodiscard]] virtual const MonitorVerdict& verdict() const = 0;
};

/// Everything needed to debug one violation, built while the recorder
/// still holds the surrounding events. `text` names the violation, the
/// evidence events, and — for wire-connected violations — the messages
/// that led to each; `chrome_json` is the same slice as a
/// chrome://tracing-loadable document.
struct ForensicsBundle {
  std::string reason;
  std::string text;
  std::string chrome_json;

  /// Writes `<dir>/<stem>.txt` and `<dir>/<stem>.trace.json` (creating
  /// `dir` if needed). Returns false on I/O failure.
  bool write(const std::string& dir, const std::string& stem) const;
};

/// The standard monitors, installed per Simulation when tracing is on:
///  * lock-monotonicity — a held lock is never replaced by an older round;
///  * conflicting-finalize — no two finalizes at one height with different
///    values, across all replicas (the agreement invariant, live);
///  * quorum-threshold — every finalize's certificate meets the protocol's
///    minimum (delegated finalizes, aux = -1, are exempt: CFT followers
///    commit on the leader's word);
///  * deposit-non-negative — slashing never drives a balance below zero.
class MonitorSet final : public ITraceObserver {
 public:
  /// Installs the four standard monitors. `quorum_threshold` is the
  /// protocol's minimum certificate size (votes) for a valid finalize.
  void install_standard(std::int64_t quorum_threshold);
  void add(std::unique_ptr<IMonitor> monitor);

  /// ITraceObserver: feeds every monitor; the first violation anywhere
  /// snapshots the forensics bundle from the live recorder.
  void on_trace_event(const TraceEvent& ev) override;

  [[nodiscard]] bool violated() const;
  [[nodiscard]] std::uint64_t violations() const;
  [[nodiscard]] std::vector<MonitorVerdict> verdicts() const;

  /// The bundle captured at the first violation (nullopt while clean).
  [[nodiscard]] const std::optional<ForensicsBundle>& bundle() const {
    return bundle_;
  }

  /// Builds a bundle on demand from the recorder's current contents —
  /// the hook for failed matrix-cell safety assertions, where no monitor
  /// fired but the run still ended unsafe.
  [[nodiscard]] ForensicsBundle build_bundle(const std::string& reason) const;

  /// Events kept per node around a violation slice.
  void set_slice_window(std::size_t window) { slice_window_ = window; }

 private:
  [[nodiscard]] ForensicsBundle make_bundle(const std::string& reason,
                                            const TraceEvent* evidence,
                                            const std::vector<TraceEvent>*
                                                related) const;

  std::vector<std::unique_ptr<IMonitor>> monitors_;
  std::optional<ForensicsBundle> bundle_;
  std::size_t slice_window_ = 32;
};

}  // namespace ratcon::harness
