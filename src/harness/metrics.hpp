#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "workload/latency.hpp"

/// Compile-out guard: building with -DRATCON_METRICS_ENABLED=0 removes the
/// wire-edge emission points entirely (the inline helpers below compile to
/// nothing), mirroring RATCON_TRACE_ENABLED for the flight recorder.
#ifndef RATCON_METRICS_ENABLED
#define RATCON_METRICS_ENABLED 1
#endif

namespace ratcon::harness {

class JsonWriter;

/// Metrics timelines — the third observability pillar next to the profiler
/// ("where did the run spend its time") and the flight recorder ("what
/// happened, in what order"): bounded virtual-time series answering "how
/// did the system *evolve*" — queue depths building up, mempools filling,
/// heights progressing, rounds stretching. Same contract as the other two
/// pillars: enum-indexed flat storage, a thread_local registry with a
/// process-wide atomic default level, one recording per Simulation, and
/// zero cost when off (one thread_local read + compare per emission
/// point, no allocation at level 0).
///
/// Levels:
///  * 0 — off. Nothing allocated, nothing sampled.
///  * 1 — on: every metric below sampled once per virtual-time tick, wire
///        gauges maintained at the cluster edge, round durations recorded
///        at round entry, and the post-GST liveness watchdog armed.

/// Per-replica gauges and counters, sampled once per tick for every node.
enum class ReplicaMetric : std::uint8_t {
  kMempoolPending = 0,  ///< transactions waiting in the replica's pool
  kMempoolEvicted,      ///< cumulative overflow evictions
  kMempoolRejected,     ///< cumulative overflow rejections
  kFinalizedHeight,     ///< chain().finalized_height()
  kCurrentRound,        ///< round/term/view the replica is in
  kWireBytesSent,       ///< cumulative wire bytes this replica sent
  kSyncBacklog,         ///< best announced peer height − local finalized
  kDepositBalance,      ///< remaining collateral in the deposit ledger
  kNumReplicaMetrics,   ///< not a real metric
};

/// Cluster-wide gauges, sampled once per tick.
enum class GlobalMetric : std::uint8_t {
  kEventQueueDepth = 0,  ///< pending events in the simulator queue
  kInflightWireBytes,    ///< bytes sent but not yet delivered (or dropped)
  kNumGlobalMetrics,     ///< not a real metric
};

inline constexpr std::size_t kNumReplicaMetrics =
    static_cast<std::size_t>(ReplicaMetric::kNumReplicaMetrics);
inline constexpr std::size_t kNumGlobalMetrics =
    static_cast<std::size_t>(GlobalMetric::kNumGlobalMetrics);

/// Stable snake_case name ("mempool_pending", "event_queue_depth", …).
[[nodiscard]] const char* to_string(ReplicaMetric m);
[[nodiscard]] const char* to_string(GlobalMetric m);

/// One sample: virtual time and value. Integer-valued on purpose — every
/// series is byte-comparable across serial and parallel sweeps.
struct MetricSample {
  SimTime at = 0;
  std::int64_t value = 0;
  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// Fixed-capacity sample ring (model: TraceRing): overwrites the oldest
/// sample once full and counts everything ever pushed, so `dropped()` is
/// exact, not saturating.
class MetricRing {
 public:
  void reset(std::size_t capacity) {
    buf_.assign(capacity, MetricSample{});
    total_ = 0;
  }
  void push(const MetricSample& s) {
    if (buf_.empty()) return;
    buf_[total_ % buf_.size()] = s;
    ++total_;
  }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                                : buf_.size();
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > buf_.size() ? total_ - buf_.size() : 0;
  }
  /// i-th retained sample, oldest first.
  [[nodiscard]] const MetricSample& at(std::size_t i) const {
    const std::size_t start =
        total_ > buf_.size() ? static_cast<std::size_t>(total_ % buf_.size())
                             : 0;
    return buf_[(start + i) % buf_.size()];
  }

 private:
  std::vector<MetricSample> buf_;
  std::uint64_t total_ = 0;
};

/// One snapshotted series: the retained samples (oldest first) plus the
/// exact count of everything ever recorded into it.
struct MetricSeries {
  std::vector<MetricSample> samples;
  std::uint64_t total = 0;
  [[nodiscard]] std::uint64_t dropped() const {
    return total - samples.size();
  }
  [[nodiscard]] std::int64_t last() const {
    return samples.empty() ? 0 : samples.back().value;
  }
  friend bool operator==(const MetricSeries&, const MetricSeries&) = default;
};

/// Last observed protocol state of one replica — what the liveness
/// watchdog names in a stall verdict ("n3: round 7 entered at 412000µs,
/// height 1 since 38000µs").
struct MetricTransition {
  Round round = 0;
  SimTime round_at = 0;       ///< when that round was entered
  std::uint64_t height = 0;
  SimTime height_at = 0;      ///< when the height last advanced
  friend bool operator==(const MetricTransition&,
                         const MetricTransition&) = default;
};

/// The per-run snapshot riding RunReport::metrics and the MatrixReport
/// aggregation. Everything in it is integer/virtual-time-valued and
/// deterministic, so operator== checks serial == parallel byte-identity.
struct MetricsStats {
  int level = 0;
  std::uint32_t nodes = 0;
  SimTime tick = 0;            ///< sampling resolution (µs virtual)
  std::uint64_t ticks = 0;     ///< sampling passes completed
  std::uint64_t recorded = 0;  ///< samples pushed (retained + overwritten)
  std::uint64_t dropped = 0;   ///< samples overwritten by ring overflow

  /// Node-major per-replica series: index = node * kNumReplicaMetrics + m.
  std::vector<MetricSeries> replica;
  /// Cluster-wide series: index = GlobalMetric.
  std::vector<MetricSeries> global;

  /// Virtual-time duration of every completed round/term/view across all
  /// replicas (entry → next entry), for per-protocol p50/p99.
  workload::LatencyHistogram round_duration;

  /// Post-GST liveness watchdog verdict. `stall_verdict` names the
  /// stalling replicas and their last state transition.
  bool stalled = false;
  SimTime stalled_at = 0;
  std::vector<NodeId> stalled_replicas;
  std::string stall_verdict;

  [[nodiscard]] const MetricSeries& series(NodeId node,
                                           ReplicaMetric m) const {
    return replica[node * kNumReplicaMetrics + static_cast<std::size_t>(m)];
  }
  [[nodiscard]] const MetricSeries& series(GlobalMetric m) const {
    return global[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] bool empty() const { return level <= 0 || ticks == 0; }

  /// Sweep aggregation: counters add, round-duration histograms merge,
  /// stall verdicts concatenate (capped); the per-tick series stay
  /// per-cell and are dropped here (they are unmergeable across cells).
  MetricsStats& merge(const MetricsStats& other);

  friend bool operator==(const MetricsStats&, const MetricsStats&) = default;
};

/// Sums one replica metric across all nodes, tick-aligned (every node is
/// sampled in the same pass, so retained series share timestamps). Used
/// for the Chrome-tracing counter tracks and the compact JSON series.
[[nodiscard]] MetricSeries summed_replica_series(const MetricsStats& stats,
                                                 ReplicaMetric m);

/// The per-thread registry. `Get()` hands out one instance per thread; a
/// Simulation resets it at construction (rings sized to the committee,
/// allocated only when the level is non-zero) and snapshots it into its
/// RunReport — parallel matrix cells record independently and a serial
/// sweep sees byte-identical per-cell series.
class MetricsRegistry {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;  ///< samples/series

  [[nodiscard]] static MetricsRegistry& Get();

  /// Process-wide default level; every Simulation re-adopts it at
  /// construction (same contract as Profiler::SetDefaultLevel), so
  /// `bench_matrix_sweep --metrics=N` governs all worker threads.
  static void SetDefaultLevel(int level) {
    default_level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] static int DefaultLevel() {
    return default_level_.load(std::memory_order_relaxed);
  }

  /// Starts a fresh recording for `nodes` replicas at `level`. Rings are
  /// only allocated when level > 0; level 0 keeps the registry empty.
  void Reset(int level, std::uint32_t nodes,
             std::size_t capacity = kDefaultCapacity);

  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] bool enabled() const { return level_ > 0; }
  [[nodiscard]] std::uint32_t nodes() const { return nodes_; }

  /// The virtual clock samples are stamped from. Null falls back to 0.
  void set_clock(const SimTime* now) { now_ = now; }
  void set_tick(SimTime tick) { tick_ = tick; }

  // -- Sampling (driven by the Simulation's virtual-time tick) --------------
  void sample(NodeId node, ReplicaMetric m, std::int64_t value);
  void sample(GlobalMetric m, std::int64_t value);
  /// Marks one full sampling pass complete.
  void note_tick() { ++ticks_; }

  // -- Wire gauges (cluster edge; cheap, gated on enabled()) ----------------
  void wire_sent(std::size_t bytes) {
    inflight_ += static_cast<std::int64_t>(bytes);
  }
  void wire_delivered(std::size_t bytes) {
    inflight_ -= static_cast<std::int64_t>(bytes);
  }
  [[nodiscard]] std::int64_t inflight_bytes() const { return inflight_; }

  // -- Protocol state (emitted by the nodes / observed by the sampler) ------
  /// Round entry: records the previous round's duration (entry → entry)
  /// into the histogram and updates the node's last-transition record.
  void round_enter(NodeId node, Round round);
  /// Height progress bookkeeping for the watchdog's verdict.
  void note_height(NodeId node, std::uint64_t height);
  [[nodiscard]] const MetricTransition& last_transition(NodeId node) const {
    return tracks_[node];
  }

  /// Liveness watchdog verdict (recorded once by the Simulation).
  void record_stall(SimTime at, std::vector<NodeId> replicas,
                    std::string verdict);
  [[nodiscard]] bool stalled() const { return stalled_; }

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] const MetricRing& ring(NodeId node, ReplicaMetric m) const {
    return rings_[node * kNumReplicaMetrics + static_cast<std::size_t>(m)];
  }
  /// Internal allocation introspection (the level-0-allocates-nothing test).
  [[nodiscard]] std::size_t ring_count() const {
    return rings_.size() + global_rings_.size();
  }

  [[nodiscard]] MetricsStats snapshot() const;

 private:
  static std::atomic<int> default_level_;

  int level_ = DefaultLevel();
  std::uint32_t nodes_ = 0;
  SimTime tick_ = 0;
  std::uint64_t ticks_ = 0;
  const SimTime* now_ = nullptr;
  std::int64_t inflight_ = 0;
  std::vector<MetricRing> rings_;         ///< node-major replica series
  std::vector<MetricRing> global_rings_;  ///< GlobalMetric-indexed
  std::vector<MetricTransition> tracks_;
  std::vector<SimTime> round_entered_;    ///< per node, kSimTimeNever = none
  workload::LatencyHistogram round_duration_;
  bool stalled_ = false;
  SimTime stalled_at_ = 0;
  std::vector<NodeId> stalled_replicas_;
  std::string stall_verdict_;

  [[nodiscard]] SimTime now() const { return now_ ? *now_ : 0; }
};

#if RATCON_METRICS_ENABLED

/// True when the thread's registry is recording — emission points gate on
/// this before doing any work.
[[nodiscard]] inline bool metrics_on() {
  return MetricsRegistry::Get().enabled();
}

/// Wire-edge gauges: in-flight bytes go up at send, down at delivery (or
/// at the crash drop — either way the bytes left the wire).
inline void metrics_wire_sent(std::size_t bytes) {
  auto& reg = MetricsRegistry::Get();
  if (reg.enabled()) reg.wire_sent(bytes);
}
inline void metrics_wire_delivered(std::size_t bytes) {
  auto& reg = MetricsRegistry::Get();
  if (reg.enabled()) reg.wire_delivered(bytes);
}

/// Round-entry hook for the protocol nodes (next to their kRoundEnter
/// trace_state emission): feeds the round-duration histogram and the
/// watchdog's last-transition record.
inline void metrics_round_enter(NodeId node, Round round) {
  auto& reg = MetricsRegistry::Get();
  if (reg.enabled()) reg.round_enter(node, round);
}

#else  // RATCON_METRICS_ENABLED

[[nodiscard]] inline bool metrics_on() { return false; }
inline void metrics_wire_sent(std::size_t) {}
inline void metrics_wire_delivered(std::size_t) {}
inline void metrics_round_enter(NodeId, Round) {}

#endif  // RATCON_METRICS_ENABLED

/// Emits `stats` as a JSON object: the scalar counters, the stall verdict,
/// round-duration percentiles, and compact `[t, value]` series (replica
/// metrics summed across nodes, global metrics as-is). The writer must be
/// positioned where an object value is legal.
void write_metrics_json(JsonWriter& json, const MetricsStats& stats);

}  // namespace ratcon::harness
