#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ratcon::harness {

/// Minimal aligned-column table printer used by every bench binary to
/// render the paper's tables next to measured values.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment, a header underline and `indent` leading
  /// spaces per line.
  [[nodiscard]] std::string render(int indent = 2) const;

  /// Renders straight to stdout.
  void print(int indent = 2) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
std::string fmt(double value, int digits = 2);

/// Formats a ratio as "12.3x".
std::string fmt_ratio(double value, int digits = 1);

/// Formats an integer with thousands separators.
std::string fmt_count(std::uint64_t value);

/// Formats a byte count in human units (B/KiB/MiB).
std::string fmt_bytes(std::uint64_t value);

}  // namespace ratcon::harness
