#include "harness/matrix.hpp"

#include <algorithm>
#include <sstream>

#include "harness/table.hpp"

namespace ratcon::harness {

ScenarioSpec MatrixSpec::to_scenario(Protocol proto, std::uint32_t n,
                                     NetKind kind, std::uint64_t seed) const {
  ScenarioSpec scenario;
  scenario.protocol = proto;
  scenario.seed = seed;
  scenario.committee.n = n;
  scenario.net.kind = kind;
  scenario.net.delta = delta;
  scenario.net.gst = gst;
  scenario.net.hold_probability = hold_probability;
  scenario.workload.txs = workload_txs;
  scenario.workload.start = msec(1);
  scenario.workload.interval = msec(2);
  scenario.budget.target_blocks = target_blocks;
  scenario.budget.horizon = horizon;
  scenario.budget.wall_ms = cell_budget_ms;

  if (crash_count > 0) {
    scenario.faults.crash_range(0, std::min(crash_count, n), crash_at);
  }
  if (partition_pre_gst && n >= 2) {
    std::vector<NodeId> lower, upper;
    for (NodeId id = 0; id < n / 2; ++id) lower.push_back(id);
    for (NodeId id = n / 2; id < n; ++id) upper.push_back(id);
    scenario.faults.partition({lower, upper}, partition_at, gst);
  }
  return scenario;
}

bool MatrixReport::all_safe() const {
  for (const CellResult& cell : cells) {
    if (!cell.safe()) return false;
  }
  return true;
}

std::vector<const CellResult*> MatrixReport::unsafe_cells() const {
  std::vector<const CellResult*> out;
  for (const CellResult& cell : cells) {
    if (!cell.safe()) out.push_back(&cell);
  }
  return out;
}

std::vector<const CellResult*> MatrixReport::slowest_cells(
    std::size_t k) const {
  std::vector<const CellResult*> out;
  out.reserve(cells.size());
  for (const CellResult& cell : cells) out.push_back(&cell);
  std::stable_sort(out.begin(), out.end(),
                   [](const CellResult* a, const CellResult* b) {
                     return a->wall_ms > b->wall_ms;
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<const CellResult*> MatrixReport::over_budget_cells() const {
  std::vector<const CellResult*> out;
  for (const CellResult& cell : cells) {
    if (cell.over_budget()) out.push_back(&cell);
  }
  return out;
}

std::string MatrixReport::summary() const {
  Table t({"protocol", "n", "net", "seed", "min_h", "max_h", "msgs",
           "wall_ms", "safe"});
  for (const CellResult& cell : cells) {
    t.add_row({to_string(cell.protocol), std::to_string(cell.n),
               to_string(cell.net), std::to_string(cell.seed),
               std::to_string(cell.min_height), std::to_string(cell.max_height),
               fmt_count(cell.messages), fmt(cell.wall_ms, 1),
               cell.safe() ? "yes" : "NO"});
  }
  std::ostringstream os;
  os << t.render();
  const auto slowest = slowest_cells(3);
  if (!slowest.empty()) {
    os << "\n  slowest cells:";
    for (const CellResult* cell : slowest) {
      os << "\n    " << cell->label() << "  " << fmt(cell->wall_ms, 1)
         << " ms" << (cell->over_budget() ? "  OVER BUDGET" : "");
    }
    const std::size_t over = over_budget_cells().size();
    if (over > 0) {
      os << "\n  " << over << " cell(s) over the "
         << fmt(cells.front().budget_ms, 1) << " ms budget";
    }
    os << "\n";
  }
  return os.str();
}

CellResult run_cell(Protocol proto, std::uint32_t n, NetKind kind,
                    std::uint64_t seed, const MatrixSpec& spec) {
  Simulation sim(spec.to_scenario(proto, n, kind, seed));
  return sim.run_to_completion();
}

MatrixReport run_matrix(const MatrixSpec& spec) {
  MatrixReport report;
  report.cells.reserve(spec.protocols.size() * spec.committee_sizes.size() *
                       spec.nets.size() * spec.seeds.size());
  for (Protocol proto : spec.protocols) {
    for (std::uint32_t n : spec.committee_sizes) {
      for (NetKind kind : spec.nets) {
        for (std::uint64_t seed : spec.seeds) {
          report.cells.push_back(run_cell(proto, n, kind, seed, spec));
        }
      }
    }
  }
  return report;
}

}  // namespace ratcon::harness
