#include "harness/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <sstream>
#include <thread>

#include "harness/protocols.hpp"
#include "harness/table.hpp"

namespace ratcon::harness {

ScenarioSpec MatrixSpec::to_scenario(Protocol proto, std::uint32_t n,
                                     NetKind kind, std::uint64_t seed) const {
  ScenarioSpec scenario;
  scenario.protocol = proto;
  scenario.seed = seed;
  scenario.committee.n = n;
  scenario.net.kind = kind;
  scenario.net.delta = delta;
  scenario.net.gst = gst;
  scenario.net.hold_probability = hold_probability;
  if (workload_spec.has_value()) {
    scenario.workload = *workload_spec;
  } else {
    scenario.workload.txs = workload_txs;
    scenario.workload.start = msec(1);
    scenario.workload.interval = msec(2);
  }
  scenario.committee.max_block_txs = max_block_txs;
  scenario.committee.max_block_bytes = max_block_bytes;
  scenario.committee.mempool.max_pending = mempool_cap;
  scenario.budget.target_blocks = target_blocks;
  scenario.budget.horizon = horizon;
  scenario.budget.wall_ms = cell_budget_ms;
  scenario.sync_plan.enabled = sync_enabled;
  scenario.trace_level = trace_level;
  scenario.metrics_level = metrics_level;

  if (crash_count > 0) {
    scenario.faults.crash_range(0, std::min(crash_count, n), crash_at);
  }
  if (partition_pre_gst && n >= 2) {
    std::vector<NodeId> lower, upper;
    for (NodeId id = 0; id < n / 2; ++id) lower.push_back(id);
    for (NodeId id = n / 2; id < n; ++id) upper.push_back(id);
    scenario.faults.partition({lower, upper}, partition_at, gst);
  }
  return scenario;
}

bool MatrixReport::all_safe() const {
  for (const CellResult& cell : cells) {
    if (!cell.safe()) return false;
  }
  return true;
}

std::vector<const CellResult*> MatrixReport::unsafe_cells() const {
  std::vector<const CellResult*> out;
  for (const CellResult& cell : cells) {
    if (!cell.safe()) out.push_back(&cell);
  }
  return out;
}

std::vector<const CellResult*> MatrixReport::slowest_cells(
    std::size_t k) const {
  std::vector<const CellResult*> out;
  out.reserve(cells.size());
  for (const CellResult& cell : cells) out.push_back(&cell);
  std::stable_sort(out.begin(), out.end(),
                   [](const CellResult* a, const CellResult* b) {
                     return a->wall_ms > b->wall_ms;
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<const CellResult*> MatrixReport::over_budget_cells() const {
  std::vector<const CellResult*> out;
  for (const CellResult& cell : cells) {
    if (cell.over_budget()) out.push_back(&cell);
  }
  return out;
}

ProfReport MatrixReport::aggregate_profile() const {
  ProfReport total;
  for (const CellResult& cell : cells) total.merge(cell.profile);
  return total;
}

TraceStats MatrixReport::aggregate_trace() const {
  TraceStats total;
  for (const CellResult& cell : cells) total.merge(cell.trace);
  return total;
}

workload::WorkloadStats MatrixReport::aggregate_workload() const {
  workload::WorkloadStats total;
  for (const CellResult& cell : cells) total.merge(cell.workload);
  return total;
}

MetricsStats MatrixReport::aggregate_metrics() const {
  MetricsStats total;
  for (const CellResult& cell : cells) total.merge(cell.metrics);
  return total;
}

std::vector<std::pair<Protocol, workload::LatencyHistogram>>
MatrixReport::round_durations_by_protocol() const {
  std::vector<std::pair<Protocol, workload::LatencyHistogram>> out;
  for (const CellResult& cell : cells) {
    if (cell.metrics.round_duration.empty()) continue;
    auto it = std::find_if(out.begin(), out.end(), [&](const auto& entry) {
      return entry.first == cell.protocol;
    });
    if (it == out.end()) {
      out.emplace_back(cell.protocol, cell.metrics.round_duration);
    } else {
      it->second.merge(cell.metrics.round_duration);
    }
  }
  return out;
}

std::vector<const CellResult*> MatrixReport::stalled_cells() const {
  std::vector<const CellResult*> out;
  for (const CellResult& cell : cells) {
    if (cell.metrics.stalled) out.push_back(&cell);
  }
  return out;
}

double MatrixReport::total_wall_ms() const {
  double total = 0.0;
  for (const CellResult& cell : cells) total += cell.wall_ms;
  return total;
}

double MatrixReport::cells_per_sec() const {
  const double ms = total_wall_ms();
  if (ms <= 0.0) return 0.0;
  return static_cast<double>(cells.size()) / (ms / 1000.0);
}

std::string MatrixReport::summary() const {
  Table t({"protocol", "n", "net", "seed", "min_h", "max_h", "msgs",
           "sync_msgs", "txs", "p50_ms", "p99_ms", "rec_ms", "wall_ms",
           "safe"});
  for (const CellResult& cell : cells) {
    const SimTime rec = cell.recovery_latency();
    const workload::WorkloadStats& wl = cell.workload;
    t.add_row({to_string(cell.protocol), std::to_string(cell.n),
               to_string(cell.net), std::to_string(cell.seed),
               std::to_string(cell.min_height), std::to_string(cell.max_height),
               fmt_count(cell.messages), fmt_count(cell.sync_messages),
               fmt_count(wl.finalized),
               wl.latency.empty()
                   ? "-"
                   : fmt(static_cast<double>(wl.latency.p50()) / 1000.0, 1),
               wl.latency.empty()
                   ? "-"
                   : fmt(static_cast<double>(wl.latency.p99()) / 1000.0, 1),
               rec == kSimTimeNever ? "-" : fmt(static_cast<double>(rec) / 1000.0, 1),
               fmt(cell.wall_ms, 1), cell.safe() ? "yes" : "NO"});
  }
  std::ostringstream os;
  os << t.render();
  const auto slowest = slowest_cells(3);
  if (!slowest.empty()) {
    os << "\n  slowest cells:";
    for (const CellResult* cell : slowest) {
      os << "\n    " << cell->label() << "  " << fmt(cell->wall_ms, 1)
         << " ms" << (cell->over_budget() ? "  OVER BUDGET" : "");
    }
    const std::size_t over = over_budget_cells().size();
    if (over > 0) {
      os << "\n  " << over << " cell(s) over the "
         << fmt(cells.front().budget_ms, 1) << " ms budget";
    }
    os << "\n";
  }
  if (!cells.empty()) {
    os << "\n  " << fmt(cells_per_sec(), 2) << " cells/sec ("
       << cells.size() << " cells, " << fmt(total_wall_ms(), 1)
       << " ms summed cell wall-clock)\n";
    const workload::WorkloadStats wl = aggregate_workload();
    if (!wl.empty()) {
      os << "  workload: " << fmt_count(wl.finalized) << "/"
         << fmt_count(wl.submitted) << " txs finalized, "
         << wl.latency.summary();
      if (wl.evicted + wl.rejected > 0) {
        os << ", overflow evicted=" << fmt_count(wl.evicted)
           << " rejected=" << fmt_count(wl.rejected);
      }
      os << "\n";
    }
    for (const auto& [proto, hist] : round_durations_by_protocol()) {
      os << "  rounds[" << to_string(proto)
         << "]: p50=" << fmt(static_cast<double>(hist.p50()) / 1000.0, 1)
         << "ms p99=" << fmt(static_cast<double>(hist.p99()) / 1000.0, 1)
         << "ms (n=" << hist.total() << " virtual-time)\n";
    }
    const auto stalled = stalled_cells();
    if (!stalled.empty()) {
      os << "  " << stalled.size() << " cell(s) STALLED (liveness watchdog):\n";
      for (const CellResult* cell : stalled) {
        os << "    " << cell->label() << ": " << cell->metrics.stall_verdict
           << "\n";
      }
    }
    const TraceStats trace = aggregate_trace();
    if (trace.level > 0) {
      os << "  trace: level " << trace.level << ", "
         << fmt_count(trace.recorded) << " events ("
         << fmt_count(trace.dropped) << " dropped), monitors: ";
      if (trace.violations == 0) {
        os << "ok\n";
      } else {
        os << trace.violations << " violation(s)\n";
        for (const std::string& v : trace.verdicts) {
          os << "    " << v << "\n";
        }
      }
    }
    os << "\n" << aggregate_profile().format() << "\n";
  }
  return os.str();
}

CellResult run_cell(Protocol proto, std::uint32_t n, NetKind kind,
                    std::uint64_t seed, const MatrixSpec& spec) {
  Simulation sim(spec.to_scenario(proto, n, kind, seed));
  CellResult result = sim.run_to_completion();
  // Forensics must be written while `sim` is alive: the recorder's rings
  // belong to this thread's sink and the next cell's Reset would clear
  // them.
  if (!spec.forensics_dir.empty() &&
      (sim.monitors().violated() || !result.safe())) {
    std::string stem = result.label();
    for (char& c : stem) {
      if (c == '/' || c == '=') c = '_';
    }
    if (sim.forensics().has_value()) {
      sim.forensics()->write(spec.forensics_dir, stem);
    } else if (result.trace.level >= 1) {
      sim.monitors()
          .build_bundle("matrix cell safety assertion failed: " +
                        result.label())
          .write(spec.forensics_dir, stem);
    }
  }
  return result;
}

void parallel_cells(std::size_t count, std::uint32_t workers,
                    const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  std::uint32_t pool_size =
      workers != 0 ? workers
                   : std::max(1u, std::thread::hardware_concurrency());
  pool_size = std::min<std::uint32_t>(pool_size,
                                      static_cast<std::uint32_t>(count));
  if (pool_size <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(pool_size);
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (std::uint32_t w = 0; w < pool_size; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          // A throw on a bare thread would std::terminate the process;
          // capture it, stop handing out work, rethrow on the caller.
          errors[w] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

MatrixReport run_matrix(const MatrixSpec& spec) {
  struct CellKey {
    Protocol proto;
    std::uint32_t n;
    NetKind kind;
    std::uint64_t seed;
  };
  std::vector<CellKey> keys;
  keys.reserve(spec.protocols.size() * spec.committee_sizes.size() *
               spec.nets.size() * spec.seeds.size());
  for (Protocol proto : spec.protocols) {
    for (std::uint32_t n : spec.committee_sizes) {
      for (NetKind kind : spec.nets) {
        for (std::uint64_t seed : spec.seeds) {
          keys.push_back({proto, n, kind, seed});
        }
      }
    }
  }

  MatrixReport report;
  report.cells.resize(keys.size());
  if (keys.empty()) return report;

  // Warm the protocol registry before fanning out (its lazy init is a
  // thread-safe magic static, but first-touch under contention is wasted
  // work); every cell is otherwise an isolated seeded Simulation, so the
  // results are position-stable and identical to a serial sweep.
  for (Protocol proto : spec.protocols) {
    (void)protocol_traits(proto);
  }
  parallel_cells(keys.size(), spec.workers, [&](std::size_t i) {
    const CellKey& k = keys[i];
    report.cells[i] = run_cell(k.proto, k.n, k.kind, k.seed, spec);
  });
  return report;
}

}  // namespace ratcon::harness
