#include "harness/matrix.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "baselines/hotstuff.hpp"
#include "baselines/raftlite.hpp"
#include "harness/prft_cluster.hpp"
#include "harness/replica_cluster.hpp"
#include "harness/table.hpp"

namespace ratcon::harness {

namespace {

/// Chunk size for the run loop: long enough to amortize the height checks,
/// short enough that early exit saves real work on big committees.
constexpr SimTime kRunChunk = sec(1);

template <typename Cluster>
void schedule_crashes(Cluster& cluster, std::uint32_t n,
                      const MatrixSpec& spec) {
  if (spec.crash_count == 0) return;
  const std::uint32_t count = std::min(spec.crash_count, n);
  cluster.net().schedule(spec.crash_at, [&cluster, count]() {
    for (NodeId id = 0; id < count; ++id) cluster.net().crash(id);
  });
}

/// Shared drive loop + result capture for both cluster flavours. The only
/// per-protocol difference is how "an honest deposit was burned" is read.
template <typename Cluster, typename SlashedFn>
CellResult drive_cell(Cluster& cluster, Protocol proto, std::uint32_t n,
                      NetKind kind, std::uint64_t seed, const MatrixSpec& spec,
                      SlashedFn honest_slashed) {
  cluster.inject_workload(spec.workload_txs, msec(1), msec(2));
  schedule_crashes(cluster, n, spec);
  cluster.start();
  while (cluster.net().now() < spec.horizon &&
         cluster.min_height() < spec.target_blocks) {
    const SimTime before = cluster.net().now();
    cluster.run_for(kRunChunk);
    if (cluster.net().now() == before) break;  // queue drained
  }

  CellResult cell;
  cell.protocol = proto;
  cell.n = n;
  cell.net = kind;
  cell.seed = seed;
  cell.agreement = cluster.agreement_holds();
  cell.ordering = cluster.ordering_holds();
  cell.honest_slashed = honest_slashed(cluster);
  cell.min_height = cluster.min_height();
  cell.max_height = cluster.max_height();
  cell.messages = cluster.net().stats().total().count;
  cell.bytes = cluster.net().stats().total().bytes;
  return cell;
}

CellResult run_prft_cell(std::uint32_t n, NetKind kind, std::uint64_t seed,
                         const MatrixSpec& spec) {
  PrftClusterOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.delta = spec.delta;
  opt.target_blocks = spec.target_blocks;
  opt.make_net = [kind, &spec]() { return make_net_model(kind, spec); };

  PrftCluster cluster(opt);
  return drive_cell(cluster, Protocol::kPrft, n, kind, seed, spec,
                    [](PrftCluster& c) { return c.honest_player_slashed(); });
}

ReplicaCluster::Factory baseline_factory(Protocol proto) {
  return [proto](NodeId id, const consensus::Config& cfg,
                 crypto::KeyRegistry& registry, ledger::DepositLedger&)
             -> std::unique_ptr<consensus::IReplica> {
    if (proto == Protocol::kHotStuff) {
      baselines::HotstuffNode::Deps deps;
      deps.cfg = cfg;
      deps.registry = &registry;
      deps.keys = registry.generate(id, 4);
      auto node = std::make_unique<baselines::HotstuffNode>(std::move(deps));
      node->set_target_blocks(cfg.target_rounds);
      return node;
    }
    baselines::RaftLiteNode::Deps deps;
    deps.cfg = cfg;
    deps.registry = &registry;
    deps.keys = registry.generate(id, 4);
    auto node = std::make_unique<baselines::RaftLiteNode>(std::move(deps));
    node->set_target_blocks(cfg.target_rounds);
    return node;
  };
}

CellResult run_baseline_cell(Protocol proto, std::uint32_t n, NetKind kind,
                             std::uint64_t seed, const MatrixSpec& spec) {
  ReplicaCluster::Options opt;
  opt.n = n;
  opt.t0 = proto == Protocol::kRaftLite ? 0 : consensus::bft_t0(n);
  opt.seed = seed;
  opt.delta = spec.delta;
  opt.target_blocks = spec.target_blocks;
  opt.make_net = [kind, &spec]() { return make_net_model(kind, spec); };
  opt.factory = baseline_factory(proto);

  ReplicaCluster cluster(std::move(opt));
  // Baselines never slash here: the factories build only honest replicas, so
  // any burned deposit would be an accountability soundness violation.
  return drive_cell(cluster, proto, n, kind, seed, spec,
                    [](ReplicaCluster& c) {
                      return !c.deposits().slashed_players().empty();
                    });
}

}  // namespace

const char* to_string(NetKind kind) {
  switch (kind) {
    case NetKind::kSynchronous:
      return "synchronous";
    case NetKind::kPartialSynchrony:
      return "partial-synchrony";
    case NetKind::kAsynchronous:
      return "asynchronous";
  }
  return "unknown-net";
}

const char* to_string(Protocol proto) {
  switch (proto) {
    case Protocol::kPrft:
      return "prft";
    case Protocol::kHotStuff:
      return "hotstuff";
    case Protocol::kRaftLite:
      return "raftlite";
  }
  return "unknown-protocol";
}

std::string CellResult::label() const {
  std::ostringstream os;
  os << to_string(protocol) << "/n=" << n << "/" << to_string(net)
     << "/seed=" << seed;
  return os.str();
}

bool MatrixReport::all_safe() const {
  for (const CellResult& cell : cells) {
    if (!cell.safe()) return false;
  }
  return true;
}

std::vector<const CellResult*> MatrixReport::unsafe_cells() const {
  std::vector<const CellResult*> out;
  for (const CellResult& cell : cells) {
    if (!cell.safe()) out.push_back(&cell);
  }
  return out;
}

std::string MatrixReport::summary() const {
  Table t({"protocol", "n", "net", "seed", "min_h", "max_h", "msgs", "safe"});
  for (const CellResult& cell : cells) {
    t.add_row({to_string(cell.protocol), std::to_string(cell.n),
               to_string(cell.net), std::to_string(cell.seed),
               std::to_string(cell.min_height), std::to_string(cell.max_height),
               fmt_count(cell.messages), cell.safe() ? "yes" : "NO"});
  }
  return t.render();
}

std::unique_ptr<net::NetworkModel> make_net_model(NetKind kind,
                                                  const MatrixSpec& spec) {
  switch (kind) {
    case NetKind::kSynchronous:
      return net::make_synchronous(spec.delta);
    case NetKind::kPartialSynchrony:
      return net::make_partial_synchrony(spec.gst, spec.delta,
                                         spec.hold_probability);
    case NetKind::kAsynchronous:
      return net::make_asynchronous(spec.delta, 20 * spec.delta);
  }
  return net::make_synchronous(spec.delta);
}

CellResult run_cell(Protocol proto, std::uint32_t n, NetKind kind,
                    std::uint64_t seed, const MatrixSpec& spec) {
  if (proto == Protocol::kPrft) return run_prft_cell(n, kind, seed, spec);
  return run_baseline_cell(proto, n, kind, seed, spec);
}

MatrixReport run_matrix(const MatrixSpec& spec) {
  MatrixReport report;
  report.cells.reserve(spec.protocols.size() * spec.committee_sizes.size() *
                       spec.nets.size() * spec.seeds.size());
  for (Protocol proto : spec.protocols) {
    for (std::uint32_t n : spec.committee_sizes) {
      for (NetKind kind : spec.nets) {
        for (std::uint64_t seed : spec.seeds) {
          report.cells.push_back(run_cell(proto, n, kind, seed, spec));
        }
      }
    }
  }
  return report;
}

}  // namespace ratcon::harness
