#include "harness/jsonio.hpp"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ratcon::harness {

void JsonWriter::comma_for_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject && !have_key_) {
    throw std::logic_error("JsonWriter: object member needs a key");
  }
  if (need_comma_ && !have_key_) out_ += ',';
  need_comma_ = false;
  have_key_ = false;
}

void JsonWriter::opened(Frame f) {
  stack_.push_back(f);
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  opened(Frame::kObject);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  opened(Frame::kArray);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (need_comma_) out_ += ',';
  need_comma_ = false;
  append_escaped(out_, k);
  out_ += ':';
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  append_escaped(out_, v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    // std::to_chars: shortest round-trip representation, and locale-free
    // (snprintf("%g") would honor LC_NUMERIC and could emit a comma
    // decimal separator — invalid JSON).
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.append(buf, res.ptr);
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unterminated containers");
  }
  return out_;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace ratcon::harness
