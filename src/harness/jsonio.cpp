#include "harness/jsonio.hpp"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ratcon::harness {

void JsonWriter::comma_for_value() {
  if (!stack_.empty() && stack_.back() == Frame::kObject && !have_key_) {
    throw std::logic_error("JsonWriter: object member needs a key");
  }
  if (need_comma_ && !have_key_) out_ += ',';
  need_comma_ = false;
  have_key_ = false;
}

void JsonWriter::opened(Frame f) {
  stack_.push_back(f);
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  opened(Frame::kObject);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  opened(Frame::kArray);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || have_key_) {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (need_comma_) out_ += ',';
  need_comma_ = false;
  append_escaped(out_, k);
  out_ += ':';
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  append_escaped(out_, v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    // std::to_chars: shortest round-trip representation, and locale-free
    // (snprintf("%g") would honor LC_NUMERIC and could emit a comma
    // decimal separator — invalid JSON).
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.append(buf, res.ptr);
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unterminated containers");
  }
  return out_;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(),
          static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::string out((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  if (f.bad()) return std::nullopt;
  return out;
}

// -- JsonValue --------------------------------------------------------------

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::at_path(std::string_view path) const {
  const JsonValue* cur = this;
  while (!path.empty() && cur != nullptr) {
    const std::size_t dot = path.find('.');
    const std::string_view hop =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    cur = cur->get(hop);
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
  }
  return cur;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-limited so a
/// hostile artifact cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs out of
            // scope — the artifacts never emit them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    double parsed = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, parsed);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = parsed;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JsonValue member;
        if (!parse_value(member, depth + 1)) return false;
        out.members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue item;
        if (!parse_value(item, depth + 1)) return false;
        out.items.push_back(std::move(item));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    return parse_number(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace ratcon::harness
