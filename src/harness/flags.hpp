#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ratcon::harness {

/// Tiny command-line flag parser for bench/example binaries:
/// `--name=value` or `--name value`; bare `--name` is treated as "1".
class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::string get_str(const std::string& name,
                                    const std::string& fallback) const;
  [[nodiscard]] bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ratcon::harness
