#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ledger/mempool.hpp"
#include "workload/spec.hpp"

namespace ratcon::harness {

/// Tiny command-line flag parser for bench/example binaries:
/// `--name=value` or `--name value`; bare `--name` is treated as "1".
class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::string get_str(const std::string& name,
                                    const std::string& fallback) const;
  [[nodiscard]] bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Workload-engine command-line surface shared by bench_workload and
/// bench_matrix_sweep, so the same generator is reachable from every
/// entry point with the same spelling:
///   --workload=fixed|open|closed   arrival generator
///   --rate=<tx/s>                  open-loop base rate
///   --clients=<k> --think-us=<µs>  closed-loop population + mean think
///   --txs=<count>                  transactions per cell
///   --zipf=<s> --senders=<pop>     sender skew (0 = uniform/round-robin)
///   --payload-bytes=<b>            filler bytes per transfer
///   --max-block-txs / --max-block-bytes   proposer budgets
///   --mempool-cap [--mempool-reject]      pool bound + overflow policy
struct WorkloadFlags {
  workload::WorkloadSpec spec;
  std::uint32_t max_block_txs = 64;
  std::size_t max_block_bytes = 0;
  ledger::MempoolLimits mempool;

  /// Re-emits the flags (`--name=value`) such that parsing them yields
  /// this exact struct back — the round-trip contract benches rely on
  /// when they echo their configuration into artifacts.
  [[nodiscard]] std::vector<std::string> to_args() const;

  friend bool operator==(const WorkloadFlags&, const WorkloadFlags&) = default;
};

/// Reads the workload surface out of `flags`, starting from `defaults`
/// (flags that are absent keep the default's value).
[[nodiscard]] WorkloadFlags parse_workload_flags(
    const Flags& flags, const WorkloadFlags& defaults = {});

/// Observability command-line surface shared by the sweep benches, so all
/// three pillars (profiler, flight recorder, metrics timelines) plus their
/// outputs are reachable from every entry point with one spelling:
///   --prof-level=0..3       profiler collection level (0 = off)
///   --trace=0..3            flight recorder level (0 = off)
///   --metrics=0..2          metrics-timeline level (0 = off)
///   --forensics=<dir>       dump bundles for unsafe/violated cells
///   --compare=<baseline>    diff this run's artifact against a baseline
///   --dump-slowest=<path>   re-run the slowest cell with trace+metrics on
///                           and write the merged Chrome trace JSON there
struct ObservabilityFlags {
  int prof_level = 3;
  int trace_level = 0;
  int metrics_level = 0;
  std::string forensics_dir;
  std::string compare_baseline;
  std::string dump_slowest;

  /// Re-emits the flags (`--name=value`) such that parsing them yields
  /// this exact struct back — same round-trip contract as WorkloadFlags.
  [[nodiscard]] std::vector<std::string> to_args() const;

  friend bool operator==(const ObservabilityFlags&,
                         const ObservabilityFlags&) = default;
};

/// Reads the observability surface out of `flags`, starting from
/// `defaults` (flags that are absent keep the default's value).
[[nodiscard]] ObservabilityFlags parse_observability_flags(
    const Flags& flags, const ObservabilityFlags& defaults = {});

}  // namespace ratcon::harness
