#include "harness/monitor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "harness/jsonio.hpp"

namespace ratcon::harness {

namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

/// Shared latch-first-violation plumbing.
class MonitorBase : public IMonitor {
 public:
  [[nodiscard]] const MonitorVerdict& verdict() const override {
    return verdict_;
  }

 protected:
  explicit MonitorBase(const char* name) { verdict_.monitor = name; }
  [[nodiscard]] const char* name() const override {
    return verdict_.monitor.c_str();
  }
  void checked() { ++verdict_.checked; }
  void flag(const TraceEvent& ev, std::string detail,
            std::vector<TraceEvent> related = {}) {
    if (verdict_.violated) return;  // latch the first violation only
    verdict_.violated = true;
    verdict_.detail = std::move(detail);
    verdict_.evidence = ev;
    verdict_.related = std::move(related);
  }

  MonitorVerdict verdict_;
};

/// A held lock is never replaced in place by one from an older round for
/// the same height — the HotStuff/pBFT lock rule only ever moves a height's
/// lock forward in view order. Re-anchors at a *different* height (chained
/// progress, sync adoption) are legal; the protocols emit kLockRelease when
/// they drop a lock, so a silent same-height backwards jump is a real bug.
class LockMonotonicityMonitor final : public MonitorBase {
 public:
  LockMonotonicityMonitor() : MonitorBase("lock-monotonicity") {}

  void on_event(const TraceEvent& ev) override {
    if (ev.kind == TraceKind::kLockRelease) {
      held_.erase(ev.node);
      return;
    }
    if (ev.kind != TraceKind::kLockAcquire) return;
    checked();
    auto it = held_.find(ev.node);
    if (it != held_.end() && ev.a == it->second.height &&
        ev.round < it->second.round) {
      flag(ev, fmt("n%u re-locked h=%" PRIu64 " at round %" PRIu64
                   " while holding a round-%" PRIu64 " lock",
                   ev.node, ev.a, ev.round, it->second.round));
    }
    held_[ev.node] = Held{ev.a, ev.round};
  }

 private:
  struct Held {
    std::uint64_t height;
    Round round;
  };
  std::map<NodeId, Held> held_;
};

/// Agreement, live: the first finalize at each height fixes the value;
/// any replica finalizing a different value at that height is a safety
/// violation (the injected double-finalize trips exactly this).
class ConflictingFinalizeMonitor final : public MonitorBase {
 public:
  ConflictingFinalizeMonitor() : MonitorBase("conflicting-finalize") {}

  void on_event(const TraceEvent& ev) override {
    if (ev.kind != TraceKind::kFinalize) return;
    checked();
    auto [it, inserted] = first_.try_emplace(ev.a, ev);
    if (inserted) return;
    const TraceEvent& prior = it->second;
    if (prior.b != ev.b) {
      flag(ev,
           fmt("conflicting finalize at h=%" PRIu64 ": n%u val=%016" PRIx64
               " (seq %" PRIu64 ") vs n%u val=%016" PRIx64 " (seq %" PRIu64
               ")",
               ev.a, ev.node, ev.b, ev.seq, prior.node, prior.b, prior.seq),
           {prior});
    }
  }

 private:
  std::map<std::uint64_t, TraceEvent> first_;  // height -> first finalize
};

/// Every finalize must carry a certificate of at least the protocol's
/// quorum. aux < 0 marks a delegated finalize (a CFT follower committing
/// on the leader's kCommit, which carries no certificate) — exempt.
class QuorumThresholdMonitor final : public MonitorBase {
 public:
  explicit QuorumThresholdMonitor(std::int64_t threshold)
      : MonitorBase("quorum-threshold"), threshold_(threshold) {}

  void on_event(const TraceEvent& ev) override {
    if (ev.kind != TraceKind::kFinalize) return;
    checked();
    if (ev.aux >= 0 && ev.aux < threshold_) {
      flag(ev, fmt("n%u finalized h=%" PRIu64 " with a certificate of %" PRId64
                   " votes (< quorum %" PRId64 ")",
                   ev.node, ev.a, ev.aux, threshold_));
    }
  }

 private:
  std::int64_t threshold_;
};

/// Slashing is bounded by the deposit: the ledger must never report a
/// negative post-burn balance.
class DepositMonitor final : public MonitorBase {
 public:
  DepositMonitor() : MonitorBase("deposit-non-negative") {}

  void on_event(const TraceEvent& ev) override {
    if (ev.kind != TraceKind::kSlash) return;
    checked();
    if (ev.aux < 0) {
      flag(ev, fmt("slash of n%u for round %" PRIu64
                   " left balance %" PRId64 " (< 0)",
                   ev.node, ev.round, ev.aux));
    }
  }
};

}  // namespace

std::string MonitorVerdict::summary() const {
  if (!violated) {
    return fmt("%s: ok (%" PRIu64 " checked)", monitor.c_str(), checked);
  }
  return monitor + ": VIOLATED — " + detail;
}

bool ForensicsBundle::write(const std::string& dir,
                            const std::string& stem) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  const std::string base = dir + "/" + stem;
  bool ok = write_text_file(base + ".txt", text);
  ok = write_text_file(base + ".trace.json", chrome_json) && ok;
  return ok;
}

void MonitorSet::install_standard(std::int64_t quorum_threshold) {
  add(std::make_unique<LockMonotonicityMonitor>());
  add(std::make_unique<ConflictingFinalizeMonitor>());
  add(std::make_unique<QuorumThresholdMonitor>(quorum_threshold));
  add(std::make_unique<DepositMonitor>());
}

void MonitorSet::add(std::unique_ptr<IMonitor> monitor) {
  monitors_.push_back(std::move(monitor));
}

void MonitorSet::on_trace_event(const TraceEvent& ev) {
  for (auto& m : monitors_) {
    const bool was = m->verdict().violated;
    m->on_event(ev);
    if (!was && m->verdict().violated && !bundle_) {
      const MonitorVerdict& v = m->verdict();
      bundle_ = make_bundle(v.monitor + ": " + v.detail, &v.evidence,
                            &v.related);
    }
  }
}

bool MonitorSet::violated() const {
  return std::any_of(monitors_.begin(), monitors_.end(),
                     [](const auto& m) { return m->verdict().violated; });
}

std::uint64_t MonitorSet::violations() const {
  std::uint64_t n = 0;
  for (const auto& m : monitors_) n += m->verdict().violated ? 1 : 0;
  return n;
}

std::vector<MonitorVerdict> MonitorSet::verdicts() const {
  std::vector<MonitorVerdict> out;
  out.reserve(monitors_.size());
  for (const auto& m : monitors_) out.push_back(m->verdict());
  return out;
}

ForensicsBundle MonitorSet::build_bundle(const std::string& reason) const {
  return make_bundle(reason, nullptr, nullptr);
}

ForensicsBundle MonitorSet::make_bundle(
    const std::string& reason, const TraceEvent* evidence,
    const std::vector<TraceEvent>* related) const {
  const TraceSink& sink = TraceSink::Get();
  const std::vector<TraceEvent> all = sink.merged();
  const std::uint64_t horizon =
      evidence != nullptr ? evidence->seq
                          : (all.empty() ? 0 : all.back().seq);

  // Key events: the violation itself plus anything the monitor tied to it
  // (for a double finalize, the first finalize at that height).
  std::vector<TraceEvent> keys;
  if (evidence != nullptr) keys.push_back(*evidence);
  if (related != nullptr) {
    keys.insert(keys.end(), related->begin(), related->end());
  }

  // The slice: per node, the newest `slice_window_` events up to the
  // violation — plus, per key event, the same window ending at *that*
  // event on its own node, so the messages that led to each key event
  // survive even if the node stayed busy afterwards.
  std::set<std::uint64_t> keep;
  std::map<NodeId, std::size_t> per_node;
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->seq > horizon) continue;
    if (per_node[it->node]++ < slice_window_) keep.insert(it->seq);
  }
  for (const auto& key : keys) {
    std::size_t taken = 0;
    for (auto it = all.rbegin(); it != all.rend(); ++it) {
      if (it->seq > key.seq || it->node != key.node) continue;
      if (taken++ >= slice_window_) break;
      keep.insert(it->seq);
    }
  }
  std::vector<TraceEvent> slice;
  slice.reserve(keep.size());
  for (const auto& ev : all) {
    if (keep.count(ev.seq)) slice.push_back(ev);
  }

  ForensicsBundle bundle;
  bundle.reason = reason;

  std::string text = "=== forensics bundle ===\nreason: " + reason + "\n";
  if (!keys.empty()) {
    text += "\nkey events:\n";
    text += format_trace_text(keys);
    for (const auto& key : keys) {
      text += fmt("\nmessages leading to %s on n%u (seq %" PRIu64 "):\n",
                  to_string(key.kind), key.node, key.seq);
      std::vector<TraceEvent> lead;
      for (const auto& ev : slice) {
        if (ev.node != key.node || ev.seq >= key.seq) continue;
        if (ev.kind == TraceKind::kRecv || ev.kind == TraceKind::kDeliver ||
            ev.kind == TraceKind::kSend) {
          lead.push_back(ev);
        }
      }
      text += lead.empty() ? "  (none recorded — raise the trace level)\n"
                           : format_trace_text(lead);
    }
  }
  text += fmt("\n--- causally-ordered slice (%zu events, %u nodes, drops=%"
              PRIu64 ") ---\n",
              slice.size(), sink.nodes(), sink.dropped());
  text += format_trace_text(slice);
  bundle.text = std::move(text);
  bundle.chrome_json = chrome_trace_json(slice, sink.nodes());
  return bundle;
}

}  // namespace ratcon::harness
