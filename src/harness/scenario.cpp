#include "harness/scenario.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/pool.hpp"
#include "harness/jsonio.hpp"
#include "harness/protocols.hpp"

namespace ratcon::harness {

const char* to_string(NetKind kind) {
  switch (kind) {
    case NetKind::kSynchronous:
      return "synchronous";
    case NetKind::kPartialSynchrony:
      return "partial-synchrony";
    case NetKind::kAsynchronous:
      return "asynchronous";
  }
  return "unknown-net";
}

const char* to_string(Protocol proto) {
  switch (proto) {
    case Protocol::kPrft:
      return "prft";
    case Protocol::kHotStuff:
      return "hotstuff";
    case Protocol::kRaftLite:
      return "raftlite";
    case Protocol::kQuorum:
      return "quorum";
    case Protocol::kUnanimous:
      return "unanimous";
  }
  return "unknown-protocol";
}

// -- NetworkSpec ------------------------------------------------------------

std::unique_ptr<net::NetworkModel> NetworkSpec::build() const {
  if (custom) return custom();
  switch (kind) {
    case NetKind::kSynchronous:
      return net::make_synchronous(delta);
    case NetKind::kPartialSynchrony:
      return net::make_partial_synchrony(gst, delta, hold_probability);
    case NetKind::kAsynchronous:
      return net::make_asynchronous(async_mean > 0 ? async_mean : delta,
                                    async_cap > 0 ? async_cap : 20 * delta);
  }
  return net::make_synchronous(delta);
}

NetworkSpec NetworkSpec::synchronous(SimTime delta) {
  NetworkSpec spec;
  spec.kind = NetKind::kSynchronous;
  spec.delta = delta;
  return spec;
}

NetworkSpec NetworkSpec::partial_synchrony(SimTime gst, SimTime delta,
                                           double hold_probability) {
  NetworkSpec spec;
  spec.kind = NetKind::kPartialSynchrony;
  spec.gst = gst;
  spec.delta = delta;
  spec.hold_probability = hold_probability;
  return spec;
}

NetworkSpec NetworkSpec::asynchronous(SimTime mean, SimTime cap) {
  NetworkSpec spec;
  spec.kind = NetKind::kAsynchronous;
  spec.async_mean = mean;
  spec.async_cap = cap;
  return spec;
}

// -- FaultPlan --------------------------------------------------------------

FaultPlan& FaultPlan::crash(NodeId node, SimTime at) {
  crashes.push_back({node, at});
  return *this;
}

FaultPlan& FaultPlan::crash_range(NodeId first, std::uint32_t count,
                                  SimTime at) {
  for (std::uint32_t i = 0; i < count; ++i) {
    crashes.push_back({static_cast<NodeId>(first + i), at});
  }
  return *this;
}

FaultPlan& FaultPlan::partition(std::vector<std::vector<NodeId>> groups,
                                SimTime at, SimTime heal_at) {
  partitions.push_back({std::move(groups), at, heal_at});
  return *this;
}

// -- ScenarioSpec -----------------------------------------------------------

ScenarioSpec& ScenarioSpec::with_protocol(Protocol p) {
  protocol = p;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_n(std::uint32_t n) {
  committee.n = n;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_net(NetworkSpec n) {
  net = std::move(n);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_target_blocks(std::uint64_t blocks) {
  budget.target_blocks = blocks;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_workload(std::uint64_t txs, SimTime start,
                                          SimTime interval) {
  workload.txs = txs;
  workload.start = start;
  workload.interval = interval;
  return *this;
}

ScenarioSpec& ScenarioSpec::with_workload(workload::WorkloadSpec spec) {
  workload = std::move(spec);
  return *this;
}

ScenarioSpec& ScenarioSpec::with_sync(bool enabled) {
  sync_plan.enabled = enabled;
  return *this;
}

namespace {

std::string cell_label(Protocol proto, std::uint32_t n, NetKind kind,
                       std::uint64_t seed) {
  std::ostringstream os;
  os << to_string(proto) << "/n=" << n << "/" << to_string(kind)
     << "/seed=" << seed;
  return os.str();
}

}  // namespace

std::string ScenarioSpec::label() const {
  return cell_label(protocol, committee.n, net.kind, seed);
}

std::string RunReport::label() const {
  return cell_label(protocol, n, net, seed);
}

// -- Simulation -------------------------------------------------------------

Simulation::Simulation(ScenarioSpec spec) : spec_(std::move(spec)) {
  // One profiler report per run: the calling thread's counters restart with
  // the simulation they will describe (parallel sweeps run each cell on one
  // worker thread, so the thread_local instance is this run's alone). The
  // level re-adopts the process-wide default so a pre-sweep
  // SetDefaultLevel() governs every worker thread.
  Profiler::Get().SetLevel(Profiler::DefaultLevel());
  Profiler::Get().Reset();
  // The wire-scratch pool restarts cold with the run for the same reason:
  // a pool left warm by a prior run on this thread would make the scratch
  // reuse/miss counters differ between serial and parallel sweeps.
  BytePool::local().purge();

  const ProtocolTraits& traits = protocol_traits(spec_.protocol);
  const CommitteeSpec& com = spec_.committee;

  cfg_.n = com.n;
  cfg_.t0 = com.t0.value_or(traits.default_t0(com.n));
  cfg_.delta = spec_.net.delta;
  cfg_.base_timeout = com.base_timeout.value_or(8 * spec_.net.delta);
  cfg_.target_rounds = spec_.budget.target_blocks;
  cfg_.max_block_txs = com.max_block_txs;
  cfg_.max_block_bytes = com.max_block_bytes;

  // Shared trusted setup (§3.3): one key registry and one collateral pool,
  // identical for every protocol the registry deploys.
  registry_ = std::make_unique<crypto::KeyRegistry>();
  deposits_ = std::make_unique<ledger::DepositLedger>(com.collateral);
  deposits_->register_players(com.n);
  cluster_ = std::make_unique<net::Cluster>(spec_.net.build(), spec_.seed);

  // Flight recorder: one recording per run, same thread_local contract as
  // the profiler above. The monitors subscribe only when tracing is on —
  // level 0 leaves the sink observer-free and ring-free.
  {
    TraceSink& sink = TraceSink::Get();
    const int level =
        spec_.trace_level >= 0 ? spec_.trace_level : TraceSink::DefaultLevel();
    sink.Reset(level, com.n,
               spec_.trace_capacity != 0 ? spec_.trace_capacity
                                         : TraceSink::kDefaultCapacity);
    sink.set_clock(cluster_->now_ptr());
    if (level >= 1) {
      // floor(n/2)+1 is a valid certificate floor for every protocol here
      // (pRFT, pBFT-class and HotStuff quorums are all larger).
      monitors_.install_standard(
          static_cast<std::int64_t>(com.n / 2 + 1));
      sink.set_observer(&monitors_);
    }
  }

  // Metrics timelines: the same one-recording-per-run contract. Level 0
  // allocates nothing; level 1 arms the virtual-time sampler (scheduled in
  // start()) and the post-GST liveness watchdog.
  {
    MetricsRegistry& reg = MetricsRegistry::Get();
    const int level = spec_.metrics_level >= 0 ? spec_.metrics_level
                                               : MetricsRegistry::DefaultLevel();
    reg.Reset(level, com.n,
              spec_.metrics_capacity != 0 ? spec_.metrics_capacity
                                          : MetricsRegistry::kDefaultCapacity);
    reg.set_clock(cluster_->now_ptr());
    metrics_on_ = reg.enabled();
    metrics_tick_ =
        spec_.metrics_tick > 0 ? spec_.metrics_tick : spec_.net.delta;
    if (metrics_tick_ <= 0) metrics_tick_ = msec(10);
    reg.set_tick(metrics_tick_);
  }

  for (NodeId id = 0; id < com.n; ++id) {
    NodeEnv env{cfg_, *registry_, *deposits_, spec_.seed, nullptr};
    const auto it = spec_.adversary.behaviors.find(id);
    if (it != spec_.adversary.behaviors.end()) env.behavior = it->second;
    std::unique_ptr<consensus::IReplica> replica;
    if (spec_.adversary.node_factory) {
      replica = spec_.adversary.node_factory(id, env);
    }
    if (!replica) {
      replica = traits.make_replica(id, env);
    }
    replicas_.push_back(replica.get());
    if (spec_.sync_plan.enabled) {
      // Wrap every replica in the catch-up driver. The harness keeps
      // introspecting the inner replica (replicas_, prft()); the driver
      // only adds the announce/request/response state machine around it.
      sync::CatchupDriver::Deps deps;
      deps.cfg = cfg_;
      deps.registry = registry_.get();
      deps.keys = registry_->generate(id, spec_.seed);  // deterministic
      deps.plan = spec_.sync_plan;
      auto driver = std::make_unique<sync::CatchupDriver>(std::move(replica),
                                                          std::move(deps));
      driver->set_target_blocks(spec_.budget.target_blocks);
      drivers_.push_back(driver.get());
      cluster_->add_node(std::move(driver));
    } else {
      replicas_.back()->set_target_blocks(spec_.budget.target_blocks);
      cluster_->add_node(std::move(replica));
    }
  }

  // Mempool policy applies to every replica uniformly.
  if (com.mempool != ledger::MempoolLimits{}) {
    for (consensus::IReplica* r : replicas_) {
      r->mempool().set_limits(com.mempool);
    }
  }

  // Workload before the fault script: same-timestamp events pop in
  // insertion order, and a tx submission racing a crash at the same tick
  // should still reach the mempools first (the client sent it in time).
  // The engine pre-schedules kFixed arrivals exactly where the legacy
  // inject_workload did, so existing runs replay byte-identically.
  if (!spec_.workload.empty()) {
    engine_ = std::make_unique<workload::WorkloadEngine>(
        spec_.workload, spec_.seed, com.n);
    engine_->attach(*cluster_, replicas_);
  }

  // Fault script. Crashes at t <= 0 apply immediately, before any protocol
  // step (on_start included); later faults ride the event queue.
  for (const CrashEvent& c : spec_.faults.crashes) {
    if (c.node >= com.n) {
      throw std::invalid_argument("ScenarioSpec: crash of node " +
                                  std::to_string(c.node) +
                                  " outside committee of " +
                                  std::to_string(com.n));
    }
  }
  for (const PartitionEvent& p : spec_.faults.partitions) {
    for (const auto& group : p.groups) {
      for (NodeId id : group) {
        if (id >= com.n) {
          throw std::invalid_argument("ScenarioSpec: partition group node " +
                                      std::to_string(id) +
                                      " outside committee of " +
                                      std::to_string(com.n));
        }
      }
    }
  }
  for (const CrashEvent& c : spec_.faults.crashes) {
    if (c.at <= 0) {
      cluster_->crash(c.node);
    } else {
      net::Cluster* cl = cluster_.get();
      cluster_->schedule(c.at, [cl, c]() { cl->crash(c.node); });
    }
  }
  for (const PartitionEvent& p : spec_.faults.partitions) {
    if (p.at <= 0) {
      cluster_->set_partition(p.groups, p.heal_at);
    } else {
      net::Cluster* cl = cluster_.get();
      cluster_->schedule(p.at, [cl, p]() {
        cl->set_partition(p.groups, p.heal_at);
      });
    }
  }
}

Simulation::~Simulation() {
  // The sink outlives us (thread_local); never leave it a dangling observer.
  TraceSink& sink = TraceSink::Get();
  if (sink.observer() == &monitors_) sink.set_observer(nullptr);
  sink.set_clock(nullptr);
  MetricsRegistry::Get().set_clock(nullptr);
}

void Simulation::start() {
  if (started_) return;
  started_ = true;
  cluster_->start();
  if (metrics_on_) schedule_metrics_tick();
}

void Simulation::schedule_metrics_tick() {
  cluster_->schedule(metrics_tick_, [this]() { on_metrics_tick(); });
}

void Simulation::on_metrics_tick() {
  // Pure observation: the sampler reads replica/cluster state, draws no
  // randomness and sends no messages, so protocol event ordering — and
  // with it every deterministic report field — is identical with metrics
  // on or off.
  MetricsRegistry& reg = MetricsRegistry::Get();
  const std::uint32_t n = spec_.committee.n;
  for (NodeId id = 0; id < n; ++id) {
    consensus::IReplica* rep = replicas_[id];
    const ledger::Mempool& pool = rep->mempool();
    reg.sample(id, ReplicaMetric::kMempoolPending,
               static_cast<std::int64_t>(pool.pending()));
    reg.sample(id, ReplicaMetric::kMempoolEvicted,
               static_cast<std::int64_t>(pool.evicted()));
    reg.sample(id, ReplicaMetric::kMempoolRejected,
               static_cast<std::int64_t>(pool.rejected()));
    const std::uint64_t height = rep->chain().finalized_height();
    reg.sample(id, ReplicaMetric::kFinalizedHeight,
               static_cast<std::int64_t>(height));
    reg.note_height(id, height);
    reg.sample(id, ReplicaMetric::kCurrentRound,
               static_cast<std::int64_t>(rep->current_round()));
    reg.sample(id, ReplicaMetric::kWireBytesSent,
               static_cast<std::int64_t>(
                   cluster_->stats().for_sender(id).bytes));
    reg.sample(id, ReplicaMetric::kSyncBacklog,
               drivers_.empty()
                   ? 0
                   : static_cast<std::int64_t>(drivers_[id]->backlog()));
    reg.sample(id, ReplicaMetric::kDepositBalance, deposits_->balance(id));
  }
  reg.sample(GlobalMetric::kEventQueueDepth,
             static_cast<std::int64_t>(cluster_->pending_events()));
  reg.sample(GlobalMetric::kInflightWireBytes, reg.inflight_bytes());
  reg.note_tick();

  // Post-GST liveness watchdog: W consecutive ticks after GST without
  // live-honest height progress (target unreached) is a stall — name the
  // stuck replicas and their last transition now, instead of letting the
  // cell silently burn its budget to the horizon.
  const SimTime gst = cluster_->net().gst();
  const std::uint64_t target = spec_.budget.target_blocks;
  const std::uint64_t live = live_min_height();
  if (live > watchdog_height_) {
    watchdog_height_ = live;
    stall_ticks_ = 0;
  } else if (spec_.watchdog_ticks > 0 && gst != kSimTimeNever &&
             cluster_->now() >= gst && target > 0 && live < target) {
    if (++stall_ticks_ >= spec_.watchdog_ticks) {
      declare_stall();
      return;  // stop sampling: the verdict is the run's last word
    }
  } else {
    stall_ticks_ = 0;
  }

  // A queue holding nothing but our own next tick would never drain —
  // mirror the pre-metrics "drained" exit by letting the tick die with the
  // rest of the schedule.
  if (cluster_->pending_events() > 0) schedule_metrics_tick();
}

void Simulation::declare_stall() {
  MetricsRegistry& reg = MetricsRegistry::Get();
  const SimTime at = cluster_->now();
  std::vector<NodeId> stuck;
  const std::uint64_t live = live_min_height();
  for (NodeId id = 0; id < replicas_.size(); ++id) {
    if (!replicas_[id]->is_honest() || cluster_->crashed(id)) continue;
    if (replicas_[id]->chain().finalized_height() <= live) {
      stuck.push_back(id);
    }
  }
  std::ostringstream os;
  os << "liveness stall: no live-honest height progress for "
     << spec_.watchdog_ticks << " ticks (" << spec_.watchdog_ticks * metrics_tick_
     << "us) after GST; height " << live << " < target "
     << spec_.budget.target_blocks << "; stalling replicas:";
  const std::size_t listed = std::min<std::size_t>(stuck.size(), 8);
  for (std::size_t i = 0; i < listed; ++i) {
    const NodeId id = stuck[i];
    const MetricTransition& t = reg.last_transition(id);
    os << (i == 0 ? " " : ", ") << "n" << static_cast<unsigned>(id)
       << " (round " << t.round << " entered at " << t.round_at
       << "us, height " << t.height << " since " << t.height_at << "us)";
  }
  if (stuck.size() > listed) {
    os << ", +" << (stuck.size() - listed) << " more";
  }
  reg.record_stall(at, std::move(stuck), os.str());
  metrics_stalled_ = true;
}

void Simulation::run_until(SimTime t) {
  const auto begin = std::chrono::steady_clock::now();
  cluster_->run_until(t);
  wall_spent_ += std::chrono::steady_clock::now() - begin;
  note_finalization();
}

std::size_t Simulation::run(std::size_t max_events) {
  const auto begin = std::chrono::steady_clock::now();
  const std::size_t executed = cluster_->run(max_events);
  wall_spent_ += std::chrono::steady_clock::now() - begin;
  note_finalization();
  return executed;
}

RunReport Simulation::run_to_completion() {
  start();
  // target_blocks == 0 means unlimited: drive to the horizon. Chunked so
  // the height check amortizes; each pass covers at least one pending
  // event (run_until never advances the clock past the last event, so a
  // quiet stretch longer than the chunk must not read as "drained").
  // Crash-stopped nodes are excluded from the exit condition: they can
  // never catch up, while every live honest replica must. Open-/closed-
  // loop workloads additionally gate on drain: every generated tx must
  // finalize on every live honest replica (kFixed keeps the legacy
  // height-only exit, so censorship probes stop where they used to).
  const std::uint64_t target = spec_.budget.target_blocks;
  const bool gated = engine_ != nullptr && engine_->gates_completion();
  const auto counts = [this](NodeId id) {
    return replicas_[id]->is_honest() && !cluster_->crashed(id);
  };
  const auto done = [&]() {
    const bool height_ok = target > 0 && live_min_height() >= target;
    if (gated) {
      const bool drained = engine_->drained(counts);
      return target > 0 ? height_ok && drained : drained;
    }
    return height_ok;
  };
  while (!done()) {
    if (metrics_stalled_) break;  // watchdog named the stall — stop early
    const SimTime next = cluster_->next_event_time();
    if (next > spec_.budget.horizon) break;  // drained or out of budget
    run_until(std::max(next, cluster_->now() + spec_.budget.chunk));
  }
  return report();
}

void Simulation::note_finalization() {
  if (finalized_at_ != kSimTimeNever) return;
  const std::uint64_t target = spec_.budget.target_blocks;
  if (target > 0 && live_min_height() >= target) {
    finalized_at_ = cluster_->now();
  }
}

void Simulation::submit_tx(const ledger::Transaction& tx, SimTime at) {
  cluster_->schedule(at - cluster_->now(), [this, tx, at]() {
    for (consensus::IReplica* r : replicas_) {
      r->mempool().submit(tx, at);
    }
  });
}

void Simulation::inject_workload(std::uint64_t count, SimTime start,
                                 SimTime interval, std::uint64_t first_id) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const ledger::Transaction tx = ledger::make_transfer(
        first_id + i, static_cast<NodeId>(i % cfg_.n));
    submit_tx(tx, start + static_cast<SimTime>(i) * interval);
  }
}

prft::PrftNode& Simulation::prft(NodeId id) {
  auto* node = dynamic_cast<prft::PrftNode*>(replicas_.at(id));
  if (node == nullptr) {
    throw std::logic_error("Simulation::prft: replica " + std::to_string(id) +
                           " of " + spec_.label() + " is not a PrftNode");
  }
  return *node;
}

std::vector<const ledger::Chain*> Simulation::honest_chains() const {
  std::vector<const ledger::Chain*> out;
  for (const consensus::IReplica* r : replicas_) {
    if (r->is_honest()) out.push_back(&r->chain());
  }
  return out;
}

game::SystemState Simulation::classify(
    std::uint64_t baseline_height,
    std::optional<std::uint64_t> watched_tx) const {
  consensus::OutcomeQuery query;
  query.honest_chains = honest_chains();
  query.baseline_height = baseline_height;
  query.watched_tx = watched_tx;
  return consensus::classify_outcome(query);
}

bool Simulation::agreement_holds() const {
  return !consensus::any_fork(honest_chains());
}

bool Simulation::ordering_holds(std::uint64_t c) const {
  const auto chains = honest_chains();
  for (std::size_t i = 0; i < chains.size(); ++i) {
    for (std::size_t j = i + 1; j < chains.size(); ++j) {
      if (!ledger::c_strict_ordering_holds(*chains[i], *chains[j], c)) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t Simulation::min_height() const {
  return consensus::min_finalized_height(honest_chains());
}

std::uint64_t Simulation::max_height() const {
  return consensus::max_finalized_height(honest_chains());
}

std::uint64_t Simulation::live_min_height() const {
  std::uint64_t min = UINT64_MAX;
  bool any = false;
  for (NodeId id = 0; id < replicas_.size(); ++id) {
    if (!replicas_[id]->is_honest() || cluster_->crashed(id)) continue;
    any = true;
    min = std::min(min, replicas_[id]->chain().finalized_height());
  }
  return any ? min : 0;
}

bool Simulation::honest_player_slashed() const {
  for (NodeId id = 0; id < replicas_.size(); ++id) {
    if (replicas_[id]->is_honest() && deposits_->slashed(id)) return true;
  }
  return false;
}

RunReport Simulation::report() const {
  RunReport r;
  r.protocol = spec_.protocol;
  r.n = spec_.committee.n;
  r.net = spec_.net.kind;
  r.seed = spec_.seed;
  r.agreement = agreement_holds();
  r.ordering = ordering_holds();
  r.honest_slashed = honest_player_slashed();
  r.min_height = min_height();
  r.max_height = max_height();
  r.live_min_height = live_min_height();
  r.messages = cluster_->stats().total().count;
  r.bytes = cluster_->stats().total().bytes;
  const net::MsgCounter sync_traffic = cluster_->stats().for_proto(
      static_cast<std::uint8_t>(consensus::ProtoId::kSync));
  r.sync_messages = sync_traffic.count;
  r.sync_bytes = sync_traffic.bytes;
  for (sync::CatchupDriver* d : drivers_) {
    r.sync_piggybacked += d->announces_piggybacked();
  }
  {
    // Per-player economics are the harness-level payoff accounting; the
    // deeper PayoffAccountant paths add to the same phase when they run.
    ProfTimer timer(kL1PayoffNs, kL2PayoffAccountNs);
    r.accounts.resize(spec_.committee.n);
    for (NodeId id = 0; id < spec_.committee.n; ++id) {
      PlayerAccount& acc = r.accounts[id];
      acc.player = id;
      acc.honest = replicas_[id]->is_honest();
      acc.crashed = cluster_->crashed(id);
      acc.slashed = deposits_->slashed(id);
      acc.deposit_delta = deposits_->delta(id);
      const net::MsgCounter sent = cluster_->stats().for_sender(id);
      acc.messages = sent.count;
      acc.bytes = sent.bytes;
    }
    r.penalties = deposits_->events();
  }
  if (engine_ != nullptr) {
    r.workload = engine_->stats();
  }
  // Overflow counters live in the replicas' mempools, not the engine.
  for (consensus::IReplica* rep : replicas_) {
    r.workload.evicted += rep->mempool().evicted();
    r.workload.rejected += rep->mempool().rejected();
  }
  r.sim_time = cluster_->now();
  r.gst = cluster_->net().gst();
  r.finalized_at = finalized_at_;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(wall_spent_).count();
  r.budget_ms = spec_.budget.wall_ms;
  // Snapshot last so the payoff timer above is part of this run's report.
  r.profile = Profiler::Get().snapshot();
  r.metrics = MetricsRegistry::Get().snapshot();
  r.trace = TraceSink::Get().snapshot();
  r.trace.violations = monitors_.violations();
  for (const MonitorVerdict& v : monitors_.verdicts()) {
    if (v.violated) r.trace.verdicts.push_back(v.summary());
  }
  return r;
}

bool Simulation::dump_trace(const std::string& path) const {
  const TraceSink& sink = TraceSink::Get();
  if (sink.level() <= 0 || sink.nodes() == 0) return false;
  const std::vector<TraceEvent> events = sink.merged();
  // Metrics timelines merge into the same document as counter tracks, so
  // one file carries flows + counters (loads as-is in ui.perfetto.dev).
  const MetricsStats metrics = MetricsRegistry::Get().snapshot();
  bool ok = write_text_file(
      path, chrome_trace_json(events, sink.nodes(),
                              metrics.empty() ? nullptr : &metrics));
  ok = write_text_file(path + ".txt", format_trace_text(events)) && ok;
  return ok;
}

}  // namespace ratcon::harness
