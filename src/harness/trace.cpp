#include "harness/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "consensus/types.hpp"
#include "harness/jsonio.hpp"
#include "harness/metrics.hpp"

namespace ratcon::harness {

std::atomic<int> TraceSink::default_level_{0};

namespace {

constexpr const char* kKindNames[kNumTraceKinds] = {
    "send",         "recv",         "deliver", "round_enter", "lock_acquire",
    "lock_release", "vote_cast",    "finalize", "sync_adopt",  "slash",
};

const char* proto_name(std::uint8_t proto) {
  switch (static_cast<consensus::ProtoId>(proto)) {
    case consensus::ProtoId::kPrft:
      return "prft";
    case consensus::ProtoId::kPbft:
      return "pbft";
    case consensus::ProtoId::kHotstuff:
      return "hotstuff";
    case consensus::ProtoId::kPolygraph:
      return "polygraph";
    case consensus::ProtoId::kTrap:
      return "trap";
    case consensus::ProtoId::kRaftLite:
      return "raftlite";
    case consensus::ProtoId::kQuorumDemo:
      return "quorum";
    case consensus::ProtoId::kSync:
      return "sync";
    default:
      return "?";
  }
}

bool is_wire(TraceKind kind) {
  return kind == TraceKind::kSend || kind == TraceKind::kRecv ||
         kind == TraceKind::kDeliver;
}

/// Short display name for a chrome slice: "finalize h=3", "send t2 r5", …
std::string display_name(const TraceEvent& ev) {
  char buf[96];
  switch (ev.kind) {
    case TraceKind::kFinalize:
      std::snprintf(buf, sizeof(buf), "finalize h=%" PRIu64, ev.a);
      break;
    case TraceKind::kRoundEnter:
      std::snprintf(buf, sizeof(buf), "round %" PRIu64, ev.round);
      break;
    case TraceKind::kLockAcquire:
      std::snprintf(buf, sizeof(buf), "lock h=%" PRIu64, ev.a);
      break;
    case TraceKind::kSyncAdopt:
      std::snprintf(buf, sizeof(buf), "adopt %" PRId64 "@h%" PRIu64, ev.aux,
                    ev.a);
      break;
    case TraceKind::kSlash:
      std::snprintf(buf, sizeof(buf), "slash n%u", ev.node);
      break;
    default:
      if (is_wire(ev.kind)) {
        std::snprintf(buf, sizeof(buf), "%s %s t%u", to_string(ev.kind),
                      proto_name(ev.proto), ev.msg_type);
      } else {
        std::snprintf(buf, sizeof(buf), "%s r%" PRIu64, to_string(ev.kind),
                      ev.round);
      }
      break;
  }
  return buf;
}

}  // namespace

const char* to_string(TraceKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(kNumTraceKinds) ? kKindNames[i] : "?";
}

TraceStats& TraceStats::merge(const TraceStats& other) {
  level = std::max(level, other.level);
  recorded += other.recorded;
  dropped += other.dropped;
  violations += other.violations;
  // Keep summaries bounded: a sweep with a systemic bug would otherwise
  // collect one verdict string per cell.
  constexpr std::size_t kMaxVerdicts = 16;
  for (const auto& v : other.verdicts) {
    if (verdicts.size() >= kMaxVerdicts) break;
    verdicts.push_back(v);
  }
  return *this;
}

TraceSink& TraceSink::Get() {
  static thread_local TraceSink sink;
  return sink;
}

void TraceSink::Reset(int level, std::uint32_t nodes, std::size_t capacity) {
  level_ = level;
  seq_ = 0;
  observer_ = nullptr;
  rings_.clear();
  if (level_ > 0) {
    rings_.resize(nodes);
    for (auto& r : rings_) r.reset(capacity);
  }
}

std::uint64_t TraceSink::recorded() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r.total();
  return total;
}

std::uint64_t TraceSink::dropped() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r.dropped();
  return total;
}

std::vector<TraceEvent> TraceSink::merged() const {
  std::vector<TraceEvent> out;
  std::size_t retained = 0;
  for (const auto& r : rings_) retained += r.size();
  out.reserve(retained);
  for (const auto& r : rings_) {
    for (std::size_t i = 0; i < r.size(); ++i) out.push_back(r.at(i));
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

TraceStats TraceSink::snapshot() const {
  TraceStats s;
  s.level = level_;
  s.recorded = recorded();
  s.dropped = dropped();
  return s;
}

std::string format_trace_text(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 72);
  char line[192];
  for (const auto& ev : events) {
    int n = std::snprintf(line, sizeof(line),
                          "[%10" PRId64 "us] n%-3u r%-4" PRIu64 " %-12s", ev.at,
                          ev.node, ev.round, to_string(ev.kind));
    if (n < 0) continue;
    out.append(line, static_cast<std::size_t>(n));
    if (is_wire(ev.kind)) {
      std::snprintf(line, sizeof(line),
                    " %s n%u %s/t%u corr=%016" PRIx64,
                    ev.kind == TraceKind::kSend ? "->" : "<-", ev.peer,
                    proto_name(ev.proto), ev.msg_type, ev.corr);
    } else {
      switch (ev.kind) {
        case TraceKind::kFinalize:
          std::snprintf(line, sizeof(line),
                        " h=%" PRIu64 " val=%016" PRIx64 " cert=%" PRId64
                        " (%s)",
                        ev.a, ev.b, ev.aux, proto_name(ev.proto));
          break;
        case TraceKind::kLockAcquire:
          std::snprintf(line, sizeof(line), " h=%" PRIu64 " votes=%" PRId64
                        " (%s)",
                        ev.a, ev.aux, proto_name(ev.proto));
          break;
        case TraceKind::kSyncAdopt:
          std::snprintf(line, sizeof(line),
                        " first_h=%" PRIu64 " blocks=%" PRId64, ev.a, ev.aux);
          break;
        case TraceKind::kSlash:
          std::snprintf(line, sizeof(line),
                        " burned=%" PRIu64 " balance_after=%" PRId64, ev.a,
                        ev.aux);
          break;
        case TraceKind::kVoteCast:
          std::snprintf(line, sizeof(line), " %s/t%u", proto_name(ev.proto),
                        ev.msg_type);
          break;
        default:
          line[0] = '\0';
          break;
      }
    }
    out += line;
    out += '\n';
  }
  return out;
}

namespace {

/// Counter tracks ("ph":"C") from the metrics timelines: one track per
/// metric (replica metrics summed across nodes, globals as recorded), so
/// the same document shows slices, flow arrows and evolving gauges.
void write_counter_track(JsonWriter& json, const char* name,
                         const MetricSeries& series) {
  for (const MetricSample& s : series.samples) {
    json.begin_object();
    json.key("name").value(name);
    json.key("cat").value("metrics");
    json.key("ph").value("C");
    json.key("ts").value(static_cast<std::int64_t>(s.at));
    json.key("pid").value(std::uint64_t{0});
    json.key("args").begin_object();
    json.key("value").value(s.value);
    json.end_object();
    json.end_object();
  }
}

}  // namespace

void write_chrome_trace(JsonWriter& json, const std::vector<TraceEvent>& events,
                        std::uint32_t nodes, const MetricsStats* metrics) {
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  // Thread-name metadata: one chrome "thread" (tid) per replica.
  for (std::uint32_t n = 0; n < nodes; ++n) {
    json.begin_object();
    json.key("name").value("thread_name");
    json.key("ph").value("M");
    json.key("pid").value(std::uint64_t{0});
    json.key("tid").value(static_cast<std::uint64_t>(n));
    json.key("args").begin_object();
    char name[32];
    std::snprintf(name, sizeof(name), "replica %u", n);
    json.key("name").value(name);
    json.end_object();
    json.end_object();
  }
  char buf[64];
  for (const auto& ev : events) {
    // The slice itself ("X" complete event, 1µs so it renders).
    json.begin_object();
    json.key("name").value(display_name(ev));
    json.key("cat").value(is_wire(ev.kind) ? "wire" : "state");
    json.key("ph").value("X");
    json.key("ts").value(static_cast<std::int64_t>(ev.at));
    json.key("dur").value(std::uint64_t{1});
    json.key("pid").value(std::uint64_t{0});
    json.key("tid").value(static_cast<std::uint64_t>(ev.node));
    json.key("args").begin_object();
    json.key("seq").value(ev.seq);
    json.key("kind").value(to_string(ev.kind));
    json.key("round").value(ev.round);
    json.key("proto").value(proto_name(ev.proto));
    if (is_wire(ev.kind)) {
      json.key("peer").value(static_cast<std::uint64_t>(ev.peer));
      json.key("msg_type").value(static_cast<std::uint64_t>(ev.msg_type));
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, ev.corr);
      json.key("corr").value(buf);
    }
    if (ev.kind == TraceKind::kFinalize || ev.kind == TraceKind::kLockAcquire ||
        ev.kind == TraceKind::kSyncAdopt) {
      json.key("height").value(ev.a);
    }
    if (ev.kind == TraceKind::kFinalize) {
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, ev.b);
      json.key("value").value(buf);
      json.key("cert").value(static_cast<std::int64_t>(ev.aux));
    }
    if (ev.kind == TraceKind::kSlash) {
      json.key("burned").value(ev.a);
      json.key("balance_after").value(static_cast<std::int64_t>(ev.aux));
    }
    json.end_object();
    json.end_object();
    // Flow arrows: send starts a flow, recv ends it. The id is unique per
    // (correlation, destination) so a broadcast renders one arrow per
    // recipient instead of one many-headed flow.
    const bool flow_start = ev.kind == TraceKind::kSend;
    const bool flow_end = ev.kind == TraceKind::kRecv;
    if (flow_start || flow_end) {
      const NodeId dest = flow_start ? ev.peer : ev.node;
      json.begin_object();
      json.key("name").value("msg");
      json.key("cat").value("flow");
      json.key("ph").value(flow_start ? "s" : "f");
      if (flow_end) json.key("bp").value("e");
      std::snprintf(buf, sizeof(buf), "%016" PRIx64 "-%u", ev.corr, dest);
      json.key("id").value(buf);
      json.key("ts").value(static_cast<std::int64_t>(ev.at));
      json.key("pid").value(std::uint64_t{0});
      json.key("tid").value(static_cast<std::uint64_t>(ev.node));
      json.end_object();
    }
  }
  if (metrics != nullptr && !metrics->empty()) {
    if (!metrics->replica.empty()) {
      for (std::size_t m = 0; m < kNumReplicaMetrics; ++m) {
        const auto metric = static_cast<ReplicaMetric>(m);
        write_counter_track(json, to_string(metric),
                            summed_replica_series(*metrics, metric));
      }
    }
    for (std::size_t m = 0; m < metrics->global.size(); ++m) {
      write_counter_track(json, to_string(static_cast<GlobalMetric>(m)),
                          metrics->global[m]);
    }
  }
  json.end_array();
  json.end_object();
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              std::uint32_t nodes,
                              const MetricsStats* metrics) {
  JsonWriter json;
  write_chrome_trace(json, events, nodes, metrics);
  return json.str();
}

}  // namespace ratcon::harness
