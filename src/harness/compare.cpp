#include "harness/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "harness/table.hpp"

namespace ratcon::harness {

namespace {

enum class Direction { kHigherIsBetter, kLowerIsBetter };

/// A numeric gate on one dotted-path metric. Tolerances are percent of
/// the baseline value, applied only in the worse direction.
struct NumericRule {
  const char* path;
  Direction dir;
  double warn_pct;
  double fail_pct;
  bool required;  ///< missing in either artifact => structural error
};

/// A boolean that must never regress from true to false (all_safe,
/// paths_agree, determinism_ok).
struct BoolRule {
  const char* path;
  bool required;
};

// Matrix sweep: message/byte/latency totals are deterministic functions
// of the spec (virtual time), so they get tight bands; cells/sec is host
// wall-clock and CI runners are noisy, so its band is loose.
constexpr NumericRule kMatrixNumeric[] = {
    {"cells_per_sec", Direction::kHigherIsBetter, 25.0, 50.0, true},
    {"total_messages", Direction::kLowerIsBetter, 10.0, 50.0, true},
    {"total_bytes", Direction::kLowerIsBetter, 10.0, 50.0, true},
    {"workload.finalized", Direction::kHigherIsBetter, 1.0, 10.0, true},
    {"workload.p99_us", Direction::kLowerIsBetter, 10.0, 50.0, true},
};
constexpr BoolRule kMatrixBool[] = {{"all_safe", true}};

// Workload engine: throughput and latency are virtual-time deterministic.
constexpr NumericRule kWorkloadNumeric[] = {
    {"total.tx_per_sec", Direction::kHigherIsBetter, 10.0, 25.0, true},
    {"total.p99_us", Direction::kLowerIsBetter, 10.0, 50.0, true},
    {"total.finalized", Direction::kHigherIsBetter, 1.0, 10.0, true},
};
constexpr BoolRule kWorkloadBool[] = {{"all_safe", true},
                                      {"determinism_ok", false}};

// Serialization shootout: pure host wall-clock nanoseconds — the loosest
// bands of the three. Metrics are derived (mean over shapes), see below.
constexpr BoolRule kSerializationBool[] = {{"paths_agree", true}};

double pct_change(double baseline, double current) {
  return (current - baseline) / baseline * 100.0;
}

/// Grades one numeric pair under a rule; appends a finding.
void grade_numeric(CompareReport& report, const char* metric, Direction dir,
                   double warn_pct, double fail_pct, double baseline,
                   double current) {
  CompareFinding f;
  f.metric = metric;
  f.baseline = baseline;
  f.current = current;
  if (baseline == 0.0 && current == 0.0) {
    f.note = "both zero";
    report.findings.push_back(std::move(f));
    return;
  }
  if (baseline == 0.0) {
    // No denominator for a ratio; a value appearing where the baseline
    // had none is suspicious only in the worse direction.
    const bool worse = (dir == Direction::kLowerIsBetter) == (current > 0.0);
    f.severity = worse ? 1 : 0;
    f.note = worse ? "baseline zero, current nonzero (warn)"
                   : "baseline zero (improved)";
    report.findings.push_back(std::move(f));
    return;
  }
  f.change_pct = pct_change(baseline, current);
  const double worsened = dir == Direction::kHigherIsBetter
                              ? -f.change_pct   // drop is bad
                              : f.change_pct;   // rise is bad
  char buf[128];
  if (worsened >= fail_pct) {
    f.severity = 2;
    std::snprintf(buf, sizeof buf, "regressed %.1f%% (fail at %.0f%%)",
                  worsened, fail_pct);
  } else if (worsened >= warn_pct) {
    f.severity = 1;
    std::snprintf(buf, sizeof buf, "regressed %.1f%% (warn at %.0f%%)",
                  worsened, warn_pct);
  } else if (worsened <= -warn_pct) {
    std::snprintf(buf, sizeof buf, "improved %.1f%%", -worsened);
  } else {
    std::snprintf(buf, sizeof buf, "within %.0f%%", warn_pct);
  }
  f.note = buf;
  report.findings.push_back(std::move(f));
}

void apply_numeric_rules(CompareReport& report, const JsonValue& baseline,
                         const JsonValue& current, const NumericRule* rules,
                         std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const NumericRule& rule = rules[i];
    const JsonValue* b = baseline.at_path(rule.path);
    const JsonValue* c = current.at_path(rule.path);
    if (b == nullptr || c == nullptr || !b->is_number() || !c->is_number()) {
      if (rule.required) {
        report.errors.push_back(std::string("missing numeric metric: ") +
                                rule.path);
      }
      continue;
    }
    grade_numeric(report, rule.path, rule.dir, rule.warn_pct, rule.fail_pct,
                  b->number, c->number);
  }
}

void apply_bool_rules(CompareReport& report, const JsonValue& baseline,
                      const JsonValue& current, const BoolRule* rules,
                      std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const BoolRule& rule = rules[i];
    const JsonValue* b = baseline.at_path(rule.path);
    const JsonValue* c = current.at_path(rule.path);
    if (b == nullptr || c == nullptr) {
      if (rule.required) {
        report.errors.push_back(std::string("missing boolean metric: ") +
                                rule.path);
      }
      continue;
    }
    CompareFinding f;
    f.metric = rule.path;
    f.baseline = b->as_bool() ? 1.0 : 0.0;
    f.current = c->as_bool() ? 1.0 : 0.0;
    if (b->as_bool() && !c->as_bool()) {
      f.severity = 2;
      f.note = "regressed true -> false";
    } else if (!b->as_bool() && c->as_bool()) {
      f.note = "improved false -> true";
    } else {
      f.note = c->as_bool() ? "true" : "false (unchanged)";
    }
    report.findings.push_back(std::move(f));
  }
}

/// Mean of shapes[*].formats[format=="<format>"].<field> over the
/// serialization artifact; NaN when no shape carries it.
double mean_shape_metric(const JsonValue& root, std::string_view format,
                         std::string_view field) {
  const JsonValue* shapes = root.get("shapes");
  if (shapes == nullptr || !shapes->is_array()) return std::nan("");
  double sum = 0.0;
  std::size_t n = 0;
  for (const JsonValue& shape : shapes->items) {
    if (format.empty()) {  // shape-level field (encode_ns)
      const JsonValue* v = shape.get(field);
      if (v != nullptr && v->is_number()) {
        sum += v->number;
        ++n;
      }
      continue;
    }
    const JsonValue* formats = shape.get("formats");
    if (formats == nullptr || !formats->is_array()) continue;
    for (const JsonValue& fmt : formats->items) {
      const JsonValue* name = fmt.get("format");
      if (name == nullptr || name->as_string() != format) continue;
      const JsonValue* v = fmt.get(field);
      if (v != nullptr && v->is_number()) {
        sum += v->number;
        ++n;
      }
    }
  }
  if (n == 0) return std::nan("");
  return sum / static_cast<double>(n);
}

void compare_serialization_numeric(CompareReport& report,
                                   const JsonValue& baseline,
                                   const JsonValue& current) {
  struct Derived {
    const char* label;
    const char* format;  // "" = shape-level
    const char* field;
  };
  // decode ns is lower-better everywhere; 30/60% bands absorb CI jitter.
  constexpr Derived kDerived[] = {
      {"zero_copy.decode_ns", "zero_copy", "decode_ns"},
      {"zero_copy.decode_verify_ns", "zero_copy", "decode_verify_ns"},
      {"copying.decode_ns", "copying", "decode_ns"},
      {"encode_ns", "", "encode_ns"},
  };
  for (const Derived& d : kDerived) {
    const double b = mean_shape_metric(baseline, d.format, d.field);
    const double c = mean_shape_metric(current, d.format, d.field);
    if (std::isnan(b) || std::isnan(c)) {
      report.errors.push_back(std::string("missing shape metric: ") + d.label);
      continue;
    }
    grade_numeric(report, d.label, Direction::kLowerIsBetter, 30.0, 60.0, b,
                  c);
  }
}

}  // namespace

int CompareReport::verdict() const {
  if (!errors.empty()) return 2;
  int worst = 0;
  for (const CompareFinding& f : findings) worst = std::max(worst, f.severity);
  return worst;
}

const char* CompareReport::verdict_name() const {
  switch (verdict()) {
    case 0: return "pass";
    case 1: return "warn";
    default: return "fail";
  }
}

std::string CompareReport::summary() const {
  std::ostringstream os;
  os << "bench_compare: " << (bench.empty() ? "(unknown)" : bench);
  if (!baseline_path.empty()) {
    os << "\n  baseline: " << baseline_path << "\n  current:  "
       << current_path;
  }
  os << "\n";
  if (!findings.empty()) {
    Table t({"metric", "baseline", "current", "change", "verdict"});
    for (const CompareFinding& f : findings) {
      char change[32];
      std::snprintf(change, sizeof change, "%+.1f%%", f.change_pct);
      t.add_row({f.metric, fmt(f.baseline, 2), fmt(f.current, 2),
                 f.baseline == 0.0 ? "-" : change,
                 f.severity == 2   ? "FAIL"
                 : f.severity == 1 ? "warn"
                                   : "ok"});
    }
    os << t.render();
  }
  for (const std::string& err : errors) os << "  ERROR: " << err << "\n";
  os << "verdict: " << verdict_name() << "\n";
  return os.str();
}

CompareReport compare_artifacts(const JsonValue& baseline,
                                const JsonValue& current) {
  CompareReport report;
  const JsonValue* b_kind = baseline.get("bench");
  const JsonValue* c_kind = current.get("bench");
  if (b_kind == nullptr || c_kind == nullptr) {
    report.errors.emplace_back("artifact missing top-level \"bench\" kind");
    return report;
  }
  if (b_kind->as_string() != c_kind->as_string()) {
    report.errors.push_back("artifact kind mismatch: baseline \"" +
                            std::string(b_kind->as_string()) +
                            "\" vs current \"" +
                            std::string(c_kind->as_string()) + "\"");
    return report;
  }
  report.bench = std::string(b_kind->as_string());

  if (report.bench == "matrix_sweep") {
    apply_numeric_rules(report, baseline, current, kMatrixNumeric,
                        std::size(kMatrixNumeric));
    apply_bool_rules(report, baseline, current, kMatrixBool,
                     std::size(kMatrixBool));
  } else if (report.bench == "workload") {
    apply_numeric_rules(report, baseline, current, kWorkloadNumeric,
                        std::size(kWorkloadNumeric));
    apply_bool_rules(report, baseline, current, kWorkloadBool,
                     std::size(kWorkloadBool));
  } else if (report.bench == "serialization") {
    compare_serialization_numeric(report, baseline, current);
    apply_bool_rules(report, baseline, current, kSerializationBool,
                     std::size(kSerializationBool));
  } else {
    report.errors.push_back("no comparison rules for bench kind \"" +
                            report.bench + "\"");
  }
  return report;
}

CompareReport compare_files(const std::string& baseline_path,
                            const std::string& current_path) {
  CompareReport io_report;
  io_report.baseline_path = baseline_path;
  io_report.current_path = current_path;

  const auto b_text = read_text_file(baseline_path);
  if (!b_text.has_value()) {
    io_report.errors.push_back("cannot read baseline: " + baseline_path);
    return io_report;
  }
  const auto c_text = read_text_file(current_path);
  if (!c_text.has_value()) {
    io_report.errors.push_back("cannot read current: " + current_path);
    return io_report;
  }
  const auto b_json = JsonValue::parse(*b_text);
  if (!b_json.has_value()) {
    io_report.errors.push_back("malformed JSON in baseline: " + baseline_path);
    return io_report;
  }
  const auto c_json = JsonValue::parse(*c_text);
  if (!c_json.has_value()) {
    io_report.errors.push_back("malformed JSON in current: " + current_path);
    return io_report;
  }
  CompareReport report = compare_artifacts(*b_json, *c_json);
  report.baseline_path = baseline_path;
  report.current_path = current_path;
  return report;
}

void write_compare_json(JsonWriter& json, const CompareReport& report) {
  json.begin_object();
  json.key("bench").value(report.bench);
  json.key("baseline").value(report.baseline_path);
  json.key("current").value(report.current_path);
  json.key("verdict").value(report.verdict_name());
  json.key("findings").begin_array();
  for (const CompareFinding& f : report.findings) {
    json.begin_object();
    json.key("metric").value(f.metric);
    json.key("baseline").value(f.baseline);
    json.key("current").value(f.current);
    json.key("change_pct").value(f.change_pct);
    json.key("severity").value(static_cast<std::int64_t>(f.severity));
    json.key("note").value(f.note);
    json.end_object();
  }
  json.end_array();
  json.key("errors").begin_array();
  for (const std::string& err : report.errors) json.value(err);
  json.end_array();
  json.end_object();
}

}  // namespace ratcon::harness
