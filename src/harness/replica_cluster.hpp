#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "consensus/outcome.hpp"
#include "consensus/replica.hpp"
#include "consensus/types.hpp"
#include "crypto/sig.hpp"
#include "ledger/deposits.hpp"
#include "net/cluster.hpp"
#include "net/netmodel.hpp"

namespace ratcon::harness {

/// Protocol-agnostic deployment harness used by the baseline protocols
/// (quorum/pBFT/Polygraph, HotStuff, Raft-lite) and the cross-protocol
/// benches. The factory builds each replica; everything else — trusted
/// setup, deposits, network, workload, outcome classification — is shared
/// so comparisons across protocols are apples-to-apples.
class ReplicaCluster {
 public:
  using Factory = std::function<std::unique_ptr<consensus::IReplica>(
      NodeId id, const consensus::Config& cfg, crypto::KeyRegistry& registry,
      ledger::DepositLedger& deposits)>;

  struct Options {
    std::uint32_t n = 7;
    std::uint32_t t0 = 2;
    std::uint64_t seed = 1;
    SimTime delta = msec(10);
    std::optional<SimTime> base_timeout;  ///< default 8Δ
    std::uint64_t target_blocks = 5;
    std::int64_t collateral = 100;
    std::uint32_t max_block_txs = 64;
    std::function<std::unique_ptr<net::NetworkModel>()> make_net;
    Factory factory;  ///< required
  };

  explicit ReplicaCluster(Options options);

  void start() { cluster_->start(); }
  void run_until(SimTime t) { cluster_->run_until(t); }
  void run_for(SimTime d) { cluster_->run_for(d); }

  void submit_tx(const ledger::Transaction& tx, SimTime at);
  void inject_workload(std::uint64_t count, SimTime start, SimTime interval,
                       std::uint64_t first_id = 1);

  [[nodiscard]] net::Cluster& net() { return *cluster_; }
  [[nodiscard]] const consensus::Config& config() const { return cfg_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return *registry_; }
  [[nodiscard]] ledger::DepositLedger& deposits() { return *deposits_; }
  [[nodiscard]] consensus::IReplica& replica(NodeId id) {
    return *replicas_[id];
  }
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }

  [[nodiscard]] std::vector<const ledger::Chain*> honest_chains() const;
  [[nodiscard]] game::SystemState classify(
      std::uint64_t baseline_height = 0,
      std::optional<std::uint64_t> watched_tx = std::nullopt) const;
  [[nodiscard]] bool agreement_holds() const;

  /// c-strict ordering (Definition 1) across every honest pair, mirroring
  /// PrftCluster::ordering_holds so cross-protocol sweeps assert the same
  /// safety surface.
  [[nodiscard]] bool ordering_holds(std::uint64_t c = 0) const;
  [[nodiscard]] std::uint64_t min_height() const;
  [[nodiscard]] std::uint64_t max_height() const;

 private:
  consensus::Config cfg_;
  std::unique_ptr<crypto::KeyRegistry> registry_;
  std::unique_ptr<ledger::DepositLedger> deposits_;
  std::unique_ptr<net::Cluster> cluster_;
  std::vector<consensus::IReplica*> replicas_;  // owned by cluster_
};

}  // namespace ratcon::harness
