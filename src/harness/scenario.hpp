#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "consensus/outcome.hpp"
#include "consensus/replica.hpp"
#include "core/prft_node.hpp"
#include "harness/metrics.hpp"
#include "harness/monitor.hpp"
#include "harness/profiler.hpp"
#include "net/cluster.hpp"
#include "net/netmodel.hpp"
#include "sync/catchup.hpp"
#include "workload/engine.hpp"
#include "workload/latency.hpp"
#include "workload/spec.hpp"

namespace ratcon::harness {

/// Unified scenario API: one composable description of a deployment
/// (protocol, committee, network preset, fault plan, adversary plan,
/// workload, run budget) and one `Simulation` facade that assembles it via
/// the protocol registry (protocols.hpp) and reports the shared safety
/// surface. Every bench, example and test drives deployments through this
/// API, so the paper's claims are always measured under identical
/// conditions across pRFT and the baselines — and every fault/adversary/
/// partition lever is uniformly reachable from every entry point.

/// Network condition a scenario runs under.
enum class NetKind : std::uint8_t {
  kSynchronous = 0,
  kPartialSynchrony = 1,
  kAsynchronous = 2,
};

/// Protocol the registry can deploy (see protocols.hpp for the wiring).
enum class Protocol : std::uint8_t {
  kPrft = 0,
  kHotStuff = 1,
  kRaftLite = 2,
  kQuorum = 3,      ///< pBFT-style two-phase quorum baseline
  kUnanimous = 4,   ///< strong-quorum baseline: τ = n (Claim 1's
                    ///<   τ > n − t0 regime — any silent player stalls it)
};

[[nodiscard]] const char* to_string(NetKind kind);
[[nodiscard]] const char* to_string(Protocol proto);

/// Committee shape and economics.
struct CommitteeSpec {
  std::uint32_t n = 7;
  /// Byzantine design bound; default = the protocol's own bound from the
  /// registry (⌈n/4⌉−1 for pRFT, ⌈n/3⌉−1 for BFT quorums, 0 for CFT).
  std::optional<std::uint32_t> t0;
  std::int64_t collateral = 100;
  std::uint32_t max_block_txs = 64;
  /// Per-block byte budget over encoded transactions (0 = unbounded).
  std::size_t max_block_bytes = 0;
  /// Mempool size/retention policy applied to every replica (defaults are
  /// unbounded — the historical behaviour).
  ledger::MempoolLimits mempool;
  std::optional<SimTime> base_timeout;  ///< default: 8Δ
};

/// Network preset. The three kinds cover the paper's models; `custom`
/// overrides everything for exotic experiments.
struct NetworkSpec {
  NetKind kind = NetKind::kSynchronous;
  SimTime delta = msec(10);
  /// Partial synchrony: GST, and probability a pre-GST message is held
  /// until after GST.
  SimTime gst = msec(200);
  double hold_probability = 0.9;
  /// Asynchrony: exponential delays with this mean, capped. 0 = derive
  /// from delta (mean Δ, cap 20Δ) — finite but unbounded-looking.
  SimTime async_mean = 0;
  SimTime async_cap = 0;
  /// Escape hatch: overrides `kind` entirely when set.
  std::function<std::unique_ptr<net::NetworkModel>()> custom;

  [[nodiscard]] std::unique_ptr<net::NetworkModel> build() const;

  [[nodiscard]] static NetworkSpec synchronous(SimTime delta = msec(10));
  [[nodiscard]] static NetworkSpec partial_synchrony(
      SimTime gst, SimTime delta = msec(10), double hold_probability = 0.9);
  [[nodiscard]] static NetworkSpec asynchronous(SimTime mean, SimTime cap);
};

/// Scripted crash-stop: `node` receives no messages or timers from `at`
/// on. `at <= 0` applies before the very first protocol step (the node
/// never even starts — the "dead from the outset" scenarios).
struct CrashEvent {
  NodeId node = 0;
  SimTime at = 0;
};

/// Scripted partition: from `at` (`<= 0` = before the first protocol
/// step), messages between different groups are held until `heal_at`
/// (nodes absent from every group talk to everyone — where the paper's
/// partition attacks place the adversary).
struct PartitionEvent {
  std::vector<std::vector<NodeId>> groups;
  SimTime at = 0;
  SimTime heal_at = 0;
};

/// Deterministic fault script applied by the Simulation. Crashes and
/// partitions are benign faults (never slashable); adversarial behaviour
/// lives in AdversaryPlan.
struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;

  FaultPlan& crash(NodeId node, SimTime at = 0);
  /// Crash-stops nodes `first..first+count-1` at `at`.
  FaultPlan& crash_range(NodeId first, std::uint32_t count, SimTime at = 0);
  FaultPlan& partition(std::vector<std::vector<NodeId>> groups, SimTime at,
                       SimTime heal_at);
  [[nodiscard]] bool empty() const {
    return crashes.empty() && partitions.empty();
  }
};

/// Everything a node factory needs to build one replica against the
/// Simulation's shared trusted setup.
struct NodeEnv {
  const consensus::Config& cfg;
  crypto::KeyRegistry& registry;
  ledger::DepositLedger& deposits;
  std::uint64_t seed = 1;  ///< key-generation seed (the scenario seed)
  /// Rational-strategy hooks for this node (AdversaryPlan::behaviors);
  /// the registry's deps helpers thread it into every protocol's replica.
  std::shared_ptr<consensus::Behavior> behavior;
};

/// Who deviates, and how. Two levers, composable:
///  * `behaviors`: rational-strategy hooks (π_abs, π_pc, π_lazy, …) keyed
///    by player — the paper's strategy space §4.1.2. Every registered
///    protocol honors them: the node consults the hook before each phase
///    send and when building blocks.
///  * `node_factory`: full replica replacement for any protocol (fork
///    agents, spammers, per-node QuorumNode knobs). Return nullptr to get
///    the registry's default honest replica for that id.
struct AdversaryPlan {
  std::map<NodeId, std::shared_ptr<consensus::Behavior>> behaviors;
  std::function<std::unique_ptr<consensus::IReplica>(NodeId, const NodeEnv&)>
      node_factory;
  [[nodiscard]] bool empty() const {
    return behaviors.empty() && !node_factory;
  }
};

/// Client workload description (src/workload): fixed-interval, open-loop
/// or closed-loop arrivals with zipf-skewed senders. The old fixed-plan
/// fields (`txs`, `start`, `interval`, `first_id`) survive with identical
/// names and defaults, so legacy call sites read the same. `WorkloadPlan`
/// remains as an alias for source compatibility.
using WorkloadPlan = workload::WorkloadSpec;

/// How long a run may go on, in virtual and host time.
struct RunBudget {
  /// Replicas stop initiating work once this many blocks are final.
  std::uint64_t target_blocks = 5;
  /// Virtual-time cap for run_to_completion (early exit at target).
  SimTime horizon = sec(120);
  /// Drive-loop chunk: long enough to amortize height checks, short
  /// enough that early exit saves real work on big committees.
  SimTime chunk = sec(1);
  /// Advisory host wall-clock budget in ms; 0 = unlimited. Reported via
  /// RunReport/MatrixReport so sweeps surface their slowest cells.
  double wall_ms = 0;
};

/// The full scenario: everything needed to reproduce one deployment run.
struct ScenarioSpec {
  Protocol protocol = Protocol::kPrft;
  std::uint64_t seed = 1;
  CommitteeSpec committee;
  NetworkSpec net;
  FaultPlan faults;
  AdversaryPlan adversary;
  workload::WorkloadSpec workload;
  RunBudget budget;
  /// Catch-up / state-transfer plan (src/sync). On by default: every
  /// replica is wrapped in a CatchupDriver so nodes that miss a
  /// commit/decide under adversarial delay recover after GST. Disable to
  /// reproduce the no-recovery behaviour.
  sync::SyncPlan sync_plan;
  /// Flight-recorder level for this run: -1 adopts the process-wide
  /// TraceSink::DefaultLevel() (itself 0 unless a sweep raised it), 0 off,
  /// 1 state transitions, 2 +sends, 3 +receives/deliveries.
  int trace_level = -1;
  /// Per-replica trace ring capacity; 0 = TraceSink::kDefaultCapacity.
  std::size_t trace_capacity = 0;
  /// Metrics-timeline level: -1 adopts MetricsRegistry::DefaultLevel()
  /// (itself 0 unless a sweep raised it), 0 off, 1 sampling + watchdog on.
  int metrics_level = -1;
  /// Virtual-time sampling resolution; 0 derives Δ (one sample per network
  /// latency quantum).
  SimTime metrics_tick = 0;
  /// Per-series sample ring capacity; 0 = MetricsRegistry::kDefaultCapacity.
  std::size_t metrics_capacity = 0;
  /// Post-GST liveness watchdog: no live-honest height progress for this
  /// many consecutive ticks after GST ⇒ a named stall verdict and an early
  /// exit from run_to_completion (instead of a silent crawl to the
  /// horizon). 0 disables. Inert on asynchronous nets (no GST) and when
  /// metrics are off.
  std::uint32_t watchdog_ticks = 100;

  // Fluent builder sugar for the common axes.
  ScenarioSpec& with_protocol(Protocol p);
  ScenarioSpec& with_n(std::uint32_t n);
  ScenarioSpec& with_seed(std::uint64_t s);
  ScenarioSpec& with_net(NetworkSpec n);
  ScenarioSpec& with_target_blocks(std::uint64_t blocks);
  ScenarioSpec& with_workload(std::uint64_t txs, SimTime start = msec(1),
                              SimTime interval = msec(2));
  /// Full workload-engine spec (open-loop, closed-loop, zipf senders, …).
  ScenarioSpec& with_workload(workload::WorkloadSpec spec);
  ScenarioSpec& with_sync(bool enabled);

  /// "prft/n=7/partial-synchrony/seed=3" — for assertion messages.
  [[nodiscard]] std::string label() const;
};

/// Per-player economics and traffic of one run — exposed so external
/// tooling (the empirical payoff engine, dashboards) does not have to
/// re-derive deltas from the chain and the deposit ledger.
struct PlayerAccount {
  NodeId player = kNoNode;
  bool honest = true;            ///< replica ran the honest protocol π_0
  bool crashed = false;          ///< crash-stopped by the fault plan
  bool slashed = false;          ///< a PoF burned this player's deposit
  std::int64_t deposit_delta = 0;  ///< end balance − collateral (≤ 0)
  std::uint64_t messages = 0;    ///< wire messages this player sent
  std::uint64_t bytes = 0;       ///< wire bytes this player sent
};

/// Outcome of one scenario run: the shared safety predicates every
/// configuration must uphold, plus traffic and timing.
struct RunReport {
  Protocol protocol{};
  std::uint32_t n = 0;
  NetKind net{};
  std::uint64_t seed = 0;

  bool agreement = false;       ///< no two honest chains conflict
  bool ordering = false;        ///< c-strict ordering across honest chains
  bool honest_slashed = false;  ///< an honest deposit was burned (must not be)
  std::uint64_t min_height = 0;
  std::uint64_t max_height = 0;
  /// Smallest finalized height among honest replicas that are *not*
  /// crash-stopped — the height liveness assertions are made on (a crashed
  /// node legitimately stays behind; a live one must recover).
  std::uint64_t live_min_height = 0;
  std::uint64_t messages = 0;  ///< network sends observed
  std::uint64_t bytes = 0;     ///< network bytes observed
  std::uint64_t sync_messages = 0;  ///< catch-up (ProtoId::kSync) sends
  std::uint64_t sync_bytes = 0;     ///< catch-up bytes (piggyback overhead
                                    ///<   included)
  /// Announces that rode outgoing protocol messages instead of being
  /// broadcast on their own — each one is a send saved from sync_messages.
  std::uint64_t sync_piggybacked = 0;

  /// Per-player deposit deltas, slashes and traffic (index = NodeId).
  std::vector<PlayerAccount> accounts;
  /// Every deposit burn applied during the run, in application order.
  std::vector<ledger::BurnEvent> penalties;

  /// Per-run profiler snapshot (the calling thread's counters since the
  /// Simulation was constructed). Wall-clock sums vary run to run; the
  /// event counts are deterministic and byte-identical serial vs parallel.
  ProfReport profile;

  /// Flight-recorder counters and live-monitor verdicts (level 0 = all
  /// zeros). Event counts are deterministic, serial == parallel.
  TraceStats trace;

  /// Workload measurement: per-tx submit -> first-honest-finalize latency
  /// histogram, throughput, sender skew and mempool overflow counters.
  /// Deterministic (integer counts); empty when the scenario had no
  /// workload.
  workload::WorkloadStats workload;

  /// Metrics timelines (level 0 = empty): per-replica/global virtual-time
  /// series, round-duration histogram, and the liveness watchdog's stall
  /// verdict. Integer-valued and deterministic, serial == parallel.
  MetricsStats metrics;

  SimTime sim_time = 0;  ///< virtual time when the run stopped
  /// The network model's GST (0 synchronous, kSimTimeNever asynchronous).
  SimTime gst = 0;
  /// Virtual time at which every live honest replica had finalized the
  /// target (observed at drive-loop granularity); kSimTimeNever if never.
  SimTime finalized_at = kSimTimeNever;
  double wall_ms = 0;    ///< host wall-clock spent driving the event loop
  double budget_ms = 0;  ///< RunBudget::wall_ms the scenario ran under

  /// The shared safety predicate asserted on every run.
  [[nodiscard]] bool safe() const {
    return agreement && ordering && !honest_slashed;
  }
  /// Recovery latency: virtual time from GST (0 for models without one) to
  /// full finalization; kSimTimeNever when the target was never reached.
  [[nodiscard]] SimTime recovery_latency() const {
    if (finalized_at == kSimTimeNever) return kSimTimeNever;
    const SimTime base = gst == kSimTimeNever ? 0 : gst;
    return finalized_at > base ? finalized_at - base : 0;
  }
  /// True when the run exceeded its advisory wall-clock budget.
  [[nodiscard]] bool over_budget() const {
    return budget_ms > 0 && wall_ms > budget_ms;
  }
  [[nodiscard]] std::string label() const;
};

/// An assembled deployment: trusted setup, deposits, network, replicas —
/// built from a ScenarioSpec through the protocol registry. Owns
/// everything; accessors expose the pieces experiments need.
class Simulation {
 public:
  explicit Simulation(ScenarioSpec spec);
  ~Simulation();  // detaches the monitor set from the thread's TraceSink

  /// Starts every node (round 1 begins). Idempotent.
  void start();

  /// Runs the simulation until virtual time `t`.
  void run_until(SimTime t);
  void run_for(SimTime d) { run_until(cluster_->now() + d); }
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// start() + drive until the budget's horizon, exiting early once every
  /// honest replica reached target_blocks; returns the final report.
  RunReport run_to_completion();

  /// Submits `tx` to every replica's mempool at time `at` (clients gossip
  /// transactions to all players).
  void submit_tx(const ledger::Transaction& tx, SimTime at);

  /// Injects `count` transfer transactions spaced `interval` apart,
  /// starting at `start`. Ids begin at `first_id`.
  void inject_workload(std::uint64_t count, SimTime start, SimTime interval,
                       std::uint64_t first_id = 1);

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] net::Cluster& net() { return *cluster_; }
  [[nodiscard]] const consensus::Config& config() const { return cfg_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return *registry_; }
  [[nodiscard]] ledger::DepositLedger& deposits() { return *deposits_; }
  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  [[nodiscard]] consensus::IReplica& replica(NodeId id) {
    return *replicas_.at(id);
  }
  [[nodiscard]] const consensus::IReplica& replica(NodeId id) const {
    return *replicas_.at(id);
  }
  /// Typed access for pRFT introspection (view_changes, exposes_sent, …).
  /// Throws std::logic_error if replica `id` is not a PrftNode.
  [[nodiscard]] prft::PrftNode& prft(NodeId id);

  /// Ledgers of replicas whose behaviour is honest.
  [[nodiscard]] std::vector<const ledger::Chain*> honest_chains() const;

  /// Classifies the run into the paper's system state σ.
  [[nodiscard]] game::SystemState classify(
      std::uint64_t baseline_height = 0,
      std::optional<std::uint64_t> watched_tx = std::nullopt) const;

  /// Safety invariant checks across honest replicas.
  [[nodiscard]] bool agreement_holds() const;
  [[nodiscard]] bool ordering_holds(std::uint64_t c = 0) const;

  /// Smallest / largest finalized height among honest replicas.
  [[nodiscard]] std::uint64_t min_height() const;
  [[nodiscard]] std::uint64_t max_height() const;
  /// Smallest finalized height among honest, non-crashed replicas (the
  /// run budget and liveness assertions exclude crash-stopped nodes).
  [[nodiscard]] std::uint64_t live_min_height() const;

  /// The CatchupDriver wrapping replica `id`, or nullptr when the scenario
  /// runs with sync_plan disabled.
  [[nodiscard]] sync::CatchupDriver* catchup(NodeId id) {
    return drivers_.empty() ? nullptr : drivers_.at(id);
  }

  /// True if any *honest* replica's deposit was burned (must never happen:
  /// the accountability soundness invariant).
  [[nodiscard]] bool honest_player_slashed() const;

  /// The workload engine driving this run's client traffic, or nullptr
  /// when the scenario has no workload.
  [[nodiscard]] workload::WorkloadEngine* workload_engine() {
    return engine_.get();
  }

  /// Snapshot of the current state as a RunReport (no driving).
  [[nodiscard]] RunReport report() const;

  /// The live invariant monitors watching this run's event stream (empty
  /// verdicts when the trace level is 0).
  [[nodiscard]] const MonitorSet& monitors() const { return monitors_; }

  /// The forensics bundle captured at the first monitor violation, if any.
  [[nodiscard]] const std::optional<ForensicsBundle>& forensics() const {
    return monitors_.bundle();
  }

  /// Writes the full recorded trace as Chrome-tracing JSON (`path`, load
  /// via chrome://tracing or https://ui.perfetto.dev) and the same slice as
  /// human-readable text next to it (`path` + ".txt"). Returns false when
  /// tracing was off or the files could not be written.
  bool dump_trace(const std::string& path) const;

  /// True once the liveness watchdog declared this run stalled (the stall
  /// verdict itself rides RunReport::metrics).
  [[nodiscard]] bool stalled() const { return metrics_stalled_; }

 private:
  void note_finalization();
  void schedule_metrics_tick();
  void on_metrics_tick();
  void declare_stall();

  ScenarioSpec spec_;
  consensus::Config cfg_;
  std::unique_ptr<crypto::KeyRegistry> registry_;
  std::unique_ptr<ledger::DepositLedger> deposits_;
  std::unique_ptr<net::Cluster> cluster_;
  std::vector<consensus::IReplica*> replicas_;  // owned by cluster_
  std::vector<sync::CatchupDriver*> drivers_;   // owned by cluster_; may be empty
  std::unique_ptr<workload::WorkloadEngine> engine_;  // null when no workload
  MonitorSet monitors_;  // observes the thread's TraceSink while we live
  std::chrono::steady_clock::duration wall_spent_{0};
  SimTime finalized_at_ = kSimTimeNever;
  bool started_ = false;
  // Metrics-timeline tick + liveness watchdog state (all virtual-time).
  bool metrics_on_ = false;
  bool metrics_stalled_ = false;
  SimTime metrics_tick_ = 0;
  std::uint32_t stall_ticks_ = 0;
  std::uint64_t watchdog_height_ = 0;
};

}  // namespace ratcon::harness
