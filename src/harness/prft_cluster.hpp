#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/outcome.hpp"
#include "core/prft_node.hpp"
#include "net/cluster.hpp"

namespace ratcon::harness {

/// Options for assembling a simulated pRFT deployment. The defaults give a
/// small healthy committee on a synchronous network.
struct PrftClusterOptions {
  std::uint32_t n = 7;
  std::optional<std::uint32_t> t0;  ///< default: ⌈n/4⌉ − 1 (pRFT bound)
  std::uint64_t seed = 1;
  SimTime delta = msec(10);
  std::optional<SimTime> base_timeout;  ///< default: 8Δ
  std::uint64_t target_blocks = 5;
  std::int64_t collateral = 100;
  std::uint32_t max_block_txs = 64;

  /// Network factory; default = synchronous with `delta`.
  std::function<std::unique_ptr<net::NetworkModel>()> make_net;

  /// Per-node factory; default = honest PrftNode. Adversary experiments
  /// substitute subclasses / behaviours for chosen ids.
  std::function<std::unique_ptr<prft::PrftNode>(NodeId,
                                                prft::PrftNode::Deps)>
      node_factory;
};

/// An assembled pRFT deployment: nodes, trusted setup, deposits, network.
/// Owns everything; accessors expose the pieces experiments need.
class PrftCluster {
 public:
  explicit PrftCluster(PrftClusterOptions options);

  /// Starts every node (round 1 begins).
  void start() { cluster_->start(); }

  /// Runs the simulation until virtual time `t`.
  void run_until(SimTime t) { cluster_->run_until(t); }
  void run_for(SimTime d) { cluster_->run_for(d); }
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1)) {
    return cluster_->run(max_events);
  }

  /// Submits `tx` to every replica's mempool at time `at` (clients gossip
  /// transactions to all players).
  void submit_tx(const ledger::Transaction& tx, SimTime at);

  /// Injects `count` transfer transactions spaced `interval` apart,
  /// starting at `start`. Ids begin at `first_id`.
  void inject_workload(std::uint64_t count, SimTime start, SimTime interval,
                       std::uint64_t first_id = 1);

  [[nodiscard]] net::Cluster& net() { return *cluster_; }
  [[nodiscard]] const consensus::Config& config() const { return cfg_; }
  [[nodiscard]] crypto::KeyRegistry& registry() { return *registry_; }
  [[nodiscard]] ledger::DepositLedger& deposits() { return *deposits_; }
  [[nodiscard]] prft::PrftNode& node(NodeId id) { return *nodes_[id]; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Ledgers of replicas whose behaviour is honest.
  [[nodiscard]] std::vector<const ledger::Chain*> honest_chains() const;

  /// Classifies the run into the paper's system state σ.
  [[nodiscard]] game::SystemState classify(
      std::uint64_t baseline_height = 0,
      std::optional<std::uint64_t> watched_tx = std::nullopt) const;

  /// Safety invariant checks across honest replicas.
  [[nodiscard]] bool agreement_holds() const;
  [[nodiscard]] bool ordering_holds(std::uint64_t c = 0) const;

  /// Smallest / largest finalized height among honest replicas.
  [[nodiscard]] std::uint64_t min_height() const;
  [[nodiscard]] std::uint64_t max_height() const;

  /// True if any *honest* replica's deposit was burned (must never happen:
  /// the accountability soundness invariant).
  [[nodiscard]] bool honest_player_slashed() const;

 private:
  consensus::Config cfg_;
  std::unique_ptr<crypto::KeyRegistry> registry_;
  std::unique_ptr<ledger::DepositLedger> deposits_;
  std::unique_ptr<net::Cluster> cluster_;
  std::vector<prft::PrftNode*> nodes_;  // owned by cluster_
};

}  // namespace ratcon::harness
