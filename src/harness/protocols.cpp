#include "harness/protocols.hpp"

#include <map>
#include <stdexcept>
#include <utility>

namespace ratcon::harness {

namespace {

std::uint32_t cft_t0(std::uint32_t) { return 0; }

std::map<Protocol, ProtocolTraits>& registry_map() {
  static std::map<Protocol, ProtocolTraits> map = [] {
    std::map<Protocol, ProtocolTraits> m;
    m[Protocol::kPrft] = ProtocolTraits{
        "prft", &consensus::prft_t0,
        [](NodeId id, const NodeEnv& env) {
          return make_prft_replica(id, env);
        }};
    m[Protocol::kHotStuff] = ProtocolTraits{
        "hotstuff", &consensus::bft_t0,
        [](NodeId id, const NodeEnv& env)
            -> std::unique_ptr<consensus::IReplica> {
          return std::make_unique<baselines::HotstuffNode>(
              make_hotstuff_deps(id, env));
        }};
    m[Protocol::kRaftLite] = ProtocolTraits{
        "raftlite", &cft_t0,
        [](NodeId id, const NodeEnv& env)
            -> std::unique_ptr<consensus::IReplica> {
          return std::make_unique<baselines::RaftLiteNode>(
              make_raftlite_deps(id, env));
        }};
    m[Protocol::kQuorum] = ProtocolTraits{
        "quorum", &consensus::bft_t0,
        [](NodeId id, const NodeEnv& env)
            -> std::unique_ptr<consensus::IReplica> {
          return std::make_unique<baselines::QuorumNode>(
              make_quorum_deps(id, env));
        }};
    // Claim 1's upper-boundary comparator: a two-phase quorum protocol
    // whose agreement threshold is the whole committee (t0 = 0, τ = n).
    // With τ > n − t0 a quorum needs every player's signature, so a single
    // silent (rational) player stalls it forever — the strong-quorum
    // regime the paper's Table 1 / Claim 1 rule out, kept deployable so
    // the empirical deviation engine can measure the profitable abstention
    // it admits.
    m[Protocol::kUnanimous] = ProtocolTraits{
        "unanimous", &cft_t0,
        [](NodeId id, const NodeEnv& env)
            -> std::unique_ptr<consensus::IReplica> {
          baselines::QuorumNode::Deps deps = make_quorum_deps(id, env);
          deps.proto = consensus::ProtoId::kQuorumDemo;
          deps.tau = env.cfg.n;
          return std::make_unique<baselines::QuorumNode>(std::move(deps));
        }};
    return m;
  }();
  return map;
}

}  // namespace

const ProtocolTraits& protocol_traits(Protocol proto) {
  const auto& map = registry_map();
  const auto it = map.find(proto);
  if (it == map.end()) {
    throw std::out_of_range("protocol_traits: unregistered protocol " +
                            std::to_string(static_cast<int>(proto)));
  }
  return it->second;
}

void register_protocol(Protocol proto, ProtocolTraits traits) {
  registry_map()[proto] = std::move(traits);
}

prft::PrftNode::Deps make_prft_deps(NodeId id, const NodeEnv& env,
                                    std::shared_ptr<prft::Behavior> behavior) {
  prft::PrftNode::Deps deps;
  deps.cfg = env.cfg;
  deps.registry = &env.registry;
  deps.keys = env.registry.generate(id, env.seed);
  deps.deposits = &env.deposits;
  deps.behavior = behavior != nullptr ? std::move(behavior) : env.behavior;
  return deps;
}

baselines::HotstuffNode::Deps make_hotstuff_deps(NodeId id,
                                                 const NodeEnv& env) {
  baselines::HotstuffNode::Deps deps;
  deps.cfg = env.cfg;
  deps.registry = &env.registry;
  deps.keys = env.registry.generate(id, env.seed);
  deps.behavior = env.behavior;
  return deps;
}

baselines::RaftLiteNode::Deps make_raftlite_deps(NodeId id,
                                                 const NodeEnv& env) {
  baselines::RaftLiteNode::Deps deps;
  deps.cfg = env.cfg;
  deps.registry = &env.registry;
  deps.keys = env.registry.generate(id, env.seed);
  deps.behavior = env.behavior;
  return deps;
}

baselines::QuorumNode::Deps make_quorum_deps(NodeId id, const NodeEnv& env,
                                             bool accountable) {
  baselines::QuorumNode::Deps deps;
  deps.cfg = env.cfg;
  deps.proto = accountable ? consensus::ProtoId::kPolygraph
                           : consensus::ProtoId::kPbft;
  deps.accountable = accountable;
  deps.registry = &env.registry;
  deps.keys = env.registry.generate(id, env.seed);
  deps.deposits = &env.deposits;
  deps.behavior = env.behavior;
  return deps;
}

std::unique_ptr<consensus::IReplica> make_prft_replica(
    NodeId id, const NodeEnv& env, std::shared_ptr<prft::Behavior> behavior) {
  return std::make_unique<prft::PrftNode>(
      make_prft_deps(id, env, std::move(behavior)));
}

}  // namespace ratcon::harness
