#include "harness/replica_cluster.hpp"

#include <stdexcept>

namespace ratcon::harness {

ReplicaCluster::ReplicaCluster(Options options) {
  if (!options.factory) {
    throw std::invalid_argument("ReplicaCluster: factory is required");
  }
  cfg_.n = options.n;
  cfg_.t0 = options.t0;
  cfg_.delta = options.delta;
  cfg_.base_timeout = options.base_timeout.value_or(8 * options.delta);
  cfg_.target_rounds = options.target_blocks;
  cfg_.max_block_txs = options.max_block_txs;

  registry_ = std::make_unique<crypto::KeyRegistry>();
  deposits_ = std::make_unique<ledger::DepositLedger>(options.collateral);
  deposits_->register_players(options.n);

  std::unique_ptr<net::NetworkModel> model =
      options.make_net ? options.make_net()
                       : net::make_synchronous(options.delta);
  cluster_ = std::make_unique<net::Cluster>(std::move(model), options.seed);

  for (NodeId id = 0; id < options.n; ++id) {
    auto replica = options.factory(id, cfg_, *registry_, *deposits_);
    consensus::IReplica* raw = replica.get();
    cluster_->add_node(std::move(replica));
    replicas_.push_back(raw);
  }
}

void ReplicaCluster::submit_tx(const ledger::Transaction& tx, SimTime at) {
  cluster_->schedule(at - cluster_->now(), [this, tx, at]() {
    for (consensus::IReplica* r : replicas_) {
      r->mempool().submit(tx, at);
    }
  });
}

void ReplicaCluster::inject_workload(std::uint64_t count, SimTime start,
                                     SimTime interval,
                                     std::uint64_t first_id) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const ledger::Transaction tx = ledger::make_transfer(
        first_id + i, static_cast<NodeId>(i % cfg_.n));
    submit_tx(tx, start + static_cast<SimTime>(i) * interval);
  }
}

std::vector<const ledger::Chain*> ReplicaCluster::honest_chains() const {
  std::vector<const ledger::Chain*> out;
  for (const consensus::IReplica* r : replicas_) {
    if (r->is_honest()) out.push_back(&r->chain());
  }
  return out;
}

game::SystemState ReplicaCluster::classify(
    std::uint64_t baseline_height,
    std::optional<std::uint64_t> watched_tx) const {
  consensus::OutcomeQuery query;
  query.honest_chains = honest_chains();
  query.baseline_height = baseline_height;
  query.watched_tx = watched_tx;
  return consensus::classify_outcome(query);
}

bool ReplicaCluster::agreement_holds() const {
  return !consensus::any_fork(honest_chains());
}

bool ReplicaCluster::ordering_holds(std::uint64_t c) const {
  const auto chains = honest_chains();
  for (std::size_t i = 0; i < chains.size(); ++i) {
    for (std::size_t j = i + 1; j < chains.size(); ++j) {
      if (!ledger::c_strict_ordering_holds(*chains[i], *chains[j], c)) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t ReplicaCluster::min_height() const {
  return consensus::min_finalized_height(honest_chains());
}

std::uint64_t ReplicaCluster::max_height() const {
  return consensus::max_finalized_height(honest_chains());
}

}  // namespace ratcon::harness
