#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace ratcon::harness {

class JsonWriter;

/// Enum-indexed flat-array profiler for the simulator's hot paths
/// (model: samgraph's profiler.h — L1/L2/L3 tiers, Log/LogAdd, one report
/// per run). Every counter is a slot in one flat array, so logging is an
/// index + add with no locks or lookups; the instance is thread_local, so
/// parallel matrix cells (one seeded Simulation per worker thread at a
/// time) profile independently and stay byte-identical to a serial sweep.
///
/// Tiers:
///  * L1 — per-run wall-clock of the seven instrumented phases (serialize/
///    decode, SHA-256/HMAC sign+verify, Merkle build/prove, event-queue
///    schedule/dispatch, sync/catch-up, payoff accounting, workload
///    generate/submit/select). The `sum` is nanoseconds, the `count` is
///    phase entries.
///  * L2 — sub-phase wall-clock (encode vs decode, sign vs verify, …).
///  * L3 — cheap event counters with no clock reads (hash calls/bytes,
///    cache hits, clamped schedules). The `sum` carries the total.
///
/// Phase timers are inclusive: a sync handler that signs an envelope
/// contributes to both the sync and crypto phases, so L1 phases measure
/// "wall-clock spent inside this subsystem", not a disjoint partition.
enum ProfItem : std::uint16_t {
  // L1 — phase totals (ns + entry counts).
  kL1SerializeNs = 0,
  kL1CryptoNs,
  kL1MerkleNs,
  kL1EventQueueNs,
  kL1SyncNs,
  kL1PayoffNs,
  kL1WorkloadNs,
  // L2 — sub-phase totals (ns + entry counts).
  kL2EncodeNs,
  kL2DecodeNs,
  kL2SignNs,
  kL2VerifyNs,
  kL2MerkleBuildNs,
  kL2MerkleProveNs,
  kL2MerkleVerifyNs,
  kL2ScheduleNs,
  kL2DispatchNs,
  kL2SyncAnnounceNs,
  kL2SyncHandleNs,
  kL2SyncServeNs,
  kL2SyncAdoptNs,
  kL2PayoffClassifyNs,
  kL2PayoffAccountNs,
  kL2WorkloadGenerateNs,
  kL2WorkloadSubmitNs,
  kL2WorkloadSelectNs,
  kL2WorkloadTrackNs,
  // L3 — event counters (sum = total, count = log calls; no clock reads).
  kL3ShaCalls,
  kL3ShaBytes,
  kL3HmacCalls,
  kL3DigestCacheHits,
  kL3DigestCacheMisses,
  kL3EnvelopesSigned,
  kL3EnvelopesVerified,
  kL3BytesEncoded,
  kL3BytesDecoded,
  kL3ZeroCopyDecodes,   ///< WireView::parse calls (no body copy)
  kL3OwningDecodes,     ///< WireView::to_envelope / Envelope::decode calls
  kL3BodyBytesCopied,   ///< bytes copied out of the wire by owning decodes
  kL3ScratchReuses,     ///< workspace-pool leases that recycled capacity
  kL3ScratchMisses,     ///< workspace-pool leases that had to allocate
  kL3MerkleLeaves,
  kL3EventsScheduled,
  kL3EventsDispatched,
  kL3FutureRoundBuffered,
  kL3FutureRoundReplayed,
  kL3NegativeDelayClamps,
  kL3PastTimeClamps,
  kL3WorkloadTxsSubmitted,
  kL3WorkloadTxsFinalized,
  kL3MempoolEvictions,
  kL3MempoolRejections,
  // Number of items, not a real slot.
  kNumProfItems,
};

/// Collection tier of an item: 1, 2 or 3.
[[nodiscard]] int tier_of(ProfItem item);

/// Stable snake_case name ("serialize", "sha_calls", …) used in reports
/// and the BENCH_*.json artifacts.
[[nodiscard]] const char* to_string(ProfItem item);

/// One counter: `sum` accumulates values (ns for timers, totals for L3
/// counters), `count` the number of Log/LogAdd calls against it.
struct ProfSlot {
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// The seven instrumented phases, in report order. Acceptance gate: all of
/// them non-zero on a smoke matrix cell.
inline constexpr std::array<ProfItem, 7> kProfPhases = {
    kL1SerializeNs, kL1CryptoNs,    kL1MerkleNs,    kL1EventQueueNs,
    kL1SyncNs,      kL1PayoffNs,    kL1WorkloadNs,
};

/// Immutable snapshot of one run's counters — the piece that rides
/// RunReport into the bench artifacts. Mergeable so sweeps can aggregate
/// across cells (counts merge exactly; sums are float-additive).
struct ProfReport {
  int level = 0;
  std::array<ProfSlot, kNumProfItems> items{};

  [[nodiscard]] double sum(ProfItem item) const { return items[item].sum; }
  [[nodiscard]] std::uint64_t count(ProfItem item) const {
    return items[item].count;
  }
  /// Milliseconds helper for the timer items.
  [[nodiscard]] double ms(ProfItem item) const { return items[item].sum / 1e6; }

  ProfReport& merge(const ProfReport& other);

  /// Human-readable per-run report: the six phases, then L2 sub-phases,
  /// then the L3 counter line — items with zero counts are elided.
  [[nodiscard]] std::string format() const;
};

/// Emits `report` as a JSON object: {"level", "phases": {name: {ns, count}},
/// "items": {name: {sum, count}}} — zero-count items elided from "items".
/// The writer must be positioned where an object value is legal.
void write_profile_json(JsonWriter& json, const ProfReport& report);

/// The per-thread profiler. `Get()` hands out one instance per thread;
/// a Simulation resets it at construction and snapshots it into its
/// RunReport, so each cell of a sweep gets exactly one report per run no
/// matter how cells are spread over workers.
class Profiler {
 public:
  [[nodiscard]] static Profiler& Get();

  /// Process-wide default collection level. New per-thread instances start
  /// here, and each Simulation re-adopts it at construction — so setting
  /// it before a sweep (e.g. `bench_matrix_sweep --prof-level=0`) governs
  /// every worker thread, not just the caller's.
  static void SetDefaultLevel(int level) {
    default_level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] static int DefaultLevel() {
    return default_level_.load(std::memory_order_relaxed);
  }

  /// Clears every slot (the thread's level is kept). Called once per run.
  void Reset();

  /// Collection level: 0 disables everything, 1..3 enable tiers <= level.
  /// Default 3 — the scoped timers skip their clock reads for disabled
  /// tiers, so lowering the level removes the measurement cost too.
  void SetLevel(int level) { level_ = level; }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] bool enabled(ProfItem item) const {
    return tier_of(item) <= level_;
  }

  /// Overwrites the slot with `value` (a gauge).
  void Log(ProfItem item, double value) {
    if (!enabled(item)) return;
    items_[item].sum = value;
    items_[item].count = 1;
  }

  /// Accumulates `value` into the slot (`n` = how many events it covers).
  void LogAdd(ProfItem item, double value, std::uint64_t n = 1) {
    if (!enabled(item)) return;
    items_[item].sum += value;
    items_[item].count += n;
  }

  [[nodiscard]] const ProfSlot& slot(ProfItem item) const {
    return items_[item];
  }
  [[nodiscard]] ProfReport snapshot() const;

 private:
  static std::atomic<int> default_level_;

  std::array<ProfSlot, kNumProfItems> items_{};
  int level_ = DefaultLevel();
};

/// Counts an L3 event on the calling thread's profiler: one branch and one
/// add, no clock read.
inline void prof_count(ProfItem item, double value = 1.0,
                       std::uint64_t n = 1) {
  Profiler::Get().LogAdd(item, value, n);
}

/// Scoped RAII timer: adds the elapsed nanoseconds to `phase` (an L1 item)
/// and optionally to `sub` (its L2 breakdown) on destruction. When the
/// phase's tier is disabled no clock is read at all.
class ProfTimer {
 public:
  explicit ProfTimer(ProfItem phase, ProfItem sub = kNumProfItems)
      : prof_(Profiler::Get()), phase_(phase), sub_(sub),
        active_(prof_.enabled(phase)) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfTimer() {
    if (!active_) return;
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    prof_.LogAdd(phase_, ns);
    if (sub_ != kNumProfItems) prof_.LogAdd(sub_, ns);
  }

  ProfTimer(const ProfTimer&) = delete;
  ProfTimer& operator=(const ProfTimer&) = delete;

 private:
  Profiler& prof_;
  ProfItem phase_;
  ProfItem sub_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace ratcon::harness
