#pragma once

#include <functional>
#include <memory>

#include "baselines/hotstuff.hpp"
#include "baselines/quorum_node.hpp"
#include "baselines/raftlite.hpp"
#include "core/prft_node.hpp"
#include "harness/scenario.hpp"

namespace ratcon::harness {

/// Protocol registry: the one place that knows how to wire each consensus
/// implementation into the Simulation's shared trusted setup. Adding a
/// protocol to the harness = adding one ProtocolTraits entry; every bench,
/// example, matrix sweep and test then reaches it through ScenarioSpec.
struct ProtocolTraits {
  const char* name = "";  ///< matches to_string(Protocol)
  /// Byzantine design bound used when CommitteeSpec::t0 is unset.
  std::uint32_t (*default_t0)(std::uint32_t n) = nullptr;
  /// Builds one honest replica against the shared setup (keys generated,
  /// target blocks applied).
  std::function<std::unique_ptr<consensus::IReplica>(NodeId, const NodeEnv&)>
      make_replica;
};

/// Looks up the traits for `proto`; throws std::out_of_range for a
/// protocol nobody registered.
[[nodiscard]] const ProtocolTraits& protocol_traits(Protocol proto);

/// Replaces (or adds) the registry entry for `proto`. The four built-ins
/// (pRFT, HotStuff, Raft-lite, quorum/pBFT) are pre-registered.
void register_protocol(Protocol proto, ProtocolTraits traits);

// -- Deps helpers -----------------------------------------------------------
// Adversary node factories subclass or re-configure the protocol nodes;
// these build the honest Deps wiring so factories only override what
// actually deviates.

[[nodiscard]] prft::PrftNode::Deps make_prft_deps(
    NodeId id, const NodeEnv& env,
    std::shared_ptr<prft::Behavior> behavior = nullptr);

[[nodiscard]] baselines::HotstuffNode::Deps make_hotstuff_deps(
    NodeId id, const NodeEnv& env);

[[nodiscard]] baselines::RaftLiteNode::Deps make_raftlite_deps(
    NodeId id, const NodeEnv& env);

[[nodiscard]] baselines::QuorumNode::Deps make_quorum_deps(
    NodeId id, const NodeEnv& env, bool accountable = false);

/// An honest PrftNode with an optional rational-strategy behaviour —
/// the worker behind AdversaryPlan::behaviors.
[[nodiscard]] std::unique_ptr<consensus::IReplica> make_prft_replica(
    NodeId id, const NodeEnv& env,
    std::shared_ptr<prft::Behavior> behavior = nullptr);

}  // namespace ratcon::harness
