#include "harness/prft_cluster.hpp"

namespace ratcon::harness {

PrftCluster::PrftCluster(PrftClusterOptions options) {
  cfg_.n = options.n;
  cfg_.t0 = options.t0.value_or(consensus::prft_t0(options.n));
  cfg_.delta = options.delta;
  cfg_.base_timeout = options.base_timeout.value_or(8 * options.delta);
  cfg_.target_rounds = options.target_blocks;
  cfg_.max_block_txs = options.max_block_txs;

  registry_ = std::make_unique<crypto::KeyRegistry>();
  deposits_ = std::make_unique<ledger::DepositLedger>(options.collateral);
  deposits_->register_players(options.n);

  std::unique_ptr<net::NetworkModel> model =
      options.make_net ? options.make_net()
                       : net::make_synchronous(options.delta);
  cluster_ = std::make_unique<net::Cluster>(std::move(model), options.seed);

  for (NodeId id = 0; id < options.n; ++id) {
    prft::PrftNode::Deps deps;
    deps.cfg = cfg_;
    deps.registry = registry_.get();
    deps.keys = registry_->generate(id, options.seed);
    deps.deposits = deposits_.get();

    std::unique_ptr<prft::PrftNode> node =
        options.node_factory ? options.node_factory(id, std::move(deps))
                             : std::make_unique<prft::PrftNode>(std::move(deps));
    node->set_target_blocks(options.target_blocks);
    prft::PrftNode* raw = node.get();
    cluster_->add_node(std::move(node));
    nodes_.push_back(raw);
  }
}

void PrftCluster::submit_tx(const ledger::Transaction& tx, SimTime at) {
  cluster_->schedule(at - cluster_->now(), [this, tx, at]() {
    for (prft::PrftNode* node : nodes_) {
      node->mempool().submit(tx, at);
    }
  });
}

void PrftCluster::inject_workload(std::uint64_t count, SimTime start,
                                  SimTime interval, std::uint64_t first_id) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const ledger::Transaction tx = ledger::make_transfer(
        first_id + i, static_cast<NodeId>(i % cfg_.n));
    submit_tx(tx, start + static_cast<SimTime>(i) * interval);
  }
}

std::vector<const ledger::Chain*> PrftCluster::honest_chains() const {
  std::vector<const ledger::Chain*> out;
  for (const prft::PrftNode* node : nodes_) {
    if (node->is_honest()) out.push_back(&node->chain());
  }
  return out;
}

game::SystemState PrftCluster::classify(
    std::uint64_t baseline_height,
    std::optional<std::uint64_t> watched_tx) const {
  consensus::OutcomeQuery query;
  query.honest_chains = honest_chains();
  query.baseline_height = baseline_height;
  query.watched_tx = watched_tx;
  return consensus::classify_outcome(query);
}

bool PrftCluster::agreement_holds() const {
  return !consensus::any_fork(honest_chains());
}

bool PrftCluster::ordering_holds(std::uint64_t c) const {
  const auto chains = honest_chains();
  for (std::size_t i = 0; i < chains.size(); ++i) {
    for (std::size_t j = i + 1; j < chains.size(); ++j) {
      if (!ledger::c_strict_ordering_holds(*chains[i], *chains[j], c)) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t PrftCluster::min_height() const {
  return consensus::min_finalized_height(honest_chains());
}

std::uint64_t PrftCluster::max_height() const {
  return consensus::max_finalized_height(honest_chains());
}

bool PrftCluster::honest_player_slashed() const {
  for (const prft::PrftNode* node : nodes_) {
    if (node->is_honest() && deposits_->slashed(node->id())) return true;
  }
  return false;
}

}  // namespace ratcon::harness
