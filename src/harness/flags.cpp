#include "harness/flags.hpp"

#include <cstdlib>
#include <sstream>

namespace ratcon::harness {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::string Flags::get_str(const std::string& name,
                           const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> WorkloadFlags::to_args() const {
  std::vector<std::string> out;
  const auto add = [&out](const std::string& name, const std::string& value) {
    out.push_back("--" + name + "=" + value);
  };
  switch (spec.mode) {
    case workload::Arrival::kFixed:
      add("workload", "fixed");
      add("interval-us", std::to_string(spec.interval));
      break;
    case workload::Arrival::kOpenLoop: {
      add("workload", "open");
      std::ostringstream rate;
      rate.precision(17);  // lossless double round-trip
      rate << spec.rate;
      add("rate", rate.str());
      break;
    }
    case workload::Arrival::kClosedLoop:
      add("workload", "closed");
      add("clients", std::to_string(spec.clients));
      add("think-us", std::to_string(spec.think));
      break;
  }
  add("txs", std::to_string(spec.txs));
  add("start-us", std::to_string(spec.start));
  if (spec.zipf > 0.0) {
    std::ostringstream z;
    z.precision(17);  // lossless double round-trip
    z << spec.zipf;
    add("zipf", z.str());
    add("senders", std::to_string(spec.senders));
  }
  add("payload-bytes", std::to_string(spec.payload_bytes));
  add("max-block-txs", std::to_string(max_block_txs));
  if (max_block_bytes > 0) {
    add("max-block-bytes", std::to_string(max_block_bytes));
  }
  if (mempool.max_pending > 0) {
    add("mempool-cap", std::to_string(mempool.max_pending));
    if (!mempool.evict_oldest) add("mempool-reject", "1");
  }
  return out;
}

std::vector<std::string> ObservabilityFlags::to_args() const {
  std::vector<std::string> out;
  const auto add = [&out](const std::string& name, const std::string& value) {
    out.push_back("--" + name + "=" + value);
  };
  add("prof-level", std::to_string(prof_level));
  add("trace", std::to_string(trace_level));
  add("metrics", std::to_string(metrics_level));
  if (!forensics_dir.empty()) add("forensics", forensics_dir);
  if (!compare_baseline.empty()) add("compare", compare_baseline);
  if (!dump_slowest.empty()) add("dump-slowest", dump_slowest);
  return out;
}

ObservabilityFlags parse_observability_flags(
    const Flags& flags, const ObservabilityFlags& defaults) {
  ObservabilityFlags out = defaults;
  out.prof_level =
      static_cast<int>(flags.get_int("prof-level", out.prof_level));
  out.trace_level = static_cast<int>(flags.get_int("trace", out.trace_level));
  out.metrics_level =
      static_cast<int>(flags.get_int("metrics", out.metrics_level));
  out.forensics_dir = flags.get_str("forensics", out.forensics_dir);
  out.compare_baseline = flags.get_str("compare", out.compare_baseline);
  out.dump_slowest = flags.get_str("dump-slowest", out.dump_slowest);
  return out;
}

WorkloadFlags parse_workload_flags(const Flags& flags,
                                   const WorkloadFlags& defaults) {
  WorkloadFlags out = defaults;
  workload::WorkloadSpec& spec = out.spec;

  const std::string mode = flags.get_str(
      "workload", spec.mode == workload::Arrival::kOpenLoop     ? "open"
                  : spec.mode == workload::Arrival::kClosedLoop ? "closed"
                                                                : "fixed");
  if (mode == "open" || mode == "open-loop") {
    spec.mode = workload::Arrival::kOpenLoop;
  } else if (mode == "closed" || mode == "closed-loop") {
    spec.mode = workload::Arrival::kClosedLoop;
  } else {
    spec.mode = workload::Arrival::kFixed;
  }

  spec.txs = static_cast<std::uint64_t>(
      flags.get_int("txs", static_cast<std::int64_t>(spec.txs)));
  spec.start = flags.get_int("start-us", spec.start);
  spec.interval = flags.get_int("interval-us", spec.interval);
  spec.rate = flags.get_double("rate", spec.rate);
  spec.clients = static_cast<std::uint32_t>(
      flags.get_int("clients", spec.clients));
  spec.think = flags.get_int("think-us", spec.think);
  spec.zipf = flags.get_double("zipf", spec.zipf);
  spec.senders = static_cast<std::uint64_t>(
      flags.get_int("senders", static_cast<std::int64_t>(spec.senders)));
  spec.payload_bytes = static_cast<std::size_t>(
      flags.get_int("payload-bytes",
                    static_cast<std::int64_t>(spec.payload_bytes)));

  out.max_block_txs = static_cast<std::uint32_t>(
      flags.get_int("max-block-txs", out.max_block_txs));
  out.max_block_bytes = static_cast<std::size_t>(flags.get_int(
      "max-block-bytes", static_cast<std::int64_t>(out.max_block_bytes)));
  out.mempool.max_pending = static_cast<std::size_t>(flags.get_int(
      "mempool-cap", static_cast<std::int64_t>(out.mempool.max_pending)));
  if (flags.has("mempool-reject")) out.mempool.evict_oldest = false;
  return out;
}

}  // namespace ratcon::harness
