#include "harness/flags.hpp"

#include <cstdlib>

namespace ratcon::harness {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";
    }
  }
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

std::string Flags::get_str(const std::string& name,
                           const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

}  // namespace ratcon::harness
