#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

/// Compile-out guard: building with -DRATCON_TRACE_ENABLED=0 removes every
/// trace emission (the helpers below compile to nothing), for deployments
/// that cannot afford even the level-0 runtime branch.
#ifndef RATCON_TRACE_ENABLED
#define RATCON_TRACE_ENABLED 1
#endif

namespace ratcon::harness {

class JsonWriter;

/// Flight recorder for the simulator (model: the enum-indexed Profiler in
/// profiler.hpp — thread_local sink, process-wide atomic default level,
/// one recording per Simulation). Every replica appends POD `TraceEvent`s
/// to a fixed-capacity per-node ring buffer: cheap enough to leave on in
/// long sweeps, bounded no matter how long a run goes, and when something
/// trips — an invariant monitor, a failed matrix safety assertion — the
/// newest events from every node merge into one causally-ordered slice
/// that says exactly who sent what to whom before the violation.
///
/// Levels (each includes the ones below it):
///  * 0 — off. One thread_local read + compare per emission point.
///  * 1 — state transitions: round entry, lock acquire/release, vote cast,
///        finalize, sync adopt, slash. The monitors' diet.
///  * 2 — + network sends with a correlation id (FNV-1a 64 over the wire
///        bytes, computed identically at send and receive, so one logical
///        message is one id across every replica's buffer — no wire-format
///        change, broadcasts share the id by construction).
///  * 3 — + receives and post-verification delivers (full message lineage).
enum class TraceKind : std::uint8_t {
  kSend = 0,      ///< network send (emitted at the cluster edge)
  kRecv,          ///< network arrival, pre-verification
  kDeliver,       ///< accepted by a replica's dispatch (post-verification)
  kRoundEnter,    ///< replica entered round/term/view `round`
  kLockAcquire,   ///< lock/tentative-commit taken (a = height)
  kLockRelease,   ///< lock dropped (finalized past it, view change, sync)
  kVoteCast,      ///< replica sent a vote-class message for `round`
  kFinalize,      ///< block finalized (a = height, b = hash prefix,
                  ///<                  aux = certificate size, -1 delegated)
  kSyncAdopt,     ///< catch-up adopted blocks (a = first height, aux = count)
  kSlash,         ///< deposit burned (a = amount, aux = post-burn balance)
  kNumTraceKinds,  ///< not a real kind
};

inline constexpr int kNumTraceKinds =
    static_cast<int>(TraceKind::kNumTraceKinds);

/// Stable snake_case name ("send", "round_enter", …) for reports and dumps.
[[nodiscard]] const char* to_string(TraceKind kind);

/// Collection level at which `kind` starts being recorded (1, 2 or 3).
[[nodiscard]] constexpr int trace_level_for(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSend:
      return 2;
    case TraceKind::kRecv:
    case TraceKind::kDeliver:
      return 3;
    default:
      return 1;
  }
}

/// One recorded event. POD on purpose: rings are flat vectors, overflow is
/// a single struct overwrite, and snapshots are memcpy-clean.
struct TraceEvent {
  SimTime at = 0;          ///< virtual time (µs) — never wall-clock
  std::uint64_t seq = 0;   ///< global emission order within the recording
  std::uint64_t corr = 0;  ///< message correlation id (0 for state events)
  std::uint64_t a = 0;     ///< kind-specific: height, burned amount, …
  std::uint64_t b = 0;     ///< kind-specific: finalized-value hash prefix
  std::int64_t aux = 0;    ///< kind-specific: cert size, post-burn balance
  Round round = 0;
  NodeId node = 0;         ///< the replica this event happened on
  NodeId peer = 0;         ///< counterparty for send/recv/deliver
  TraceKind kind = TraceKind::kSend;
  std::uint8_t proto = 0;     ///< consensus::ProtoId of the subsystem
  std::uint8_t msg_type = 0;  ///< protocol message type for wire events
};

static_assert(std::is_trivially_copyable_v<TraceEvent>);

/// FNV-1a 64 over a byte range — the correlation id. Both the send edge
/// and the receive edge hash the identical wire bytes, so the id matches
/// without ever touching the wire format.
[[nodiscard]] inline std::uint64_t trace_corr(const std::uint8_t* data,
                                              std::size_t size) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Fixed-capacity ring: overwrites the oldest event once full and keeps an
/// exact count of everything ever pushed, so `dropped()` is precise.
class TraceRing {
 public:
  void reset(std::size_t capacity) {
    buf_.assign(capacity, TraceEvent{});
    total_ = 0;
  }
  void push(const TraceEvent& ev) {
    if (buf_.empty()) return;
    buf_[total_ % buf_.size()] = ev;
    ++total_;
  }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  /// Events currently retained (≤ capacity).
  [[nodiscard]] std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_)
                                : buf_.size();
  }
  /// Events ever pushed.
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events overwritten — exact, not saturating.
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > buf_.size() ? total_ - buf_.size() : 0;
  }
  /// i-th retained event, oldest first.
  [[nodiscard]] const TraceEvent& at(std::size_t i) const {
    const std::size_t start =
        total_ > buf_.size() ? static_cast<std::size_t>(total_ % buf_.size())
                             : 0;
    return buf_[(start + i) % buf_.size()];
  }

 private:
  std::vector<TraceEvent> buf_;
  std::uint64_t total_ = 0;
};

/// Recorder counters that ride RunReport (and merge across matrix cells).
/// `verdicts` carries the monitors' violation descriptions — empty means
/// every invariant held.
struct TraceStats {
  int level = 0;
  std::uint64_t recorded = 0;  ///< events emitted (retained + dropped)
  std::uint64_t dropped = 0;   ///< events overwritten by ring overflow
  std::uint64_t violations = 0;
  std::vector<std::string> verdicts;

  TraceStats& merge(const TraceStats& other);
};

/// Observer fed every emitted event, synchronously, after it is recorded.
/// The invariant monitors (monitor.hpp) implement this.
class ITraceObserver {
 public:
  virtual ~ITraceObserver() = default;
  virtual void on_trace_event(const TraceEvent& ev) = 0;
};

/// The per-thread recorder. `Get()` hands out one instance per thread; a
/// Simulation resets it at construction (rings sized to the committee,
/// allocated only when the level is non-zero) and snapshots it into its
/// RunReport — so parallel matrix cells record independently and a serial
/// sweep sees byte-identical per-cell event streams.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  ///< events per node

  [[nodiscard]] static TraceSink& Get();

  /// Process-wide default level; every Simulation re-adopts it at
  /// construction (same contract as Profiler::SetDefaultLevel), so
  /// `bench_matrix_sweep --trace=N` governs all worker threads.
  static void SetDefaultLevel(int level) {
    default_level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] static int DefaultLevel() {
    return default_level_.load(std::memory_order_relaxed);
  }

  /// Starts a fresh recording for `nodes` replicas at `level`. Rings are
  /// only allocated when level > 0; level 0 keeps the sink empty so the
  /// hot path pays exactly one thread_local read + compare.
  void Reset(int level, std::uint32_t nodes,
             std::size_t capacity = kDefaultCapacity);

  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] bool enabled(int lvl) const { return level_ >= lvl; }

  /// The virtual clock events are stamped from (the EventQueue's internal
  /// now). Null falls back to timestamp 0 — fine for unit tests that drive
  /// the sink directly.
  void set_clock(const SimTime* now) { now_ = now; }

  /// Observer invoked after every recorded event (null to detach). The
  /// sink does not own it; whoever installs it must detach before dying.
  void set_observer(ITraceObserver* obs) { observer_ = obs; }
  [[nodiscard]] ITraceObserver* observer() const { return observer_; }

  /// Records `ev` (stamping `at` and `seq`) if its kind's level is on.
  /// Callers that do non-trivial work to build the event (hashing wire
  /// bytes, looking up chain hashes) should gate on `enabled()` first.
  void Emit(TraceEvent ev) {
    if (level_ < trace_level_for(ev.kind)) return;
    ev.at = now_ ? *now_ : 0;
    ev.seq = ++seq_;
    if (ev.node < rings_.size()) rings_[ev.node].push(ev);
    if (observer_ != nullptr) observer_->on_trace_event(ev);
  }

  [[nodiscard]] std::uint32_t nodes() const {
    return static_cast<std::uint32_t>(rings_.size());
  }
  [[nodiscard]] const TraceRing& ring(NodeId node) const {
    return rings_[node];
  }
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// All retained events from every ring, merged into emission (= causal)
  /// order: the simulation is single-threaded per run, so the global seq
  /// is a total order consistent with happens-before.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  /// Counter snapshot (verdicts left empty — the monitors fill those).
  [[nodiscard]] TraceStats snapshot() const;

 private:
  static std::atomic<int> default_level_;

  int level_ = DefaultLevel();
  std::uint64_t seq_ = 0;
  const SimTime* now_ = nullptr;
  ITraceObserver* observer_ = nullptr;
  std::vector<TraceRing> rings_;
};

#if RATCON_TRACE_ENABLED

/// True when events of `kind` would be recorded — the gate call sites use
/// before doing any work to build an event.
[[nodiscard]] inline bool trace_on(TraceKind kind) {
  return TraceSink::Get().enabled(trace_level_for(kind));
}

/// Records a state-transition event (levels ≥ 1). Arguments are scalars
/// the call site already has, so the disabled cost is the level check.
inline void trace_state(TraceKind kind, NodeId node, Round round,
                        std::uint8_t proto, std::uint64_t a = 0,
                        std::uint64_t b = 0, std::int64_t aux = 0,
                        std::uint8_t msg_type = 0) {
  auto& sink = TraceSink::Get();
  if (sink.level() < trace_level_for(kind)) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.peer = node;
  ev.round = round;
  ev.proto = proto;
  ev.a = a;
  ev.b = b;
  ev.aux = aux;
  ev.msg_type = msg_type;
  sink.Emit(ev);
}

/// Records a wire event (send/recv/deliver). `corr` from trace_corr().
inline void trace_wire(TraceKind kind, NodeId node, NodeId peer, Round round,
                       std::uint8_t proto, std::uint8_t msg_type,
                       std::uint64_t corr) {
  auto& sink = TraceSink::Get();
  if (sink.level() < trace_level_for(kind)) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.peer = peer;
  ev.round = round;
  ev.proto = proto;
  ev.msg_type = msg_type;
  ev.corr = corr;
  sink.Emit(ev);
}

/// Records a post-verification deliver, hashing the wire bytes for the
/// correlation id only when level 3 is on.
inline void trace_deliver(NodeId node, NodeId peer, Round round,
                          std::uint8_t proto, std::uint8_t msg_type,
                          const std::uint8_t* wire, std::size_t size) {
  if (!trace_on(TraceKind::kDeliver)) return;
  trace_wire(TraceKind::kDeliver, node, peer, round, proto, msg_type,
             trace_corr(wire, size));
}

#else  // RATCON_TRACE_ENABLED

[[nodiscard]] inline bool trace_on(TraceKind) { return false; }
inline void trace_state(TraceKind, NodeId, Round, std::uint8_t,
                        std::uint64_t = 0, std::uint64_t = 0,
                        std::int64_t = 0, std::uint8_t = 0) {}
inline void trace_wire(TraceKind, NodeId, NodeId, Round, std::uint8_t,
                       std::uint8_t, std::uint64_t) {}
inline void trace_deliver(NodeId, NodeId, Round, std::uint8_t, std::uint8_t,
                          const std::uint8_t*, std::size_t) {}

#endif  // RATCON_TRACE_ENABLED

/// One line per event, oldest first — the human-readable half of a
/// forensics bundle: `[   1234µs] n2 r5 finalize h=3 val=1a2b.. cert=4`.
[[nodiscard]] std::string format_trace_text(
    const std::vector<TraceEvent>& events);

struct MetricsStats;

/// Emits `events` as a Chrome-tracing (chrome://tracing / Perfetto)
/// document: every event a "X" slice on pid 0 / tid `node`, plus "s"/"f"
/// flow arrows joining same-correlation send→recv pairs so message
/// lineage renders as arrows between replica tracks. When `metrics` is
/// non-null its timelines ride the same document as "C" counter tracks —
/// one file, flows + counters, loads as-is in ui.perfetto.dev. The writer
/// must be positioned where an object value is legal.
void write_chrome_trace(JsonWriter& json, const std::vector<TraceEvent>& events,
                        std::uint32_t nodes,
                        const MetricsStats* metrics = nullptr);

/// Convenience: full chrome-trace document for `events` as a string.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events, std::uint32_t nodes,
    const MetricsStats* metrics = nullptr);

}  // namespace ratcon::harness
