#pragma once

#include <string>
#include <vector>

#include "harness/jsonio.hpp"

namespace ratcon::harness {

/// Perf-trajectory regression gate: diffs a freshly produced BENCH_*.json
/// artifact against a committed baseline under bench/baselines/ and turns
/// the delta into a pass / warn / fail verdict. Each artifact kind (the
/// top-level "bench" field) carries its own metric list and per-metric
/// tolerances: deterministic virtual-time metrics (tx/sec of sim time,
/// p99 latency, message counts) get tight bands, host wall-clock metrics
/// (cells/sec, decode ns) get loose ones. Only movement in the *worse*
/// direction trips the gate — improvements are reported but never fail.

/// One compared metric.
struct CompareFinding {
  std::string metric;    ///< dotted path or derived name ("zero_copy.decode_ns")
  double baseline = 0.0;
  double current = 0.0;
  /// Signed percent change relative to baseline (+ = value increased).
  double change_pct = 0.0;
  /// 0 = ok (within tolerance or improved), 1 = warn, 2 = fail.
  int severity = 0;
  std::string note;

  friend bool operator==(const CompareFinding&,
                         const CompareFinding&) = default;
};

/// Result of one baseline/current artifact pair.
struct CompareReport {
  std::string bench;  ///< artifact kind ("matrix_sweep", "workload", ...)
  std::string baseline_path;
  std::string current_path;
  std::vector<CompareFinding> findings;
  /// Structural problems (unreadable file, malformed JSON, kind mismatch,
  /// missing required metric). Any error forces a fail verdict.
  std::vector<std::string> errors;

  /// 0 = pass, 1 = warn, 2 = fail (max finding severity; errors fail).
  [[nodiscard]] int verdict() const;
  [[nodiscard]] const char* verdict_name() const;
  /// Human-readable per-metric table plus the verdict line.
  [[nodiscard]] std::string summary() const;
};

/// Compares two parsed artifacts of the same kind. Unknown kinds produce
/// a single error (fail) rather than silently passing.
[[nodiscard]] CompareReport compare_artifacts(const JsonValue& baseline,
                                              const JsonValue& current);

/// Reads, parses and compares two artifact files; I/O and parse problems
/// land in CompareReport::errors.
[[nodiscard]] CompareReport compare_files(const std::string& baseline_path,
                                          const std::string& current_path);

/// Streams one report as a JSON object (bench, verdict, findings, errors).
void write_compare_json(JsonWriter& json, const CompareReport& report);

}  // namespace ratcon::harness
