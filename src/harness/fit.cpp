#include "harness/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace ratcon::harness {

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_power_law: need >= 2 matched samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) {
      throw std::invalid_argument("fit_power_law: samples must be positive");
    }
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  const double b = (n * sxy - sx * sy) / denom;
  const double log_a = (sy - b * sx) / n;

  // R² in log space.
  const double mean_ly = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ly = std::log(y[i]);
    const double pred = log_a + b * std::log(x[i]);
    ss_tot += (ly - mean_ly) * (ly - mean_ly);
    ss_res += (ly - pred) * (ly - pred);
  }
  PowerFit fit;
  fit.coefficient = std::exp(log_a);
  fit.exponent = b;
  fit.r_squared = ss_tot == 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace ratcon::harness
