#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ratcon::harness {

/// Minimal streaming JSON writer for the machine-readable bench artifacts
/// (BENCH_matrix.json, BENCH_search.json): correct escaping, locale-free
/// number formatting, and a container stack that places commas — no
/// external dependency. Misuse (closing the wrong container, a value
/// where a key is required) throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);      ///< non-finite values emit null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error while containers are
  /// still open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void comma_for_value();
  void opened(Frame f);

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// Writes `content` to `path` atomically enough for bench artifacts
/// (truncate + write). Returns false on I/O failure instead of throwing —
/// an unwritable artifact should not fail the bench run itself.
bool write_text_file(const std::string& path, std::string_view content);

/// Reads a whole text file; nullopt on I/O failure.
[[nodiscard]] std::optional<std::string> read_text_file(
    const std::string& path);

/// Minimal parsed-JSON value — the read-side counterpart of JsonWriter,
/// just enough for bench_compare to diff the BENCH_*.json artifacts
/// against committed baselines (numbers, strings, bools, nested
/// objects/arrays; object member order preserved). Not a general-purpose
/// JSON library: no \uXXXX surrogate pairs beyond the BMP, numbers parse
/// as double.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;
  /// Dotted-path lookup ("workload.p99_us"); nullptr when any hop is
  /// missing.
  [[nodiscard]] const JsonValue* at_path(std::string_view path) const;

  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
  [[nodiscard]] std::string_view as_string(
      std::string_view fallback = {}) const {
    return kind == Kind::kString ? std::string_view(str) : fallback;
  }

  /// Parses `text`; nullopt on malformed input (trailing garbage counts).
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);
};

}  // namespace ratcon::harness
