#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ratcon::harness {

/// Minimal streaming JSON writer for the machine-readable bench artifacts
/// (BENCH_matrix.json, BENCH_search.json): correct escaping, locale-free
/// number formatting, and a container stack that places commas — no
/// external dependency. Misuse (closing the wrong container, a value
/// where a key is required) throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);      ///< non-finite values emit null
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document. Throws std::logic_error while containers are
  /// still open.
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void comma_for_value();
  void opened(Frame f);

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// Writes `content` to `path` atomically enough for bench artifacts
/// (truncate + write). Returns false on I/O failure instead of throwing —
/// an unwritable artifact should not fail the bench run itself.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace ratcon::harness
