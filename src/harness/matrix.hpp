#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/netmodel.hpp"

namespace ratcon::harness {

/// Seed-matrix scenario harness: drives a protocol through the cross-product
/// of committee sizes × network models × RNG seeds and records, per cell, the
/// shared safety properties every configuration must uphold (agreement,
/// c-strict ordering, no honest slashing). Equilibrium/safety claims are only
/// credible when they survive varied network and committee conditions; this
/// harness is the regression gate for that.

/// Network condition a cell runs under.
enum class NetKind : std::uint8_t {
  kSynchronous = 0,
  kPartialSynchrony = 1,
  kAsynchronous = 2,
};

/// Protocol a cell deploys.
enum class Protocol : std::uint8_t {
  kPrft = 0,
  kHotStuff = 1,
  kRaftLite = 2,
};

[[nodiscard]] const char* to_string(NetKind kind);
[[nodiscard]] const char* to_string(Protocol proto);

/// The sweep definition. Defaults give the tier-1 seed matrix:
/// 4 committee sizes × 3 network models × 5 seeds.
struct MatrixSpec {
  std::vector<Protocol> protocols{Protocol::kPrft};
  std::vector<std::uint32_t> committee_sizes{4, 7, 16, 31};
  std::vector<NetKind> nets{NetKind::kSynchronous, NetKind::kPartialSynchrony,
                            NetKind::kAsynchronous};
  std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};

  SimTime delta = msec(10);
  /// GST for partial synchrony (pre-GST the adversary delays messages).
  SimTime gst = msec(200);
  /// Probability a pre-GST message is held until after GST.
  double hold_probability = 0.9;
  /// Blocks each cell tries to finalize before stopping.
  std::uint64_t target_blocks = 3;
  /// Transactions injected at the start of each cell.
  std::uint64_t workload_txs = 12;
  /// Virtual-time cap per cell; cells stop early once every honest replica
  /// reaches `target_blocks`.
  SimTime horizon = sec(120);

  /// Crash-fault scenario: crash-stop nodes 0..crash_count-1 at `crash_at`.
  /// Crashed nodes are honest-but-silent — safety must survive and their
  /// deposits must never be burned.
  std::uint32_t crash_count = 0;
  SimTime crash_at = msec(5);
};

/// Outcome of one (protocol, n, net, seed) cell.
struct CellResult {
  Protocol protocol{};
  std::uint32_t n = 0;
  NetKind net{};
  std::uint64_t seed = 0;

  bool agreement = false;       ///< no two honest chains conflict
  bool ordering = false;        ///< c-strict ordering across honest chains
  bool honest_slashed = false;  ///< an honest deposit was burned (must not be)
  std::uint64_t min_height = 0;
  std::uint64_t max_height = 0;
  std::uint64_t messages = 0;  ///< network sends observed
  std::uint64_t bytes = 0;     ///< network bytes observed

  /// The shared safety predicate asserted on every cell.
  [[nodiscard]] bool safe() const {
    return agreement && ordering && !honest_slashed;
  }

  /// "prft/n=7/partial-synchrony/seed=3" — for assertion messages.
  [[nodiscard]] std::string label() const;
};

/// Results of a full sweep.
struct MatrixReport {
  std::vector<CellResult> cells;

  [[nodiscard]] std::size_t cell_count() const { return cells.size(); }
  [[nodiscard]] bool all_safe() const;
  [[nodiscard]] std::vector<const CellResult*> unsafe_cells() const;

  /// Human-readable per-cell table (protocol, n, net, seed, heights, safety).
  [[nodiscard]] std::string summary() const;
};

/// Builds the network model for a cell. Synchronous: delays within Δ.
/// Partial synchrony: adversarial until `gst`, then Δ-bounded. Asynchronous:
/// exponential delays (mean Δ) capped at 20Δ — finite but unbounded-looking.
[[nodiscard]] std::unique_ptr<net::NetworkModel> make_net_model(
    NetKind kind, const MatrixSpec& spec);

/// Runs a single cell to its horizon (early exit once every honest replica
/// finalized `spec.target_blocks`).
[[nodiscard]] CellResult run_cell(Protocol proto, std::uint32_t n,
                                  NetKind kind, std::uint64_t seed,
                                  const MatrixSpec& spec);

/// Runs the full cross-product.
[[nodiscard]] MatrixReport run_matrix(const MatrixSpec& spec);

}  // namespace ratcon::harness
