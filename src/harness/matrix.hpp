#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"

namespace ratcon::harness {

/// Seed-matrix scenario harness: a cross-product driver over ScenarioSpec.
/// Drives each protocol through committee sizes × network models × RNG
/// seeds (optionally under crash faults and pre-GST partitions) and
/// records, per cell, the shared safety properties every configuration
/// must uphold (agreement, c-strict ordering, no honest slashing).
/// Equilibrium/safety claims are only credible when they survive varied
/// network and committee conditions; this harness is the regression gate
/// for that — and the per-cell wall-clock accounting keeps sweeps honest
/// as committees grow.

/// The sweep definition. Defaults give the tier-1 seed matrix:
/// 4 committee sizes × 3 network models × 5 seeds.
struct MatrixSpec {
  std::vector<Protocol> protocols{Protocol::kPrft};
  std::vector<std::uint32_t> committee_sizes{4, 7, 16, 31};
  std::vector<NetKind> nets{NetKind::kSynchronous, NetKind::kPartialSynchrony,
                            NetKind::kAsynchronous};
  std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5};

  SimTime delta = msec(10);
  /// GST for partial synchrony (pre-GST the adversary delays messages).
  SimTime gst = msec(200);
  /// Probability a pre-GST message is held until after GST.
  double hold_probability = 0.9;
  /// Blocks each cell tries to finalize before stopping.
  std::uint64_t target_blocks = 3;
  /// Transactions injected at the start of each cell.
  std::uint64_t workload_txs = 12;
  /// Full workload-engine spec per cell (open-loop rate, closed-loop
  /// clients, zipf senders, …). When set it replaces the legacy
  /// fixed-interval `workload_txs` plan entirely.
  std::optional<workload::WorkloadSpec> workload_spec;
  /// Per-block budgets and mempool cap applied to every cell's committee
  /// (defaults match CommitteeSpec: 64 txs, unbounded bytes/pool).
  std::uint32_t max_block_txs = 64;
  std::size_t max_block_bytes = 0;
  std::size_t mempool_cap = 0;
  /// Virtual-time cap per cell; cells stop early once every honest replica
  /// reaches `target_blocks`.
  SimTime horizon = sec(120);

  /// Crash-fault scenario: crash-stop nodes 0..crash_count-1 at `crash_at`.
  /// Crashed nodes are honest-but-silent — safety must survive and their
  /// deposits must never be burned.
  std::uint32_t crash_count = 0;
  SimTime crash_at = msec(5);

  /// Combined crash+partition scenario: additionally split the committee
  /// into two halves from `partition_at` until the partition heals at
  /// `gst` (pre-GST holds while nodes 0..crash_count-1 crash).
  bool partition_pre_gst = false;
  SimTime partition_at = msec(1);

  /// Per-cell host wall-clock budget in ms; 0 = unlimited. Cells over
  /// budget are flagged in MatrixReport::summary() so sweeps stay fast as
  /// committees grow.
  double cell_budget_ms = 0;

  /// Catch-up / state-transfer (src/sync) per cell. On by default — this
  /// is what makes the partial-synchrony and asynchrony columns real
  /// *liveness* tests: every live honest replica must reach the target
  /// after GST. Off reproduces the no-recovery behaviour.
  bool sync_enabled = true;

  /// Flight-recorder level per cell (scenario.hpp trace levels); -1 adopts
  /// the process-wide TraceSink default, so `--trace=N` on a sweep binary
  /// governs the whole matrix.
  int trace_level = -1;
  /// Metrics-timeline level per cell; -1 adopts the process-wide
  /// MetricsRegistry default, so `--metrics=N` governs the whole matrix.
  int metrics_level = -1;
  /// When non-empty: any cell that ends unsafe or trips an invariant
  /// monitor writes its forensics bundle (`<label>.txt` +
  /// `<label>.trace.json`) into this directory while the recorder still
  /// holds the evidence. Requires a trace level >= 1 to have content.
  std::string forensics_dir;

  /// Worker threads for the sweep. Each cell is an independent seeded
  /// simulation, so cells run embarrassingly parallel; results are
  /// deterministic and identical to a serial run regardless of the worker
  /// count. 0 = one per hardware thread (capped by the cell count);
  /// 1 = serial.
  std::uint32_t workers = 0;

  /// The ScenarioSpec a single (protocol, n, net, seed) cell runs — the
  /// whole matrix is this function crossed over the four axes.
  [[nodiscard]] ScenarioSpec to_scenario(Protocol proto, std::uint32_t n,
                                         NetKind kind,
                                         std::uint64_t seed) const;
};

/// Outcome of one (protocol, n, net, seed) cell: the scenario's RunReport,
/// whose budget_ms/over_budget() carry the sweep's per-cell verdict.
using CellResult = RunReport;

/// Results of a full sweep.
struct MatrixReport {
  std::vector<CellResult> cells;

  [[nodiscard]] std::size_t cell_count() const { return cells.size(); }
  [[nodiscard]] bool all_safe() const;
  [[nodiscard]] std::vector<const CellResult*> unsafe_cells() const;

  /// The `k` slowest cells by host wall-clock, slowest first.
  [[nodiscard]] std::vector<const CellResult*> slowest_cells(
      std::size_t k = 3) const;
  /// Cells that exceeded the per-cell wall-clock budget.
  [[nodiscard]] std::vector<const CellResult*> over_budget_cells() const;

  /// Sweep-wide profiler totals: every cell's ProfReport merged. Counts
  /// are exact (integer merges commute); timer sums are float-additive.
  [[nodiscard]] ProfReport aggregate_profile() const;

  /// Sweep-wide flight-recorder totals: every cell's TraceStats merged
  /// (event counts are deterministic; verdicts concatenate, capped).
  [[nodiscard]] TraceStats aggregate_trace() const;

  /// Sweep-wide workload totals: every cell's WorkloadStats merged
  /// (integer histogram counts — deterministic and byte-identical between
  /// serial and parallel sweeps).
  [[nodiscard]] workload::WorkloadStats aggregate_workload() const;

  /// Sweep-wide metrics totals: counters add, round-duration histograms
  /// merge, stall verdicts survive (per-tick series stay per-cell).
  [[nodiscard]] MetricsStats aggregate_metrics() const;

  /// Virtual-time round durations grouped by protocol (entry → entry,
  /// every replica), for the per-protocol p50/p99 in summary() and the
  /// JSON artifacts. Only protocols with at least one completed round
  /// appear.
  [[nodiscard]] std::vector<std::pair<Protocol, workload::LatencyHistogram>>
  round_durations_by_protocol() const;

  /// Cells the liveness watchdog declared stalled.
  [[nodiscard]] std::vector<const CellResult*> stalled_cells() const;

  /// Sum of per-cell host wall-clock in ms, and the sweep's throughput in
  /// cells per second of summed cell wall-clock (the per-PR perf metric —
  /// worker-count independent, unlike end-to-end sweep time).
  [[nodiscard]] double total_wall_ms() const;
  [[nodiscard]] double cells_per_sec() const;

  /// Human-readable per-cell table (protocol, n, net, seed, heights,
  /// traffic, wall-clock, safety), plus a slowest-cells footer flagging
  /// budget overruns.
  [[nodiscard]] std::string summary() const;
};

/// The sweep engine behind MatrixSpec::workers, shared with the empirical
/// deviation explorer (src/rational): runs `fn(0) .. fn(count-1)` on
/// `workers` threads (0 = one per hardware thread, capped by `count`;
/// 1 = serial). Each index must be an independent seeded simulation
/// writing to its own slot, so results are position-stable and identical
/// to a serial run regardless of the worker count.
void parallel_cells(std::size_t count, std::uint32_t workers,
                    const std::function<void(std::size_t)>& fn);

/// Runs a single cell to its horizon (early exit once every honest replica
/// finalized `spec.target_blocks`).
[[nodiscard]] CellResult run_cell(Protocol proto, std::uint32_t n,
                                  NetKind kind, std::uint64_t seed,
                                  const MatrixSpec& spec);

/// Runs the full cross-product.
[[nodiscard]] MatrixReport run_matrix(const MatrixSpec& spec);

}  // namespace ratcon::harness
