#pragma once

#include <vector>

namespace ratcon::harness {

/// Least-squares fit of y = a · x^b on log-log axes. Returns {a, b}; the
/// exponent b is what the Figure 3 bench reports against the paper's
/// asymptotic claims (messages ~ n^2..n^3, bytes ~ n^3..n^4).
struct PowerFit {
  double coefficient = 0.0;  ///< a
  double exponent = 0.0;     ///< b
  double r_squared = 0.0;    ///< goodness of fit in log space
};

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y);

}  // namespace ratcon::harness
