#include "harness/metrics.hpp"

#include <algorithm>
#include <utility>

#include "harness/jsonio.hpp"

namespace ratcon::harness {

std::atomic<int> MetricsRegistry::default_level_{0};

const char* to_string(ReplicaMetric m) {
  switch (m) {
    case ReplicaMetric::kMempoolPending:
      return "mempool_pending";
    case ReplicaMetric::kMempoolEvicted:
      return "mempool_evicted";
    case ReplicaMetric::kMempoolRejected:
      return "mempool_rejected";
    case ReplicaMetric::kFinalizedHeight:
      return "finalized_height";
    case ReplicaMetric::kCurrentRound:
      return "current_round";
    case ReplicaMetric::kWireBytesSent:
      return "wire_bytes_sent";
    case ReplicaMetric::kSyncBacklog:
      return "sync_backlog";
    case ReplicaMetric::kDepositBalance:
      return "deposit_balance";
    case ReplicaMetric::kNumReplicaMetrics:
      break;
  }
  return "unknown_metric";
}

const char* to_string(GlobalMetric m) {
  switch (m) {
    case GlobalMetric::kEventQueueDepth:
      return "event_queue_depth";
    case GlobalMetric::kInflightWireBytes:
      return "inflight_wire_bytes";
    case GlobalMetric::kNumGlobalMetrics:
      break;
  }
  return "unknown_metric";
}

// -- MetricsStats -----------------------------------------------------------

MetricsStats& MetricsStats::merge(const MetricsStats& other) {
  level = std::max(level, other.level);
  nodes = std::max(nodes, other.nodes);
  if (tick == 0) tick = other.tick;
  ticks += other.ticks;
  recorded += other.recorded;
  dropped += other.dropped;
  round_duration.merge(other.round_duration);
  if (other.stalled) {
    stalled = true;
    if (stalled_at == 0 || other.stalled_at < stalled_at) {
      stalled_at = other.stalled_at;
    }
    // Keep the first verdict (one stall is usually every stall's story);
    // later ones would repeat the same named replicas per cell anyway.
    if (stall_verdict.empty()) {
      stall_verdict = other.stall_verdict;
      stalled_replicas = other.stalled_replicas;
    }
  }
  // Per-tick series are per-cell evidence, not mergeable counters.
  replica.clear();
  global.clear();
  return *this;
}

MetricSeries summed_replica_series(const MetricsStats& stats,
                                   ReplicaMetric m) {
  MetricSeries out;
  if (stats.nodes == 0 || stats.replica.empty()) return out;
  const MetricSeries& first = stats.series(0, m);
  out.samples = first.samples;
  out.total = first.total;
  for (NodeId node = 1; node < stats.nodes; ++node) {
    const MetricSeries& s = stats.series(node, m);
    const std::size_t count = std::min(out.samples.size(), s.samples.size());
    out.samples.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.samples[i].value += s.samples[i].value;
    }
  }
  return out;
}

// -- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Get() {
  thread_local MetricsRegistry instance;
  return instance;
}

void MetricsRegistry::Reset(int level, std::uint32_t nodes,
                            std::size_t capacity) {
  level_ = level;
  nodes_ = level > 0 ? nodes : 0;
  tick_ = 0;
  ticks_ = 0;
  inflight_ = 0;
  round_duration_ = {};
  stalled_ = false;
  stalled_at_ = 0;
  stalled_replicas_.clear();
  stall_verdict_.clear();
  if (level <= 0) {
    // Level 0 allocates nothing: emission points see enabled() == false
    // and the registry holds no rings or per-node state at all.
    rings_.clear();
    global_rings_.clear();
    tracks_.clear();
    round_entered_.clear();
    return;
  }
  rings_.assign(static_cast<std::size_t>(nodes) * kNumReplicaMetrics, {});
  for (MetricRing& ring : rings_) ring.reset(capacity);
  global_rings_.assign(kNumGlobalMetrics, {});
  for (MetricRing& ring : global_rings_) ring.reset(capacity);
  tracks_.assign(nodes, {});
  round_entered_.assign(nodes, kSimTimeNever);
}

void MetricsRegistry::sample(NodeId node, ReplicaMetric m,
                             std::int64_t value) {
  if (level_ <= 0 || node >= nodes_) return;
  rings_[node * kNumReplicaMetrics + static_cast<std::size_t>(m)].push(
      {now(), value});
}

void MetricsRegistry::sample(GlobalMetric m, std::int64_t value) {
  if (level_ <= 0) return;
  global_rings_[static_cast<std::size_t>(m)].push({now(), value});
}

void MetricsRegistry::round_enter(NodeId node, Round round) {
  if (level_ <= 0 || node >= nodes_) return;
  const SimTime at = now();
  MetricTransition& track = tracks_[node];
  // Entry → next entry is the duration of the round just left. Re-entering
  // the same round (sync reconciliation) restarts the clock without a
  // sample; jumping backwards (view change bookkeeping) likewise.
  if (round_entered_[node] != kSimTimeNever && round > track.round) {
    round_duration_.record(at - round_entered_[node]);
  }
  round_entered_[node] = at;
  track.round = round;
  track.round_at = at;
}

void MetricsRegistry::note_height(NodeId node, std::uint64_t height) {
  if (level_ <= 0 || node >= nodes_) return;
  MetricTransition& track = tracks_[node];
  if (height != track.height) {
    track.height = height;
    track.height_at = now();
  }
}

void MetricsRegistry::record_stall(SimTime at, std::vector<NodeId> replicas,
                                   std::string verdict) {
  if (stalled_) return;
  stalled_ = true;
  stalled_at_ = at;
  stalled_replicas_ = std::move(replicas);
  stall_verdict_ = std::move(verdict);
}

std::uint64_t MetricsRegistry::recorded() const {
  std::uint64_t total = 0;
  for (const MetricRing& ring : rings_) total += ring.total();
  for (const MetricRing& ring : global_rings_) total += ring.total();
  return total;
}

std::uint64_t MetricsRegistry::dropped() const {
  std::uint64_t total = 0;
  for (const MetricRing& ring : rings_) total += ring.dropped();
  for (const MetricRing& ring : global_rings_) total += ring.dropped();
  return total;
}

namespace {

MetricSeries snapshot_ring(const MetricRing& ring) {
  MetricSeries series;
  series.total = ring.total();
  series.samples.resize(ring.size());
  for (std::size_t i = 0; i < series.samples.size(); ++i) {
    series.samples[i] = ring.at(i);
  }
  return series;
}

}  // namespace

MetricsStats MetricsRegistry::snapshot() const {
  MetricsStats stats;
  stats.level = level_;
  stats.nodes = nodes_;
  stats.tick = tick_;
  stats.ticks = ticks_;
  stats.recorded = recorded();
  stats.dropped = dropped();
  stats.replica.reserve(rings_.size());
  for (const MetricRing& ring : rings_) {
    stats.replica.push_back(snapshot_ring(ring));
  }
  stats.global.reserve(global_rings_.size());
  for (const MetricRing& ring : global_rings_) {
    stats.global.push_back(snapshot_ring(ring));
  }
  stats.round_duration = round_duration_;
  stats.stalled = stalled_;
  stats.stalled_at = stalled_at_;
  stats.stalled_replicas = stalled_replicas_;
  stats.stall_verdict = stall_verdict_;
  return stats;
}

// -- JSON -------------------------------------------------------------------

namespace {

void write_series(JsonWriter& json, const MetricSeries& series) {
  json.begin_array();
  for (const MetricSample& s : series.samples) {
    json.begin_array();
    json.value(static_cast<std::int64_t>(s.at));
    json.value(s.value);
    json.end_array();
  }
  json.end_array();
}

}  // namespace

void write_metrics_json(JsonWriter& json, const MetricsStats& stats) {
  json.begin_object();
  json.key("level").value(static_cast<std::int64_t>(stats.level));
  json.key("tick_us").value(static_cast<std::int64_t>(stats.tick));
  json.key("ticks").value(stats.ticks);
  json.key("recorded").value(stats.recorded);
  json.key("dropped").value(stats.dropped);
  json.key("round_p50_us")
      .value(static_cast<std::int64_t>(stats.round_duration.p50()));
  json.key("round_p99_us")
      .value(static_cast<std::int64_t>(stats.round_duration.p99()));
  json.key("rounds").value(stats.round_duration.total());
  json.key("stalled").value(stats.stalled);
  if (stats.stalled) {
    json.key("stalled_at_us")
        .value(static_cast<std::int64_t>(stats.stalled_at));
    json.key("stalled_replicas").begin_array();
    for (NodeId id : stats.stalled_replicas) {
      json.value(static_cast<std::uint64_t>(id));
    }
    json.end_array();
    json.key("stall_verdict").value(stats.stall_verdict);
  }
  // Compact timelines: replica metrics summed across nodes (tick-aligned
  // sampling makes the sum well-defined), globals as recorded.
  json.key("series").begin_object();
  if (!stats.replica.empty()) {
    for (std::size_t m = 0; m < kNumReplicaMetrics; ++m) {
      const auto metric = static_cast<ReplicaMetric>(m);
      json.key(to_string(metric));
      write_series(json, summed_replica_series(stats, metric));
    }
  }
  for (std::size_t m = 0; m < stats.global.size(); ++m) {
    json.key(to_string(static_cast<GlobalMetric>(m)));
    write_series(json, stats.global[m]);
  }
  json.end_object();
  json.end_object();
}

}  // namespace ratcon::harness
