#include "common/serialize.hpp"

#include <cstring>
#include <limits>

namespace ratcon {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

namespace {

// The length prefix is a u32; a larger payload would encode a truncated
// prefix that decodes as garbage, so it is a hard encode-time error.
std::uint32_t checked_len(std::size_t size) {
  if (size > std::numeric_limits<std::uint32_t>::max()) {
    throw CodecError("Writer: payload exceeds u32 length prefix");
  }
  return static_cast<std::uint32_t>(size);
}

}  // namespace

void Writer::bytes(ByteSpan data) {
  u32(checked_len(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  u32(checked_len(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw CodecError("Reader: truncated input");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

ByteSpan Reader::view(std::size_t n) {
  need(n);
  const ByteSpan out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

ByteSpan Reader::bytes_view(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) throw CodecError("Reader: length field exceeds limit");
  return view(len);
}

std::string_view Reader::str_view(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) throw CodecError("Reader: string length exceeds limit");
  const ByteSpan v = view(len);
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

Bytes Reader::raw(std::size_t n) {
  const ByteSpan v = view(n);
  return Bytes(v.begin(), v.end());
}

void Reader::raw_into(std::uint8_t* out, std::size_t n) {
  const ByteSpan v = view(n);
  std::memcpy(out, v.data(), n);
}

Bytes Reader::bytes(std::size_t max_len) {
  const ByteSpan v = bytes_view(max_len);
  return Bytes(v.begin(), v.end());
}

std::string Reader::str(std::size_t max_len) {
  const std::string_view v = str_view(max_len);
  return std::string(v);
}

std::uint32_t Reader::count(std::uint32_t max_count) {
  const std::uint32_t c = u32();
  if (c > max_count) throw CodecError("Reader: element count exceeds limit");
  return c;
}

void Reader::expect_done() const {
  if (!done()) throw CodecError("Reader: trailing bytes after message");
}

}  // namespace ratcon
