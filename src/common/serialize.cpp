#include "common/serialize.hpp"

#include <cstring>

namespace ratcon {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::bytes(ByteSpan data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Reader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    throw CodecError("Reader: truncated input");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void Reader::raw_into(std::uint8_t* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

Bytes Reader::bytes(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) throw CodecError("Reader: length field exceeds limit");
  return raw(len);
}

std::string Reader::str(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) throw CodecError("Reader: string length exceeds limit");
  need(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::uint32_t Reader::count(std::uint32_t max_count) {
  const std::uint32_t c = u32();
  if (c > max_count) throw CodecError("Reader: element count exceeds limit");
  return c;
}

void Reader::expect_done() const {
  if (!done()) throw CodecError("Reader: trailing bytes after message");
}

}  // namespace ratcon
