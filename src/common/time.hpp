#pragma once

#include <cstdint>

namespace ratcon {

/// Virtual simulation time in microseconds. The simulator is fully
/// deterministic, so the unit is nominal; all protocol timeouts are
/// expressed through the helpers below.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime usec(std::int64_t v) { return v; }
constexpr SimTime msec(std::int64_t v) { return v * 1000; }
constexpr SimTime sec(std::int64_t v) { return v * 1000 * 1000; }

}  // namespace ratcon
