#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ratcon {

/// Thread-local workspace pool of reusable vectors (model: fgnn's
/// workspace_pool.cc). Hot paths that need a short-lived buffer — the
/// envelope signing payload built once per sign/verify, the Merkle leaf
/// scratch in catch-up — lease one instead of allocating: after warm-up the
/// buffer comes back with its old capacity, so the steady state is
/// allocation-free.
///
/// Leases are strictly scoped: the buffer returns to the pool when the
/// Lease is destroyed, so a leased buffer must never escape its scope
/// (move the contents out if they need to live on). The pool is
/// thread_local — no locks, and parallel matrix workers stay independent.
template <class T>
class WorkspacePool {
 public:
  class Lease {
   public:
    explicit Lease(WorkspacePool& pool)
        : pool_(pool), buf_(pool.acquire()), reused_(buf_.capacity() != 0) {}
    ~Lease() { pool_.release(std::move(buf_)); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] std::vector<T>& get() { return buf_; }
    std::vector<T>& operator*() { return buf_; }
    std::vector<T>* operator->() { return &buf_; }

    /// True when the buffer was recycled (capacity survived a prior lease).
    [[nodiscard]] bool reused() const { return reused_; }

   private:
    WorkspacePool& pool_;
    std::vector<T> buf_;
    bool reused_;
  };

  [[nodiscard]] Lease lease() { return Lease(*this); }

  /// Drops every cached buffer. Called at simulation start so the first
  /// lease of a run is a deterministic miss — a pool left warm by a prior
  /// run on the same thread would otherwise make the scratch counters
  /// differ between serial and parallel sweeps.
  void purge() { free_.clear(); }

  /// The calling thread's pool for element type T.
  [[nodiscard]] static WorkspacePool& local() {
    thread_local WorkspacePool pool;
    return pool;
  }

 private:
  // Bounds idle memory: buffers beyond this are freed on release.
  static constexpr std::size_t kMaxFree = 8;

  std::vector<T> acquire() {
    if (free_.empty()) return {};
    std::vector<T> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  void release(std::vector<T> buf) {
    if (free_.size() >= kMaxFree) return;  // let it free
    buf.clear();                           // keep capacity
    free_.push_back(std::move(buf));
  }

  std::vector<std::vector<T>> free_;
};

/// Byte workspaces — the common case (wire payload scratch).
using BytePool = WorkspacePool<std::uint8_t>;

}  // namespace ratcon
