#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ratcon {

/// Deterministic xoshiro256** PRNG seeded through splitmix64. All
/// randomness in the simulator (delays, adversary choices, workloads)
/// flows through one of these so a single seed reproduces a whole run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child generator (for per-node streams).
  /// Advances this generator's state, so the fork *order* matters.
  Rng fork();

  /// Derives an independent child generator keyed by `label` without
  /// advancing this generator's state: two forks with the same label from
  /// the same state are identical, different labels are independent, and
  /// thread scheduling cannot reorder anything. This is what makes
  /// mixed-strategy sampling (src/search) byte-identical between serial
  /// and parallel sweeps — a player's stream depends only on
  /// (seed, label), never on when it was forked.
  [[nodiscard]] Rng fork(std::string_view label) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace ratcon
