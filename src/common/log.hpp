#pragma once

#include <sstream>
#include <string>

namespace ratcon::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; defaults to kWarn so tests stay quiet. Examples and
/// benches raise it to kInfo for narrative output.
///
/// Regression note: the backing store is a std::atomic<Level> with relaxed
/// ordering (log.cpp). Parallel matrix sweeps call level() from every
/// worker thread while a main-thread set_level() may still be in flight —
/// with a plain Level that read/write pair is a data race (UB, and a real
/// TSan report), even though any torn value would "only" mis-filter a log
/// line. Relaxed is sufficient: the level is a standalone flag, no other
/// memory is published through it.
void set_level(Level level);
Level level();

/// Emits a line to stderr if `level` is enabled.
void write(Level level, const std::string& msg);

namespace detail {

inline void append(std::ostringstream&) {}

template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append(os, rest...);
}

}  // namespace detail

/// Variadic stream-style logging: log::info("node ", id, " finalized ", h).
template <typename... Args>
void trace(const Args&... args) {
  if (level() > Level::kTrace) return;
  std::ostringstream os;
  detail::append(os, args...);
  write(Level::kTrace, os.str());
}

template <typename... Args>
void debug(const Args&... args) {
  if (level() > Level::kDebug) return;
  std::ostringstream os;
  detail::append(os, args...);
  write(Level::kDebug, os.str());
}

template <typename... Args>
void info(const Args&... args) {
  if (level() > Level::kInfo) return;
  std::ostringstream os;
  detail::append(os, args...);
  write(Level::kInfo, os.str());
}

template <typename... Args>
void warn(const Args&... args) {
  if (level() > Level::kWarn) return;
  std::ostringstream os;
  detail::append(os, args...);
  write(Level::kWarn, os.str());
}

template <typename... Args>
void error(const Args&... args) {
  if (level() > Level::kError) return;
  std::ostringstream os;
  detail::append(os, args...);
  write(Level::kError, os.str());
}

}  // namespace ratcon::log
