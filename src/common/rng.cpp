#include "common/rng.hpp"

#include <cmath>

namespace ratcon {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return lo + v % span;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(uniform(0, n - 1));
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa02bdbf7bb3c0a7ull);
}

Rng Rng::fork(std::string_view label) const {
  // FNV-1a over the label, mixed with the full current state through
  // splitmix64 so substreams of substreams stay independent. The parent's
  // state is read, never written.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  std::uint64_t mix = h;
  for (const std::uint64_t s : s_) {
    std::uint64_t x = s ^ mix;
    mix = splitmix64(x);
  }
  return Rng(mix ^ 0x6a09e667f3bcc909ull);
}

}  // namespace ratcon
