#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace ratcon {

/// Thrown by Reader on malformed / truncated input. All wire decoding in the
/// library is bounds-checked; a Byzantine sender can never make a correct
/// node read out of bounds.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only binary encoder. Fixed-width integers are little-endian;
/// variable-size payloads are length-prefixed with u32.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix (for fixed-size fields like hashes).
  // GCC 12's -Wstringop-overflow misdiagnoses the fully inlined
  // vector-grow path here against the pre-grow buffer size (GCC
  // PR105329-family false positive); suppress for this method only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
  void raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  /// Length-prefixed bytes. Throws CodecError when `data.size()` exceeds
  /// UINT32_MAX: the u32 prefix cannot represent it, and truncating the
  /// size would emit a prefix that decodes as garbage.
  void bytes(ByteSpan data);

  /// Length-prefixed UTF-8 string. Same overflow contract as bytes().
  void str(std::string_view s);

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked binary decoder matching Writer's format. Every read
/// throws CodecError when the buffer is exhausted.
///
/// Two read families share one validation path:
///  * Owning reads (`raw`, `bytes`, `str`) copy into fresh storage.
///  * Zero-copy reads (`view`, `bytes_view`, `str_view`) return spans into
///    the underlying buffer — no allocation; the view is valid only while
///    the buffer the Reader was constructed over stays alive.
/// Every one of them funnels through `view()`, which bounds-checks the
/// requested length *before* any allocation happens — a hostile length
/// prefix is rejected while it is still just an integer.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  /// Zero-copy read of exactly `n` raw bytes: bounds-checks, advances, and
  /// returns a span into the underlying buffer.
  ByteSpan view(std::size_t n);

  /// Zero-copy length-prefixed bytes: validates the u32 prefix against
  /// `max_len` and the remaining buffer, then returns the body as a span.
  ByteSpan bytes_view(std::size_t max_len = kDefaultMaxLen);

  /// Zero-copy length-prefixed string.
  std::string_view str_view(std::size_t max_len = kDefaultMaxLen);

  /// Reads exactly `n` raw bytes (fixed-size fields), copying.
  Bytes raw(std::size_t n);

  /// Copies `n` raw bytes into `out` (for std::array destinations).
  void raw_into(std::uint8_t* out, std::size_t n);

  /// Length-prefixed bytes, copying. `max_len` guards against hostile
  /// length fields; validation happens before the copy is allocated.
  Bytes bytes(std::size_t max_len = kDefaultMaxLen);

  /// Length-prefixed string, copying. Same validation order as bytes().
  std::string str(std::size_t max_len = kDefaultMaxLen);

  /// Reads a u32 element count, bounded by `max_count`.
  std::uint32_t count(std::uint32_t max_count);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  /// Asserts the whole buffer was consumed; protocols call this after
  /// decoding a message so trailing garbage is rejected.
  void expect_done() const;

  static constexpr std::size_t kDefaultMaxLen = 64u << 20;  // 64 MiB

 private:
  void need(std::size_t n) const;

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace ratcon
