#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace ratcon::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& msg) {
  if (lvl < level()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace ratcon::log
