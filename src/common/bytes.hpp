#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ratcon {

/// Raw byte buffer used throughout the library for wire messages, hashes
/// and signatures.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes. All crypto and codec interfaces
/// take spans so callers never copy just to hash or parse.
using ByteSpan = std::span<const std::uint8_t>;

/// Lowercase hex encoding of `data` (two chars per byte, no prefix).
std::string to_hex(ByteSpan data);

/// Decodes lowercase/uppercase hex. Throws std::invalid_argument on odd
/// length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copies the UTF-8 contents of `s` into a fresh byte buffer.
Bytes to_bytes(std::string_view s);

/// Interprets `data` as UTF-8 text (for logging / test assertions).
std::string to_string(ByteSpan data);

/// Constant-time-ish equality for fixed-size secrets; regular equality is
/// fine elsewhere in the simulator but tests use this for signatures.
bool equal_bytes(ByteSpan a, ByteSpan b);

}  // namespace ratcon
