#pragma once

#include <cstdint>

namespace ratcon {

/// Zero-based player/replica index. The paper indexes players 1..n and picks
/// the round-r leader as 1 + (r mod n); we use 0-based ids and leader
/// `r % n`, which is the same rotation.
using NodeId = std::uint32_t;

/// Consensus round / block height. One block is agreed per round.
using Round = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Sentinel round for "never" — open-ended attack/timing windows
/// (adversary fork plans, search strategy knobs).
inline constexpr Round kRoundNever = static_cast<Round>(-1);

}  // namespace ratcon
