// Adversarial decode suite: every wire-facing codec against hostile input.
//
// The threat model is a Byzantine sender that controls every byte a correct
// node reads: truncation at arbitrary boundaries, trailing garbage, and
// length/count prefixes chosen to provoke over-allocation. The contracts
// asserted here are the ones the zero-copy hot path leans on:
//
//  * both decode paths (owning Envelope::decode, zero-copy WireView::parse)
//    throw CodecError on every malformed buffer — and agree byte-for-byte
//    on every well-formed one;
//  * hostile lengths are rejected while they are still just integers
//    (before any allocation and before any signature work);
//  * a failed encode/decode leaves no partial state behind.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "consensus/envelope.hpp"
#include "consensus/fraud.hpp"
#include "core/messages.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sig.hpp"

namespace ratcon {
namespace {

using consensus::Certificate;
using consensus::Envelope;
using consensus::PhaseSig;
using consensus::PhaseTag;
using consensus::ProtoId;
using consensus::WireView;

// Fixed offsets of the envelope layout (documented in envelope.hpp):
// [proto u8][type u8][round u64][from u32][body-len u32][body][sig 32B].
constexpr std::size_t kBodyLenOffset = 14;

Bytes make_wire(std::size_t body_size) {
  crypto::KeyRegistry registry;
  const crypto::KeyPair kp = registry.generate(1, 7);
  Bytes body(body_size, 0x5a);
  return consensus::make_envelope(ProtoId::kPrft, 3, 42, 1, std::move(body),
                                  kp.sk)
      .encode();
}

void patch_u32(Bytes& wire, std::size_t offset, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    wire[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

// ---------------------------------------------------------------------------
// Envelope wire: both decode paths on hostile buffers

TEST(EnvelopeWire, TruncationAtEveryPrefixThrowsOnBothPaths) {
  const Bytes wire = make_wire(96);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const ByteSpan prefix(wire.data(), len);
    EXPECT_THROW((void)Envelope::decode(prefix), CodecError) << len;
    EXPECT_THROW((void)WireView::parse(prefix), CodecError) << len;
  }
}

TEST(EnvelopeWire, TrailingGarbageThrowsOnBothPaths) {
  for (std::size_t extra = 1; extra <= 3; ++extra) {
    Bytes wire = make_wire(32);
    wire.insert(wire.end(), extra, 0x00);
    const ByteSpan span(wire.data(), wire.size());
    EXPECT_THROW((void)Envelope::decode(span), CodecError) << extra;
    EXPECT_THROW((void)WireView::parse(span), CodecError) << extra;
  }
}

TEST(EnvelopeWire, HostileBodyLengthThrowsOnBothPaths) {
  const Bytes good = make_wire(64);
  // Any body-len that disagrees with the buffer is structurally invalid —
  // including 0xFFFFFFFF, which must die as an integer comparison, never
  // reach an allocation.
  for (const std::uint32_t hostile :
       {std::uint32_t{0}, std::uint32_t{63}, std::uint32_t{65},
        std::numeric_limits<std::uint32_t>::max()}) {
    Bytes wire = good;
    patch_u32(wire, kBodyLenOffset, hostile);
    const ByteSpan span(wire.data(), wire.size());
    EXPECT_THROW((void)Envelope::decode(span), CodecError) << hostile;
    EXPECT_THROW((void)WireView::parse(span), CodecError) << hostile;
  }
}

TEST(EnvelopeWire, BodyCapRejectsOversizedBeforeDecode) {
  const Bytes wire = make_wire(64);
  const ByteSpan span(wire.data(), wire.size());
  // One byte under the actual body size: rejected on both paths.
  EXPECT_THROW((void)Envelope::decode(span, 63), CodecError);
  EXPECT_THROW((void)WireView::parse(span, 63), CodecError);
  // Exactly the body size: accepted.
  EXPECT_EQ(Envelope::decode(span, 64).body().size(), 64u);
  EXPECT_EQ(WireView::parse(span, 64).body().size(), 64u);
}

TEST(EnvelopeWire, ViewMatchesOwningDecode) {
  for (const std::size_t body_size : {std::size_t{0}, std::size_t{1},
                                      std::size_t{96}, std::size_t{4096}}) {
    const Bytes wire = make_wire(body_size);
    const ByteSpan span(wire.data(), wire.size());
    const Envelope own = Envelope::decode(span);
    const WireView view = WireView::parse(span);
    EXPECT_EQ(own.proto, view.proto);
    EXPECT_EQ(own.type, view.type);
    EXPECT_EQ(own.round, view.round);
    EXPECT_EQ(own.from, view.from);
    EXPECT_EQ(own.sig, view.signature());
    ASSERT_EQ(own.body().size(), view.body().size());
    if (body_size > 0) {
      EXPECT_EQ(std::memcmp(own.body().data(), view.body().data(), body_size),
                0);
    }
    EXPECT_EQ(own.body_digest(), view.body_digest());
    // Materializing the view re-encodes to the identical wire.
    EXPECT_EQ(view.to_envelope().encode(), wire);
  }
}

TEST(EnvelopeWire, SigningPayloadMatchesWriterReference) {
  // The pooled-scratch signing payload is appended by hand; it must stay
  // byte-identical to the historical Writer-built layout, or every
  // signature in the system silently changes.
  const Bytes wire = make_wire(48);
  const ByteSpan span(wire.data(), wire.size());
  const Envelope env = Envelope::decode(span);

  Writer w;
  w.str("ratcon-envelope");
  w.u8(static_cast<std::uint8_t>(env.proto));
  w.u8(env.type);
  w.u64(env.round);
  w.u32(env.from);
  w.raw(ByteSpan(env.body_digest().data(), env.body_digest().size()));
  const Bytes reference = w.take();

  EXPECT_EQ(env.signing_payload(), reference);
  Bytes via_view;
  WireView::parse(span).signing_payload_into(via_view);
  EXPECT_EQ(via_view, reference);
}

// ---------------------------------------------------------------------------
// Writer: the u32 length-prefix ceiling

TEST(WriterOverflow, BytesBeyondU32PrefixThrowWithoutPartialWrite) {
  if constexpr (sizeof(std::size_t) <= 4) GTEST_SKIP();
  // A fake-extent span: the size field lies, but the bytes are never read —
  // Writer must reject on the integer alone, before touching the data.
  const std::uint8_t probe = 0;
  const std::size_t over =
      static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max()) + 1;

  Writer w;
  w.u8(0xaa);
  EXPECT_THROW(w.bytes(ByteSpan(&probe, over)), CodecError);
  EXPECT_EQ(w.size(), 1u) << "failed encode must not leave a partial prefix";
  EXPECT_THROW(
      w.str(std::string_view(reinterpret_cast<const char*>(&probe), over)),
      CodecError);
  EXPECT_EQ(w.size(), 1u);

  // The exact ceiling is representable and accepted (probed with a small
  // real buffer: only the *reported* size must be <= UINT32_MAX).
  Writer ok;
  ok.bytes(ByteSpan(&probe, 1));
  EXPECT_EQ(ok.size(), 5u);  // u32 prefix + 1 byte
}

// ---------------------------------------------------------------------------
// Reader: one validation path for every length-prefixed read

TEST(ReaderValidation, HostileLengthPrefixRejectedOnEveryReadFamily) {
  // u32 prefix claims 4 GiB; 4 bytes follow. Every read family — owning
  // and zero-copy — must reject on the integer comparison.
  Writer w;
  w.u32(std::numeric_limits<std::uint32_t>::max());
  w.u32(0xdeadbeef);
  const Bytes buf = w.take();
  const ByteSpan span(buf.data(), buf.size());

  EXPECT_THROW((void)Reader(span).bytes(), CodecError);
  EXPECT_THROW((void)Reader(span).str(), CodecError);
  EXPECT_THROW((void)Reader(span).bytes_view(), CodecError);
  EXPECT_THROW((void)Reader(span).str_view(), CodecError);
}

TEST(ReaderValidation, MaxLenBoundsAllReadFamiliesIdentically) {
  Writer w;
  w.bytes(Bytes(10, 0x11));
  const Bytes buf = w.take();
  const ByteSpan span(buf.data(), buf.size());

  // One byte under the payload: all four spellings reject...
  EXPECT_THROW((void)Reader(span).bytes(9), CodecError);
  EXPECT_THROW((void)Reader(span).str(9), CodecError);
  EXPECT_THROW((void)Reader(span).bytes_view(9), CodecError);
  EXPECT_THROW((void)Reader(span).str_view(9), CodecError);
  // ...and at the payload size, all four accept.
  EXPECT_EQ(Reader(span).bytes(10).size(), 10u);
  EXPECT_EQ(Reader(span).str(10).size(), 10u);
  EXPECT_EQ(Reader(span).bytes_view(10).size(), 10u);
  EXPECT_EQ(Reader(span).str_view(10).size(), 10u);
}

TEST(ReaderValidation, ViewAndCountRejectBeyondBuffer) {
  Writer w;
  w.u32(100);  // doubles as a hostile count prefix below
  const Bytes buf = w.take();
  const ByteSpan span(buf.data(), buf.size());

  Reader past(span);
  EXPECT_THROW((void)past.view(5), CodecError);
  Reader counted(span);
  EXPECT_THROW((void)counted.count(99), CodecError);
  Reader counted_ok(span);
  EXPECT_EQ(counted_ok.count(100), 100u);

  Reader done(span);
  (void)done.u32();
  EXPECT_NO_THROW(done.expect_done());
  Reader not_done(span);
  (void)not_done.u16();
  EXPECT_THROW(not_done.expect_done(), CodecError);
}

// ---------------------------------------------------------------------------
// Body codecs: truncation sweeps + hostile counts

PhaseSig test_sig(NodeId signer) {
  PhaseSig ps;
  ps.signer = signer;
  return ps;
}

Certificate test_cert() {
  Certificate cert;
  cert.phase = PhaseTag::kVote;
  cert.round = 9;
  cert.value = crypto::sha256("value");
  cert.sigs = {test_sig(0), test_sig(1), test_sig(2)};
  return cert;
}

// Asserts the full buffer decodes cleanly (consuming everything) and every
// strict prefix throws CodecError. All body fields are mandatory, so no
// truncation point can yield a shorter-but-valid message.
template <class Body>
void sweep_truncations(const Bytes& encoded) {
  Reader full(ByteSpan(encoded.data(), encoded.size()));
  (void)Body::decode(full);
  ASSERT_TRUE(full.done()) << "codec must consume its own encoding";
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Reader r(ByteSpan(encoded.data(), len));
    EXPECT_THROW((void)Body::decode(r), CodecError) << len;
  }
}

TEST(BodyCodecs, RevealTruncationAtEveryBoundaryThrows) {
  prft::RevealBody body;
  body.h_tc = crypto::sha256("tc");
  body.h_l = crypto::sha256("l");
  for (NodeId id = 0; id < 3; ++id) {
    prft::CommitEvidence ev;
    ev.commit_sig = test_sig(id);
    ev.vote_cert = test_cert();
    body.commits.push_back(std::move(ev));
  }
  body.reveal_sig = test_sig(7);
  Writer w;
  body.encode(w);
  sweep_truncations<prft::RevealBody>(w.take());
}

TEST(BodyCodecs, RevealHostileCommitCountThrows) {
  prft::RevealBody body;
  body.h_tc = crypto::sha256("tc");
  body.h_l = crypto::sha256("l");
  body.reveal_sig = test_sig(7);
  Writer w;
  body.encode(w);
  Bytes encoded = w.take();
  // The W_i count sits right after the two hashes; the decoder caps it at
  // 2^14 before reserving a single element.
  patch_u32(encoded, 64, std::numeric_limits<std::uint32_t>::max());
  Reader r(ByteSpan(encoded.data(), encoded.size()));
  EXPECT_THROW((void)prft::RevealBody::decode(r), CodecError);
}

TEST(BodyCodecs, SyncTruncationAtEveryBoundaryThrows) {
  prft::SyncBody body;
  body.final_round = 5;
  for (int i = 0; i < 2; ++i) {
    ledger::Block block;
    block.parent = crypto::sha256("parent");
    block.round = 4 + static_cast<Round>(i);
    block.proposer = 0;
    ledger::Transaction tx;
    tx.id = 1;
    tx.payload = Bytes(16, 0x22);
    block.txs.push_back(std::move(tx));
    body.blocks.push_back(std::move(block));
  }
  body.final_cert = test_cert();
  Writer w;
  body.encode(w);
  sweep_truncations<prft::SyncBody>(w.take());
}

TEST(BodyCodecs, SyncHostileBlockCountThrows) {
  prft::SyncBody body;
  body.final_round = 5;
  body.final_cert = test_cert();
  Writer w;
  body.encode(w);
  Bytes encoded = w.take();
  // Block count follows the u64 round; capped at 2^16.
  patch_u32(encoded, 8, std::numeric_limits<std::uint32_t>::max());
  Reader r(ByteSpan(encoded.data(), encoded.size()));
  EXPECT_THROW((void)prft::SyncBody::decode(r), CodecError);
}

TEST(BodyCodecs, FraudSetTruncationAndHostileCountThrow) {
  consensus::FraudSet set;
  for (NodeId id = 0; id < 2; ++id) {
    consensus::ConflictPair cp;
    cp.phase = PhaseTag::kCommit;
    cp.round = 3;
    cp.value_a = crypto::sha256("a");
    cp.value_b = crypto::sha256("b");
    cp.sig_a = test_sig(id);
    cp.sig_b = test_sig(id);
    set.push_back(std::move(cp));
  }
  Writer w;
  consensus::encode_fraud_set(w, set);
  const Bytes encoded = w.take();

  Reader full(ByteSpan(encoded.data(), encoded.size()));
  EXPECT_EQ(consensus::decode_fraud_set(full).size(), 2u);
  EXPECT_TRUE(full.done());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Reader r(ByteSpan(encoded.data(), len));
    EXPECT_THROW((void)consensus::decode_fraud_set(r), CodecError) << len;
  }

  Bytes hostile = encoded;
  patch_u32(hostile, 0, std::numeric_limits<std::uint32_t>::max());
  Reader r(ByteSpan(hostile.data(), hostile.size()));
  EXPECT_THROW((void)consensus::decode_fraud_set(r), CodecError);
}

}  // namespace
}  // namespace ratcon
