// Unit tests for the game-theory substrate: pure Nash enumeration,
// dominance, Pareto/focal analysis (§4.3 incl. the Table 3 example game),
// and the paper's utility structure (Table 2, Eq. 1).

#include <gtest/gtest.h>

#include "game/normal_form.hpp"
#include "game/utility.hpp"

namespace ratcon::game {
namespace {

NormalFormGame prisoners_dilemma() {
  // Strategies: 0 = cooperate, 1 = defect.
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {-1, -1});
  g.set_payoffs({0, 1}, {-3, 0});
  g.set_payoffs({1, 0}, {0, -3});
  g.set_payoffs({1, 1}, {-2, -2});
  return g;
}

TEST(NormalForm, PrisonersDilemmaHasDefectEquilibrium) {
  const NormalFormGame g = prisoners_dilemma();
  const auto eqs = g.pure_nash();
  ASSERT_EQ(eqs.size(), 1u);
  EXPECT_EQ(eqs[0], (Profile{1, 1}));
  EXPECT_TRUE(g.is_dominant(0, 1));
  EXPECT_TRUE(g.is_dominant(1, 1));
  EXPECT_FALSE(g.is_dominant(0, 0));
}

TEST(NormalForm, DefectEquilibriumIsParetoDominated) {
  const NormalFormGame g = prisoners_dilemma();
  EXPECT_TRUE(g.pareto_dominates({0, 0}, {1, 1}));
  EXPECT_FALSE(g.pareto_dominates({1, 1}, {0, 0}));
}

TEST(NormalForm, MatchingPenniesHasNoPureEquilibrium) {
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {1, -1});
  g.set_payoffs({0, 1}, {-1, 1});
  g.set_payoffs({1, 0}, {-1, 1});
  g.set_payoffs({1, 1}, {1, -1});
  EXPECT_TRUE(g.pure_nash().empty());
}

TEST(NormalForm, CoordinationGameHasTwoEquilibria) {
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {2, 2});
  g.set_payoffs({1, 1}, {1, 1});
  g.set_payoffs({0, 1}, {0, 0});
  g.set_payoffs({1, 0}, {0, 0});
  const auto eqs = g.pure_nash();
  ASSERT_EQ(eqs.size(), 2u);
  // (0,0) Pareto-dominates (1,1): it is the focal equilibrium.
  const auto focal = g.pareto_frontier(eqs);
  ASSERT_EQ(focal.size(), 1u);
  EXPECT_EQ(focal[0], (Profile{0, 0}));
}

/// The paper's Table 3 example game. Payoff order (P1, P2, P3); P1 picks
/// {A, B}, P2 {a, b}, P3 {α, β}.
NormalFormGame table3_game() {
  NormalFormGame g({2, 2, 2});
  g.set_strategy_name(0, 0, "A");
  g.set_strategy_name(0, 1, "B");
  g.set_strategy_name(1, 0, "a");
  g.set_strategy_name(1, 1, "b");
  g.set_strategy_name(2, 0, "alpha");
  g.set_strategy_name(2, 1, "beta");
  g.set_payoffs({0, 0, 0}, {1, 1, 1});    // (A, a, α)
  g.set_payoffs({0, 0, 1}, {1, 1, 0});    // (A, a, β)
  g.set_payoffs({0, 1, 0}, {1, 0, 1});    // (A, b, α)
  g.set_payoffs({0, 1, 1}, {-2, 2, 2});   // (A, b, β)
  g.set_payoffs({1, 0, 0}, {0, 1, 1});    // (B, a, α)
  g.set_payoffs({1, 0, 1}, {1, -2, 1});   // (B, a, β)
  g.set_payoffs({1, 1, 0}, {2, 2, -2});   // (B, b, α)
  g.set_payoffs({1, 1, 1}, {0, 0, 0});    // (B, b, β)
  return g;
}

TEST(NormalForm, Table3HasExactlyTheTwoClaimedEquilibria) {
  const NormalFormGame g = table3_game();
  const auto eqs = g.pure_nash();
  ASSERT_EQ(eqs.size(), 2u) << "the paper: '(B, b, β) and (A, a, α)'";
  EXPECT_EQ(eqs[0], (Profile{0, 0, 0}));  // (A, a, α)
  EXPECT_EQ(eqs[1], (Profile{1, 1, 1}));  // (B, b, β)
}

TEST(NormalForm, Table3FocalPointIsAaAlpha) {
  const NormalFormGame g = table3_game();
  // (A,a,α) pays (1,1,1) vs (B,b,β)'s (0,0,0): it "offers higher utility to
  // all the players" — the focal equilibrium of §4.3.
  EXPECT_TRUE(g.pareto_dominates({0, 0, 0}, {1, 1, 1}));
  const auto focal = g.pareto_frontier(g.pure_nash());
  ASSERT_EQ(focal.size(), 1u);
  EXPECT_EQ(g.describe(focal[0]), "(A, a, alpha)");
}

TEST(NormalForm, EnumeratesAllProfiles) {
  NormalFormGame g({2, 3});
  EXPECT_EQ(g.all_profiles().size(), 6u);
}

TEST(NormalForm, ToleranceAbsorbsNoise) {
  NormalFormGame g({2});
  g.set_payoffs({0}, {1.0});
  g.set_payoffs({1}, {1.0 + 1e-12});
  EXPECT_TRUE(g.is_nash({0}, 1e-9)) << "1e-12 gain is below tolerance";
  EXPECT_FALSE(g.is_nash({0}, 0.0));
}

// ---------------------------------------------------------------------------
// Utility structure (Table 2 / Eq. 1)

TEST(Utility, Table2PayoffMatrix) {
  const double a = 2.5;
  // θ = 3: paid for NP, CP and Fork.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 3, a), a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 3, a), a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 3, a), a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 3, a), 0.0);
  // θ = 2: punished for NP, paid for CP and Fork.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 2, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 2, a), a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 2, a), a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 2, a), 0.0);
  // θ = 1: only Fork pays.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 1, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 1, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 1, a), a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 1, a), 0.0);
  // θ = 0: any deviation state is punished.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 0, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 0, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 0, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 0, a), 0.0);
}

TEST(Utility, RejectsBadTheta) {
  EXPECT_THROW(payoff_f(SystemState::kHonest, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(payoff_f(SystemState::kHonest, -1, 1.0), std::invalid_argument);
}

TEST(Utility, RoundUtilityAveragesAndPenalizes) {
  UtilityParams params;
  params.alpha = 1.0;
  params.L = 10.0;
  const std::vector<RoundOutcome> samples = {
      {SystemState::kFork, false},
      {SystemState::kHonest, false},
      {SystemState::kFork, true},  // caught once
  };
  // θ=1: (1 + 0 + (1 − 10)) / 3 = −8/3.
  EXPECT_NEAR(round_utility(samples, 1, params), -8.0 / 3.0, 1e-12);
}

TEST(Utility, DiscountedUtilityMatchesGeometricSeries) {
  UtilityParams params;
  params.alpha = 1.0;
  params.delta = 0.5;
  // Fork every round for θ=1: 1 + 0.5 + 0.25 + 0.125 = 1.875.
  const std::vector<RoundOutcome> rounds(4, {SystemState::kFork, false});
  EXPECT_NEAR(discounted_utility(rounds, 1, params), 1.875, 1e-12);
}

TEST(Utility, StationaryDiscountedClosedForm) {
  EXPECT_NEAR(stationary_discounted(1.0, 0.9), 10.0, 1e-9);
  EXPECT_NEAR(stationary_discounted(2.0, 0.5), 4.0, 1e-9);
  EXPECT_THROW(stationary_discounted(1.0, 1.0), std::invalid_argument);
}

TEST(Utility, AbstainUnderTheta3BeatsHonest) {
  // Theorem 1's utility comparison: with the coalition stalling the system
  // (σ_NP every round) and no attributable penalty, U(π_abs) = α/(1−δ) > 0
  // = U(π_0).
  UtilityParams params;
  params.alpha = 1.0;
  params.delta = 0.9;
  const std::vector<RoundOutcome> stalled(10,
                                          {SystemState::kNoProgress, false});
  const std::vector<RoundOutcome> honest(10, {SystemState::kHonest, false});
  EXPECT_GT(discounted_utility(stalled, 3, params),
            discounted_utility(honest, 3, params));
}

TEST(Utility, PreferredStatesMatchTable2) {
  EXPECT_EQ(preferred_states(3), "No Progress, Censorship, Fork");
  EXPECT_EQ(preferred_states(2), "Censorship, Fork");
  EXPECT_EQ(preferred_states(1), "Fork");
  EXPECT_EQ(preferred_states(0), "Honest Execution");
}

TEST(Utility, StateAndStrategyNames) {
  EXPECT_STREQ(to_string(SystemState::kFork), "sigma_Fork");
  EXPECT_STREQ(to_string(Strategy::kAbstain), "pi_abs");
  EXPECT_STREQ(to_string(Strategy::kBait), "pi_bait");
  EXPECT_STREQ(to_string(Strategy::kFreeRide), "pi_free");
  EXPECT_STREQ(to_string(Strategy::kLazyVote), "pi_lazy");
}

TEST(Utility, EmptySampleSetsAreNeutral) {
  const UtilityParams params;
  EXPECT_DOUBLE_EQ(round_utility({}, 3, params), 0.0);
  EXPECT_DOUBLE_EQ(discounted_utility({}, 3, params), 0.0);
}

TEST(Utility, DeltaBoundaries) {
  // δ → 0: only the first round counts.
  UtilityParams myopic;
  myopic.delta = 0.0;
  const std::vector<RoundOutcome> rounds = {{SystemState::kFork, false},
                                            {SystemState::kFork, false},
                                            {SystemState::kFork, true}};
  EXPECT_DOUBLE_EQ(discounted_utility(rounds, 1, myopic), 1.0);
  EXPECT_DOUBLE_EQ(stationary_discounted(2.5, 0.0), 2.5);

  // δ → 1: the finite-horizon sum degenerates to the plain sum; the
  // closed-form infinite sum is rejected (it diverges).
  UtilityParams patient;
  patient.delta = 1.0;
  patient.L = 10.0;
  EXPECT_DOUBLE_EQ(discounted_utility(rounds, 1, patient), 1.0 + 1.0 - 9.0);
  EXPECT_THROW(stationary_discounted(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(stationary_discounted(1.0, -0.1), std::invalid_argument);
}

TEST(NormalForm, AccessorsRejectOutOfRangeIndices) {
  // Regression: the name tables used to be read with unvalidated indices —
  // an unnamed/mis-shaped profile could index past the vectors.
  NormalFormGame g({2, 3});
  EXPECT_THROW(g.set_player_name(2, "ghost"), std::out_of_range);
  EXPECT_THROW(g.set_player_name(-1, "ghost"), std::out_of_range);
  EXPECT_THROW(g.set_strategy_name(0, 2, "s"), std::out_of_range);
  EXPECT_THROW(g.set_strategy_name(1, 3, "s"), std::out_of_range);
  EXPECT_THROW((void)g.player_name(5), std::out_of_range);
  EXPECT_THROW((void)g.strategy_name(0, -1), std::out_of_range);
  EXPECT_THROW((void)g.describe(Profile{0, 5}), std::out_of_range);
  EXPECT_THROW((void)g.describe(Profile{0}), std::out_of_range);
  EXPECT_THROW((void)g.payoff(Profile{2, 0}, 0), std::out_of_range);
  EXPECT_THROW(g.set_payoff(Profile{0, 0, 0}, 0, 1.0), std::out_of_range);

  // In-range access still works after the hardening.
  g.set_strategy_name(1, 2, "z");
  EXPECT_EQ(g.strategy_name(1, 2), "z");
  g.set_payoff({1, 2}, 1, 4.0);
  EXPECT_DOUBLE_EQ(g.payoff({1, 2}, 1), 4.0);
  EXPECT_EQ(g.describe({1, 2}), "(s1, z)");
}

}  // namespace
}  // namespace ratcon::game
