// Unit tests for the game-theory substrate: pure Nash enumeration,
// dominance, Pareto/focal analysis (§4.3 incl. the Table 3 example game),
// and the paper's utility structure (Table 2, Eq. 1).

#include <gtest/gtest.h>

#include "game/normal_form.hpp"
#include "game/utility.hpp"

namespace ratcon::game {
namespace {

NormalFormGame prisoners_dilemma() {
  // Strategies: 0 = cooperate, 1 = defect.
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {-1, -1});
  g.set_payoffs({0, 1}, {-3, 0});
  g.set_payoffs({1, 0}, {0, -3});
  g.set_payoffs({1, 1}, {-2, -2});
  return g;
}

TEST(NormalForm, PrisonersDilemmaHasDefectEquilibrium) {
  const NormalFormGame g = prisoners_dilemma();
  const auto eqs = g.pure_nash();
  ASSERT_EQ(eqs.size(), 1u);
  EXPECT_EQ(eqs[0], (Profile{1, 1}));
  EXPECT_TRUE(g.is_dominant(0, 1));
  EXPECT_TRUE(g.is_dominant(1, 1));
  EXPECT_FALSE(g.is_dominant(0, 0));
}

TEST(NormalForm, DefectEquilibriumIsParetoDominated) {
  const NormalFormGame g = prisoners_dilemma();
  EXPECT_TRUE(g.pareto_dominates({0, 0}, {1, 1}));
  EXPECT_FALSE(g.pareto_dominates({1, 1}, {0, 0}));
}

TEST(NormalForm, MatchingPenniesHasNoPureEquilibrium) {
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {1, -1});
  g.set_payoffs({0, 1}, {-1, 1});
  g.set_payoffs({1, 0}, {-1, 1});
  g.set_payoffs({1, 1}, {1, -1});
  EXPECT_TRUE(g.pure_nash().empty());
}

TEST(NormalForm, CoordinationGameHasTwoEquilibria) {
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {2, 2});
  g.set_payoffs({1, 1}, {1, 1});
  g.set_payoffs({0, 1}, {0, 0});
  g.set_payoffs({1, 0}, {0, 0});
  const auto eqs = g.pure_nash();
  ASSERT_EQ(eqs.size(), 2u);
  // (0,0) Pareto-dominates (1,1): it is the focal equilibrium.
  const auto focal = g.pareto_frontier(eqs);
  ASSERT_EQ(focal.size(), 1u);
  EXPECT_EQ(focal[0], (Profile{0, 0}));
}

/// The paper's Table 3 example game. Payoff order (P1, P2, P3); P1 picks
/// {A, B}, P2 {a, b}, P3 {α, β}.
NormalFormGame table3_game() {
  NormalFormGame g({2, 2, 2});
  g.set_strategy_name(0, 0, "A");
  g.set_strategy_name(0, 1, "B");
  g.set_strategy_name(1, 0, "a");
  g.set_strategy_name(1, 1, "b");
  g.set_strategy_name(2, 0, "alpha");
  g.set_strategy_name(2, 1, "beta");
  g.set_payoffs({0, 0, 0}, {1, 1, 1});    // (A, a, α)
  g.set_payoffs({0, 0, 1}, {1, 1, 0});    // (A, a, β)
  g.set_payoffs({0, 1, 0}, {1, 0, 1});    // (A, b, α)
  g.set_payoffs({0, 1, 1}, {-2, 2, 2});   // (A, b, β)
  g.set_payoffs({1, 0, 0}, {0, 1, 1});    // (B, a, α)
  g.set_payoffs({1, 0, 1}, {1, -2, 1});   // (B, a, β)
  g.set_payoffs({1, 1, 0}, {2, 2, -2});   // (B, b, α)
  g.set_payoffs({1, 1, 1}, {0, 0, 0});    // (B, b, β)
  return g;
}

TEST(NormalForm, Table3HasExactlyTheTwoClaimedEquilibria) {
  const NormalFormGame g = table3_game();
  const auto eqs = g.pure_nash();
  ASSERT_EQ(eqs.size(), 2u) << "the paper: '(B, b, β) and (A, a, α)'";
  EXPECT_EQ(eqs[0], (Profile{0, 0, 0}));  // (A, a, α)
  EXPECT_EQ(eqs[1], (Profile{1, 1, 1}));  // (B, b, β)
}

TEST(NormalForm, Table3FocalPointIsAaAlpha) {
  const NormalFormGame g = table3_game();
  // (A,a,α) pays (1,1,1) vs (B,b,β)'s (0,0,0): it "offers higher utility to
  // all the players" — the focal equilibrium of §4.3.
  EXPECT_TRUE(g.pareto_dominates({0, 0, 0}, {1, 1, 1}));
  const auto focal = g.pareto_frontier(g.pure_nash());
  ASSERT_EQ(focal.size(), 1u);
  EXPECT_EQ(g.describe(focal[0]), "(A, a, alpha)");
}

TEST(NormalForm, EnumeratesAllProfiles) {
  NormalFormGame g({2, 3});
  EXPECT_EQ(g.all_profiles().size(), 6u);
}

TEST(NormalForm, ToleranceAbsorbsNoise) {
  NormalFormGame g({2});
  g.set_payoffs({0}, {1.0});
  g.set_payoffs({1}, {1.0 + 1e-12});
  EXPECT_TRUE(g.is_nash({0}, 1e-9)) << "1e-12 gain is below tolerance";
  EXPECT_FALSE(g.is_nash({0}, 0.0));
}

// ---------------------------------------------------------------------------
// Utility structure (Table 2 / Eq. 1)

TEST(Utility, Table2PayoffMatrix) {
  const double a = 2.5;
  // θ = 3: paid for NP, CP and Fork.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 3, a), a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 3, a), a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 3, a), a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 3, a), 0.0);
  // θ = 2: punished for NP, paid for CP and Fork.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 2, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 2, a), a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 2, a), a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 2, a), 0.0);
  // θ = 1: only Fork pays.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 1, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 1, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 1, a), a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 1, a), 0.0);
  // θ = 0: any deviation state is punished.
  EXPECT_EQ(payoff_f(SystemState::kNoProgress, 0, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kCensorship, 0, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kFork, 0, a), -a);
  EXPECT_EQ(payoff_f(SystemState::kHonest, 0, a), 0.0);
}

TEST(Utility, RejectsBadTheta) {
  EXPECT_THROW(payoff_f(SystemState::kHonest, 4, 1.0), std::invalid_argument);
  EXPECT_THROW(payoff_f(SystemState::kHonest, -1, 1.0), std::invalid_argument);
}

TEST(Utility, RoundUtilityAveragesAndPenalizes) {
  UtilityParams params;
  params.alpha = 1.0;
  params.L = 10.0;
  const std::vector<RoundOutcome> samples = {
      {SystemState::kFork, false},
      {SystemState::kHonest, false},
      {SystemState::kFork, true},  // caught once
  };
  // θ=1: (1 + 0 + (1 − 10)) / 3 = −8/3.
  EXPECT_NEAR(round_utility(samples, 1, params), -8.0 / 3.0, 1e-12);
}

TEST(Utility, DiscountedUtilityMatchesGeometricSeries) {
  UtilityParams params;
  params.alpha = 1.0;
  params.delta = 0.5;
  // Fork every round for θ=1: 1 + 0.5 + 0.25 + 0.125 = 1.875.
  const std::vector<RoundOutcome> rounds(4, {SystemState::kFork, false});
  EXPECT_NEAR(discounted_utility(rounds, 1, params), 1.875, 1e-12);
}

TEST(Utility, StationaryDiscountedClosedForm) {
  EXPECT_NEAR(stationary_discounted(1.0, 0.9), 10.0, 1e-9);
  EXPECT_NEAR(stationary_discounted(2.0, 0.5), 4.0, 1e-9);
  EXPECT_THROW(stationary_discounted(1.0, 1.0), std::invalid_argument);
}

TEST(Utility, AbstainUnderTheta3BeatsHonest) {
  // Theorem 1's utility comparison: with the coalition stalling the system
  // (σ_NP every round) and no attributable penalty, U(π_abs) = α/(1−δ) > 0
  // = U(π_0).
  UtilityParams params;
  params.alpha = 1.0;
  params.delta = 0.9;
  const std::vector<RoundOutcome> stalled(10,
                                          {SystemState::kNoProgress, false});
  const std::vector<RoundOutcome> honest(10, {SystemState::kHonest, false});
  EXPECT_GT(discounted_utility(stalled, 3, params),
            discounted_utility(honest, 3, params));
}

TEST(Utility, PreferredStatesMatchTable2) {
  EXPECT_EQ(preferred_states(3), "No Progress, Censorship, Fork");
  EXPECT_EQ(preferred_states(2), "Censorship, Fork");
  EXPECT_EQ(preferred_states(1), "Fork");
  EXPECT_EQ(preferred_states(0), "Honest Execution");
}

TEST(Utility, StateAndStrategyNames) {
  EXPECT_STREQ(to_string(SystemState::kFork), "sigma_Fork");
  EXPECT_STREQ(to_string(Strategy::kAbstain), "pi_abs");
  EXPECT_STREQ(to_string(Strategy::kBait), "pi_bait");
  EXPECT_STREQ(to_string(Strategy::kFreeRide), "pi_free");
  EXPECT_STREQ(to_string(Strategy::kLazyVote), "pi_lazy");
}

TEST(Utility, EmptySampleSetsAreNeutral) {
  const UtilityParams params;
  EXPECT_DOUBLE_EQ(round_utility({}, 3, params), 0.0);
  EXPECT_DOUBLE_EQ(discounted_utility({}, 3, params), 0.0);
}

TEST(Utility, DeltaBoundaries) {
  // δ → 0: only the first round counts.
  UtilityParams myopic;
  myopic.delta = 0.0;
  const std::vector<RoundOutcome> rounds = {{SystemState::kFork, false},
                                            {SystemState::kFork, false},
                                            {SystemState::kFork, true}};
  EXPECT_DOUBLE_EQ(discounted_utility(rounds, 1, myopic), 1.0);
  EXPECT_DOUBLE_EQ(stationary_discounted(2.5, 0.0), 2.5);

  // δ → 1: the finite-horizon sum degenerates to the plain sum; the
  // closed-form infinite sum is rejected (it diverges).
  UtilityParams patient;
  patient.delta = 1.0;
  patient.L = 10.0;
  EXPECT_DOUBLE_EQ(discounted_utility(rounds, 1, patient), 1.0 + 1.0 - 9.0);
  EXPECT_THROW(stationary_discounted(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(stationary_discounted(1.0, -0.1), std::invalid_argument);
}

TEST(NormalForm, DegenerateMixturesEqualPurePayoffs) {
  // A mixture with all weight on one strategy IS that pure strategy —
  // for every profile and every player, on a >2-strategy game.
  NormalFormGame g({2, 3});
  for (const Profile& p : g.all_profiles()) {
    g.set_payoffs(p, {static_cast<double>(p[0] * 10 + p[1]),
                      static_cast<double>(p[1] * 10 + p[0])});
  }
  for (const Profile& p : g.all_profiles()) {
    const MixedProfile mixed = g.degenerate(p);
    for (int player = 0; player < g.num_players(); ++player) {
      EXPECT_DOUBLE_EQ(g.expected_payoff(mixed, player),
                       g.payoff(p, player))
          << g.describe(p) << " player " << player;
    }
  }
  // Un-normalized degenerate weights normalize to the same thing.
  const MixedProfile scaled{{0.0, 7.0}, {0.0, 0.0, 3.0}};
  EXPECT_DOUBLE_EQ(g.expected_payoff(scaled, 0), g.payoff({1, 2}, 0));
}

TEST(NormalForm, ExpectedPayoffAveragesOverTheSupportProduct) {
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {4, 0});
  g.set_payoffs({0, 1}, {0, 0});
  g.set_payoffs({1, 0}, {0, 0});
  g.set_payoffs({1, 1}, {8, 0});
  // P0 plays (0.25, 0.75), P1 plays (0.5, 0.5):
  // E[u0] = .25·.5·4 + .75·.5·8 = 0.5 + 3 = 3.5.
  const MixedProfile mix{{0.25, 0.75}, {0.5, 0.5}};
  EXPECT_DOUBLE_EQ(g.expected_payoff(mix, 0), 3.5);
  // Matching pennies: the uniform mixture is a mixed Nash equilibrium,
  // the pure profiles are not even pure Nash.
  NormalFormGame pennies({2, 2});
  pennies.set_payoffs({0, 0}, {1, -1});
  pennies.set_payoffs({0, 1}, {-1, 1});
  pennies.set_payoffs({1, 0}, {-1, 1});
  pennies.set_payoffs({1, 1}, {1, -1});
  EXPECT_TRUE(pennies.is_mixed_nash({{0.5, 0.5}, {0.5, 0.5}}));
  EXPECT_FALSE(pennies.is_mixed_nash(pennies.degenerate({0, 0})));
  EXPECT_TRUE(pennies.pure_nash().empty());
}

TEST(NormalForm, MixedSupportEnumerationEdgeCases) {
  // Zero-weight strategies are skipped entirely — their payoff cells may
  // even hold garbage-ish extremes without affecting the expectation.
  NormalFormGame g({3});
  g.set_payoff({0}, 0, 1.0);
  g.set_payoff({1}, 0, 1e18);
  g.set_payoff({2}, 0, 5.0);
  EXPECT_DOUBLE_EQ(g.expected_payoff({{0.5, 0.0, 0.5}}, 0), 3.0);
  EXPECT_EQ(NormalFormGame::support({0.5, 0.0, 0.5}),
            (std::vector<int>{0, 2}));
  EXPECT_TRUE(NormalFormGame::support({0.0, 0.0}).empty());

  // Validation: negative weights and empty supports are invalid_argument;
  // shape mismatches are out_of_range (the bounds-checked accessor
  // contract, on a >2-strategy game).
  EXPECT_THROW((void)g.expected_payoff({{0.5, -0.1, 0.6}}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)g.expected_payoff({{0.0, 0.0, 0.0}}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)g.expected_payoff({{0.5, 0.5}}, 0), std::out_of_range);
  EXPECT_THROW((void)g.expected_payoff({{0.2, 0.3, 0.5}, {1.0}}, 0),
               std::out_of_range);
  EXPECT_THROW((void)g.expected_payoff({{0.2, 0.3, 0.5}}, 1),
               std::out_of_range);
  EXPECT_THROW((void)g.degenerate(Profile{3}), std::out_of_range);
}

TEST(NormalForm, BestResponsePathConvergesToAnEquilibrium) {
  // Stag hunt: (stag, stag) and (hare, hare) are both Nash; from the
  // mixed-intent start (stag, hare) the dynamic moves deterministically —
  // P0 switches to hare first — and stops at the risk-dominant corner.
  NormalFormGame g({2, 2});
  g.set_payoffs({0, 0}, {4, 4});
  g.set_payoffs({0, 1}, {0, 3});
  g.set_payoffs({1, 0}, {3, 0});
  g.set_payoffs({1, 1}, {3, 3});
  const auto path = g.best_response_path({0, 1});
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), (Profile{0, 1}));
  EXPECT_EQ(path.back(), (Profile{1, 1}));
  EXPECT_TRUE(g.is_nash(path.back()));

  // Starting on an equilibrium: the path is just the start.
  EXPECT_EQ(g.best_response_path({0, 0}).size(), 1u);
  // max_steps caps cycles (matching pennies never converges).
  NormalFormGame pennies({2, 2});
  pennies.set_payoffs({0, 0}, {1, -1});
  pennies.set_payoffs({0, 1}, {-1, 1});
  pennies.set_payoffs({1, 0}, {-1, 1});
  pennies.set_payoffs({1, 1}, {1, -1});
  const auto cycle = pennies.best_response_path({0, 0}, 10);
  EXPECT_EQ(cycle.size(), 11u);
  EXPECT_FALSE(pennies.is_nash(cycle.back()));
}

TEST(NormalForm, AccessorsRejectOutOfRangeIndices) {
  // Regression: the name tables used to be read with unvalidated indices —
  // an unnamed/mis-shaped profile could index past the vectors.
  NormalFormGame g({2, 3});
  EXPECT_THROW(g.set_player_name(2, "ghost"), std::out_of_range);
  EXPECT_THROW(g.set_player_name(-1, "ghost"), std::out_of_range);
  EXPECT_THROW(g.set_strategy_name(0, 2, "s"), std::out_of_range);
  EXPECT_THROW(g.set_strategy_name(1, 3, "s"), std::out_of_range);
  EXPECT_THROW((void)g.player_name(5), std::out_of_range);
  EXPECT_THROW((void)g.strategy_name(0, -1), std::out_of_range);
  EXPECT_THROW((void)g.describe(Profile{0, 5}), std::out_of_range);
  EXPECT_THROW((void)g.describe(Profile{0}), std::out_of_range);
  EXPECT_THROW((void)g.payoff(Profile{2, 0}, 0), std::out_of_range);
  EXPECT_THROW(g.set_payoff(Profile{0, 0, 0}, 0, 1.0), std::out_of_range);

  // In-range access still works after the hardening.
  g.set_strategy_name(1, 2, "z");
  EXPECT_EQ(g.strategy_name(1, 2), "z");
  g.set_payoff({1, 2}, 1, 4.0);
  EXPECT_DOUBLE_EQ(g.payoff({1, 2}, 1), 4.0);
  EXPECT_EQ(g.describe({1, 2}), "(s1, z)");
}

}  // namespace
}  // namespace ratcon::game
