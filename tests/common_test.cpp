// Unit tests for the common substrate: hex codec, the bounds-checked
// binary Writer/Reader, and the deterministic RNG.

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace ratcon {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(ByteSpan(data.data(), data.size())), "0001abcdefff");
  EXPECT_EQ(from_hex("0001abcdefff"), data);
  EXPECT_EQ(from_hex("0001ABCDEFFF"), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "hello bytes";
  const Bytes b = to_bytes(s);
  EXPECT_EQ(to_string(ByteSpan(b.data(), b.size())), s);
}

TEST(Bytes, ConstantTimeEquality) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(equal_bytes(ByteSpan(a.data(), a.size()),
                          ByteSpan(b.data(), b.size())));
  EXPECT_FALSE(equal_bytes(ByteSpan(a.data(), a.size()),
                           ByteSpan(c.data(), c.size())));
  EXPECT_FALSE(equal_bytes(ByteSpan(a.data(), a.size()),
                           ByteSpan(d.data(), d.size())));
}

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, BytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.str("a string");
  w.bytes({});

  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(r.bytes(), to_bytes("payload"));
  EXPECT_EQ(r.str(), "a string");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Codec, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Codec, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Reader r(ByteSpan(w.data().data(), 3));
  EXPECT_THROW(r.u32(), CodecError);
}

TEST(Codec, HostileLengthFieldRejected) {
  Writer w;
  w.u32(0xffffffffu);  // absurd length prefix
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, CountGuard) {
  Writer w;
  w.u32(1000);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(r.count(10), CodecError);
}

TEST(Codec, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
}

TEST(Codec, EveryReadThrowsOnEmptyBuffer) {
  std::uint8_t sink[4] = {};
  Reader r(ByteSpan{});
  EXPECT_THROW(r.u8(), CodecError);
  EXPECT_THROW(r.u16(), CodecError);
  EXPECT_THROW(r.u32(), CodecError);
  EXPECT_THROW(r.u64(), CodecError);
  EXPECT_THROW(r.raw(1), CodecError);
  EXPECT_THROW(r.raw_into(sink, 1), CodecError);
}

TEST(Codec, TruncatedStringBodyThrows) {
  // Valid length prefix claiming 5 bytes, but only 2 bytes follow.
  Writer w;
  w.u32(5);
  w.u8('h');
  w.u8('i');
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(r.str(), CodecError);
}

TEST(Codec, TruncatedBytesBodyThrows) {
  Writer w;
  w.u32(9);
  w.u8(0xaa);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(r.bytes(), CodecError);
}

TEST(Codec, MaxLengthBoundaryIsExact) {
  // A length field exactly at max_len must pass; max_len + 1 must throw —
  // the guard cannot be off by one in either direction.
  const Bytes payload(8, 0x5a);
  Writer w;
  w.bytes(ByteSpan(payload.data(), payload.size()));
  {
    Reader r(ByteSpan(w.data().data(), w.data().size()));
    EXPECT_EQ(r.bytes(/*max_len=*/8), payload);
  }
  {
    Reader r(ByteSpan(w.data().data(), w.data().size()));
    EXPECT_THROW(r.bytes(/*max_len=*/7), CodecError);
  }
}

TEST(Codec, MaxLengthFieldDoesNotOverflow) {
  // 0xffffffff as a length must be rejected by the limit check, not wrap
  // around any internal arithmetic and read out of bounds.
  Writer w;
  w.u32(0xffffffffu);
  {
    Reader r(ByteSpan(w.data().data(), w.data().size()));
    EXPECT_THROW(r.bytes(), CodecError);
  }
  {
    Reader r(ByteSpan(w.data().data(), w.data().size()));
    EXPECT_THROW(r.str(), CodecError);
  }
  {
    Reader r(ByteSpan(w.data().data(), w.data().size()));
    EXPECT_THROW(r.count(1u << 20), CodecError);
  }
}

TEST(Codec, FailedReadLeavesPositionIntact) {
  // A throwing read must not consume input: the same reader can continue
  // with reads that do fit.
  Writer w;
  w.u8(7);
  w.u8(9);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(r.u32(), CodecError);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u8(), 9);
  EXPECT_TRUE(r.done());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceIsCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRoughlyCorrectMean) {
  Rng rng(17);
  double sum = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / trials, 50.0, 1.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child and parent should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, LabeledForksAreDeterministicAndDoNotAdvanceTheParent) {
  // fork(label) is a pure function of (state, label): same label → same
  // substream, different labels → independent substreams, and the parent
  // is left untouched (so fork *order* — e.g. thread scheduling in a
  // parallel sweep — can never change any stream).
  Rng parent(23);
  Rng a = parent.fork("node/3");
  Rng b = parent.fork("node/3");
  Rng c = parent.fork("node/4");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == c.next()) ++same;
  }
  EXPECT_LT(same, 2);

  Rng untouched(23);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next(), untouched.next());

  // Forks taken after the parent advanced differ (the state is part of
  // the key), and sub-forks of equal forks agree.
  Rng moved(23);
  (void)moved.next();
  Rng d = moved.fork("node/3");
  EXPECT_NE(Rng(23).fork("node/3").next(), d.next());
  EXPECT_EQ(Rng(23).fork("x").fork("y").next(),
            Rng(23).fork("x").fork("y").next());
}

}  // namespace
}  // namespace ratcon
