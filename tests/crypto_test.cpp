// Unit tests for the crypto substrate: SHA-256 against NIST FIPS 180-4
// vectors, HMAC-SHA256 against RFC 4231, Merkle trees, and the simulation
// signature scheme's unforgeability-by-construction properties.

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sig.hpp"

namespace ratcon::crypto {
namespace {

struct ShaVector {
  const char* input;
  const char* digest_hex;
};

class Sha256KnownAnswer : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256KnownAnswer, MatchesNistVector) {
  const ShaVector& v = GetParam();
  EXPECT_EQ(hash_hex(sha256(std::string_view(v.input))), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256KnownAnswer,
    ::testing::Values(
        ShaVector{"",
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
                  "7852b855"},
        ShaVector{"abc",
                  "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
                  "f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
                  "19db06c1"},
        ShaVector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                  "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                  "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac4503"
                  "7afee9d1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
                  "37c9e592"}));

TEST(Sha256, MillionAs) {
  // NIST long-message vector: one million 'a' characters.
  const std::string input(1000000, 'a');
  EXPECT_EQ(hash_hex(sha256(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes data = to_bytes("streaming hash equivalence check payload");
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(ByteSpan(data.data(), split));
    h.update(ByteSpan(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), sha256(ByteSpan(data.data(), data.size())));
  }
}

TEST(Sha256, StreamingManySmallChunks) {
  const std::string input(1000, 'x');
  Sha256 h;
  for (char c : input) {
    const auto b = static_cast<std::uint8_t>(c);
    h.update(ByteSpan(&b, 1));
  }
  EXPECT_EQ(h.finish(), sha256(input));
}

TEST(Sha256, BoundaryLengths) {
  // Around the 55/56/64-byte padding boundaries.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const std::string a(len, 'q');
    Sha256 h;
    h.update(ByteSpan(reinterpret_cast<const std::uint8_t*>(a.data()),
                      a.size()));
    EXPECT_EQ(h.finish(), sha256(a)) << "len=" << len;
  }
}

TEST(Sha256, HashPairOrderMatters) {
  const Hash256 a = sha256(std::string_view("a"));
  const Hash256 b = sha256(std::string_view("b"));
  EXPECT_NE(hash_pair(a, b), hash_pair(b, a));
}

struct HmacVector {
  const char* key_hex;
  const char* data_hex;
  const char* mac_hex;
};

class HmacKnownAnswer : public ::testing::TestWithParam<HmacVector> {};

TEST_P(HmacKnownAnswer, MatchesRfc4231Vector) {
  const HmacVector& v = GetParam();
  const Bytes key = from_hex(v.key_hex);
  const Bytes data = from_hex(v.data_hex);
  const Hash256 mac = hmac_sha256(ByteSpan(key.data(), key.size()),
                                  ByteSpan(data.data(), data.size()));
  EXPECT_EQ(hash_hex(mac), v.mac_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4231, HmacKnownAnswer,
    ::testing::Values(
        // Test case 1.
        HmacVector{"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
                   "4869205468657265",
                   "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
                   "2e32cff7"},
        // Test case 2: shorter-than-block key "Jefe".
        HmacVector{"4a656665",
                   "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
                   "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
                   "64ec3843"},
        // Test case 3: 0xaa * 20 key, 0xdd * 50 data.
        HmacVector{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                   "dddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
                   "dddddddddddddddddddddddddddddddddddddddddddd",
                   "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514"
                   "ced565fe"},
        // Test case 6: key longer than one block.
        HmacVector{"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
                   "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                   "54657374205573696e67204c6172676572205468616e20426c6f636b"
                   "2d53697a65204b6579202d2048617368204b6579204669727374",
                   "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
                   "0ee37f54"}));

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), kZeroHash);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const Hash256 leaf = sha256(std::string_view("leaf"));
  MerkleTree tree({leaf});
  EXPECT_EQ(tree.root(), leaf);
}

class MerkleSizes : public ::testing::TestWithParam<int> {};

TEST_P(MerkleSizes, AllProofsVerify) {
  const int n = GetParam();
  std::vector<Hash256> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(sha256("leaf-" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::compute_root(leaves));
  for (int i = 0; i < n; ++i) {
    const MerkleProof proof = tree.prove(static_cast<std::uint64_t>(i));
    EXPECT_TRUE(MerkleTree::verify(leaves[static_cast<std::size_t>(i)], proof,
                                   tree.root()))
        << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33));

TEST(Merkle, WrongLeafFailsVerification) {
  std::vector<Hash256> leaves = {sha256(std::string_view("a")),
                                 sha256(std::string_view("b")),
                                 sha256(std::string_view("c"))};
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(1);
  EXPECT_FALSE(
      MerkleTree::verify(sha256(std::string_view("x")), proof, tree.root()));
}

TEST(Merkle, TamperedRootFailsVerification) {
  std::vector<Hash256> leaves = {sha256(std::string_view("a")),
                                 sha256(std::string_view("b"))};
  MerkleTree tree(leaves);
  Hash256 bad_root = tree.root();
  bad_root[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(leaves[0], tree.prove(0), bad_root));
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree tree({sha256(std::string_view("a"))});
  EXPECT_THROW(tree.prove(1), std::out_of_range);
}

TEST(Merkle, EmptyTreeProveThrows) {
  MerkleTree tree({});
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_THROW(tree.prove(0), std::out_of_range);
}

TEST(Merkle, EmptyComputeRootIsZero) {
  EXPECT_EQ(MerkleTree::compute_root({}), kZeroHash);
}

TEST(Merkle, SingleLeafProofIsEmptyPath) {
  const Hash256 leaf = sha256(std::string_view("only"));
  MerkleTree tree({leaf});
  const MerkleProof proof = tree.prove(0);
  EXPECT_TRUE(proof.path.empty());
  EXPECT_TRUE(MerkleTree::verify(leaf, proof, tree.root()));
}

TEST(Merkle, OddLeafCountDuplicatesLastLeaf) {
  // Bitcoin-style duplication: with 3 leaves the root must equal
  // H(H(a,b), H(c,c)) — the odd leaf is paired with itself.
  const Hash256 a = sha256(std::string_view("a"));
  const Hash256 b = sha256(std::string_view("b"));
  const Hash256 c = sha256(std::string_view("c"));
  MerkleTree tree({a, b, c});
  EXPECT_EQ(tree.root(), hash_pair(hash_pair(a, b), hash_pair(c, c)));
}

TEST(Merkle, OddLevelLastLeafProofVerifies) {
  // 5 leaves: the last leaf is the odd one at two consecutive levels; its
  // proof must still verify and its sibling steps are self-duplications.
  std::vector<Hash256> leaves;
  for (int i = 0; i < 5; ++i) {
    leaves.push_back(sha256("odd-" + std::to_string(i)));
  }
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(4);
  EXPECT_TRUE(MerkleTree::verify(leaves[4], proof, tree.root()));
  ASSERT_FALSE(proof.path.empty());
  EXPECT_EQ(proof.path[0].sibling, leaves[4]) << "odd leaf pairs with itself";
}

TEST(Merkle, ProofForDifferentLeafFails) {
  const Hash256 a = sha256(std::string_view("a"));
  const Hash256 b = sha256(std::string_view("b"));
  const Hash256 c = sha256(std::string_view("c"));
  MerkleTree tree({a, b, c});
  EXPECT_FALSE(MerkleTree::verify(b, tree.prove(0), tree.root()));
}

TEST(Signatures, SignVerifyRoundTrip) {
  KeyRegistry registry;
  const KeyPair kp = registry.generate(0, 1);
  const Bytes msg = to_bytes("attack at dawn");
  const Signature sig = sign(kp.sk, ByteSpan(msg.data(), msg.size()));
  EXPECT_TRUE(registry.verify(kp.pk, ByteSpan(msg.data(), msg.size()), sig));
}

TEST(Signatures, TamperedMessageFails) {
  KeyRegistry registry;
  const KeyPair kp = registry.generate(0, 1);
  const Bytes msg = to_bytes("attack at dawn");
  const Signature sig = sign(kp.sk, ByteSpan(msg.data(), msg.size()));
  const Bytes other = to_bytes("attack at dusk");
  EXPECT_FALSE(
      registry.verify(kp.pk, ByteSpan(other.data(), other.size()), sig));
}

TEST(Signatures, WrongSignerFails) {
  KeyRegistry registry;
  const KeyPair alice = registry.generate(0, 1);
  const KeyPair bob = registry.generate(1, 1);
  const Bytes msg = to_bytes("message");
  const Signature sig = sign(alice.sk, ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(registry.verify(bob.pk, ByteSpan(msg.data(), msg.size()), sig));
}

TEST(Signatures, UnregisteredKeyFails) {
  KeyRegistry registry;
  registry.generate(0, 1);
  KeyRegistry other_registry;
  const KeyPair stranger = other_registry.generate(5, 9);
  const Bytes msg = to_bytes("message");
  const Signature sig = sign(stranger.sk, ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(
      registry.verify(stranger.pk, ByteSpan(msg.data(), msg.size()), sig));
}

TEST(Signatures, BitFlippedSignatureFails) {
  KeyRegistry registry;
  const KeyPair kp = registry.generate(0, 1);
  const Bytes msg = to_bytes("payload");
  Signature sig = sign(kp.sk, ByteSpan(msg.data(), msg.size()));
  for (std::size_t i = 0; i < sig.bytes.size(); i += 5) {
    Signature bad = sig;
    bad.bytes[i] ^= 0x80;
    EXPECT_FALSE(registry.verify(kp.pk, ByteSpan(msg.data(), msg.size()), bad));
  }
}

TEST(Signatures, DeterministicKeygen) {
  KeyRegistry a;
  KeyRegistry b;
  EXPECT_EQ(a.generate(3, 7).pk.bytes, b.generate(3, 7).pk.bytes);
  EXPECT_NE(a.generate(4, 7).pk.bytes, b.generate(5, 7).pk.bytes);
}

TEST(Signatures, PublicKeyLookupByNode) {
  KeyRegistry registry;
  const KeyPair kp = registry.generate(2, 11);
  EXPECT_EQ(registry.public_key(2), kp.pk);
  EXPECT_EQ(registry.public_key(9), PublicKey{});
}

}  // namespace
}  // namespace ratcon::crypto
