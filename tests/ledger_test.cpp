// Unit tests for the ledger substrate: transactions, blocks, the
// tentative/final chain semantics of §3.1/§5.3.2, the common-prefix and
// c-strict-ordering checks of Definition 1, mempool censorship filters,
// and the collateral ledger of §5.3.1.

#include <gtest/gtest.h>

#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "ledger/deposits.hpp"
#include "ledger/mempool.hpp"
#include "ledger/transaction.hpp"

namespace ratcon::ledger {
namespace {

TEST(Transaction, CodecRoundTrip) {
  const Transaction tx = make_transfer(42, 3, 64);
  Writer w;
  tx.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(Transaction::decode(r), tx);
  EXPECT_TRUE(r.done());
}

TEST(Transaction, BurnCarriesTarget) {
  const Transaction tx = make_burn(7, 1, 5);
  EXPECT_EQ(tx.kind, Transaction::Kind::kBurn);
  EXPECT_EQ(tx.burn_target, 5u);
  Writer w;
  tx.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(Transaction::decode(r), tx);
}

TEST(Transaction, HashDistinguishesContent) {
  EXPECT_NE(make_transfer(1, 0).hash(), make_transfer(2, 0).hash());
  EXPECT_NE(make_transfer(1, 0).hash(), make_transfer(1, 1).hash());
}

TEST(Transaction, RejectsBadKind) {
  Writer w;
  w.u64(1);
  w.u32(0);
  w.u8(9);  // invalid kind
  w.u32(0);
  w.bytes({});
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(Transaction::decode(r), CodecError);
}

Block make_block(const crypto::Hash256& parent, Round round, NodeId proposer,
                 int txs) {
  Block b;
  b.parent = parent;
  b.round = round;
  b.proposer = proposer;
  for (int i = 0; i < txs; ++i) {
    b.txs.push_back(make_transfer(round * 100 + static_cast<std::uint64_t>(i),
                                  proposer));
  }
  return b;
}

TEST(BlockTest, CodecRoundTrip) {
  const Block b = make_block(crypto::kZeroHash, 3, 1, 5);
  Writer w;
  b.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const Block decoded = Block::decode(r);
  EXPECT_EQ(decoded.hash(), b.hash());
  EXPECT_EQ(decoded.txs.size(), 5u);
}

TEST(BlockTest, HashCommitsToEverything) {
  const Block base = make_block(crypto::kZeroHash, 3, 1, 2);
  Block other = base;
  other.round = 4;
  EXPECT_NE(base.hash(), other.hash()) << "round binds (no replay, fn 11)";
  other = base;
  other.proposer = 2;
  EXPECT_NE(base.hash(), other.hash());
  other = base;
  other.txs.push_back(make_transfer(999, 0));
  EXPECT_NE(base.hash(), other.hash());
  other = base;
  other.parent = crypto::sha256(std::string_view("x"));
  EXPECT_NE(base.hash(), other.hash());
}

TEST(BlockTest, ContainsTx) {
  const Block b = make_block(crypto::kZeroHash, 1, 0, 3);
  EXPECT_TRUE(b.contains_tx(100));
  EXPECT_FALSE(b.contains_tx(999));
}

TEST(ChainTest, StartsAtGenesis) {
  Chain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.finalized_height(), 0u);
  EXPECT_EQ(chain.tip_hash(), genesis().hash());
}

TEST(ChainTest, AppendRequiresParentLinkage) {
  Chain chain;
  const Block good = make_block(chain.tip_hash(), 1, 0, 1);
  const Block bad = make_block(crypto::sha256(std::string_view("no")), 1, 0, 1);
  EXPECT_FALSE(chain.append_tentative(bad));
  EXPECT_TRUE(chain.append_tentative(good));
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.finalized_height(), 0u) << "append is tentative";
}

TEST(ChainTest, FinalizeAndRollback) {
  Chain chain;
  const Block b1 = make_block(chain.tip_hash(), 1, 0, 1);
  chain.append_tentative(b1);
  const Block b2 = make_block(chain.tip_hash(), 2, 1, 1);
  chain.append_tentative(b2);

  EXPECT_TRUE(chain.finalize_up_to(1));
  EXPECT_TRUE(chain.is_final(1));
  EXPECT_FALSE(chain.is_final(2));

  EXPECT_EQ(chain.rollback_tentative(), 1u) << "drops only the tentative b2";
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.tip_hash(), b1.hash());
}

TEST(ChainTest, FinalizeByHash) {
  Chain chain;
  const Block b1 = make_block(chain.tip_hash(), 1, 0, 1);
  chain.append_tentative(b1);
  EXPECT_TRUE(chain.finalize_block(b1.hash()));
  EXPECT_EQ(chain.finalized_height(), 1u);
  EXPECT_FALSE(chain.finalize_block(crypto::kZeroHash));
}

TEST(ChainTest, FinalizeBeyondTipFails) {
  Chain chain;
  EXPECT_FALSE(chain.finalize_up_to(5));
}

TEST(ChainTest, TxLookups) {
  Chain chain;
  const Block b1 = make_block(chain.tip_hash(), 1, 0, 2);  // txs 100, 101
  chain.append_tentative(b1);
  EXPECT_TRUE(chain.contains_tx(100));
  EXPECT_FALSE(chain.finalized_contains_tx(100)) << "still tentative";
  chain.finalize_up_to(1);
  EXPECT_TRUE(chain.finalized_contains_tx(100));
}

TEST(ChainTest, CStrictOrderingOnPrefixChains) {
  Chain a;
  Chain b;
  const Block b1 = make_block(a.tip_hash(), 1, 0, 1);
  a.append_tentative(b1);
  b.append_tentative(b1);
  const Block b2 = make_block(a.tip_hash(), 2, 1, 1);
  a.append_tentative(b2);
  a.finalize_up_to(2);
  b.finalize_up_to(1);

  EXPECT_TRUE(c_strict_ordering_holds(a, b, 0));
  EXPECT_TRUE(c_strict_ordering_holds(b, a, 0));
  EXPECT_FALSE(chains_conflict(a, b));
}

TEST(ChainTest, PrefixHashesDropBeyondLengthLeavesNothingButGenesis) {
  Chain a;
  a.append_tentative(make_block(a.tip_hash(), 1, 0, 1));
  a.finalize_up_to(1);
  // finalized_hashes = [genesis, b1]; dropping more than exists must clamp
  // cleanly instead of wrapping.
  EXPECT_EQ(a.finalized_hashes().size(), 2u);
  EXPECT_EQ(a.prefix_hashes(1).size(), 1u);
  EXPECT_TRUE(a.prefix_hashes(2).empty());
  EXPECT_TRUE(a.prefix_hashes(100).empty());
}

TEST(ChainTest, CStrictOrderingOnFreshChainsHoldsTrivially) {
  Chain a;
  Chain b;
  EXPECT_TRUE(c_strict_ordering_holds(a, b, 0));
  EXPECT_FALSE(chains_conflict(a, b));
}

TEST(ChainTest, ForkDetected) {
  Chain a;
  Chain b;
  const Block ba = make_block(a.tip_hash(), 1, 0, 1);
  Block bb = make_block(b.tip_hash(), 1, 0, 2);  // different content
  a.append_tentative(ba);
  b.append_tentative(bb);
  a.finalize_up_to(1);
  b.finalize_up_to(1);

  EXPECT_TRUE(chains_conflict(a, b));
  EXPECT_FALSE(c_strict_ordering_holds(a, b, 0));
  // Removing the divergent suffix restores the common prefix (the paper's
  // C^{⌊c} common-prefix property).
  EXPECT_TRUE(c_strict_ordering_holds(a, b, 1));
}

TEST(Mempool, SelectsInArrivalOrder) {
  Mempool pool;
  pool.submit(make_transfer(3, 0), 30);
  pool.submit(make_transfer(1, 0), 10);
  pool.submit(make_transfer(2, 0), 20);
  const auto selected = pool.select(10);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].id, 3u);  // submission order, not id order
  EXPECT_EQ(pool.arrival_of(1), 10);
}

TEST(Mempool, DuplicatesIgnored) {
  Mempool pool;
  pool.submit(make_transfer(1, 0), 10);
  pool.submit(make_transfer(1, 0), 20);
  EXPECT_EQ(pool.pending(), 1u);
}

TEST(Mempool, CensorFilterSkips) {
  Mempool pool;
  pool.submit(make_transfer(1, 0), 1);
  pool.submit(make_transfer(2, 0), 2);
  const auto selected = pool.select(
      10, [](const Transaction& tx) { return tx.id == 1; });
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].id, 2u);
  EXPECT_EQ(pool.pending(), 2u) << "censoring does not consume";
}

TEST(Mempool, MarkIncludedRemoves) {
  Mempool pool;
  pool.submit(make_transfer(1, 0), 1);
  pool.submit(make_transfer(2, 0), 2);
  pool.mark_included({make_transfer(1, 0)});
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_FALSE(pool.has_tx(1));
  EXPECT_TRUE(pool.has_tx(2));
}

TEST(Mempool, RestoreAfterRollback) {
  Mempool pool;
  pool.submit(make_transfer(1, 0), 1);
  pool.mark_included({make_transfer(1, 0)});
  pool.restore({make_transfer(1, 0)});
  EXPECT_TRUE(pool.has_tx(1));
  EXPECT_EQ(pool.select(10).size(), 1u);
}

TEST(Mempool, SelectRespectsBudget) {
  Mempool pool;
  for (std::uint64_t i = 0; i < 10; ++i) {
    pool.submit(make_transfer(i + 1, 0), static_cast<SimTime>(i));
  }
  EXPECT_EQ(pool.select(4).size(), 4u);
}

TEST(Deposits, RegisterAndBurn) {
  DepositLedger ledger(100);
  ledger.register_players(3);
  EXPECT_EQ(ledger.balance(0), 100);
  EXPECT_FALSE(ledger.slashed(0));

  EXPECT_EQ(ledger.burn(0), 100);
  EXPECT_TRUE(ledger.slashed(0));
  EXPECT_EQ(ledger.balance(0), 0);
  EXPECT_EQ(ledger.total_burned(), 100);
}

TEST(Deposits, BurnIsIdempotent) {
  DepositLedger ledger(100);
  ledger.register_players(2);
  EXPECT_EQ(ledger.burn(1), 100);
  EXPECT_EQ(ledger.burn(1), 0) << "second burn is a no-op";
  EXPECT_EQ(ledger.total_burned(), 100);
}

TEST(Deposits, SlashedPlayersListed) {
  DepositLedger ledger(50);
  ledger.register_players(4);
  ledger.burn(1);
  ledger.burn(3);
  EXPECT_EQ(ledger.slashed_players(), (std::vector<NodeId>{1, 3}));
}

TEST(Deposits, DoubleSlashRecordsOneEvent) {
  DepositLedger ledger(100);
  ledger.register_players(2);
  EXPECT_EQ(ledger.burn(1, /*round=*/4), 100);
  EXPECT_EQ(ledger.burn(1, /*round=*/9), 0) << "second burn is a no-op";
  ASSERT_EQ(ledger.events().size(), 1u);
  EXPECT_EQ(ledger.events()[0].player, 1u);
  EXPECT_EQ(ledger.events()[0].amount, 100);
  EXPECT_EQ(ledger.events()[0].round, 4u) << "first conviction's round wins";
  EXPECT_EQ(ledger.total_burned(), 100);
  EXPECT_EQ(ledger.delta(1), -100);
}

TEST(Deposits, SlashAfterWithdrawBurnsNothing) {
  DepositLedger ledger(100);
  ledger.register_players(2);
  EXPECT_EQ(ledger.withdraw(0), 100);
  EXPECT_EQ(ledger.balance(0), 0);
  EXPECT_FALSE(ledger.slashed(0)) << "withdrawing is not a slash";

  // A later conviction still marks the player slashed but finds nothing.
  EXPECT_EQ(ledger.burn(0, 2), 0);
  EXPECT_TRUE(ledger.slashed(0));
  EXPECT_EQ(ledger.total_burned(), 0);
  ASSERT_EQ(ledger.events().size(), 1u);
  EXPECT_EQ(ledger.events()[0].amount, 0) << "conviction recorded, 0 burned";
  EXPECT_EQ(ledger.delta(0), -100) << "the withdraw drained the deposit";
}

TEST(Deposits, ZeroCollateralPlayersSlashCleanly) {
  DepositLedger ledger(0);
  ledger.register_players(3);
  EXPECT_EQ(ledger.balance(2), 0);
  EXPECT_EQ(ledger.burn(2), 0);
  EXPECT_TRUE(ledger.slashed(2));
  EXPECT_EQ(ledger.total_burned(), 0);
  EXPECT_EQ(ledger.delta(2), 0);
  ASSERT_EQ(ledger.events().size(), 1u);
  EXPECT_EQ(ledger.events()[0].amount, 0);
}

TEST(Deposits, BurningUnknownPlayerIsSafe) {
  DepositLedger ledger(100);
  ledger.register_players(2);
  EXPECT_EQ(ledger.burn(9), 0) << "never-registered player has no deposit";
  EXPECT_TRUE(ledger.slashed(9));
  EXPECT_EQ(ledger.withdraw(9), 0);
  EXPECT_EQ(ledger.delta(9), 0);
}

}  // namespace
}  // namespace ratcon::ledger
