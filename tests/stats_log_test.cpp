// Unit tests for the traffic-stats accounting (Figure 3's measurement
// instrument) and the logging facility.

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "net/stats.hpp"

namespace ratcon {
namespace {

TEST(TrafficStats, AccumulatesPerTypeAndTotal) {
  net::TrafficStats stats;
  stats.record(1, 0, 100);
  stats.record(1, 0, 50);
  stats.record(1, 1, 10);
  stats.record(2, 0, 7);

  EXPECT_EQ(stats.total().count, 4u);
  EXPECT_EQ(stats.total().bytes, 167u);
  EXPECT_EQ(stats.for_type(1, 0).count, 2u);
  EXPECT_EQ(stats.for_type(1, 0).bytes, 150u);
  EXPECT_EQ(stats.for_type(1, 1).count, 1u);
  EXPECT_EQ(stats.for_type(2, 0).bytes, 7u);
  EXPECT_EQ(stats.for_type(9, 9).count, 0u) << "unknown types read as zero";
}

TEST(TrafficStats, ResetClearsEverything) {
  net::TrafficStats stats;
  stats.record(1, 0, 100);
  stats.reset();
  EXPECT_EQ(stats.total().count, 0u);
  EXPECT_EQ(stats.for_type(1, 0).count, 0u);
  EXPECT_TRUE(stats.per_type().empty());
}

TEST(TrafficStats, PerTypeMapIsDeterministicallyOrdered) {
  net::TrafficStats stats;
  stats.record(2, 1, 1);
  stats.record(1, 3, 1);
  stats.record(1, 0, 1);
  std::vector<std::pair<std::uint8_t, std::uint8_t>> keys;
  for (const auto& [key, counter] : stats.per_type()) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::pair<std::uint8_t, std::uint8_t>>{
                      {1, 0}, {1, 3}, {2, 1}}));
}

TEST(Logging, LevelGatesOutput) {
  const log::Level before = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // These must be cheap no-ops below the threshold (and must not crash).
  log::trace("suppressed ", 1);
  log::debug("suppressed ", 2);
  log::info("suppressed ", 3);
  log::warn("suppressed ", 4);
  log::set_level(log::Level::kOff);
  log::error("also suppressed at kOff");
  log::set_level(before);
}

TEST(Logging, StreamsMixedTypes) {
  const log::Level before = log::level();
  log::set_level(log::Level::kOff);
  // Exercise the variadic formatting path with mixed argument types.
  log::error("node ", 3u, " finalized at height ", 4.5, " ok=", true);
  log::set_level(before);
}

}  // namespace
}  // namespace ratcon
