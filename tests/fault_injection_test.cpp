// Fault-injection tests: crash faults, asynchronous delivery, state
// transfer, and mixed fault scenarios against pRFT — the failure modes
// that sit between the happy path and the targeted game-theoretic attacks.
// All faults are expressed as ScenarioSpec fault plans, so the same levers
// are reachable from every bench and sweep.

#include <gtest/gtest.h>

#include <memory>

#include "adversary/behaviors.hpp"
#include "adversary/fork_agent.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"

namespace ratcon {
namespace {

using harness::ScenarioSpec;
using harness::Simulation;

TEST(CrashFaults, ToleratesUpToT0Crashes) {
  // Crashes are a strict subset of abstention: t0 = 2 of 9 may die.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 1001;
  spec.budget.target_blocks = 4;
  spec.workload.txs = 10;
  spec.faults.crash(0, msec(40)).crash(5, msec(40));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  // Crashed nodes stop; the live honest committee must still finish.
  std::uint64_t live_min = UINT64_MAX;
  for (NodeId id = 0; id < 9; ++id) {
    if (sim.net().crashed(id)) continue;
    live_min = std::min(live_min, sim.replica(id).chain().finalized_height());
  }
  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(live_min, 4u);
  // Crashes are not misbehaviour: nobody is slashed.
  for (NodeId id = 0; id < 9; ++id) {
    EXPECT_FALSE(sim.deposits().slashed(id));
  }
}

TEST(CrashFaults, BeyondQuorumStalls) {
  // 3 > t0 = 2 crashes at n = 9: quorum 7 unreachable from 6 live nodes.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 1003;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  spec.faults.crash_range(0, 3, msec(5));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));

  EXPECT_EQ(sim.max_height(), 0u);
  EXPECT_TRUE(sim.agreement_holds()) << "stall, never fork";
}

class AsyncSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncSeeds, SafetyUnderAsynchronousDelivery) {
  // Fully asynchronous (finite but unbounded-looking delays): liveness is
  // not guaranteed (FLP), but safety must never break, and with delays
  // capped well below the doubling timeouts the committee does make
  // progress eventually.
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = GetParam();
  spec.budget.target_blocks = 3;
  spec.workload.txs = 8;
  spec.net = harness::NetworkSpec::asynchronous(msec(30), msec(400));
  // The protocol still derives timeouts from the nominal Δ = 10 ms it
  // cannot rely on (the old harness behaved identically).
  spec.net.delta = msec(10);
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(600));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
  EXPECT_GE(sim.max_height(), 1u) << "eventual progress";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncSeeds,
                         ::testing::Values(31, 32, 33, 34, 35));

TEST(MixedFaults, CrashPlusAbstainPlusForkWithinBounds) {
  // The kitchen sink at n = 13 (t0 = 3, quorum 10): one crash, one
  // abstainer, and a 4-member fork coalition — total misbehaviour
  // 6 = ceil(13/2) - 1 < n/2 with double-signers 4 and silent faults 2.
  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = 13;
  plan->coalition = {0, 1, 2, 3};
  plan->side_a = {6, 7, 8, 9, 10, 11};
  plan->side_b = {12};

  ScenarioSpec spec;
  spec.committee.n = 13;
  spec.seed = 1011;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 8;
  spec.adversary.behaviors[4] = std::make_shared<adversary::AbstainBehavior>();
  spec.adversary.node_factory =
      [plan](NodeId id,
             const harness::NodeEnv& env) -> std::unique_ptr<consensus::IReplica> {
    if (plan->coalition.count(id)) {
      return std::make_unique<adversary::ForkAgentNode>(
          harness::make_prft_deps(id, env), plan);
    }
    return nullptr;  // abstainer via behaviors map, rest honest
  };
  spec.faults.crash(5, msec(10));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(600));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
  // Honest live nodes (not crashed, not coalition, not abstainer) progress.
  std::uint64_t live_min = UINT64_MAX;
  for (NodeId id = 6; id < 13; ++id) {
    live_min = std::min(live_min, sim.replica(id).chain().finalized_height());
  }
  EXPECT_GE(live_min, 3u);
}

}  // namespace
}  // namespace ratcon
