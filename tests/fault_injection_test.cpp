// Fault-injection tests: crash faults, asynchronous delivery, state
// transfer, and mixed fault scenarios against pRFT — the failure modes
// that sit between the happy path and the targeted game-theoretic attacks.

#include <gtest/gtest.h>

#include <memory>

#include "adversary/behaviors.hpp"
#include "adversary/fork_agent.hpp"
#include "harness/prft_cluster.hpp"
#include "net/netmodel.hpp"

namespace ratcon {
namespace {

using harness::PrftCluster;
using harness::PrftClusterOptions;

TEST(CrashFaults, ToleratesUpToT0Crashes) {
  // Crashes are a strict subset of abstention: t0 = 2 of 9 may die.
  PrftClusterOptions opt;
  opt.n = 9;
  opt.seed = 1001;
  opt.target_blocks = 4;
  PrftCluster cluster(opt);
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.net().schedule(msec(40), [&cluster]() {
    cluster.net().crash(0);
    cluster.net().crash(5);
  });
  cluster.start();
  cluster.run_until(sec(300));

  // Crashed nodes stop; the live honest committee must still finish.
  std::uint64_t live_min = UINT64_MAX;
  for (NodeId id = 0; id < 9; ++id) {
    if (cluster.net().crashed(id)) continue;
    live_min = std::min(live_min, cluster.node(id).chain().finalized_height());
  }
  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(live_min, 4u);
  // Crashes are not misbehaviour: nobody is slashed.
  for (NodeId id = 0; id < 9; ++id) {
    EXPECT_FALSE(cluster.deposits().slashed(id));
  }
}

TEST(CrashFaults, LeaderCrashTriggersViewChange) {
  PrftClusterOptions opt;
  opt.n = 7;
  opt.seed = 1002;
  opt.target_blocks = 3;
  PrftCluster cluster(opt);
  cluster.inject_workload(8, msec(1), msec(2));
  // Node 1 leads round 1; it is dead before the simulation starts, so the
  // very first round has no proposal and must recover by view change.
  cluster.net().crash(1);
  cluster.start();
  cluster.run_until(sec(300));

  std::uint64_t vcs = 0;
  for (NodeId id = 2; id < 7; ++id) vcs += cluster.node(id).view_changes();
  EXPECT_GT(vcs, 0u) << "round 1 must have been abandoned";
  EXPECT_TRUE(cluster.agreement_holds());
  std::uint64_t live_min = UINT64_MAX;
  for (NodeId id = 0; id < 7; ++id) {
    if (cluster.net().crashed(id)) continue;
    live_min = std::min(live_min, cluster.node(id).chain().finalized_height());
  }
  EXPECT_GE(live_min, 3u);
}

TEST(CrashFaults, BeyondQuorumStalls) {
  // 3 > t0 = 2 crashes at n = 9: quorum 7 unreachable from 6 live nodes.
  PrftClusterOptions opt;
  opt.n = 9;
  opt.seed = 1003;
  opt.target_blocks = 3;
  PrftCluster cluster(opt);
  cluster.inject_workload(6, msec(1), msec(2));
  cluster.net().schedule(msec(5), [&cluster]() {
    for (NodeId id = 0; id < 3; ++id) cluster.net().crash(id);
  });
  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_EQ(cluster.max_height(), 0u);
  EXPECT_TRUE(cluster.agreement_holds()) << "stall, never fork";
}

class AsyncSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncSeeds, SafetyUnderAsynchronousDelivery) {
  // Fully asynchronous (finite but unbounded-looking delays): liveness is
  // not guaranteed (FLP), but safety must never break, and with delays
  // capped well below the doubling timeouts the committee does make
  // progress eventually.
  PrftClusterOptions opt;
  opt.n = 7;
  opt.seed = GetParam();
  opt.target_blocks = 3;
  opt.make_net = [] { return net::make_asynchronous(msec(30), msec(400)); };
  PrftCluster cluster(opt);
  cluster.inject_workload(8, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(600));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_FALSE(cluster.honest_player_slashed());
  EXPECT_GE(cluster.max_height(), 1u) << "eventual progress";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncSeeds,
                         ::testing::Values(31, 32, 33, 34, 35));

TEST(StateTransfer, CutOutNodeCatchesUpViaSync) {
  // Partition one node away for a long stretch while the rest finalize
  // several blocks; on heal it must adopt the certified chain through the
  // Sync path and resume participation.
  PrftClusterOptions opt;
  opt.n = 7;
  opt.seed = 1010;
  opt.target_blocks = 5;
  PrftCluster cluster(opt);
  cluster.inject_workload(12, msec(1), msec(2));
  cluster.net().schedule(usec(10), [&cluster]() {
    cluster.net().set_partition({{0, 1, 2, 3, 4, 5}, {6}}, msec(2500));
  });
  cluster.start();
  cluster.run_until(sec(600));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.node(6).chain().finalized_height(), 5u)
      << "the isolated node must fully catch up";
}

TEST(MixedFaults, CrashPlusAbstainPlusForkWithinBounds) {
  // The kitchen sink at n = 13 (t0 = 3, quorum 10): one crash, one
  // abstainer, and a 4-member fork coalition — total misbehaviour
  // 6 = ceil(13/2) - 1 < n/2 with double-signers 4 and silent faults 2.
  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = 13;
  plan->coalition = {0, 1, 2, 3};
  plan->side_a = {6, 7, 8, 9, 10, 11};
  plan->side_b = {12};

  PrftClusterOptions opt;
  opt.n = 13;
  opt.seed = 1011;
  opt.target_blocks = 3;
  opt.node_factory = [plan](NodeId id, prft::PrftNode::Deps deps) {
    if (plan->coalition.count(id)) {
      return std::unique_ptr<prft::PrftNode>(
          new adversary::ForkAgentNode(std::move(deps), plan));
    }
    if (id == 4) {
      deps.behavior = std::make_shared<adversary::AbstainBehavior>();
    }
    return std::make_unique<prft::PrftNode>(std::move(deps));
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(8, msec(1), msec(2));
  cluster.net().schedule(msec(10), [&cluster]() { cluster.net().crash(5); });
  cluster.start();
  cluster.run_until(sec(600));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_FALSE(cluster.honest_player_slashed());
  // Honest live nodes (not crashed, not coalition, not abstainer) progress.
  std::uint64_t live_min = UINT64_MAX;
  for (NodeId id = 6; id < 13; ++id) {
    live_min = std::min(live_min, cluster.node(id).chain().finalized_height());
  }
  EXPECT_GE(live_min, 3u);
}

}  // namespace
}  // namespace ratcon
