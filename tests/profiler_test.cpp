#include "harness/profiler.hpp"

#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "harness/jsonio.hpp"

namespace ratcon::harness {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Get().SetLevel(3);
    Profiler::Get().Reset();
  }
  void TearDown() override {
    Profiler::Get().SetLevel(3);
    Profiler::Get().Reset();
  }
};

TEST_F(ProfilerTest, TiersCoverEveryItem) {
  for (std::uint16_t i = 0; i < kNumProfItems; ++i) {
    const auto item = static_cast<ProfItem>(i);
    const int tier = tier_of(item);
    EXPECT_GE(tier, 1) << to_string(item);
    EXPECT_LE(tier, 3) << to_string(item);
    EXPECT_STRNE(to_string(item), "unknown");
  }
  // Spot-check the tier boundaries.
  EXPECT_EQ(tier_of(kL1SerializeNs), 1);
  EXPECT_EQ(tier_of(kL1PayoffNs), 1);
  EXPECT_EQ(tier_of(kL2EncodeNs), 2);
  EXPECT_EQ(tier_of(kL2PayoffAccountNs), 2);
  EXPECT_EQ(tier_of(kL3ShaCalls), 3);
  EXPECT_EQ(tier_of(kL3PastTimeClamps), 3);
}

TEST_F(ProfilerTest, LogOverwritesLogAddAccumulates) {
  Profiler& prof = Profiler::Get();
  prof.Log(kL1CryptoNs, 5.0);
  prof.Log(kL1CryptoNs, 7.0);
  EXPECT_DOUBLE_EQ(prof.slot(kL1CryptoNs).sum, 7.0);
  EXPECT_EQ(prof.slot(kL1CryptoNs).count, 1u);

  prof.LogAdd(kL3ShaBytes, 100.0);
  prof.LogAdd(kL3ShaBytes, 28.0, 3);
  EXPECT_DOUBLE_EQ(prof.slot(kL3ShaBytes).sum, 128.0);
  EXPECT_EQ(prof.slot(kL3ShaBytes).count, 4u);
}

TEST_F(ProfilerTest, ResetClearsEverySlotKeepsLevel) {
  Profiler& prof = Profiler::Get();
  prof.SetLevel(2);
  for (std::uint16_t i = 0; i < kNumProfItems; ++i) {
    prof.LogAdd(static_cast<ProfItem>(i), 1.0);
  }
  prof.Reset();
  for (std::uint16_t i = 0; i < kNumProfItems; ++i) {
    const auto item = static_cast<ProfItem>(i);
    EXPECT_DOUBLE_EQ(prof.slot(item).sum, 0.0) << to_string(item);
    EXPECT_EQ(prof.slot(item).count, 0u) << to_string(item);
  }
  EXPECT_EQ(prof.level(), 2);
}

TEST_F(ProfilerTest, LevelGatesTiers) {
  Profiler& prof = Profiler::Get();
  prof.SetLevel(1);
  prof.LogAdd(kL1CryptoNs, 1.0);
  prof.LogAdd(kL2SignNs, 1.0);
  prof.LogAdd(kL3HmacCalls, 1.0);
  EXPECT_EQ(prof.slot(kL1CryptoNs).count, 1u);
  EXPECT_EQ(prof.slot(kL2SignNs).count, 0u);
  EXPECT_EQ(prof.slot(kL3HmacCalls).count, 0u);

  prof.SetLevel(0);
  prof.LogAdd(kL1CryptoNs, 1.0);
  EXPECT_EQ(prof.slot(kL1CryptoNs).count, 1u);  // unchanged, gated off
}

TEST_F(ProfilerTest, ScopedTimerAddsToPhaseAndSub) {
  {
    ProfTimer timer(kL1MerkleNs, kL2MerkleBuildNs);
  }
  Profiler& prof = Profiler::Get();
  EXPECT_EQ(prof.slot(kL1MerkleNs).count, 1u);
  EXPECT_EQ(prof.slot(kL2MerkleBuildNs).count, 1u);
  EXPECT_GE(prof.slot(kL1MerkleNs).sum, 0.0);
  EXPECT_DOUBLE_EQ(prof.slot(kL1MerkleNs).sum, prof.slot(kL2MerkleBuildNs).sum);
}

TEST_F(ProfilerTest, SnapshotIsIndependentOfLaterLogging) {
  Profiler& prof = Profiler::Get();
  prof.LogAdd(kL3EventsScheduled, 4.0);
  const ProfReport snap = prof.snapshot();
  prof.LogAdd(kL3EventsScheduled, 6.0);
  EXPECT_DOUBLE_EQ(snap.sum(kL3EventsScheduled), 4.0);
  EXPECT_DOUBLE_EQ(prof.slot(kL3EventsScheduled).sum, 10.0);
  EXPECT_EQ(snap.level, 3);
}

TEST_F(ProfilerTest, ProfilerIsPerThread) {
  Profiler::Get().LogAdd(kL3EventsScheduled, 5.0);
  std::uint64_t other_count = 1;
  std::thread worker([&] {
    Profiler::Get().Reset();
    other_count = Profiler::Get().slot(kL3EventsScheduled).count;
  });
  worker.join();
  EXPECT_EQ(other_count, 0u);  // the worker saw a fresh instance
  EXPECT_EQ(Profiler::Get().slot(kL3EventsScheduled).count, 1u);
}

TEST_F(ProfilerTest, DefaultLevelGovernsNewThreads) {
  ASSERT_EQ(Profiler::DefaultLevel(), 3);
  Profiler::SetDefaultLevel(1);
  int fresh_level = -1;
  std::thread worker([&] { fresh_level = Profiler::Get().level(); });
  worker.join();
  Profiler::SetDefaultLevel(3);
  EXPECT_EQ(fresh_level, 1);  // new thread_local instances adopt the default
  // An already-constructed instance keeps its own level until SetLevel.
  EXPECT_EQ(Profiler::Get().level(), 3);
}

TEST_F(ProfilerTest, MergeAddsSumsAndCounts) {
  Profiler& prof = Profiler::Get();
  prof.LogAdd(kL1SyncNs, 10.0);
  ProfReport a = prof.snapshot();
  prof.Reset();
  prof.LogAdd(kL1SyncNs, 32.0, 2);
  const ProfReport b = prof.snapshot();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.sum(kL1SyncNs), 42.0);
  EXPECT_EQ(a.count(kL1SyncNs), 3u);
}

TEST_F(ProfilerTest, FormatListsPhasesAndElidesIdleItems) {
  Profiler& prof = Profiler::Get();
  prof.LogAdd(kL1CryptoNs, 1e6);
  prof.LogAdd(kL2SignNs, 1e6);
  prof.LogAdd(kL3HmacCalls, 12.0);
  const std::string text = prof.snapshot().format();
  for (ProfItem phase : kProfPhases) {
    EXPECT_NE(text.find(to_string(phase)), std::string::npos) << text;
  }
  EXPECT_NE(text.find("sign"), std::string::npos);
  EXPECT_NE(text.find("hmac_calls"), std::string::npos);
  // Idle L2/L3 items are elided.
  EXPECT_EQ(text.find("merkle_prove"), std::string::npos);
  EXPECT_EQ(text.find("past_time_clamps"), std::string::npos);
}

TEST_F(ProfilerTest, JsonEmitsAllPhasesAndParses) {
  Profiler& prof = Profiler::Get();
  prof.LogAdd(kL1SerializeNs, 2.5e3);
  prof.LogAdd(kL3BytesEncoded, 512.0);
  JsonWriter json;
  write_profile_json(json, prof.snapshot());
  const std::string doc = json.str();
  for (ProfItem phase : kProfPhases) {
    EXPECT_NE(doc.find('"' + std::string(to_string(phase)) + '"'),
              std::string::npos)
        << doc;
  }
  EXPECT_NE(doc.find("\"bytes_encoded\""), std::string::npos);
  EXPECT_EQ(doc.find("\"bytes_decoded\""), std::string::npos);  // idle: elided
  EXPECT_NE(doc.find("\"level\":3"), std::string::npos);
}

}  // namespace
}  // namespace ratcon::harness
