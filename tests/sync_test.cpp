// Unit coverage for the protocol-agnostic catch-up subsystem (src/sync):
// gap detection from announces, batched range fetch, Merkle-anchored
// verification of transferred blocks, and rejection of forged / stale /
// under-corroborated SyncResponses — with no state change (and certainly
// no slashing) from replayed envelopes. The CatchupDriver is exercised in
// isolation over a stub replica, then end-to-end through the Simulation.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "crypto/merkle.hpp"
#include "harness/scenario.hpp"
#include "net/cluster.hpp"
#include "net/netmodel.hpp"
#include "sync/catchup.hpp"

namespace ratcon::sync {
namespace {

// Minimal replica: a ledger plus the adoption hook, no consensus. Isolates
// CatchupDriver behaviour from any protocol.
class StubReplica final : public consensus::IReplica {
 public:
  [[nodiscard]] const ledger::Chain& chain() const override { return chain_; }
  ledger::Mempool& mempool() override { return mempool_; }
  [[nodiscard]] bool is_honest() const override { return true; }
  void set_target_blocks(std::uint64_t target) override { target_ = target; }
  void on_message(net::Context&, NodeId, const Bytes&) override {}
  bool on_sync_adopt(net::Context&, const std::vector<ledger::Block>& blocks,
                     std::uint64_t first_height) override {
    if (blocks.empty() || first_height != chain_.finalized_height() + 1) {
      return false;
    }
    for (const ledger::Block& b : blocks) {
      if (!chain_.append_tentative(b)) return false;
    }
    chain_.finalize_up_to(chain_.height());
    return true;
  }

  ledger::Chain chain_;
  ledger::Mempool mempool_;
  std::uint64_t target_ = 0;
};

// A deterministic chain of `count` finalized blocks above genesis.
std::vector<ledger::Block> make_blocks(std::uint64_t count,
                                       std::uint64_t tx_base = 100) {
  std::vector<ledger::Block> out;
  ledger::Chain scratch;
  for (std::uint64_t i = 0; i < count; ++i) {
    ledger::Block b;
    b.parent = scratch.tip_hash();
    b.round = i + 1;
    b.proposer = 0;
    b.txs = {ledger::make_transfer(tx_base + i, 0)};
    EXPECT_TRUE(scratch.append_tentative(b));
    out.push_back(b);
  }
  return out;
}

// Cluster of CatchupDrivers over stubs; `heights[i]` pre-seeds node i with
// the first heights[i] blocks of the shared canonical chain.
// `extra_committee` widens the committee beyond the drivers, so tests can
// add raw injector nodes whose ids still pass the drivers' committee check.
struct Fixture {
  explicit Fixture(const std::vector<std::uint64_t>& heights, SyncPlan plan,
                   std::uint64_t target, std::uint64_t chain_len = 0,
                   std::uint32_t extra_committee = 0)
      : cluster(net::make_synchronous(msec(1)), /*seed=*/7) {
    std::uint64_t longest = 0;
    for (std::uint64_t h : heights) longest = std::max(longest, h);
    blocks = make_blocks(chain_len == 0 ? longest : chain_len);

    consensus::Config cfg;
    cfg.n = static_cast<std::uint32_t>(heights.size()) + extra_committee;
    cfg.t0 = 0;
    cfg.base_timeout = msec(10);
    for (NodeId id = 0; id < heights.size(); ++id) {
      auto stub = std::make_unique<StubReplica>();
      for (std::uint64_t h = 0; h < heights[id]; ++h) {
        EXPECT_TRUE(stub->chain_.append_tentative(blocks[h]));
      }
      stub->chain_.finalize_up_to(stub->chain_.height());
      stubs.push_back(stub.get());

      CatchupDriver::Deps deps;
      deps.cfg = cfg;
      deps.registry = &registry;
      deps.keys = registry.generate(id, /*seed=*/1);
      deps.plan = plan;
      auto driver = std::make_unique<CatchupDriver>(std::move(stub), deps);
      driver->set_target_blocks(target);
      drivers.push_back(driver.get());
      cluster.add_node(std::move(driver));
    }
  }

  crypto::KeyRegistry registry;
  net::Cluster cluster;
  std::vector<ledger::Block> blocks;
  std::vector<StubReplica*> stubs;
  std::vector<CatchupDriver*> drivers;
};

TEST(SyncWire, BodiesRoundTrip) {
  AnnounceBody ann;
  ann.height = 42;
  ann.tip = crypto::sha256("tip");
  Writer wa;
  ann.encode(wa);
  Reader ra(ByteSpan(wa.data().data(), wa.data().size()));
  const AnnounceBody ann2 = AnnounceBody::decode(ra);
  EXPECT_EQ(ann2.height, 42u);
  EXPECT_EQ(ann2.tip, ann.tip);
  ra.expect_done();

  RequestBody req;
  req.from_height = 3;
  req.to_height = 9;
  Writer wr;
  req.encode(wr);
  Reader rr(ByteSpan(wr.data().data(), wr.data().size()));
  const RequestBody req2 = RequestBody::decode(rr);
  EXPECT_EQ(req2.from_height, 3u);
  EXPECT_EQ(req2.to_height, 9u);
  rr.expect_done();

  ResponseBody resp;
  resp.first_height = 1;
  resp.blocks = make_blocks(3);
  resp.anchor_root = crypto::sha256("anchor");
  Writer wp;
  resp.encode(wp);
  Reader rp(ByteSpan(wp.data().data(), wp.data().size()));
  const ResponseBody resp2 = ResponseBody::decode(rp);
  ASSERT_EQ(resp2.blocks.size(), 3u);
  EXPECT_EQ(resp2.first_height, 1u);
  EXPECT_EQ(resp2.anchor_root, resp.anchor_root);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resp2.blocks[i].hash(), resp.blocks[i].hash());
  }
  rp.expect_done();
}

// Gap detection: a fresh replica among peers that announce height 4 must
// request the range and adopt it once two peers corroborate the tip.
TEST(CatchupDriver, GapDetectionFetchesMissingBlocks) {
  SyncPlan plan;
  plan.witnesses = 2;
  plan.batch = 8;
  Fixture fx({0, 4, 4}, plan, /*target=*/4);
  fx.cluster.start();
  fx.cluster.run();

  EXPECT_EQ(fx.stubs[0]->chain_.finalized_height(), 4u);
  EXPECT_EQ(fx.stubs[0]->chain_.tip_hash(), fx.blocks.back().hash());
  EXPECT_GE(fx.drivers[0]->requests_sent(), 1u);
  EXPECT_EQ(fx.drivers[0]->blocks_adopted(), 4u);
  // Responders never fell behind: they requested nothing.
  EXPECT_EQ(fx.drivers[1]->requests_sent(), 0u);
  EXPECT_EQ(fx.drivers[2]->requests_sent(), 0u);
}

// Batched range fetch: a gap of 10 with batch 3 takes ceil(10/3) = 4
// round trips (witnesses = 1, so each batch adopts on the first response).
TEST(CatchupDriver, BatchedRangeFetch) {
  SyncPlan plan;
  plan.witnesses = 1;
  plan.batch = 3;
  Fixture fx({0, 10}, plan, /*target=*/10);
  fx.cluster.start();
  fx.cluster.run();

  EXPECT_EQ(fx.stubs[0]->chain_.finalized_height(), 10u);
  EXPECT_EQ(fx.drivers[0]->requests_sent(), 4u);
  EXPECT_EQ(fx.drivers[0]->blocks_adopted(), 10u);
  EXPECT_EQ(fx.drivers[1]->responses_sent(), 4u);
}

// Witness threshold: with witnesses = 2 and only ONE peer ahead, the
// responder's word alone must not be adopted — the chain stays put until a
// second voucher exists.
TEST(CatchupDriver, SingleWitnessInsufficientForAdoption) {
  SyncPlan plan;
  plan.witnesses = 2;
  Fixture fx({0, 3}, plan, /*target=*/3);
  fx.cluster.start();
  fx.cluster.run_until(msec(200));

  EXPECT_EQ(fx.stubs[0]->chain_.finalized_height(), 0u);
  EXPECT_GE(fx.drivers[0]->requests_sent(), 1u);
  EXPECT_GE(fx.drivers[0]->responses_rejected(), 1u);
  EXPECT_EQ(fx.drivers[0]->blocks_adopted(), 0u);
}

// An INode that injects one crafted kSync envelope, optionally delayed.
class Injector final : public net::INode {
 public:
  Injector(NodeId to, Bytes wire, SimTime delay = 0)
      : to_(to), wire_(std::move(wire)), delay_(delay) {}
  void on_start(net::Context& ctx) override {
    if (delay_ > 0) {
      ctx.set_timer(1, delay_);
    } else {
      ctx.send(to_, wire_);
    }
  }
  void on_timer(net::Context& ctx, std::uint64_t) override {
    ctx.send(to_, wire_);
  }
  void on_message(net::Context&, NodeId, const Bytes&) override {}

 private:
  NodeId to_;
  Bytes wire_;
  SimTime delay_;
};

Bytes craft_response(crypto::KeyRegistry& registry, NodeId from,
                     std::uint64_t seed, std::uint64_t first_height,
                     const std::vector<ledger::Block>& blocks,
                     bool corrupt_anchor = false) {
  ResponseBody body;
  body.first_height = first_height;
  body.blocks = blocks;
  std::vector<crypto::Hash256> leaves;
  leaves.push_back(ledger::genesis().hash());
  for (const ledger::Block& b : blocks) leaves.push_back(b.hash());
  body.anchor_root = crypto::MerkleTree::compute_root(leaves);
  if (corrupt_anchor) body.anchor_root[0] ^= 0xFF;
  Writer w;
  body.encode(w);
  const crypto::KeyPair keys = registry.generate(from, seed);
  return consensus::make_envelope(
             consensus::ProtoId::kSync,
             static_cast<std::uint8_t>(MsgType::kResponse), first_height,
             from, w.take(), keys.sk)
      .encode();
}

// Forged response: well-formed, self-consistent blocks that are NOT the
// canonical chain, pushed unsolicited by a registered-but-lying node. With
// witnesses = 2 nobody else vouches for the forged tip, so it is rejected
// and the honest chain is adopted instead.
TEST(CatchupDriver, ForgedResponseRejectedByWitnessThreshold) {
  SyncPlan plan;
  plan.witnesses = 2;
  Fixture fx({0, 3, 3}, plan, /*target=*/3, /*chain_len=*/0,
             /*extra_committee=*/1);
  // Node 3: forger (registered key, fabricated blocks).
  const std::vector<ledger::Block> forged = make_blocks(3, /*tx_base=*/999);
  ASSERT_NE(forged[0].hash(), fx.blocks[0].hash());
  fx.cluster.add_node(std::make_unique<Injector>(
      0, craft_response(fx.registry, 3, 1, 1, forged)));

  fx.cluster.start();
  fx.cluster.run();

  // The laggard caught up on the CANONICAL chain, not the forged one.
  EXPECT_EQ(fx.stubs[0]->chain_.finalized_height(), 3u);
  EXPECT_EQ(fx.stubs[0]->chain_.tip_hash(), fx.blocks[2].hash());
  EXPECT_GE(fx.drivers[0]->responses_rejected(), 1u);
}

// Merkle anchor: genuine canonical blocks with a corrupted anchor root are
// rejected even when the witness threshold would be satisfied.
TEST(CatchupDriver, CorruptMerkleAnchorRejected) {
  SyncPlan plan;
  plan.witnesses = 1;
  // Nobody ahead: the only sync traffic is the injected response, built
  // from GENUINE canonical blocks — only the anchor root is corrupted.
  Fixture fx({0, 0}, plan, /*target=*/3, /*chain_len=*/3,
             /*extra_committee=*/1);
  fx.cluster.add_node(std::make_unique<Injector>(
      0, craft_response(fx.registry, 2, 1, 1,
                        {fx.blocks[0], fx.blocks[1], fx.blocks[2]},
                        /*corrupt_anchor=*/true)));
  fx.cluster.start();
  fx.cluster.run_until(msec(100));

  EXPECT_EQ(fx.stubs[0]->chain_.finalized_height(), 0u);
  EXPECT_GE(fx.drivers[0]->responses_rejected(), 1u);
  EXPECT_EQ(fx.drivers[0]->blocks_adopted(), 0u);
}

// Stale replay: a once-valid response re-delivered after catch-up is a
// no-op (first_height no longer matches), and nothing is ever slashed —
// sync traffic does not feed fraud trackers.
TEST(CatchupDriver, StaleReplayIsNoOp) {
  SyncPlan plan;
  plan.witnesses = 1;
  Fixture fx({0, 4}, plan, /*target=*/4, /*chain_len=*/0,
             /*extra_committee=*/1);
  // A once-valid response for heights 1..4, re-delivered 100 ms after the
  // laggard has long caught up (catch-up completes within a few ms here).
  fx.cluster.add_node(std::make_unique<Injector>(
      0,
      craft_response(fx.registry, 2, 1, 1,
                     {fx.blocks[0], fx.blocks[1], fx.blocks[2],
                      fx.blocks[3]}),
      /*delay=*/msec(100)));
  fx.cluster.start();
  fx.cluster.run();

  // Caught up exactly once: the replay adopted nothing and changed nothing.
  EXPECT_EQ(fx.stubs[0]->chain_.finalized_height(), 4u);
  EXPECT_EQ(fx.stubs[0]->chain_.tip_hash(), fx.blocks[3].hash());
  EXPECT_EQ(fx.drivers[0]->blocks_adopted(), 4u);
  EXPECT_GE(fx.drivers[0]->responses_rejected(), 1u);
}

// End-to-end through the Simulation: a replica partitioned away while the
// rest finalize several blocks must recover through the catch-up subsystem
// once the partition heals — for a protocol with no internal state
// transfer of its own (HotStuff) — and nobody is slashed by the replays
// and re-deliveries the heal floods in.
TEST(CatchupIntegration, HealedPartitionRecoversWithoutSlashing) {
  harness::ScenarioSpec spec;
  spec.protocol = harness::Protocol::kHotStuff;
  spec.committee.n = 7;
  spec.seed = 11;
  spec.budget.target_blocks = 4;
  spec.workload.txs = 12;
  spec.faults.partition({{0, 1, 2, 3, 4, 5}, {6}}, usec(10), msec(2500));
  harness::Simulation sim(spec);
  const harness::RunReport report = sim.run_to_completion();

  EXPECT_TRUE(report.safe()) << report.label();
  EXPECT_GE(report.live_min_height, 4u)
      << "isolated replica failed to catch up";
  EXPECT_GT(report.sync_messages, 0u);
  EXPECT_GT(report.sync_bytes, 0u);
  EXPECT_NE(report.finalized_at, kSimTimeNever);
  EXPECT_NE(report.recovery_latency(), kSimTimeNever);
  ASSERT_NE(sim.catchup(6), nullptr);
  EXPECT_GT(sim.catchup(6)->blocks_adopted(), 0u);
}

// Piggybacked announces (ROADMAP item): with piggyback on — the default —
// finalized-height announces ride outgoing protocol messages instead of
// being broadcast on their own. Same scenario, identical recovery, and
// the standalone sync sends drop while the saved announces are counted.
TEST(CatchupIntegration, PiggybackCutsAnnounceBroadcasts) {
  const auto run = [](bool piggyback) {
    harness::ScenarioSpec spec;
    spec.protocol = harness::Protocol::kHotStuff;
    spec.committee.n = 7;
    spec.seed = 13;
    spec.budget.target_blocks = 4;
    spec.workload.txs = 12;
    spec.sync_plan.piggyback = piggyback;
    spec.faults.partition({{0, 1, 2, 3, 4, 5}, {6}}, usec(10), msec(2500));
    harness::Simulation sim(spec);
    return sim.run_to_completion();
  };
  const harness::RunReport off = run(false);
  const harness::RunReport on = run(true);

  EXPECT_TRUE(off.safe());
  EXPECT_TRUE(on.safe());
  EXPECT_GE(off.live_min_height, 4u);
  EXPECT_GE(on.live_min_height, 4u) << "recovery must survive piggybacking";
  EXPECT_EQ(off.sync_piggybacked, 0u);
  EXPECT_GT(on.sync_piggybacked, 0u);
  EXPECT_LT(on.sync_messages, off.sync_messages)
      << "piggybacked announces must come off the standalone sync sends";
}

// The piggyback container is transparent to the protocol: per-class
// protocol traffic attribution is preserved (the inner message is counted
// in its own class, the riding announce as overhead bytes only).
TEST(CatchupIntegration, PiggybackPreservesProtocolTrafficAttribution) {
  harness::ScenarioSpec spec;
  spec.committee.n = 4;
  spec.seed = 17;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  harness::Simulation sim(spec);
  const harness::RunReport report = sim.run_to_completion();
  EXPECT_TRUE(report.safe());

  // Piggybacking happened, and no 0xFF class leaked into the stats.
  EXPECT_GT(report.sync_piggybacked, 0u);
  const auto& per_type = sim.net().stats().per_type();
  for (const auto& [key, counter] : per_type) {
    EXPECT_NE(key.first, net::kPiggybackMarker);
    (void)counter;
  }
  // The consensus class still carries the protocol's traffic.
  const auto prft = sim.net().stats().for_proto(
      static_cast<std::uint8_t>(consensus::ProtoId::kPrft));
  EXPECT_GT(prft.count, 0u);
}

}  // namespace
}  // namespace ratcon::sync
