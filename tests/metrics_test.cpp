// Metrics timelines, liveness watchdog, and the perf-trajectory regression
// gate. The contracts under test:
//  * MetricRing drops exactly (total - capacity) oldest samples — exact
//    accounting, TraceRing-style.
//  * Level 0 allocates nothing and leaves every run report empty.
//  * The sampling tick is pure observation: a run with metrics on finalizes
//    the same chains with the same traffic as a run with metrics off.
//  * Serial and parallel sweeps produce byte-identical MetricsStats per
//    cell, for all four protocols (operator== on the full snapshot).
//  * A pre-GST partition that never heals is named by the post-GST
//    watchdog — stalling replicas listed, run stopped long before the
//    horizon.
//  * JsonValue parses what JsonWriter writes; bench_compare's rules pass
//    an unchanged artifact and fail a doctored one.
//  * ObservabilityFlags round-trips through to_args() like WorkloadFlags.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/compare.hpp"
#include "harness/flags.hpp"
#include "harness/jsonio.hpp"
#include "harness/matrix.hpp"
#include "harness/metrics.hpp"
#include "harness/scenario.hpp"

namespace ratcon::harness {
namespace {

ScenarioSpec smoke_spec(int metrics_level) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kPrft;
  spec.committee.n = 4;
  spec.seed = 7;
  spec.net = NetworkSpec::synchronous(msec(10));
  spec.workload.txs = 12;
  spec.workload.start = msec(1);
  spec.workload.interval = msec(2);
  spec.budget.target_blocks = 3;
  spec.metrics_level = metrics_level;
  return spec;
}

// -- MetricRing -------------------------------------------------------------

TEST(MetricRing, OverflowAccountingIsExact) {
  MetricRing ring;
  ring.reset(4);
  for (std::int64_t i = 0; i < 10; ++i) {
    ring.push({/*at=*/i * 10, /*value=*/i});
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first retained window = the last 4 pushes.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(i).value, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(ring.at(i).at, static_cast<SimTime>((6 + i) * 10));
  }
}

TEST(MetricRing, ZeroCapacityDropsEverything) {
  MetricRing ring;
  ring.reset(0);
  ring.push({1, 1});
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
}

// -- Registry levels --------------------------------------------------------

TEST(MetricsLevels, LevelZeroAllocatesNothing) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.Reset(/*level=*/0, /*nodes=*/31);
  EXPECT_FALSE(reg.enabled());
  EXPECT_EQ(reg.ring_count(), 0u);
  const MetricsStats snap = reg.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_TRUE(snap.replica.empty());
  EXPECT_TRUE(snap.global.empty());
}

TEST(MetricsLevels, SimulationAtLevelZeroReportsEmpty) {
  Simulation sim(smoke_spec(/*metrics_level=*/0));
  const RunReport report = sim.run_to_completion();
  EXPECT_TRUE(report.safe());
  EXPECT_TRUE(report.metrics.empty());
  EXPECT_EQ(MetricsRegistry::Get().ring_count(), 0u);
}

// -- Timelines from a live run ----------------------------------------------

TEST(MetricsTimelines, SmokeCellProducesSeriesAndRoundDurations) {
  Simulation sim(smoke_spec(/*metrics_level=*/1));
  const RunReport report = sim.run_to_completion();
  ASSERT_TRUE(report.safe());
  const MetricsStats& m = report.metrics;
  ASSERT_FALSE(m.empty());
  EXPECT_EQ(m.level, 1);
  EXPECT_EQ(m.nodes, 4u);
  EXPECT_GT(m.ticks, 0u);
  EXPECT_GT(m.recorded, 0u);

  // One sample per series per tick.
  ASSERT_EQ(m.replica.size(), 4 * kNumReplicaMetrics);
  ASSERT_EQ(m.global.size(), kNumGlobalMetrics);
  for (NodeId id = 0; id < 4; ++id) {
    EXPECT_EQ(m.series(id, ReplicaMetric::kFinalizedHeight).total, m.ticks);
    // The final height sample matches the report's chain state.
    EXPECT_EQ(
        static_cast<std::uint64_t>(
            m.series(id, ReplicaMetric::kFinalizedHeight).last()),
        sim.replica(id).chain().finalized_height());
    // Honest, unslashed replicas keep their full collateral.
    EXPECT_EQ(m.series(id, ReplicaMetric::kDepositBalance).last(), 100);
    // Wire bytes are cumulative and nonzero once blocks finalized.
    EXPECT_GT(m.series(id, ReplicaMetric::kWireBytesSent).last(), 0);
  }
  EXPECT_EQ(m.series(GlobalMetric::kEventQueueDepth).total, m.ticks);
  // Timestamps advance tick by tick.
  const MetricSeries& queue = m.series(GlobalMetric::kEventQueueDepth);
  for (std::size_t i = 1; i < queue.samples.size(); ++i) {
    EXPECT_LT(queue.samples[i - 1].at, queue.samples[i].at);
  }
  // Rounds advanced to finalize 3 blocks, so entry->entry durations exist.
  EXPECT_GT(m.round_duration.total(), 0u);
  EXPECT_GT(m.round_duration.p50(), 0);
  EXPECT_FALSE(m.stalled);
}

TEST(MetricsTimelines, RingCapacityBoundsSeriesWithExactDropCount) {
  ScenarioSpec spec = smoke_spec(/*metrics_level=*/1);
  spec.metrics_capacity = 2;
  Simulation sim(spec);
  const RunReport report = sim.run_to_completion();
  const MetricsStats& m = report.metrics;
  ASSERT_GT(m.ticks, 2u) << "need overflow for this test to bite";
  const MetricSeries& s = m.series(GlobalMetric::kEventQueueDepth);
  EXPECT_EQ(s.samples.size(), 2u);
  EXPECT_EQ(s.total, m.ticks);
  EXPECT_EQ(s.dropped(), m.ticks - 2);
  EXPECT_GT(m.dropped, 0u);
}

TEST(MetricsTimelines, SamplingTickIsPureObservation) {
  // The tick must not perturb the protocol: identical chains, traffic and
  // workload stats with metrics on and off.
  Simulation off(smoke_spec(/*metrics_level=*/0));
  const RunReport r_off = off.run_to_completion();
  Simulation on(smoke_spec(/*metrics_level=*/1));
  const RunReport r_on = on.run_to_completion();
  EXPECT_EQ(r_off.min_height, r_on.min_height);
  EXPECT_EQ(r_off.max_height, r_on.max_height);
  EXPECT_EQ(r_off.messages, r_on.messages);
  EXPECT_EQ(r_off.bytes, r_on.bytes);
  EXPECT_EQ(r_off.sync_messages, r_on.sync_messages);
  EXPECT_TRUE(r_off.workload == r_on.workload);
}

// -- Determinism: serial == parallel ----------------------------------------

TEST(MetricsDeterminism, SerialAndParallelSeriesByteIdenticalAllProtocols) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff, Protocol::kRaftLite,
                    Protocol::kQuorum};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony};
  spec.seeds = {1, 2};
  spec.target_blocks = 2;
  spec.workload_txs = 8;
  spec.metrics_level = 1;

  MatrixSpec parallel = spec;
  parallel.workers = 4;
  MatrixSpec serial = spec;
  serial.workers = 1;

  const MatrixReport par = run_matrix(parallel);
  const MatrixReport ser = run_matrix(serial);
  ASSERT_EQ(par.cell_count(), ser.cell_count());
  for (std::size_t i = 0; i < par.cells.size(); ++i) {
    EXPECT_FALSE(par.cells[i].metrics.empty())
        << "metrics off in " << par.cells[i].label();
    EXPECT_TRUE(par.cells[i].metrics == ser.cells[i].metrics)
        << "metrics series diverged in " << par.cells[i].label();
  }
  // Aggregations built from identical cells agree too.
  EXPECT_TRUE(par.aggregate_metrics() == ser.aggregate_metrics());
}

// -- Liveness watchdog ------------------------------------------------------

TEST(LivenessWatchdog, NamesUnhealedPartitionStallBeforeHorizon) {
  ScenarioSpec spec = smoke_spec(/*metrics_level=*/1);
  spec.net = NetworkSpec::partial_synchrony(/*gst=*/msec(50));
  // Quorum-splitting partition that never heals: no cell can finalize.
  spec.faults.partition({{0, 1}, {2, 3}}, /*at=*/0, /*heal_at=*/sec(100000));
  spec.watchdog_ticks = 20;
  spec.budget.horizon = sec(120);

  Simulation sim(spec);
  const RunReport report = sim.run_to_completion();
  EXPECT_TRUE(sim.stalled());
  const MetricsStats& m = report.metrics;
  ASSERT_TRUE(m.stalled);
  EXPECT_GE(m.stalled_at, msec(50));
  // All four replicas are live, honest and stuck at height 0.
  EXPECT_EQ(m.stalled_replicas, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_NE(m.stall_verdict.find("liveness stall"), std::string::npos)
      << m.stall_verdict;
  EXPECT_NE(m.stall_verdict.find("n0"), std::string::npos) << m.stall_verdict;
  // The verdict arrived long before the 120 s budget would have expired.
  EXPECT_LT(report.sim_time, sec(10));
}

TEST(LivenessWatchdog, StallSurfacesInMatrixSummaryAndAggregation) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kPartialSynchrony};
  spec.seeds = {1};
  // Crash a quorum's worth of replicas: the two survivors can never
  // finalize, so the cell stalls after GST (msec(200) by default).
  spec.crash_count = 2;
  spec.horizon = sec(120);
  spec.metrics_level = 1;

  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 1u);
  ASSERT_TRUE(report.cells[0].metrics.stalled);
  EXPECT_EQ(report.cells[0].metrics.stalled_replicas,
            (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(report.stalled_cells().size(), 1u);
  EXPECT_TRUE(report.aggregate_metrics().stalled);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("STALLED"), std::string::npos) << summary;
  EXPECT_NE(summary.find("liveness stall"), std::string::npos) << summary;
}

TEST(LivenessWatchdog, InertOnHealthyAndAsynchronousCells) {
  // Synchronous, healthy: no stall.
  Simulation healthy(smoke_spec(/*metrics_level=*/1));
  EXPECT_FALSE(healthy.run_to_completion().metrics.stalled);
  // Asynchronous (no GST): the watchdog never arms.
  ScenarioSpec async_spec = smoke_spec(/*metrics_level=*/1);
  async_spec.net.kind = NetKind::kAsynchronous;
  Simulation async_sim(async_spec);
  EXPECT_FALSE(async_sim.run_to_completion().metrics.stalled);
}

// -- JsonValue parser -------------------------------------------------------

TEST(JsonValue, ParsesScalarsContainersAndEscapes) {
  const auto parsed = JsonValue::parse(
      R"({"a":[1,2.5,-3e2],"b":"x\n\"y\"A","c":true,"d":null,)"
      R"("nested":{"k":7}})");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const JsonValue* a = parsed->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->items[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->items[2].as_number(), -300.0);
  EXPECT_EQ(parsed->get("b")->as_string(), "x\n\"y\"A");
  EXPECT_TRUE(parsed->get("c")->as_bool());
  EXPECT_TRUE(parsed->get("d")->is_null());
  const JsonValue* k = parsed->at_path("nested.k");
  ASSERT_NE(k, nullptr);
  EXPECT_DOUBLE_EQ(k->as_number(), 7.0);
  EXPECT_EQ(parsed->at_path("nested.missing"), nullptr);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,2] garbage").has_value());
  EXPECT_FALSE(JsonValue::parse("tru").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}").has_value());
}

TEST(JsonValue, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("name").value("matrix");
  writer.key("count").value(std::int64_t{42});
  writer.key("rate").value(1.5);
  writer.key("ok").value(true);
  writer.key("items").begin_array().value(std::int64_t{1}).null().end_array();
  writer.end_object();
  const auto parsed = JsonValue::parse(writer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("name")->as_string(), "matrix");
  EXPECT_DOUBLE_EQ(parsed->at_path("count")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parsed->get("rate")->as_number(), 1.5);
  EXPECT_TRUE(parsed->get("ok")->as_bool());
  ASSERT_EQ(parsed->get("items")->items.size(), 2u);
  EXPECT_TRUE(parsed->get("items")->items[1].is_null());
}

// -- bench_compare rules ----------------------------------------------------

constexpr const char* kMatrixArtifact =
    R"({"bench":"matrix_sweep","all_safe":true,"cells_per_sec":10.0,)"
    R"("total_messages":1000,"total_bytes":50000,)"
    R"("workload":{"finalized":100,"p99_us":2000}})";

TEST(BenchCompare, UnchangedArtifactPasses) {
  const auto base = JsonValue::parse(kMatrixArtifact);
  ASSERT_TRUE(base.has_value());
  const CompareReport report = compare_artifacts(*base, *base);
  EXPECT_EQ(report.bench, "matrix_sweep");
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.verdict(), 0) << report.summary();
}

TEST(BenchCompare, DoctoredRegressionFailsOnlyInWorseDirection) {
  const auto base = JsonValue::parse(kMatrixArtifact);
  ASSERT_TRUE(base.has_value());
  // cells_per_sec halved (beyond the 50% fail band) and a safety bit lost.
  const auto worse = JsonValue::parse(
      R"({"bench":"matrix_sweep","all_safe":false,"cells_per_sec":4.0,)"
      R"("total_messages":1000,"total_bytes":50000,)"
      R"("workload":{"finalized":100,"p99_us":2000}})");
  ASSERT_TRUE(worse.has_value());
  const CompareReport fail = compare_artifacts(*base, *worse);
  EXPECT_EQ(fail.verdict(), 2) << fail.summary();

  // The same magnitude in the better direction never trips the gate.
  const auto better = JsonValue::parse(
      R"({"bench":"matrix_sweep","all_safe":true,"cells_per_sec":25.0,)"
      R"("total_messages":500,"total_bytes":25000,)"
      R"("workload":{"finalized":120,"p99_us":1000}})");
  ASSERT_TRUE(better.has_value());
  EXPECT_EQ(compare_artifacts(*base, *better).verdict(), 0);

  // Mid-band movement warns without failing.
  const auto slower = JsonValue::parse(
      R"({"bench":"matrix_sweep","all_safe":true,"cells_per_sec":7.0,)"
      R"("total_messages":1000,"total_bytes":50000,)"
      R"("workload":{"finalized":100,"p99_us":2000}})");
  ASSERT_TRUE(slower.has_value());
  EXPECT_EQ(compare_artifacts(*base, *slower).verdict(), 1);
}

TEST(BenchCompare, KindMismatchAndUnknownKindFail) {
  const auto matrix = JsonValue::parse(kMatrixArtifact);
  const auto workload_kind = JsonValue::parse(R"({"bench":"workload"})");
  ASSERT_TRUE(matrix.has_value());
  ASSERT_TRUE(workload_kind.has_value());
  EXPECT_EQ(compare_artifacts(*matrix, *workload_kind).verdict(), 2);
  const auto unknown = JsonValue::parse(R"({"bench":"mystery"})");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(compare_artifacts(*unknown, *unknown).verdict(), 2);
}

TEST(BenchCompare, SerializationRulesCoverDerivedShapeMeans) {
  const char* base_text =
      R"({"bench":"serialization","paths_agree":true,"shapes":[)"
      R"({"shape":"vote","encode_ns":100.0,"formats":[)"
      R"({"format":"copying","decode_ns":50.0,"decode_verify_ns":500.0},)"
      R"({"format":"zero_copy","decode_ns":10.0,"decode_verify_ns":400.0}]}]})";
  const auto base = JsonValue::parse(base_text);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(compare_artifacts(*base, *base).verdict(), 0);
  // zero_copy decode 2x slower (beyond the 60% band) => fail.
  const auto worse = JsonValue::parse(
      R"({"bench":"serialization","paths_agree":true,"shapes":[)"
      R"({"shape":"vote","encode_ns":100.0,"formats":[)"
      R"({"format":"copying","decode_ns":50.0,"decode_verify_ns":500.0},)"
      R"({"format":"zero_copy","decode_ns":25.0,"decode_verify_ns":400.0}]}]})");
  ASSERT_TRUE(worse.has_value());
  EXPECT_EQ(compare_artifacts(*base, *worse).verdict(), 2);
}

TEST(BenchCompare, FileModeReportsDoctoredArtifact) {
  const std::string dir = ::testing::TempDir();
  const std::string base_path = dir + "/BENCH_compare_base.json";
  const std::string cur_path = dir + "/BENCH_compare_cur.json";
  ASSERT_TRUE(write_text_file(base_path, kMatrixArtifact));
  ASSERT_TRUE(write_text_file(
      cur_path,
      R"({"bench":"matrix_sweep","all_safe":true,"cells_per_sec":2.0,)"
      R"("total_messages":1000,"total_bytes":50000,)"
      R"("workload":{"finalized":100,"p99_us":2000}})"));
  const CompareReport report = compare_files(base_path, cur_path);
  EXPECT_EQ(report.verdict(), 2) << report.summary();
  EXPECT_NE(report.summary().find("cells_per_sec"), std::string::npos);

  // Missing and malformed files are structural errors, not passes.
  EXPECT_EQ(compare_files(dir + "/does_not_exist.json", cur_path).verdict(),
            2);
  ASSERT_TRUE(write_text_file(cur_path, "not json"));
  EXPECT_EQ(compare_files(base_path, cur_path).verdict(), 2);
}

TEST(BenchCompare, JsonReportRoundTrips) {
  const auto base = JsonValue::parse(kMatrixArtifact);
  ASSERT_TRUE(base.has_value());
  const CompareReport report = compare_artifacts(*base, *base);
  JsonWriter json;
  write_compare_json(json, report);
  const auto parsed = JsonValue::parse(json.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("verdict")->as_string(), "pass");
  EXPECT_GT(parsed->get("findings")->items.size(), 0u);
}

// -- Metrics JSON -----------------------------------------------------------

TEST(MetricsJson, WriteMetricsJsonParsesAndCarriesSeries) {
  Simulation sim(smoke_spec(/*metrics_level=*/1));
  const RunReport report = sim.run_to_completion();
  JsonWriter json;
  write_metrics_json(json, report.metrics);
  const auto parsed = JsonValue::parse(json.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->get("level")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(parsed->get("ticks")->as_number(),
                   static_cast<double>(report.metrics.ticks));
  EXPECT_FALSE(parsed->get("stalled")->as_bool());
  const JsonValue* series = parsed->get("series");
  ASSERT_NE(series, nullptr);
  const JsonValue* height = series->get("finalized_height");
  ASSERT_NE(height, nullptr);
  ASSERT_TRUE(height->is_array());
  ASSERT_GT(height->items.size(), 0u);
  // Each entry is a [t, value] pair; the last summed height across 4 nodes
  // is 4 * target(3) = 12.
  const JsonValue& last = height->items.back();
  ASSERT_EQ(last.items.size(), 2u);
  EXPECT_DOUBLE_EQ(last.items[1].as_number(), 12.0);
}

// -- ObservabilityFlags -----------------------------------------------------

TEST(ObservabilityFlagsTest, ToArgsRoundTripsIncludingMetricsAndCompare) {
  ObservabilityFlags obs;
  obs.prof_level = 0;
  obs.trace_level = 2;
  obs.metrics_level = 1;
  obs.forensics_dir = "build/forensics";
  obs.compare_baseline = "bench/baselines/BENCH_matrix_smoke.baseline.json";
  obs.dump_slowest = "trace.json";

  std::vector<std::string> args = obs.to_args();
  std::vector<char*> argv;
  std::string prog = "bench";
  argv.push_back(prog.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  const ObservabilityFlags parsed = parse_observability_flags(flags);
  EXPECT_EQ(parsed, obs);
}

TEST(ObservabilityFlagsTest, DefaultsSurviveAbsentFlags) {
  std::string prog = "bench";
  char* argv[] = {prog.data()};
  const Flags flags(1, argv);
  ObservabilityFlags defaults;
  defaults.metrics_level = 1;  // a bench's own default
  const ObservabilityFlags parsed = parse_observability_flags(flags, defaults);
  EXPECT_EQ(parsed, defaults);
}

}  // namespace
}  // namespace ratcon::harness
