// Unit tests for the shared consensus framework: phase signatures and
// certificates, the envelope codec, ConstructProof (Figure 4) and the
// Proof-of-Fraud verification algorithm V(·) (Definition 6), quorum
// threshold arithmetic (Claim 1), and outcome classification.

#include <gtest/gtest.h>

#include "consensus/envelope.hpp"
#include "consensus/fraud.hpp"
#include "consensus/outcome.hpp"
#include "consensus/phase_sig.hpp"
#include "consensus/types.hpp"
#include "ledger/chain.hpp"

namespace ratcon::consensus {
namespace {

constexpr ProtoId kProto = ProtoId::kPrft;

struct TestKeys {
  crypto::KeyRegistry registry;
  std::vector<crypto::KeyPair> keys;

  explicit TestKeys(std::uint32_t n) {
    for (NodeId id = 0; id < n; ++id) {
      keys.push_back(registry.generate(id, 1));
    }
  }
};

crypto::Hash256 value_of(const char* s) {
  return crypto::sha256(std::string_view(s));
}

TEST(PhaseSig, SignVerifyRoundTrip) {
  TestKeys setup(2);
  const crypto::Hash256 v = value_of("block");
  const PhaseSig ps =
      sign_phase(kProto, PhaseTag::kVote, 3, v, 0, setup.keys[0].sk);
  EXPECT_TRUE(verify_phase(kProto, PhaseTag::kVote, 3, v, ps, setup.registry));
}

TEST(PhaseSig, DomainSeparationPreventsReplay) {
  TestKeys setup(1);
  const crypto::Hash256 v = value_of("block");
  const PhaseSig ps =
      sign_phase(kProto, PhaseTag::kVote, 3, v, 0, setup.keys[0].sk);
  // Same signature must not verify in another phase, round, value or proto.
  EXPECT_FALSE(
      verify_phase(kProto, PhaseTag::kCommit, 3, v, ps, setup.registry));
  EXPECT_FALSE(
      verify_phase(kProto, PhaseTag::kVote, 4, v, ps, setup.registry));
  EXPECT_FALSE(verify_phase(kProto, PhaseTag::kVote, 3, value_of("other"), ps,
                            setup.registry));
  EXPECT_FALSE(verify_phase(ProtoId::kPbft, PhaseTag::kVote, 3, v, ps,
                            setup.registry));
}

TEST(PhaseSig, CodecRoundTrip) {
  TestKeys setup(1);
  const PhaseSig ps = sign_phase(kProto, PhaseTag::kReveal, 9, value_of("x"),
                                 0, setup.keys[0].sk);
  Writer w;
  ps.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(PhaseSig::decode(r), ps);
}

Certificate make_cert(TestKeys& setup, PhaseTag phase, Round round,
                      const crypto::Hash256& v, std::uint32_t count) {
  Certificate cert;
  cert.phase = phase;
  cert.round = round;
  cert.value = v;
  for (NodeId id = 0; id < count; ++id) {
    cert.sigs.push_back(sign_phase(kProto, phase, round, v, id,
                                   setup.keys[id].sk));
  }
  return cert;
}

TEST(CertificateTest, VerifiesWithQuorum) {
  TestKeys setup(7);
  const Certificate cert =
      make_cert(setup, PhaseTag::kVote, 2, value_of("v"), 5);
  EXPECT_TRUE(cert.verify(kProto, 5, setup.registry));
  EXPECT_FALSE(cert.verify(kProto, 6, setup.registry)) << "below quorum";
}

TEST(CertificateTest, RejectsDuplicateSigners) {
  TestKeys setup(7);
  Certificate cert = make_cert(setup, PhaseTag::kVote, 2, value_of("v"), 5);
  cert.sigs.push_back(cert.sigs.front());  // duplicate signer
  EXPECT_FALSE(cert.verify(kProto, 5, setup.registry));
}

TEST(CertificateTest, RejectsForgedMember) {
  TestKeys setup(7);
  Certificate cert = make_cert(setup, PhaseTag::kVote, 2, value_of("v"), 5);
  cert.sigs[2].sig.bytes[0] ^= 1;
  EXPECT_FALSE(cert.verify(kProto, 5, setup.registry));
}

TEST(CertificateTest, CodecRoundTrip) {
  TestKeys setup(7);
  const Certificate cert =
      make_cert(setup, PhaseTag::kCommit, 4, value_of("v"), 6);
  Writer w;
  cert.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const Certificate decoded = Certificate::decode(r);
  EXPECT_EQ(decoded.sigs.size(), 6u);
  EXPECT_TRUE(decoded.verify(kProto, 6, setup.registry));
}

TEST(EnvelopeTest, SignedRoundTrip) {
  TestKeys setup(2);
  const Envelope env = make_envelope(kProto, 3, 7, 0, to_bytes("body"),
                                     setup.keys[0].sk);
  const Bytes wire = env.encode();
  // Wire header doubles as the stats key.
  EXPECT_EQ(wire[0], static_cast<std::uint8_t>(kProto));
  EXPECT_EQ(wire[1], 3);
  const Envelope decoded = Envelope::decode(ByteSpan(wire.data(), wire.size()));
  EXPECT_EQ(decoded.round, 7u);
  EXPECT_EQ(decoded.from, 0u);
  EXPECT_TRUE(verify_envelope(decoded, setup.registry));
}

TEST(EnvelopeTest, TamperingBreaksSignature) {
  TestKeys setup(2);
  Envelope env = make_envelope(kProto, 3, 7, 0, to_bytes("body"),
                               setup.keys[0].sk);
  Bytes tampered = env.body();
  tampered.push_back(0xff);
  env.set_body(std::move(tampered));  // must invalidate the digest cache
  EXPECT_FALSE(verify_envelope(env, setup.registry));

  Envelope env2 = make_envelope(kProto, 3, 7, 0, to_bytes("body"),
                                setup.keys[0].sk);
  env2.round = 8;  // replay into another round
  EXPECT_FALSE(verify_envelope(env2, setup.registry));

  Envelope env3 = make_envelope(kProto, 3, 7, 0, to_bytes("body"),
                                setup.keys[0].sk);
  env3.from = 1;  // impersonation
  EXPECT_FALSE(verify_envelope(env3, setup.registry));
}

TEST(EnvelopeTest, MalformedWireThrows) {
  const Bytes junk = {1, 2, 3};
  EXPECT_THROW(Envelope::decode(ByteSpan(junk.data(), junk.size())),
               CodecError);
}

// ---------------------------------------------------------------------------
// Fraud proofs (Figure 4 / Definition 6)

TEST(Fraud, ConflictPairVerifies) {
  TestKeys setup(3);
  const crypto::Hash256 va = value_of("a");
  const crypto::Hash256 vb = value_of("b");
  ConflictPair cp;
  cp.phase = PhaseTag::kCommit;
  cp.round = 5;
  cp.value_a = va;
  cp.value_b = vb;
  cp.sig_a = sign_phase(kProto, PhaseTag::kCommit, 5, va, 1, setup.keys[1].sk);
  cp.sig_b = sign_phase(kProto, PhaseTag::kCommit, 5, vb, 1, setup.keys[1].sk);
  EXPECT_TRUE(cp.verify(kProto, setup.registry));
  EXPECT_EQ(cp.guilty(), 1u);
}

TEST(Fraud, SameValueIsNotFraud) {
  TestKeys setup(2);
  const crypto::Hash256 v = value_of("a");
  ConflictPair cp;
  cp.phase = PhaseTag::kCommit;
  cp.round = 5;
  cp.value_a = v;
  cp.value_b = v;
  cp.sig_a = sign_phase(kProto, PhaseTag::kCommit, 5, v, 1, setup.keys[1].sk);
  cp.sig_b = cp.sig_a;
  EXPECT_FALSE(cp.verify(kProto, setup.registry));
}

TEST(Fraud, DifferentSignersAreNotFraud) {
  TestKeys setup(3);
  ConflictPair cp;
  cp.phase = PhaseTag::kCommit;
  cp.round = 5;
  cp.value_a = value_of("a");
  cp.value_b = value_of("b");
  cp.sig_a = sign_phase(kProto, PhaseTag::kCommit, 5, cp.value_a, 1,
                        setup.keys[1].sk);
  cp.sig_b = sign_phase(kProto, PhaseTag::kCommit, 5, cp.value_b, 2,
                        setup.keys[2].sk);
  EXPECT_FALSE(cp.verify(kProto, setup.registry));
}

TEST(Fraud, ForgedProofCannotFrameHonestPlayer) {
  // The accountability-soundness invariant: V(·) never convicts a player
  // whose signature the adversary cannot forge.
  TestKeys setup(3);
  ConflictPair cp;
  cp.phase = PhaseTag::kCommit;
  cp.round = 5;
  cp.value_a = value_of("a");
  cp.value_b = value_of("b");
  cp.sig_a = sign_phase(kProto, PhaseTag::kCommit, 5, cp.value_a, 1,
                        setup.keys[1].sk);
  // Attacker tries to pin signer 1 on value_b using its own key.
  cp.sig_b = sign_phase(kProto, PhaseTag::kCommit, 5, cp.value_b, 1,
                        setup.keys[2].sk);
  EXPECT_FALSE(cp.verify(kProto, setup.registry));
  EXPECT_TRUE(
      verify_fraud_proofs(kProto, {cp}, setup.registry).empty());
}

TEST(Fraud, TrackerDetectsDoubleSigners) {
  TestKeys setup(4);
  FraudTracker tracker;
  const crypto::Hash256 va = value_of("a");
  const crypto::Hash256 vb = value_of("b");

  // Node 1 signs a then b in the same (phase, round): conflict.
  EXPECT_FALSE(tracker
                   .observe({PhaseTag::kVote, 3, va,
                             sign_phase(kProto, PhaseTag::kVote, 3, va, 1,
                                        setup.keys[1].sk)})
                   .has_value());
  const auto cp = tracker.observe({PhaseTag::kVote, 3, vb,
                                   sign_phase(kProto, PhaseTag::kVote, 3, vb,
                                              1, setup.keys[1].sk)});
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->guilty(), 1u);
  EXPECT_TRUE(cp->verify(kProto, setup.registry));
  EXPECT_EQ(tracker.guilty_count(), 1u);
}

TEST(Fraud, TrackerIgnoresCrossRoundAndCrossPhase) {
  TestKeys setup(2);
  FraudTracker tracker;
  const crypto::Hash256 va = value_of("a");
  const crypto::Hash256 vb = value_of("b");
  tracker.observe({PhaseTag::kVote, 3, va,
                   sign_phase(kProto, PhaseTag::kVote, 3, va, 1,
                              setup.keys[1].sk)});
  // Different round: legitimate.
  EXPECT_FALSE(tracker
                   .observe({PhaseTag::kVote, 4, vb,
                             sign_phase(kProto, PhaseTag::kVote, 4, vb, 1,
                                        setup.keys[1].sk)})
                   .has_value());
  // Different phase: legitimate.
  EXPECT_FALSE(tracker
                   .observe({PhaseTag::kCommit, 3, vb,
                             sign_phase(kProto, PhaseTag::kCommit, 3, vb, 1,
                                        setup.keys[1].sk)})
                   .has_value());
  EXPECT_EQ(tracker.guilty_count(), 0u);
}

TEST(Fraud, ConstructProofMatchesFigure4) {
  // Batch ConstructProof over a mixed message set: players 1 and 2
  // double-sign, player 0 does not.
  TestKeys setup(4);
  std::vector<SignedValue> statements;
  const crypto::Hash256 va = value_of("a");
  const crypto::Hash256 vb = value_of("b");
  for (NodeId id : {0u, 1u, 2u}) {
    statements.push_back({PhaseTag::kCommit, 7, va,
                          sign_phase(kProto, PhaseTag::kCommit, 7, va, id,
                                     setup.keys[id].sk)});
  }
  for (NodeId id : {1u, 2u}) {
    statements.push_back({PhaseTag::kCommit, 7, vb,
                          sign_phase(kProto, PhaseTag::kCommit, 7, vb, id,
                                     setup.keys[id].sk)});
  }

  const FraudSet proofs = construct_proof(statements);
  const std::set<NodeId> guilty =
      verify_fraud_proofs(kProto, proofs, setup.registry);
  EXPECT_EQ(guilty, (std::set<NodeId>{1, 2}));
}

TEST(Fraud, ConstructProofAgreesWithIncrementalTracker) {
  TestKeys setup(6);
  std::vector<SignedValue> statements;
  const crypto::Hash256 va = value_of("a");
  const crypto::Hash256 vb = value_of("b");
  for (NodeId id = 0; id < 6; ++id) {
    statements.push_back({PhaseTag::kVote, 1, va,
                          sign_phase(kProto, PhaseTag::kVote, 1, va, id,
                                     setup.keys[id].sk)});
    if (id % 2 == 0) {
      statements.push_back({PhaseTag::kVote, 1, vb,
                            sign_phase(kProto, PhaseTag::kVote, 1, vb, id,
                                       setup.keys[id].sk)});
    }
  }
  FraudTracker tracker;
  tracker.observe_all(statements);
  const auto batch = construct_proof(statements);
  EXPECT_EQ(batch.size(), tracker.guilty_count());
  EXPECT_EQ(verify_fraud_proofs(kProto, batch, setup.registry),
            verify_fraud_proofs(kProto, tracker.fraud_set(), setup.registry));
}

TEST(Fraud, FraudSetCodecRoundTrip) {
  TestKeys setup(3);
  const crypto::Hash256 va = value_of("a");
  const crypto::Hash256 vb = value_of("b");
  ConflictPair cp;
  cp.phase = PhaseTag::kVote;
  cp.round = 2;
  cp.value_a = va;
  cp.value_b = vb;
  cp.sig_a = sign_phase(kProto, PhaseTag::kVote, 2, va, 0, setup.keys[0].sk);
  cp.sig_b = sign_phase(kProto, PhaseTag::kVote, 2, vb, 0, setup.keys[0].sk);
  Writer w;
  encode_fraud_set(w, {cp});
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  const FraudSet decoded = decode_fraud_set(r);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0].verify(kProto, setup.registry));
}

// ---------------------------------------------------------------------------
// Claim 1 arithmetic and outcome classification

TEST(Thresholds, Claim1IntervalBounds) {
  // τ ∈ [⌊(n+t0)/2⌋ + 1, n − t0].
  Config cfg;
  cfg.n = 9;
  cfg.t0 = 2;
  EXPECT_EQ(cfg.tau_min(), 6u);
  EXPECT_EQ(cfg.tau_max(), 7u);
  EXPECT_EQ(cfg.quorum(), 7u);

  cfg.n = 10;
  cfg.t0 = 3;
  EXPECT_EQ(cfg.tau_min(), 7u);
  EXPECT_EQ(cfg.tau_max(), 7u);
}

TEST(Thresholds, DesignBounds) {
  // pRFT: t0 = ⌈n/4⌉ − 1; classic BFT: t0 = ⌈n/3⌉ − 1.
  EXPECT_EQ(prft_t0(4), 0u);
  EXPECT_EQ(prft_t0(8), 1u);
  EXPECT_EQ(prft_t0(9), 2u);
  EXPECT_EQ(prft_t0(16), 3u);
  EXPECT_EQ(bft_t0(4), 1u);
  EXPECT_EQ(bft_t0(7), 2u);
  EXPECT_EQ(bft_t0(10), 3u);
}

TEST(Thresholds, LeaderRotation) {
  Config cfg;
  cfg.n = 5;
  EXPECT_EQ(cfg.leader(1), 1u);
  EXPECT_EQ(cfg.leader(5), 0u);
  EXPECT_EQ(cfg.leader(12), 2u);
}

ledger::Block child_of(const ledger::Chain& chain, Round r, int marker) {
  ledger::Block b;
  b.parent = chain.tip_hash();
  b.round = r;
  b.proposer = 0;
  b.txs.push_back(ledger::make_transfer(static_cast<std::uint64_t>(marker), 0));
  return b;
}

TEST(Outcome, ClassifiesAllFourStates) {
  ledger::Chain a;
  ledger::Chain b;

  // σ_NP: nobody progressed past baseline.
  OutcomeQuery q;
  q.honest_chains = {&a, &b};
  q.baseline_height = 0;
  EXPECT_EQ(classify_outcome(q), game::SystemState::kNoProgress);

  // σ_0: progress, no fork, no watched tx.
  const ledger::Block blk = child_of(a, 1, 1);
  a.append_tentative(blk);
  a.finalize_up_to(1);
  b.append_tentative(blk);
  b.finalize_up_to(1);
  EXPECT_EQ(classify_outcome(q), game::SystemState::kHonest);

  // σ_CP: progress but the watched tx is excluded everywhere.
  q.watched_tx = 777;
  EXPECT_EQ(classify_outcome(q), game::SystemState::kCensorship);
  q.watched_tx = 1;  // the included marker tx
  EXPECT_EQ(classify_outcome(q), game::SystemState::kHonest);

  // σ_Fork dominates everything else.
  ledger::Chain c;
  c.append_tentative(child_of(c, 1, 999));
  c.finalize_up_to(1);
  q.honest_chains = {&a, &c};
  EXPECT_EQ(classify_outcome(q), game::SystemState::kFork);
}

TEST(Outcome, HeightHelpers) {
  ledger::Chain a;
  ledger::Chain b;
  a.append_tentative(child_of(a, 1, 1));
  a.finalize_up_to(1);
  EXPECT_EQ(max_finalized_height({&a, &b}), 1u);
  EXPECT_EQ(min_finalized_height({&a, &b}), 0u);
}

TEST(Outcome, EmptyHonestSetClassifiesAsNoProgress) {
  // Degenerate observation window with no honest ledgers: nothing can fork
  // and nothing progressed — classification must not crash or claim σ_0.
  OutcomeQuery query;
  EXPECT_FALSE(any_fork(query.honest_chains));
  EXPECT_EQ(max_finalized_height(query.honest_chains), 0u);
  EXPECT_EQ(min_finalized_height(query.honest_chains), 0u);
  EXPECT_EQ(classify_outcome(query), game::SystemState::kNoProgress);
}

TEST(Outcome, ForkDominatesCensorship) {
  // σ_Fork is the worst state and must win even when the watched tx is
  // also missing from every honest ledger.
  ledger::Chain a;
  ledger::Chain b;
  a.append_tentative(child_of(a, 1, 1));
  b.append_tentative(child_of(b, 1, 2));  // different content, same height
  a.finalize_up_to(1);
  b.finalize_up_to(1);

  OutcomeQuery query;
  query.honest_chains = {&a, &b};
  query.watched_tx = 777;  // excluded everywhere
  EXPECT_EQ(classify_outcome(query), game::SystemState::kFork);
}

}  // namespace
}  // namespace ratcon::consensus
