// Integration tests: pRFT end-to-end on the simulated network.
//
// These exercise the full protocol stack (Figure 1 + §5.2): happy path on
// synchronous networks, liveness through view changes, catch-up after
// partitions, and the safety invariants of Definition 1.

#include <gtest/gtest.h>

#include "harness/prft_cluster.hpp"
#include "net/netmodel.hpp"

namespace ratcon {
namespace {

using harness::PrftCluster;
using harness::PrftClusterOptions;

PrftClusterOptions base_options(std::uint32_t n, std::uint64_t seed) {
  PrftClusterOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.target_blocks = 5;
  return opt;
}

TEST(PrftHappyPath, SevenNodesFinalizeTargetBlocks) {
  PrftCluster cluster(base_options(7, 42));
  cluster.inject_workload(30, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_GE(cluster.min_height(), 5u);
  EXPECT_FALSE(cluster.honest_player_slashed());
  EXPECT_EQ(cluster.classify(0), game::SystemState::kHonest);
}

TEST(PrftHappyPath, FourNodesMinimumCommittee) {
  // n = 4 is the smallest committee: t0 = ⌈4/4⌉ − 1 = 0, quorum = 4.
  PrftCluster cluster(base_options(4, 7));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.min_height(), 5u);
}

TEST(PrftHappyPath, TransactionsAreIncluded) {
  PrftCluster cluster(base_options(7, 3));
  cluster.inject_workload(20, msec(1), msec(1));
  cluster.start();
  cluster.run_until(sec(60));

  ASSERT_GE(cluster.min_height(), 5u);
  // Workload tx #1 must be in every honest finalized ledger.
  for (const ledger::Chain* chain : cluster.honest_chains()) {
    EXPECT_TRUE(chain->finalized_contains_tx(1));
  }
}

TEST(PrftHappyPath, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed, std::uint64_t txs) {
    PrftCluster cluster(base_options(7, seed));
    cluster.inject_workload(txs, msec(1), msec(2));
    cluster.start();
    cluster.run_until(sec(60));
    return cluster.node(0).chain().tip_hash();
  };
  // Same seed, same workload: bit-identical ledgers.
  EXPECT_EQ(run_once(9, 10), run_once(9, 10));
  // Different seeds only reorder deliveries; consensus still converges on
  // the same blocks (the workload is identical).
  EXPECT_EQ(run_once(9, 10), run_once(10, 10));
  // A different workload yields a different ledger.
  EXPECT_NE(run_once(9, 10), run_once(9, 12));
}

TEST(PrftPartialSynchrony, FinalizesAfterGst) {
  PrftClusterOptions opt = base_options(7, 11);
  opt.make_net = [] {
    return net::make_partial_synchrony(msec(400), msec(10), 0.9);
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(20, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_GE(cluster.min_height(), 5u) << "liveness after GST";
  EXPECT_FALSE(cluster.honest_player_slashed());
}

TEST(PrftPartition, HealsAndCatchesUp) {
  PrftClusterOptions opt = base_options(9, 13);
  opt.target_blocks = 6;
  PrftCluster cluster(opt);
  cluster.inject_workload(20, msec(1), msec(2));

  // Split 5 / 4 between t=50ms and t=400ms. Quorum is 9 − 2 = 7, so no side
  // can commit alone; everything must recover post-heal.
  cluster.net().schedule(msec(50), [&cluster]() {
    cluster.net().set_partition({{0, 1, 2, 3, 4}, {5, 6, 7, 8}}, msec(400));
  });

  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_GE(cluster.min_height(), 6u);
  EXPECT_FALSE(cluster.honest_player_slashed());
}

class PrftSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrftSeedSweep, SafetyAndLivenessAcrossSeeds) {
  PrftCluster cluster(base_options(7, GetParam()));
  cluster.inject_workload(15, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_GE(cluster.min_height(), 5u);
  EXPECT_FALSE(cluster.honest_player_slashed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrftSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class PrftSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrftSizeSweep, CommitteeSizesFinalize) {
  PrftCluster cluster(base_options(GetParam(), 21));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(90));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.min_height(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrftSizeSweep,
                         ::testing::Values(4, 5, 6, 7, 9, 11, 13, 16));

}  // namespace
}  // namespace ratcon
