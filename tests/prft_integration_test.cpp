// Integration tests: pRFT end-to-end on the simulated network.
//
// These exercise the full protocol stack (Figure 1 + §5.2): happy path on
// synchronous networks, liveness through view changes, catch-up after
// partitions, and the safety invariants of Definition 1 — all deployed
// through the unified ScenarioSpec/Simulation API.

#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace ratcon {
namespace {

using harness::NetworkSpec;
using harness::ScenarioSpec;
using harness::Simulation;

ScenarioSpec base_scenario(std::uint32_t n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.committee.n = n;
  spec.seed = seed;
  spec.budget.target_blocks = 5;
  return spec;
}

TEST(PrftHappyPath, SevenNodesFinalizeTargetBlocks) {
  ScenarioSpec spec = base_scenario(7, 42);
  spec.workload.txs = 30;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(60));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_GE(sim.min_height(), 5u);
  EXPECT_FALSE(sim.honest_player_slashed());
  EXPECT_EQ(sim.classify(0), game::SystemState::kHonest);
}

TEST(PrftHappyPath, FourNodesMinimumCommittee) {
  // n = 4 is the smallest committee: t0 = ⌈4/4⌉ − 1 = 0, quorum = 4.
  ScenarioSpec spec = base_scenario(4, 7);
  spec.workload.txs = 10;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(60));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.min_height(), 5u);
}

TEST(PrftHappyPath, TransactionsAreIncluded) {
  ScenarioSpec spec = base_scenario(7, 3);
  spec.workload.txs = 20;
  spec.workload.interval = msec(1);
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(60));

  ASSERT_GE(sim.min_height(), 5u);
  // Workload tx #1 must be in every honest finalized ledger.
  for (const ledger::Chain* chain : sim.honest_chains()) {
    EXPECT_TRUE(chain->finalized_contains_tx(1));
  }
}

TEST(PrftHappyPath, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed, std::uint64_t txs) {
    ScenarioSpec spec = base_scenario(7, seed);
    spec.workload.txs = txs;
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(60));
    return sim.replica(0).chain().tip_hash();
  };
  // Same seed, same workload: bit-identical ledgers.
  EXPECT_EQ(run_once(9, 10), run_once(9, 10));
  // Different seeds only reorder deliveries; consensus still converges on
  // the same blocks (the workload is identical).
  EXPECT_EQ(run_once(9, 10), run_once(10, 10));
  // A different workload yields a different ledger.
  EXPECT_NE(run_once(9, 10), run_once(9, 12));
}

TEST(PrftPartialSynchrony, FinalizesAfterGst) {
  ScenarioSpec spec = base_scenario(7, 11);
  spec.net = NetworkSpec::partial_synchrony(msec(400), msec(10), 0.9);
  spec.workload.txs = 20;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_GE(sim.min_height(), 5u) << "liveness after GST";
  EXPECT_FALSE(sim.honest_player_slashed());
}

TEST(PrftPartition, HealsAndCatchesUp) {
  ScenarioSpec spec = base_scenario(9, 13);
  spec.budget.target_blocks = 6;
  spec.workload.txs = 20;
  // Split 5 / 4 between t=50ms and t=400ms. Quorum is 9 − 2 = 7, so no side
  // can commit alone; everything must recover post-heal.
  spec.faults.partition({{0, 1, 2, 3, 4}, {5, 6, 7, 8}}, msec(50), msec(400));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_GE(sim.min_height(), 6u);
  EXPECT_FALSE(sim.honest_player_slashed());
}

class PrftSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrftSeedSweep, SafetyAndLivenessAcrossSeeds) {
  ScenarioSpec spec = base_scenario(7, GetParam());
  spec.workload.txs = 15;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(60));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_GE(sim.min_height(), 5u);
  EXPECT_FALSE(sim.honest_player_slashed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrftSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class PrftSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrftSizeSweep, CommitteeSizesFinalize) {
  ScenarioSpec spec = base_scenario(GetParam(), 21);
  spec.workload.txs = 10;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(90));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.min_height(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrftSizeSweep,
                         ::testing::Values(4, 5, 6, 7, 9, 11, 13, 16));

}  // namespace
}  // namespace ratcon
