// Baseline-protocol integration tests: pBFT-style quorum consensus (plain
// and Polygraph-accountable), HotStuff, and Raft-lite on the shared
// simulator. These protocols anchor Table 1's bounds and Figure 3's
// complexity comparison; the tests pin the behaviours those benches sweep:
//
//  * pBFT-class quorums are safe for t <= t0 = ⌈n/3⌉−1 but fork once a
//    rational coalition reaches k + t >= n − 2·t0 (< n/2) — the gap pRFT
//    closes.
//  * Polygraph-mode detects such forks and convicts >= t0 + 1 players.
//  * TRAP-style baiting prevents the fork only if enough members defect.
//  * HotStuff has linear message complexity per round.
//  * Raft-lite commits with a crashed minority and stalls with a majority.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/hotstuff.hpp"
#include "baselines/quorum_node.hpp"
#include "baselines/raftlite.hpp"
#include "harness/replica_cluster.hpp"

namespace ratcon {
namespace {

using baselines::HotstuffNode;
using baselines::QuorumForkPlan;
using baselines::QuorumNode;
using baselines::RaftLiteNode;
using harness::ReplicaCluster;

ReplicaCluster::Options quorum_options(
    std::uint32_t n, std::uint64_t seed, bool accountable,
    std::shared_ptr<QuorumForkPlan> plan = nullptr,
    std::set<NodeId> abstainers = {}) {
  ReplicaCluster::Options opt;
  opt.n = n;
  opt.t0 = consensus::bft_t0(n);
  opt.seed = seed;
  opt.factory = [accountable, plan, abstainers](
                    NodeId id, const consensus::Config& cfg,
                    crypto::KeyRegistry& registry,
                    ledger::DepositLedger& deposits) {
    QuorumNode::Deps deps;
    deps.cfg = cfg;
    deps.proto = accountable ? consensus::ProtoId::kPolygraph
                             : consensus::ProtoId::kPbft;
    deps.accountable = accountable;
    deps.registry = &registry;
    deps.keys = registry.generate(id, 99);
    deps.deposits = &deposits;
    deps.fork_plan = plan;
    deps.abstain = abstainers.count(id) > 0;
    auto node = std::make_unique<QuorumNode>(std::move(deps));
    node->set_target_blocks(cfg.target_rounds);
    return node;
  };
  return opt;
}

std::shared_ptr<QuorumForkPlan> make_plan(std::set<NodeId> baiters = {}) {
  // n = 10: t0 = ⌈10/3⌉ − 1 = 3, τ = 7. Coalition of 4 (< n/2) with honest
  // sides 3/3: both sides reach 3 + 4 = 7 = τ — the fork is feasible, which
  // is exactly the pBFT-class vulnerability in the RFT threat model.
  auto plan = std::make_shared<QuorumForkPlan>();
  plan->n = 10;
  plan->coalition = {0, 1, 2, 3};
  plan->side_a = {4, 5, 6};
  plan->side_b = {7, 8, 9};
  plan->baiters = std::move(baiters);
  return plan;
}

TEST(QuorumPbft, HappyPathFinalizes) {
  ReplicaCluster cluster(quorum_options(7, 5, false));
  cluster.inject_workload(20, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.min_height(), 5u);
  EXPECT_EQ(cluster.classify(0), game::SystemState::kHonest);
}

TEST(QuorumPbft, ToleratesByzantineMinorityAbstaining) {
  // t = 2 <= t0 = 2 abstainers on n = 7: quorum 5 still reachable.
  ReplicaCluster cluster(quorum_options(7, 6, false, nullptr, {0, 1}));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.max_height(), 5u);
}

TEST(QuorumPbft, RationalCoalitionForksIt) {
  // Theorem 3's premise: with k + t = 4 >= n − 2·t0 (n = 10) the coalition
  // equivocates both sides into conflicting decisions. pBFT-class safety is
  // gone once the adversary crosses n/3 — even though k + t < n/2.
  auto plan = make_plan();
  auto opt = quorum_options(10, 7, false, plan);
  ReplicaCluster cluster(std::move(opt));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_FALSE(cluster.agreement_holds()) << "the fork must succeed";
  EXPECT_EQ(cluster.classify(0), game::SystemState::kFork);
}

TEST(QuorumPolygraph, ForkIsDetectedAndConvicted) {
  // Polygraph-mode carries certificates, so after the fork every honest
  // player extracts >= t0 + 1 guilty coalition members (Definition 6).
  auto plan = make_plan();
  auto opt = quorum_options(10, 8, true, plan);
  ReplicaCluster cluster(std::move(opt));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_FALSE(cluster.agreement_holds())
      << "accountability detects, it does not prevent";
  for (NodeId id : plan->coalition) {
    EXPECT_TRUE(cluster.deposits().slashed(id)) << "member " << id;
  }
  for (NodeId id = 4; id < 10; ++id) {
    EXPECT_FALSE(cluster.deposits().slashed(id)) << "honest " << id;
  }
  // Some honest player convicted at least t0 + 1 distinct members.
  std::size_t best = 0;
  for (NodeId id = 4; id < 10; ++id) {
    const auto& node = dynamic_cast<QuorumNode&>(cluster.replica(id));
    best = std::max(best, node.convicted().size());
  }
  EXPECT_GE(best, static_cast<std::size_t>(cluster.config().t0 + 1));
}

TEST(QuorumTrap, FullBaitingPreventsTheFork) {
  // If every rational member defects to π_bait the coalition cannot reach
  // either side's quorum: no fork, and the colluding Byzantine core gets
  // convicted by the baiters' certificates.
  auto plan = make_plan({2, 3});  // two rational members bait
  auto opt = quorum_options(10, 9, true, plan);
  ReplicaCluster cluster(std::move(opt));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(120));

  EXPECT_TRUE(cluster.agreement_holds())
      << "with m = 2 baiters each side tops out at 3 + 2 = 5 < 7";
}

TEST(Hotstuff, HappyPathFinalizes) {
  ReplicaCluster::Options opt;
  opt.n = 7;
  opt.t0 = consensus::bft_t0(7);
  opt.seed = 21;
  opt.factory = [](NodeId id, const consensus::Config& cfg,
                   crypto::KeyRegistry& registry, ledger::DepositLedger&) {
    HotstuffNode::Deps deps;
    deps.cfg = cfg;
    deps.registry = &registry;
    deps.keys = registry.generate(id, 4);
    auto node = std::make_unique<HotstuffNode>(std::move(deps));
    node->set_target_blocks(cfg.target_rounds);
    return node;
  };
  ReplicaCluster cluster(std::move(opt));
  cluster.inject_workload(20, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.min_height(), 5u);
}

TEST(Hotstuff, MessageComplexityIsLinearPerRound) {
  auto build = [](std::uint32_t n) {
    ReplicaCluster::Options opt;
    opt.n = n;
    opt.t0 = consensus::bft_t0(n);
    opt.seed = 22;
    opt.target_blocks = 4;
    opt.factory = [](NodeId id, const consensus::Config& cfg,
                     crypto::KeyRegistry& registry, ledger::DepositLedger&) {
      HotstuffNode::Deps deps;
      deps.cfg = cfg;
      deps.registry = &registry;
      deps.keys = registry.generate(id, 4);
      auto node = std::make_unique<HotstuffNode>(std::move(deps));
      node->set_target_blocks(cfg.target_rounds);
      return node;
    };
    return opt;
  };
  std::map<std::uint32_t, double> per_round;
  for (std::uint32_t n : {8u, 16u}) {
    ReplicaCluster cluster(build(n));
    cluster.start();
    cluster.run_until(sec(60));
    ASSERT_GE(cluster.min_height(), 4u);
    per_round[n] =
        static_cast<double>(cluster.net().stats().total().count) / 4.0;
  }
  // Linear: doubling n should roughly double messages (allow 3x, not 4x
  // which would indicate quadratic behaviour).
  EXPECT_LT(per_round[16], per_round[8] * 3.0)
      << "HotStuff per-round messages must scale ~linearly";
}

TEST(RaftLite, HappyPathReplicates) {
  ReplicaCluster::Options opt;
  opt.n = 5;
  opt.t0 = 0;
  opt.seed = 31;
  opt.factory = [](NodeId id, const consensus::Config& cfg,
                   crypto::KeyRegistry& registry, ledger::DepositLedger&) {
    RaftLiteNode::Deps deps;
    deps.cfg = cfg;
    deps.registry = &registry;
    deps.keys = registry.generate(id, 4);
    auto node = std::make_unique<RaftLiteNode>(std::move(deps));
    node->set_target_blocks(cfg.target_rounds);
    return node;
  };
  ReplicaCluster cluster(std::move(opt));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.min_height(), 5u);
}

ReplicaCluster::Options raft_options(std::uint32_t n, std::uint64_t seed) {
  ReplicaCluster::Options opt;
  opt.n = n;
  opt.t0 = 0;
  opt.seed = seed;
  opt.factory = [](NodeId id, const consensus::Config& cfg,
                   crypto::KeyRegistry& registry, ledger::DepositLedger&) {
    RaftLiteNode::Deps deps;
    deps.cfg = cfg;
    deps.registry = &registry;
    deps.keys = registry.generate(id, 4);
    auto node = std::make_unique<RaftLiteNode>(std::move(deps));
    node->set_target_blocks(cfg.target_rounds);
    return node;
  };
  return opt;
}

TEST(RaftLite, SurvivesMinorityCrash) {
  // c = 2 < n/2 = 2.5: majority of 3 still commits (Table 1: 2c < n).
  ReplicaCluster cluster(raft_options(5, 32));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.net().schedule(msec(5), [&cluster]() {
    cluster.net().crash(0);
    cluster.net().crash(1);
  });
  cluster.start();
  cluster.run_until(sec(300));

  std::uint64_t alive_max = 0;
  for (NodeId id = 2; id < 5; ++id) {
    alive_max = std::max(alive_max, cluster.replica(id).chain().finalized_height());
  }
  EXPECT_GE(alive_max, 5u);
}

TEST(Hotstuff, StaysSafeUnderPartialSynchrony) {
  // Regression pin for the locked-QC machinery: before replicas locked on
  // commit-voted blocks (and voted round-monotonically), held pre-GST
  // decides let two honest replicas finalize different blocks at one
  // height. Adversarial delays must never fork an all-honest committee.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ReplicaCluster::Options opt;
    opt.n = 7;
    opt.t0 = consensus::bft_t0(7);
    opt.seed = seed;
    opt.make_net = []() {
      return net::make_partial_synchrony(msec(200), msec(10), 0.9);
    };
    opt.factory = [](NodeId id, const consensus::Config& cfg,
                     crypto::KeyRegistry& registry, ledger::DepositLedger&) {
      HotstuffNode::Deps deps;
      deps.cfg = cfg;
      deps.registry = &registry;
      deps.keys = registry.generate(id, 4);
      auto node = std::make_unique<HotstuffNode>(std::move(deps));
      node->set_target_blocks(cfg.target_rounds);
      return node;
    };
    ReplicaCluster cluster(std::move(opt));
    cluster.inject_workload(10, msec(1), msec(2));
    cluster.start();
    cluster.run_until(sec(120));

    EXPECT_TRUE(cluster.agreement_holds()) << "seed " << seed;
    EXPECT_TRUE(cluster.ordering_holds()) << "seed " << seed;
  }
}

TEST(RaftLite, StaysSafeUnderPartialSynchrony) {
  // Regression pin for the Paxos-style term changes: without the phase-1
  // promise/adoption, a node could ack conflicting same-height blocks in
  // different terms and delayed commits forked the log. A crash-tolerant
  // protocol must keep safety under arbitrary message delay.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto opt = raft_options(5, seed);
    opt.make_net = []() {
      return net::make_partial_synchrony(msec(200), msec(10), 0.9);
    };
    ReplicaCluster cluster(std::move(opt));
    cluster.inject_workload(10, msec(1), msec(2));
    cluster.start();
    cluster.run_until(sec(120));

    EXPECT_TRUE(cluster.agreement_holds()) << "seed " << seed;
    EXPECT_TRUE(cluster.ordering_holds()) << "seed " << seed;
  }
}

TEST(RaftLite, StallsUnderMajorityCrash) {
  // c = 3 >= n/2: no majority can form; the system stalls forever.
  ReplicaCluster cluster(raft_options(5, 33));
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.net().schedule(msec(5), [&cluster]() {
    cluster.net().crash(0);
    cluster.net().crash(1);
    cluster.net().crash(2);
  });
  cluster.start();
  cluster.run_until(sec(120));

  for (NodeId id = 3; id < 5; ++id) {
    EXPECT_EQ(cluster.replica(id).chain().finalized_height(), 0u);
  }
}

}  // namespace
}  // namespace ratcon
