// Baseline-protocol integration tests: pBFT-style quorum consensus (plain
// and Polygraph-accountable), HotStuff, and Raft-lite on the shared
// simulator, deployed through the unified ScenarioSpec/Simulation API.
// These protocols anchor Table 1's bounds and Figure 3's complexity
// comparison; the tests pin the behaviours those benches sweep:
//
//  * pBFT-class quorums are safe for t <= t0 = ⌈n/3⌉−1 but fork once a
//    rational coalition reaches k + t >= n − 2·t0 (< n/2) — the gap pRFT
//    closes.
//  * Polygraph-mode detects such forks and convicts >= t0 + 1 players.
//  * TRAP-style baiting prevents the fork only if enough members defect.
//  * HotStuff has linear message complexity per round.
//  * Raft-lite commits with a crashed minority and stalls with a majority.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/hotstuff.hpp"
#include "baselines/quorum_node.hpp"
#include "baselines/raftlite.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"

namespace ratcon {
namespace {

using baselines::HotstuffNode;
using baselines::QuorumForkPlan;
using baselines::QuorumNode;
using harness::NetworkSpec;
using harness::Protocol;
using harness::ScenarioSpec;
using harness::Simulation;

ScenarioSpec quorum_scenario(std::uint32_t n, std::uint64_t seed,
                             bool accountable,
                             std::shared_ptr<QuorumForkPlan> plan = nullptr,
                             std::set<NodeId> abstainers = {}) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kQuorum;
  spec.committee.n = n;
  spec.seed = seed;
  spec.adversary.node_factory =
      [accountable, plan, abstainers](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    QuorumNode::Deps deps = harness::make_quorum_deps(id, env, accountable);
    deps.fork_plan = plan;
    deps.abstain = abstainers.count(id) > 0;
    return std::make_unique<QuorumNode>(std::move(deps));
  };
  return spec;
}

std::shared_ptr<QuorumForkPlan> make_plan(std::set<NodeId> baiters = {}) {
  // n = 10: t0 = ⌈10/3⌉ − 1 = 3, τ = 7. Coalition of 4 (< n/2) with honest
  // sides 3/3: both sides reach 3 + 4 = 7 = τ — the fork is feasible, which
  // is exactly the pBFT-class vulnerability in the RFT threat model.
  auto plan = std::make_shared<QuorumForkPlan>();
  plan->n = 10;
  plan->coalition = {0, 1, 2, 3};
  plan->side_a = {4, 5, 6};
  plan->side_b = {7, 8, 9};
  plan->baiters = std::move(baiters);
  return plan;
}

TEST(QuorumPbft, HappyPathFinalizes) {
  Simulation sim(quorum_scenario(7, 5, false));
  sim.inject_workload(20, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(60));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.min_height(), 5u);
  EXPECT_EQ(sim.classify(0), game::SystemState::kHonest);
}

TEST(QuorumPbft, ToleratesByzantineMinorityAbstaining) {
  // t = 2 <= t0 = 2 abstainers on n = 7: quorum 5 still reachable.
  Simulation sim(quorum_scenario(7, 6, false, nullptr, {0, 1}));
  sim.inject_workload(10, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(120));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.max_height(), 5u);
}

TEST(QuorumPbft, RationalCoalitionForksIt) {
  // Theorem 3's premise: with k + t = 4 >= n − 2·t0 (n = 10) the coalition
  // equivocates both sides into conflicting decisions. pBFT-class safety is
  // gone once the adversary crosses n/3 — even though k + t < n/2.
  auto plan = make_plan();
  Simulation sim(quorum_scenario(10, 7, false, plan));
  sim.inject_workload(10, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(120));

  EXPECT_FALSE(sim.agreement_holds()) << "the fork must succeed";
  EXPECT_EQ(sim.classify(0), game::SystemState::kFork);
}

TEST(QuorumPolygraph, ForkIsDetectedAndConvicted) {
  // Polygraph-mode carries certificates, so after the fork every honest
  // player extracts >= t0 + 1 guilty coalition members (Definition 6).
  auto plan = make_plan();
  Simulation sim(quorum_scenario(10, 8, true, plan));
  sim.inject_workload(10, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(120));

  EXPECT_FALSE(sim.agreement_holds())
      << "accountability detects, it does not prevent";
  for (NodeId id : plan->coalition) {
    EXPECT_TRUE(sim.deposits().slashed(id)) << "member " << id;
  }
  for (NodeId id = 4; id < 10; ++id) {
    EXPECT_FALSE(sim.deposits().slashed(id)) << "honest " << id;
  }
  // Some honest player convicted at least t0 + 1 distinct members.
  std::size_t best = 0;
  for (NodeId id = 4; id < 10; ++id) {
    const auto& node = dynamic_cast<QuorumNode&>(sim.replica(id));
    best = std::max(best, node.convicted().size());
  }
  EXPECT_GE(best, static_cast<std::size_t>(sim.config().t0 + 1));
}

TEST(QuorumTrap, FullBaitingPreventsTheFork) {
  // If every rational member defects to π_bait the coalition cannot reach
  // either side's quorum: no fork, and the colluding Byzantine core gets
  // convicted by the baiters' certificates.
  auto plan = make_plan({2, 3});  // two rational members bait
  Simulation sim(quorum_scenario(10, 9, true, plan));
  sim.inject_workload(10, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(120));

  EXPECT_TRUE(sim.agreement_holds())
      << "with m = 2 baiters each side tops out at 3 + 2 = 5 < 7";
}

ScenarioSpec hotstuff_scenario(std::uint32_t n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kHotStuff;
  spec.committee.n = n;
  spec.seed = seed;
  return spec;
}

TEST(Hotstuff, HappyPathFinalizes) {
  Simulation sim(hotstuff_scenario(7, 21));
  sim.inject_workload(20, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(60));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.min_height(), 5u);
}

TEST(Hotstuff, MessageComplexityIsLinearPerRound) {
  std::map<std::uint32_t, double> per_round;
  for (std::uint32_t n : {8u, 16u}) {
    ScenarioSpec spec = hotstuff_scenario(n, 22);
    spec.budget.target_blocks = 4;
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(60));
    ASSERT_GE(sim.min_height(), 4u);
    // Count the protocol's own traffic: the catch-up substrate
    // (ProtoId::kSync announces) is a separate service with its own
    // complexity and would otherwise mask the O(n) claim.
    const auto hs = sim.net().stats().for_proto(
        static_cast<std::uint8_t>(consensus::ProtoId::kHotstuff));
    per_round[n] = static_cast<double>(hs.count) / 4.0;
  }
  // Linear: doubling n should roughly double messages (allow 3x, not 4x
  // which would indicate quadratic behaviour).
  EXPECT_LT(per_round[16], per_round[8] * 3.0)
      << "HotStuff per-round messages must scale ~linearly";
}

ScenarioSpec raft_scenario(std::uint32_t n, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kRaftLite;
  spec.committee.n = n;
  spec.seed = seed;
  return spec;
}

TEST(RaftLite, HappyPathReplicates) {
  Simulation sim(raft_scenario(5, 31));
  sim.inject_workload(10, msec(1), msec(2));
  sim.start();
  sim.run_until(sec(60));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.min_height(), 5u);
}

TEST(RaftLite, SurvivesMinorityCrash) {
  // c = 2 < n/2 = 2.5: majority of 3 still commits (Table 1: 2c < n).
  ScenarioSpec spec = raft_scenario(5, 32);
  spec.workload.txs = 10;
  spec.faults.crash_range(0, 2, msec(5));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  std::uint64_t alive_max = 0;
  for (NodeId id = 2; id < 5; ++id) {
    alive_max = std::max(alive_max, sim.replica(id).chain().finalized_height());
  }
  EXPECT_GE(alive_max, 5u);
}

TEST(Hotstuff, StaysSafeUnderPartialSynchrony) {
  // Regression pin for the locked-QC machinery: before replicas locked on
  // commit-voted blocks (and voted round-monotonically), held pre-GST
  // decides let two honest replicas finalize different blocks at one
  // height. Adversarial delays must never fork an all-honest committee.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ScenarioSpec spec = hotstuff_scenario(7, seed);
    spec.net = NetworkSpec::partial_synchrony(msec(200), msec(10), 0.9);
    spec.workload.txs = 10;
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(120));

    EXPECT_TRUE(sim.agreement_holds()) << "seed " << seed;
    EXPECT_TRUE(sim.ordering_holds()) << "seed " << seed;
  }
}

TEST(RaftLite, StaysSafeUnderPartialSynchrony) {
  // Regression pin for the Paxos-style term changes: without the phase-1
  // promise/adoption, a node could ack conflicting same-height blocks in
  // different terms and delayed commits forked the log. A crash-tolerant
  // protocol must keep safety under arbitrary message delay.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ScenarioSpec spec = raft_scenario(5, seed);
    spec.net = NetworkSpec::partial_synchrony(msec(200), msec(10), 0.9);
    spec.workload.txs = 10;
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(120));

    EXPECT_TRUE(sim.agreement_holds()) << "seed " << seed;
    EXPECT_TRUE(sim.ordering_holds()) << "seed " << seed;
  }
}

TEST(RaftLite, StallsUnderMajorityCrash) {
  // c = 3 >= n/2: no majority can form; the system stalls forever.
  ScenarioSpec spec = raft_scenario(5, 33);
  spec.workload.txs = 10;
  spec.faults.crash_range(0, 3, msec(5));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));

  for (NodeId id = 3; id < 5; ++id) {
    EXPECT_EQ(sim.replica(id).chain().finalized_height(), 0u);
  }
}

}  // namespace
}  // namespace ratcon
