// Seed-matrix scenario sweep: the shared safety properties (agreement,
// c-strict ordering, no honest slashing) must hold on EVERY cell of the
// committee-size × network-model × seed cross-product, for pRFT and for the
// HotStuff / Raft-lite / quorum baselines. Rational-consensus equilibrium
// claims are only credible under varied network and committee conditions;
// this suite is the regression gate for that. Liveness is additionally
// asserted where the model guarantees it (synchrony, and partial synchrony
// after GST).

#include <gtest/gtest.h>

#include "harness/matrix.hpp"
#include "harness/scenario.hpp"

namespace ratcon::harness {
namespace {

// 4 committee sizes × 3 network models × 5 seeds, per protocol.
MatrixSpec tier1_spec() {
  MatrixSpec spec;
  spec.committee_sizes = {4, 7, 16, 31};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony,
               NetKind::kAsynchronous};
  spec.seeds = {1, 2, 3, 4, 5};
  spec.target_blocks = 3;
  spec.workload_txs = 12;
  return spec;
}

void expect_every_cell_safe(const MatrixReport& report,
                            const MatrixSpec& spec) {
  ASSERT_EQ(report.cell_count(), spec.protocols.size() *
                                     spec.committee_sizes.size() *
                                     spec.nets.size() * spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "honest deposit burned in " << cell.label();
    // Synchronous cells must also be live: every honest replica reaches the
    // target. (Asynchronous cells may legitimately stall — FLP.)
    if (cell.net == NetKind::kSynchronous) {
      EXPECT_GE(cell.min_height, spec.target_blocks)
          << "liveness lost in " << cell.label();
      EXPECT_NE(cell.finalized_at, kSimTimeNever)
          << "finalization latency unrecorded in " << cell.label();
    }
    if (cell.min_height > 0) {
      EXPECT_GT(cell.messages, 0u) << "progress without traffic in "
                                   << cell.label();
    }
  }
  EXPECT_TRUE(report.all_safe()) << report.summary();
}

TEST(SeedMatrix, PrftSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kPrft};
  expect_every_cell_safe(run_matrix(spec), spec);
}

TEST(SeedMatrix, HotstuffSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kHotStuff};
  expect_every_cell_safe(run_matrix(spec), spec);
}

TEST(SeedMatrix, RaftLiteSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kRaftLite};
  expect_every_cell_safe(run_matrix(spec), spec);
}

// The pBFT-style quorum baseline rides the same matrix on its safe ground:
// synchronous cells with an honest committee. (Its fork vulnerabilities
// under partitions/equivocation are the paper's point and are exercised
// deliberately in the benches, not asserted safe here.)
TEST(SeedMatrix, QuorumSafeOnSynchronousCells) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kQuorum};
  spec.nets = {NetKind::kSynchronous};
  expect_every_cell_safe(run_matrix(spec), spec);
}

// ROADMAP scaling cell: n = 64 committees — four times the seed matrix's
// largest committee — must stay safe and live on the synchronous cells for
// every protocol in the registry. One seed: the pRFT cell alone moves ~32k
// certificate-bearing messages (≈40 s of host time), and wider n = 64
// sweeps belong to bench_matrix_sweep --sizes=64.
TEST(SeedMatrix, LargeCommitteeN64Safe) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                    Protocol::kRaftLite, Protocol::kQuorum};
  spec.committee_sizes = {64};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1};
  spec.target_blocks = 2;
  spec.workload_txs = 8;
  expect_every_cell_safe(run_matrix(spec), spec);
}

// Crash-fault column of the matrix: one honest node crash-stops early. The
// committee sizes here tolerate one silent node (pRFT quorum n − t0 with
// t0 ≥ 1), so safety must survive on every net, the crashed node must never
// be slashed, and synchronous cells must still finalize on the live quorum.
TEST(SeedMatrix, PrftSafeWithCrashFault) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {7, 16, 31};
  spec.crash_count = 1;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(),
            spec.committee_sizes.size() * spec.nets.size() *
                spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "crashed-but-honest deposit burned in " << cell.label();
    if (cell.net == NetKind::kSynchronous) {
      EXPECT_GE(cell.max_height, spec.target_blocks)
          << "live quorum stalled in " << cell.label();
    }
  }
}

// ROADMAP combined-fault cell: pre-GST message holds, a two-halves
// partition that only heals at GST, AND a crashed node — all at once,
// expressed as ScenarioSpec fault plans. Safety must survive for every
// protocol; liveness is not asserted (a partitioned minority may stay
// behind until state transfer catches it up).
TEST(SeedMatrix, CrashPlusPartitionCellsStaySafe) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                    Protocol::kRaftLite};
  spec.committee_sizes = {7, 16};
  spec.nets = {NetKind::kPartialSynchrony};
  spec.seeds = {1, 2, 3};
  spec.target_blocks = 3;
  spec.crash_count = 1;
  spec.partition_pre_gst = true;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), spec.protocols.size() *
                                     spec.committee_sizes.size() *
                                     spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "honest deposit burned in " << cell.label();
  }
}

TEST(SeedMatrix, ReportSummarizesEveryCell) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2};
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 2u);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("prft"), std::string::npos);
  EXPECT_NE(summary.find("synchronous"), std::string::npos);
  EXPECT_NE(summary.find("slowest cells"), std::string::npos);
  EXPECT_TRUE(report.unsafe_cells().empty()) << summary;
}

// Per-cell wall-clock budget: every cell costs > 0 ms, so an absurdly
// small budget flags them all — and the summary surfaces the overruns.
TEST(SeedMatrix, WallClockBudgetFlagsSlowCells) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2, 3};
  spec.cell_budget_ms = 1e-6;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 3u);
  for (const CellResult& cell : report.cells) {
    EXPECT_GT(cell.wall_ms, 0.0) << cell.label();
    EXPECT_TRUE(cell.over_budget()) << cell.label();
  }
  EXPECT_EQ(report.over_budget_cells().size(), 3u);
  EXPECT_NE(report.summary().find("OVER BUDGET"), std::string::npos);

  const auto slowest = report.slowest_cells(2);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_GE(slowest[0]->wall_ms, slowest[1]->wall_ms);
}

TEST(SeedMatrix, CellLabelsAreDistinct) {
  CellResult a;
  a.protocol = Protocol::kPrft;
  a.n = 7;
  a.net = NetKind::kPartialSynchrony;
  a.seed = 3;
  CellResult b = a;
  b.seed = 4;
  EXPECT_EQ(a.label(), "prft/n=7/partial-synchrony/seed=3");
  EXPECT_NE(a.label(), b.label());
}

// Determinism regression: the simulator is seeded end to end, so two runs
// with identical scenarios must produce byte-identical finalized chains and
// identical traffic accounting. Any divergence means nondeterminism crept
// into the event loop, RNG plumbing, or protocol logic.
TEST(Determinism, IdenticalRunsProduceIdenticalChainsAndStats) {
  auto run_once = [](std::vector<std::vector<crypto::Hash256>>& hashes,
                     std::uint64_t& msg_count, std::uint64_t& msg_bytes) {
    ScenarioSpec spec;
    spec.committee.n = 7;
    spec.seed = 42;
    spec.budget.target_blocks = 4;
    spec.workload.txs = 16;
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(60));
    for (NodeId id = 0; id < 7; ++id) {
      hashes.push_back(sim.replica(id).chain().finalized_hashes());
    }
    msg_count = sim.net().stats().total().count;
    msg_bytes = sim.net().stats().total().bytes;
  };

  std::vector<std::vector<crypto::Hash256>> hashes_a;
  std::vector<std::vector<crypto::Hash256>> hashes_b;
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  std::uint64_t bytes_a = 0;
  std::uint64_t bytes_b = 0;
  run_once(hashes_a, count_a, bytes_a);
  run_once(hashes_b, count_b, bytes_b);

  ASSERT_GT(count_a, 0u);
  EXPECT_EQ(count_a, count_b) << "message counts diverged across reruns";
  EXPECT_EQ(bytes_a, bytes_b) << "message bytes diverged across reruns";
  ASSERT_EQ(hashes_a.size(), hashes_b.size());
  for (std::size_t i = 0; i < hashes_a.size(); ++i) {
    EXPECT_EQ(hashes_a[i], hashes_b[i])
        << "finalized chain of node " << i << " diverged across reruns";
    EXPECT_FALSE(hashes_a[i].empty());
  }
}

// Different seeds must actually vary the run (the matrix would be vacuous if
// every seed produced the same trajectory). The virtual time at which the
// event queue drains depends on every sampled network delay, so it is a
// sensitive fingerprint of the schedule.
TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  auto drain_time = [](std::uint64_t seed) {
    ScenarioSpec spec;
    spec.committee.n = 7;
    spec.seed = seed;
    spec.budget.target_blocks = 4;
    spec.workload.txs = 16;
    Simulation sim(spec);
    sim.start();
    sim.run();  // drain: nodes stop at target_blocks
    return sim.net().now();
  };
  const SimTime base = drain_time(1);
  EXPECT_TRUE(drain_time(2) != base || drain_time(3) != base ||
              drain_time(4) != base);
}

}  // namespace
}  // namespace ratcon::harness
