// Seed-matrix scenario sweep: the shared safety properties (agreement,
// c-strict ordering, no honest slashing) must hold on EVERY cell of the
// committee-size × network-model × seed cross-product, for pRFT and for the
// HotStuff / Raft-lite / quorum baselines. Rational-consensus equilibrium
// claims are only credible under varied network and committee conditions;
// this suite is the regression gate for that. With the catch-up subsystem
// (src/sync, on by default) *eventual liveness after GST* is asserted on
// every cell — partial-synchrony and asynchrony columns included: a replica
// that misses a commit/decide under adversarial delay must recover via
// state transfer instead of staying behind forever.

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/matrix.hpp"
#include "harness/scenario.hpp"

namespace ratcon::harness {
namespace {

// 4 committee sizes × 3 network models × 5 seeds, per protocol.
MatrixSpec tier1_spec() {
  MatrixSpec spec;
  spec.committee_sizes = {4, 7, 16, 31};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony,
               NetKind::kAsynchronous};
  spec.seeds = {1, 2, 3, 4, 5};
  spec.target_blocks = 3;
  spec.workload_txs = 12;
  // Flight recorder at level 1 (state transitions): the invariant
  // monitors watch every tier-1 cell live, and any unsafe cell dumps a
  // forensics bundle into build/forensics/ — CI uploads it on failure.
  spec.trace_level = 1;
  spec.forensics_dir = "forensics";
  return spec;
}

// Per-cell recovery latency, surfaced in the test output (and thereby the
// ctest junit timing artifact CI uploads) so regressions are visible in PRs.
void print_recovery(const CellResult& cell) {
  const SimTime rec = cell.recovery_latency();
  std::printf("[recovery] %-40s sync_msgs=%-6llu rec_ms=%s\n",
              cell.label().c_str(),
              static_cast<unsigned long long>(cell.sync_messages),
              rec == kSimTimeNever
                  ? "never"
                  : std::to_string(static_cast<double>(rec) / 1000.0).c_str());
}

void expect_every_cell_safe(const MatrixReport& report,
                            const MatrixSpec& spec) {
  ASSERT_EQ(report.cell_count(), spec.protocols.size() *
                                     spec.committee_sizes.size() *
                                     spec.nets.size() * spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "honest deposit burned in " << cell.label();
    if (spec.sync_enabled || cell.net == NetKind::kSynchronous) {
      // Eventual liveness: every live honest replica reaches the target.
      // Synchronous cells owe this unconditionally; delay-adversarial
      // cells owe it after GST because catch-up transfers the missed
      // finalized blocks once messages flow again.
      EXPECT_GE(cell.live_min_height, spec.target_blocks)
          << "liveness lost in " << cell.label();
      EXPECT_NE(cell.finalized_at, kSimTimeNever)
          << "finalization latency unrecorded in " << cell.label();
    }
    if (cell.min_height > 0) {
      EXPECT_GT(cell.messages, 0u) << "progress without traffic in "
                                   << cell.label();
    }
    EXPECT_EQ(cell.trace.violations, 0u)
        << "invariant monitor fired in " << cell.label() << ": "
        << (cell.trace.verdicts.empty() ? "?" : cell.trace.verdicts.front());
  }
  EXPECT_TRUE(report.all_safe()) << report.summary();
}

TEST(SeedMatrix, PrftSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kPrft};
  expect_every_cell_safe(run_matrix(spec), spec);
}

TEST(SeedMatrix, HotstuffSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kHotStuff};
  expect_every_cell_safe(run_matrix(spec), spec);
}

TEST(SeedMatrix, RaftLiteSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kRaftLite};
  expect_every_cell_safe(run_matrix(spec), spec);
}

// The pBFT-style quorum baseline, hardened for partial synchrony
// (prepare-lock adoption across view changes: commits are only sent by
// lock holders and the lock travels inside ViewChange messages), now rides
// ALL delay-adversarial matrix columns with full safety + eventual-liveness
// assertions. (Its fork vulnerabilities under *coalition equivocation* are
// the paper's point and are still exercised deliberately in the benches.)
TEST(SeedMatrix, QuorumSafeAndLiveOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kQuorum};
  expect_every_cell_safe(run_matrix(spec), spec);
}

// ROADMAP scaling cell: n = 64 committees — four times the seed matrix's
// largest committee — must stay safe and live on the synchronous cells for
// every protocol in the registry. One seed: the pRFT cell alone moves ~32k
// certificate-bearing messages (≈40 s of host time), and wider n = 64
// sweeps belong to bench_matrix_sweep --sizes=64.
TEST(SeedMatrix, LargeCommitteeN64Safe) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                    Protocol::kRaftLite, Protocol::kQuorum};
  spec.committee_sizes = {64};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1};
  spec.target_blocks = 2;
  spec.workload_txs = 8;
  expect_every_cell_safe(run_matrix(spec), spec);
}

// Crash-fault column of the matrix: one honest node crash-stops early. The
// committee sizes here tolerate one silent node (pRFT quorum n − t0 with
// t0 ≥ 1), so safety must survive on every net, the crashed node must never
// be slashed, and synchronous cells must still finalize on the live quorum.
TEST(SeedMatrix, PrftSafeWithCrashFault) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {7, 16, 31};
  spec.crash_count = 1;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(),
            spec.committee_sizes.size() * spec.nets.size() *
                spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "crashed-but-honest deposit burned in " << cell.label();
    if (cell.net == NetKind::kSynchronous) {
      EXPECT_GE(cell.max_height, spec.target_blocks)
          << "live quorum stalled in " << cell.label();
    }
  }
}

// ROADMAP combined-fault cell: pre-GST message holds, a two-halves
// partition that only heals at GST, AND a crashed node — all at once,
// expressed as ScenarioSpec fault plans. With catch-up enabled this is a
// full eventual-liveness-after-GST cell for every protocol: safety must
// survive AND every *live* honest replica must reach the target once the
// partition heals (the crashed node alone legitimately stays behind).
TEST(SeedMatrix, CrashPlusPartitionCellsRecoverAfterGst) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                    Protocol::kRaftLite, Protocol::kQuorum};
  spec.committee_sizes = {7, 16};
  spec.nets = {NetKind::kPartialSynchrony};
  spec.seeds = {1, 2, 3};
  spec.target_blocks = 3;
  spec.crash_count = 1;
  spec.partition_pre_gst = true;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), spec.protocols.size() *
                                     spec.committee_sizes.size() *
                                     spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "honest deposit burned in " << cell.label();
    EXPECT_GE(cell.live_min_height, spec.target_blocks)
        << "live replica stuck behind after heal in " << cell.label();
    EXPECT_NE(cell.finalized_at, kSimTimeNever) << cell.label();
    print_recovery(cell);
  }
}

// Acceptance gate for the catch-up subsystem: on a healed-partition
// partial-synchrony cell, every protocol must (a) reach eventual liveness,
// (b) report nonzero catch-up traffic, and (c) report a finite recovery
// latency measured from GST.
TEST(SeedMatrix, CatchupTrafficAndRecoveryLatencyReported) {
  for (Protocol proto : {Protocol::kPrft, Protocol::kHotStuff,
                         Protocol::kRaftLite, Protocol::kQuorum}) {
    MatrixSpec spec;
    spec.protocols = {proto};
    spec.committee_sizes = {7};
    spec.nets = {NetKind::kPartialSynchrony};
    spec.seeds = {1, 2};
    spec.target_blocks = 3;
    spec.partition_pre_gst = true;
    const MatrixReport report = run_matrix(spec);
    bool any_sync_traffic = false;
    for (const CellResult& cell : report.cells) {
      EXPECT_TRUE(cell.safe()) << cell.label();
      EXPECT_GE(cell.live_min_height, spec.target_blocks) << cell.label();
      EXPECT_NE(cell.recovery_latency(), kSimTimeNever) << cell.label();
      any_sync_traffic |= cell.sync_messages > 0 && cell.sync_bytes > 0;
      print_recovery(cell);
    }
    EXPECT_TRUE(any_sync_traffic)
        << to_string(proto) << ": no catch-up traffic on any healed cell";
  }
}

// The sync_plan toggle reproduces the old behaviour: with catch-up off, a
// HotStuff replica partitioned through several finalizations stays behind
// forever (HotStuff has no protocol-internal state transfer), while the
// same cell with catch-up on recovers fully.
TEST(SeedMatrix, SyncToggleReproducesStayBehindBehaviour) {
  auto cell = [](bool sync_on) {
    ScenarioSpec spec;
    spec.protocol = Protocol::kHotStuff;
    spec.committee.n = 7;
    spec.seed = 4;
    spec.budget.target_blocks = 4;
    spec.workload.txs = 12;
    spec.sync_plan.enabled = sync_on;
    spec.faults.partition({{0, 1, 2, 3, 4, 5}, {6}}, usec(10), msec(2500));
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(60));
    return sim.replica(6).chain().finalized_height();
  };
  EXPECT_GE(cell(true), 4u) << "catch-up must recover the isolated replica";
  EXPECT_LT(cell(false), 4u)
      << "without catch-up the isolated replica cannot recover (this "
         "failing means HotStuff grew another recovery path; update test)";
}

TEST(SeedMatrix, ReportSummarizesEveryCell) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2};
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 2u);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("prft"), std::string::npos);
  EXPECT_NE(summary.find("synchronous"), std::string::npos);
  EXPECT_NE(summary.find("slowest cells"), std::string::npos);
  EXPECT_TRUE(report.unsafe_cells().empty()) << summary;
}

// Per-cell wall-clock budget: every cell costs > 0 ms, so an absurdly
// small budget flags them all — and the summary surfaces the overruns.
TEST(SeedMatrix, WallClockBudgetFlagsSlowCells) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2, 3};
  spec.cell_budget_ms = 1e-6;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 3u);
  for (const CellResult& cell : report.cells) {
    EXPECT_GT(cell.wall_ms, 0.0) << cell.label();
    EXPECT_TRUE(cell.over_budget()) << cell.label();
  }
  EXPECT_EQ(report.over_budget_cells().size(), 3u);
  EXPECT_NE(report.summary().find("OVER BUDGET"), std::string::npos);

  const auto slowest = report.slowest_cells(2);
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_GE(slowest[0]->wall_ms, slowest[1]->wall_ms);
}

// ROADMAP item: matrix cells run in parallel (each cell is an independent
// seeded simulation). The sweep's deterministic per-cell results must be
// IDENTICAL to a serial run, position by position.
TEST(SeedMatrix, ParallelSweepMatchesSerial) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff};
  spec.committee_sizes = {4, 7};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony};
  spec.seeds = {1, 2};
  spec.target_blocks = 2;
  spec.workload_txs = 8;

  MatrixSpec serial = spec;
  serial.workers = 1;
  MatrixSpec parallel = spec;
  parallel.workers = 4;

  const MatrixReport a = run_matrix(serial);
  const MatrixReport b = run_matrix(parallel);
  ASSERT_EQ(a.cell_count(), b.cell_count());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& x = a.cells[i];
    const CellResult& y = b.cells[i];
    EXPECT_EQ(x.label(), y.label());
    EXPECT_EQ(x.min_height, y.min_height) << x.label();
    EXPECT_EQ(x.max_height, y.max_height) << x.label();
    EXPECT_EQ(x.live_min_height, y.live_min_height) << x.label();
    EXPECT_EQ(x.messages, y.messages) << x.label();
    EXPECT_EQ(x.bytes, y.bytes) << x.label();
    EXPECT_EQ(x.sync_messages, y.sync_messages) << x.label();
    EXPECT_EQ(x.sync_bytes, y.sync_bytes) << x.label();
    EXPECT_EQ(x.sim_time, y.sim_time) << x.label();
    EXPECT_EQ(x.finalized_at, y.finalized_at) << x.label();
    EXPECT_EQ(x.safe(), y.safe()) << x.label();
    // Workload stats (incl. the latency histogram) are integer counters —
    // the determinism contract makes them byte-identical, so operator==.
    EXPECT_TRUE(x.workload == y.workload) << x.label();
  }
}

// Determinism with catch-up enabled: a delay-adversarial cell's RunReport
// must be byte-stable across reruns — announces, requests, responses and
// adoptions all ride the same seeded event loop.
TEST(Determinism, RunReportByteStableWithSyncOn) {
  auto run_once = [] {
    MatrixSpec spec;
    spec.protocols = {Protocol::kPrft};
    spec.committee_sizes = {7};
    spec.nets = {NetKind::kPartialSynchrony};
    spec.seeds = {3};
    spec.target_blocks = 3;
    spec.partition_pre_gst = true;
    return run_matrix(spec).cells.at(0);
  };
  const CellResult a = run_once();
  const CellResult b = run_once();
  ASSERT_GT(a.messages, 0u);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.sync_messages, b.sync_messages);
  EXPECT_EQ(a.sync_bytes, b.sync_bytes);
  EXPECT_EQ(a.min_height, b.min_height);
  EXPECT_EQ(a.max_height, b.max_height);
  EXPECT_EQ(a.live_min_height, b.live_min_height);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.finalized_at, b.finalized_at);
  EXPECT_EQ(a.recovery_latency(), b.recovery_latency());
}

// Acceptance gate for the profiler tentpole: one smoke-sized cell must
// exercise every instrumented phase — serialize, crypto, merkle, event
// queue, sync/catch-up and payoff accounting all report entries. Counts
// (not timer sums) are asserted: counts are deterministic, wall-clock is
// host noise.
TEST(Profiling, AllSixPhasesNonZeroOnSmokeCell) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {7};
  spec.nets = {NetKind::kPartialSynchrony};
  spec.seeds = {1};
  spec.workers = 1;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 1u);
  const ProfReport& p = report.cells.at(0).profile;
  EXPECT_EQ(p.level, 3);
  double total_ns = 0.0;
  for (const ProfItem phase : kProfPhases) {
    EXPECT_GT(p.count(phase), 0u)
        << "phase '" << to_string(phase) << "' never entered";
    total_ns += p.sum(phase);
  }
  EXPECT_GT(total_ns, 0.0);
  // The L3 counters behind the phases fire too.
  EXPECT_GT(p.count(kL3EnvelopesSigned), 0u);
  EXPECT_GT(p.count(kL3EnvelopesVerified), 0u);
  EXPECT_GT(p.count(kL3ShaCalls), 0u);
  EXPECT_GT(p.count(kL3EventsScheduled), 0u);
  EXPECT_GT(p.count(kL3EventsDispatched), 0u);
  // Every signature computes the body digest at most once per envelope.
  EXPECT_GT(p.count(kL3DigestCacheMisses), 0u);
  EXPECT_LE(p.sum(kL3DigestCacheMisses),
            p.sum(kL3EnvelopesSigned) + p.sum(kL3EnvelopesVerified));
}

// The schedule_in/schedule_at clamps are defensive rails, not expected
// behaviour: in the deterministic matrix nothing ever schedules into the
// past (net models deliver at now + delay with delay >= 1), so the clamp
// counters must stay exactly zero across a representative sweep.
TEST(Profiling, ClampCountersNeverFireInMatrixCells) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kHotStuff,
                    Protocol::kRaftLite, Protocol::kQuorum};
  spec.committee_sizes = {4, 7};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony,
               NetKind::kAsynchronous};
  spec.seeds = {1, 2};
  spec.target_blocks = 2;
  spec.workload_txs = 8;
  const MatrixReport report = run_matrix(spec);
  for (const CellResult& cell : report.cells) {
    EXPECT_EQ(cell.profile.count(kL3NegativeDelayClamps), 0u)
        << cell.label();
    EXPECT_EQ(cell.profile.count(kL3PastTimeClamps), 0u) << cell.label();
  }
  const ProfReport total = report.aggregate_profile();
  EXPECT_EQ(total.sum(kL3NegativeDelayClamps), 0.0);
  EXPECT_EQ(total.sum(kL3PastTimeClamps), 0.0);
}

// With profiling enabled (the default), parallel and serial sweeps must
// still be byte-identical — including every per-cell profiler COUNT. The
// profiler is thread_local and reset per Simulation, so a cell's counts
// cannot depend on which worker ran it or what ran before it.
TEST(Profiling, ProfileCountsIdenticalSerialVsParallel) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kQuorum};
  spec.committee_sizes = {4, 7};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony};
  spec.seeds = {1, 2};
  spec.target_blocks = 2;
  spec.workload_txs = 8;

  MatrixSpec serial = spec;
  serial.workers = 1;
  MatrixSpec parallel = spec;
  parallel.workers = 4;

  const MatrixReport a = run_matrix(serial);
  const MatrixReport b = run_matrix(parallel);
  ASSERT_EQ(a.cell_count(), b.cell_count());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& x = a.cells[i];
    const CellResult& y = b.cells[i];
    ASSERT_EQ(x.label(), y.label());
    EXPECT_EQ(x.messages, y.messages) << x.label();
    for (std::uint16_t item = 0; item < kNumProfItems; ++item) {
      const auto pi = static_cast<ProfItem>(item);
      EXPECT_EQ(x.profile.count(pi), y.profile.count(pi))
          << x.label() << " item " << to_string(pi);
      if (tier_of(pi) == 3) {
        // L3 sums are event totals, exactly reproducible too.
        EXPECT_EQ(x.profile.sum(pi), y.profile.sum(pi))
            << x.label() << " item " << to_string(pi);
      }
    }
  }
}

// One report per run: the Simulation constructor resets the thread
// profiler, so running the same cell twice back to back on one thread
// yields identical counts — nothing leaks from the first run into the
// second snapshot.
TEST(Profiling, ResetGivesOneReportPerRun) {
  auto run_once = [] {
    MatrixSpec spec;
    spec.protocols = {Protocol::kPrft};
    spec.committee_sizes = {4};
    spec.nets = {NetKind::kSynchronous};
    spec.seeds = {7};
    spec.target_blocks = 2;
    spec.workload_txs = 8;
    spec.workers = 1;
    return run_matrix(spec).cells.at(0).profile;
  };
  const ProfReport a = run_once();
  const ProfReport b = run_once();
  ASSERT_GT(a.count(kL3EventsDispatched), 0u);
  for (std::uint16_t item = 0; item < kNumProfItems; ++item) {
    const auto pi = static_cast<ProfItem>(item);
    EXPECT_EQ(a.count(pi), b.count(pi)) << to_string(pi);
    if (tier_of(pi) == 3) {
      EXPECT_EQ(a.sum(pi), b.sum(pi)) << to_string(pi);
    }
  }
}

TEST(SeedMatrix, CellLabelsAreDistinct) {
  CellResult a;
  a.protocol = Protocol::kPrft;
  a.n = 7;
  a.net = NetKind::kPartialSynchrony;
  a.seed = 3;
  CellResult b = a;
  b.seed = 4;
  EXPECT_EQ(a.label(), "prft/n=7/partial-synchrony/seed=3");
  EXPECT_NE(a.label(), b.label());
}

// Determinism regression: the simulator is seeded end to end, so two runs
// with identical scenarios must produce byte-identical finalized chains and
// identical traffic accounting. Any divergence means nondeterminism crept
// into the event loop, RNG plumbing, or protocol logic.
TEST(Determinism, IdenticalRunsProduceIdenticalChainsAndStats) {
  auto run_once = [](std::vector<std::vector<crypto::Hash256>>& hashes,
                     std::uint64_t& msg_count, std::uint64_t& msg_bytes) {
    ScenarioSpec spec;
    spec.committee.n = 7;
    spec.seed = 42;
    spec.budget.target_blocks = 4;
    spec.workload.txs = 16;
    Simulation sim(spec);
    sim.start();
    sim.run_until(sec(60));
    for (NodeId id = 0; id < 7; ++id) {
      hashes.push_back(sim.replica(id).chain().finalized_hashes());
    }
    msg_count = sim.net().stats().total().count;
    msg_bytes = sim.net().stats().total().bytes;
  };

  std::vector<std::vector<crypto::Hash256>> hashes_a;
  std::vector<std::vector<crypto::Hash256>> hashes_b;
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  std::uint64_t bytes_a = 0;
  std::uint64_t bytes_b = 0;
  run_once(hashes_a, count_a, bytes_a);
  run_once(hashes_b, count_b, bytes_b);

  ASSERT_GT(count_a, 0u);
  EXPECT_EQ(count_a, count_b) << "message counts diverged across reruns";
  EXPECT_EQ(bytes_a, bytes_b) << "message bytes diverged across reruns";
  ASSERT_EQ(hashes_a.size(), hashes_b.size());
  for (std::size_t i = 0; i < hashes_a.size(); ++i) {
    EXPECT_EQ(hashes_a[i], hashes_b[i])
        << "finalized chain of node " << i << " diverged across reruns";
    EXPECT_FALSE(hashes_a[i].empty());
  }
}

// Different seeds must actually vary the run (the matrix would be vacuous if
// every seed produced the same trajectory). The virtual time at which the
// event queue drains depends on every sampled network delay, so it is a
// sensitive fingerprint of the schedule.
TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  auto drain_time = [](std::uint64_t seed) {
    ScenarioSpec spec;
    spec.committee.n = 7;
    spec.seed = seed;
    spec.budget.target_blocks = 4;
    spec.workload.txs = 16;
    Simulation sim(spec);
    sim.start();
    sim.run();  // drain: nodes stop at target_blocks
    return sim.net().now();
  };
  const SimTime base = drain_time(1);
  EXPECT_TRUE(drain_time(2) != base || drain_time(3) != base ||
              drain_time(4) != base);
}

}  // namespace
}  // namespace ratcon::harness
