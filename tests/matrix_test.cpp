// Seed-matrix scenario sweep: the shared safety properties (agreement,
// c-strict ordering, no honest slashing) must hold on EVERY cell of the
// committee-size × network-model × seed cross-product, for pRFT and for the
// HotStuff / Raft-lite baselines. Rational-consensus equilibrium claims are
// only credible under varied network and committee conditions; this suite is
// the regression gate for that. Liveness is additionally asserted where the
// model guarantees it (synchrony, and partial synchrony after GST).

#include <gtest/gtest.h>

#include "harness/matrix.hpp"
#include "harness/prft_cluster.hpp"

namespace ratcon::harness {
namespace {

// 4 committee sizes × 3 network models × 5 seeds, per protocol.
MatrixSpec tier1_spec() {
  MatrixSpec spec;
  spec.committee_sizes = {4, 7, 16, 31};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony,
               NetKind::kAsynchronous};
  spec.seeds = {1, 2, 3, 4, 5};
  spec.target_blocks = 3;
  spec.workload_txs = 12;
  return spec;
}

void expect_every_cell_safe(const MatrixReport& report,
                            const MatrixSpec& spec) {
  ASSERT_EQ(report.cell_count(), spec.protocols.size() *
                                     spec.committee_sizes.size() *
                                     spec.nets.size() * spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "honest deposit burned in " << cell.label();
    // Synchronous cells must also be live: every honest replica reaches the
    // target. (Asynchronous cells may legitimately stall — FLP.)
    if (cell.net == NetKind::kSynchronous) {
      EXPECT_GE(cell.min_height, spec.target_blocks)
          << "liveness lost in " << cell.label();
    }
    if (cell.min_height > 0) {
      EXPECT_GT(cell.messages, 0u) << "progress without traffic in "
                                   << cell.label();
    }
  }
  EXPECT_TRUE(report.all_safe()) << report.summary();
}

TEST(SeedMatrix, PrftSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kPrft};
  expect_every_cell_safe(run_matrix(spec), spec);
}

TEST(SeedMatrix, HotstuffSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kHotStuff};
  expect_every_cell_safe(run_matrix(spec), spec);
}

TEST(SeedMatrix, RaftLiteSafeOnEveryCell) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kRaftLite};
  expect_every_cell_safe(run_matrix(spec), spec);
}

// Crash-fault column of the matrix: one honest node crash-stops early. The
// committee sizes here tolerate one silent node (pRFT quorum n − t0 with
// t0 ≥ 1), so safety must survive on every net, the crashed node must never
// be slashed, and synchronous cells must still finalize on the live quorum.
TEST(SeedMatrix, PrftSafeWithCrashFault) {
  MatrixSpec spec = tier1_spec();
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {7, 16, 31};
  spec.crash_count = 1;
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(),
            spec.committee_sizes.size() * spec.nets.size() *
                spec.seeds.size());
  for (const CellResult& cell : report.cells) {
    EXPECT_TRUE(cell.agreement) << "fork in " << cell.label();
    EXPECT_TRUE(cell.ordering) << "ordering violated in " << cell.label();
    EXPECT_FALSE(cell.honest_slashed)
        << "crashed-but-honest deposit burned in " << cell.label();
    if (cell.net == NetKind::kSynchronous) {
      EXPECT_GE(cell.max_height, spec.target_blocks)
          << "live quorum stalled in " << cell.label();
    }
  }
}

TEST(SeedMatrix, ReportSummarizesEveryCell) {
  MatrixSpec spec;
  spec.protocols = {Protocol::kPrft};
  spec.committee_sizes = {4};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2};
  const MatrixReport report = run_matrix(spec);
  ASSERT_EQ(report.cell_count(), 2u);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("prft"), std::string::npos);
  EXPECT_NE(summary.find("synchronous"), std::string::npos);
  EXPECT_TRUE(report.unsafe_cells().empty()) << summary;
}

TEST(SeedMatrix, CellLabelsAreDistinct) {
  CellResult a;
  a.protocol = Protocol::kPrft;
  a.n = 7;
  a.net = NetKind::kPartialSynchrony;
  a.seed = 3;
  CellResult b = a;
  b.seed = 4;
  EXPECT_EQ(a.label(), "prft/n=7/partial-synchrony/seed=3");
  EXPECT_NE(a.label(), b.label());
}

// Determinism regression: the simulator is seeded end to end, so two runs
// with identical options must produce byte-identical finalized chains and
// identical traffic accounting. Any divergence means nondeterminism crept
// into the event loop, RNG plumbing, or protocol logic.
TEST(Determinism, IdenticalRunsProduceIdenticalChainsAndStats) {
  auto run_once = [](std::vector<std::vector<crypto::Hash256>>& hashes,
                     std::uint64_t& msg_count, std::uint64_t& msg_bytes) {
    PrftClusterOptions opt;
    opt.n = 7;
    opt.seed = 42;
    opt.target_blocks = 4;
    PrftCluster cluster(opt);
    cluster.inject_workload(16, msec(1), msec(2));
    cluster.start();
    cluster.run_until(sec(60));
    for (NodeId id = 0; id < 7; ++id) {
      hashes.push_back(cluster.node(id).chain().finalized_hashes());
    }
    msg_count = cluster.net().stats().total().count;
    msg_bytes = cluster.net().stats().total().bytes;
  };

  std::vector<std::vector<crypto::Hash256>> hashes_a;
  std::vector<std::vector<crypto::Hash256>> hashes_b;
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  std::uint64_t bytes_a = 0;
  std::uint64_t bytes_b = 0;
  run_once(hashes_a, count_a, bytes_a);
  run_once(hashes_b, count_b, bytes_b);

  ASSERT_GT(count_a, 0u);
  EXPECT_EQ(count_a, count_b) << "message counts diverged across reruns";
  EXPECT_EQ(bytes_a, bytes_b) << "message bytes diverged across reruns";
  ASSERT_EQ(hashes_a.size(), hashes_b.size());
  for (std::size_t i = 0; i < hashes_a.size(); ++i) {
    EXPECT_EQ(hashes_a[i], hashes_b[i])
        << "finalized chain of node " << i << " diverged across reruns";
    EXPECT_FALSE(hashes_a[i].empty());
  }
}

// Different seeds must actually vary the run (the matrix would be vacuous if
// every seed produced the same trajectory). The virtual time at which the
// event queue drains depends on every sampled network delay, so it is a
// sensitive fingerprint of the schedule.
TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  auto drain_time = [](std::uint64_t seed) {
    PrftClusterOptions opt;
    opt.n = 7;
    opt.seed = seed;
    opt.target_blocks = 4;
    PrftCluster cluster(opt);
    cluster.inject_workload(16, msec(1), msec(2));
    cluster.start();
    cluster.run();  // drain: nodes stop at target_blocks
    return cluster.net().now();
  };
  const SimTime base = drain_time(1);
  EXPECT_TRUE(drain_time(2) != base || drain_time(3) != base ||
              drain_time(4) != base);
}

}  // namespace
}  // namespace ratcon::harness
