// The empirical game engine (src/rational): StrategyCatalog executability,
// PayoffAccountant height classification and utilities, and the
// DeviationExplorer's ε-best-response certificate — the paper's central
// game-theoretic claim measured from actual Simulation runs:
//
//   * under pRFT the honest profile is an ε-best-response for a rational
//     player on every tested network preset, while
//   * the strong-quorum baseline (Claim 1's τ > n − t0 regime) admits a
//     strictly profitable unilateral deviation — the named strategies
//     π_abs and π_pc — for a θ=3 player,
//
// deterministically across seeds, identical serial and parallel.

#include <gtest/gtest.h>

#include <memory>

#include "adversary/behaviors.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"
#include "rational/catalog.hpp"
#include "rational/explorer.hpp"
#include "rational/payoff.hpp"

namespace ratcon::rational {
namespace {

using game::Strategy;
using game::SystemState;
using harness::NetKind;
using harness::Protocol;
using harness::ScenarioSpec;
using harness::Simulation;

// ---------------------------------------------------------------------------
// StrategyCatalog

TEST(StrategyCatalog, ParsesEveryStrategyName) {
  EXPECT_EQ(strategy_from_name("pi_0"), Strategy::kHonest);
  EXPECT_EQ(strategy_from_name("honest"), Strategy::kHonest);
  EXPECT_EQ(strategy_from_name("pi_abs"), Strategy::kAbstain);
  EXPECT_EQ(strategy_from_name("pi_ds"), Strategy::kDoubleSign);
  EXPECT_EQ(strategy_from_name("pi_fork"), Strategy::kDoubleSign);
  EXPECT_EQ(strategy_from_name("pi_pc"), Strategy::kPartialCensor);
  EXPECT_EQ(strategy_from_name("partial-censor"), Strategy::kPartialCensor);
  EXPECT_EQ(strategy_from_name("pi_bait"), Strategy::kBait);
  EXPECT_EQ(strategy_from_name("free-ride-on-catchup"), Strategy::kFreeRide);
  EXPECT_EQ(strategy_from_name("pi_lazy"), Strategy::kLazyVote);
  EXPECT_THROW((void)strategy_from_name("pi_unknown"), std::invalid_argument);
}

TEST(StrategyCatalog, SupportMatrixCoversEveryRegisteredProtocol) {
  const Protocol all[] = {Protocol::kPrft, Protocol::kHotStuff,
                          Protocol::kRaftLite, Protocol::kQuorum,
                          Protocol::kUnanimous};
  for (Protocol proto : all) {
    // The behavior-expressible strategies run everywhere.
    for (Strategy s : {Strategy::kHonest, Strategy::kAbstain,
                       Strategy::kPartialCensor, Strategy::kFreeRide,
                       Strategy::kLazyVote}) {
      EXPECT_TRUE(strategy_supported(proto, s)) << to_string(proto);
    }
  }
  EXPECT_TRUE(strategy_supported(Protocol::kPrft, Strategy::kDoubleSign));
  EXPECT_TRUE(strategy_supported(Protocol::kQuorum, Strategy::kDoubleSign));
  EXPECT_FALSE(strategy_supported(Protocol::kHotStuff, Strategy::kDoubleSign));
  EXPECT_FALSE(strategy_supported(Protocol::kRaftLite, Strategy::kDoubleSign));
  EXPECT_TRUE(strategy_supported(Protocol::kPrft, Strategy::kBait));
  EXPECT_FALSE(strategy_supported(Protocol::kQuorum, Strategy::kBait));
}

TEST(StrategyCatalog, AppliedProfileProducesDeviantReplicas) {
  for (Protocol proto : {Protocol::kPrft, Protocol::kHotStuff,
                         Protocol::kRaftLite, Protocol::kQuorum,
                         Protocol::kUnanimous}) {
    ScenarioSpec spec;
    spec.protocol = proto;
    spec.committee.n = 8;
    spec.budget.target_blocks = 1;
    ProfileSpec profile;
    profile.strategies[1] = Strategy::kAbstain;
    profile.strategies[4] = Strategy::kLazyVote;
    apply_profile(spec, profile);
    Simulation sim(spec);
    EXPECT_FALSE(sim.replica(1).is_honest()) << to_string(proto);
    EXPECT_FALSE(sim.replica(4).is_honest()) << to_string(proto);
    EXPECT_TRUE(sim.replica(0).is_honest()) << to_string(proto);
  }
}

TEST(StrategyCatalog, RejectsUnsupportedStrategyAndBadPlayer) {
  ScenarioSpec spec;
  spec.protocol = Protocol::kHotStuff;
  spec.committee.n = 4;
  ProfileSpec ds;
  ds.strategies[0] = Strategy::kDoubleSign;
  EXPECT_THROW(apply_profile(spec, ds), std::invalid_argument);

  ProfileSpec outside;
  outside.strategies[9] = Strategy::kAbstain;
  EXPECT_THROW(apply_profile(spec, outside), std::invalid_argument);
}

TEST(StrategyCatalog, DoubleSignCoalitionGetsSlashedUnderPrft) {
  // Lemma 4's mechanism observed through the catalog: a π_ds coalition
  // within k + t < n/2 cannot fork pRFT and loses its deposits to the PoF.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 11;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  ProfileSpec profile;
  for (NodeId id : {0u, 1u, 2u, 3u}) {
    profile.strategies[id] = Strategy::kDoubleSign;
  }
  apply_profile(spec, profile);
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(240));
  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
  EXPECT_TRUE(sim.deposits().slashed(0));
  EXPECT_TRUE(sim.deposits().slashed(3));
}

// ---------------------------------------------------------------------------
// PayoffAccountant

TEST(PayoffAccountant, HonestRunScoresSigma0Everywhere) {
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = 21;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  Simulation sim(spec);
  (void)sim.run_to_completion();

  PayoffParams params;
  params.default_theta = 3;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);
  ASSERT_EQ(report.height_states.size(), 3u);
  for (SystemState s : report.height_states) {
    EXPECT_EQ(s, SystemState::kHonest);
  }
  EXPECT_EQ(report.end_state, SystemState::kHonest);
  for (const PlayerPayoff& p : report.players) {
    EXPECT_DOUBLE_EQ(p.utility, 0.0);  // f(σ_0, θ) = 0, no penalties
    EXPECT_FALSE(p.slashed);
    EXPECT_EQ(p.deposit_delta, 0);
    EXPECT_GT(p.messages, 0u);
  }
}

TEST(PayoffAccountant, StalledRunScoresSigmaNP) {
  // An abstaining coalition of 3 of 9 (Theorem 1's range) stalls pRFT:
  // every scored height is σ_NP, worth +α per round to θ=3 and −α to θ=0.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 31;
  spec.budget.target_blocks = 3;
  spec.budget.horizon = sec(30);
  spec.workload.txs = 6;
  ProfileSpec profile;
  for (NodeId id : {0u, 1u, 2u}) profile.strategies[id] = Strategy::kAbstain;
  apply_profile(spec, profile);
  Simulation sim(spec);
  (void)sim.run_to_completion();

  PayoffParams params;
  params.thetas[3] = 3;
  params.default_theta = 0;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);
  for (SystemState s : report.height_states) {
    EXPECT_EQ(s, SystemState::kNoProgress);
  }
  const double d = params.util.delta;
  const double stream = 1.0 + d + d * d;
  EXPECT_NEAR(report.of(3).utility, params.util.alpha * stream, 1e-9);
  EXPECT_NEAR(report.of(4).utility, -params.util.alpha * stream, 1e-9);
}

TEST(PayoffAccountant, CensoredRunScoresSigmaCP) {
  // Theorem 2's π_pc coalition against pRFT: liveness holds, the watched
  // tx never lands, progressed heights classify σ_CP.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 41;
  spec.budget.target_blocks = 3;
  spec.budget.horizon = sec(600);
  spec.workload.txs = 6;
  ProfileSpec profile;
  profile.censored_txs = {1};
  for (NodeId id : {0u, 1u, 2u, 3u}) {
    profile.strategies[id] = Strategy::kPartialCensor;
  }
  apply_profile(spec, profile);
  Simulation sim(spec);
  (void)sim.run_to_completion();
  ASSERT_GE(sim.max_height(), 3u) << "π_pc must preserve eventual liveness";

  PayoffParams params;
  params.watched_tx = 1;
  params.default_theta = 2;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);
  EXPECT_EQ(report.end_state, SystemState::kCensorship);
  for (SystemState s : report.height_states) {
    EXPECT_EQ(s, SystemState::kCensorship);
  }
  EXPECT_GT(report.of(0).utility, 0.0);  // θ=2 profits from σ_CP
}

TEST(PayoffAccountant, PenaltyChargedInThePoFRound) {
  // A π_ds coalition gets slashed; the accountant charges the one-shot L
  // in the burn's consensus round and the utility reflects it.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 51;
  spec.budget.target_blocks = 3;
  spec.budget.horizon = sec(240);
  spec.workload.txs = 6;
  ProfileSpec profile;
  for (NodeId id : {0u, 1u, 2u, 3u}) {
    profile.strategies[id] = Strategy::kDoubleSign;
  }
  apply_profile(spec, profile);
  Simulation sim(spec);
  const harness::RunReport run = sim.run_to_completion();
  ASSERT_TRUE(sim.deposits().slashed(3));
  ASSERT_FALSE(run.penalties.empty());

  PayoffParams params;
  params.thetas[3] = 1;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);
  bool charged = false;
  for (const game::RoundOutcome& r : report.of(3).rounds) {
    charged = charged || r.penalized;
  }
  EXPECT_TRUE(charged);
  EXPECT_LT(report.of(3).utility, 0.0) << "the burned L must dominate";
  EXPECT_EQ(report.of(3).deposit_delta,
            -sim.deposits().collateral());
}

TEST(PayoffAccountant, MessageCostsChargePerSender) {
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = 61;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 4;
  ProfileSpec profile;
  profile.strategies[5] = Strategy::kFreeRide;
  apply_profile(spec, profile);
  Simulation sim(spec);
  (void)sim.run_to_completion();

  PayoffParams params;
  params.msg_cost = 0.001;
  params.default_theta = 0;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);
  // The free-rider sent (almost) nothing, so its message bill is the
  // smallest in the committee and its utility the least negative.
  for (NodeId id = 0; id < 7; ++id) {
    if (id == 5) continue;
    EXPECT_LT(report.of(5).messages, report.of(id).messages) << id;
    EXPECT_GT(report.of(5).utility, report.of(id).utility) << id;
  }
}

TEST(PayoffAccountant, ByteCostsChargeMeasuredWireBytes) {
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = 61;
  spec.budget.target_blocks = 2;
  spec.workload.txs = 4;
  Simulation sim(spec);
  (void)sim.run_to_completion();

  PayoffParams params;
  params.byte_cost = 1e-6;
  const PayoffAccountant accountant(params);
  const PayoffReport report = accountant.account(sim);

  PayoffParams free_params;  // cost-free control on the same run
  const PayoffReport free_report = PayoffAccountant(free_params).account(sim);

  for (NodeId id = 0; id < 7; ++id) {
    const net::MsgCounter sent = sim.net().stats().for_sender(id);
    // bytes_sent mirrors the traffic stats the size figures are built from.
    EXPECT_EQ(report.of(id).bytes_sent, sent.bytes) << id;
    EXPECT_GT(report.of(id).bytes_sent, 0u) << id;
    // The utility gap vs the cost-free control is exactly the byte bill.
    EXPECT_DOUBLE_EQ(
        free_report.of(id).utility - report.of(id).utility,
        params.byte_cost * static_cast<double>(sent.bytes))
        << id;
  }
}

TEST(PayoffAccountant, FreeRiderStillGetsTheChainThroughCatchup) {
  // π_free sends no consensus messages yet ends with the full finalized
  // chain, transferred by src/sync — the strategy the catch-up subsystem
  // newly makes executable.
  ScenarioSpec spec;
  spec.committee.n = 7;
  spec.seed = 71;
  spec.budget.target_blocks = 3;
  spec.budget.horizon = sec(240);
  spec.workload.txs = 6;
  ProfileSpec profile;
  profile.strategies[5] = Strategy::kFreeRide;
  apply_profile(spec, profile);
  Simulation sim(spec);
  (void)sim.run_to_completion();
  EXPECT_GE(sim.replica(5).chain().finalized_height(), 3u);
  const auto consensus_sent = sim.net().stats().for_sender_proto(
      5, static_cast<std::uint8_t>(consensus::ProtoId::kPrft));
  EXPECT_EQ(consensus_sent.count, 0u);
}

// ---------------------------------------------------------------------------
// DeviationExplorer: the equilibrium certificate

ExplorerSpec certificate_spec() {
  ExplorerSpec spec;
  spec.protocols = {Protocol::kPrft, Protocol::kUnanimous};
  spec.committee_sizes = {8};
  spec.nets = {NetKind::kSynchronous, NetKind::kPartialSynchrony};
  spec.seeds = {1, 2};
  spec.players = {3};
  spec.strategy_space = {Strategy::kHonest, Strategy::kAbstain,
                         Strategy::kPartialCensor};
  spec.theta = 3;  // the hardest type: paid for no-progress
  spec.payoff.watched_tx = 1;
  spec.base.censored_txs = {1};
  spec.epsilon = 0.05;
  spec.target_blocks = 3;
  spec.workload_txs = 6;
  return spec;
}

TEST(DeviationExplorer, CertifiesHonestEpsilonEquilibriumUnderPrft) {
  ExplorerSpec spec = certificate_spec();
  spec.protocols = {Protocol::kPrft};
  const ExplorerReport report = explore(spec);
  ASSERT_EQ(report.cells.size(), 2u);  // two network presets
  for (const CellVerdict& cell : report.cells) {
    EXPECT_TRUE(cell.base_is_eps_equilibrium) << cell.label();
    EXPECT_TRUE(cell.profitable.empty()) << cell.label();
    // Empirical game sanity: honest earned (near) zero.
    EXPECT_NEAR(cell.game.payoff(cell.base_profile, 0), 0.0, spec.epsilon);
  }
  EXPECT_TRUE(report.all_eps_equilibria());
}

TEST(DeviationExplorer, FindsStrictlyProfitableDeviationInBaseline) {
  // Claim 1 / Theorem 1 measured: under the strong-quorum baseline
  // (τ = n) a single θ=3 player profits strictly — on every tested
  // network preset — by the *named* strategies π_abs and π_pc, because
  // one silent player stalls the quorum forever and no penalty exists.
  ExplorerSpec spec = certificate_spec();
  spec.protocols = {Protocol::kUnanimous};
  const ExplorerReport report = explore(spec);
  ASSERT_EQ(report.cells.size(), 2u);
  const double stream = 1.0 + 0.9 + 0.81;  // α·Σ δ^h over the window
  for (const CellVerdict& cell : report.cells) {
    EXPECT_FALSE(cell.base_is_eps_equilibrium) << cell.label();
    ASSERT_FALSE(cell.profitable.empty()) << cell.label();
    bool abstain_profits = false;
    for (const Deviation& dev : cell.profitable) {
      if (dev.strategy == Strategy::kAbstain) {
        abstain_profits = true;
        EXPECT_NEAR(dev.gain, stream, 0.2) << cell.label();
      }
    }
    EXPECT_TRUE(abstain_profits) << cell.label();
  }
}

TEST(DeviationExplorer, DeterministicAcrossSeedsSerialAndParallel) {
  // The acceptance gate's reproducibility clause: the whole sweep is a
  // pure function of the seeds — a serial explorer and a 4-worker one
  // produce bit-identical utilities and verdicts.
  ExplorerSpec serial = certificate_spec();
  serial.workers = 1;
  ExplorerSpec parallel = certificate_spec();
  parallel.workers = 4;
  const ExplorerReport a = explore(serial);
  const ExplorerReport b = explore(parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    const CellVerdict& ca = a.cells[c];
    const CellVerdict& cb = b.cells[c];
    EXPECT_EQ(ca.label(), cb.label());
    EXPECT_EQ(ca.base_is_eps_equilibrium, cb.base_is_eps_equilibrium);
    ASSERT_EQ(ca.profitable.size(), cb.profitable.size());
    for (std::size_t d = 0; d < ca.profitable.size(); ++d) {
      EXPECT_EQ(ca.profitable[d].strategy, cb.profitable[d].strategy);
      EXPECT_DOUBLE_EQ(ca.profitable[d].gain, cb.profitable[d].gain);
    }
    for (const game::Profile& p : ca.game.all_profiles()) {
      for (int player = 0; player < ca.game.num_players(); ++player) {
        EXPECT_DOUBLE_EQ(ca.game.payoff(p, player), cb.game.payoff(p, player));
      }
    }
  }
}

TEST(DeviationExplorer, CoalitionModeBuildsMultiPlayerEmpiricalGame) {
  // Two modeled players × two strategies on the unanimous baseline with
  // θ=0 deviators: a coordination game — all-honest and all-abstain are
  // both equilibria and all-honest Pareto-dominates (the §4.3 focal-point
  // structure, measured rather than hand-fed).
  ExplorerSpec spec;
  spec.protocols = {Protocol::kUnanimous};
  spec.committee_sizes = {8};
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2};
  spec.players = {2, 5};
  spec.strategy_space = {Strategy::kHonest, Strategy::kAbstain};
  spec.theta = 0;
  spec.epsilon = 0.05;
  spec.target_blocks = 3;
  spec.workload_txs = 6;
  const ExplorerReport report = explore(spec);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellVerdict& cell = report.cells[0];
  EXPECT_TRUE(cell.base_is_eps_equilibrium);  // honest is an equilibrium

  const auto equilibria = cell.game.pure_nash(spec.epsilon);
  bool has_all_honest = false;
  bool has_all_abstain = false;
  for (const game::Profile& eq : equilibria) {
    if (eq == game::Profile{0, 0}) has_all_honest = true;
    if (eq == game::Profile{1, 1}) has_all_abstain = true;
  }
  EXPECT_TRUE(has_all_honest);
  EXPECT_TRUE(has_all_abstain);
  EXPECT_TRUE(cell.game.pareto_dominates(game::Profile{0, 0},
                                         game::Profile{1, 1}, spec.epsilon));
  const auto focal = cell.game.pareto_frontier(equilibria, spec.epsilon);
  ASSERT_EQ(focal.size(), 1u);
  EXPECT_EQ(focal[0], (game::Profile{0, 0}));
}

TEST(DeviationExplorer, RejectsMisconfiguredSpecs) {
  ExplorerSpec no_players = certificate_spec();
  no_players.players.clear();
  EXPECT_THROW((void)explore(no_players), std::invalid_argument);

  ExplorerSpec no_honest = certificate_spec();
  no_honest.strategy_space = {Strategy::kAbstain};
  EXPECT_THROW((void)explore(no_honest), std::invalid_argument);

  // Empty axes must be rejected, not averaged into NaN payoffs (seeds)
  // or a vacuously-true certificate (cells).
  ExplorerSpec no_seeds = certificate_spec();
  no_seeds.seeds.clear();
  EXPECT_THROW((void)explore(no_seeds), std::invalid_argument);
  ExplorerSpec no_protocols = certificate_spec();
  no_protocols.protocols.clear();
  EXPECT_THROW((void)explore(no_protocols), std::invalid_argument);

  // Regression: an unsupported (protocol, strategy) pair must surface as
  // a catchable error before the parallel fan-out — a throw on a bare
  // worker thread would terminate the process instead.
  ExplorerSpec unsupported = certificate_spec();
  unsupported.protocols = {Protocol::kHotStuff};
  unsupported.strategy_space = {Strategy::kHonest, Strategy::kDoubleSign};
  unsupported.workers = 4;
  EXPECT_THROW((void)explore(unsupported), std::invalid_argument);
}

TEST(ParallelCells, PropagatesWorkerExceptions) {
  // The shared sweep engine itself must also survive a throwing callback.
  EXPECT_THROW(harness::parallel_cells(64, 4,
                                       [](std::size_t i) {
                                         if (i == 13) {
                                           throw std::runtime_error("boom");
                                         }
                                       }),
               std::runtime_error);
}

}  // namespace
}  // namespace ratcon::rational
