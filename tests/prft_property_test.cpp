// Property sweeps for pRFT: the safety and accountability invariants of
// Definition 1 + Definition 6, parameterized over committee size, fork
// coalition size and seed. These are the "worst equilibrium" checks —
// every admissible adversary shape must leave every invariant intact.
//
// Invariants asserted in every configuration:
//   I1 (agreement):        no two honest ledgers finalize conflicting blocks
//   I2 (c-strict order):   the shorter honest ledger is a prefix of the longer
//   I3 (acct. soundness):  no honest player's deposit is ever burned
//   I4 (validity-ish):     every finalized tx was actually submitted

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/fork_agent.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"

namespace ratcon {
namespace {

using harness::NetworkSpec;
using harness::ScenarioSpec;
using harness::Simulation;

// (n, coalition size, seed, use partial synchrony + partition)
using Params = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, bool>;

class PrftInvariants : public ::testing::TestWithParam<Params> {};

TEST_P(PrftInvariants, HoldUnderForkCoalitions) {
  const auto [n, coalition_size, seed, psync] = GetParam();

  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = n;
  for (NodeId id = 0; id < coalition_size; ++id) plan->coalition.insert(id);
  const std::uint32_t honest = n - coalition_size;
  std::vector<NodeId> side_a, side_b;
  for (NodeId id = coalition_size; id < coalition_size + (honest + 1) / 2;
       ++id) {
    plan->side_a.insert(id);
    side_a.push_back(id);
  }
  for (NodeId id = coalition_size + (honest + 1) / 2; id < n; ++id) {
    plan->side_b.insert(id);
    side_b.push_back(id);
  }

  ScenarioSpec spec;
  spec.committee.n = n;
  spec.seed = seed;
  spec.budget.target_blocks = 3;
  const std::uint64_t tx_count = 12;
  spec.workload.txs = tx_count;
  spec.workload.interval = msec(1);
  if (psync) {
    spec.net = NetworkSpec::partial_synchrony(msec(300), msec(10), 0.8);
    spec.faults.partition({side_a, side_b}, msec(1), msec(300));
  }
  if (coalition_size > 0) {
    spec.adversary.node_factory =
        [plan](NodeId id, const harness::NodeEnv& env)
        -> std::unique_ptr<consensus::IReplica> {
      if (plan->coalition.count(id)) {
        return std::make_unique<adversary::ForkAgentNode>(
            harness::make_prft_deps(id, env), plan);
      }
      return nullptr;
    };
  }
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  // I1 + I2.
  EXPECT_TRUE(sim.agreement_holds()) << "agreement";
  EXPECT_TRUE(sim.ordering_holds()) << "c-strict ordering";
  // I3.
  EXPECT_FALSE(sim.honest_player_slashed()) << "accountability soundness";
  // I4: finalized txs ⊆ injected ∪ fork-marker space.
  for (const ledger::Chain* chain : sim.honest_chains()) {
    for (std::uint64_t h = 1; h <= chain->finalized_height(); ++h) {
      for (const ledger::Transaction& tx : chain->at(h).txs) {
        const bool injected = tx.id >= 1 && tx.id <= tx_count;
        const bool fork_marker = (tx.id >> 32) == 0xF0F0F0F0ull;
        EXPECT_TRUE(injected || fork_marker)
            << "unknown tx " << tx.id << " at height " << h;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrftInvariants,
    ::testing::Values(
        // Honest committees across sizes and network models.
        Params{7, 0, 1, false}, Params{8, 0, 2, true}, Params{12, 0, 3, true},
        // Small coalitions (t <= t0): attacks produce no quorum at all.
        Params{9, 2, 4, false}, Params{9, 2, 5, true},
        // Maximal admissible coalitions k+t = ceil(n/2)-1.
        Params{8, 3, 6, false}, Params{8, 3, 7, true},
        Params{9, 4, 8, false}, Params{9, 4, 9, true},
        Params{12, 5, 10, false}, Params{12, 5, 11, true},
        Params{13, 6, 12, false}, Params{13, 6, 13, true}));

class PrftLiveness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrftLiveness, EventualLivenessAfterGst) {
  // Liveness sweep: honest committee under heavy pre-GST asynchrony must
  // finalize the target after GST, every seed.
  ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = GetParam();
  spec.budget.target_blocks = 4;
  spec.workload.txs = 8;
  spec.workload.interval = msec(1);
  spec.net = NetworkSpec::partial_synchrony(msec(700), msec(10), 0.95);
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  EXPECT_GE(sim.min_height(), 4u);
  EXPECT_TRUE(sim.agreement_holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrftLiveness,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace ratcon
