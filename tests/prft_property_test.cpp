// Property sweeps for pRFT: the safety and accountability invariants of
// Definition 1 + Definition 6, parameterized over committee size, fork
// coalition size and seed. These are the "worst equilibrium" checks —
// every admissible adversary shape must leave every invariant intact.
//
// Invariants asserted in every configuration:
//   I1 (agreement):        no two honest ledgers finalize conflicting blocks
//   I2 (c-strict order):   the shorter honest ledger is a prefix of the longer
//   I3 (acct. soundness):  no honest player's deposit is ever burned
//   I4 (validity-ish):     every finalized tx was actually submitted

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/fork_agent.hpp"
#include "harness/prft_cluster.hpp"
#include "net/netmodel.hpp"

namespace ratcon {
namespace {

using harness::PrftCluster;
using harness::PrftClusterOptions;

// (n, coalition size, seed, use partial synchrony + partition)
using Params = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, bool>;

class PrftInvariants : public ::testing::TestWithParam<Params> {};

TEST_P(PrftInvariants, HoldUnderForkCoalitions) {
  const auto [n, coalition_size, seed, psync] = GetParam();

  auto plan = std::make_shared<adversary::ForkPlan>();
  plan->n = n;
  for (NodeId id = 0; id < coalition_size; ++id) plan->coalition.insert(id);
  const std::uint32_t honest = n - coalition_size;
  std::vector<NodeId> side_a, side_b;
  for (NodeId id = coalition_size; id < coalition_size + (honest + 1) / 2;
       ++id) {
    plan->side_a.insert(id);
    side_a.push_back(id);
  }
  for (NodeId id = coalition_size + (honest + 1) / 2; id < n; ++id) {
    plan->side_b.insert(id);
    side_b.push_back(id);
  }

  PrftClusterOptions opt;
  opt.n = n;
  opt.seed = seed;
  opt.target_blocks = 3;
  if (psync) {
    opt.make_net = [] {
      return net::make_partial_synchrony(msec(300), msec(10), 0.8);
    };
  }
  opt.node_factory = [plan, coalition_size](NodeId id,
                                            prft::PrftNode::Deps deps) {
    if (coalition_size > 0 && plan->coalition.count(id)) {
      return std::unique_ptr<prft::PrftNode>(
          new adversary::ForkAgentNode(std::move(deps), plan));
    }
    return std::make_unique<prft::PrftNode>(std::move(deps));
  };
  PrftCluster cluster(opt);
  const std::uint64_t tx_count = 12;
  cluster.inject_workload(tx_count, msec(1), msec(1));
  if (psync) {
    cluster.net().schedule(msec(1), [&cluster, side_a, side_b]() {
      cluster.net().set_partition({side_a, side_b}, msec(300));
    });
  }
  cluster.start();
  cluster.run_until(sec(300));

  // I1 + I2.
  EXPECT_TRUE(cluster.agreement_holds()) << "agreement";
  EXPECT_TRUE(cluster.ordering_holds()) << "c-strict ordering";
  // I3.
  EXPECT_FALSE(cluster.honest_player_slashed()) << "accountability soundness";
  // I4: finalized txs ⊆ injected ∪ fork-marker space.
  for (const ledger::Chain* chain : cluster.honest_chains()) {
    for (std::uint64_t h = 1; h <= chain->finalized_height(); ++h) {
      for (const ledger::Transaction& tx : chain->at(h).txs) {
        const bool injected = tx.id >= 1 && tx.id <= tx_count;
        const bool fork_marker = (tx.id >> 32) == 0xF0F0F0F0ull;
        EXPECT_TRUE(injected || fork_marker)
            << "unknown tx " << tx.id << " at height " << h;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrftInvariants,
    ::testing::Values(
        // Honest committees across sizes and network models.
        Params{7, 0, 1, false}, Params{8, 0, 2, true}, Params{12, 0, 3, true},
        // Small coalitions (t <= t0): attacks produce no quorum at all.
        Params{9, 2, 4, false}, Params{9, 2, 5, true},
        // Maximal admissible coalitions k+t = ceil(n/2)-1.
        Params{8, 3, 6, false}, Params{8, 3, 7, true},
        Params{9, 4, 8, false}, Params{9, 4, 9, true},
        Params{12, 5, 10, false}, Params{12, 5, 11, true},
        Params{13, 6, 12, false}, Params{13, 6, 13, true}));

class PrftLiveness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrftLiveness, EventualLivenessAfterGst) {
  // Liveness sweep: honest committee under heavy pre-GST asynchrony must
  // finalize the target after GST, every seed.
  PrftClusterOptions opt;
  opt.n = 9;
  opt.seed = GetParam();
  opt.target_blocks = 4;
  opt.make_net = [] {
    return net::make_partial_synchrony(msec(700), msec(10), 0.95);
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(8, msec(1), msec(1));
  cluster.start();
  cluster.run_until(sec(300));

  EXPECT_GE(cluster.min_height(), 4u);
  EXPECT_TRUE(cluster.agreement_holds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrftLiveness,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace ratcon
