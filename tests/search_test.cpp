// The adaptive equilibrium-search subsystem (src/search): StrategySpace
// variants (pure / mixed / parametric-adversary), deterministic
// mixed-strategy sampling from labeled RNG substreams, bounded coalition
// enumeration with rotational symmetry reduction, and the
// BestResponseDriver's double-oracle loop — the acceptance gate:
//
//   * starting from only π₀ in the space, the driver *discovers* a
//     strictly profitable abstention coalition against the `unanimous`
//     (τ = n) baseline, and
//   * certifies honest play as an ε-best-response for pRFT under
//     coalition search up to k = ⌈n/4⌉ in Lemma 4's θ ≤ 1 regime,
//
// deterministically, serial == parallel, within the evaluation budget
// logged in the run summary.

#include <gtest/gtest.h>

#include <set>

#include "harness/scenario.hpp"
#include "search/coalitions.hpp"
#include "search/driver.hpp"
#include "search/strategy_space.hpp"

namespace ratcon::search {
namespace {

using game::Strategy;
using harness::NetKind;
using harness::Protocol;

// ---------------------------------------------------------------------------
// StrategyVariant / StrategySpace

TEST(StrategyVariant, LabelsAndHonesty) {
  EXPECT_EQ(StrategyVariant::honest().label(), "pi_0");
  EXPECT_TRUE(StrategyVariant::honest().is_honest());
  EXPECT_EQ(StrategyVariant::of(Strategy::kAbstain).label(), "pi_abs");
  EXPECT_FALSE(StrategyVariant::of(Strategy::kAbstain).is_honest());

  const StrategyVariant mix = StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kAbstain, 0.5}});
  EXPECT_EQ(mix.label(), "mix(pi_0:0.50,pi_abs:0.50)");
  EXPECT_FALSE(mix.is_honest());
  EXPECT_TRUE(StrategyVariant::mixed({{Strategy::kHonest, 1.0}}).is_honest());

  AdversaryKnobs knobs;
  EXPECT_TRUE(StrategyVariant::param(knobs).is_honest());
  knobs.delay_from = 2;
  knobs.delay_until = 6;
  knobs.delay_targets = {1};
  knobs.censor_txs = {7};
  const StrategyVariant param = StrategyVariant::param(knobs);
  EXPECT_FALSE(param.is_honest());
  EXPECT_EQ(param.label(), "knobs(delay[2,6)@{1} censor{7})");
}

TEST(StrategyVariant, SupportMatrix) {
  // Mixtures of behavior-expressible strategies run everywhere; π_ds in a
  // mixture is never executable (it needs a node subclass).
  const StrategyVariant mix = StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kAbstain, 0.5}});
  const StrategyVariant ds_mix = StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kDoubleSign, 0.5}});
  AdversaryKnobs equivocate;
  equivocate.equivocate = true;
  const StrategyVariant timed_ds = StrategyVariant::param(equivocate);
  for (const Protocol proto :
       {Protocol::kPrft, Protocol::kHotStuff, Protocol::kRaftLite,
        Protocol::kQuorum, Protocol::kUnanimous}) {
    EXPECT_TRUE(mix.supported(proto)) << to_string(proto);
    EXPECT_FALSE(ds_mix.supported(proto)) << to_string(proto);
  }
  EXPECT_TRUE(timed_ds.supported(Protocol::kPrft));
  EXPECT_TRUE(timed_ds.supported(Protocol::kQuorum));
  EXPECT_FALSE(timed_ds.supported(Protocol::kHotStuff));
  EXPECT_FALSE(timed_ds.supported(Protocol::kRaftLite));
}

TEST(StrategySpace, StartsAtHonestAndDeduplicates) {
  StrategySpace space;
  ASSERT_EQ(space.size(), 1);
  EXPECT_TRUE(space.at(0).is_honest());

  const int abs1 = space.add(StrategyVariant::of(Strategy::kAbstain));
  const int abs2 = space.add(StrategyVariant::of(Strategy::kAbstain));
  EXPECT_EQ(abs1, 1);
  EXPECT_EQ(abs2, 1);  // same variant, same slot
  EXPECT_EQ(space.add(StrategyVariant::honest()), 0);
  EXPECT_EQ(space.find("pi_abs"), 1);
  EXPECT_EQ(space.find("pi_pc"), -1);
  EXPECT_THROW((void)space.at(2), std::out_of_range);
  EXPECT_THROW((void)space.at(-1), std::out_of_range);

  // Dedup is structural, not by display label: two mixtures whose labels
  // both round to 0.50/0.50 stay distinct variants.
  const int m1 = space.add(StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kAbstain, 0.5}}));
  const int m2 = space.add(StrategyVariant::mixed(
      {{Strategy::kHonest, 0.501}, {Strategy::kAbstain, 0.499}}));
  const int m3 = space.add(StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kAbstain, 0.5}}));
  EXPECT_NE(m1, m2);
  EXPECT_EQ(space.at(m1).label(), space.at(m2).label());
  EXPECT_EQ(m3, m1);
}

// ---------------------------------------------------------------------------
// MixedBehavior: deterministic per-round sampling

std::vector<MixedBehavior::Component> half_abstain() {
  return {{Strategy::kHonest, 0.5, nullptr},
          {Strategy::kAbstain, 0.5,
           rational::make_behavior(Strategy::kAbstain, 0, {})}};
}

TEST(MixedBehavior, ChoiceIsAPureFunctionOfSeedAndRound) {
  MixedBehavior a(half_abstain(), Rng(42).fork("mixed/P3"));
  MixedBehavior b(half_abstain(), Rng(42).fork("mixed/P3"));
  MixedBehavior other_seed(half_abstain(), Rng(43).fork("mixed/P3"));
  MixedBehavior other_player(half_abstain(), Rng(42).fork("mixed/P4"));

  bool some_round_differs_seed = false;
  bool some_round_differs_player = false;
  for (Round r = 1; r <= 64; ++r) {
    EXPECT_EQ(a.choice(r), b.choice(r)) << r;
    some_round_differs_seed |= a.choice(r) != other_seed.choice(r);
    some_round_differs_player |= a.choice(r) != other_player.choice(r);
  }
  // Query out of order / repeatedly: the per-round choice cannot drift.
  EXPECT_EQ(a.choice(7), b.choice(7));
  EXPECT_EQ(a.choice(3), b.choice(3));
  EXPECT_EQ(a.choice(7), a.choice(7));
  EXPECT_TRUE(some_round_differs_seed);
  EXPECT_TRUE(some_round_differs_player);
}

TEST(MixedBehavior, SamplesRoughlyByWeightAndDelegates) {
  MixedBehavior mix(half_abstain(), Rng(7).fork("mixed/P0"));
  std::size_t abstained = 0;
  const Round rounds = 2000;
  for (Round r = 1; r <= rounds; ++r) {
    if (!mix.participate(r, 0, consensus::PhaseTag::kVote)) ++abstained;
  }
  // ~50% within a loose Chernoff band.
  EXPECT_GT(abstained, rounds / 2 - 150);
  EXPECT_LT(abstained, rounds / 2 + 150);
  EXPECT_FALSE(mix.is_honest());
  EXPECT_FALSE(mix.expose_fraud());  // colluding component ⇒ never exposes

  // Degenerate mixture behaves like its pure component.
  MixedBehavior all_abs({{Strategy::kAbstain, 1.0,
                          rational::make_behavior(Strategy::kAbstain, 0, {})}},
                        Rng(7).fork("mixed/P0"));
  for (Round r = 1; r <= 16; ++r) {
    EXPECT_FALSE(all_abs.participate(r, 0, consensus::PhaseTag::kVote));
  }
  MixedBehavior all_honest({{Strategy::kHonest, 1.0, nullptr}},
                           Rng(7).fork("mixed/P0"));
  EXPECT_TRUE(all_honest.is_honest());
  EXPECT_TRUE(all_honest.expose_fraud());
}

TEST(MixedBehavior, RejectsDegenerateInputs) {
  EXPECT_THROW(MixedBehavior({}, Rng(1)), std::invalid_argument);
  EXPECT_THROW(
      MixedBehavior({{Strategy::kHonest, -0.5, nullptr}}, Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(MixedBehavior({{Strategy::kHonest, 0.0, nullptr}}, Rng(1)),
               std::invalid_argument);
}

TEST(Rng, LabeledForkIsStableAndSideEffectFree) {
  Rng parent(99);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("alpha");
  Rng c = parent.fork("beta");
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
  // The labeled fork must not advance the parent: its stream matches a
  // fresh generator of the same seed.
  Rng fresh(99);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(parent.next(), fresh.next());
}

// ---------------------------------------------------------------------------
// CoalitionEnumerator

TEST(Coalitions, RotationalSymmetryReduction) {
  // n = 8, k ≤ 2: {0} covers all singletons; pairs reduce to the four
  // distinct gaps {0,1} {0,2} {0,3} {0,4}.
  CoalitionSpec spec;
  spec.n = 8;
  EXPECT_EQ(spec.effective_k_max(), 2u);  // ⌈8/4⌉
  const auto reduced = enumerate_coalitions(spec);
  ASSERT_EQ(reduced.size(), 5u);
  EXPECT_EQ(reduced[0], (Coalition{0}));
  EXPECT_EQ(reduced[1], (Coalition{0, 1}));
  EXPECT_EQ(reduced[4], (Coalition{0, 4}));

  CoalitionSpec full = spec;
  full.symmetry_reduce = false;
  EXPECT_EQ(enumerate_coalitions(full).size(), 8u + 28u);
  EXPECT_EQ(choose(8, 2), 28u);

  // Every canonical representative really is minimal in its class.
  EXPECT_TRUE(rotation_canonical({0, 1}, 8));
  EXPECT_FALSE(rotation_canonical({1, 2}, 8));
  EXPECT_FALSE(rotation_canonical({0, 7}, 8));  // rotates to {0,1}
  EXPECT_TRUE(rotation_canonical({0, 4}, 8));

  CoalitionSpec limited = spec;
  limited.limit = 3;
  EXPECT_EQ(enumerate_coalitions(limited).size(), 3u);

  CoalitionSpec bad = spec;
  bad.k_min = 0;
  EXPECT_THROW((void)enumerate_coalitions(bad), std::invalid_argument);
}

TEST(Coalitions, TheoremBand) {
  // Theorems 1–2: ⌈n/3⌉ ≤ k+t ≤ ⌈n/2⌉−1.
  const CoalitionBand b30 = theorem_band(30);
  EXPECT_EQ(b30.lo, 10u);
  EXPECT_EQ(b30.hi, 14u);
  EXPECT_TRUE(b30.contains(10));
  EXPECT_TRUE(b30.contains(14));
  EXPECT_FALSE(b30.contains(15));
  const CoalitionBand b8 = theorem_band(8);
  EXPECT_EQ(b8.lo, 3u);
  EXPECT_EQ(b8.hi, 3u);
}

// ---------------------------------------------------------------------------
// apply_assignment: executing searched variants

TEST(ApplyAssignment, MixedAndParamVariantsProduceDeviantReplicas) {
  StrategySpace space;
  const int mix = space.add(StrategyVariant::mixed(
      {{Strategy::kHonest, 0.5}, {Strategy::kAbstain, 0.5}}));
  AdversaryKnobs knobs;
  knobs.delay_from = 1;
  knobs.delay_until = 9;
  const int param = space.add(StrategyVariant::param(knobs));

  for (const Protocol proto : {Protocol::kPrft, Protocol::kHotStuff,
                               Protocol::kRaftLite, Protocol::kUnanimous}) {
    harness::ScenarioSpec spec;
    spec.protocol = proto;
    spec.committee.n = 8;
    spec.budget.target_blocks = 1;
    apply_assignment(spec, space, {{2, mix}, {5, param}}, {});
    harness::Simulation sim(spec);
    EXPECT_FALSE(sim.replica(2).is_honest()) << to_string(proto);
    EXPECT_FALSE(sim.replica(5).is_honest()) << to_string(proto);
    EXPECT_TRUE(sim.replica(0).is_honest()) << to_string(proto);
  }
}

TEST(ApplyAssignment, TimedEquivocationWindowGatesTheForkPlan) {
  // A pRFT π_ds coalition whose window already closed never attacks:
  // agreement holds and nobody is slashed. The same coalition with an
  // open window forks-and-burns (the catalog behaviour).
  StrategySpace space;
  AdversaryKnobs closed;
  closed.equivocate = true;
  closed.equivocate_from = 0;
  closed.equivocate_until = 0;  // empty window
  const int closed_idx = space.add(StrategyVariant::param(closed));

  harness::ScenarioSpec spec;
  spec.committee.n = 9;
  spec.seed = 11;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 6;
  apply_assignment(spec, space, {{0, closed_idx}, {1, closed_idx}}, {});
  harness::Simulation sim(spec);
  sim.start();
  sim.run_until(sec(120));
  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_FALSE(sim.deposits().slashed(0));
  EXPECT_FALSE(sim.deposits().slashed(1));

  AdversaryKnobs open;
  open.equivocate = true;
  StrategySpace space2;
  const int open_idx = space2.add(StrategyVariant::param(open));
  harness::ScenarioSpec spec2;
  spec2.committee.n = 9;
  spec2.seed = 11;
  spec2.budget.target_blocks = 3;
  spec2.workload.txs = 6;
  apply_assignment(spec2, space2,
                   {{0, open_idx}, {1, open_idx}, {2, open_idx},
                    {3, open_idx}},
                   {});
  harness::Simulation sim2(spec2);
  sim2.start();
  sim2.run_until(sec(240));
  EXPECT_TRUE(sim2.agreement_holds());  // k+t < n/2: the fork fails…
  EXPECT_TRUE(sim2.deposits().slashed(0));  // …and the PoF burns deposits
  EXPECT_FALSE(sim2.honest_player_slashed());
}

TEST(ApplyAssignment, RejectsInvalidAssignments) {
  StrategySpace space;
  const int abs = space.add(StrategyVariant::of(Strategy::kAbstain));
  AdversaryKnobs equiv;
  equiv.equivocate = true;
  const int timed_ds = space.add(StrategyVariant::param(equiv));

  harness::ScenarioSpec outside;
  outside.committee.n = 4;
  EXPECT_THROW(apply_assignment(outside, space, {{9, abs}}, {}),
               std::invalid_argument);

  harness::ScenarioSpec hotstuff;
  hotstuff.protocol = Protocol::kHotStuff;
  hotstuff.committee.n = 4;
  EXPECT_THROW(apply_assignment(hotstuff, space, {{0, timed_ds}}, {}),
               std::invalid_argument);

  // Conflicting equivocation windows in one coalition — including a pure
  // π_ds player (implicit [0, inf) window) next to a narrowed kParam
  // window, which must not silently rewrite either player's timing.
  AdversaryKnobs other_window = equiv;
  other_window.equivocate_from = 5;
  StrategySpace space2;
  const int w1 = space2.add(StrategyVariant::param(equiv));
  const int w2 = space2.add(StrategyVariant::param(other_window));
  const int pure_ds = space2.add(StrategyVariant::of(Strategy::kDoubleSign));
  harness::ScenarioSpec prft;
  prft.committee.n = 8;
  EXPECT_THROW(apply_assignment(prft, space2, {{0, w1}, {1, w2}}, {}),
               std::invalid_argument);
  harness::ScenarioSpec prft2;
  prft2.committee.n = 8;
  EXPECT_THROW(apply_assignment(prft2, space2, {{0, w2}, {1, pure_ds}}, {}),
               std::invalid_argument);
  // Pure π_ds and the full-window kParam variant agree ([0, inf)).
  harness::ScenarioSpec prft3;
  prft3.committee.n = 8;
  AdversaryKnobs full = equiv;
  full.equivocate_from = 0;
  full.equivocate_until = kRoundNever;
  StrategySpace space3;
  const int wf = space3.add(StrategyVariant::param(full));
  const int ds3 = space3.add(StrategyVariant::of(Strategy::kDoubleSign));
  apply_assignment(prft3, space3, {{0, wf}, {1, ds3}}, {});
}

// ---------------------------------------------------------------------------
// BestResponseDriver: the acceptance gate

SearchSpec unanimous_spec() {
  SearchSpec spec;
  spec.protocol = Protocol::kUnanimous;
  spec.n = 8;
  spec.nets = {NetKind::kSynchronous};
  spec.seeds = {1, 2};
  spec.theta = 3;  // paid for no-progress (Table 2)
  spec.payoff.watched_tx = 1;
  spec.base.censored_txs = {1};
  spec.epsilon = 0.05;
  spec.horizon = sec(30);
  return spec;
}

TEST(BestResponseDriver, DiscoversLivenessAttackAgainstUnanimousBaseline) {
  // Claim 1 / Theorem 1 as a *search outcome*: starting from only π₀, the
  // loop finds — without being told about it — that a θ=3 coalition
  // profits strictly by abstaining against the τ = n baseline, then
  // certifies the discovered attack profile as the equilibrium the
  // dynamic converged to.
  const SearchResult result = search(unanimous_spec());
  ASSERT_FALSE(result.discovered.empty());
  EXPECT_EQ(result.discovered.front().label, "pi_abs");
  // The stalled stream is worth α·(1 + δ + δ²) to θ=3.
  EXPECT_NEAR(result.discovered.front().gain, 1.0 + 0.9 + 0.81, 0.3);
  EXPECT_TRUE(result.equilibrium_certified);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_FALSE(result.final_profile.empty());
  EXPECT_LE(result.evaluations, result.budget.max_evaluations);

  // The empirical game the search grew: honest row ≈ 0, the discovered
  // abstention row strictly profitable — honest is *not* a best response.
  ASSERT_GE(result.space.size(), 2);
  EXPECT_NEAR(result.game.payoff({0}, 0), 0.0, 0.1);
  const int abs_row = result.space.find("pi_abs");
  ASSERT_GT(abs_row, 0);
  EXPECT_GT(result.game.payoff({abs_row}, 0), 1.0);
  EXPECT_FALSE(result.game.is_nash({0}, 0.05));

  // The summary logs the budget (the acceptance criterion's clause).
  EXPECT_NE(result.summary().find("budget:"), std::string::npos);
  EXPECT_NE(result.summary().find("4096"), std::string::npos);
}

TEST(BestResponseDriver, CertifiesHonestForPrftUnderCoalitionSearch) {
  // Lemma 4's regime (θ ≤ 1, k + t < n/2): under pRFT no coalition up to
  // k = ⌈n/4⌉ finds a profitable deviation anywhere in the pool — pure,
  // mixed, or parametric (timed forks burn deposits, abstention buys
  // σ_NP which θ=1 is *charged* for). Honest play survives the search.
  SearchSpec spec = unanimous_spec();
  spec.protocol = Protocol::kPrft;
  spec.theta = 1;
  spec.horizon = sec(60);
  const SearchResult result = search(spec);
  EXPECT_TRUE(result.discovered.empty());
  EXPECT_TRUE(result.equilibrium_certified);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_TRUE(result.final_profile.empty());
  EXPECT_EQ(result.space.size(), 1);  // nothing was worth adopting
  EXPECT_LE(result.evaluations, result.budget.max_evaluations);
  EXPECT_EQ(result.iterations, 1u);
  // Coalition search really ran up to k = ⌈n/4⌉ = 2 with symmetry
  // reduction: 5 canonical of 36 unreduced.
  EXPECT_EQ(result.coalitions_examined, 5u);
  EXPECT_EQ(result.unreduced_coalitions, 36u);
  EXPECT_TRUE(result.game.is_nash({0}, 0.05));
}

TEST(BestResponseDriver, SerialAndParallelSearchesAreIdentical) {
  SearchSpec serial = unanimous_spec();
  serial.seeds = {1};
  serial.workers = 1;
  SearchSpec parallel = serial;
  parallel.workers = 4;

  const SearchResult a = search(serial);
  const SearchResult b = search(parallel);
  ASSERT_EQ(a.discovered.size(), b.discovered.size());
  for (std::size_t i = 0; i < a.discovered.size(); ++i) {
    EXPECT_EQ(a.discovered[i].coalition, b.discovered[i].coalition);
    EXPECT_EQ(a.discovered[i].label, b.discovered[i].label);
    EXPECT_DOUBLE_EQ(a.discovered[i].gain, b.discovered[i].gain);
  }
  EXPECT_EQ(a.final_profile, b.final_profile);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.equilibrium_certified, b.equilibrium_certified);
  ASSERT_EQ(a.space.size(), b.space.size());
  for (int vi = 0; vi < a.space.size(); ++vi) {
    EXPECT_EQ(a.space.at(vi).label(), b.space.at(vi).label());
    EXPECT_DOUBLE_EQ(a.game.payoff({vi}, 0), b.game.payoff({vi}, 0));
  }
}

TEST(BestResponseDriver, RespectsTheEvaluationBudget) {
  SearchSpec spec = unanimous_spec();
  spec.seeds = {1};
  spec.budget.max_evaluations = 6;  // baseline + two candidates, tops
  const SearchResult result = search(spec);
  EXPECT_LE(result.evaluations, 6u);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_FALSE(result.equilibrium_certified);
  EXPECT_NE(result.summary().find("BUDGET EXHAUSTED"), std::string::npos);
}

TEST(BestResponseDriver, RejectsMisconfiguredSpecs) {
  SearchSpec no_seeds = unanimous_spec();
  no_seeds.seeds.clear();
  EXPECT_THROW((void)search(no_seeds), std::invalid_argument);

  SearchSpec no_nets = unanimous_spec();
  no_nets.nets.clear();
  EXPECT_THROW((void)search(no_nets), std::invalid_argument);

  // An unsupported candidate must surface before the parallel fan-out.
  SearchSpec bad_pool = unanimous_spec();
  bad_pool.protocol = Protocol::kHotStuff;
  AdversaryKnobs equiv;
  equiv.equivocate = true;
  bad_pool.candidate_pool = {StrategyVariant::param(equiv)};
  EXPECT_THROW((void)search(bad_pool), std::invalid_argument);

  SearchSpec honest_only = unanimous_spec();
  honest_only.candidate_pool = {StrategyVariant::honest()};
  EXPECT_THROW((void)search(honest_only), std::invalid_argument);
}

TEST(DefaultCandidatePool, SpansPureMixedAndParametricVariants) {
  const auto prft_pool = default_candidate_pool(Protocol::kPrft, {1});
  std::set<std::string> labels;
  for (const StrategyVariant& v : prft_pool) {
    EXPECT_TRUE(v.supported(Protocol::kPrft)) << v.label();
    EXPECT_FALSE(v.is_honest()) << v.label();
    labels.insert(v.label());
  }
  EXPECT_TRUE(labels.count("pi_abs"));
  EXPECT_TRUE(labels.count("pi_pc"));
  EXPECT_TRUE(labels.count("pi_ds"));
  EXPECT_TRUE(labels.count("mix(pi_0:0.50,pi_abs:0.50)"));
  EXPECT_TRUE(labels.count("knobs(delay[2,6)@any)"));
  EXPECT_TRUE(labels.count("knobs(ds[1,5))"));
  EXPECT_TRUE(labels.count("knobs(censor{1})"));

  // No fork substrate on HotStuff: neither π_ds nor timed equivocation.
  for (const StrategyVariant& v :
       default_candidate_pool(Protocol::kHotStuff, {})) {
    EXPECT_TRUE(v.supported(Protocol::kHotStuff)) << v.label();
  }
}

}  // namespace
}  // namespace ratcon::search
