// Adversarial integration tests: the paper's three attack levers executed
// against pRFT on the simulated network, all injected through the unified
// ScenarioSpec adversary plan.
//
//  * π_fork / π_ds (θ=1): a double-signing coalition with t < n/4 and
//    k + t < n/2 can never fork pRFT; it gets caught and slashed (Lemma 4 /
//    Theorem 5).
//  * π_abs (θ=3): an abstaining coalition with k + t > t0 kills liveness
//    and is never penalized — Theorem 1's impossibility, reproduced.
//  * π_pc (θ=2): the partial-censorship strategy keeps liveness, evades
//    penalties, and censors the watched transaction forever — Theorem 2.

#include <gtest/gtest.h>

#include <memory>

#include "adversary/behaviors.hpp"
#include "adversary/fork_agent.hpp"
#include "harness/protocols.hpp"
#include "harness/scenario.hpp"

namespace ratcon {
namespace {

using adversary::AbstainBehavior;
using adversary::ForkAgentNode;
using adversary::ForkPlan;
using adversary::PartialCensorBehavior;
using harness::ScenarioSpec;
using harness::Simulation;

/// 9-player committee: t0 = ⌈9/4⌉ − 1 = 2, quorum 7. The coalition
/// {0,1,2,3} has k + t = 4 < n/2 = 4.5 and n/3 = 3 ≤ 4, i.e. exactly the
/// honest-majority / Byzantine-minority regime the paper targets.
constexpr std::uint32_t kN = 9;
const std::set<NodeId> kCoalition = {0, 1, 2, 3};

std::shared_ptr<ForkPlan> make_fork_plan() {
  auto plan = std::make_shared<ForkPlan>();
  plan->n = kN;
  plan->coalition = kCoalition;
  plan->side_a = {4, 5, 6};  // |A| + k + t = 7 >= quorum — A can be convinced
  plan->side_b = {7, 8};     // |B| + k + t = 6 < quorum — B can never quorum
  return plan;
}

ScenarioSpec fork_scenario(std::uint64_t seed,
                           std::shared_ptr<ForkPlan> plan) {
  ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = seed;
  spec.budget.target_blocks = 4;
  spec.adversary.node_factory =
      [plan](NodeId id, const harness::NodeEnv& env)
      -> std::unique_ptr<consensus::IReplica> {
    if (plan->coalition.count(id)) {
      return std::make_unique<ForkAgentNode>(harness::make_prft_deps(id, env),
                                             plan);
    }
    return nullptr;
  };
  return spec;
}

TEST(ForkCoalition, NeverForksOnSynchronousNetwork) {
  auto plan = make_fork_plan();
  ScenarioSpec spec = fork_scenario(101, plan);
  spec.workload.txs = 20;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  EXPECT_TRUE(sim.agreement_holds()) << "no two honest ledgers conflict";
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
  // On a synchronous network every double-sign is visible within Δ: the
  // whole coalition is caught and burned.
  for (NodeId id : kCoalition) {
    EXPECT_TRUE(sim.deposits().slashed(id)) << "coalition member " << id;
  }
}

TEST(ForkCoalition, LivenessSurvivesTheAttack) {
  auto plan = make_fork_plan();
  ScenarioSpec spec = fork_scenario(102, plan);
  spec.workload.txs = 20;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  // Attacked rounds abort, but honest-led rounds finalize: the chain grows.
  EXPECT_GE(sim.min_height(), 4u);
  EXPECT_EQ(sim.classify(0), game::SystemState::kHonest);
}

TEST(ForkCoalition, NoForkUnderPreGstPartition) {
  // The strongest setting for the attack: the adversary partitions the
  // honest players exactly along its target sides until GST, so each side
  // sees only its own value. Lemma 4's quorum-intersection argument says at
  // most one side can reach tentative consensus; post-heal the PoF surfaces.
  auto plan = make_fork_plan();
  ScenarioSpec spec = fork_scenario(103, plan);
  spec.workload.txs = 20;
  spec.net = harness::NetworkSpec::partial_synchrony(msec(500), msec(10), 0.8);
  spec.faults.partition({{4, 5, 6}, {7, 8}}, msec(1), msec(500));
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(600));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
  EXPECT_GE(sim.min_height(), 4u) << "liveness after GST";
}

class ForkSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkSeedSweep, SafetyInvariantsHoldAcrossSeeds) {
  auto plan = make_fork_plan();
  ScenarioSpec spec = fork_scenario(GetParam(), plan);
  spec.workload.txs = 15;
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_TRUE(sim.ordering_holds());
  EXPECT_FALSE(sim.honest_player_slashed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkSeedSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(AbstainCoalition, KillsLivenessAndEvadesPenalty) {
  // Theorem 1 (θ=3): with k + t = 4 > t0 = 2 the quorum τ = 7 needs
  // coalition signatures; silence stalls every round and every view change.
  ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = 77;
  spec.budget.target_blocks = 3;
  spec.workload.txs = 10;
  for (NodeId id = 0; id < 4; ++id) {
    spec.adversary.behaviors[id] = std::make_shared<AbstainBehavior>();
  }
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(60));

  EXPECT_EQ(sim.max_height(), 0u) << "no block can finalize";
  EXPECT_EQ(sim.classify(0), game::SystemState::kNoProgress);
  // Abstention is indistinguishable from a crash: nobody is slashed.
  for (NodeId id = 0; id < kN; ++id) {
    EXPECT_FALSE(sim.deposits().slashed(id));
  }
}

TEST(AbstainCoalition, BelowThresholdCannotStall) {
  // k + t = t0 = 2 abstainers: quorum still reachable from the rest.
  ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = 78;
  spec.budget.target_blocks = 4;
  spec.workload.txs = 10;
  for (NodeId id = 0; id < 2; ++id) {
    spec.adversary.behaviors[id] = std::make_shared<AbstainBehavior>();
  }
  Simulation sim(spec);
  sim.start();
  sim.run_until(sec(300));

  EXPECT_TRUE(sim.agreement_holds());
  EXPECT_GE(sim.max_height(), 4u) << "t <= t0 abstainers cannot stall";
}

TEST(PartialCensorship, CensorsWatchedTxForever) {
  // Theorem 2 (θ=2): coalition abstains under honest leaders (forcing view
  // changes) and censors when leading. Progress continues; the watched tx
  // never lands; no penalty is ever applicable.
  const std::uint64_t watched_tx = 5000;
  ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = 79;
  spec.budget.target_blocks = 5;
  spec.workload.txs = 10;
  for (NodeId id : kCoalition) {
    spec.adversary.behaviors[id] = std::make_shared<PartialCensorBehavior>(
        kCoalition, std::set<std::uint64_t>{watched_tx});
  }
  Simulation sim(spec);
  sim.submit_tx(ledger::make_transfer(watched_tx, 4), msec(1));
  sim.start();
  sim.run_until(sec(600));

  EXPECT_GE(sim.max_height(), 5u) << "(t,k)-eventual liveness holds";
  EXPECT_EQ(sim.classify(0, watched_tx), game::SystemState::kCensorship);
  for (NodeId id = 0; id < kN; ++id) {
    EXPECT_FALSE(sim.deposits().slashed(id))
        << "π_pc is indistinguishable from π_0 to the penalty mechanism";
  }
}

TEST(PartialCensorship, HonestCommitteeIncludesSameTx) {
  // Control: without the coalition the watched tx lands promptly.
  const std::uint64_t watched_tx = 5000;
  ScenarioSpec spec;
  spec.committee.n = kN;
  spec.seed = 80;
  spec.budget.target_blocks = 5;
  spec.workload.txs = 10;
  Simulation sim(spec);
  sim.submit_tx(ledger::make_transfer(watched_tx, 4), msec(1));
  sim.start();
  sim.run_until(sec(60));

  EXPECT_EQ(sim.classify(0, watched_tx), game::SystemState::kHonest);
}

}  // namespace
}  // namespace ratcon
