// Adversarial integration tests: the paper's three attack levers executed
// against pRFT on the simulated network.
//
//  * π_fork / π_ds (θ=1): a double-signing coalition with t < n/4 and
//    k + t < n/2 can never fork pRFT; it gets caught and slashed (Lemma 4 /
//    Theorem 5).
//  * π_abs (θ=3): an abstaining coalition with k + t > t0 kills liveness
//    and is never penalized — Theorem 1's impossibility, reproduced.
//  * π_pc (θ=2): the partial-censorship strategy keeps liveness, evades
//    penalties, and censors the watched transaction forever — Theorem 2.

#include <gtest/gtest.h>

#include <memory>

#include "adversary/behaviors.hpp"
#include "adversary/fork_agent.hpp"
#include "harness/prft_cluster.hpp"
#include "net/netmodel.hpp"

namespace ratcon {
namespace {

using adversary::AbstainBehavior;
using adversary::ForkAgentNode;
using adversary::ForkPlan;
using adversary::PartialCensorBehavior;
using harness::PrftCluster;
using harness::PrftClusterOptions;

/// 9-player committee: t0 = ⌈9/4⌉ − 1 = 2, quorum 7. The coalition
/// {0,1,2,3} has k + t = 4 < n/2 = 4.5 and n/3 = 3 ≤ 4, i.e. exactly the
/// honest-majority / Byzantine-minority regime the paper targets.
constexpr std::uint32_t kN = 9;
const std::set<NodeId> kCoalition = {0, 1, 2, 3};

std::shared_ptr<ForkPlan> make_fork_plan() {
  auto plan = std::make_shared<ForkPlan>();
  plan->n = kN;
  plan->coalition = kCoalition;
  plan->side_a = {4, 5, 6};  // |A| + k + t = 7 >= quorum — A can be convinced
  plan->side_b = {7, 8};     // |B| + k + t = 6 < quorum — B can never quorum
  return plan;
}

PrftClusterOptions fork_options(std::uint64_t seed,
                                std::shared_ptr<ForkPlan> plan) {
  PrftClusterOptions opt;
  opt.n = kN;
  opt.seed = seed;
  opt.target_blocks = 4;
  opt.node_factory = [plan](NodeId id, prft::PrftNode::Deps deps) {
    if (plan->coalition.count(id)) {
      return std::unique_ptr<prft::PrftNode>(
          new ForkAgentNode(std::move(deps), plan));
    }
    return std::make_unique<prft::PrftNode>(std::move(deps));
  };
  return opt;
}

TEST(ForkCoalition, NeverForksOnSynchronousNetwork) {
  auto plan = make_fork_plan();
  PrftCluster cluster(fork_options(101, plan));
  cluster.inject_workload(20, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(300));

  EXPECT_TRUE(cluster.agreement_holds()) << "no two honest ledgers conflict";
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_FALSE(cluster.honest_player_slashed());
  // On a synchronous network every double-sign is visible within Δ: the
  // whole coalition is caught and burned.
  for (NodeId id : kCoalition) {
    EXPECT_TRUE(cluster.deposits().slashed(id)) << "coalition member " << id;
  }
}

TEST(ForkCoalition, LivenessSurvivesTheAttack) {
  auto plan = make_fork_plan();
  PrftCluster cluster(fork_options(102, plan));
  cluster.inject_workload(20, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(300));

  // Attacked rounds abort, but honest-led rounds finalize: the chain grows.
  EXPECT_GE(cluster.min_height(), 4u);
  EXPECT_EQ(cluster.classify(0), game::SystemState::kHonest);
}

TEST(ForkCoalition, NoForkUnderPreGstPartition) {
  // The strongest setting for the attack: the adversary partitions the
  // honest players exactly along its target sides until GST, so each side
  // sees only its own value. Lemma 4's quorum-intersection argument says at
  // most one side can reach tentative consensus; post-heal the PoF surfaces.
  auto plan = make_fork_plan();
  PrftClusterOptions opt = fork_options(103, plan);
  opt.make_net = [] {
    return net::make_partial_synchrony(msec(500), msec(10), 0.8);
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(20, msec(1), msec(2));
  cluster.net().schedule(msec(1), [&cluster]() {
    cluster.net().set_partition({{4, 5, 6}, {7, 8}}, msec(500));
  });

  cluster.start();
  cluster.run_until(sec(600));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_FALSE(cluster.honest_player_slashed());
  EXPECT_GE(cluster.min_height(), 4u) << "liveness after GST";
}

class ForkSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkSeedSweep, SafetyInvariantsHoldAcrossSeeds) {
  auto plan = make_fork_plan();
  PrftCluster cluster(fork_options(GetParam(), plan));
  cluster.inject_workload(15, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(300));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_TRUE(cluster.ordering_holds());
  EXPECT_FALSE(cluster.honest_player_slashed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkSeedSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(AbstainCoalition, KillsLivenessAndEvadesPenalty) {
  // Theorem 1 (θ=3): with k + t = 4 > t0 = 2 the quorum τ = 7 needs
  // coalition signatures; silence stalls every round and every view change.
  PrftClusterOptions opt;
  opt.n = kN;
  opt.seed = 77;
  opt.target_blocks = 3;
  opt.node_factory = [](NodeId id, prft::PrftNode::Deps deps) {
    if (id < 4) deps.behavior = std::make_shared<AbstainBehavior>();
    return std::make_unique<prft::PrftNode>(std::move(deps));
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_EQ(cluster.max_height(), 0u) << "no block can finalize";
  EXPECT_EQ(cluster.classify(0), game::SystemState::kNoProgress);
  // Abstention is indistinguishable from a crash: nobody is slashed.
  for (NodeId id = 0; id < kN; ++id) {
    EXPECT_FALSE(cluster.deposits().slashed(id));
  }
}

TEST(AbstainCoalition, BelowThresholdCannotStall) {
  // k + t = t0 = 2 abstainers: quorum still reachable from the rest.
  PrftClusterOptions opt;
  opt.n = kN;
  opt.seed = 78;
  opt.target_blocks = 4;
  opt.node_factory = [](NodeId id, prft::PrftNode::Deps deps) {
    if (id < 2) deps.behavior = std::make_shared<AbstainBehavior>();
    return std::make_unique<prft::PrftNode>(std::move(deps));
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.start();
  cluster.run_until(sec(300));

  EXPECT_TRUE(cluster.agreement_holds());
  EXPECT_GE(cluster.max_height(), 4u) << "t <= t0 abstainers cannot stall";
}

TEST(PartialCensorship, CensorsWatchedTxForever) {
  // Theorem 2 (θ=2): coalition abstains under honest leaders (forcing view
  // changes) and censors when leading. Progress continues; the watched tx
  // never lands; no penalty is ever applicable.
  const std::uint64_t watched_tx = 5000;
  PrftClusterOptions opt;
  opt.n = kN;
  opt.seed = 79;
  opt.target_blocks = 5;
  opt.node_factory = [watched_tx](NodeId id, prft::PrftNode::Deps deps) {
    if (id < 4) {
      deps.behavior = std::make_shared<PartialCensorBehavior>(
          kCoalition, std::set<std::uint64_t>{watched_tx});
    }
    return std::make_unique<prft::PrftNode>(std::move(deps));
  };
  PrftCluster cluster(opt);
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.submit_tx(ledger::make_transfer(watched_tx, 4), msec(1));
  cluster.start();
  cluster.run_until(sec(600));

  EXPECT_GE(cluster.max_height(), 5u) << "(t,k)-eventual liveness holds";
  EXPECT_EQ(cluster.classify(0, watched_tx), game::SystemState::kCensorship);
  for (NodeId id = 0; id < kN; ++id) {
    EXPECT_FALSE(cluster.deposits().slashed(id))
        << "π_pc is indistinguishable from π_0 to the penalty mechanism";
  }
}

TEST(PartialCensorship, HonestCommitteeIncludesSameTx) {
  // Control: without the coalition the watched tx lands promptly.
  const std::uint64_t watched_tx = 5000;
  PrftClusterOptions opt;
  opt.n = kN;
  opt.seed = 80;
  opt.target_blocks = 5;
  PrftCluster cluster(opt);
  cluster.inject_workload(10, msec(1), msec(2));
  cluster.submit_tx(ledger::make_transfer(watched_tx, 4), msec(1));
  cluster.start();
  cluster.run_until(sec(60));

  EXPECT_EQ(cluster.classify(0, watched_tx), game::SystemState::kHonest);
}

}  // namespace
}  // namespace ratcon
