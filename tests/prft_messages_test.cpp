// Unit tests for pRFT's wire messages (Figure 2b + Sync): codec round
// trips for all nine types, hostile-input rejection, and the vc_value
// domain separation.

#include <gtest/gtest.h>

#include "consensus/envelope.hpp"
#include "core/messages.hpp"

namespace ratcon::prft {
namespace {

struct Fixture {
  crypto::KeyRegistry registry;
  std::vector<crypto::KeyPair> keys;
  Round r = 5;
  ledger::Block block;
  crypto::Hash256 h;

  Fixture() {
    for (NodeId id = 0; id < 7; ++id) keys.push_back(registry.generate(id, 2));
    block.parent = crypto::kZeroHash;
    block.round = r;
    block.proposer = 0;
    block.txs.push_back(ledger::make_transfer(1, 0));
    block.txs.push_back(ledger::make_transfer(2, 3));
    h = block.hash();
  }

  PhaseSig psig(PhaseTag tag, NodeId who, const crypto::Hash256& value) {
    return consensus::sign_phase(ProtoId::kPrft, tag, r, value, who,
                                 keys[who].sk);
  }

  Certificate cert(PhaseTag tag, const crypto::Hash256& value,
                   std::uint32_t count) {
    Certificate c;
    c.phase = tag;
    c.round = r;
    c.value = value;
    for (NodeId id = 0; id < count; ++id) c.sigs.push_back(psig(tag, id, value));
    return c;
  }
};

template <typename Body>
Body round_trip(const Body& body) {
  Writer w;
  body.encode(w);
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  Body out = Body::decode(r);
  EXPECT_TRUE(r.done());
  return out;
}

TEST(PrftMessages, ProposeRoundTrip) {
  Fixture f;
  ProposeBody body;
  body.block = f.block;
  body.pro_sig = f.psig(PhaseTag::kPropose, 0, f.h);
  const ProposeBody out = round_trip(body);
  EXPECT_EQ(out.block.hash(), f.h);
  EXPECT_EQ(out.pro_sig, body.pro_sig);
}

TEST(PrftMessages, VoteRoundTrip) {
  Fixture f;
  VoteBody body;
  body.h = f.h;
  body.leader_pro_sig = f.psig(PhaseTag::kPropose, 0, f.h);
  body.vote_sig = f.psig(PhaseTag::kVote, 2, f.h);
  const VoteBody out = round_trip(body);
  EXPECT_EQ(out.h, f.h);
  EXPECT_EQ(out.vote_sig, body.vote_sig);
}

TEST(PrftMessages, CommitRoundTrip) {
  Fixture f;
  CommitBody body;
  body.h = f.h;
  body.leader_pro_sig = f.psig(PhaseTag::kPropose, 0, f.h);
  body.vote_cert = f.cert(PhaseTag::kVote, f.h, 5);
  body.commit_sig = f.psig(PhaseTag::kCommit, 2, f.h);
  const CommitBody out = round_trip(body);
  EXPECT_EQ(out.vote_cert.sigs.size(), 5u);
  EXPECT_EQ(out.commit_sig, body.commit_sig);
}

TEST(PrftMessages, RevealRoundTrip) {
  Fixture f;
  RevealBody body;
  body.h_tc = f.h;
  body.h_l = f.h;
  for (NodeId id = 0; id < 5; ++id) {
    body.commits.push_back(CommitEvidence{f.psig(PhaseTag::kCommit, id, f.h),
                                          f.cert(PhaseTag::kVote, f.h, 5)});
  }
  body.reveal_sig = f.psig(PhaseTag::kReveal, 1, f.h);
  const RevealBody out = round_trip(body);
  EXPECT_EQ(out.commits.size(), 5u);
  EXPECT_EQ(out.commits[3].vote_cert.sigs.size(), 5u);
}

TEST(PrftMessages, ExposeRoundTrip) {
  Fixture f;
  const crypto::Hash256 other = crypto::sha256(std::string_view("b"));
  ExposeBody body;
  for (NodeId id = 0; id < 3; ++id) {
    consensus::ConflictPair cp;
    cp.phase = PhaseTag::kCommit;
    cp.round = f.r;
    cp.value_a = f.h;
    cp.value_b = other;
    cp.sig_a = f.psig(PhaseTag::kCommit, id, f.h);
    cp.sig_b = f.psig(PhaseTag::kCommit, id, other);
    body.proofs.push_back(cp);
  }
  const ExposeBody out = round_trip(body);
  ASSERT_EQ(out.proofs.size(), 3u);
  for (const auto& cp : out.proofs) {
    EXPECT_TRUE(cp.verify(ProtoId::kPrft, f.registry));
  }
}

TEST(PrftMessages, FinalRoundTrip) {
  Fixture f;
  FinalBody body;
  body.h = f.h;
  body.leader_pro_sig = f.psig(PhaseTag::kPropose, 0, f.h);
  body.final_sig = f.psig(PhaseTag::kFinal, 4, f.h);
  const FinalBody out = round_trip(body);
  EXPECT_EQ(out.final_sig, body.final_sig);
}

TEST(PrftMessages, ViewChangeRoundTrip) {
  Fixture f;
  ViewChangeBody body;
  body.stalled_phase = PhaseTag::kCommit;
  body.vc_sig = f.psig(PhaseTag::kViewChange, 3, vc_value(f.r));
  const ViewChangeBody out = round_trip(body);
  EXPECT_EQ(out.stalled_phase, PhaseTag::kCommit);
  EXPECT_EQ(out.vc_sig, body.vc_sig);
}

TEST(PrftMessages, CommitViewRoundTrip) {
  Fixture f;
  CommitViewBody body;
  body.vc_cert = f.cert(PhaseTag::kViewChange, vc_value(f.r), 5);
  body.cv_sig = f.psig(PhaseTag::kCommitView, 3, vc_value(f.r));
  const CommitViewBody out = round_trip(body);
  EXPECT_EQ(out.vc_cert.sigs.size(), 5u);
}

TEST(PrftMessages, SyncRoundTrip) {
  Fixture f;
  SyncBody body;
  body.final_round = f.r;
  body.blocks.push_back(f.block);
  body.final_cert = f.cert(PhaseTag::kFinal, f.h, 4);
  const SyncBody out = round_trip(body);
  ASSERT_EQ(out.blocks.size(), 1u);
  EXPECT_EQ(out.blocks[0].hash(), f.h);
  EXPECT_EQ(out.final_cert.sigs.size(), 4u);
}

TEST(PrftMessages, VcValueBindsRound) {
  EXPECT_NE(vc_value(1), vc_value(2));
  EXPECT_EQ(vc_value(7), vc_value(7));
}

TEST(PrftMessages, TruncatedBodiesThrow) {
  Fixture f;
  CommitBody body;
  body.h = f.h;
  body.leader_pro_sig = f.psig(PhaseTag::kPropose, 0, f.h);
  body.vote_cert = f.cert(PhaseTag::kVote, f.h, 5);
  body.commit_sig = f.psig(PhaseTag::kCommit, 2, f.h);
  Writer w;
  body.encode(w);
  // Chop the buffer at several points; decode must throw, never crash.
  for (std::size_t cut : {1u, 16u, 48u, 100u}) {
    if (cut >= w.size()) continue;
    Reader r(ByteSpan(w.data().data(), cut));
    EXPECT_THROW(CommitBody::decode(r), CodecError) << "cut=" << cut;
  }
}

TEST(PrftMessages, HostileCertCountRejected) {
  // A length field claiming 2^20 certificate entries must be rejected by
  // the count guard, not allocate.
  Writer w;
  w.u8(static_cast<std::uint8_t>(PhaseTag::kVote));
  w.u64(1);
  crypto::Hash256 h{};
  w.raw(ByteSpan(h.data(), h.size()));
  w.u32(1u << 20);  // absurd signature count
  Reader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_THROW(Certificate::decode(r), CodecError);
}

TEST(PrftMessages, AllTypesHaveNames) {
  for (std::uint8_t t = 0; t <= 8; ++t) {
    EXPECT_STRNE(to_string(static_cast<MsgType>(t)), "?");
  }
}

}  // namespace
}  // namespace ratcon::prft
